package xhybrid

import (
	"bytes"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	x := PaperExample()
	var buf bytes.Buffer
	if err := x.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadXLocationsText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.TotalX() != 28 || y.Patterns() != 8 || y.Cells() != 15 {
		t.Fatalf("round trip lost data: %d X's", y.TotalX())
	}
	for p := 0; p < 8; p++ {
		for c := 0; c < 5; c++ {
			for pos := 0; pos < 3; pos++ {
				if x.HasX(p, c, pos) != y.HasX(p, c, pos) {
					t.Fatalf("mismatch at (%d,%d,%d)", p, c, pos)
				}
			}
		}
	}
}

func TestTextRunsAndComments(t *testing.T) {
	in := `
# header comment
design 2 4 3

x 0 1 2
xr 1 0 1 3
`
	x, err := ReadXLocationsText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if x.TotalX() != 4 {
		t.Fatalf("TotalX = %d, want 4", x.TotalX())
	}
	if !x.HasX(0, 1, 2) || !x.HasX(1, 0, 1) || !x.HasX(1, 0, 2) || !x.HasX(1, 0, 3) {
		t.Fatal("X positions wrong")
	}
}

func TestTextErrors(t *testing.T) {
	cases := []string{
		"x 0 0 0",                    // x before design
		"xr 0 0 0 1",                 // xr before design
		"design 0 1 1",               // bad geometry
		"design 1 1 1\ndesign 1 1 1", // duplicate design
		"design 1 1 1\nx 5 0 0",      // pattern out of range
		"design 1 1 1\nx zero 0 0",   // unparsable
		"design 1 1 1\nxr 0 0 3 1",   // reversed run
		"design 1 1 1\nxr 0 0 0 5",   // run out of range
		"design 1 1 1\nunknown 1",    // unknown record
		"# only comments",            // no design at all
		"design 2 2 2\nx 0 0",        // too few fields
	}
	for i, in := range cases {
		if _, err := ReadXLocationsText(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d accepted: %q", i, in)
		}
	}
}

// TestTextStrictFields pins the strict field-count rule. The old Sscanf
// parser silently accepted trailing garbage ("x 1 2 3 junk",
// "design 8 10 4 extra"), so a truncated or corrupted dump could load as a
// smaller, valid-looking map. Every malformed shape must be rejected with
// an error naming the offending line.
func TestTextStrictFields(t *testing.T) {
	cases := []struct {
		name, in, wantLine string
	}{
		{"x trailing garbage", "design 4 4 4\nx 1 2 3 junk", "line 2"},
		{"design trailing garbage", "design 8 10 4 extra", "line 1"},
		{"xr trailing garbage", "design 4 8 4\nxr 1 2 3 4 5", "line 2"},
		{"x extra int field", "design 4 4 4\nx 1 2 3 0", "line 2"},
		{"design too few fields", "design 8 10", "line 1"},
		{"xr too few fields", "design 4 8 4\nxr 1 2 3", "line 2"},
		{"x float field", "design 4 4 4\nx 1 2 3.5", "line 2"},
		{"design hex field", "design 0x8 10 4", "line 1"},
		{"x field with sign glue", "design 4 4 4\nx 1 2 +3junk", "line 2"},
		{"blank lines shift numbering", "\n\ndesign 4 4 4\n\nx 0 0 0 oops", "line 5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadXLocationsText(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted malformed input: %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Fatalf("error %q does not name %s", err, tc.wantLine)
			}
		})
	}

	// Negative integers are still legal syntax; range checks (not the
	// tokenizer) reject them.
	if _, err := ReadXLocationsText(strings.NewReader("design 4 4 4\nx -1 0 0")); err == nil {
		t.Fatal("negative pattern index accepted")
	}
}
