package xhybrid

import (
	"fmt"
	"io"
)

// WriteText renders the plan in the exact format cmd/xhybrid's "partition"
// subcommand prints: the design line, the optional per-round trace and
// partition list (verbose), and the accounting block with both baselines.
// cmd/xhybrid and the xhybridd serving layer both call this renderer, which
// is what makes a served text response byte-identical to the CLI's stdout
// for the same input and options.
func (p *Plan) WriteText(w io.Writer, x *XLocations, verbose bool) error {
	if _, err := fmt.Fprintf(w, "design: %d chains x %d cells, %d patterns, %d X's\n",
		x.Chains(), x.ChainLen(), x.Patterns(), p.TotalX); err != nil {
		return err
	}
	if verbose {
		for _, r := range p.Rounds {
			verdict := "accepted"
			if !r.Accepted {
				verdict = "rejected (stop)"
			}
			if _, err := fmt.Fprintf(w, "round %d: split on cell %d, cost %d -> %d  [%s]\n",
				r.Round, r.SplitCell, r.CostBefore, r.CostAfter, verdict); err != nil {
				return err
			}
		}
		for i, part := range p.Partitions {
			if _, err := fmt.Fprintf(w, "partition %d: %d patterns, %d masked cells, %d X's removed\n",
				i+1, len(part.Patterns), len(part.MaskedCells), part.MaskedX); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w,
		"partitions:            %d\n"+
			"masked X:              %d of %d (residual %d)\n"+
			"control bits:          masks %d + canceling %d = %d\n"+
			"X-masking only [5]:    %d  (improvement %.2fx)\n"+
			"X-canceling only [12]: %d  (improvement %.2fx)\n"+
			"normalized test time:  %.3f vs %.3f canceling-only (%.2fx faster)\n",
		len(p.Partitions),
		p.MaskedX, p.TotalX, p.ResidualX,
		p.MaskBits, p.CancelBits, p.TotalBits,
		p.MaskOnlyBits, p.ImprovementOverMaskOnly,
		p.CancelOnlyBits, p.ImprovementOverCancelOnly,
		p.TestTimeHybrid, p.TestTimeCancelOnly, p.TestTimeImprovement)
	return err
}
