package xhybrid

import (
	"fmt"
	"io"
)

// Table1Row is one design row of the paper's Table 1, measured on this
// build's calibrated synthetic workload.
type Table1Row struct {
	Circuit  string
	XDensity float64

	MaskOnlyBits   int
	CancelOnlyBits int
	ProposedBits   int

	ImprovementOverMaskOnly   float64
	ImprovementOverCancelOnly float64

	TestTimeCancelOnly  float64
	TestTimeProposed    float64
	TestTimeImprovement float64

	Partitions int
}

// Table1 regenerates the paper's Table 1 on the CKT-A/B/C workloads with
// the published configuration (3000 patterns, MISR m=32, q=7). Seed 0 uses
// the calibrated defaults; other seeds resample the synthetic workloads.
func Table1(seed int64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range []string{"ckt-a", "ckt-b", "ckt-c"} {
		x, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		plan, err := Partition(x, Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Circuit:                   name,
			XDensity:                  x.Density(),
			MaskOnlyBits:              plan.MaskOnlyBits,
			CancelOnlyBits:            plan.CancelOnlyBits,
			ProposedBits:              plan.TotalBits,
			ImprovementOverMaskOnly:   plan.ImprovementOverMaskOnly,
			ImprovementOverCancelOnly: plan.ImprovementOverCancelOnly,
			TestTimeCancelOnly:        plan.TestTimeCancelOnly,
			TestTimeProposed:          plan.TestTimeHybrid,
			TestTimeImprovement:       plan.TestTimeImprovement,
			Partitions:                len(plan.Partitions),
		})
	}
	return rows, nil
}

// WriteTable1 renders the rows in the paper's layout.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	if _, err := fmt.Fprintf(w, "%-8s %-8s %14s %14s %14s %9s %9s %8s %8s %8s\n",
		"Circuit", "X-dens", "MaskOnly", "CancelOnly", "Proposed",
		"Impv/[5]", "Impv/[12]", "tt[12]", "ttProp", "ttImpv"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-8s %-8.4f %13.2fM %13.2fM %13.2fM %9.2f %9.2f %8.2f %8.2f %8.2f\n",
			r.Circuit, 100*r.XDensity,
			float64(r.MaskOnlyBits)/1e6, float64(r.CancelOnlyBits)/1e6, float64(r.ProposedBits)/1e6,
			r.ImprovementOverMaskOnly, r.ImprovementOverCancelOnly,
			r.TestTimeCancelOnly, r.TestTimeProposed, r.TestTimeImprovement); err != nil {
			return err
		}
	}
	return nil
}
