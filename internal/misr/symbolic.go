package misr

import (
	"fmt"
	"sort"
	"strings"

	"xhybrid/internal/gf2"
	"xhybrid/internal/logic"
)

// Symbolic is a symbolic MISR: every signature bit is maintained as
//
//	M_i = known_i XOR (XOR of the tracked symbols M_i depends on)
//
// where symbols are allocated for unknown (X) inputs — or, if desired, for
// any input — and dependences propagate linearly through the MISR update.
// This reproduces the paper's Figure 2 symbolic simulation and provides the
// X-dependence matrix consumed by Gaussian elimination (Figure 3).
type Symbolic struct {
	cfg Config
	// known is the contribution of known (constant) inputs to each bit.
	known uint64
	// deps[i] is the symbol-dependence set of signature bit i.
	deps []gf2.Vec
	// labels[s] names symbol s (e.g. "X1", "O3") for printed equations.
	labels []string
	// capSymbols is the current allocated width of the dependence vectors.
	capSymbols int
	cycles     int
}

// NewSymbolic returns a symbolic MISR with initial capacity for the given
// number of symbols (the vectors grow on demand).
func NewSymbolic(cfg Config, symbolCap int) (*Symbolic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if symbolCap < 1 {
		symbolCap = 16
	}
	s := &Symbolic{cfg: cfg, capSymbols: symbolCap}
	s.deps = make([]gf2.Vec, cfg.Size)
	for i := range s.deps {
		s.deps[i] = gf2.NewVec(symbolCap)
	}
	return s, nil
}

// MustNewSymbolic is NewSymbolic that panics on error.
func MustNewSymbolic(cfg Config, symbolCap int) *Symbolic {
	s, err := NewSymbolic(cfg, symbolCap)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the MISR configuration.
func (s *Symbolic) Config() Config { return s.cfg }

// NumSymbols returns the number of symbols allocated so far.
func (s *Symbolic) NumSymbols() int { return len(s.labels) }

// Cycles returns the number of clocks applied since the last reset.
func (s *Symbolic) Cycles() int { return s.cycles }

// NewSymbol allocates a fresh symbol with the given label and returns its id.
func (s *Symbolic) NewSymbol(label string) int {
	id := len(s.labels)
	s.labels = append(s.labels, label)
	if id >= s.capSymbols {
		s.grow(2*s.capSymbols + 1)
	}
	return id
}

func (s *Symbolic) grow(newCap int) {
	for i := range s.deps {
		nv := gf2.NewVec(newCap)
		s.deps[i].ForEach(func(b int) { nv.Set(b) })
		s.deps[i] = nv
	}
	s.capSymbols = newCap
}

// step advances the symbolic state one clock with zero input.
func (s *Symbolic) step() {
	s.known = s.cfg.step(s.known)
	m := s.cfg.Size
	carry := s.deps[m-1]
	next := make([]gf2.Vec, m)
	next[0] = gf2.NewVec(s.capSymbols)
	if s.cfg.Poly&1 != 0 {
		next[0].Xor(carry)
	}
	for i := 1; i < m; i++ {
		nv := s.deps[i-1].Clone()
		if s.cfg.Poly>>uint(i)&1 != 0 {
			nv.Xor(carry)
		}
		next[i] = nv
	}
	s.deps = next
	s.cycles++
}

// Clock advances one cycle. inKnown is the packed word of known-input
// contributions; inSyms maps each stage to a symbol id to inject, or -1.
// A stage may receive both a known bit and a symbol (e.g. a compactor XOR
// of a known chain and an X chain).
func (s *Symbolic) Clock(inKnown uint64, inSyms []int) {
	if inKnown&^s.cfg.mask() != 0 {
		panic(fmt.Sprintf("misr: input %#x exceeds %d-bit MISR", inKnown, s.cfg.Size))
	}
	if inSyms != nil && len(inSyms) != s.cfg.Size {
		panic(fmt.Sprintf("misr: symbol input width %d, want %d", len(inSyms), s.cfg.Size))
	}
	s.step()
	s.known ^= inKnown
	for i, sym := range inSyms {
		if sym < 0 {
			continue
		}
		if sym >= len(s.labels) {
			panic(fmt.Sprintf("misr: unknown symbol id %d", sym))
		}
		s.deps[i].Flip(sym)
	}
}

// ClockVector advances one cycle with a three-valued input vector; each X
// input allocates a fresh symbol labeled by labelFn (or "X<n>" if nil).
// It returns the symbol ids allocated this cycle (per stage, -1 if none).
func (s *Symbolic) ClockVector(in logic.Vector, labelFn func(stage int) string) []int {
	if len(in) != s.cfg.Size {
		panic(fmt.Sprintf("misr: input width %d, want %d", len(in), s.cfg.Size))
	}
	var known uint64
	syms := make([]int, s.cfg.Size)
	for i := range syms {
		syms[i] = -1
	}
	for i, v := range in {
		switch v {
		case logic.One:
			known |= 1 << uint(i)
		case logic.Zero:
		case logic.X:
			label := ""
			if labelFn != nil {
				label = labelFn(i)
			}
			if label == "" {
				label = fmt.Sprintf("X%d", len(s.labels)+1)
			}
			syms[i] = s.NewSymbol(label)
		}
	}
	s.Clock(known, syms)
	return syms
}

// Known returns the known-input contribution to the signature.
func (s *Symbolic) Known() uint64 { return s.known }

// DependsOn reports whether signature bit i depends on symbol sym.
func (s *Symbolic) DependsOn(i, sym int) bool { return s.deps[i].Get(sym) }

// Matrix returns the m x numSymbols dependence matrix: row i has bit j set
// iff signature bit i depends on symbol j. Rows are copies.
func (s *Symbolic) Matrix() gf2.Mat {
	n := len(s.labels)
	m := gf2.NewMat(s.cfg.Size, n)
	for i := range s.deps {
		s.deps[i].ForEach(func(b int) {
			if b < n {
				m.Set(i, b)
			}
		})
	}
	return m
}

// MatrixOf returns the dependence matrix restricted to the given symbol ids
// (columns in the given order). Used to isolate X symbols from O symbols.
func (s *Symbolic) MatrixOf(symbols []int) gf2.Mat {
	m := gf2.NewMat(s.cfg.Size, len(symbols))
	for i := range s.deps {
		for j, sym := range symbols {
			if sym < len(s.labels) && s.deps[i].Get(sym) {
				m.Set(i, j)
			}
		}
	}
	return m
}

// SymbolsByPrefix returns the ids of symbols whose label starts with the
// prefix, in allocation order. Convenient for separating "X" from "O".
func (s *Symbolic) SymbolsByPrefix(prefix string) []int {
	var out []int
	for id, l := range s.labels {
		if strings.HasPrefix(l, prefix) {
			out = append(out, id)
		}
	}
	return out
}

// Label returns the label of symbol id.
func (s *Symbolic) Label(id int) string { return s.labels[id] }

// Equation renders signature bit i as a human-readable linear equation in
// the style of the paper's Figure 2, e.g. "M2 = X1 + O2 + X2 + X3 + O9".
// Symbols appear sorted by label; a nonzero known contribution appends "+ 1".
func (s *Symbolic) Equation(i int) string {
	var terms []string
	s.deps[i].ForEach(func(b int) {
		if b < len(s.labels) {
			terms = append(terms, s.labels[b])
		}
	})
	sort.Slice(terms, func(a, b int) bool { return symbolLess(terms[a], terms[b]) })
	if s.known>>uint(i)&1 == 1 {
		terms = append(terms, "1")
	}
	if len(terms) == 0 {
		terms = []string{"0"}
	}
	return fmt.Sprintf("M%d = %s", i+1, strings.Join(terms, " + "))
}

// symbolLess orders labels like O3 < O12 and O-symbols before X-symbols of
// the paper's convention by comparing (alpha prefix, numeric suffix).
func symbolLess(a, b string) bool {
	pa, na := splitLabel(a)
	pb, nb := splitLabel(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitLabel(s string) (prefix string, num int) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	n := 0
	for _, r := range s[i:] {
		n = n*10 + int(r-'0')
	}
	return s[:i], n
}

// Combine returns the known parity and combined symbol dependence of the
// GF(2) combination of signature bits selected by sel (length Size).
func (s *Symbolic) Combine(sel gf2.Vec) (parity int, deps gf2.Vec) {
	if sel.Len() != s.cfg.Size {
		panic("misr: selection width mismatch")
	}
	deps = gf2.NewVec(s.capSymbols)
	p := 0
	sel.ForEach(func(i int) {
		deps.Xor(s.deps[i])
		p ^= int(s.known >> uint(i) & 1)
	})
	return p, deps
}

// Reset clears state, symbols and cycle count.
func (s *Symbolic) Reset() {
	s.known = 0
	s.labels = s.labels[:0]
	for i := range s.deps {
		s.deps[i].Reset()
	}
	s.cycles = 0
}

// ResetSymbols forgets all symbol dependences and labels but keeps the known
// part of the state; used at X-canceling session boundaries where extracted
// X's are retired but the register keeps compacting.
func (s *Symbolic) ResetSymbols() {
	s.labels = s.labels[:0]
	for i := range s.deps {
		s.deps[i].Reset()
	}
}
