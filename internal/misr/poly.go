// Package misr implements multiple-input signature registers (MISRs) for
// output response compaction: a concrete Galois-form simulator and a
// symbolic simulator that expresses every signature bit as a GF(2) linear
// combination of injected input symbols. The symbolic form is the basis of
// the X-canceling methodology: the X-dependence part of the symbolic state
// feeds Gaussian elimination to find X-free signature combinations.
//
// In the end-to-end flow (docs/FLOW.md) a MISR Config is the compaction
// half of the partition stage's parameters (misr.Standard(m), with m no
// wider than the chain count) and the concrete simulator is the replay
// stage's signature register. The concrete and symbolic simulators step
// the same companion-matrix update, so a signature predicted symbolically
// equals the one the concrete register accumulates over the same inputs —
// the agreement the X-canceling halt schedule depends on. Standard sizes
// use primitive characteristic polynomials (maximal state cycle, minimal
// structured aliasing); p_0 = 1 keeps the update nonsingular.
//
// This package implements DESIGN.md §5.3 (the symbolic MISR the session
// algebra is built on) and the Figure 2 fixture of §4.
package misr

import "fmt"

// Config describes a MISR: its size m (stages = parallel inputs) and its
// characteristic polynomial p(x) = x^m + sum(p_i x^i). Poly holds bits
// p_0..p_{m-1}; p_0 must be 1 for the update to be nonsingular.
type Config struct {
	Size int
	Poly uint64
}

// primitivePolys maps register size to the low-order bits of a primitive
// characteristic polynomial over GF(2) (bit i = coefficient of x^i; the
// leading x^m term is implicit). Primitive polynomials maximize state-cycle
// length and minimize structured aliasing.
var primitivePolys = map[int]uint64{
	4:  0x9,     // x^4 + x^3 + 1           -> taps {3,0}
	5:  0x5,     // x^5 + x^2 + 1
	6:  0x3,     // x^6 + x + 1
	7:  0x9,     // x^7 + x^3 + 1
	8:  0x71,    // x^8 + x^6 + x^5 + x^4 + 1
	9:  0x11,    // x^9 + x^4 + 1
	10: 0x9,     // x^10 + x^3 + 1
	11: 0x5,     // x^11 + x^2 + 1
	12: 0x107,   // x^12 + x^8 + x^2 + x + 1 (alt; primitive)
	13: 0x1b,    // x^13 + x^4 + x^3 + x + 1
	14: 0x805,   // x^14 + x^11 + x^2 + 1 (alt; primitive)
	15: 0x3,     // x^15 + x + 1
	16: 0x2d,    // x^16 + x^5 + x^3 + x^2 + 1
	17: 0x9,     // x^17 + x^3 + 1
	18: 0x81,    // x^18 + x^7 + 1
	19: 0x27,    // x^19 + x^5 + x^2 + x + 1
	20: 0x9,     // x^20 + x^3 + 1
	21: 0x5,     // x^21 + x^2 + 1
	22: 0x3,     // x^22 + x + 1
	23: 0x21,    // x^23 + x^5 + 1
	24: 0x87,    // x^24 + x^7 + x^2 + x + 1
	25: 0x9,     // x^25 + x^3 + 1
	26: 0x47,    // x^26 + x^6 + x^2 + x + 1
	27: 0x27,    // x^27 + x^5 + x^2 + x + 1
	28: 0x9,     // x^28 + x^3 + 1
	29: 0x5,     // x^29 + x^2 + 1
	30: 0x53,    // x^30 + x^6 + x^4 + x + 1
	31: 0x9,     // x^31 + x^3 + 1
	32: 0xc5,    // x^32 + x^7 + x^6 + x^2 + 1
	48: 0x201c3, // x^48 + x^17 + x^8 + x^7 + x^6 + x + 1 (alt; primitive)
	64: 0x1b,    // x^64 + x^4 + x^3 + x + 1
}

// Standard returns a MISR configuration with a known-good (primitive where
// tabulated) characteristic polynomial for the given size.
func Standard(size int) (Config, error) {
	if size < 1 || size > 64 {
		return Config{}, fmt.Errorf("misr: size %d out of supported range [1,64]", size)
	}
	poly, ok := primitivePolys[size]
	if !ok {
		// Fall back to x^m + x + 1 style; not necessarily primitive but a
		// valid nonsingular update for sizes without a tabulated polynomial.
		poly = 0x3
		if size == 1 {
			poly = 0x1
		}
	}
	return Config{Size: size, Poly: poly}, nil
}

// MustStandard is Standard that panics on error; for tests and fixtures.
func MustStandard(size int) Config {
	c, err := Standard(size)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate checks the configuration invariants.
func (c Config) Validate() error {
	if c.Size < 1 || c.Size > 64 {
		return fmt.Errorf("misr: size %d out of supported range [1,64]", c.Size)
	}
	if c.Poly&1 == 0 {
		return fmt.Errorf("misr: polynomial %#x has p_0 = 0; update would be singular", c.Poly)
	}
	if c.Size < 64 && c.Poly>>uint(c.Size) != 0 {
		return fmt.Errorf("misr: polynomial %#x has terms at or above x^%d", c.Poly, c.Size)
	}
	return nil
}

// mask returns the state mask (low Size bits set).
func (c Config) mask() uint64 {
	if c.Size == 64 {
		return ^uint64(0)
	}
	return (1 << uint(c.Size)) - 1
}

// step advances a raw state one clock with zero input: the companion-matrix
// multiply s' = C * s for characteristic polynomial p(x).
func (c Config) step(s uint64) uint64 {
	fb := (s >> uint(c.Size-1)) & 1
	s = (s << 1) & c.mask()
	if fb == 1 {
		s ^= c.Poly
	}
	return s
}
