package misr

import (
	"fmt"

	"xhybrid/internal/logic"
)

// MISR is a concrete (fully known-valued) multiple-input signature register.
// Inputs are packed with input i at bit i; all inputs must be known values.
type MISR struct {
	cfg   Config
	state uint64
}

// New returns a zero-initialized MISR, validating the configuration.
func New(cfg Config) (*MISR, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &MISR{cfg: cfg}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *MISR {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the MISR configuration.
func (m *MISR) Config() Config { return m.cfg }

// State returns the current signature.
func (m *MISR) State() uint64 { return m.state }

// Reset clears the signature to zero.
func (m *MISR) Reset() { m.state = 0 }

// Clock advances one cycle, XORing the packed input word into the shifted
// state. Bits above the MISR size must be zero.
func (m *MISR) Clock(in uint64) {
	if in&^m.cfg.mask() != 0 {
		panic(fmt.Sprintf("misr: input %#x exceeds %d-bit MISR", in, m.cfg.Size))
	}
	m.state = m.cfg.step(m.state) ^ in
}

// ClockVector advances one cycle with a logic vector input (one value per
// stage). All values must be known; use Symbolic for X inputs.
func (m *MISR) ClockVector(in logic.Vector) error {
	if len(in) != m.cfg.Size {
		return fmt.Errorf("misr: input width %d, want %d", len(in), m.cfg.Size)
	}
	var word uint64
	for i, v := range in {
		switch v {
		case logic.One:
			word |= 1 << uint(i)
		case logic.Zero:
		default:
			return fmt.Errorf("misr: X input at stage %d; use Symbolic", i)
		}
	}
	m.Clock(word)
	return nil
}

// Signature runs a fresh MISR over a sequence of packed input words and
// returns the final state.
func Signature(cfg Config, inputs []uint64) (uint64, error) {
	m, err := New(cfg)
	if err != nil {
		return 0, err
	}
	for _, in := range inputs {
		m.Clock(in)
	}
	return m.State(), nil
}
