package misr

import (
	"strings"
	"testing"

	"xhybrid/internal/gf2"
	"xhybrid/internal/logic"
)

func TestEquationOrderingAndKnownTerm(t *testing.T) {
	s := MustNewSymbolic(MustStandard(4), 8)
	// Allocate labels out of order; Equation must sort them numerically
	// within a prefix (O3 < O12) and put the known "1" last.
	o12 := s.NewSymbol("O12")
	o3 := s.NewSymbol("O3")
	x1 := s.NewSymbol("X1")
	s.Clock(0b0001, []int{-1, -1, -1, -1}) // known contribution on bit 0... shifted by clock
	// Directly inject dependences into bit 2 via Clock with symbols.
	s.Clock(0, []int{-1, -1, o12, -1})
	s.Clock(0, []int{-1, -1, o3, -1})
	s.Clock(0, []int{-1, -1, x1, -1})
	eq := s.Equation(2)
	if !strings.HasPrefix(eq, "M3 = ") {
		t.Fatalf("Equation = %q", eq)
	}
	// After the three injection clocks the bit-2 deps include symbols from
	// shifted positions too; just verify ordering of whatever appears.
	idxO3 := strings.Index(eq, "O3")
	idxO12 := strings.Index(eq, "O12")
	if idxO3 >= 0 && idxO12 >= 0 && idxO12 < idxO3 {
		t.Fatalf("numeric suffix ordering broken: %q", eq)
	}
}

func TestClockPanicsOnBadSymbol(t *testing.T) {
	s := MustNewSymbolic(MustStandard(4), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown symbol id")
		}
	}()
	s.Clock(0, []int{5, -1, -1, -1})
}

func TestClockPanicsOnWideInput(t *testing.T) {
	s := MustNewSymbolic(MustStandard(4), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wide known input")
		}
	}()
	s.Clock(0x10, nil)
}

func TestClockPanicsOnBadSymbolWidth(t *testing.T) {
	s := MustNewSymbolic(MustStandard(4), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong symbol vector width")
		}
	}()
	s.Clock(0, []int{-1})
}

func TestClockVectorPanicsOnWidth(t *testing.T) {
	s := MustNewSymbolic(MustStandard(4), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong vector width")
		}
	}()
	s.ClockVector(make(logic.Vector, 3), nil)
}

func TestCombinePanicsOnWidth(t *testing.T) {
	s := MustNewSymbolic(MustStandard(4), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on selection width")
		}
	}()
	s.Combine(gf2.NewVec(3))
}

func TestDependsOn(t *testing.T) {
	s := MustNewSymbolic(MustStandard(4), 4)
	id := s.NewSymbol("X1")
	s.Clock(0, []int{id, -1, -1, -1})
	if !s.DependsOn(0, id) {
		t.Fatal("DependsOn missed direct injection")
	}
	if s.DependsOn(3, id) {
		t.Fatal("DependsOn spurious")
	}
	if s.Cycles() != 1 {
		t.Fatalf("Cycles = %d", s.Cycles())
	}
}

func TestNewSymbolicDefaultsAndErrors(t *testing.T) {
	if _, err := NewSymbolic(Config{Size: 4, Poly: 0x2}, 4); err == nil {
		t.Fatal("accepted singular polynomial")
	}
	s, err := NewSymbolic(MustStandard(4), 0) // cap defaults
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		s.NewSymbol("X")
	}
	if s.NumSymbols() != 40 {
		t.Fatal("growth with default cap failed")
	}
}

func TestMustNewSymbolicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewSymbolic(Config{Size: 99}, 4)
}

func TestSignatureHelperError(t *testing.T) {
	if _, err := Signature(Config{Size: 0}, nil); err == nil {
		t.Fatal("Signature accepted invalid config")
	}
	sig, err := Signature(MustStandard(8), []uint64{1, 2, 3})
	if err != nil || sig == 0 {
		t.Fatalf("Signature = %x, %v", sig, err)
	}
}

func TestClockVectorErrorPaths(t *testing.T) {
	m := MustNew(MustStandard(4))
	if err := m.ClockVector(make(logic.Vector, 3)); err == nil {
		t.Fatal("accepted wrong width")
	}
	bad := logic.Vector{logic.X, logic.Zero, logic.Zero, logic.Zero}
	if err := m.ClockVector(bad); err == nil {
		t.Fatal("concrete MISR accepted X input")
	}
	good := logic.Vector{logic.One, logic.Zero, logic.One, logic.Zero}
	if err := m.ClockVector(good); err != nil {
		t.Fatal(err)
	}
}
