package misr

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xhybrid/internal/gf2"
	"xhybrid/internal/logic"
)

// TestSymbolicMatchesConcrete is the central soundness property: for any
// input sequence containing X's, substituting any Boolean assignment for the
// X symbols into the symbolic state must reproduce the concrete MISR run on
// the substituted inputs.
func TestSymbolicMatchesConcrete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 4 + r.Intn(20)
		cfg := MustStandard(size)
		cycles := 1 + r.Intn(40)

		sym := MustNewSymbolic(cfg, 8)
		type xin struct{ cycle, stage int }
		var xs []xin
		inputs := make([]logic.Vector, cycles)
		for c := 0; c < cycles; c++ {
			in := make(logic.Vector, size)
			for i := range in {
				switch r.Intn(4) {
				case 0:
					in[i] = logic.X
					xs = append(xs, xin{c, i})
				case 1:
					in[i] = logic.One
				default:
					in[i] = logic.Zero
				}
			}
			inputs[c] = in
			sym.ClockVector(in, nil)
		}
		if sym.NumSymbols() != len(xs) {
			return false
		}
		// Try several random assignments.
		for trial := 0; trial < 4; trial++ {
			assign := gf2.NewVec(sym.NumSymbols())
			for i := 0; i < assign.Len(); i++ {
				if r.Intn(2) == 1 {
					assign.Set(i)
				}
			}
			// Concrete run with substituted values. Symbols were allocated
			// in scan order (cycle-major, then stage), matching xs order.
			conc := MustNew(cfg)
			k := 0
			for c := 0; c < cycles; c++ {
				var word uint64
				for i, v := range inputs[c] {
					switch v {
					case logic.One:
						word |= 1 << uint(i)
					case logic.X:
						if assign.Get(k) {
							word |= 1 << uint(i)
						}
						k++
					}
				}
				conc.Clock(word)
			}
			// Evaluate the symbolic state under the assignment.
			var got uint64
			for i := 0; i < size; i++ {
				bit := int(sym.Known() >> uint(i) & 1)
				sel := gf2.NewVec(size)
				sel.Set(i)
				_, deps := sym.Combine(sel)
				// Truncate deps to symbol count for the dot product.
				d := gf2.NewVec(sym.NumSymbols())
				deps.ForEach(func(b int) {
					if b < d.Len() {
						d.Set(b)
					}
				})
				bit ^= d.Dot(assign)
				got |= uint64(bit) << uint(i)
			}
			if got != conc.State() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestXFreeCombinationsCancel: combinations from NullCombinations of the
// dependence matrix must have empty symbol dependence, and their parity must
// match the concrete MISR under any X assignment.
func TestXFreeCombinationsCancel(t *testing.T) {
	cfg := MustStandard(10)
	r := rand.New(rand.NewSource(11))
	sym := MustNewSymbolic(cfg, 8)
	conc0 := MustNew(cfg)
	cycles := 25
	type loc struct{ cycle, stage int }
	var xlocs []loc
	words := make([]uint64, cycles)
	for c := 0; c < cycles; c++ {
		in := make(logic.Vector, 10)
		for i := range in {
			switch r.Intn(6) {
			case 0:
				if len(xlocs) < 6 { // keep #X < size so X-free rows exist
					in[i] = logic.X
					xlocs = append(xlocs, loc{c, i})
					continue
				}
				in[i] = logic.Zero
			case 1:
				in[i] = logic.One
				words[c] |= 1 << uint(i)
			default:
				in[i] = logic.Zero
			}
		}
		sym.ClockVector(in, nil)
	}
	dep := sym.Matrix()
	sels := gf2.NullCombinations(dep)
	if len(sels) < 10-len(xlocs) {
		t.Fatalf("too few X-free combinations: %d", len(sels))
	}
	// For every assignment of X values, the concrete signature's selected
	// parities must equal the symbolic known parities.
	for trial := 0; trial < 8; trial++ {
		conc := *conc0
		k := 0
		for c := 0; c < cycles; c++ {
			w := words[c]
			for _, l := range xlocs {
				if l.cycle == c && r.Intn(2) == 1 {
					w |= 1 << uint(l.stage)
				}
			}
			_ = k
			conc.Clock(w)
		}
		state := conc.State()
		for _, sel := range sels {
			parity, deps := sym.Combine(sel)
			if !deps.IsZero() {
				t.Fatal("X-free combination has symbol dependence")
			}
			var concParity int
			sel.ForEach(func(i int) { concParity ^= int(state >> uint(i) & 1) })
			if concParity != parity {
				t.Fatalf("X-free parity mismatch: concrete %d symbolic %d", concParity, parity)
			}
		}
	}
}

func TestEquationRendering(t *testing.T) {
	cfg := Config{Size: 4, Poly: 0x9}
	s := MustNewSymbolic(cfg, 4)
	in := logic.Vector{logic.One, logic.X, logic.Zero, logic.Zero}
	s.ClockVector(in, func(stage int) string { return fmt.Sprintf("X%d", stage) })
	eq0 := s.Equation(0)
	if !strings.Contains(eq0, "M1") || !strings.Contains(eq0, "1") {
		t.Fatalf("Equation(0) = %q", eq0)
	}
	eq1 := s.Equation(1)
	if !strings.Contains(eq1, "X1") {
		t.Fatalf("Equation(1) = %q, want X1 term", eq1)
	}
	// An untouched bit renders as zero.
	if got := s.Equation(3); got != "M4 = 0" {
		t.Fatalf("Equation(3) = %q", got)
	}
}

func TestSymbolGrowth(t *testing.T) {
	s := MustNewSymbolic(MustStandard(6), 2)
	for i := 0; i < 40; i++ {
		in := make(logic.Vector, 6)
		for j := range in {
			in[j] = logic.Zero
		}
		in[i%6] = logic.X
		s.ClockVector(in, nil)
	}
	if s.NumSymbols() != 40 {
		t.Fatalf("NumSymbols = %d, want 40", s.NumSymbols())
	}
	m := s.Matrix()
	if m.Cols() != 40 || m.Rows() != 6 {
		t.Fatalf("Matrix shape %dx%d", m.Rows(), m.Cols())
	}
}

func TestSymbolsByPrefixAndLabels(t *testing.T) {
	s := MustNewSymbolic(MustStandard(4), 4)
	a := s.NewSymbol("O1")
	b := s.NewSymbol("X1")
	c := s.NewSymbol("O2")
	os := s.SymbolsByPrefix("O")
	if len(os) != 2 || os[0] != a || os[1] != c {
		t.Fatalf("SymbolsByPrefix(O) = %v", os)
	}
	if s.Label(b) != "X1" {
		t.Fatalf("Label = %q", s.Label(b))
	}
	sub := s.MatrixOf(os)
	if sub.Cols() != 2 || sub.Rows() != 4 {
		t.Fatalf("MatrixOf shape %dx%d", sub.Rows(), sub.Cols())
	}
}

func TestResetSymbolsKeepsKnown(t *testing.T) {
	s := MustNewSymbolic(MustStandard(8), 4)
	in := make(logic.Vector, 8)
	for j := range in {
		in[j] = logic.Zero
	}
	in[0] = logic.One
	in[3] = logic.X
	s.ClockVector(in, nil)
	known := s.Known()
	if known == 0 {
		t.Fatal("known part empty")
	}
	s.ResetSymbols()
	if s.NumSymbols() != 0 {
		t.Fatal("symbols survive ResetSymbols")
	}
	if s.Known() != known {
		t.Fatal("ResetSymbols clobbered known state")
	}
	s.Reset()
	if s.Known() != 0 || s.Cycles() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestSymbolicKnownMatchesConcreteWithoutX(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := MustStandard(8)
		s := MustNewSymbolic(cfg, 4)
		c := MustNew(cfg)
		for i := 0; i < 30; i++ {
			w := r.Uint64() & 0xFF
			s.Clock(w, nil)
			c.Clock(w)
		}
		return s.Known() == c.State()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
