package misr

import (
	"math/rand"
	"testing"

	"xhybrid/internal/logic"
)

func BenchmarkConcreteClock(b *testing.B) {
	m := MustNew(MustStandard(32))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Clock(uint64(i) & 0xFFFFFFFF)
	}
}

func BenchmarkSymbolicClockKnownOnly(b *testing.B) {
	s := MustNewSymbolic(MustStandard(32), 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Clock(uint64(i)&0xFFFFFFFF, nil)
	}
}

func BenchmarkSymbolicClockWithX(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	in := make(logic.Vector, 32)
	for i := range in {
		switch {
		case r.Intn(20) == 0:
			in[i] = logic.X
		case r.Intn(2) == 1:
			in[i] = logic.One
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := MustNewSymbolic(MustStandard(32), 64)
		for c := 0; c < 32; c++ {
			s.ClockVector(in, nil)
		}
	}
}

func BenchmarkDependenceMatrix(b *testing.B) {
	s := MustNewSymbolic(MustStandard(32), 64)
	r := rand.New(rand.NewSource(2))
	for c := 0; c < 64; c++ {
		in := make(logic.Vector, 32)
		for i := range in {
			if r.Intn(40) == 0 {
				in[i] = logic.X
			}
		}
		s.ClockVector(in, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Matrix()
	}
}
