package misr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStandardConfigsValid(t *testing.T) {
	for size := 1; size <= 64; size++ {
		cfg, err := Standard(size)
		if err != nil {
			t.Fatalf("Standard(%d): %v", size, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Standard(%d) invalid: %v", size, err)
		}
	}
	if _, err := Standard(0); err == nil {
		t.Fatal("Standard(0) accepted")
	}
	if _, err := Standard(65); err == nil {
		t.Fatal("Standard(65) accepted")
	}
}

func TestValidateRejectsBadPoly(t *testing.T) {
	if err := (Config{Size: 8, Poly: 0x2}).Validate(); err == nil {
		t.Fatal("accepted p_0 = 0")
	}
	if err := (Config{Size: 4, Poly: 0x11}).Validate(); err == nil {
		t.Fatal("accepted term above x^size")
	}
}

func TestMustStandardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustStandard(0)
}

// A primitive polynomial's autonomous state cycle (no input) has period
// 2^m - 1 from any nonzero state.
func TestPrimitivePeriod(t *testing.T) {
	for _, size := range []int{4, 6, 10, 16} {
		cfg := MustStandard(size)
		state := uint64(1)
		period := 0
		for {
			state = cfg.step(state)
			period++
			if state == 1 {
				break
			}
			if period > 1<<uint(size) {
				t.Fatalf("size %d: no cycle found", size)
			}
		}
		want := 1<<uint(size) - 1
		if period != want {
			t.Fatalf("size %d: period %d, want %d (polynomial not primitive)", size, period, want)
		}
	}
}

// MISR compaction is linear: signature(a XOR b) == signature(a) XOR
// signature(b) when starting from the zero state.
func TestSuperposition(t *testing.T) {
	cfg := MustStandard(16)
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		cycles := int(n)%50 + 1
		a := make([]uint64, cycles)
		b := make([]uint64, cycles)
		ab := make([]uint64, cycles)
		for i := range a {
			a[i] = r.Uint64() & 0xFFFF
			b[i] = r.Uint64() & 0xFFFF
			ab[i] = a[i] ^ b[i]
		}
		sa, _ := Signature(cfg, a)
		sb, _ := Signature(cfg, b)
		sab, _ := Signature(cfg, ab)
		return sab == sa^sb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClockRejectsWideInput(t *testing.T) {
	m := MustNew(MustStandard(8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wide input")
		}
	}()
	m.Clock(0x100)
}

func TestDistinguishesSingleBitErrors(t *testing.T) {
	// A MISR must produce different signatures for inputs differing in one
	// bit (error polynomial of weight 1 can't alias).
	cfg := MustStandard(12)
	r := rand.New(rand.NewSource(3))
	base := make([]uint64, 30)
	for i := range base {
		base[i] = r.Uint64() & 0xFFF
	}
	s0, _ := Signature(cfg, base)
	for trial := 0; trial < 50; trial++ {
		cyc := r.Intn(len(base))
		bit := uint(r.Intn(12))
		mod := append([]uint64{}, base...)
		mod[cyc] ^= 1 << bit
		s1, _ := Signature(cfg, mod)
		if s0 == s1 {
			t.Fatalf("single-bit error aliased at cycle %d bit %d", cyc, bit)
		}
	}
}

func TestResetAndState(t *testing.T) {
	m := MustNew(MustStandard(8))
	m.Clock(0xAB)
	if m.State() == 0 {
		t.Fatal("state still zero after clock")
	}
	m.Reset()
	if m.State() != 0 {
		t.Fatal("Reset did not clear state")
	}
	if m.Config().Size != 8 {
		t.Fatal("Config lost")
	}
}
