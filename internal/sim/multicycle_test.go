package sim

import (
	"math/rand"
	"testing"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// One capture cycle must agree with Capture exactly: the first functional
// cycle sees all non-scan elements at X in both paths.
func TestCaptureNOneCycleMatchesCapture(t *testing.T) {
	c, err := netlist.Generate(netlist.GenConfig{
		Name: "mc", ScanCells: 40, PIs: 5, XClusters: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(c)
	s2 := New(c)
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		load := randomVec(r, len(c.ScanCells), 0)
		pis := randomVec(r, len(c.PIs), 0)
		a, _, err := s1.Capture(load, pis, NoFault)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := s2.CaptureN(load, []logic.Vector{pis}, 1, NoFault)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("trial %d: Capture %v != CaptureN(1) %v", trial, a, b)
		}
	}
}

// A non-scan element fed from known logic initializes after one cycle: the
// second capture cycle sees no X from it.
func TestXWashesOutAfterInitialization(t *testing.T) {
	b := netlist.NewBuilder("wash")
	pi := b.Input("pi")
	ns := b.NonScanDFF(pi)           // next state = pi (known)
	g := b.Gate(netlist.Xor, ns, pi) // X on cycle 1, known from cycle 2
	b.ScanDFF(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	load := logic.Vector{logic.Zero}
	pis := []logic.Vector{{logic.One}}
	cap1, _, err := s.CaptureN(load, pis, 1, NoFault)
	if err != nil {
		t.Fatal(err)
	}
	if cap1[0] != logic.X {
		t.Fatalf("cycle-1 capture = %v, want X (uninitialized)", cap1[0])
	}
	cap2, _, err := s.CaptureN(load, pis, 2, NoFault)
	if err != nil {
		t.Fatal(err)
	}
	// After cycle 1 the element holds pi=1; cycle 2 captures 1 XOR 1 = 0.
	if cap2[0] != logic.Zero {
		t.Fatalf("cycle-2 capture = %v, want 0 (X washed out)", cap2[0])
	}
}

// Multi-cycle capture on generated circuits: X's captured into scan cells
// in cycle 1 recirculate through the logic in later cycles, so — without a
// reset network — the X count can grow with the capture window even though
// the uninitialized elements themselves initialize after one cycle. The
// test pins the mechanism: the non-scan elements' direct contribution
// disappears (wash-out, checked above), deterministic behavior holds, and
// the recirculated count is reproducible.
func TestMultiCycleXRecirculation(t *testing.T) {
	c, err := netlist.Generate(netlist.GenConfig{
		Name: "trend", ScanCells: 96, PIs: 8, XClusters: 6, XFanout: 5, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	s2 := New(c)
	r := rand.New(rand.NewSource(5))
	x1, x4 := 0, 0
	for p := 0; p < 40; p++ {
		load := randomVec(r, len(c.ScanCells), 0)
		pis := randomVec(r, len(c.PIs), 0)
		a, _, err := s.CaptureN(load, []logic.Vector{pis}, 1, NoFault)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := s.CaptureN(load, []logic.Vector{pis}, 4, NoFault)
		if err != nil {
			t.Fatal(err)
		}
		b2, _, err := s2.CaptureN(load, []logic.Vector{pis}, 4, NoFault)
		if err != nil {
			t.Fatal(err)
		}
		if !b.Equal(b2) {
			t.Fatal("multi-cycle capture not deterministic")
		}
		x1 += a.CountX()
		x4 += b.CountX()
	}
	if x1 == 0 {
		t.Fatal("no X's at single capture")
	}
	if x4 == 0 {
		t.Fatal("recirculation produced no X's at all")
	}
}

func TestCaptureNPerCyclePIs(t *testing.T) {
	// Scan cell captures the PI directly; with per-cycle PIs the final
	// capture must reflect the last cycle's value.
	b := netlist.NewBuilder("seq")
	pi := b.Input("pi")
	buf := b.Gate(netlist.Buf, pi)
	b.ScanDFF(buf)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	cap, _, err := s.CaptureN(logic.Vector{logic.Zero},
		[]logic.Vector{{logic.One}, {logic.Zero}, {logic.One}}, 3, NoFault)
	if err != nil {
		t.Fatal(err)
	}
	if cap[0] != logic.One {
		t.Fatalf("capture = %v, want last cycle's PI", cap[0])
	}
	// Fewer PI vectors than cycles: last one repeats.
	cap, _, err = s.CaptureN(logic.Vector{logic.Zero},
		[]logic.Vector{{logic.Zero}, {logic.One}}, 4, NoFault)
	if err != nil {
		t.Fatal(err)
	}
	if cap[0] != logic.One {
		t.Fatalf("capture = %v, want repeated last PI", cap[0])
	}
}

func TestCaptureNValidation(t *testing.T) {
	c, err := netlist.Generate(netlist.GenConfig{Name: "v", ScanCells: 8, PIs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	good := logic.NewVector(8)
	if _, _, err := s.CaptureN(good, []logic.Vector{logic.NewVector(2)}, 0, NoFault); err == nil {
		t.Fatal("accepted zero cycles")
	}
	if _, _, err := s.CaptureN(logic.NewVector(3), []logic.Vector{logic.NewVector(2)}, 1, NoFault); err == nil {
		t.Fatal("accepted bad load width")
	}
	if _, _, err := s.CaptureN(good, nil, 1, NoFault); err == nil {
		t.Fatal("accepted empty pi list")
	}
	if _, _, err := s.CaptureN(good, []logic.Vector{logic.NewVector(1)}, 1, NoFault); err == nil {
		t.Fatal("accepted bad pi width")
	}
}
