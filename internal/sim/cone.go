package sim

// Cone-limited word-parallel evaluation: the PPSFP fault-simulation kernel.
//
// A single stuck-at fault can only disturb the gates in its combinational
// fanout cone, so after the fault-free ("good") machine has been evaluated
// once for a 64-pattern block, each fault needs only its cone re-evaluated —
// every fanin read at the cone frontier comes straight from the retained
// good-machine words. Block captures the good machine's full pval state,
// ConeIndex holds the circuit-wide immutable adjacency (built once, shared
// by every worker), and ConeSim is the per-worker scratch that builds cones
// and evaluates them. internal/fault drives these from its fault-parallel
// PPSFP engine; the scalar equivalence is locked by TestConeDiffMatchesScalar.

import (
	"sort"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// Block is the retained word-level state of one evaluated batch of up to 64
// patterns: every node's 64-way pval word, immutable once built. It is the
// good-machine side of the PPSFP kernel — cone evaluations read their
// frontier fanins from it.
type Block struct {
	n     int
	lanes uint64 // mask of valid lanes: bits [0, n)
	vals  []pval
}

// Patterns returns the number of patterns the block evaluated.
func (b *Block) Patterns() int { return b.n }

// CaptureBlock is Capture, but instead of unpacking the scan captures it
// retains the whole evaluated word state as an immutable Block for later
// cone evaluations. The simulator's scratch is copied, so the block stays
// valid across further Capture calls on the same PSim.
func (s *PSim) CaptureBlock(loads, pis []logic.Vector) (*Block, error) {
	if err := s.eval(loads, pis, NoFault); err != nil {
		return nil, err
	}
	n := len(loads)
	b := &Block{n: n, lanes: laneMask(n), vals: make([]pval, len(s.vals))}
	copy(b.vals, s.vals)
	return b, nil
}

// laneMask returns the mask of valid lanes for an n-pattern batch.
func laneMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// ConeIndex is the immutable circuit-wide adjacency the cone kernel needs:
// combinational fanout (CSR-compacted), the scan cells observing each node,
// and each node's topological rank. Build it once per circuit and share it
// across workers; per-worker scratch lives in ConeSim.
type ConeIndex struct {
	c *netlist.Circuit
	// fanout CSR: readers[fanoutOff[n]:fanoutOff[n+1]] are the
	// combinational gates reading node n (state elements excluded — they
	// do not propagate combinationally; their capture is read separately).
	fanoutOff []int32
	readers   []int32
	// capOf CSR: capCells[capOff[n]:capOff[n+1]] are the scan-cell indices
	// whose capture input (DFF fanin) is node n.
	capOff   []int32
	capCells []int32
	// capIn[i] is the capture driver node of scan cell i.
	capIn []int32
	// pos[n] is the node's topological rank: 0 for sources, EvalOrder
	// position + 1 for combinational gates. Sorting cone gates by pos
	// yields a valid evaluation order.
	pos []int32
}

// NewConeIndex builds the shared cone adjacency for a finalized circuit.
func NewConeIndex(c *netlist.Circuit) *ConeIndex {
	n := c.NumGates()
	ix := &ConeIndex{
		c:         c,
		fanoutOff: make([]int32, n+1),
		capOff:    make([]int32, n+1),
		capIn:     make([]int32, len(c.ScanCells)),
		pos:       make([]int32, n),
	}
	for i, id := range c.EvalOrder() {
		ix.pos[id] = int32(i + 1)
	}
	// Count, prefix-sum, fill: classic two-pass CSR build.
	for _, g := range c.Gates {
		if g.Type.IsState() {
			continue
		}
		for _, f := range g.Fanin {
			ix.fanoutOff[f+1]++
		}
	}
	for i, id := range c.ScanCells {
		ix.capIn[i] = int32(c.Gates[id].Fanin[0])
		ix.capOff[c.Gates[id].Fanin[0]+1]++
	}
	for i := 0; i < n; i++ {
		ix.fanoutOff[i+1] += ix.fanoutOff[i]
		ix.capOff[i+1] += ix.capOff[i]
	}
	ix.readers = make([]int32, ix.fanoutOff[n])
	ix.capCells = make([]int32, ix.capOff[n])
	next := make([]int32, n)
	for id, g := range c.Gates {
		if g.Type.IsState() {
			continue
		}
		for _, f := range g.Fanin {
			ix.readers[ix.fanoutOff[f]+next[f]] = int32(id)
			next[f]++
		}
	}
	for i := range next {
		next[i] = 0
	}
	for i := range c.ScanCells {
		d := ix.capIn[i]
		ix.capCells[ix.capOff[d]+next[d]] = int32(i)
		next[d]++
	}
	return ix
}

// fanoutOf returns the combinational readers of node n.
func (ix *ConeIndex) fanoutOf(n int32) []int32 {
	return ix.readers[ix.fanoutOff[n]:ix.fanoutOff[n+1]]
}

// capCellsOf returns the scan cells capturing node n.
func (ix *ConeIndex) capCellsOf(n int32) []int32 {
	return ix.capCells[ix.capOff[n]:ix.capOff[n+1]]
}

// ConeSim is one worker's cone-evaluation scratch: a full-size faulty word
// array with generation stamps (so "reset" is a counter bump, not a clear),
// plus reusable cone buffers. Not safe for concurrent use — parallel
// callers give each worker its own ConeSim over a shared ConeIndex.
type ConeSim struct {
	ix      *ConeIndex
	faulty  []pval
	stamp   []uint32
	gen     uint32
	mark    []uint32
	markGen uint32
	gates   []int32
	cells   []int32
	queue   []int32
}

// NewSim returns a fresh per-worker cone evaluator over the index.
func (ix *ConeIndex) NewSim() *ConeSim {
	n := ix.c.NumGates()
	return &ConeSim{
		ix:     ix,
		faulty: make([]pval, n),
		stamp:  make([]uint32, n),
		mark:   make([]uint32, n),
	}
}

// BuildCone computes the combinational fanout cone of node: the gates whose
// value the fault can disturb, in topological evaluation order, and the
// sorted scan-cell indices observing the node or any cone gate. The
// returned slices alias internal buffers and are valid until the next
// BuildCone call on this ConeSim.
func (cs *ConeSim) BuildCone(node int) (gates, obsCells []int32) {
	ix := cs.ix
	cs.markGen++
	cs.gates = cs.gates[:0]
	cs.cells = cs.cells[:0]
	cs.queue = append(cs.queue[:0], int32(node))
	cs.mark[node] = cs.markGen
	cs.cells = append(cs.cells, ix.capCellsOf(int32(node))...)
	for len(cs.queue) > 0 {
		n := cs.queue[len(cs.queue)-1]
		cs.queue = cs.queue[:len(cs.queue)-1]
		for _, r := range ix.fanoutOf(n) {
			if cs.mark[r] == cs.markGen {
				continue
			}
			cs.mark[r] = cs.markGen
			cs.gates = append(cs.gates, r)
			cs.cells = append(cs.cells, ix.capCellsOf(r)...)
			cs.queue = append(cs.queue, r)
		}
	}
	sort.Slice(cs.gates, func(i, j int) bool { return ix.pos[cs.gates[i]] < ix.pos[cs.gates[j]] })
	sort.Slice(cs.cells, func(i, j int) bool { return cs.cells[i] < cs.cells[j] })
	return cs.gates, cs.cells
}

// FaultDiff evaluates the fault against the good block by re-evaluating
// only the cone gates (frontier fanins read the good machine's words) and
// calls visit once per observing scan cell whose captured word provably
// flips — lanes has bit k set when pattern k's capture is a known value in
// both machines and the values differ. gates and obsCells must come from
// BuildCone(fault.Node) on this ConeSim. Returns the number of gate
// evaluations performed (0 when forcing the fault cannot change the node's
// word, in which case nothing downstream can differ and visit is not
// called).
func (cs *ConeSim) FaultDiff(b *Block, fault Fault, gates, obsCells []int32, visit func(cell int, lanes uint64)) int {
	ix := cs.ix
	if fault.Node < 0 || fault.Node >= len(b.vals) {
		return 0
	}
	forced := fromV(fault.StuckAt)
	if forced == b.vals[fault.Node] {
		return 0
	}
	cs.gen++
	cs.faulty[fault.Node] = forced
	cs.stamp[fault.Node] = cs.gen
	evals := 0
	for _, id32 := range gates {
		id := int(id32)
		g := ix.c.Gates[id]
		for _, f := range g.Fanin {
			if cs.stamp[f] != cs.gen {
				cs.faulty[f] = b.vals[f]
				cs.stamp[f] = cs.gen
			}
		}
		cs.faulty[id] = evalGateP(g, cs.faulty)
		cs.stamp[id] = cs.gen
		evals++
	}
	for _, cell := range obsCells {
		d := ix.capIn[cell]
		gw := b.vals[d]
		fw := cs.faulty[d] // d is the fault node or a cone gate: always stamped
		diff := (gw.one ^ fw.one) &^ (gw.x | fw.x) & b.lanes
		if diff != 0 {
			visit(int(cell), diff)
		}
	}
	return evals
}

// CellCount returns the scan-cell count of the indexed circuit (the width
// visit cell indices range over).
func (ix *ConeIndex) CellCount() int { return len(ix.capIn) }
