package sim

import (
	"math/rand"
	"testing"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// The event-driven simulator must agree with the full simulator for every
// (pattern, fault) pair, including the restore path (repeated faults on the
// same loaded pattern).
func TestIncrementalMatchesFull(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c, err := netlist.Generate(netlist.GenConfig{
			Name: "inc", ScanCells: 48, PIs: 6, XClusters: 3, XFanout: 4, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		full := New(c)
		inc := NewIncremental(c)
		r := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 8; trial++ {
			load := randomVec(r, len(c.ScanCells), 0.05)
			pis := randomVec(r, len(c.PIs), 0.05)
			if err := inc.Load(load, pis); err != nil {
				t.Fatal(err)
			}
			// Fault-free agreement.
			wantCap, wantPos, err := full.Capture(load, pis, NoFault)
			if err != nil {
				t.Fatal(err)
			}
			gotCap, gotPos, err := inc.Capture()
			if err != nil {
				t.Fatal(err)
			}
			if !gotCap.Equal(wantCap) || !gotPos.Equal(wantPos) {
				t.Fatalf("seed %d trial %d: fault-free mismatch", seed, trial)
			}
			// Several faults against the same loaded pattern.
			for ftrial := 0; ftrial < 12; ftrial++ {
				node := r.Intn(c.NumGates())
				switch c.Gates[node].Type {
				case netlist.DFF, netlist.NonScanDFF, netlist.Tie0, netlist.Tie1, netlist.TieX:
					continue
				}
				f := Fault{Node: node, StuckAt: logic.FromBit(r.Intn(2))}
				wc, wp, err := full.Capture(load, pis, f)
				if err != nil {
					t.Fatal(err)
				}
				gc, gp, err := inc.WithFault(f)
				if err != nil {
					t.Fatal(err)
				}
				if !gc.Equal(wc) || !gp.Equal(wp) {
					t.Fatalf("seed %d fault %v: mismatch", seed, f)
				}
				// The restore path must leave the fault-free state intact.
				rc, _, err := inc.Capture()
				if err != nil {
					t.Fatal(err)
				}
				if !rc.Equal(wantCap) {
					t.Fatalf("seed %d fault %v: restore corrupted state", seed, f)
				}
			}
		}
	}
}

func TestIncrementalValidation(t *testing.T) {
	c, err := netlist.Generate(netlist.GenConfig{Name: "v", ScanCells: 8, PIs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(c)
	if _, _, err := inc.Capture(); err == nil {
		t.Fatal("Capture before Load accepted")
	}
	if _, _, err := inc.WithFault(Fault{Node: 0}); err == nil {
		t.Fatal("WithFault before Load accepted")
	}
	load := randomVec(rand.New(rand.NewSource(1)), 8, 0)
	pis := randomVec(rand.New(rand.NewSource(2)), 2, 0)
	if err := inc.Load(randomVec(rand.New(rand.NewSource(1)), 3, 0), pis); err == nil {
		t.Fatal("bad load width accepted")
	}
	if err := inc.Load(load, pis); err != nil {
		t.Fatal(err)
	}
	if _, _, err := inc.WithFault(Fault{Node: 9999}); err == nil {
		t.Fatal("out-of-range fault accepted")
	}
}
