package sim

import (
	"fmt"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// CaptureN runs a multi-cycle capture: the scan cells are loaded once, then
// the circuit is clocked cycles times functionally. Non-scan storage
// elements power up at X but *carry state across cycles*, so logic can
// initialize them and the captured X-density typically falls as the capture
// window grows — the single-capture test (Capture) is the X-pessimistic
// worst case the paper's architecture is sized for.
//
// pis supplies the primary-input vector per cycle; a single vector is
// replicated across all cycles. The returned response is the scan-cell
// state after the last cycle.
func (s *Simulator) CaptureN(load logic.Vector, pis []logic.Vector, cycles int, fault Fault) (capture, pos logic.Vector, err error) {
	c := s.c
	if cycles < 1 {
		return nil, nil, fmt.Errorf("sim: need at least one capture cycle")
	}
	if len(load) != len(c.ScanCells) {
		return nil, nil, fmt.Errorf("sim: load width %d, want %d scan cells", len(load), len(c.ScanCells))
	}
	if len(pis) == 0 {
		return nil, nil, fmt.Errorf("sim: no primary-input vectors")
	}
	for k, v := range pis {
		if len(v) != len(c.PIs) {
			return nil, nil, fmt.Errorf("sim: pi vector %d has width %d, want %d", k, len(v), len(c.PIs))
		}
	}
	piAt := func(k int) logic.Vector {
		if len(pis) == 1 {
			return pis[0]
		}
		if k < len(pis) {
			return pis[k]
		}
		return pis[len(pis)-1]
	}

	scanState := load.Clone()
	nonScanState := logic.NewVector(len(c.NonScan)) // all X at power-up
	for cyc := 0; cyc < cycles; cyc++ {
		pi := piAt(cyc)
		for i, id := range c.PIs {
			s.vals[id] = s.forced(id, pi[i], fault)
		}
		for i, id := range c.ScanCells {
			s.vals[id] = s.forced(id, scanState[i], fault)
		}
		for i, id := range c.NonScan {
			s.vals[id] = s.forced(id, nonScanState[i], fault)
		}
		for id, g := range c.Gates {
			switch g.Type {
			case netlist.Tie0:
				s.vals[id] = s.forced(id, logic.Zero, fault)
			case netlist.Tie1:
				s.vals[id] = s.forced(id, logic.One, fault)
			case netlist.TieX:
				s.vals[id] = s.forced(id, logic.X, fault)
			}
		}
		for _, id := range c.EvalOrder() {
			s.vals[id] = s.forced(id, evalGate(c.Gates[id], s.vals), fault)
		}
		for i, id := range c.ScanCells {
			scanState[i] = s.vals[c.Gates[id].Fanin[0]]
		}
		for i, id := range c.NonScan {
			nonScanState[i] = s.vals[c.Gates[id].Fanin[0]]
		}
	}
	pos = make(logic.Vector, len(c.POs))
	for i, id := range c.POs {
		pos[i] = s.vals[id]
	}
	return scanState, pos, nil
}
