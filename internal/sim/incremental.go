package sim

import (
	"fmt"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// Incremental is an event-driven simulator: after a full evaluation of one
// pattern, injecting (and removing) a stuck-at fault re-evaluates only the
// fault's fanout cone in level order — the standard serial-fault-simulation
// speedup, since a single fault typically reaches a small fraction of the
// netlist.
type Incremental struct {
	c      *netlist.Circuit
	vals   []logic.V
	fanout [][]int
	// buckets[level] holds nodes queued for re-evaluation.
	buckets [][]int
	inQueue []bool
	loaded  bool
}

// NewIncremental returns an event-driven simulator for the circuit.
func NewIncremental(c *netlist.Circuit) *Incremental {
	s := &Incremental{
		c:       c,
		vals:    make([]logic.V, c.NumGates()),
		fanout:  make([][]int, c.NumGates()),
		inQueue: make([]bool, c.NumGates()),
	}
	for id, g := range c.Gates {
		if g.Type.IsState() {
			continue // state elements read their fanin only at capture
		}
		for _, f := range g.Fanin {
			s.fanout[f] = append(s.fanout[f], id)
		}
	}
	s.buckets = make([][]int, c.Depth()+1)
	return s
}

// Load fully evaluates one pattern's combinational values (fault-free).
func (s *Incremental) Load(load, pis logic.Vector) error {
	c := s.c
	if len(load) != len(c.ScanCells) {
		return fmt.Errorf("sim: load width %d, want %d", len(load), len(c.ScanCells))
	}
	if len(pis) != len(c.PIs) {
		return fmt.Errorf("sim: pi width %d, want %d", len(pis), len(c.PIs))
	}
	for i, id := range c.PIs {
		s.vals[id] = pis[i]
	}
	for i, id := range c.ScanCells {
		s.vals[id] = load[i]
	}
	for _, id := range c.NonScan {
		s.vals[id] = logic.X
	}
	for id, g := range c.Gates {
		switch g.Type {
		case netlist.Tie0:
			s.vals[id] = logic.Zero
		case netlist.Tie1:
			s.vals[id] = logic.One
		case netlist.TieX:
			s.vals[id] = logic.X
		}
	}
	for _, id := range c.EvalOrder() {
		s.vals[id] = evalGate(c.Gates[id], s.vals)
	}
	s.loaded = true
	return nil
}

// propagateReaders re-evaluates the fanout cone of node seed in level order
// after seed's value changed; seed itself is left alone (its value is set
// by the caller, e.g. a fault overlay).
func (s *Incremental) propagateReaders(seed int) {
	push := func(id int) {
		if !s.inQueue[id] {
			s.inQueue[id] = true
			lvl := s.c.Level(id)
			s.buckets[lvl] = append(s.buckets[lvl], id)
		}
	}
	for _, reader := range s.fanout[seed] {
		push(reader)
	}
	for lvl := range s.buckets {
		for k := 0; k < len(s.buckets[lvl]); k++ {
			id := s.buckets[lvl][k]
			s.inQueue[id] = false
			nv := evalGate(s.c.Gates[id], s.vals)
			if nv == s.vals[id] {
				continue
			}
			s.vals[id] = nv
			for _, reader := range s.fanout[id] {
				push(reader)
			}
		}
		s.buckets[lvl] = s.buckets[lvl][:0]
	}
}

// WithFault injects a stuck-at fault, returns the captured scan response
// and PO values under it, and restores the fault-free state. Load must have
// been called for the current pattern.
func (s *Incremental) WithFault(f Fault) (capture, pos logic.Vector, err error) {
	if !s.loaded {
		return nil, nil, fmt.Errorf("sim: WithFault before Load")
	}
	if f.Node < 0 || f.Node >= s.c.NumGates() {
		return nil, nil, fmt.Errorf("sim: fault node %d out of range", f.Node)
	}
	orig := s.vals[f.Node]
	if orig != f.StuckAt {
		s.vals[f.Node] = f.StuckAt
		s.propagateReaders(f.Node)
	}
	capture = make(logic.Vector, len(s.c.ScanCells))
	for i, id := range s.c.ScanCells {
		capture[i] = s.vals[s.c.Gates[id].Fanin[0]]
	}
	pos = make(logic.Vector, len(s.c.POs))
	for i, id := range s.c.POs {
		pos[i] = s.vals[id]
	}
	if orig != f.StuckAt {
		s.vals[f.Node] = orig
		s.propagateReaders(f.Node)
	}
	return capture, pos, nil
}

// Capture returns the fault-free captured response and PO values.
func (s *Incremental) Capture() (capture, pos logic.Vector, err error) {
	if !s.loaded {
		return nil, nil, fmt.Errorf("sim: Capture before Load")
	}
	capture = make(logic.Vector, len(s.c.ScanCells))
	for i, id := range s.c.ScanCells {
		capture[i] = s.vals[s.c.Gates[id].Fanin[0]]
	}
	pos = make(logic.Vector, len(s.c.POs))
	for i, id := range s.c.POs {
		pos[i] = s.vals[id]
	}
	return capture, pos, nil
}
