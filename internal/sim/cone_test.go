package sim

import (
	"math/rand"
	"testing"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// coneCircuit builds a generated circuit large enough for non-trivial cones.
func coneCircuit(t *testing.T, seed int64) *netlist.Circuit {
	c, err := netlist.Generate(netlist.GenConfig{
		Name:      "cone",
		ScanCells: 32,
		PIs:       6,
		XClusters: 3,
		XFanout:   4,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// randVec returns a random three-valued vector with a sprinkling of Xes.
func randVec(r *rand.Rand, n int) logic.Vector {
	v := make(logic.Vector, n)
	for i := range v {
		switch r.Intn(8) {
		case 0:
			v[i] = logic.X
		case 1, 2, 3:
			v[i] = logic.One
		default:
			v[i] = logic.Zero
		}
	}
	return v
}

// TestConeDiffMatchesScalar is the kernel's ground truth: for every fault,
// FaultDiff's per-cell difference lanes must equal what the scalar simulator
// reports pattern by pattern (capture differs, both values known), and no
// scan cell outside the cone's observation set may ever differ.
func TestConeDiffMatchesScalar(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c := coneCircuit(t, seed)
		r := rand.New(rand.NewSource(seed * 77))
		// 50 patterns: a partial block, so the lane mask matters.
		n := 50
		loads := make([]logic.Vector, n)
		pis := make([]logic.Vector, n)
		for k := 0; k < n; k++ {
			loads[k] = randVec(r, len(c.ScanCells))
			pis[k] = randVec(r, len(c.PIs))
		}
		blk, err := NewParallel(c).CaptureBlock(loads, pis)
		if err != nil {
			t.Fatal(err)
		}
		if blk.Patterns() != n {
			t.Fatalf("Patterns() = %d, want %d", blk.Patterns(), n)
		}

		// Scalar reference captures: good machine once, then per fault.
		scalar := New(c)
		good := make([]logic.Vector, n)
		for k := 0; k < n; k++ {
			cap, _, err := scalar.Capture(loads[k], pis[k], NoFault)
			if err != nil {
				t.Fatal(err)
			}
			good[k] = cap
		}

		ix := NewConeIndex(c)
		if ix.CellCount() != len(c.ScanCells) {
			t.Fatalf("CellCount = %d", ix.CellCount())
		}
		cs := ix.NewSim()
		for node := 0; node < c.NumGates(); node += 3 {
			switch c.Gates[node].Type {
			case netlist.DFF, netlist.NonScanDFF, netlist.Tie0, netlist.Tie1, netlist.TieX:
				continue
			}
			for _, sa := range []logic.V{logic.Zero, logic.One} {
				fault := Fault{Node: node, StuckAt: sa}
				gates, cells := cs.BuildCone(node)
				gotLanes := make(map[int]uint64)
				cs.FaultDiff(blk, fault, gates, cells, func(cell int, lanes uint64) {
					gotLanes[cell] = lanes
				})
				inCone := make(map[int]bool, len(cells))
				for _, cell := range cells {
					inCone[int(cell)] = true
				}
				for k := 0; k < n; k++ {
					bad, _, err := scalar.Capture(loads[k], pis[k], fault)
					if err != nil {
						t.Fatal(err)
					}
					for cell := range bad {
						diff := good[k][cell] != bad[cell] &&
							good[k][cell] != logic.X && bad[cell] != logic.X
						if diff && !inCone[cell] {
							t.Fatalf("seed %d fault %d/sa%v: cell %d differs outside cone", seed, node, sa, cell)
						}
						want := diff
						got := gotLanes[cell]>>uint(k)&1 == 1
						if got != want {
							t.Fatalf("seed %d fault %d/sa%v pattern %d cell %d: FaultDiff lane %v, scalar %v",
								seed, node, sa, k, cell, got, want)
						}
					}
				}
			}
		}
	}
}

// Cone gates must come back in a valid evaluation order and the observing
// cells sorted; the block retained by CaptureBlock must stay valid across
// later Capture calls on the same PSim.
func TestConeBuildAndBlockImmutability(t *testing.T) {
	c := coneCircuit(t, 5)
	r := rand.New(rand.NewSource(9))
	n := 16
	loads := make([]logic.Vector, n)
	pis := make([]logic.Vector, n)
	for k := 0; k < n; k++ {
		loads[k] = randVec(r, len(c.ScanCells))
		pis[k] = randVec(r, len(c.PIs))
	}
	ps := NewParallel(c)
	blk, err := ps.CaptureBlock(loads, pis)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]pval, len(blk.vals))
	copy(before, blk.vals)
	// Reusing the PSim must not disturb the retained block.
	if _, err := ps.Capture(loads[:1], pis[:1]); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if blk.vals[i] != before[i] {
			t.Fatal("CaptureBlock state mutated by a later Capture")
		}
	}

	ix := NewConeIndex(c)
	cs := ix.NewSim()
	for node := 0; node < c.NumGates(); node += 7 {
		gates, cells := cs.BuildCone(node)
		for i := 1; i < len(gates); i++ {
			if ix.pos[gates[i-1]] >= ix.pos[gates[i]] {
				t.Fatalf("node %d: cone gates not in topological order", node)
			}
		}
		for i := 1; i < len(cells); i++ {
			if cells[i-1] >= cells[i] {
				t.Fatalf("node %d: observing cells not strictly sorted", node)
			}
		}
	}

	if _, err := ps.CaptureBlock(nil, nil); err == nil {
		t.Fatal("CaptureBlock accepted an empty batch")
	}
}
