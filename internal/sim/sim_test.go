package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// adder builds a combinational full adder captured into 2 scan flops:
// sum = a^b^cin, carry = ab | cin(a^b).
func adder(t *testing.T) *netlist.Circuit {
	b := netlist.NewBuilder("fa")
	a := b.Input("a")
	bb := b.Input("b")
	cin := b.Input("cin")
	axb := b.Gate(netlist.Xor, a, bb)
	sum := b.Gate(netlist.Xor, axb, cin)
	ab := b.Gate(netlist.And, a, bb)
	c2 := b.Gate(netlist.And, cin, axb)
	carry := b.Gate(netlist.Or, ab, c2)
	b.ScanDFF(sum)
	b.ScanDFF(carry)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAdderTruthTable(t *testing.T) {
	c := adder(t)
	s := New(c)
	load := logic.Vector{logic.Zero, logic.Zero}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for ci := 0; ci < 2; ci++ {
				pis := logic.Vector{logic.FromBit(a), logic.FromBit(b), logic.FromBit(ci)}
				cap, _, err := s.Capture(load, pis, NoFault)
				if err != nil {
					t.Fatal(err)
				}
				wantSum := logic.FromBit(a ^ b ^ ci)
				wantCarry := logic.FromBit((a & b) | (ci & (a ^ b)))
				if cap[0] != wantSum || cap[1] != wantCarry {
					t.Fatalf("a=%d b=%d ci=%d: got %v/%v want %v/%v", a, b, ci, cap[0], cap[1], wantSum, wantCarry)
				}
			}
		}
	}
}

func TestXPropagationThroughAdder(t *testing.T) {
	c := adder(t)
	s := New(c)
	load := logic.Vector{logic.Zero, logic.Zero}
	// a=X, b=0, cin=0: sum=X, carry=0 (AND with 0 blocks the X).
	cap, _, err := s.Capture(load, logic.Vector{logic.X, logic.Zero, logic.Zero}, NoFault)
	if err != nil {
		t.Fatal(err)
	}
	if cap[0] != logic.X || cap[1] != logic.Zero {
		t.Fatalf("got %v, want [X 0]", cap)
	}
}

// Tri-state X source: enable=0 floats.
func TestTriStateX(t *testing.T) {
	b := netlist.NewBuilder("tri")
	en := b.Input("en")
	d := b.Input("d")
	tri := b.Gate(netlist.Tri, en, d)
	b.ScanDFF(tri)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	cases := []struct {
		en, d, want logic.V
	}{
		{logic.One, logic.One, logic.One},
		{logic.One, logic.Zero, logic.Zero},
		{logic.One, logic.X, logic.X},
		{logic.Zero, logic.One, logic.X},
		{logic.X, logic.One, logic.X},
	}
	for _, tc := range cases {
		cap, _, err := s.Capture(logic.Vector{logic.Zero}, logic.Vector{tc.en, tc.d}, NoFault)
		if err != nil {
			t.Fatal(err)
		}
		if cap[0] != tc.want {
			t.Fatalf("tri(en=%v,d=%v) = %v, want %v", tc.en, tc.d, cap[0], tc.want)
		}
	}
}

func TestNonScanIsX(t *testing.T) {
	b := netlist.NewBuilder("ns")
	pi := b.Input("pi")
	ns := b.NonScanDFF(pi)
	g := b.Gate(netlist.Xor, ns, pi)
	b.ScanDFF(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	cap, _, err := s.Capture(logic.Vector{logic.Zero}, logic.Vector{logic.One}, NoFault)
	if err != nil {
		t.Fatal(err)
	}
	if cap[0] != logic.X {
		t.Fatalf("uninitialized element did not produce X: %v", cap[0])
	}
}

func TestTieGates(t *testing.T) {
	b := netlist.NewBuilder("tie")
	_ = b.Input("pi")
	t0 := b.Gate(netlist.Tie0)
	t1 := b.Gate(netlist.Tie1)
	tx := b.Gate(netlist.TieX)
	b.ScanDFF(t0)
	b.ScanDFF(t1)
	b.ScanDFF(tx)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	cap, _, err := s.Capture(logic.NewVector(3), logic.Vector{logic.Zero}, NoFault)
	if err != nil {
		t.Fatal(err)
	}
	want := logic.Vector{logic.Zero, logic.One, logic.X}
	if !cap.Equal(want) {
		t.Fatalf("ties = %v, want %v", cap, want)
	}
}

func TestFaultInjectionChangesOutput(t *testing.T) {
	c := adder(t)
	s := New(c)
	load := logic.Vector{logic.Zero, logic.Zero}
	pis := logic.Vector{logic.One, logic.Zero, logic.Zero} // sum=1, carry=0
	good, _, err := s.Capture(load, pis, NoFault)
	if err != nil {
		t.Fatal(err)
	}
	// Stuck-at-0 on input a: sum flips to 0.
	faulty, _, err := s.Capture(load, pis, Fault{Node: c.PIs[0], StuckAt: logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Equal(good) {
		t.Fatal("fault produced identical response")
	}
	if faulty[0] != logic.Zero {
		t.Fatalf("faulty sum = %v, want 0", faulty[0])
	}
}

func TestCaptureValidation(t *testing.T) {
	c := adder(t)
	s := New(c)
	if _, _, err := s.Capture(logic.NewVector(1), logic.NewVector(3), NoFault); err == nil {
		t.Fatal("accepted bad load width")
	}
	if _, _, err := s.Capture(logic.NewVector(2), logic.NewVector(2), NoFault); err == nil {
		t.Fatal("accepted bad pi width")
	}
}

// randomVec returns a random 0/1/X vector with xProb X's.
func randomVec(r *rand.Rand, n int, xProb float64) logic.Vector {
	v := make(logic.Vector, n)
	for i := range v {
		switch {
		case r.Float64() < xProb:
			v[i] = logic.X
		case r.Intn(2) == 1:
			v[i] = logic.One
		default:
			v[i] = logic.Zero
		}
	}
	return v
}

// The parallel-pattern simulator must agree with the scalar simulator on
// every pattern, including X handling, for random generated circuits.
func TestParallelMatchesScalar(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, err := netlist.Generate(netlist.GenConfig{
			Name:      "rnd",
			ScanCells: 8 + r.Intn(40),
			PIs:       1 + r.Intn(8),
			XClusters: r.Intn(4),
			Seed:      seed,
		})
		if err != nil {
			return false
		}
		n := 1 + r.Intn(64)
		loads := make([]logic.Vector, n)
		pis := make([]logic.Vector, n)
		for k := 0; k < n; k++ {
			loads[k] = randomVec(r, len(c.ScanCells), 0.02)
			pis[k] = randomVec(r, len(c.PIs), 0.02)
		}
		ps := NewParallel(c)
		batch, err := ps.Capture(loads, pis)
		if err != nil {
			return false
		}
		ss := New(c)
		for k := 0; k < n; k++ {
			cap, _, err := ss.Capture(loads[k], pis[k], NoFault)
			if err != nil {
				return false
			}
			if !cap.Equal(batch[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelValidation(t *testing.T) {
	c := adder(t)
	ps := NewParallel(c)
	if _, err := ps.Capture(nil, nil); err == nil {
		t.Fatal("accepted empty batch")
	}
	loads := make([]logic.Vector, 65)
	pis := make([]logic.Vector, 65)
	for i := range loads {
		loads[i] = logic.NewVector(2)
		pis[i] = logic.NewVector(3)
	}
	if _, err := ps.Capture(loads, pis); err == nil {
		t.Fatal("accepted batch > 64")
	}
	if _, err := ps.Capture(loads[:2], pis[:3]); err == nil {
		t.Fatal("accepted mismatched batch sizes")
	}
}

// Generated circuits must show pattern-dependent X capture: some scan cell
// captures X under some loads and a known value under others.
func TestGeneratedXIsPatternDependent(t *testing.T) {
	c, err := netlist.Generate(netlist.GenConfig{
		Name: "xdep", ScanCells: 48, PIs: 6, XClusters: 3, XFanout: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	r := rand.New(rand.NewSource(1))
	sawX := make([]bool, len(c.ScanCells))
	sawKnown := make([]bool, len(c.ScanCells))
	for p := 0; p < 64; p++ {
		cap, _, err := s.Capture(randomVec(r, len(c.ScanCells), 0), randomVec(r, len(c.PIs), 0), NoFault)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range cap {
			if v == logic.X {
				sawX[i] = true
			} else {
				sawKnown[i] = true
			}
		}
	}
	both := 0
	for i := range sawX {
		if sawX[i] && sawKnown[i] {
			both++
		}
	}
	if both == 0 {
		t.Fatal("no scan cell captures pattern-dependent X's")
	}
}
