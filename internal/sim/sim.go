// Package sim implements three-valued (0/1/X) logic simulation of netlist
// circuits for the scan-test flow: load the scan cells, apply primary
// inputs, evaluate the combinational logic (with uninitialized elements
// producing X's), and capture the next-state values back into the scan
// cells. A 64-way parallel-pattern simulator accelerates fault-free
// response generation.
//
// In the end-to-end flow (docs/FLOW.md) this is the simulate stage: the
// captured responses are where the X's actually come from — every X in the
// extracted X-map traces back to an uninitialized storage element, floating
// tri-state or bus conflict propagating through this simulator's gate
// evaluation. The scalar Simulator and the 64-way PSim agree bit-for-bit
// on every (pattern, cell) capture (TestParallelMatchesScalar, and the
// flow's X-map property test re-checks the equivalence end to end), so the
// parallel fan-out never changes what the partitioner sees. Simulators
// carry per-instance scratch state and are not safe for concurrent use;
// parallel callers give each worker its own instance.
//
// This package implements the fault-free half of the DESIGN.md §3
// substitution for the paper's commercial fault simulator; §5.1 describes
// the X-map the captures feed.
package sim

import (
	"fmt"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// Fault is a single stuck-at fault on a node's output.
type Fault struct {
	// Node is the faulty node id; negative means no fault.
	Node int
	// StuckAt is the forced value (logic.Zero or logic.One).
	StuckAt logic.V
}

// NoFault is the fault-free marker.
var NoFault = Fault{Node: -1}

// Simulator evaluates one pattern at a time over a fixed circuit.
type Simulator struct {
	c    *netlist.Circuit
	vals []logic.V
}

// New returns a simulator for the circuit (which must be finalized).
func New(c *netlist.Circuit) *Simulator {
	return &Simulator{c: c, vals: make([]logic.V, c.NumGates())}
}

// Value returns the value of node id after the last Capture.
func (s *Simulator) Value(id int) logic.V { return s.vals[id] }

// Capture runs one scan-test cycle: scan cells are loaded with load (in
// scan order), primary inputs driven with pis, the combinational logic is
// evaluated with every non-scan storage element at X, and the values at the
// scan cells' data inputs — the captured response — are returned along with
// the primary-output values. The fault, if any, forces the value of one
// node during evaluation.
func (s *Simulator) Capture(load, pis logic.Vector, fault Fault) (capture, pos logic.Vector, err error) {
	c := s.c
	if len(load) != len(c.ScanCells) {
		return nil, nil, fmt.Errorf("sim: load width %d, want %d scan cells", len(load), len(c.ScanCells))
	}
	if len(pis) != len(c.PIs) {
		return nil, nil, fmt.Errorf("sim: pi width %d, want %d", len(pis), len(c.PIs))
	}
	// Sources.
	for i, id := range c.PIs {
		s.vals[id] = s.forced(id, pis[i], fault)
	}
	for i, id := range c.ScanCells {
		s.vals[id] = s.forced(id, load[i], fault)
	}
	for _, id := range c.NonScan {
		s.vals[id] = s.forced(id, logic.X, fault)
	}
	for id, g := range c.Gates {
		switch g.Type {
		case netlist.Tie0:
			s.vals[id] = s.forced(id, logic.Zero, fault)
		case netlist.Tie1:
			s.vals[id] = s.forced(id, logic.One, fault)
		case netlist.TieX:
			s.vals[id] = s.forced(id, logic.X, fault)
		}
	}
	// Combinational evaluation in levelized order.
	for _, id := range c.EvalOrder() {
		s.vals[id] = s.forced(id, evalGate(c.Gates[id], s.vals), fault)
	}
	// Capture.
	capture = make(logic.Vector, len(c.ScanCells))
	for i, id := range c.ScanCells {
		capture[i] = s.vals[c.Gates[id].Fanin[0]]
	}
	pos = make(logic.Vector, len(c.POs))
	for i, id := range c.POs {
		pos[i] = s.vals[id]
	}
	return capture, pos, nil
}

func (s *Simulator) forced(id int, v logic.V, fault Fault) logic.V {
	if fault.Node == id {
		return fault.StuckAt
	}
	return v
}

// evalGate computes one combinational gate's output.
func evalGate(g netlist.Gate, vals []logic.V) logic.V {
	switch g.Type {
	case netlist.And, netlist.Nand:
		out := logic.One
		for _, f := range g.Fanin {
			out = logic.And(out, vals[f])
		}
		if g.Type == netlist.Nand {
			out = logic.Not(out)
		}
		return out
	case netlist.Or, netlist.Nor:
		out := logic.Zero
		for _, f := range g.Fanin {
			out = logic.Or(out, vals[f])
		}
		if g.Type == netlist.Nor {
			out = logic.Not(out)
		}
		return out
	case netlist.Xor, netlist.Xnor:
		out := logic.Zero
		for _, f := range g.Fanin {
			out = logic.Xor(out, vals[f])
		}
		if g.Type == netlist.Xnor {
			out = logic.Not(out)
		}
		return out
	case netlist.Not:
		return logic.Not(vals[g.Fanin[0]])
	case netlist.Buf:
		return vals[g.Fanin[0]]
	case netlist.Mux:
		return logic.Mux(vals[g.Fanin[0]], vals[g.Fanin[1]], vals[g.Fanin[2]])
	case netlist.Tri:
		// Drives data only when enable is exactly 1; otherwise floats (X).
		if vals[g.Fanin[0]] == logic.One {
			return vals[g.Fanin[1]]
		}
		return logic.X
	}
	panic(fmt.Sprintf("sim: evalGate on non-combinational node type %v", g.Type))
}
