package sim

import (
	"fmt"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// pval is a 64-way parallel three-valued word: bit k of one is set when
// pattern k's value is 1; bit k of x when it is X. one and x are disjoint.
type pval struct {
	one, x uint64
}

func (v pval) zero() uint64 { return ^(v.one | v.x) }

func pnot(a pval) pval { return pval{one: a.zero(), x: a.x} }

func pand(a, b pval) pval {
	one := a.one & b.one
	x := (a.x | b.x) &^ (a.zero() | b.zero())
	return pval{one: one, x: x}
}

func por(a, b pval) pval {
	one := a.one | b.one
	x := (a.x | b.x) &^ one
	return pval{one: one, x: x}
}

func pxor(a, b pval) pval {
	x := a.x | b.x
	one := (a.one ^ b.one) &^ x
	return pval{one: one, x: x}
}

func pmux(s, d0, d1 pval) pval {
	s0 := s.zero()
	agree1 := d0.one & d1.one
	agree0 := d0.zero() & d1.zero()
	one := (s0 & d0.one) | (s.one & d1.one) | (s.x & agree1)
	x := (s0 & d0.x) | (s.one & d1.x) | (s.x &^ (agree1 | agree0))
	return pval{one: one, x: x}
}

func ptri(en, d pval) pval {
	one := en.one & d.one
	x := ^en.one | (en.one & d.x)
	return pval{one: one, x: x &^ one}
}

// fromV broadcasts a scalar value across all 64 lanes.
func fromV(v logic.V) pval {
	switch v {
	case logic.One:
		return pval{one: ^uint64(0)}
	case logic.X:
		return pval{x: ^uint64(0)}
	}
	return pval{}
}

// PSim is the 64-way parallel-pattern simulator: one Capture call evaluates
// up to 64 patterns simultaneously, one per bit lane.
type PSim struct {
	c    *netlist.Circuit
	vals []pval
}

// NewParallel returns a parallel simulator for the circuit.
func NewParallel(c *netlist.Circuit) *PSim {
	return &PSim{c: c, vals: make([]pval, c.NumGates())}
}

// Capture evaluates len(loads) patterns (at most 64) in one pass and
// returns their captured scan responses. loads[k] and pis[k] are pattern
// k's scan load and primary-input values.
func (s *PSim) Capture(loads, pis []logic.Vector) ([]logic.Vector, error) {
	return s.CaptureWithFault(loads, pis, NoFault)
}

// CaptureWithFault is Capture with a stuck-at fault forced on one node
// across every lane.
func (s *PSim) CaptureWithFault(loads, pis []logic.Vector, fault Fault) ([]logic.Vector, error) {
	if err := s.eval(loads, pis, fault); err != nil {
		return nil, err
	}
	c := s.c
	n := len(loads)
	out := make([]logic.Vector, n)
	for k := range out {
		out[k] = make(logic.Vector, len(c.ScanCells))
	}
	for i, id := range c.ScanCells {
		v := s.vals[c.Gates[id].Fanin[0]]
		for k := 0; k < n; k++ {
			bit := uint(k)
			switch {
			case v.x>>bit&1 == 1:
				out[k][i] = logic.X
			case v.one>>bit&1 == 1:
				out[k][i] = logic.One
			default:
				out[k][i] = logic.Zero
			}
		}
	}
	return out, nil
}

// eval runs the full 64-way evaluation for the batch, leaving every node's
// word in s.vals.
func (s *PSim) eval(loads, pis []logic.Vector, fault Fault) error {
	c := s.c
	n := len(loads)
	if n == 0 || n > 64 {
		return fmt.Errorf("sim: parallel batch of %d patterns, want 1..64", n)
	}
	if len(pis) != n {
		return fmt.Errorf("sim: %d loads but %d pi vectors", n, len(pis))
	}
	for k := 0; k < n; k++ {
		if len(loads[k]) != len(c.ScanCells) {
			return fmt.Errorf("sim: load %d width %d, want %d", k, len(loads[k]), len(c.ScanCells))
		}
		if len(pis[k]) != len(c.PIs) {
			return fmt.Errorf("sim: pi %d width %d, want %d", k, len(pis[k]), len(c.PIs))
		}
	}
	pack := func(get func(k int) logic.V) pval {
		var v pval
		for k := 0; k < n; k++ {
			switch get(k) {
			case logic.One:
				v.one |= 1 << uint(k)
			case logic.X:
				v.x |= 1 << uint(k)
			}
		}
		return v
	}
	force := func(id int, v pval) pval {
		if fault.Node == id {
			return fromV(fault.StuckAt)
		}
		return v
	}
	for i, id := range c.PIs {
		i := i
		s.vals[id] = force(id, pack(func(k int) logic.V { return pis[k][i] }))
	}
	for i, id := range c.ScanCells {
		i := i
		s.vals[id] = force(id, pack(func(k int) logic.V { return loads[k][i] }))
	}
	for _, id := range c.NonScan {
		s.vals[id] = force(id, fromV(logic.X))
	}
	for id, g := range c.Gates {
		switch g.Type {
		case netlist.Tie0:
			s.vals[id] = force(id, fromV(logic.Zero))
		case netlist.Tie1:
			s.vals[id] = force(id, fromV(logic.One))
		case netlist.TieX:
			s.vals[id] = force(id, fromV(logic.X))
		}
	}
	for _, id := range c.EvalOrder() {
		s.vals[id] = force(id, evalGateP(c.Gates[id], s.vals))
	}
	return nil
}

func evalGateP(g netlist.Gate, vals []pval) pval {
	switch g.Type {
	case netlist.And, netlist.Nand:
		out := fromV(logic.One)
		for _, f := range g.Fanin {
			out = pand(out, vals[f])
		}
		if g.Type == netlist.Nand {
			out = pnot(out)
		}
		return out
	case netlist.Or, netlist.Nor:
		out := fromV(logic.Zero)
		for _, f := range g.Fanin {
			out = por(out, vals[f])
		}
		if g.Type == netlist.Nor {
			out = pnot(out)
		}
		return out
	case netlist.Xor, netlist.Xnor:
		out := fromV(logic.Zero)
		for _, f := range g.Fanin {
			out = pxor(out, vals[f])
		}
		if g.Type == netlist.Xnor {
			out = pnot(out)
		}
		return out
	case netlist.Not:
		return pnot(vals[g.Fanin[0]])
	case netlist.Buf:
		return vals[g.Fanin[0]]
	case netlist.Mux:
		return pmux(vals[g.Fanin[0]], vals[g.Fanin[1]], vals[g.Fanin[2]])
	case netlist.Tri:
		return ptri(vals[g.Fanin[0]], vals[g.Fanin[1]])
	}
	panic(fmt.Sprintf("sim: evalGateP on non-combinational node type %v", g.Type))
}
