package sim

import (
	"math/rand"
	"testing"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

func benchSetup(b *testing.B, cells int) (*netlist.Circuit, logic.Vector, logic.Vector) {
	b.Helper()
	c, err := netlist.Generate(netlist.GenConfig{
		Name: "bench", ScanCells: cells, PIs: 16, XClusters: cells / 32, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	return c, randomVec(r, len(c.ScanCells), 0), randomVec(r, len(c.PIs), 0)
}

func BenchmarkScalarCapture512(b *testing.B) {
	c, load, pis := benchSetup(b, 512)
	s := New(c)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Capture(load, pis, NoFault); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelCapture512x64(b *testing.B) {
	c, _, _ := benchSetup(b, 512)
	r := rand.New(rand.NewSource(3))
	loads := make([]logic.Vector, 64)
	pis := make([]logic.Vector, 64)
	for k := range loads {
		loads[k] = randomVec(r, len(c.ScanCells), 0)
		pis[k] = randomVec(r, len(c.PIs), 0)
	}
	s := NewParallel(c)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Capture(loads, pis); err != nil {
			b.Fatal(err)
		}
	}
}
