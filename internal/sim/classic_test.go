package sim

import (
	"testing"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// c17's outputs verified against the NAND equations for all 32 input
// combinations.
func TestC17TruthTable(t *testing.T) {
	c, err := netlist.C17()
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	load := logic.Vector{logic.Zero, logic.Zero}
	nand := func(a, b bool) bool { return !(a && b) }
	for v := 0; v < 32; v++ {
		in := make([]bool, 5) // N1, N2, N3, N6, N7
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		pis := make(logic.Vector, 5)
		for i, b := range in {
			pis[i] = logic.FromBool(b)
		}
		n10 := nand(in[0], in[2])
		n11 := nand(in[2], in[3])
		n16 := nand(in[1], n11)
		n19 := nand(n11, in[4])
		n22 := nand(n10, n16)
		n23 := nand(n16, n19)
		cap, pos, err := s.Capture(load, pis, NoFault)
		if err != nil {
			t.Fatal(err)
		}
		if pos[0] != logic.FromBool(n22) || pos[1] != logic.FromBool(n23) {
			t.Fatalf("v=%05b: outputs %v/%v, want %v/%v", v, pos[0], pos[1], n22, n23)
		}
		// The scan cells capture the same outputs.
		if cap[0] != pos[0] || cap[1] != pos[1] {
			t.Fatalf("v=%05b: captured %v, PO %v", v, cap, pos)
		}
	}
}

// s27's next-state and output functions verified against the ISCAS'89
// equations for every (input, state) combination.
func TestS27NextState(t *testing.T) {
	c, err := netlist.S27()
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	for pv := 0; pv < 16; pv++ {
		for sv := 0; sv < 8; sv++ {
			g0 := pv&1 == 1
			g1 := pv>>1&1 == 1
			g2 := pv>>2&1 == 1
			g3 := pv>>3&1 == 1
			g5 := sv&1 == 1
			g6 := sv>>1&1 == 1
			g7 := sv>>2&1 == 1

			g14 := !g0
			g8 := g14 && g6
			g12 := !(g1 || g7)
			g15 := g12 || g8
			g16 := g3 || g8
			g9 := !(g16 && g15)
			g11 := !(g5 || g9)
			g10 := !(g14 || g11)
			g13 := !(g2 && g12)
			g17 := !g11

			load := logic.Vector{logic.FromBool(g5), logic.FromBool(g6), logic.FromBool(g7)}
			pis := logic.Vector{logic.FromBool(g0), logic.FromBool(g1), logic.FromBool(g2), logic.FromBool(g3)}
			cap, pos, err := s.Capture(load, pis, NoFault)
			if err != nil {
				t.Fatal(err)
			}
			want := logic.Vector{logic.FromBool(g10), logic.FromBool(g11), logic.FromBool(g13)}
			if !cap.Equal(want) {
				t.Fatalf("pi=%04b st=%03b: next state %v, want %v", pv, sv, cap, want)
			}
			if pos[0] != logic.FromBool(g17) {
				t.Fatalf("pi=%04b st=%03b: G17 = %v, want %v", pv, sv, pos[0], g17)
			}
		}
	}
}

// Every s27 stuck-at fault on a gate output is detectable by exhaustive
// stimuli except any provably redundant one; the classic result is that
// full-scan s27 has 32 collapsed faults, all testable. With our uncollapsed
// universe, demand near-complete coverage.
func TestS27FaultCoverageExhaustive(t *testing.T) {
	c, err := netlist.S27()
	if err != nil {
		t.Fatal(err)
	}
	var loads, pis []logic.Vector
	for pv := 0; pv < 16; pv++ {
		for sv := 0; sv < 8; sv++ {
			loads = append(loads, logic.Vector{
				logic.FromBit(sv & 1), logic.FromBit(sv >> 1 & 1), logic.FromBit(sv >> 2 & 1),
			})
			pis = append(pis, logic.Vector{
				logic.FromBit(pv & 1), logic.FromBit(pv >> 1 & 1),
				logic.FromBit(pv >> 2 & 1), logic.FromBit(pv >> 3 & 1),
			})
		}
	}
	// Count detections over the scan cells only (standard full-scan view).
	detected := 0
	total := 0
	goodSim := New(c)
	badSim := New(c)
	for id, g := range c.Gates {
		switch g.Type {
		case netlist.DFF, netlist.NonScanDFF, netlist.Tie0, netlist.Tie1, netlist.TieX:
			continue
		}
		for _, sa := range []logic.V{logic.Zero, logic.One} {
			total++
			for k := range loads {
				good, gpos, err := goodSim.Capture(loads[k], pis[k], NoFault)
				if err != nil {
					t.Fatal(err)
				}
				bad, bpos, err := badSim.Capture(loads[k], pis[k], Fault{Node: id, StuckAt: sa})
				if err != nil {
					t.Fatal(err)
				}
				hit := false
				for i := range good {
					if good[i] != logic.X && bad[i] != logic.X && good[i] != bad[i] {
						hit = true
					}
				}
				if gpos[0] != logic.X && bpos[0] != logic.X && gpos[0] != bpos[0] {
					hit = true
				}
				if hit {
					detected++
					break
				}
			}
		}
	}
	if detected < total-2 {
		t.Fatalf("s27 exhaustive coverage %d/%d too low", detected, total)
	}
}
