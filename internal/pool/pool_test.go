package pool

import (
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", p.Workers())
	}
	if New(1).Workers() != 1 || New(7).Workers() != 7 {
		t.Fatal("explicit worker counts not honored")
	}
}

func TestChunksCoverRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 33} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			seen := make([]int32, n)
			p.ForEach(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, s := range seen {
				if s != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, s)
				}
			}
		}
		p.Close()
	}
}

func TestChunkIndicesDisjoint(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 101
	var calls int32
	lohis := make([][2]int, p.chunks(n))
	p.Chunks(n, func(c, lo, hi int) {
		atomic.AddInt32(&calls, 1)
		lohis[c] = [2]int{lo, hi}
	})
	if int(calls) != len(lohis) {
		t.Fatalf("chunks called %d times, want %d", calls, len(lohis))
	}
	next := 0
	for c, lh := range lohis {
		if lh[0] != next || lh[1] <= lh[0] {
			t.Fatalf("chunk %d = [%d,%d), want contiguous from %d", c, lh[0], lh[1], next)
		}
		next = lh[1]
	}
	if next != n {
		t.Fatalf("chunks end at %d, want %d", next, n)
	}
}

func TestSumInt(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		p := New(workers)
		got := p.SumInt(1000, func(i int) int { return i })
		if got != 999*1000/2 {
			t.Fatalf("workers=%d: SumInt = %d, want %d", workers, got, 999*1000/2)
		}
		if p.SumInt(0, func(int) int { return 1 }) != 0 {
			t.Fatal("SumInt(0) != 0")
		}
		p.Close()
	}
}

// Nested fan-out on one pool must complete (inline fallback, no deadlock)
// and still visit every index exactly once.
func TestNestedFanOut(t *testing.T) {
	p := New(4)
	defer p.Close()
	const outer, inner = 16, 64
	var total int64
	p.ForEach(outer, func(i int) {
		s := p.SumInt(inner, func(j int) int { return 1 })
		atomic.AddInt64(&total, int64(s))
	})
	if total != outer*inner {
		t.Fatalf("nested total = %d, want %d", total, outer*inner)
	}
}

// After Close the pool still works, inline.
func TestUseAfterClose(t *testing.T) {
	p := New(4)
	p.Close()
	if got := p.SumInt(100, func(i int) int { return i }); got != 4950 {
		t.Fatalf("SumInt after Close = %d, want 4950", got)
	}
}
