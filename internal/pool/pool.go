// Package pool provides a small reusable worker pool for deterministic
// data-parallel fan-out. The hybrid pipeline's hot loops — candidate-split
// scoring, per-partition masked-X recomputation, per-cell X counting,
// per-partition X-canceling — are all independent per element, so they chunk
// an index range over a fixed set of workers and reduce the per-chunk
// results in chunk order. Because every reduction is position-indexed (never
// ordered by goroutine completion), results are byte-identical for any
// worker count, including 1.
//
// The pool is safe for nested use: a task running on a pool worker may fan
// out on the same pool. Submission never blocks — when every worker is busy
// the submitting goroutine runs the chunk inline — so nesting cannot
// deadlock, it only degrades to inline execution.
//
// This package implements the deterministic parallel execution engine of
// DESIGN.md §7 (an infrastructure extension beyond the paper; the
// algorithms it accelerates are §5.2-§5.4).
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size set of reusable workers. The zero value is not
// usable; call New. A Pool with one worker runs everything inline on the
// calling goroutine and spawns nothing.
type Pool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup

	// dispatched counts chunks handed to a parked worker; inline counts
	// chunks the submitter ran itself because every worker was busy. The
	// inline share is the saturation signal the observability layer
	// reports ("queue depth" of a queueless pool).
	dispatched atomic.Int64
	inline     atomic.Int64
}

// New returns a pool with the given number of workers; workers <= 0 selects
// runtime.GOMAXPROCS(0). The pool keeps workers-1 goroutines parked (the
// calling goroutine always contributes itself), so Close must be called to
// release them.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan func())
		for i := 0; i < workers-1; i++ {
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				for task := range p.tasks {
					task()
				}
			}()
		}
	}
	return p
}

// Workers returns the pool's worker count (always >= 1).
func (p *Pool) Workers() int { return p.workers }

// Stats returns how many chunks were dispatched to parked workers and how
// many ran inline on the submitter because every worker was busy. Safe to
// call concurrently with fan-outs.
func (p *Pool) Stats() (dispatched, inline int64) {
	return p.dispatched.Load(), p.inline.Load()
}

// Close releases the pool's goroutines. It must not be called concurrently
// with Chunks/ForEach/SumInt; after Close the pool runs everything inline.
func (p *Pool) Close() {
	if p.tasks != nil {
		close(p.tasks)
		p.wg.Wait()
		p.tasks = nil
	}
}

// chunks returns the number of ranges [0,n) is split into: min(workers, n).
func (p *Pool) chunks(n int) int {
	if n < p.workers {
		return n
	}
	return p.workers
}

// Chunks splits [0,n) into chunks(n) contiguous ranges and invokes
// fn(c, lo, hi) once per range, concurrently when workers are idle. Chunk 0
// always runs on the calling goroutine. fn must be safe for concurrent
// invocation on distinct ranges; Chunks returns after every chunk finished.
func (p *Pool) Chunks(n int, fn func(c, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.chunks(n)
	if w <= 1 || p.tasks == nil {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for c := 1; c < w; c++ {
		c, lo, hi := c, c*n/w, (c+1)*n/w
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(c, lo, hi)
		}
		select {
		case p.tasks <- task:
			p.dispatched.Add(1)
		default:
			// Every worker is busy (e.g. a nested fan-out): run inline.
			p.inline.Add(1)
			task()
		}
	}
	fn(0, 0, n/w)
	wg.Wait()
}

// ForEach invokes fn(i) for every i in [0,n), fanned out over the workers.
// fn must be safe for concurrent invocation on distinct indices.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.Chunks(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// SumInt returns the sum of fn(i) over [0,n). Partial sums are accumulated
// per chunk and reduced in chunk order, so the result is deterministic (and
// integer addition makes it independent of the chunking anyway).
func (p *Pool) SumInt(n int, fn func(i int) int) int {
	if n <= 0 {
		return 0
	}
	partial := make([]int, p.chunks(n))
	p.Chunks(n, func(c, lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += fn(i)
		}
		partial[c] = s
	})
	total := 0
	for _, s := range partial {
		total += s
	}
	return total
}
