package xcancel

import (
	"context"
	"fmt"

	"xhybrid/internal/pool"
	"xhybrid/internal/scan"
)

// PartitionedResult is the outcome of running each pattern partition
// through its own X-canceling session (see RunPartitioned).
type PartitionedResult struct {
	// PerPartition holds one session Result per input response set, in
	// input order.
	PerPartition []Result
	// TotalX, ShiftCycles, HaltCycles and ControlBits sum the sessions.
	TotalX      int
	ShiftCycles int
	HaltCycles  int
	ControlBits int
	// Halts is the total halt count across sessions.
	Halts int
}

// NormalizedTime returns (shift + halt cycles) / shift cycles over all
// sessions.
func (r PartitionedResult) NormalizedTime() float64 {
	if r.ShiftCycles == 0 {
		return 1
	}
	return float64(r.ShiftCycles+r.HaltCycles) / float64(r.ShiftCycles)
}

// RunPartitioned shifts each partition's response set through its own
// canceler, fanning the sessions out over workers goroutines (<= 0 selects
// all CPUs). Once the partition masks are fixed the partitions' X streams
// are independent, and the MISR is reset at every halt anyway, so per-
// partition sessions are hardware-equivalent to a serial pass with a final
// halt at each partition boundary. The symbolic MISR tracking and the
// Gaussian elimination at every halt — the expensive part — run fully in
// parallel; results are collected in partition order, so the outcome is
// deterministic for any worker count.
func RunPartitioned(cfg Config, sets []*scan.ResponseSet, workers int) (*PartitionedResult, error) {
	return RunPartitionedCtx(context.Background(), cfg, sets, workers)
}

// RunPartitionedCtx is RunPartitioned under a context: each partition
// session checks ctx before its symbolic MISR pass starts, so a canceled
// call skips every session not yet begun and returns a wrapped context
// error. Sessions already in flight run to completion (one session is the
// unit of cancellation); the pool is released before returning.
func RunPartitionedCtx(ctx context.Context, cfg Config, sets []*scan.ResponseSet, workers int) (*PartitionedResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := &PartitionedResult{PerPartition: make([]Result, len(sets))}
	errs := make([]error, len(sets))
	pl := pool.New(workers)
	defer pl.Close()
	pl.ForEach(len(sets), func(i int) {
		if ctx.Err() != nil {
			return
		}
		res, err := RunResponses(cfg, sets[i])
		if err != nil {
			errs[i] = fmt.Errorf("xcancel: partition %d: %w", i, err)
			return
		}
		out.PerPartition[i] = res
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("xcancel: partitioned run aborted: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, res := range out.PerPartition {
		out.TotalX += res.TotalX
		out.ShiftCycles += res.ShiftCycles
		out.HaltCycles += res.HaltCycles
		out.ControlBits += res.ControlBits
		out.Halts += len(res.Halts)
	}
	return out, nil
}

// SplitByPartition materializes one response set per partition: partitions[i]
// selects (by pattern index) the responses of set that belong to session i.
// The returned sets share the underlying responses; treat them as read-only.
func SplitByPartition(set *scan.ResponseSet, partitions []PatternSet) ([]*scan.ResponseSet, error) {
	out := make([]*scan.ResponseSet, len(partitions))
	for i, part := range partitions {
		sub := scan.NewResponseSet(set.Geom)
		for _, p := range part.Indices() {
			if p < 0 || p >= set.Patterns() {
				return nil, fmt.Errorf("xcancel: partition %d selects pattern %d of %d", i, p, set.Patterns())
			}
			if err := sub.Append(set.Responses[p]); err != nil {
				return nil, err
			}
		}
		out[i] = sub
	}
	return out, nil
}

// PatternSet is the minimal view of a partition's membership that
// SplitByPartition needs (satisfied by gf2.Vec).
type PatternSet interface {
	Indices() []int
}
