package xcancel

import (
	"math/rand"
	"testing"

	"xhybrid/internal/logic"
	"xhybrid/internal/scan"
)

// A golden stream replayed against its own schedule passes clean.
func TestReplayGoldenPasses(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	set := randomResponses(r, 10, 20, 5, 0.03)
	cfg := cfg(10, 3)
	golden, err := RunResponses(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	sched := ExtractSchedule(cfg, golden)
	if len(sched.HaltCycles) != len(golden.Halts) {
		t.Fatal("schedule lost halts")
	}
	rep, err := Replay(sched, set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fails() {
		t.Fatalf("golden replay fails: %+v", rep)
	}
}

// Flipping a known bit before a halt must trip a parity mismatch or a
// contamination flag under the programmed schedule.
func TestReplayDetectsKnownFlip(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	set := randomResponses(r, 10, 20, 5, 0.03)
	cfg := cfg(10, 3)
	golden, err := RunResponses(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	sched := ExtractSchedule(cfg, golden)
	detected, trials := 0, 0
	for pi := 0; pi < set.Patterns(); pi++ {
		for ch := 0; ch < 10; ch += 3 {
			for pos := 0; pos < 20; pos += 5 {
				if set.Responses[pi].At(ch, pos) == logic.X {
					continue
				}
				faulty := scan.NewResponseSet(set.Geom)
				for i, resp := range set.Responses {
					c := resp.Clone()
					if i == pi {
						c.Set(ch, pos, logic.Not(c.At(ch, pos)))
					}
					if err := faulty.Append(c); err != nil {
						t.Fatal(err)
					}
				}
				rep, err := Replay(sched, faulty)
				if err != nil {
					t.Fatal(err)
				}
				trials++
				if rep.Fails() {
					detected++
				}
			}
		}
	}
	if trials < 30 {
		t.Fatalf("too few trials: %d", trials)
	}
	if detected == 0 {
		t.Fatal("programmed replay detected nothing")
	}
}

// Moving an X (a shifted X profile) contaminates programmed signatures: the
// device is flagged rather than silently compared.
func TestReplayFlagsShiftedX(t *testing.T) {
	g := scan.MustGeometry(8, 10)
	base := scan.NewResponseSet(g)
	r0 := scan.NewResponse(g)
	for c := 0; c < 8; c++ {
		for p := 0; p < 10; p++ {
			r0.Set(c, p, logic.Zero)
		}
	}
	// Six X's in cycle 0 trigger a halt (m=8, q=2, threshold 6).
	for i := 0; i < 6; i++ {
		r0.Set(i, 0, logic.X)
	}
	if err := base.Append(r0); err != nil {
		t.Fatal(err)
	}
	cfg := cfg(8, 2)
	golden, err := RunResponses(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(golden.Halts) == 0 {
		t.Fatal("setup produced no halt")
	}
	sched := ExtractSchedule(cfg, golden)

	// Shift an X to a different chain: the programmed selections no longer
	// cancel it.
	shifted := scan.NewResponseSet(g)
	r1 := r0.Clone()
	r1.Set(0, 0, logic.Zero) // remove one X...
	r1.Set(7, 0, logic.X)    // ...and add one elsewhere
	if err := shifted.Append(r1); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(sched, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Contaminated == 0 {
		t.Fatalf("shifted X not flagged: %+v", rep)
	}
	if !rep.Fails() {
		t.Fatal("shifted-X device not rejected")
	}
}

func TestReplayValidation(t *testing.T) {
	cfg := cfg(8, 2)
	sched := Schedule{MISR: cfg.MISR, Q: cfg.Q}
	wrong := scan.NewResponseSet(scan.MustGeometry(4, 4))
	if _, err := Replay(sched, wrong); err == nil {
		t.Fatal("accepted mismatched geometry")
	}
	// Programmed halt beyond the stream end errors.
	sched.HaltCycles = []int{999}
	sched.Selections = append(sched.Selections, nil)
	sched.Parities = append(sched.Parities, nil)
	short := scan.NewResponseSet(scan.MustGeometry(8, 2))
	r := scan.NewResponse(scan.MustGeometry(8, 2))
	for c := 0; c < 8; c++ {
		for p := 0; p < 2; p++ {
			r.Set(c, p, logic.Zero)
		}
	}
	if err := short.Append(r); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(sched, short); err == nil {
		t.Fatal("accepted truncated stream")
	}
}
