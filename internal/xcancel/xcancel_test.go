package xcancel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xhybrid/internal/logic"
	"xhybrid/internal/misr"
	"xhybrid/internal/scan"
)

func cfg(m, q int) Config {
	return Config{MISR: misr.MustStandard(m), Q: q}
}

func TestValidate(t *testing.T) {
	if err := cfg(10, 2).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cfg(10, 0).Validate(); err == nil {
		t.Fatal("accepted q=0")
	}
	if err := cfg(10, 10).Validate(); err == nil {
		t.Fatal("accepted q=m")
	}
}

// The paper's Section 4 worked numbers.
func TestControlBitsPaperNumbers(t *testing.T) {
	// m=10, q=2: 12 leaked X's -> 10*2*12/(10-2) = 30 bits.
	if got := ControlBits(12, 10, 2); got != 30 {
		t.Fatalf("ControlBits(12,10,2) = %d, want 30", got)
	}
	// m=10, q=2: 5 leaked X's -> 12.5 -> 13 (paper total 57.5 -> 58).
	if got := ControlBits(5, 10, 2); got != 13 {
		t.Fatalf("ControlBits(5,10,2) = %d, want 13", got)
	}
	// m=10, q=1: 12 X's -> 13.33 -> 14 (paper total 43.3 -> 44).
	if got := ControlBits(12, 10, 1); got != 14 {
		t.Fatalf("ControlBits(12,10,1) = %d, want 14", got)
	}
	// m=10, q=1: 5 X's -> 5.55 -> 6 (paper total 50.5 -> 51).
	if got := ControlBits(5, 10, 1); got != 6 {
		t.Fatalf("ControlBits(5,10,1) = %d, want 6", got)
	}
	if ControlBits(0, 10, 2) != 0 || Halts(0, 10, 2) != 0 {
		t.Fatal("zero X's must cost nothing")
	}
}

// The Figure 2/3 example: 4 X's in a 6-bit MISR, q=2 -> one halt, 12 bits.
func TestFigure3ControlData(t *testing.T) {
	if got := Halts(4, 6, 2); got != 1 {
		t.Fatalf("Halts = %d, want 1", got)
	}
	if got := ControlBitsPerHaltCeil(4, 6, 2); got != 12 {
		t.Fatalf("control data = %d, want 12 (paper: 2 cycles x 6 bits)", got)
	}
}

func TestHaltsAndBounds(t *testing.T) {
	f := func(tRaw uint16, mRaw, qRaw uint8) bool {
		m := int(mRaw)%30 + 2
		q := int(qRaw)%(m-1) + 1
		totalX := int(tRaw)
		h := Halts(totalX, m, q)
		cb := ControlBits(totalX, m, q)
		cbCeil := ControlBitsPerHaltCeil(totalX, m, q)
		if totalX == 0 {
			return h == 0 && cb == 0 && cbCeil == 0
		}
		// Halt count covers all X's and no more than one per X.
		if h*(m-q) < totalX || (h-1)*(m-q) >= totalX {
			return false
		}
		// Per-halt ceiling dominates the fractional accounting.
		return cbCeil >= cb && cb > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// mustPanic runs fn and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic, got none")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want message containing %q", r, want)
		}
	}()
	fn()
}

// TestAccountingBoundaries pins the q/m edge of every closed-form
// accounting function. Before checkMQ, q = m divided by zero with an
// anonymous runtime panic and q > m silently returned negative halt and
// bit counts.
func TestAccountingBoundaries(t *testing.T) {
	// q = m-1 is the tightest valid configuration: one retired X per halt,
	// so the halt count equals totalX exactly.
	if got := Halts(10, 4, 3); got != 10 {
		t.Fatalf("Halts(10, 4, 3) = %d, want 10", got)
	}
	if got := ControlBits(10, 4, 3); got != 120 {
		t.Fatalf("ControlBits(10, 4, 3) = %d, want 120", got)
	}
	if got := ControlBitsPerHaltCeil(10, 4, 3); got != 120 {
		t.Fatalf("ControlBitsPerHaltCeil(10, 4, 3) = %d, want 120", got)
	}
	if got := NormalizedTestTime(cfg(4, 3), 2, 0.5); got != 4 {
		t.Fatalf("NormalizedTestTime(m=4, q=3) = %f, want 4", got)
	}

	// totalX = 0 is free for ANY m, q — even invalid ones must not panic,
	// because callers legitimately ask for the cost of an X-free partition
	// before validating a speculative configuration.
	for _, mq := range [][2]int{{4, 3}, {4, 4}, {4, 9}, {0, 0}, {-1, 5}} {
		m, q := mq[0], mq[1]
		if got := Halts(0, m, q); got != 0 {
			t.Fatalf("Halts(0, %d, %d) = %d, want 0", m, q, got)
		}
		if got := ControlBits(0, m, q); got != 0 {
			t.Fatalf("ControlBits(0, %d, %d) = %d, want 0", m, q, got)
		}
		if got := ControlBitsPerHaltCeil(0, m, q); got != 0 {
			t.Fatalf("ControlBitsPerHaltCeil(0, %d, %d) = %d, want 0", m, q, got)
		}
	}
	if got := Halts(-5, 4, 4); got != 0 {
		t.Fatalf("Halts(-5, 4, 4) = %d, want 0", got)
	}

	// q = m and beyond must fail loudly with the named precondition, not
	// divide by zero or go negative.
	const want = "need 1 <= q < m"
	mustPanic(t, want, func() { Halts(1, 4, 4) })
	mustPanic(t, want, func() { Halts(1, 4, 5) })
	mustPanic(t, want, func() { ControlBits(1, 4, 4) })
	mustPanic(t, want, func() { ControlBitsPerHaltCeil(1, 4, 5) })
	mustPanic(t, want, func() { Halts(1, 4, 0) })

	// NormalizedTestTime's invalid-q cases need a hand-edited config:
	// cfg() builds through MustStandard, which only checks the MISR size,
	// so an out-of-range Q reaches the accounting guard.
	badQ := cfg(4, 3)
	badQ.Q = 4
	mustPanic(t, want, func() { NormalizedTestTime(badQ, 1, 0) })
	badQ.Q = 9
	mustPanic(t, want, func() { NormalizedTestTime(badQ, 1, 0) })
	badQ.Shadow = true
	if got := NormalizedTestTime(badQ, 1, 0); got != 1 {
		t.Fatalf("shadow variant with invalid q = %f, want 1 (shadow short-circuits)", got)
	}
}

func TestNormalizedTestTimePaperValues(t *testing.T) {
	c := cfg(32, 7)
	cases := []struct {
		chains  int
		density float64
		want    float64
	}{
		{1050, 0.0005, 1.147}, // CKT-A
		{75, 0.0275, 1.5775},  // CKT-B (paper prints 1.58)
		{203, 0.0238, 2.3529}, // CKT-C (paper prints 2.35)
	}
	for _, tc := range cases {
		got := NormalizedTestTime(c, tc.chains, tc.density)
		if got < tc.want-0.01 || got > tc.want+0.01 {
			t.Fatalf("NormalizedTestTime(%d, %f) = %f, want ~%f", tc.chains, tc.density, got, tc.want)
		}
	}
	shadow := c
	shadow.Shadow = true
	if NormalizedTestTime(shadow, 1000, 0.5) != 1 {
		t.Fatal("shadow-register variant must have unit test time")
	}
}

// randomResponses builds a response set with the given X probability.
func randomResponses(r *rand.Rand, chains, chainLen, patterns int, xProb float64) *scan.ResponseSet {
	g := scan.MustGeometry(chains, chainLen)
	s := scan.NewResponseSet(g)
	for p := 0; p < patterns; p++ {
		resp := scan.NewResponse(g)
		for c := 0; c < chains; c++ {
			for t := 0; t < chainLen; t++ {
				switch {
				case r.Float64() < xProb:
					resp.Set(c, t, logic.X)
				case r.Intn(2) == 1:
					resp.Set(c, t, logic.One)
				default:
					resp.Set(c, t, logic.Zero)
				}
			}
		}
		if err := s.Append(resp); err != nil {
			panic(err)
		}
	}
	return s
}

func TestCancelerEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	set := randomResponses(r, 10, 20, 6, 0.03)
	res, err := RunResponses(cfg(10, 2), set)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalX != set.TotalX() {
		t.Fatalf("TotalX = %d, want %d", res.TotalX, set.TotalX())
	}
	if res.ShiftCycles != 6*20 {
		t.Fatalf("ShiftCycles = %d, want 120", res.ShiftCycles)
	}
	if len(res.Halts) == 0 {
		t.Fatal("no halts despite X's")
	}
	if res.ControlBits != len(res.Halts)*10*2 {
		t.Fatalf("ControlBits = %d, want halts*m*q", res.ControlBits)
	}
	if res.HaltCycles != len(res.Halts)*2 {
		t.Fatalf("HaltCycles = %d", res.HaltCycles)
	}
	if nt := res.NormalizedTime(); nt <= 1.0 {
		t.Fatalf("NormalizedTime = %f, want > 1", nt)
	}
	// Every non-deficit halt yields exactly q X-free signatures.
	retired := 0
	for _, h := range res.Halts {
		retired += h.XRetired
		if h.Deficit == 0 && len(h.Signatures) != 2 {
			t.Fatalf("halt has %d signatures, want 2", len(h.Signatures))
		}
	}
	if retired != res.TotalX {
		t.Fatalf("retired %d X's, want %d", retired, res.TotalX)
	}
}

// A single-bit error in an observable (non-X) position is detected when a
// halt signature or the final signature changes. Single-bit errors are the
// adversarial case for X-canceling: an error whose MISR trace lands in a
// session's X-row space is algebraically indistinguishable from an X, so
// the measured rate sits below the 1-2^-q figure quoted for random
// (multi-bit) errors — but it must grow monotonically with q, because each
// extra extracted combination shrinks the unobserved subspace.
func TestErrorDetectionImprovesWithQ(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	set := randomResponses(r, 10, 15, 5, 0.04)
	rate := func(q int) float64 {
		golden, err := RunResponses(cfg(10, q), set)
		if err != nil {
			t.Fatal(err)
		}
		trials, detected := 0, 0
		for ch := 0; ch < set.Geom.Chains; ch++ {
			for pos := 0; pos < set.Geom.ChainLen; pos += 3 {
				for pi := 0; pi < set.Patterns(); pi += 2 {
					if set.Responses[pi].At(ch, pos) == logic.X {
						continue
					}
					faulty := scan.NewResponseSet(set.Geom)
					for i, resp := range set.Responses {
						c := resp.Clone()
						if i == pi {
							c.Set(ch, pos, logic.Not(c.At(ch, pos)))
						}
						if err := faulty.Append(c); err != nil {
							t.Fatal(err)
						}
					}
					res2, err := RunResponses(cfg(10, q), faulty)
					if err != nil {
						t.Fatal(err)
					}
					if len(res2.Halts) != len(golden.Halts) {
						t.Fatalf("halt schedule changed: %d vs %d", len(res2.Halts), len(golden.Halts))
					}
					trials++
					if signaturesDiffer(golden, res2) {
						detected++
					}
				}
			}
		}
		if trials < 50 {
			t.Fatalf("too few trials: %d", trials)
		}
		return float64(detected) / float64(trials)
	}
	r1, r5, r9 := rate(1), rate(5), rate(9)
	if !(r1 < r5 && r5 < r9) {
		t.Fatalf("detection not monotone in q: %.3f, %.3f, %.3f", r1, r5, r9)
	}
	if r9 < 0.85 {
		t.Fatalf("q=9 detection rate %.3f too low", r9)
	}
	if r1 > 0.5 {
		t.Fatalf("q=1 detection rate %.3f implausibly high", r1)
	}
}

func signaturesDiffer(a, b Result) bool {
	if a.FinalSignature != b.FinalSignature {
		return true
	}
	for i := range a.Halts {
		for j := range a.Halts[i].Signatures {
			if a.Halts[i].Signatures[j].Parity != b.Halts[i].Signatures[j].Parity {
				return true
			}
		}
	}
	return false
}

// An error captured after the last halt must be caught by the end-of-test
// signature: the register is clean (no X symbols pending), so its state is
// a valid X-free signature and a single-bit error always disturbs it
// (the MISR update is nonsingular).
func TestFinalSignatureCatchesTailErrors(t *testing.T) {
	g := scan.MustGeometry(8, 10)
	build := func(flip bool) *scan.ResponseSet {
		s := scan.NewResponseSet(g)
		// Pattern 0 carries X's (forces a halt); pattern 1 is X-free.
		r0 := scan.NewResponse(g)
		for c := 0; c < 8; c++ {
			for p := 0; p < 10; p++ {
				r0.Set(c, p, logic.Zero)
			}
		}
		for i := 0; i < 6; i++ {
			r0.Set(i, 0, logic.X)
		}
		r1 := r0.Clone()
		for c := 0; c < 8; c++ {
			r1.Set(c, 0, logic.One) // clear the X row with known values
		}
		if flip {
			r1.Set(3, 9, logic.One) // tail error after the last halt
		}
		if err := s.Append(r0); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(r1); err != nil {
			t.Fatal(err)
		}
		return s
	}
	golden, err := RunResponses(cfg(8, 2), build(false))
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := RunResponses(cfg(8, 2), build(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(golden.Halts) == 0 {
		t.Fatal("setup produced no halt")
	}
	// Halt signatures are identical (error is after the last halt)…
	for i := range golden.Halts {
		for j := range golden.Halts[i].Signatures {
			if golden.Halts[i].Signatures[j].Parity != faulty.Halts[i].Signatures[j].Parity {
				t.Fatal("halt signature saw a tail error")
			}
		}
	}
	// …but the final signature must differ.
	if golden.FinalSignature == faulty.FinalSignature {
		t.Fatal("final signature missed the tail error")
	}
}

// The register resets at every halt, so the final signature depends only on
// the inputs after the last halt.
func TestRegisterResetsAtHalt(t *testing.T) {
	c1 := MustNewCanceler(cfg(6, 2))
	in := make(logic.Vector, 6)
	for i := range in {
		in[i] = logic.Zero
	}
	inX := make(logic.Vector, 6)
	copy(inX, in)
	inX[0] = logic.X
	inX[1] = logic.X
	inX[2] = logic.X
	inX[3] = logic.X
	// Known activity, then a halt-triggering burst, then nothing.
	known := make(logic.Vector, 6)
	copy(known, in)
	known[5] = logic.One
	if err := c1.Shift(known); err != nil {
		t.Fatal(err)
	}
	if err := c1.Shift(inX); err != nil {
		t.Fatal(err)
	}
	res := c1.Finish()
	if len(res.Halts) != 1 {
		t.Fatalf("halts = %d, want 1", len(res.Halts))
	}
	if res.FinalSignature != 0 {
		t.Fatalf("final signature %x, want 0 (register reset at halt, no inputs after)", res.FinalSignature)
	}
}

// X-only differences (an X resolving differently) must NOT change any
// signature: X's are fully canceled.
func TestXValueIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := scan.MustGeometry(8, 12)
	build := func(xAs logic.V) *scan.ResponseSet {
		rr := rand.New(rand.NewSource(77)) // same known values both times
		s := scan.NewResponseSet(g)
		for p := 0; p < 4; p++ {
			resp := scan.NewResponse(g)
			for c := 0; c < 8; c++ {
				for t := 0; t < 12; t++ {
					if rr.Float64() < 0.05 {
						resp.Set(c, t, logic.X)
					} else if rr.Intn(2) == 1 {
						resp.Set(c, t, logic.One)
					} else {
						resp.Set(c, t, logic.Zero)
					}
				}
			}
			if err := s.Append(resp); err != nil {
				panic(err)
			}
		}
		return s
	}
	_ = r
	set := build(logic.X)
	res, err := RunResponses(cfg(8, 2), set)
	if err != nil {
		t.Fatal(err)
	}
	// The symbolic run never looked at X "values" at all; verify instead
	// that signatures are reproducible and X-free.
	res2, err := RunResponses(cfg(8, 2), set)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Halts {
		for j := range res.Halts[i].Signatures {
			if res.Halts[i].Signatures[j].Parity != res2.Halts[i].Signatures[j].Parity {
				t.Fatal("signatures not reproducible")
			}
		}
	}
}

func TestDeficitOnXBurst(t *testing.T) {
	c := MustNewCanceler(cfg(6, 2))
	in := make(logic.Vector, 6)
	for i := range in {
		in[i] = logic.X
	}
	if err := c.Shift(in); err != nil {
		t.Fatal(err)
	}
	res := c.Finish()
	if len(res.Halts) != 1 {
		t.Fatalf("halts = %d, want 1", len(res.Halts))
	}
	h := res.Halts[0]
	// 6 X's into a 6-bit MISR after one clock: rank can be up to 6, so a
	// deficit is expected (fewer than q X-free combinations).
	if h.XRetired != 6 {
		t.Fatalf("XRetired = %d, want 6", h.XRetired)
	}
	if len(h.Signatures)+h.Deficit != 2 {
		t.Fatalf("signatures %d + deficit %d != q", len(h.Signatures), h.Deficit)
	}
}

func TestShiftWidthError(t *testing.T) {
	c := MustNewCanceler(cfg(6, 2))
	if err := c.Shift(make(logic.Vector, 5)); err == nil {
		t.Fatal("accepted wrong width")
	}
}

// TestShiftWidthErrorTable checks every off-by-one around the m-wide input
// contract, that errors name both widths, and that a rejected slice leaves
// the canceler untouched (no phantom cycle or X accounting).
func TestShiftWidthErrorTable(t *testing.T) {
	const m = 6
	cases := []struct {
		name  string
		width int
		ok    bool
	}{
		{"empty", 0, false},
		{"one short", m - 1, false},
		{"exact", m, true},
		{"one over", m + 1, false},
		{"double", 2 * m, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := MustNewCanceler(cfg(m, 2))
			err := c.Shift(make(logic.Vector, tc.width))
			if tc.ok {
				if err != nil {
					t.Fatalf("rejected exact width: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted width %d", tc.width)
			}
			for _, want := range []string{fmt.Sprintf("width %d", tc.width), fmt.Sprintf("want %d", m)} {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q, want it to mention %q", err, want)
				}
			}
			if res := c.Finish(); res.ShiftCycles != 0 || res.TotalX != 0 {
				t.Fatalf("rejected Shift mutated state: %+v", res)
			}
		})
	}
}

func TestRunResponsesGeometryError(t *testing.T) {
	set := scan.NewResponseSet(scan.MustGeometry(4, 4))
	if _, err := RunResponses(cfg(6, 2), set); err == nil {
		t.Fatal("accepted chains != m")
	}
}

// TestRunResponsesGeometryTable checks the chain-count/MISR-size match on
// both sides of equality and that mismatch errors name both numbers.
func TestRunResponsesGeometryTable(t *testing.T) {
	const m = 6
	cases := []struct {
		name   string
		chains int
		ok     bool
	}{
		{"one chain", 1, false},
		{"one short", m - 1, false},
		{"exact", m, true},
		{"one over", m + 1, false},
		{"double", 2 * m, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := scan.NewResponseSet(scan.MustGeometry(tc.chains, 3))
			_, err := RunResponses(cfg(m, 2), set)
			if tc.ok {
				if err != nil {
					t.Fatalf("rejected matching geometry: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted %d chains into a %d-input MISR", tc.chains, m)
			}
			for _, want := range []string{fmt.Sprintf("%d chains", tc.chains), fmt.Sprintf("%d-input", m)} {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q, want it to mention %q", err, want)
				}
			}
		})
	}
}

func TestFinishIdempotentWhenClean(t *testing.T) {
	c := MustNewCanceler(cfg(6, 2))
	in := make(logic.Vector, 6) // all zeros
	if err := c.Shift(in); err != nil {
		t.Fatal(err)
	}
	r1 := c.Finish()
	r2 := c.Finish()
	if len(r1.Halts) != 0 || len(r2.Halts) != 0 {
		t.Fatal("spurious halts without X's")
	}
}

// Property: the cycle-level controller never halts more often than the
// closed-form bound ceil(T/(m-q)).
func TestHaltCountBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 6 + r.Intn(10)
		q := 1 + r.Intn(m/2)
		set := randomResponses(r, m, 5+r.Intn(15), 1+r.Intn(5), 0.05*r.Float64())
		res, err := RunResponses(Config{MISR: misr.MustStandard(m), Q: q}, set)
		if err != nil {
			return false
		}
		return len(res.Halts) <= Halts(res.TotalX, m, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
