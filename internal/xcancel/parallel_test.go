package xcancel

import (
	"math/rand"
	"reflect"
	"testing"

	"xhybrid/internal/gf2"
	"xhybrid/internal/logic"
	"xhybrid/internal/misr"
	"xhybrid/internal/scan"
)

// randSet builds a response set with the given pattern count and X density.
func randSet(t *testing.T, g scan.Geometry, patterns int, xDensity float64, seed int64) *scan.ResponseSet {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	set := scan.NewResponseSet(g)
	for p := 0; p < patterns; p++ {
		resp := scan.NewResponse(g)
		for c := 0; c < g.Chains; c++ {
			for pos := 0; pos < g.ChainLen; pos++ {
				switch {
				case r.Float64() < xDensity:
					resp.Set(c, pos, logic.X)
				case r.Intn(2) == 1:
					resp.Set(c, pos, logic.One)
				default:
					resp.Set(c, pos, logic.Zero)
				}
			}
		}
		if err := set.Append(resp); err != nil {
			t.Fatal(err)
		}
	}
	return set
}

// RunPartitioned must equal a serial per-partition loop, for any worker
// count, session by session.
func TestRunPartitionedMatchesSerial(t *testing.T) {
	g := scan.MustGeometry(16, 32)
	cfg := Config{MISR: misr.MustStandard(16), Q: 3}
	var sets []*scan.ResponseSet
	for i := 0; i < 5; i++ {
		sets = append(sets, randSet(t, g, 4+i, 0.03, int64(i+1)))
	}
	var want []Result
	for _, s := range sets {
		res, err := RunResponses(cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := RunPartitioned(cfg, sets, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got.PerPartition, want) {
			t.Fatalf("workers=%d: per-partition results differ from serial", workers)
		}
		wantX := 0
		for _, r := range want {
			wantX += r.TotalX
		}
		if got.TotalX != wantX {
			t.Fatalf("workers=%d: TotalX = %d, want %d", workers, got.TotalX, wantX)
		}
		if got.NormalizedTime() < 1 {
			t.Fatalf("workers=%d: normalized time %f < 1", workers, got.NormalizedTime())
		}
	}
}

func TestRunPartitionedPropagatesErrors(t *testing.T) {
	cfg := Config{MISR: misr.MustStandard(16), Q: 3}
	bad := scan.NewResponseSet(scan.MustGeometry(8, 4)) // 8 chains != 16-input MISR
	if _, err := RunPartitioned(cfg, []*scan.ResponseSet{bad}, 2); err == nil {
		t.Fatal("accepted mismatched geometry")
	}
	cfg.Q = 0 // invalid
	if _, err := RunPartitioned(cfg, nil, 2); err == nil {
		t.Fatal("accepted invalid config")
	}
}

func TestSplitByPartition(t *testing.T) {
	g := scan.MustGeometry(16, 8)
	set := randSet(t, g, 10, 0.05, 7)
	parts := []PatternSet{
		gf2.FromIndices(10, 0, 3, 4),
		gf2.FromIndices(10, 1, 2, 5, 6, 7, 8, 9),
	}
	subs, err := SplitByPartition(set, parts)
	if err != nil {
		t.Fatal(err)
	}
	if subs[0].Patterns() != 3 || subs[1].Patterns() != 7 {
		t.Fatalf("partition sizes = %d/%d, want 3/7", subs[0].Patterns(), subs[1].Patterns())
	}
	if !reflect.DeepEqual(subs[0].Responses[1], set.Responses[3]) {
		t.Fatal("partition 0 did not pick pattern 3 second")
	}
	// The split sessions retire the same X volume as one big session.
	cfg := Config{MISR: misr.MustStandard(16), Q: 3}
	whole, err := RunResponses(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPartitioned(cfg, subs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalX != whole.TotalX {
		t.Fatalf("partitioned TotalX = %d, want %d", res.TotalX, whole.TotalX)
	}
	// Out-of-range selection is rejected.
	if _, err := SplitByPartition(set, []PatternSet{gf2.FromIndices(11, 10)}); err == nil {
		t.Fatal("accepted out-of-range pattern index")
	}
}
