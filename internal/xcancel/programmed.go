package xcancel

import (
	"fmt"

	"xhybrid/internal/gf2"
	"xhybrid/internal/misr"
	"xhybrid/internal/scan"
)

// Schedule is the tester program extracted from a golden run: when to halt
// and which signature-bit combinations to read out at each halt. Real
// hardware applies exactly this — the selections come down the control
// channels regardless of what the silicon actually produced.
type Schedule struct {
	// MISR and Q mirror the configuration the schedule was built for.
	MISR misr.Config
	Q    int
	// HaltCycles lists the shift-cycle indices at which scan halts.
	HaltCycles []int
	// Selections[i] are the selection vectors applied at halt i.
	Selections [][]gf2.Vec
	// Parities[i] are the golden (expected) parities at halt i.
	Parities [][]int
	// FinalSignature is the expected end-of-test signature.
	FinalSignature uint64
}

// ExtractSchedule converts a golden Result into the tester program.
func ExtractSchedule(cfg Config, res Result) Schedule {
	s := Schedule{MISR: cfg.MISR, Q: cfg.Q, FinalSignature: res.FinalSignature}
	for _, h := range res.Halts {
		s.HaltCycles = append(s.HaltCycles, h.Cycle)
		var sels []gf2.Vec
		var pars []int
		for _, sig := range h.Signatures {
			sels = append(sels, sig.Selection)
			pars = append(pars, sig.Parity)
		}
		s.Selections = append(s.Selections, sels)
		s.Parities = append(s.Parities, pars)
	}
	return s
}

// ReplayResult is the outcome of applying a programmed schedule to a
// (possibly faulty) response stream.
type ReplayResult struct {
	// ParityMismatches counts programmed signatures whose parity deviated
	// from the golden expectation.
	ParityMismatches int
	// Contaminated counts programmed signatures that were no longer X-free
	// because the X profile shifted — hardware reads an unknown value and
	// flags the compare.
	Contaminated int
	// FinalMismatch marks an end-of-test signature deviation (only
	// meaningful when the final state is X-free; see FinalContaminated).
	FinalMismatch bool
	// FinalContaminated marks X's left in the register at end of test.
	FinalContaminated bool
}

// Fails reports whether the replayed device would be rejected.
func (r ReplayResult) Fails() bool {
	return r.ParityMismatches > 0 || r.Contaminated > 0 || r.FinalMismatch || r.FinalContaminated
}

// Replay applies the programmed schedule to a response stream. Unlike the
// adaptive Canceler, halts occur exactly at the programmed cycles and the
// programmed selections are evaluated against whatever the stream contains:
// a selection that is no longer X-free is counted as contaminated (the
// physical comparator sees an unknown), and known parities are checked
// against the golden expectations.
func Replay(sched Schedule, set *scan.ResponseSet) (*ReplayResult, error) {
	if set.Geom.Chains != sched.MISR.Size {
		return nil, fmt.Errorf("xcancel: %d chains but %d-input MISR", set.Geom.Chains, sched.MISR.Size)
	}
	sym, err := misr.NewSymbolic(sched.MISR, sched.MISR.Size)
	if err != nil {
		return nil, err
	}
	out := &ReplayResult{}
	cycle := 0
	next := 0
	halt := func() {
		if next >= len(sched.HaltCycles) {
			return
		}
		for k, sel := range sched.Selections[next] {
			parity, deps := sym.Combine(sel)
			if !deps.IsZero() {
				out.Contaminated++
				continue
			}
			if parity != sched.Parities[next][k] {
				out.ParityMismatches++
			}
		}
		sym.Reset()
		next++
	}
	for _, r := range set.Responses {
		for t := 0; t < set.Geom.ChainLen; t++ {
			in := r.Slice(t)
			if len(in) != sched.MISR.Size {
				return nil, fmt.Errorf("xcancel: slice width %d, want %d", len(in), sched.MISR.Size)
			}
			sym.ClockVector(in, nil)
			cycle++
			for next < len(sched.HaltCycles) && sched.HaltCycles[next] == cycle {
				halt()
			}
		}
	}
	// Any unapplied halts mean the stream was shorter than programmed.
	if next < len(sched.HaltCycles) {
		return nil, fmt.Errorf("xcancel: stream ended before halt %d (cycle %d)", next, sched.HaltCycles[next])
	}
	// End-of-test signature.
	if sym.NumSymbols() > 0 {
		dirty := false
		for i := 0; i < sched.MISR.Size; i++ {
			sel := gf2.NewVec(sched.MISR.Size)
			sel.Set(i)
			if _, deps := sym.Combine(sel); !deps.IsZero() {
				dirty = true
				break
			}
		}
		out.FinalContaminated = dirty
	}
	if !out.FinalContaminated && sym.Known() != sched.FinalSignature {
		out.FinalMismatch = true
	}
	return out, nil
}
