package xcancel

import (
	"context"
	"errors"
	"testing"

	"xhybrid/internal/logic"
	"xhybrid/internal/misr"
	"xhybrid/internal/scan"
)

// TestRunPartitionedCtxCanceled: a dead context skips every session and
// surfaces as context.Canceled; a live one matches RunPartitioned exactly.
func TestRunPartitionedCtxCanceled(t *testing.T) {
	geom := scan.MustGeometry(4, 2)
	set := scan.NewResponseSet(geom)
	resp := scan.NewResponse(geom)
	resp.Set(0, 1, logic.X)
	if err := set.Append(resp); err != nil {
		t.Fatal(err)
	}
	cfg := Config{MISR: misr.MustStandard(4), Q: 1}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunPartitionedCtx(ctx, cfg, []*scan.ResponseSet{set}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	want, err := RunPartitioned(cfg, []*scan.ResponseSet{set}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunPartitionedCtx(context.Background(), cfg, []*scan.ResponseSet{set}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want.ControlBits != got.ControlBits || want.TotalX != got.TotalX || want.Halts != got.Halts {
		t.Fatalf("live-context run diverged: %+v vs %+v", want, got)
	}
}
