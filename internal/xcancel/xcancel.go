// Package xcancel implements the X-canceling MISR methodology [12, 13]:
// unknown values are allowed into the MISR, their propagation is tracked
// symbolically, and Gaussian elimination over GF(2) finds linear
// combinations of signature bits with no X dependence. Those X-free
// combinations are compared against their fault-free values, preserving
// fault coverage without blocking any response bits.
//
// The package provides both the closed-form accounting used by the paper's
// Table 1 (control bits and normalized test time as functions of the total
// X count, MISR size m, and X-free combination count q) and a cycle-level
// session controller over a symbolic MISR for end-to-end demonstrations.
//
// This package implements DESIGN.md §5.3 (symbolic MISR sessions, halting,
// X-free extraction, and the control-bit / test-time accounting).
package xcancel

import (
	"fmt"

	"xhybrid/internal/gf2"
	"xhybrid/internal/logic"
	"xhybrid/internal/misr"
	"xhybrid/internal/obs"
	"xhybrid/internal/scan"
)

// Config describes an X-canceling MISR deployment.
type Config struct {
	// MISR is the register configuration (size m and polynomial).
	MISR misr.Config
	// Q is the number of X-free combinations extracted per halt. Each halt
	// transfers m*Q selection control bits and costs Q extraction cycles in
	// the time-multiplexed architecture [11].
	Q int
	// Shadow selects the shadow-register variant of [11]: extraction
	// overlaps scan shifting, so it costs no test time, but the selection
	// data needs dedicated tester channels. Accounting only.
	Shadow bool
}

// Validate checks the configuration invariants.
func (c Config) Validate() error {
	if err := c.MISR.Validate(); err != nil {
		return err
	}
	if c.Q < 1 || c.Q >= c.MISR.Size {
		return fmt.Errorf("xcancel: q = %d must satisfy 1 <= q < m = %d", c.Q, c.MISR.Size)
	}
	return nil
}

// checkMQ panics unless 1 <= q < m, the precondition of every closed-form
// accounting function below. Halts per session hold m-q X's, so q >= m
// (zero or negative capacity) has no defined halt count — before this
// guard, q = m crashed with an anonymous divide-by-zero and q > m returned
// negative counts that silently corrupted Table-1 numbers. Callers that
// take m and q from external input should validate with Config.Validate
// and return the error instead of reaching this panic.
func checkMQ(m, q int) {
	if q < 1 || q >= m {
		panic(fmt.Sprintf("xcancel: invalid accounting config m=%d q=%d (need 1 <= q < m)", m, q))
	}
}

// Halts returns the number of scan halts needed to retire totalX unknown
// values: ceil(totalX / (m - q)). Zero X's need zero halts for any m and
// q; otherwise the configuration must satisfy 1 <= q < m or Halts panics
// (see checkMQ).
func Halts(totalX, m, q int) int {
	if totalX <= 0 {
		return 0
	}
	checkMQ(m, q)
	cap := m - q
	return (totalX + cap - 1) / cap
}

// ControlBits returns the paper's X-canceling control-bit volume
// ceil(m*q*totalX / (m-q)): each halt transfers m*q selection bits and the
// product is rounded up once at the end, matching the paper's worked
// examples (57.5 -> 58, 43.3 -> 44, 50.5 -> 51). Zero X's cost zero bits
// for any m and q; otherwise the configuration must satisfy 1 <= q < m or
// ControlBits panics (see checkMQ).
func ControlBits(totalX, m, q int) int {
	if totalX <= 0 {
		return 0
	}
	checkMQ(m, q)
	num := m * q * totalX
	den := m - q
	return (num + den - 1) / den
}

// ControlBitsPerHaltCeil is the alternative accounting that rounds the halt
// count up first: Halts * m * q. It upper-bounds ControlBits and is what a
// cycle-accurate controller actually transfers; exposed for the rounding
// ablation. It shares Halts's precondition (1 <= q < m when totalX > 0).
func ControlBitsPerHaltCeil(totalX, m, q int) int {
	return Halts(totalX, m, q) * m * q
}

// NormalizedTestTime returns the paper's normalized test time for the
// time-multiplexed X-canceling MISR: 1 + chains*xDensity*q/(m-q), where
// xDensity is the fraction of response bits (entering the MISR) that are X.
// The shadow-register variant always has normalized time 1. The
// time-multiplexed configuration must satisfy 1 <= q < m or the function
// panics (see checkMQ) — before the guard, q = m returned +Inf and q > m a
// time below 1, both silently wrong.
func NormalizedTestTime(cfg Config, chains int, xDensity float64) float64 {
	if cfg.Shadow {
		return 1
	}
	m, q := cfg.MISR.Size, cfg.Q
	checkMQ(m, q)
	return 1 + float64(chains)*xDensity*float64(q)/float64(m-q)
}

// Signature is one extracted X-free combination.
type Signature struct {
	// Selection selects the signature bits XORed together (length m).
	Selection gf2.Vec
	// Parity is the combination's fault-free-known parity at extraction.
	Parity int
}

// Halt records one scan-halt extraction event.
type Halt struct {
	// Cycle is the shift-cycle index at which the halt occurred.
	Cycle int
	// XRetired is the number of accumulated X symbols retired.
	XRetired int
	// Signatures are the extracted X-free combinations (up to Q).
	Signatures []Signature
	// Deficit is Q minus the number of X-free combinations available; a
	// nonzero deficit means more X's accumulated in one cycle than m-q.
	Deficit int
}

// Result summarizes a full X-canceling run.
type Result struct {
	Halts       []Halt
	TotalX      int
	ShiftCycles int
	// HaltCycles is Q per halt for the time-multiplexed variant, 0 for
	// the shadow-register variant.
	HaltCycles int
	// ControlBits is m*Q per halt actually transferred.
	ControlBits int
	// FinalSignature is the MISR state read out at end of test. It is
	// X-free: the register is reset at every halt, so it only accumulates
	// known values captured after the last halt.
	FinalSignature uint64
}

// NormalizedTime returns (shift + halt cycles) / shift cycles.
func (r Result) NormalizedTime() float64 {
	if r.ShiftCycles == 0 {
		return 1
	}
	return float64(r.ShiftCycles+r.HaltCycles) / float64(r.ShiftCycles)
}

// Canceler is the cycle-level session controller. Feed it one compactor
// input slice per shift cycle; it accumulates X symbols in a symbolic MISR
// and halts whenever the pending X count reaches m-q, extracting Q X-free
// combinations and retiring the symbols.
type Canceler struct {
	cfg      Config
	sym      *misr.Symbolic
	pendingX int
	res      Result

	// Observability handles, nil (no-op) unless Observe was called. They
	// are touched only at halt/finish boundaries, never per shift cycle,
	// so the cycle-level hot path is identical with and without them.
	obsHalts      *obs.Counter
	obsDeficits   *obs.Counter
	obsSignatures *obs.Counter
	obsXRetired   *obs.Counter
	obsCycles     *obs.Counter
	// cyclesFlushed is how many shift cycles were already added to
	// obsCycles, so repeated Finish calls (and shared recorders across
	// sessions) accumulate instead of double-counting.
	cyclesFlushed int
}

// NewCanceler returns a controller for the configuration.
func NewCanceler(cfg Config) (*Canceler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sym, err := misr.NewSymbolic(cfg.MISR, cfg.MISR.Size)
	if err != nil {
		return nil, err
	}
	return &Canceler{cfg: cfg, sym: sym}, nil
}

// Observe registers rec to receive the controller's session counters:
// xcancel.halts, xcancel.deficits, xcancel.signatures (the X-free
// eliminations extracted), xcancel.x.retired and xcancel.shift.cycles. A
// nil rec (or never calling Observe) leaves observation disabled; the
// counters are only updated at halts and Finish, so per-cycle shifting
// costs nothing either way.
func (c *Canceler) Observe(rec *obs.Recorder) {
	c.obsHalts = rec.Counter("xcancel.halts")
	c.obsDeficits = rec.Counter("xcancel.deficits")
	c.obsSignatures = rec.Counter("xcancel.signatures")
	c.obsXRetired = rec.Counter("xcancel.x.retired")
	c.obsCycles = rec.Counter("xcancel.shift.cycles")
}

// MustNewCanceler is NewCanceler that panics on error.
func MustNewCanceler(cfg Config) *Canceler {
	c, err := NewCanceler(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Shift feeds one compactor input slice (width m) for one shift cycle.
func (c *Canceler) Shift(in logic.Vector) error {
	if len(in) != c.cfg.MISR.Size {
		return fmt.Errorf("xcancel: input width %d, want %d", len(in), c.cfg.MISR.Size)
	}
	for _, v := range in {
		if v == logic.X {
			c.pendingX++
			c.res.TotalX++
		}
	}
	c.sym.ClockVector(in, nil)
	c.res.ShiftCycles++
	if c.pendingX >= c.cfg.MISR.Size-c.cfg.Q {
		c.halt()
	}
	return nil
}

// halt extracts X-free combinations and retires the pending symbols.
func (c *Canceler) halt() {
	dep := c.sym.Matrix()
	sels := gf2.NullCombinations(dep)
	h := Halt{Cycle: c.res.ShiftCycles, XRetired: c.pendingX}
	take := c.cfg.Q
	if len(sels) < take {
		h.Deficit = take - len(sels)
		take = len(sels)
	}
	for _, sel := range sels[:take] {
		parity, deps := c.sym.Combine(sel)
		if !deps.IsZero() {
			panic("xcancel: extracted combination is not X-free")
		}
		h.Signatures = append(h.Signatures, Signature{Selection: sel, Parity: parity})
	}
	// The register is reset after read-out, as in the time-multiplexed
	// X-canceling MISR: the next session starts clean.
	c.sym.Reset()
	c.pendingX = 0
	c.res.Halts = append(c.res.Halts, h)
	c.res.ControlBits += c.cfg.MISR.Size * c.cfg.Q
	if !c.cfg.Shadow {
		c.res.HaltCycles += c.cfg.Q
	}
	c.obsHalts.Inc()
	c.obsDeficits.Add(int64(h.Deficit))
	c.obsSignatures.Add(int64(len(h.Signatures)))
	c.obsXRetired.Add(int64(h.XRetired))
}

// Finish performs a final halt if X symbols are pending, records the
// end-of-test signature, and returns the run summary. The controller can
// keep shifting afterwards; Finish is idempotent when no X's are pending.
func (c *Canceler) Finish() Result {
	if c.pendingX > 0 {
		c.halt()
	}
	c.res.FinalSignature = c.sym.Known()
	c.obsCycles.Add(int64(c.res.ShiftCycles - c.cyclesFlushed))
	c.cyclesFlushed = c.res.ShiftCycles
	return c.res
}

// PendingX returns the number of X symbols accumulated since the last halt.
func (c *Canceler) PendingX() int { return c.pendingX }

// Known returns the known-contribution part of the MISR state.
func (c *Canceler) Known() uint64 { return c.sym.Known() }

// RunResponses shifts every response of the set through a fresh canceler
// (the scan geometry's chain count must equal the MISR size) and returns the
// run summary. This is the end-to-end demonstration path; large designs use
// the closed-form accounting instead.
func RunResponses(cfg Config, s *scan.ResponseSet) (Result, error) {
	return RunResponsesObs(cfg, s, nil)
}

// RunResponsesObs is RunResponses with the session's halt/deficit/
// signature counters and wall time recorded on rec (nil disables).
func RunResponsesObs(cfg Config, s *scan.ResponseSet, rec *obs.Recorder) (Result, error) {
	if s.Geom.Chains != cfg.MISR.Size {
		return Result{}, fmt.Errorf("xcancel: %d chains but %d-input MISR", s.Geom.Chains, cfg.MISR.Size)
	}
	c, err := NewCanceler(cfg)
	if err != nil {
		return Result{}, err
	}
	c.Observe(rec)
	defer rec.Span("xcancel.run")()
	for _, r := range s.Responses {
		for t := 0; t < s.Geom.ChainLen; t++ {
			if err := c.Shift(r.Slice(t)); err != nil {
				return Result{}, err
			}
		}
	}
	return c.Finish(), nil
}
