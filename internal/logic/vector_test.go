package logic

import "testing"

func TestNewVectorIsAllX(t *testing.T) {
	v := NewVector(5)
	if v.CountX() != 5 || v.AllKnown() {
		t.Fatalf("NewVector not all-X: %v", v)
	}
	z := ZeroVector(4)
	if z.CountX() != 0 || !z.AllKnown() {
		t.Fatalf("ZeroVector not all-known: %v", z)
	}
}

func TestParseVector(t *testing.T) {
	v, err := ParseVector("01x X_1 0")
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{Zero, One, X, X, One, Zero}
	if !v.Equal(want) {
		t.Fatalf("got %v, want %v", v, want)
	}
	if v.String() != "01XX10" {
		t.Fatalf("String = %q", v.String())
	}
	if _, err := ParseVector("01z"); err == nil {
		t.Fatal("ParseVector accepted invalid rune")
	}
}

func TestMustParseVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseVector("2")
}

func TestXIndices(t *testing.T) {
	v := MustParseVector("x01x1")
	idx := v.XIndices()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 3 {
		t.Fatalf("XIndices = %v", idx)
	}
}

func TestCloneEqual(t *testing.T) {
	v := MustParseVector("01x")
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone not equal")
	}
	c[0] = One
	if v.Equal(c) {
		t.Fatal("clone shares storage or Equal broken")
	}
	if v.Equal(MustParseVector("01")) {
		t.Fatal("Equal ignores length")
	}
}

func TestCompatible(t *testing.T) {
	a := MustParseVector("01x1")
	b := MustParseVector("0xx1")
	if !a.Compatible(b) {
		t.Fatal("compatible vectors reported incompatible")
	}
	c := MustParseVector("11x1")
	if a.Compatible(c) {
		t.Fatal("incompatible vectors reported compatible")
	}
	if a.Compatible(MustParseVector("01x")) {
		t.Fatal("length mismatch must be incompatible")
	}
}
