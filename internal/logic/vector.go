package logic

import (
	"fmt"
	"strings"
)

// Vector is a slice of three-valued logic values with convenience helpers.
type Vector []V

// NewVector returns a Vector of length n initialized to X (unknown),
// matching the power-on state of uninitialized storage.
func NewVector(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = X
	}
	return v
}

// ZeroVector returns a Vector of length n initialized to all zeros.
func ZeroVector(n int) Vector { return make(Vector, n) }

// ParseVector parses a string of '0'/'1'/'x'/'X' runes (other runes such as
// separators are ignored).
func ParseVector(s string) (Vector, error) {
	var v Vector
	for _, r := range s {
		switch r {
		case '0', '1', 'x', 'X':
			val, err := Parse(r)
			if err != nil {
				return nil, err
			}
			v = append(v, val)
		case ' ', '_', '\t':
			// separator
		default:
			return nil, fmt.Errorf("logic: invalid vector rune %q", r)
		}
	}
	return v, nil
}

// MustParseVector is ParseVector that panics on error; for tests/fixtures.
func MustParseVector(s string) Vector {
	v, err := ParseVector(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Equal reports element-wise equality.
func (v Vector) Equal(u Vector) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if v[i] != u[i] {
			return false
		}
	}
	return true
}

// CountX returns the number of X elements.
func (v Vector) CountX() int {
	n := 0
	for _, e := range v {
		if e == X {
			n++
		}
	}
	return n
}

// AllKnown reports whether no element is X.
func (v Vector) AllKnown() bool { return v.CountX() == 0 }

// XIndices returns the indices of X elements in ascending order.
func (v Vector) XIndices() []int {
	var idx []int
	for i, e := range v {
		if e == X {
			idx = append(idx, i)
		}
	}
	return idx
}

// String renders the vector as a compact rune string.
func (v Vector) String() string {
	var sb strings.Builder
	sb.Grow(len(v))
	for _, e := range v {
		sb.WriteString(e.String())
	}
	return sb.String()
}

// Compatible reports whether v and u agree on every position where both are
// known (X matches anything). Used to compare faulty vs fault-free responses.
func (v Vector) Compatible(u Vector) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if v[i] != X && u[i] != X && v[i] != u[i] {
			return false
		}
	}
	return true
}
