// Package logic implements three-valued (0, 1, X) logic used throughout the
// scan-test substrate. X models an unknown value from sources such as
// uninitialized memory elements, bus contention, or floating tri-states;
// all gate operations propagate X pessimistically, with controlling values
// dominating (AND(0, X) = 0, OR(1, X) = 1).
package logic

import "fmt"

// V is a three-valued logic value.
type V uint8

// The three logic values. The numeric values of Zero and One match their
// Boolean meaning so that V(b&1) conversions are safe for known values.
const (
	Zero V = 0
	One  V = 1
	X    V = 2
)

// FromBool converts a Boolean to a known logic value.
func FromBool(b bool) V {
	if b {
		return One
	}
	return Zero
}

// FromBit converts bit b (0 or 1) to a known logic value.
func FromBit(b int) V {
	if b&1 != 0 {
		return One
	}
	return Zero
}

// Parse converts a rune to a logic value: '0', '1', 'x'/'X'.
func Parse(r rune) (V, error) {
	switch r {
	case '0':
		return Zero, nil
	case '1':
		return One, nil
	case 'x', 'X':
		return X, nil
	}
	return X, fmt.Errorf("logic: invalid value %q", r)
}

// IsKnown reports whether v is 0 or 1 (not X).
func (v V) IsKnown() bool { return v != X }

// Bit returns 0 or 1 for a known value; it panics on X.
func (v V) Bit() int {
	if v == X {
		panic("logic: Bit of X")
	}
	return int(v)
}

// String returns "0", "1" or "X".
func (v V) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "X"
	}
	return fmt.Sprintf("V(%d)", uint8(v))
}

// Not returns the three-valued complement.
func Not(a V) V {
	switch a {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

// And returns the three-valued AND: a controlling 0 dominates X.
func And(a, b V) V {
	if a == Zero || b == Zero {
		return Zero
	}
	if a == One && b == One {
		return One
	}
	return X
}

// Or returns the three-valued OR: a controlling 1 dominates X.
func Or(a, b V) V {
	if a == One || b == One {
		return One
	}
	if a == Zero && b == Zero {
		return Zero
	}
	return X
}

// Xor returns the three-valued XOR: any X input yields X.
func Xor(a, b V) V {
	if a == X || b == X {
		return X
	}
	return a ^ b
}

// Nand returns NOT(AND(a, b)).
func Nand(a, b V) V { return Not(And(a, b)) }

// Nor returns NOT(OR(a, b)).
func Nor(a, b V) V { return Not(Or(a, b)) }

// Xnor returns NOT(XOR(a, b)).
func Xnor(a, b V) V { return Not(Xor(a, b)) }

// Mux returns d0 when sel=0, d1 when sel=1; with sel=X it returns the common
// data value if d0 == d1 and both are known, else X.
func Mux(sel, d0, d1 V) V {
	switch sel {
	case Zero:
		return d0
	case One:
		return d1
	}
	if d0 == d1 && d0 != X {
		return d0
	}
	return X
}

// AndN folds And over one or more inputs.
func AndN(vs ...V) V {
	out := One
	for _, v := range vs {
		out = And(out, v)
	}
	return out
}

// OrN folds Or over one or more inputs.
func OrN(vs ...V) V {
	out := Zero
	for _, v := range vs {
		out = Or(out, v)
	}
	return out
}

// XorN folds Xor over one or more inputs.
func XorN(vs ...V) V {
	out := Zero
	for _, v := range vs {
		out = Xor(out, v)
	}
	return out
}
