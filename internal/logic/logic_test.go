package logic

import (
	"testing"
	"testing/quick"
)

var all = []V{Zero, One, X}

func TestStringAndParse(t *testing.T) {
	for _, v := range all {
		got, err := Parse(rune(v.String()[0]))
		if err != nil || got != v {
			t.Fatalf("Parse(String(%v)) = %v, %v", v, got, err)
		}
	}
	if _, err := Parse('z'); err == nil {
		t.Fatal("Parse accepted invalid rune")
	}
	if V(7).String() == "" {
		t.Fatal("String of invalid value empty")
	}
}

func TestFromBoolFromBit(t *testing.T) {
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Fatal("FromBool wrong")
	}
	if FromBit(1) != One || FromBit(0) != Zero || FromBit(3) != One {
		t.Fatal("FromBit wrong")
	}
}

func TestBitPanicsOnX(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bit(X) must panic")
		}
	}()
	X.Bit()
}

func TestTruthTables(t *testing.T) {
	type c struct {
		f        func(a, b V) V
		name     string
		expected [3][3]V // indexed [a][b]
	}
	cases := []c{
		{And, "And", [3][3]V{
			{Zero, Zero, Zero},
			{Zero, One, X},
			{Zero, X, X},
		}},
		{Or, "Or", [3][3]V{
			{Zero, One, X},
			{One, One, One},
			{X, One, X},
		}},
		{Xor, "Xor", [3][3]V{
			{Zero, One, X},
			{One, Zero, X},
			{X, X, X},
		}},
	}
	for _, tc := range cases {
		for _, a := range all {
			for _, b := range all {
				if got := tc.f(a, b); got != tc.expected[a][b] {
					t.Fatalf("%s(%v,%v) = %v, want %v", tc.name, a, b, got, tc.expected[a][b])
				}
			}
		}
	}
}

func TestDeMorgan(t *testing.T) {
	for _, a := range all {
		for _, b := range all {
			if Nand(a, b) != Or(Not(a), Not(b)) {
				t.Fatalf("De Morgan NAND fails at %v,%v", a, b)
			}
			if Nor(a, b) != And(Not(a), Not(b)) {
				t.Fatalf("De Morgan NOR fails at %v,%v", a, b)
			}
		}
	}
}

func TestNotInvolution(t *testing.T) {
	for _, a := range all {
		if Not(Not(a)) != a {
			t.Fatalf("Not(Not(%v)) != %v", a, a)
		}
	}
}

func TestXnor(t *testing.T) {
	for _, a := range all {
		for _, b := range all {
			if Xnor(a, b) != Not(Xor(a, b)) {
				t.Fatalf("Xnor mismatch at %v,%v", a, b)
			}
		}
	}
}

func TestMux(t *testing.T) {
	for _, d0 := range all {
		for _, d1 := range all {
			if Mux(Zero, d0, d1) != d0 {
				t.Fatalf("Mux(0,%v,%v) != d0", d0, d1)
			}
			if Mux(One, d0, d1) != d1 {
				t.Fatalf("Mux(1,%v,%v) != d1", d0, d1)
			}
			got := Mux(X, d0, d1)
			if d0 == d1 && d0 != X {
				if got != d0 {
					t.Fatalf("Mux(X,%v,%v) = %v, want %v", d0, d1, got, d0)
				}
			} else if got != X {
				t.Fatalf("Mux(X,%v,%v) = %v, want X", d0, d1, got)
			}
		}
	}
}

func TestNAryFolds(t *testing.T) {
	if AndN(One, One, One) != One || AndN(One, Zero, X) != Zero || AndN(One, X) != X {
		t.Fatal("AndN wrong")
	}
	if OrN(Zero, Zero) != Zero || OrN(Zero, One, X) != One || OrN(Zero, X) != X {
		t.Fatal("OrN wrong")
	}
	if XorN(One, One, One) != One || XorN(One, Zero) != One || XorN(One, X, One) != X {
		t.Fatal("XorN wrong")
	}
	if AndN() != One || OrN() != Zero || XorN() != Zero {
		t.Fatal("empty folds must be identities")
	}
}

// Property: every binary op agrees with Boolean logic on known values.
func TestKnownValuesMatchBoolean(t *testing.T) {
	f := func(a, b bool) bool {
		av, bv := FromBool(a), FromBool(b)
		return And(av, bv) == FromBool(a && b) &&
			Or(av, bv) == FromBool(a || b) &&
			Xor(av, bv) == FromBool(a != b) &&
			Not(av) == FromBool(!a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: X-pessimism — if an op returns a known value with an X input,
// the same known value results for both substitutions of that X.
func TestXPessimismSound(t *testing.T) {
	binops := []func(a, b V) V{And, Or, Xor, Nand, Nor, Xnor}
	for _, op := range binops {
		for _, b := range all {
			out := op(X, b)
			if out != X {
				if op(Zero, b) != out || op(One, b) != out {
					t.Fatalf("unsound X resolution: op(X,%v)=%v but op(0,%v)=%v op(1,%v)=%v",
						b, out, b, op(Zero, b), b, op(One, b))
				}
			}
			out = op(b, X)
			if out != X {
				if op(b, Zero) != out || op(b, One) != out {
					t.Fatalf("unsound X resolution (rhs)")
				}
			}
		}
	}
}
