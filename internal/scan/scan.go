// Package scan models the scan architecture of a design under test: the
// geometry of scan chains (number of chains and cells per chain), the
// mapping between flat cell indices and (chain, position) coordinates, and
// captured output responses.
//
// Conventions: cells are indexed chain-major, cell = chain*ChainLen + pos.
// During unload, position 0 of every chain exits first, so shift cycle t
// presents the slice {(chain, t) : chain = 0..Chains-1} to the compactor.
//
// In the end-to-end flow (docs/FLOW.md) a Geometry is the contract every
// stage shares: simulation captures are appended to a ResponseSet under
// it, the X-map indexes cells by its chain-major flattening, the
// partitioner prices mask images as Cells() bits, and the replay shifts
// responses out by its unload schedule. Chains are equal-length by
// construction (NewGeometry rejects anything else) — the paper's
// control-bit accounting multiplies "longest scan chain length" by "number
// of scan chains", which is exact only on rectangular geometries; see
// DESIGN.md §3 for the geometry derived from the paper's own numbers and
// §5.1 for the cell-indexing convention the X-map inherits.
package scan

import (
	"fmt"

	"xhybrid/internal/logic"
)

// Geometry describes a scan architecture with equal-length chains, as
// assumed by the paper's control-bit accounting (the "longest scan chain
// length" times "number of scan chains" product).
type Geometry struct {
	// Chains is the number of parallel scan chains (MISR inputs).
	Chains int
	// ChainLen is the number of scan cells per chain.
	ChainLen int
}

// NewGeometry returns a validated geometry.
func NewGeometry(chains, chainLen int) (Geometry, error) {
	g := Geometry{Chains: chains, ChainLen: chainLen}
	if err := g.Validate(); err != nil {
		return Geometry{}, err
	}
	return g, nil
}

// MustGeometry is NewGeometry that panics on error; for tests and fixtures.
func MustGeometry(chains, chainLen int) Geometry {
	g, err := NewGeometry(chains, chainLen)
	if err != nil {
		panic(err)
	}
	return g
}

// Validate checks that the geometry is usable.
func (g Geometry) Validate() error {
	if g.Chains <= 0 {
		return fmt.Errorf("scan: non-positive chain count %d", g.Chains)
	}
	if g.ChainLen <= 0 {
		return fmt.Errorf("scan: non-positive chain length %d", g.ChainLen)
	}
	return nil
}

// Cells returns the total number of scan cells.
func (g Geometry) Cells() int { return g.Chains * g.ChainLen }

// CellIndex returns the flat index of the cell at (chain, pos).
func (g Geometry) CellIndex(chain, pos int) int {
	if chain < 0 || chain >= g.Chains || pos < 0 || pos >= g.ChainLen {
		panic(fmt.Sprintf("scan: cell (%d,%d) out of %dx%d geometry", chain, pos, g.Chains, g.ChainLen))
	}
	return chain*g.ChainLen + pos
}

// CellCoord returns the (chain, pos) coordinates of a flat cell index.
func (g Geometry) CellCoord(cell int) (chain, pos int) {
	if cell < 0 || cell >= g.Cells() {
		panic(fmt.Sprintf("scan: cell %d out of range [0,%d)", cell, g.Cells()))
	}
	return cell / g.ChainLen, cell % g.ChainLen
}

// String renders the geometry as "chains x chainLen".
func (g Geometry) String() string {
	return fmt.Sprintf("%d chains x %d cells", g.Chains, g.ChainLen)
}

// Response is the captured output response of one test pattern: one
// three-valued logic value per scan cell, addressed via the geometry.
type Response struct {
	Geom   Geometry
	Values logic.Vector
}

// NewResponse returns an all-X response for the geometry.
func NewResponse(g Geometry) Response {
	return Response{Geom: g, Values: logic.NewVector(g.Cells())}
}

// At returns the value captured in cell (chain, pos).
func (r Response) At(chain, pos int) logic.V {
	return r.Values[r.Geom.CellIndex(chain, pos)]
}

// Set stores v in cell (chain, pos).
func (r Response) Set(chain, pos int, v logic.V) {
	r.Values[r.Geom.CellIndex(chain, pos)] = v
}

// Slice returns the values presented to the compactor at shift cycle t:
// one value per chain, from position t of each chain.
func (r Response) Slice(t int) logic.Vector {
	out := make(logic.Vector, r.Geom.Chains)
	for c := 0; c < r.Geom.Chains; c++ {
		out[c] = r.Values[r.Geom.CellIndex(c, t)]
	}
	return out
}

// CountX returns the number of X values in the response.
func (r Response) CountX() int { return r.Values.CountX() }

// Clone returns a deep copy.
func (r Response) Clone() Response {
	return Response{Geom: r.Geom, Values: r.Values.Clone()}
}

// ResponseSet is the full set of captured responses for a pattern set.
type ResponseSet struct {
	Geom      Geometry
	Responses []Response
}

// NewResponseSet allocates an empty response set.
func NewResponseSet(g Geometry) *ResponseSet {
	return &ResponseSet{Geom: g}
}

// Append adds a response, validating its geometry.
func (s *ResponseSet) Append(r Response) error {
	if r.Geom != s.Geom {
		return fmt.Errorf("scan: response geometry %v does not match set %v", r.Geom, s.Geom)
	}
	if len(r.Values) != s.Geom.Cells() {
		return fmt.Errorf("scan: response has %d values, want %d", len(r.Values), s.Geom.Cells())
	}
	s.Responses = append(s.Responses, r)
	return nil
}

// Patterns returns the number of responses in the set.
func (s *ResponseSet) Patterns() int { return len(s.Responses) }

// TotalX returns the total number of X values across all responses.
func (s *ResponseSet) TotalX() int {
	n := 0
	for _, r := range s.Responses {
		n += r.CountX()
	}
	return n
}

// XDensity returns the fraction of response bits that are X.
func (s *ResponseSet) XDensity() float64 {
	total := s.Geom.Cells() * len(s.Responses)
	if total == 0 {
		return 0
	}
	return float64(s.TotalX()) / float64(total)
}
