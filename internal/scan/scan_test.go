package scan

import (
	"testing"
	"testing/quick"

	"xhybrid/internal/logic"
)

func TestGeometryValidate(t *testing.T) {
	if _, err := NewGeometry(0, 5); err == nil {
		t.Fatal("accepted zero chains")
	}
	if _, err := NewGeometry(5, 0); err == nil {
		t.Fatal("accepted zero chain length")
	}
	g, err := NewGeometry(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 15 {
		t.Fatalf("Cells = %d", g.Cells())
	}
	if g.String() == "" {
		t.Fatal("empty String")
	}
}

func TestMustGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustGeometry(-1, 1)
}

func TestCellIndexRoundTrip(t *testing.T) {
	g := MustGeometry(7, 11)
	f := func(chainRaw, posRaw uint8) bool {
		chain := int(chainRaw) % g.Chains
		pos := int(posRaw) % g.ChainLen
		cell := g.CellIndex(chain, pos)
		c2, p2 := g.CellCoord(cell)
		return c2 == chain && p2 == pos && cell >= 0 && cell < g.Cells()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCellIndexPanics(t *testing.T) {
	g := MustGeometry(2, 3)
	for _, c := range []struct{ chain, pos int }{{-1, 0}, {2, 0}, {0, -1}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("CellIndex(%d,%d) did not panic", c.chain, c.pos)
				}
			}()
			g.CellIndex(c.chain, c.pos)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("CellCoord out of range did not panic")
			}
		}()
		g.CellCoord(6)
	}()
}

func TestResponseAtSetSlice(t *testing.T) {
	g := MustGeometry(3, 4)
	r := NewResponse(g)
	if r.CountX() != 12 {
		t.Fatalf("fresh response CountX = %d", r.CountX())
	}
	r.Set(1, 2, logic.One)
	r.Set(2, 2, logic.Zero)
	if r.At(1, 2) != logic.One || r.At(2, 2) != logic.Zero {
		t.Fatal("At/Set mismatch")
	}
	sl := r.Slice(2)
	want := logic.Vector{logic.X, logic.One, logic.Zero}
	if !sl.Equal(want) {
		t.Fatalf("Slice(2) = %v, want %v", sl, want)
	}
}

func TestResponseCloneIndependent(t *testing.T) {
	g := MustGeometry(2, 2)
	r := NewResponse(g)
	c := r.Clone()
	c.Set(0, 0, logic.One)
	if r.At(0, 0) == logic.One {
		t.Fatal("Clone shares storage")
	}
}

func TestResponseSet(t *testing.T) {
	g := MustGeometry(2, 3)
	s := NewResponseSet(g)
	r1 := NewResponse(g)
	for c := 0; c < 2; c++ {
		for p := 0; p < 3; p++ {
			r1.Set(c, p, logic.Zero)
		}
	}
	r1.Set(0, 0, logic.X)
	r2 := NewResponse(g) // all X
	if err := s.Append(r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(r2); err != nil {
		t.Fatal(err)
	}
	if s.Patterns() != 2 {
		t.Fatalf("Patterns = %d", s.Patterns())
	}
	if s.TotalX() != 7 {
		t.Fatalf("TotalX = %d, want 7", s.TotalX())
	}
	if d := s.XDensity(); d < 0.58 || d > 0.59 {
		t.Fatalf("XDensity = %f, want 7/12", d)
	}
	bad := NewResponse(MustGeometry(3, 3))
	if err := s.Append(bad); err == nil {
		t.Fatal("Append accepted mismatched geometry")
	}
}

func TestEmptySetDensity(t *testing.T) {
	s := NewResponseSet(MustGeometry(1, 1))
	if s.XDensity() != 0 {
		t.Fatal("empty set density must be 0")
	}
}
