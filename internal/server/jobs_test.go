package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"xhybrid"
	"xhybrid/internal/chaos"
	"xhybrid/internal/jobs"
)

// newJobsServer spins a server with the async API over a temp spool.
func newJobsServer(t *testing.T, jcfg jobs.Config) (*Server, *jobs.Manager) {
	t.Helper()
	mgr, err := jobs.Open(t.TempDir(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)
	return newTestServer(t, Config{Jobs: mgr}), mgr
}

func do(t *testing.T, s *Server, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r *bytes.Reader
	if body == nil {
		r = bytes.NewReader(nil)
	} else {
		r = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, target, r)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func decodeJob(t *testing.T, w *httptest.ResponseRecorder) jobEnvelope {
	t.Helper()
	var env jobEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("decode job envelope: %v (body %s)", err, w.Body.String())
	}
	return env
}

// pollDone polls GET /v1/jobs/{id} until the job is terminal.
func pollDone(t *testing.T, s *Server, id string) jobEnvelope {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		w := do(t, s, http.MethodGet, "/v1/jobs/"+id, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("poll status %d: %s", w.Code, w.Body.String())
		}
		env := decodeJob(t, w)
		if env.State.Terminal() {
			return env
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, env.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobsAPILifecycle drives submit → poll → result through the HTTP
// layer and holds the async results to the synchronous endpoint's bytes.
func TestJobsAPILifecycle(t *testing.T) {
	s, _ := newJobsServer(t, jobs.Config{})
	body := fixtureBody(t)

	// Synchronous reference: same options through /v1/partition.
	syncJSON := post(t, s, "/v1/partition?m=10&q=2", body, nil)
	if syncJSON.Code != http.StatusOK {
		t.Fatalf("sync status %d: %s", syncJSON.Code, syncJSON.Body.String())
	}
	var sync partitionResponse
	if err := json.Unmarshal(syncJSON.Body.Bytes(), &sync); err != nil {
		t.Fatal(err)
	}
	wantPlan, _ := json.Marshal(sync.Plan)
	syncText := post(t, s, "/v1/partition?m=10&q=2&format=text", body, nil)
	if syncText.Code != http.StatusOK {
		t.Fatalf("sync text status %d", syncText.Code)
	}

	w := do(t, s, http.MethodPost, "/v1/jobs?m=10&q=2&checkpoint=1", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", w.Code, w.Body.String())
	}
	env := decodeJob(t, w)
	if env.ID == "" || env.State != jobs.StateSubmitted {
		t.Fatalf("submit envelope: %+v", env)
	}
	if got := w.Header().Get("Location"); got != "/v1/jobs/"+env.ID {
		t.Errorf("Location = %q", got)
	}
	if env.Links.Result != "/v1/jobs/"+env.ID+"/result" {
		t.Errorf("links = %+v", env.Links)
	}

	final := pollDone(t, s, env.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("job = %s (error %q), want done", final.State, final.Error)
	}

	res := do(t, s, http.MethodGet, "/v1/jobs/"+env.ID+"/result", nil)
	if res.Code != http.StatusOK {
		t.Fatalf("result status %d: %s", res.Code, res.Body.String())
	}
	var gotPlan xhybrid.Plan
	if err := json.Unmarshal(res.Body.Bytes(), &gotPlan); err != nil {
		t.Fatal(err)
	}
	gotBytes, _ := json.Marshal(&gotPlan)
	if !bytes.Equal(gotBytes, wantPlan) {
		t.Errorf("async plan differs from synchronous plan")
	}

	text := do(t, s, http.MethodGet, "/v1/jobs/"+env.ID+"/result?format=text", nil)
	if text.Code != http.StatusOK {
		t.Fatalf("text result status %d", text.Code)
	}
	if text.Body.String() != syncText.Body.String() {
		t.Errorf("async text result differs from synchronous format=text body")
	}

	list := do(t, s, http.MethodGet, "/v1/jobs", nil)
	if list.Code != http.StatusOK {
		t.Fatalf("list status %d", list.Code)
	}
	var listing struct {
		Jobs []jobEnvelope `json:"jobs"`
	}
	if err := json.Unmarshal(list.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != env.ID {
		t.Errorf("listing = %+v, want the one job", listing.Jobs)
	}
}

func TestJobsAPIErrors(t *testing.T) {
	s, _ := newJobsServer(t, jobs.Config{})
	body := fixtureBody(t)

	if w := do(t, s, http.MethodGet, "/v1/jobs/nope", nil); w.Code != http.StatusNotFound {
		t.Errorf("GET unknown = %d, want 404", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/v1/jobs/nope/result", nil); w.Code != http.StatusNotFound {
		t.Errorf("GET unknown result = %d, want 404", w.Code)
	}
	if w := do(t, s, http.MethodDelete, "/v1/jobs/nope", nil); w.Code != http.StatusNotFound {
		t.Errorf("DELETE unknown = %d, want 404", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/jobs?strategy=divine", body); w.Code != http.StatusBadRequest {
		t.Errorf("bad strategy = %d, want 400", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/jobs?checkpoint=-1", body); w.Code != http.StatusBadRequest {
		t.Errorf("bad checkpoint = %d, want 400", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/jobs", []byte("not json")); w.Code != http.StatusBadRequest {
		t.Errorf("bad body = %d, want 400", w.Code)
	}

	// Result of an in-flight (here: just-submitted but unfinished) job is
	// 409, distinct from 404. A slow input read keeps it in flight.
	slow, mgr := newJobsServer(t, jobs.Config{
		FS: chaos.Wrap(nil, &chaos.Fault{Op: chaos.OpRead, Base: "input.json", Delay: 300 * time.Millisecond}),
	})
	w := do(t, slow, http.MethodPost, "/v1/jobs?m=10&q=2", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status %d", w.Code)
	}
	env := decodeJob(t, w)
	if res := do(t, slow, http.MethodGet, "/v1/jobs/"+env.ID+"/result", nil); res.Code != http.StatusConflict {
		t.Errorf("result of in-flight job = %d, want 409", res.Code)
	}
	_ = mgr
}

func TestJobsAPICancel(t *testing.T) {
	s, _ := newJobsServer(t, jobs.Config{
		FS: chaos.Wrap(nil, &chaos.Fault{Op: chaos.OpRead, Base: "input.json", Delay: 300 * time.Millisecond}),
	})
	w := do(t, s, http.MethodPost, "/v1/jobs?m=10&q=2", fixtureBody(t))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status %d", w.Code)
	}
	env := decodeJob(t, w)

	del := do(t, s, http.MethodDelete, "/v1/jobs/"+env.ID, nil)
	if del.Code != http.StatusOK {
		t.Fatalf("cancel status %d: %s", del.Code, del.Body.String())
	}
	final := pollDone(t, s, env.ID)
	if final.State != jobs.StateFailed || final.Error != "job canceled" {
		t.Fatalf("canceled job = %s (error %q)", final.State, final.Error)
	}
	// Idempotent DELETE on the now-terminal job.
	if again := do(t, s, http.MethodDelete, "/v1/jobs/"+env.ID, nil); again.Code != http.StatusOK {
		t.Errorf("second cancel = %d, want 200", again.Code)
	}
}

func TestJobsAPIQueueFull(t *testing.T) {
	s, mgr := newJobsServer(t, jobs.Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		FS:            chaos.Wrap(nil, &chaos.Fault{Op: chaos.OpRead, Base: "input.json", Delay: 500 * time.Millisecond}),
	})
	body := fixtureBody(t)
	if w := do(t, s, http.MethodPost, "/v1/jobs?m=10&q=2", body); w.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", w.Code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if running, _ := mgr.Depth(); running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never took the run slot")
		}
		time.Sleep(time.Millisecond)
	}
	if w := do(t, s, http.MethodPost, "/v1/jobs?m=10&q=2&seed=1", body); w.Code != http.StatusAccepted {
		t.Fatalf("second submit = %d", w.Code)
	}
	third := do(t, s, http.MethodPost, "/v1/jobs?m=10&q=2&seed=2", body)
	if third.Code != http.StatusServiceUnavailable {
		t.Fatalf("third submit = %d, want 503", third.Code)
	}
	if got := third.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want 1", got)
	}
}

// TestJobsAPIDisabled: without a manager the routes are simply absent.
func TestJobsAPIDisabled(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := do(t, s, http.MethodPost, "/v1/jobs", fixtureBody(t)); w.Code != http.StatusNotFound {
		t.Errorf("POST /v1/jobs without spool = %d, want 404", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/v1/jobs", nil); w.Code != http.StatusNotFound {
		t.Errorf("GET /v1/jobs without spool = %d, want 404", w.Code)
	}
}

// TestJobsAPIRestartResumes is the serving-layer restart drill: a server
// dies (manager stopped mid-run), a second server over the same spool
// comes up, and the client's poll loop completes against the new process
// with the byte-identical plan.
func TestJobsAPIRestartResumes(t *testing.T) {
	dir := t.TempDir()

	// Reference plan, computed synchronously.
	x := xhybrid.PaperExample()
	plan, err := xhybrid.Partition(x, xhybrid.Options{MISRSize: 10, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantPlan, _ := json.Marshal(plan)

	// First daemon: accepts the job but its input read is glacial, so it
	// is still running when the daemon stops.
	mgrA, err := jobs.Open(dir, jobs.Config{
		FS: chaos.Wrap(nil, &chaos.Fault{Op: chaos.OpRead, Base: "input.json", Delay: 400 * time.Millisecond}),
	})
	if err != nil {
		t.Fatal(err)
	}
	sA := newTestServer(t, Config{Jobs: mgrA})
	w := do(t, sA, http.MethodPost, "/v1/jobs?m=10&q=2&checkpoint=1", fixtureBody(t))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status %d", w.Code)
	}
	env := decodeJob(t, w)
	mgrA.Stop()

	// Second daemon over the same spool: recovery finishes the job.
	mgrB, err := jobs.Open(dir, jobs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgrB.Stop)
	sB := newTestServer(t, Config{Jobs: mgrB})
	final := pollDone(t, sB, env.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("recovered job = %s (error %q), want done", final.State, final.Error)
	}
	if final.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", final.Resumes)
	}
	res := do(t, sB, http.MethodGet, "/v1/jobs/"+env.ID+"/result", nil)
	if res.Code != http.StatusOK {
		t.Fatalf("result status %d", res.Code)
	}
	var gotPlan xhybrid.Plan
	if err := json.Unmarshal(res.Body.Bytes(), &gotPlan); err != nil {
		t.Fatal(err)
	}
	gotBytes, _ := json.Marshal(&gotPlan)
	if !bytes.Equal(gotBytes, wantPlan) {
		t.Errorf("plan served after restart differs from reference")
	}
}
