// Package server is the long-lived serving layer over the hybrid
// partition/plan pipeline (DESIGN.md §7 extension; the pipeline itself is
// §5.4): cmd/xhybridd mounts it as an HTTP/JSON service that accepts
// X-location maps (the JSON format of ReadXLocations or the text format of
// ReadXLocationsText), runs the paper's partitioning under the request's
// context, and returns the per-partition masks, residual-X counts and the
// Table-1 control-bit accounting.
//
// Three production concerns wrap the pipeline:
//
//   - Admission control: a bounded job queue (jobQueue) caps the partition
//     jobs running concurrently and the requests allowed to wait for a
//     slot; excess load is rejected with 503 instead of piling up. Each
//     admitted job gets a per-request worker budget, clamped by the server,
//     which core.Params.Workers hands to internal/pool.
//
//   - Result caching: plans are memoized in an LRU (resultCache) keyed by a
//     canonical digest of the X-map plus every plan-shaping option. The
//     worker count is deliberately excluded from the key — the engine is
//     byte-identical for any worker count — so requests differing only in
//     budget share entries. Hit/miss/eviction counters land in the shared
//     internal/obs recorder.
//
//   - Observability: /metrics exposes the recorder (request, queue, cache
//     and pipeline counters, stage spans) in Prometheus text format next to
//     /healthz and the net/http/pprof handlers under /debug/pprof/.
//
// Cancellation is end-to-end: the request context flows through
// xhybrid.PartitionCtx into core.RunCtx, the split-scoring loops,
// correlation.GroupsWithinCtx and the pool fan-outs, so a dropped
// connection or an expired deadline stops compute mid-round. Graceful
// shutdown (Serve under a canceled context) stops accepting connections
// and drains in-flight jobs before returning.
//
// Served results are byte-identical to cmd/xhybrid's output for the same
// input and options: format=text responses are rendered by the same
// Plan.WriteText the CLI prints with.
package server
