package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"xhybrid"
	"xhybrid/internal/obs"
)

// planDigest returns the cache key for one (X-map, options) pair: a sha256
// over the canonical binary serialization of the decoded in-memory map
// (records and pattern gaps ascending, so logically equal maps digest
// equally regardless of insertion order or which wire format — text, JSON
// or binary — the request arrived in) followed by every plan-shaping
// option. The key used to hash the canonical JSON encoding instead, which
// meant every request paid a full JSON re-encode of the map just to probe
// the cache; the binary encoding is the same digest semantics at a fraction
// of the cost. Options.Workers and Options.Stats are excluded on purpose:
// the engine is byte-identical for any worker count, and the recorder never
// shapes the plan, so requests differing only there share a cache entry.
func planDigest(x *xhybrid.XLocations, opt xhybrid.Options) (string, error) {
	h := sha256.New()
	if err := x.WriteBinary(h); err != nil {
		return "", err
	}
	fmt.Fprintf(h, "m=%d;q=%d;strategy=%s;seed=%d;maxRounds=%d",
		opt.MISRSize, opt.Q, opt.Strategy, opt.Seed, opt.MaxRounds)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// resultCache is a mutex-guarded LRU of computed plans. Entries are shared
// across requests and must be treated as immutable by every reader — the
// handlers only serialize them.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	entries   *obs.Counter
}

type cacheEntry struct {
	key  string
	plan *xhybrid.Plan
}

// newResultCache returns an LRU holding up to capacity plans; capacity <= 0
// disables caching (every lookup misses, every store is dropped), which
// keeps the handler logic branch-free.
func newResultCache(capacity int, rec *obs.Recorder) *resultCache {
	return &resultCache{
		cap:       capacity,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		hits:      rec.Counter("server.cache.hits"),
		misses:    rec.Counter("server.cache.misses"),
		evictions: rec.Counter("server.cache.evictions"),
		entries:   rec.Counter("server.cache.entries"),
	}
}

// get returns the cached plan for key, promoting it to most recently used.
func (c *resultCache) get(key string) (*xhybrid.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).plan, true
}

// put stores the plan under key, evicting the least recently used entry
// when the cache is full. Re-storing an existing key only promotes it.
func (c *resultCache) put(key string, plan *xhybrid.Plan) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).plan = plan
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, plan: plan})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.entries.Set(int64(c.ll.Len()))
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
