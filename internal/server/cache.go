package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"xhybrid"
	"xhybrid/internal/obs"
)

// planDigest returns the cache key for one (X-map, options) pair: a sha256
// over the canonical binary serialization of the decoded in-memory map
// (records and pattern gaps ascending, so logically equal maps digest
// equally regardless of insertion order or which wire format — text, JSON
// or binary — the request arrived in) followed by every plan-shaping
// option. The key used to hash the canonical JSON encoding instead, which
// meant every request paid a full JSON re-encode of the map just to probe
// the cache; the binary encoding is the same digest semantics at a fraction
// of the cost. Options.Workers and Options.Stats are excluded on purpose:
// the engine is byte-identical for any worker count, and the recorder never
// shapes the plan, so requests differing only there share a cache entry.
func planDigest(x *xhybrid.XLocations, opt xhybrid.Options) (string, error) {
	h := sha256.New()
	if err := x.WriteBinary(h); err != nil {
		return "", err
	}
	fmt.Fprintf(h, "m=%d;q=%d;strategy=%s;seed=%d;maxRounds=%d",
		opt.MISRSize, opt.Q, opt.Strategy, opt.Seed, opt.MaxRounds)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// planCost approximates a plan's resident size in bytes from its shape:
// a fixed overhead for the scalar accounting plus the per-partition index
// slices (8 bytes per pattern/cell index) and the round trace. The cache
// budget is enforced against this estimate, so a handful of 100k-cell
// plans weigh in at megabytes each instead of counting the same as a
// 20-cell toy plan — the old plan-counted LRU let giant entries pin
// unbounded memory while tiny ones evicted each other.
func planCost(p *xhybrid.Plan) int64 {
	cost := int64(640) // struct scalars + slice headers + key bookkeeping
	for i := range p.Partitions {
		cost += 64 + 8*int64(len(p.Partitions[i].Patterns)+len(p.Partitions[i].MaskedCells))
	}
	cost += 96 * int64(len(p.Rounds))
	return cost
}

// resultCache is a mutex-guarded, byte-weighted LRU of computed plans.
// Entries are shared across requests and must be treated as immutable by
// every reader — the handlers only serialize them.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	entries   *obs.Counter
	sizeGauge *obs.Counter
}

type cacheEntry struct {
	key  string
	plan *xhybrid.Plan
	cost int64
}

// newResultCache returns an LRU holding up to maxBytes of plans (weighted
// by planCost); maxBytes <= 0 disables caching (every lookup misses, every
// store is dropped), which keeps the handler logic branch-free.
func newResultCache(maxBytes int64, rec *obs.Recorder) *resultCache {
	return &resultCache{
		maxBytes:  maxBytes,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		hits:      rec.Counter("server.cache.hits"),
		misses:    rec.Counter("server.cache.misses"),
		evictions: rec.Counter("server.cache.evictions"),
		entries:   rec.Counter("server.cache.entries"),
		sizeGauge: rec.Counter("server.cache.bytes"),
	}
}

// get returns the cached plan for key, promoting it to most recently used.
func (c *resultCache) get(key string) (*xhybrid.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).plan, true
}

// put stores the plan under key, evicting least recently used entries
// until the byte budget holds. A plan costing more than the whole budget
// is not cached at all (it would only evict everything else on its way to
// being the next eviction). Re-storing an existing key re-weighs it and
// promotes it.
func (c *resultCache) put(key string, plan *xhybrid.Plan) {
	if c.maxBytes <= 0 {
		return
	}
	cost := planCost(plan)
	if cost > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += cost - e.cost
		e.plan, e.cost = plan, cost
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, plan: plan, cost: cost})
		c.bytes += cost
	}
	for c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		e := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= e.cost
		c.evictions.Inc()
	}
	c.entries.Set(int64(c.ll.Len()))
	c.sizeGauge.Set(c.bytes)
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// size returns the current byte total of the in-memory tier.
func (c *resultCache) size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
