package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitDepth spins until the queue reports the wanted waiting count.
func waitDepth(t *testing.T, q *fairQueue, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, waiting := q.depth(); waiting == want {
			return
		}
		if time.Now().After(deadline) {
			_, waiting := q.depth()
			t.Fatalf("queue waiting = %d, want %d", waiting, want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestFairQueueWeightedThroughput is the fairness property test: with a
// weight-3 and a weight-1 tenant both saturating a one-slot queue, the
// grant counts over any window must track the 3:1 weights (within 15%, the
// budget the soak harness also enforces). The stride scheduler is
// deterministic, so in practice the split is exact; the tolerance only
// absorbs the window's rounding.
func TestFairQueueWeightedThroughput(t *testing.T) {
	heavy := &Tenant{ID: "heavy", Weight: 3}
	light := &Tenant{ID: "light", Weight: 1}
	holder := &Tenant{ID: "zzz-holder", Weight: 1}

	const perTenant = 60
	q := newFairQueue(1, 2*perTenant)
	// Park the only slot so every waiter below queues behind it; the
	// scheduler then decides the whole grant order at once.
	if err := q.acquire(context.Background(), holder); err != nil {
		t.Fatal(err)
	}

	grants := make(chan string, 2*perTenant)
	var wg sync.WaitGroup
	for i := 0; i < 2*perTenant; i++ {
		ten := heavy
		if i%2 == 1 {
			ten = light
		}
		wg.Add(1)
		go func(ten *Tenant) {
			defer wg.Done()
			if err := q.acquire(context.Background(), ten); err != nil {
				t.Errorf("acquire(%s): %v", ten.ID, err)
				return
			}
			// Send before release: the next grant can only happen inside
			// this release, so channel order is exactly grant order.
			grants <- ten.ID
			q.release(ten)
		}(ten)
	}
	waitDepth(t, q, 2*perTenant)
	q.release(holder)
	wg.Wait()
	close(grants)

	// Judge the first half of the grant stream — the window where both
	// tenants still have work queued (after one runs dry the other gets
	// every remaining slot, which is starvation-freedom, not weighting).
	window := perTenant
	counts := map[string]int{}
	for id := range grants {
		if window == 0 {
			break
		}
		counts[id]++
		window--
	}
	wantHeavy := float64(perTenant) * 3 / 4
	got := float64(counts["heavy"])
	if got < wantHeavy*0.85 || got > wantHeavy*1.15 {
		t.Fatalf("heavy tenant got %d of %d grants, want %.0f +/- 15%% (light got %d)",
			counts["heavy"], perTenant, wantHeavy, counts["light"])
	}
}

// TestAcquireReleaseBurstRace provokes the window the old channel-based
// jobQueue lost: with zero wait capacity and exactly `capacity` concurrent
// callers, a slot freed between the fast-path miss and the overflow check
// produced a spurious errQueueFull while capacity sat idle. Under the
// single-mutex queue every such acquire must succeed; one rejection fails
// the test.
func TestAcquireReleaseBurstRace(t *testing.T) {
	const capacity = 4
	q := newFairQueue(capacity, 0)
	var wg sync.WaitGroup
	for g := 0; g < capacity; g++ {
		ten := &Tenant{ID: fmt.Sprintf("t%d", g), Weight: 1}
		wg.Add(1)
		go func(ten *Tenant) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if err := q.acquire(context.Background(), ten); err != nil {
					t.Errorf("iteration %d: %d callers on %d slots got %v", i, capacity, capacity, err)
					return
				}
				q.release(ten)
			}
		}(ten)
	}
	wg.Wait()
	if running, waiting := q.depth(); running != 0 || waiting != 0 {
		t.Fatalf("queue leaked state: running=%d waiting=%d", running, waiting)
	}
}

// TestFairQueueTenantQuotas covers the per-tenant bounds: MaxConcurrent
// queues a tenant's surplus even when global slots are free, and MaxWaiting
// rejects with errTenantBusy (not errQueueFull) once the tenant's own lane
// is full.
func TestFairQueueTenantQuotas(t *testing.T) {
	ten := &Tenant{ID: "capped", Weight: 1, MaxConcurrent: 1, MaxWaiting: 1}
	q := newFairQueue(4, 16)
	if err := q.acquire(context.Background(), ten); err != nil {
		t.Fatal(err)
	}

	// Second request: global capacity is free, but the tenant cap parks it.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		err := q.acquire(ctx, ten)
		if err == nil {
			q.release(ten)
		}
		done <- err
	}()
	waitDepth(t, q, 1)
	if running, _ := q.depth(); running != 1 {
		t.Fatalf("running = %d, want 1 (MaxConcurrent must hold the second acquire)", running)
	}

	// Third request: the tenant's wait lane (MaxWaiting=1) is full.
	if err := q.acquire(context.Background(), ten); err != errTenantBusy {
		t.Fatalf("over-quota acquire = %v, want errTenantBusy", err)
	}

	// Release the slot: the parked waiter gets it and finishes cleanly.
	q.release(ten)
	if err := <-done; err != nil {
		t.Fatalf("parked waiter: %v", err)
	}
	cancel()
	if running, waiting := q.depth(); running != 0 || waiting != 0 {
		t.Fatalf("queue leaked state: running=%d waiting=%d", running, waiting)
	}
}

// TestFairQueueIdleTenantNoCredit checks the activation clamp: a tenant
// that sat idle while another consumed slots must not return with a
// banked low pass and monopolize the queue — after its first grant the
// stream goes back to the weighted interleave.
func TestFairQueueIdleTenantNoCredit(t *testing.T) {
	a := &Tenant{ID: "a", Weight: 1}
	b := &Tenant{ID: "b", Weight: 1}
	q := newFairQueue(1, 64)

	// a alone takes many grants, pushing its pass far ahead.
	for i := 0; i < 32; i++ {
		if err := q.acquire(context.Background(), a); err != nil {
			t.Fatal(err)
		}
		q.release(a)
	}

	// Now both contend. Without the clamp b would win the next 32 grants
	// in a row; with it the split over the window is even.
	holder := &Tenant{ID: "zzz", Weight: 1}
	if err := q.acquire(context.Background(), holder); err != nil {
		t.Fatal(err)
	}
	grants := make(chan string, 32)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		ten := a
		if i%2 == 1 {
			ten = b
		}
		wg.Add(1)
		go func(ten *Tenant) {
			defer wg.Done()
			if err := q.acquire(context.Background(), ten); err != nil {
				t.Errorf("acquire(%s): %v", ten.ID, err)
				return
			}
			grants <- ten.ID
			q.release(ten)
		}(ten)
	}
	waitDepth(t, q, 32)
	q.release(holder)
	wg.Wait()
	close(grants)

	bRun := 0 // longest leading run of b grants
	for id := range grants {
		if id != "b" {
			break
		}
		bRun++
	}
	if bRun > 2 {
		t.Fatalf("idle tenant banked credit: b took the first %d grants in a row", bRun)
	}
}
