package server

// Multi-tenant identity: a static key file maps API keys onto tenants,
// each carrying a scheduling weight and admission quotas. The registry is
// immutable after load — rotating keys means restarting the daemon with a
// new file, which keeps the trust story as simple as the spool's (a flat
// file under operator control, no mutation endpoints to secure).
//
// When no tenants are configured every request runs as the anonymous
// tenant with weight 1 and no per-tenant quotas, which preserves the
// pre-tenant behavior of the serving layer bit for bit.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// Tenant is one admitted principal of the serving layer.
type Tenant struct {
	// ID names the tenant in metrics, logs and reports. Required, unique.
	ID string `json:"id"`
	// Key is the bearer token identifying the tenant's requests. Required,
	// unique across the file.
	Key string `json:"key"`
	// Weight is the tenant's share of job slots under contention (default
	// 1). A weight-3 tenant is granted three slots for every one a
	// weight-1 tenant gets while both have work queued.
	Weight int `json:"weight,omitempty"`
	// MaxConcurrent caps the job slots the tenant may hold at once
	// (0 = no per-tenant cap beyond the server's global concurrency).
	MaxConcurrent int `json:"maxConcurrent,omitempty"`
	// MaxWaiting caps the tenant's requests waiting for a slot (0 = no
	// per-tenant cap beyond the server's global wait queue). Beyond it the
	// tenant gets 429 while other tenants keep being admitted.
	MaxWaiting int `json:"maxWaiting,omitempty"`
}

// anonTenant is the implicit principal of an open (tenant-less) server.
var anonTenant = &Tenant{ID: "anonymous", Weight: 1}

// tenantFile is the on-disk shape of the -tenants key file.
type tenantFile struct {
	Tenants []Tenant `json:"tenants"`
}

// LoadTenants reads and validates a tenant key file: a JSON object with a
// "tenants" array of {id, key, weight, maxConcurrent, maxWaiting} records.
// IDs and keys must be non-empty and unique; weights default to 1.
func LoadTenants(path string) ([]Tenant, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: tenant file: %w", err)
	}
	return ParseTenants(data)
}

// ParseTenants validates a tenant key file already in memory (LoadTenants
// without the file read; loadgen shares it to address its lanes).
func ParseTenants(data []byte) ([]Tenant, error) {
	var tf tenantFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("server: tenant file: %w", err)
	}
	if len(tf.Tenants) == 0 {
		return nil, errors.New("server: tenant file has no tenants")
	}
	ids := make(map[string]bool, len(tf.Tenants))
	keys := make(map[string]bool, len(tf.Tenants))
	for i := range tf.Tenants {
		t := &tf.Tenants[i]
		if t.ID == "" {
			return nil, fmt.Errorf("server: tenant %d: empty id", i)
		}
		if t.Key == "" {
			return nil, fmt.Errorf("server: tenant %q: empty key", t.ID)
		}
		if ids[t.ID] {
			return nil, fmt.Errorf("server: duplicate tenant id %q", t.ID)
		}
		if keys[t.Key] {
			return nil, fmt.Errorf("server: duplicate tenant key (tenant %q)", t.ID)
		}
		ids[t.ID], keys[t.Key] = true, true
		if t.Weight == 0 {
			t.Weight = 1
		}
		if t.Weight < 0 || t.MaxConcurrent < 0 || t.MaxWaiting < 0 {
			return nil, fmt.Errorf("server: tenant %q: negative weight or quota", t.ID)
		}
	}
	return tf.Tenants, nil
}

// tenantRegistry resolves request credentials to tenants. A nil registry
// is the open server: every request resolves to anonTenant.
type tenantRegistry struct {
	byKey map[string]*Tenant
}

func newTenantRegistry(tenants []Tenant) *tenantRegistry {
	if len(tenants) == 0 {
		return nil
	}
	reg := &tenantRegistry{byKey: make(map[string]*Tenant, len(tenants))}
	for i := range tenants {
		t := tenants[i]
		reg.byKey[t.Key] = &t
	}
	return reg
}

// errNoTenant reports a request without acceptable credentials on a
// tenant-enforcing server; the handler maps it to 401.
var errNoTenant = errors.New("server: missing or unknown API key")

// resolve maps the request's credentials to its tenant. Keys arrive as
// `Authorization: Bearer <key>` or `X-API-Key: <key>`; on an open server
// (nil registry) every request is the anonymous tenant.
func (reg *tenantRegistry) resolve(r *http.Request) (*Tenant, error) {
	if reg == nil {
		return anonTenant, nil
	}
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if auth := r.Header.Get("Authorization"); auth != "" {
			scheme, rest, ok := strings.Cut(auth, " ")
			if ok && strings.EqualFold(scheme, "Bearer") {
				key = strings.TrimSpace(rest)
			}
		}
	}
	if key == "" {
		return nil, errNoTenant
	}
	t, ok := reg.byKey[key]
	if !ok {
		return nil, errNoTenant
	}
	return t, nil
}
