package server

// The async half of the API: /v1/jobs. Where /v1/partition computes under
// the request's lifetime, a job outlives its connection — the X-map and
// options are spooled to disk, the compute checkpoints as it goes, and a
// daemon restart (graceful or kill -9) resumes the job from its last
// checkpoint to the byte-identical plan. The handlers here are a thin
// HTTP skin over internal/jobs.
//
//	POST   /v1/jobs             submit (body + query options)  -> 202 + record
//	POST   /v1/flow             submit an end-to-end flow job (JSON FlowSpec body)
//	GET    /v1/jobs             list every spooled job
//	GET    /v1/jobs/{id}        status + live progress
//	GET    /v1/jobs/{id}/result finished plan or flow report (format=json|text)
//	GET    /v1/jobs/{id}/events live progress stream (SSE; events.go)
//	DELETE /v1/jobs/{id}        cancel (idempotent)
//
// A flow job shares the job lifecycle end to end — same spool, same
// checkpoint/resume drill, same status/result/events/cancel endpoints —
// only submission and the result payload differ by kind.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"xhybrid"
	"xhybrid/internal/jobs"
)

// jobEnvelope is the JSON shape of one job in responses: the durable
// record plus the canonical poll/result URLs.
type jobEnvelope struct {
	jobs.Status
	Links jobLinks `json:"links"`
}

type jobLinks struct {
	Self   string `json:"self"`
	Result string `json:"result"`
	Events string `json:"events"`
}

func envelope(st jobs.Status) jobEnvelope {
	return jobEnvelope{Status: st, Links: jobLinks{
		Self:   "/v1/jobs/" + st.ID,
		Result: "/v1/jobs/" + st.ID + "/result",
		Events: "/v1/jobs/" + st.ID + "/events",
	}}
}

func (s *Server) writeJob(w http.ResponseWriter, status int, st jobs.Status) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(envelope(st))
}

// jobErr maps jobs-package sentinels onto HTTP statuses.
func (s *Server) jobErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		s.errorJSON(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrQueueFull):
		s.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		s.errorJSON(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, jobs.ErrNotDone):
		// The job exists but there is no plan to return (yet, or ever for
		// failed ones): 409 keeps it distinct from 404.
		s.errorJSON(w, http.StatusConflict, err)
	default:
		s.errorJSON(w, http.StatusInternalServerError, err)
	}
}

// handleJobSubmit spools the posted X-map and options and answers 202
// with the job record before any computing happens.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	ten, ok := s.authorize(w, r)
	if !ok {
		return
	}
	s.tenantCounter(ten, "requests").Inc()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	q := r.URL.Query()
	ro, err := parseOptions(q)
	if err != nil {
		s.badReq.Inc()
		s.errorJSON(w, http.StatusBadRequest, err)
		return
	}
	every := 0
	if v := q.Get("checkpoint"); v != "" {
		if every, err = strconv.Atoi(v); err != nil || every < 0 {
			s.badReq.Inc()
			s.errorJSON(w, http.StatusBadRequest, errors.New("server: bad checkpoint="+v))
			return
		}
	}
	x, err := readXMap(r, s.cfg.MaxBodyBytes)
	if err != nil {
		s.badReq.Inc()
		s.errorJSON(w, bodyErrStatus(err), err)
		return
	}
	opts := jobs.Options{
		MISRSize:        ro.opt.MISRSize,
		Q:               ro.opt.Q,
		Strategy:        ro.opt.Strategy,
		Seed:            ro.opt.Seed,
		MaxRounds:       ro.opt.MaxRounds,
		Workers:         s.clampWorkers(ro.workers),
		CheckpointEvery: every,
	}
	tenantID := ""
	if ten != anonTenant {
		tenantID = ten.ID
	}
	meta, err := s.cfg.Jobs.SubmitTenant(r.Context(), x, opts, tenantID)
	if err != nil {
		if errors.Is(err, jobs.ErrQueueFull) {
			s.jobErr(w, err)
			return
		}
		s.badReq.Inc()
		s.errorJSON(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+meta.ID)
	s.writeJob(w, http.StatusAccepted, jobs.Status{Meta: meta})
}

// handleFlowSubmit spools a posted FlowSpec as an async flow job and
// answers 202 with the job record. The body is the JSON spec; the workers
// query parameter (clamped to the server ceiling) overrides the spec's
// worker budget.
func (s *Server) handleFlowSubmit(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	ten, ok := s.authorize(w, r)
	if !ok {
		return
	}
	s.tenantCounter(ten, "requests").Inc()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	workers := 0
	if v := r.URL.Query().Get("workers"); v != "" {
		var err error
		if workers, err = strconv.Atoi(v); err != nil || workers < 0 {
			s.badReq.Inc()
			s.errorJSON(w, http.StatusBadRequest, errors.New("server: bad workers="+v))
			return
		}
	}
	var spec xhybrid.FlowSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.badReq.Inc()
		s.errorJSON(w, bodyErrStatus(err), fmt.Errorf("server: flow spec: %w", err))
		return
	}
	if workers > 0 {
		spec.Workers = workers
	}
	spec.Workers = s.clampWorkers(spec.Workers)
	tenantID := ""
	if ten != anonTenant {
		tenantID = ten.ID
	}
	meta, err := s.cfg.Jobs.SubmitFlow(r.Context(), spec, tenantID)
	if err != nil {
		if errors.Is(err, jobs.ErrQueueFull) {
			s.jobErr(w, err)
			return
		}
		s.badReq.Inc()
		s.errorJSON(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+meta.ID)
	s.writeJob(w, http.StatusAccepted, jobs.Status{Meta: meta})
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	if _, ok := s.authorize(w, r); !ok {
		return
	}
	list, err := s.cfg.Jobs.List(r.Context())
	if err != nil {
		s.jobErr(w, err)
		return
	}
	out := make([]jobEnvelope, 0, len(list))
	for _, st := range list {
		out = append(out, envelope(st))
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"jobs": out})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	if _, ok := s.authorize(w, r); !ok {
		return
	}
	st, err := s.cfg.Jobs.Get(r.Context(), r.PathValue("id"))
	if err != nil {
		s.jobErr(w, err)
		return
	}
	s.writeJob(w, http.StatusOK, st)
}

// handleJobResult returns the finished result. Partition jobs answer with
// the plan — format=text renders through the same Plan.WriteText as the
// CLI and the synchronous endpoint, against the job's spooled input, so
// the output is byte-identical across all three paths. Flow jobs answer
// with the flow report (JSON only).
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	if _, ok := s.authorize(w, r); !ok {
		return
	}
	id := r.PathValue("id")
	ro, err := parseOptions(r.URL.Query())
	if err != nil {
		s.badReq.Inc()
		s.errorJSON(w, http.StatusBadRequest, err)
		return
	}
	meta, err := s.cfg.Jobs.Get(r.Context(), id)
	if err != nil {
		s.jobErr(w, err)
		return
	}
	if meta.Kind == jobs.KindFlow {
		if ro.format == "text" {
			s.badReq.Inc()
			s.errorJSON(w, http.StatusBadRequest, errors.New("server: flow results are JSON only"))
			return
		}
		rep, err := s.cfg.Jobs.FlowResult(r.Context(), id)
		if err != nil {
			s.jobErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
		return
	}
	plan, err := s.cfg.Jobs.Result(r.Context(), id)
	if err != nil {
		s.jobErr(w, err)
		return
	}
	if ro.format == "text" {
		x, err := s.cfg.Jobs.Input(r.Context(), id)
		if err != nil {
			s.jobErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = plan.WriteText(w, x, ro.verbose)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(plan)
}

// handleJobCancel stops the job; canceling an already-terminal job is a
// no-op success (DELETE is idempotent).
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	if _, ok := s.authorize(w, r); !ok {
		return
	}
	id := r.PathValue("id")
	if err := s.cfg.Jobs.Cancel(r.Context(), id); err != nil {
		s.jobErr(w, err)
		return
	}
	st, err := s.cfg.Jobs.Get(r.Context(), id)
	if err != nil {
		s.jobErr(w, err)
		return
	}
	s.writeJob(w, http.StatusOK, st)
}
