package server

import (
	"context"
	"errors"
	"sync"
)

// Admission errors; the handlers map them onto HTTP statuses.
var (
	// errQueueFull reports a request that found every job slot busy and
	// the global wait queue at capacity (503 + Retry-After).
	errQueueFull = errors.New("server: job queue full")
	// errTenantBusy reports a request beyond its own tenant's wait quota
	// while the server still has room for other tenants (429).
	errTenantBusy = errors.New("server: tenant wait quota exceeded")
)

// strideOne is the numerator of the stride-scheduling arithmetic: a
// tenant's pass advances by strideOne/weight per granted slot, so over any
// saturated window the grant counts are proportional to the weights.
const strideOne = 1 << 20

// fairQueue is the admission controller of the serving layer: at most
// `capacity` partition jobs run at once, at most `maxWait` requests wait
// for a slot, and — the multi-tenant part — waiting requests are granted
// slots by weighted fair (stride) scheduling instead of arrival order.
// Each tenant carries a virtual-time pass; granting a slot advances the
// grantee's pass by strideOne/weight, and the next free slot goes to the
// eligible tenant with the smallest pass. A weight-3 tenant therefore gets
// three grants for each grant of a weight-1 tenant while both stay
// backlogged (TestFairQueueWeightedThroughput), and an idle tenant's pass
// is clamped forward on arrival so sitting out never banks credit.
//
// Everything is decided under one mutex, which closes the burst race the
// old channel-based jobQueue had: between its lock-free fast-path miss and
// its waiting-counter increment a slot could free, rejecting a request
// while capacity sat idle. Here slot state and wait counts change
// atomically, so a request is rejected only when the queue really is full
// at that instant (locked by TestAcquireReleaseBurstRace).
type fairQueue struct {
	mu       sync.Mutex
	capacity int
	maxWait  int
	running  int
	waiting  int
	vtime    uint64 // pass of the most recent grant (activation clamp)
	tenants  map[string]*tenantSched
}

// tenantSched is one tenant's scheduling state inside the queue.
type tenantSched struct {
	tenant  *Tenant
	running int
	queue   []*fqWaiter // FIFO within the tenant
	pass    uint64
	stride  uint64
}

// fqWaiter parks one request waiting for a slot. granted is written under
// fairQueue.mu before ready closes, so the cancel path can tell a lost
// race from a pending wait.
type fqWaiter struct {
	ready   chan struct{}
	granted bool
}

func newFairQueue(capacity, maxWait int) *fairQueue {
	if capacity < 1 {
		capacity = 1
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &fairQueue{
		capacity: capacity,
		maxWait:  maxWait,
		tenants:  make(map[string]*tenantSched),
	}
}

// sched returns (creating on first use) the tenant's scheduling state.
func (q *fairQueue) sched(t *Tenant) *tenantSched {
	ts, ok := q.tenants[t.ID]
	if !ok {
		w := t.Weight
		if w < 1 {
			w = 1
		}
		ts = &tenantSched{tenant: t, stride: strideOne / uint64(w)}
		q.tenants[t.ID] = ts
	}
	return ts
}

// grantLocked hands ts one slot and advances its virtual time.
func (q *fairQueue) grantLocked(ts *tenantSched) {
	// Clamp an idle tenant's pass to the current virtual time: fairness is
	// over the contended present, not banked from quiet hours.
	if ts.pass < q.vtime {
		ts.pass = q.vtime
	}
	q.vtime = ts.pass
	ts.pass += ts.stride
	ts.running++
	q.running++
}

// eligibleLocked reports whether ts may be granted a slot right now.
func (q *fairQueue) eligibleLocked(ts *tenantSched) bool {
	if q.running >= q.capacity {
		return false
	}
	if lim := ts.tenant.MaxConcurrent; lim > 0 && ts.running >= lim {
		return false
	}
	return true
}

// dispatchLocked grants free slots to waiting tenants in weighted-fair
// order until capacity is exhausted or nobody eligible remains.
func (q *fairQueue) dispatchLocked() {
	for q.running < q.capacity {
		var best *tenantSched
		for _, ts := range q.tenants {
			if len(ts.queue) == 0 || !q.eligibleLocked(ts) {
				continue
			}
			// Smallest pass wins; ties break by id so scheduling is
			// deterministic under test.
			if best == nil || ts.pass < best.pass ||
				(ts.pass == best.pass && ts.tenant.ID < best.tenant.ID) {
				best = ts
			}
		}
		if best == nil {
			return
		}
		w := best.queue[0]
		best.queue = best.queue[1:]
		q.waiting--
		q.grantLocked(best)
		w.granted = true
		close(w.ready)
	}
}

// acquire blocks until the tenant is granted a job slot, an admission
// bound rejects the request (errQueueFull for the global wait cap,
// errTenantBusy for the tenant's own), or ctx is done (its error). A nil
// return must be paired with release(tenant).
func (q *fairQueue) acquire(ctx context.Context, tenant *Tenant) error {
	q.mu.Lock()
	ts := q.sched(tenant)
	// Immediate grant: a free slot, no backlog of our own to queue behind,
	// and the tenant under its concurrency cap. Checked under the same
	// lock dispatch uses, so a freed slot is never missed.
	if len(ts.queue) == 0 && q.eligibleLocked(ts) {
		q.grantLocked(ts)
		q.mu.Unlock()
		return nil
	}
	if q.waiting >= q.maxWait {
		q.mu.Unlock()
		return errQueueFull
	}
	if lim := tenant.MaxWaiting; lim > 0 && len(ts.queue) >= lim {
		q.mu.Unlock()
		return errTenantBusy
	}
	w := &fqWaiter{ready: make(chan struct{})}
	ts.queue = append(ts.queue, w)
	q.waiting++
	// Re-dispatch before parking: the enqueue may have made this tenant
	// schedulable for a slot that was free but unreachable a moment ago
	// (belt and braces — the grant/release paths already dispatch).
	q.dispatchLocked()
	q.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: the slot is ours, so hand
			// it back like a normal release.
			q.releaseLocked(ts)
			q.mu.Unlock()
			return ctx.Err()
		}
		// Still queued: remove eagerly so a dead waiter can never clog the
		// tenant's FIFO or hold a wait-queue place.
		for i, cand := range ts.queue {
			if cand == w {
				ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
				q.waiting--
				break
			}
		}
		q.mu.Unlock()
		return ctx.Err()
	}
}

// release returns the tenant's slot and wakes the next waiter in
// weighted-fair order.
func (q *fairQueue) release(tenant *Tenant) {
	q.mu.Lock()
	q.releaseLocked(q.sched(tenant))
	q.mu.Unlock()
}

func (q *fairQueue) releaseLocked(ts *tenantSched) {
	ts.running--
	q.running--
	q.dispatchLocked()
}

// depth reports the running and waiting request counts (scrape-time
// gauges).
func (q *fairQueue) depth() (running, waiting int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return int64(q.running), int64(q.waiting)
}

// tenantDepth reports one tenant's running and waiting counts.
func (q *fairQueue) tenantDepth(id string) (running, waiting int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	ts, ok := q.tenants[id]
	if !ok {
		return 0, 0
	}
	return int64(ts.running), int64(len(ts.queue))
}
