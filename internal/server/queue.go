package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// errQueueFull reports a request that found every job slot busy and the
// wait queue at capacity; the handler maps it to 503 + Retry-After.
var errQueueFull = errors.New("server: job queue full")

// jobQueue is the admission controller of the serving layer: at most
// `concurrent` partition jobs run at once and at most `maxWait` requests
// wait for a slot. There is no unbounded buffering anywhere — a request
// beyond both budgets is rejected immediately, which keeps tail latency
// bounded under overload instead of letting the queue absorb it.
type jobQueue struct {
	slots   chan struct{}
	waiting atomic.Int64
	maxWait int64
}

func newJobQueue(concurrent, maxWait int) *jobQueue {
	if concurrent < 1 {
		concurrent = 1
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &jobQueue{slots: make(chan struct{}, concurrent), maxWait: int64(maxWait)}
}

// acquire blocks until a job slot is free, the wait queue overflows
// (errQueueFull) or ctx is done (its error). A nil return must be paired
// with release.
func (q *jobQueue) acquire(ctx context.Context) error {
	select {
	case q.slots <- struct{}{}:
		return nil
	default:
	}
	if q.waiting.Add(1) > q.maxWait {
		q.waiting.Add(-1)
		return errQueueFull
	}
	defer q.waiting.Add(-1)
	select {
	case q.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (q *jobQueue) release() { <-q.slots }

// depth reports the running and waiting job counts (scrape-time gauges).
func (q *jobQueue) depth() (running, waiting int64) {
	return int64(len(q.slots)), q.waiting.Load()
}
