package server

// The persistent tier of the result cache: a disk-backed, content-addressed
// plan store layered behind the in-memory LRU. Every computed plan is
// spooled as <digest>.plan (JSON, written via temp + atomic rename — the
// same durability idiom as the job spool) and indexed by an LRU manifest
// (index.json) that records order and sizes, so a restarted daemon serves
// previously computed plans with zero recompute: the memory tier misses,
// the disk tier hits, the entry is promoted back into memory.
//
// All disk traffic goes through the jobs.FS seam, so the chaos harness can
// inject faults here exactly as it does for the spool. Failures are never
// fatal to a request: an unreadable or undecodable plan file is treated as
// a miss (and dropped from the index), a failed write just means the plan
// is not persisted this time.

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"

	"xhybrid"
	"xhybrid/internal/jobs"
	"xhybrid/internal/obs"
)

const (
	planSuffix    = ".plan"
	diskIndexFile = "index.json"
	diskTmpSuffix = ".tmp"
)

// diskIndex is the persisted LRU manifest, most recently used first.
type diskIndex struct {
	Entries []diskIndexEntry `json:"entries"`
}

type diskIndexEntry struct {
	Digest string `json:"digest"`
	Size   int64  `json:"size"`
}

// diskStore is the persistent, byte-budgeted plan tier.
type diskStore struct {
	dir      string
	fs       jobs.FS
	maxBytes int64

	mu    sync.Mutex
	ll    *list.List // front = most recently used; values are *diskIndexEntry
	items map[string]*list.Element
	bytes int64

	hits      *obs.Counter
	misses    *obs.Counter
	writes    *obs.Counter
	evictions *obs.Counter
	errorsC   *obs.Counter
	entries   *obs.Counter
	sizeGauge *obs.Counter
}

// openDiskStore loads (creating if needed) the plan store at dir and
// reconciles the index with the files actually present: entries whose file
// vanished are dropped, orphaned plan files (a crash between the data
// write and the index write) are validated and adopted as least recently
// used, and the byte budget is enforced. fsys nil means the real
// filesystem.
func openDiskStore(dir string, maxBytes int64, fsys jobs.FS, rec *obs.Recorder) (*diskStore, error) {
	if fsys == nil {
		fsys = jobs.OSFS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: cache dir: %w", err)
	}
	d := &diskStore{
		dir:      dir,
		fs:       fsys,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),

		hits:      rec.Counter("server.cache.disk.hits"),
		misses:    rec.Counter("server.cache.disk.misses"),
		writes:    rec.Counter("server.cache.disk.writes"),
		evictions: rec.Counter("server.cache.disk.evictions"),
		errorsC:   rec.Counter("server.cache.disk.errors"),
		entries:   rec.Counter("server.cache.disk.entries"),
		sizeGauge: rec.Counter("server.cache.disk.bytes"),
	}
	if err := d.load(); err != nil {
		return nil, err
	}
	return d, nil
}

// load rebuilds the in-memory LRU from index.json plus a directory scan.
func (d *diskStore) load() error {
	onDisk := make(map[string]bool)
	dirents, err := d.fs.ReadDir(d.dir)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	for _, e := range dirents {
		if name := e.Name(); strings.HasSuffix(name, planSuffix) && !e.IsDir() {
			onDisk[strings.TrimSuffix(name, planSuffix)] = true
		}
	}

	var idx diskIndex
	if data, err := d.fs.ReadFile(filepath.Join(d.dir, diskIndexFile)); err == nil {
		// A torn or corrupted index is not fatal: fall through to the scan
		// and rebuild it from the plan files themselves.
		_ = json.Unmarshal(data, &idx)
	}
	for _, e := range idx.Entries {
		if !onDisk[e.Digest] || d.items[e.Digest] != nil {
			continue // stale or duplicate manifest row
		}
		d.items[e.Digest] = d.ll.PushBack(&diskIndexEntry{Digest: e.Digest, Size: e.Size})
		d.bytes += e.Size
		delete(onDisk, e.Digest)
	}
	// Orphans: plan files the manifest never recorded. Validate and adopt
	// them as coldest — a crash loses LRU recency, never a computed plan.
	for digest := range onDisk {
		data, err := d.fs.ReadFile(d.planPath(digest))
		if err != nil {
			continue
		}
		if !json.Valid(data) {
			_ = d.fs.Remove(d.planPath(digest))
			continue
		}
		d.items[digest] = d.ll.PushBack(&diskIndexEntry{Digest: digest, Size: int64(len(data))})
		d.bytes += int64(len(data))
	}
	d.evictLocked()
	d.persistLocked()
	d.entries.Set(int64(d.ll.Len()))
	d.sizeGauge.Set(d.bytes)
	return nil
}

func (d *diskStore) planPath(digest string) string {
	return filepath.Join(d.dir, digest+planSuffix)
}

// get loads the plan for digest from disk, promoting it to most recently
// used. A missing, unreadable or undecodable file is a miss (and the entry
// is dropped so the next put can rewrite it).
func (d *diskStore) get(digest string) (*xhybrid.Plan, bool) {
	d.mu.Lock()
	el, ok := d.items[digest]
	if !ok {
		d.mu.Unlock()
		d.misses.Inc()
		return nil, false
	}
	d.ll.MoveToFront(el)
	d.mu.Unlock()

	data, err := d.fs.ReadFile(d.planPath(digest))
	if err != nil {
		d.drop(digest)
		d.misses.Inc()
		return nil, false
	}
	plan := new(xhybrid.Plan)
	if err := json.Unmarshal(data, plan); err != nil {
		d.drop(digest)
		d.errorsC.Inc()
		d.misses.Inc()
		return nil, false
	}
	d.hits.Inc()
	return plan, true
}

// put persists the plan under its digest and updates the manifest,
// evicting cold entries past the byte budget. Best-effort: on any write
// error the store just skips persisting this plan.
func (d *diskStore) put(digest string, plan *xhybrid.Plan) {
	data, err := json.Marshal(plan)
	if err != nil || int64(len(data)) > d.maxBytes {
		return
	}
	if err := d.writeAtomic(d.planPath(digest), data); err != nil {
		d.errorsC.Inc()
		return
	}
	d.mu.Lock()
	if el, ok := d.items[digest]; ok {
		e := el.Value.(*diskIndexEntry)
		d.bytes += int64(len(data)) - e.Size
		e.Size = int64(len(data))
		d.ll.MoveToFront(el)
	} else {
		d.items[digest] = d.ll.PushFront(&diskIndexEntry{Digest: digest, Size: int64(len(data))})
		d.bytes += int64(len(data))
	}
	d.evictLocked()
	d.persistLocked()
	d.entries.Set(int64(d.ll.Len()))
	d.sizeGauge.Set(d.bytes)
	d.mu.Unlock()
	d.writes.Inc()
}

// drop removes a digest whose backing file went bad.
func (d *diskStore) drop(digest string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.items[digest]; ok {
		d.bytes -= el.Value.(*diskIndexEntry).Size
		d.ll.Remove(el)
		delete(d.items, digest)
		_ = d.fs.Remove(d.planPath(digest))
		d.persistLocked()
		d.entries.Set(int64(d.ll.Len()))
		d.sizeGauge.Set(d.bytes)
	}
}

// evictLocked removes least recently used entries (and their files) until
// the byte budget holds.
func (d *diskStore) evictLocked() {
	for d.bytes > d.maxBytes && d.ll.Len() > 0 {
		oldest := d.ll.Back()
		e := oldest.Value.(*diskIndexEntry)
		d.ll.Remove(oldest)
		delete(d.items, e.Digest)
		d.bytes -= e.Size
		_ = d.fs.Remove(d.planPath(e.Digest))
		d.evictions.Inc()
	}
}

// persistLocked writes the LRU manifest atomically. Losing it to a crash
// costs recency ordering and nothing else — load() re-adopts every plan
// file it finds.
func (d *diskStore) persistLocked() {
	idx := diskIndex{Entries: make([]diskIndexEntry, 0, d.ll.Len())}
	for el := d.ll.Front(); el != nil; el = el.Next() {
		idx.Entries = append(idx.Entries, *el.Value.(*diskIndexEntry))
	}
	data, err := json.Marshal(idx)
	if err != nil {
		return
	}
	if err := d.writeAtomic(filepath.Join(d.dir, diskIndexFile), data); err != nil {
		d.errorsC.Inc()
	}
}

func (d *diskStore) writeAtomic(path string, data []byte) error {
	tmp := path + diskTmpSuffix
	if err := d.fs.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return d.fs.Rename(tmp, path)
}

// stats reports entry count and byte total (scrape-time gauges).
func (d *diskStore) stats() (entriesN int, bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ll.Len(), d.bytes
}
