package server

// Server-Sent Events streaming of job progress: GET /v1/jobs/{id}/events
// holds the connection open and emits one event per observed change until
// the job reaches a terminal state or the client hangs up. Transport is
// plain SSE (text/event-stream) so `curl -N` and EventSource both work
// against it with no client library.
//
// Event vocabulary:
//
//	event: status    the job's state changed (submitted -> running -> ...)
//	event: progress  round/checkpoint counters moved while running
//	event: done      terminal snapshot; the stream closes after this
//
// Every data payload is one compact-JSON job envelope — the same shape as
// GET /v1/jobs/{id} — so a consumer can treat any event as a full refresh.
// The stream is driven by polling the job manager at
// Config.ProgressInterval; the spool is the source of truth, so a stream
// works (and terminates correctly) even for jobs another process finished.

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"xhybrid/internal/jobs"
)

// progressKey is the change-detection fingerprint of a job snapshot: a new
// event is emitted only when one of these moved. stage makes every flow
// pipeline stage transition (generate → atpg → simulate → …) its own
// progress event even when no partitioning round has run yet.
type progressKey struct {
	state       jobs.State
	stage       string
	rounds      int64
	liveRounds  int64
	checkpoints int64
}

func keyOf(st jobs.Status) progressKey {
	return progressKey{
		state:       st.State,
		stage:       st.Progress.Stage,
		rounds:      st.Progress.Rounds,
		liveRounds:  st.Progress.LiveRounds,
		checkpoints: st.Progress.Checkpoints,
	}
}

// writeEvent emits one SSE frame. The payload marshals compact — SSE
// frames are newline-delimited, so the pretty encoder the JSON endpoints
// use would tear the data field across lines.
func writeEvent(w http.ResponseWriter, flusher http.Flusher, name string, st jobs.Status) error {
	data, err := json.Marshal(envelope(st))
	if err != nil {
		return err
	}
	if _, err := w.Write([]byte("event: " + name + "\ndata: ")); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	if _, err := w.Write([]byte("\n\n")); err != nil {
		return err
	}
	flusher.Flush()
	return nil
}

// handleJobEvents streams a job's progress as SSE until it finishes.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	if _, ok := s.authorize(w, r); !ok {
		return
	}
	id := r.PathValue("id")
	st, err := s.cfg.Jobs.Get(r.Context(), id)
	if err != nil {
		s.jobErr(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.errorJSON(w, http.StatusNotImplemented, errSSEUnsupported)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)

	// Opening snapshot: a status event (or the terminal event straight
	// away — subscribing to a finished job yields exactly one `done`).
	if st.State.Terminal() {
		_ = writeEvent(w, flusher, "done", st)
		return
	}
	if err := writeEvent(w, flusher, "status", st); err != nil {
		return
	}
	last := keyOf(st)

	ticker := time.NewTicker(s.cfg.ProgressInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
		st, err := s.cfg.Jobs.Get(r.Context(), id)
		if err != nil {
			// The job record vanished mid-stream (spool wiped?); nothing
			// more to say.
			return
		}
		if st.State.Terminal() {
			_ = writeEvent(w, flusher, "done", st)
			return
		}
		key := keyOf(st)
		if key == last {
			continue
		}
		name := "progress"
		if key.state != last.state {
			name = "status"
		}
		if err := writeEvent(w, flusher, name, st); err != nil {
			return
		}
		last = key
	}
}

var errSSEUnsupported = errors.New("server: response writer cannot stream")
