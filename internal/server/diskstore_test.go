package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"xhybrid"
	"xhybrid/internal/obs"
)

// TestPersistentCacheSurvivesRestart is the crash/restart drill of the
// result store: compute once, tear the server down, bring a fresh one up
// over the same cache directory, and the same request must be served from
// disk — X-Cache: hit, the disk-hit counter moving, and zero recompute
// (locked by the pipeline's round counter staying at zero).
func TestPersistentCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	body := fixtureBody(t)

	s1 := newTestServer(t, Config{CacheDir: dir})
	first := post(t, s1, "/v1/partition?m=10&q=2", body, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("first status %d: %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	if got := s1.rec.Snapshot().CounterValue("server.cache.disk.writes"); got != 1 {
		t.Fatalf("disk writes = %d, want 1", got)
	}

	// "Restart": a brand-new server (fresh recorder, cold memory tier)
	// over the same directory. Nothing in-process survives; only the disk
	// store can answer from cache.
	s2 := newTestServer(t, Config{CacheDir: dir})
	second := post(t, s2, "/v1/partition?m=10&q=2", body, nil)
	if second.Code != http.StatusOK {
		t.Fatalf("post-restart status %d: %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("post-restart X-Cache = %q, want hit from disk", got)
	}
	snap := s2.rec.Snapshot()
	if got := snap.CounterValue("server.cache.disk.hits"); got != 1 {
		t.Fatalf("disk hits = %d, want 1", got)
	}
	if got := snap.CounterValue("core.rounds"); got != 0 {
		t.Fatalf("pipeline ran %d rounds after restart, want 0 (plan must come from disk)", got)
	}

	var r1, r2 partitionResponse
	if err := json.Unmarshal(first.Body.Bytes(), &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second.Body.Bytes(), &r2); err != nil {
		t.Fatal(err)
	}
	p1, _ := json.Marshal(r1.Plan)
	p2, _ := json.Marshal(r2.Plan)
	if string(p1) != string(p2) {
		t.Fatal("plan served from disk differs from the computed plan")
	}

	// A disk hit promotes into the memory tier: the third request must be
	// a memory hit, leaving the disk-hit counter untouched.
	third := post(t, s2, "/v1/partition?m=10&q=2", body, nil)
	if got := third.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("third X-Cache = %q, want hit", got)
	}
	snap = s2.rec.Snapshot()
	if got := snap.CounterValue("server.cache.disk.hits"); got != 1 {
		t.Fatalf("disk hits after promotion = %d, want still 1 (memory tier must absorb repeats)", got)
	}
	if got := snap.CounterValue("server.cache.hits"); got != 1 {
		t.Fatalf("memory hits = %d, want 1", got)
	}
}

// storePlan is a small distinguishable plan for store-level tests.
func storePlan(n int) *xhybrid.Plan {
	return &xhybrid.Plan{Partitions: []xhybrid.PartitionInfo{{Patterns: make([]int, n)}}}
}

// TestDiskStoreEvictsToBudget checks the byte budget end to end: puts past
// the cap evict the coldest plan files from disk, and the manifest tracks
// what is really there.
func TestDiskStoreEvictsToBudget(t *testing.T) {
	dir := t.TempDir()
	probe, _ := json.Marshal(storePlan(8))
	budget := int64(3*len(probe)) + 2 // room for three plans, not four
	d, err := openDiskStore(dir, budget, nil, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	for _, digest := range []string{"d1", "d2", "d3", "d4"} {
		d.put(digest, storePlan(8))
	}
	if _, ok := d.get("d1"); ok {
		t.Fatal("coldest entry survived past the byte budget")
	}
	if _, err := os.Stat(filepath.Join(dir, "d1"+planSuffix)); !os.IsNotExist(err) {
		t.Fatal("evicted plan file still on disk")
	}
	for _, digest := range []string{"d2", "d3", "d4"} {
		if _, ok := d.get(digest); !ok {
			t.Fatalf("%s missing after eviction", digest)
		}
	}
	n, bytes := d.stats()
	if n != 3 || bytes > budget {
		t.Fatalf("stats = %d entries / %d bytes, want 3 entries within %d", n, bytes, budget)
	}
}

// TestDiskStoreAdoptsOrphansAndDropsCorruption drives the reconciliation
// path: a plan file the manifest never recorded (crash between data write
// and index write) is adopted; a torn/corrupted plan file is removed; a
// manifest row whose file vanished is dropped.
func TestDiskStoreAdoptsOrphansAndDropsCorruption(t *testing.T) {
	dir := t.TempDir()
	d, err := openDiskStore(dir, 1<<20, nil, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	d.put("kept", storePlan(4))
	d.put("vanishes", storePlan(4))

	// Simulate the crash tableau by hand: an orphan (valid JSON, no
	// manifest row), a torn write (invalid JSON), and a deleted file whose
	// manifest row remains.
	orphan, _ := json.Marshal(storePlan(6))
	if err := os.WriteFile(filepath.Join(dir, "orphan"+planSuffix), orphan, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "torn"+planSuffix), []byte(`{"Partitions":[tor`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "vanishes"+planSuffix)); err != nil {
		t.Fatal(err)
	}

	d2, err := openDiskStore(dir, 1<<20, nil, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.get("kept"); !ok {
		t.Fatal("manifest-tracked plan lost across reopen")
	}
	if _, ok := d2.get("orphan"); !ok {
		t.Fatal("valid orphan plan not adopted")
	}
	if _, ok := d2.get("torn"); ok {
		t.Fatal("corrupted plan file served")
	}
	if _, err := os.Stat(filepath.Join(dir, "torn"+planSuffix)); !os.IsNotExist(err) {
		t.Fatal("corrupted plan file not removed at reconciliation")
	}
	if _, ok := d2.get("vanishes"); ok {
		t.Fatal("stale manifest row resurrected a deleted plan")
	}
	if n, _ := d2.stats(); n != 2 {
		t.Fatalf("entries after reconciliation = %d, want 2 (kept + orphan)", n)
	}
}
