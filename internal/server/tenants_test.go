package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xhybrid/internal/jobs"
)

func TestParseTenants(t *testing.T) {
	good := `{"tenants":[
		{"id":"acme","key":"k-acme","weight":3,"maxConcurrent":2,"maxWaiting":4},
		{"id":"zen","key":"k-zen"}
	]}`
	tenants, err := ParseTenants([]byte(good))
	if err != nil {
		t.Fatalf("ParseTenants: %v", err)
	}
	if len(tenants) != 2 || tenants[0].Weight != 3 || tenants[1].Weight != 1 {
		t.Fatalf("parsed %+v (the zero weight must default to 1)", tenants)
	}

	bad := []struct {
		name string
		data string
	}{
		{"empty list", `{"tenants":[]}`},
		{"missing id", `{"tenants":[{"key":"k"}]}`},
		{"missing key", `{"tenants":[{"id":"a"}]}`},
		{"duplicate id", `{"tenants":[{"id":"a","key":"k1"},{"id":"a","key":"k2"}]}`},
		{"duplicate key", `{"tenants":[{"id":"a","key":"k"},{"id":"b","key":"k"}]}`},
		{"negative weight", `{"tenants":[{"id":"a","key":"k","weight":-1}]}`},
		{"unknown field", `{"tenants":[{"id":"a","key":"k","admin":true}]}`},
		{"not json", `nope`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseTenants([]byte(tc.data)); err == nil {
				t.Fatalf("ParseTenants accepted %s", tc.data)
			}
		})
	}
}

// twoTenants is the standard fixture registry: acme (weight 3) and zen.
func twoTenants() []Tenant {
	return []Tenant{
		{ID: "acme", Key: "k-acme", Weight: 3},
		{ID: "zen", Key: "k-zen", Weight: 1},
	}
}

// TestTenantAuth covers the credential surface of an enforcing server:
// both header forms resolve, missing/unknown keys get 401 with a
// WWW-Authenticate challenge, and operational endpoints stay open.
func TestTenantAuth(t *testing.T) {
	s := newTestServer(t, Config{Tenants: twoTenants()})
	body := fixtureBody(t)

	if w := post(t, s, "/v1/partition?m=10&q=2", body, nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("no key = %d, want 401", w.Code)
	} else if w.Header().Get("WWW-Authenticate") == "" {
		t.Fatal("401 without WWW-Authenticate")
	}
	if w := post(t, s, "/v1/partition?m=10&q=2", body, map[string]string{"X-API-Key": "wrong"}); w.Code != http.StatusUnauthorized {
		t.Fatalf("bad key = %d, want 401", w.Code)
	}
	if w := post(t, s, "/v1/partition?m=10&q=2", body, map[string]string{"X-API-Key": "k-acme"}); w.Code != http.StatusOK {
		t.Fatalf("X-API-Key = %d, want 200: %s", w.Code, w.Body.String())
	}
	if w := post(t, s, "/v1/partition?m=10&q=2", body, map[string]string{"Authorization": "bearer k-zen"}); w.Code != http.StatusOK {
		t.Fatalf("Authorization bearer (case-insensitive scheme) = %d, want 200: %s", w.Code, w.Body.String())
	}

	snap := s.rec.Snapshot()
	if got := snap.CounterValue("server.requests.unauthorized"); got != 2 {
		t.Fatalf("unauthorized counter = %d, want 2", got)
	}
	if got := snap.CounterValue("server.tenant.acme.requests"); got != 1 {
		t.Fatalf("acme request counter = %d, want 1", got)
	}
	if got := snap.CounterValue("server.tenant.zen.completed"); got != 1 {
		t.Fatalf("zen completed counter = %d, want 1 (the second request hit acme's cache entry)", got)
	}

	// Operational endpoints never demand a key.
	for _, target := range []string{"/healthz", "/metrics"} {
		req := httptest.NewRequest(http.MethodGet, target, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s without key = %d, want 200", target, w.Code)
		}
	}
}

// TestTenantWaitQuota429 drives the per-tenant admission bound through
// HTTP: with the one job slot held and zen's wait lane full, zen's next
// request gets 429 (not the global 503) while the queue still has room.
func TestTenantWaitQuota429(t *testing.T) {
	tenants := []Tenant{
		{ID: "acme", Key: "k-acme", Weight: 1},
		{ID: "zen", Key: "k-zen", Weight: 1, MaxWaiting: 1},
	}
	s := newTestServer(t, Config{Tenants: tenants, MaxConcurrent: 1, MaxQueue: 16})
	body := fixtureBody(t)

	// Hold the only slot as acme.
	acme := s.tenants.byKey["k-acme"]
	if err := s.queue.acquire(context.Background(), acme); err != nil {
		t.Fatal(err)
	}
	defer s.queue.release(acme)

	// One zen request parks in the wait lane (driven on a goroutine with a
	// cancelable context; it never gets the slot).
	waitCtx, cancelWait := context.WithCancel(context.Background())
	defer cancelWait()
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		req := httptest.NewRequest(http.MethodPost, "/v1/partition?m=10&q=2",
			strings.NewReader(string(body))).WithContext(waitCtx)
		req.Header.Set("X-API-Key", "k-zen")
		s.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, waiting := s.queue.tenantDepth("zen"); waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("zen request never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// The second zen request exceeds MaxWaiting: 429 + Retry-After.
	w := post(t, s, "/v1/partition?m=10&q=2", body, map[string]string{"X-API-Key": "k-zen"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota request = %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.rec.Snapshot().CounterValue("server.tenant.zen.rejected"); got != 1 {
		t.Fatalf("zen rejected counter = %d, want 1", got)
	}

	cancelWait()
	<-parked
}

// TestJobSubmitRecordsTenant checks attribution on the durable job record:
// a spooled job carries its submitter's id and reports it in every status.
func TestJobSubmitRecordsTenant(t *testing.T) {
	mgr, err := jobs.Open(t.TempDir(), jobs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)
	s := newTestServer(t, Config{Jobs: mgr, Tenants: twoTenants()})

	req := httptest.NewRequest(http.MethodPost, "/v1/jobs?m=10&q=2", strings.NewReader(string(fixtureBody(t))))
	req.Header.Set("Authorization", "Bearer k-acme")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body.String())
	}
	env := decodeJob(t, w)
	if env.Tenant != "acme" {
		t.Fatalf("job tenant = %q, want acme", env.Tenant)
	}

	// And the spooled record itself agrees (survives restarts).
	st, err := mgr.Get(context.Background(), env.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "acme" {
		t.Fatalf("spooled tenant = %q, want acme", st.Tenant)
	}
}
