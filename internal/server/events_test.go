package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"xhybrid/internal/chaos"
	"xhybrid/internal/jobs"
)

// sseEvent is one parsed frame of a text/event-stream body.
type sseEvent struct {
	name string
	data jobEnvelope
}

// parseSSE decodes every complete frame of a recorded stream.
func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var events []sseEvent
	var name string
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var env jobEnvelope
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &env); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			events = append(events, sseEvent{name: name, data: env})
		}
	}
	return events
}

// TestJobEventsStream subscribes to a running job and checks the stream
// contract: an opening status event, then a terminal done event carrying
// the finished record, after which the handler closes the stream.
func TestJobEventsStream(t *testing.T) {
	// The input read is slowed so the job is reliably still in flight when
	// the subscription opens; a tight poll interval keeps the test quick.
	mgr, err := jobs.Open(t.TempDir(), jobs.Config{
		FS: chaos.Wrap(nil, &chaos.Fault{Op: chaos.OpRead, Base: "input.json", Delay: 200 * time.Millisecond}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)
	s := newTestServer(t, Config{Jobs: mgr, ProgressInterval: 5 * time.Millisecond})

	w := do(t, s, http.MethodPost, "/v1/jobs?m=10&q=2&checkpoint=1", fixtureBody(t))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body.String())
	}
	id := decodeJob(t, w).ID

	// ServeHTTP blocks until the stream ends (the job finishing), so the
	// recorder holds the complete event log afterwards.
	stream := do(t, s, http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	if stream.Code != http.StatusOK {
		t.Fatalf("events status %d: %s", stream.Code, stream.Body.String())
	}
	if ct := stream.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	if !stream.Flushed {
		t.Fatal("stream was never flushed; SSE must not buffer until the end")
	}
	events := parseSSE(t, stream.Body.String())
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least status + done:\n%s", len(events), stream.Body.String())
	}
	if events[0].name != "status" {
		t.Fatalf("first event = %q, want status", events[0].name)
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("last event = %q, want done", last.name)
	}
	if last.data.State != jobs.StateDone || last.data.ID != id {
		t.Fatalf("done payload = %+v", last.data.Meta)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.data.State.Terminal() {
			t.Fatalf("terminal state %q before the done event", ev.data.State)
		}
	}
}

// TestJobEventsTerminalAndMissing: subscribing to a finished job yields
// exactly one done frame and closes; an unknown id is a plain 404.
func TestJobEventsTerminalAndMissing(t *testing.T) {
	s, _ := newJobsServer(t, jobs.Config{})
	w := do(t, s, http.MethodPost, "/v1/jobs?m=10&q=2", fixtureBody(t))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	env := pollDone(t, s, decodeJob(t, w).ID)

	stream := do(t, s, http.MethodGet, "/v1/jobs/"+env.ID+"/events", nil)
	if stream.Code != http.StatusOK {
		t.Fatalf("events status %d", stream.Code)
	}
	events := parseSSE(t, stream.Body.String())
	if len(events) != 1 || events[0].name != "done" {
		t.Fatalf("finished job stream = %+v, want exactly one done event", events)
	}

	if w := do(t, s, http.MethodGet, "/v1/jobs/nope/events", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", w.Code)
	}
}
