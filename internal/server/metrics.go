package server

import (
	"fmt"
	"io"
	"strings"

	"xhybrid/internal/obs"
)

// writeMetrics renders a recorder snapshot in the Prometheus text
// exposition format: every counter becomes one `xhybridd_<name>` sample and
// every stage span a `_count` / `_nanos_total` pair. Dots and other
// non-identifier runes in the recorder's names map to underscores, so
// "server.cache.hits" scrapes as xhybridd_server_cache_hits.
func writeMetrics(w io.Writer, snap obs.Snapshot) error {
	for _, c := range snap.Counters {
		name := metricName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, s := range snap.Spans {
		name := metricName(s.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s_count counter\n%s_count %d\n", name, name, s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s_nanos_total counter\n%s_nanos_total %d\n", name, name, int64(s.Total)); err != nil {
			return err
		}
	}
	return nil
}

func metricName(raw string) string {
	var b strings.Builder
	b.WriteString("xhybridd_")
	for _, r := range raw {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
