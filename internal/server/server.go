package server

import (
	"bufio"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"time"

	"xhybrid"
	"xhybrid/internal/jobs"
	"xhybrid/internal/obs"
)

// Config parameterizes the serving layer. The zero value serves with the
// documented defaults.
type Config struct {
	// CacheBytes is the in-memory result-cache budget in bytes, weighted
	// by each plan's approximate resident size (default 256 MiB; negative
	// disables the memory tier).
	CacheBytes int64
	// CacheDir enables the persistent result tier: computed plans are
	// spooled content-addressed under this directory and survive restarts
	// (empty disables the disk tier).
	CacheDir string
	// CacheDiskBytes is the disk tier's byte budget (default 1 GiB).
	CacheDiskBytes int64
	// CacheFS overrides the disk tier's filesystem (nil = the real one);
	// the chaos harness injects faults here.
	CacheFS jobs.FS
	// Tenants enables multi-tenant admission: requests must carry one of
	// these tenants' API keys (Authorization: Bearer or X-API-Key), slots
	// are granted by weighted fair scheduling, and per-tenant quotas
	// apply. Empty leaves the server open — every request runs as the
	// anonymous weight-1 tenant.
	Tenants []Tenant
	// MaxConcurrent caps the partition jobs computing at once (default
	// runtime.GOMAXPROCS(0)).
	MaxConcurrent int
	// MaxQueue caps the requests waiting for a job slot (default 64);
	// beyond it requests are rejected with 503.
	MaxQueue int
	// MaxWorkersPerJob clamps the per-request worker budget (default
	// runtime.GOMAXPROCS(0)). A request's workers parameter can lower but
	// never exceed it.
	MaxWorkersPerJob int
	// MaxBodyBytes bounds the request body (default 64 MiB).
	MaxBodyBytes int64
	// JobTimeout bounds one partition job's compute time (0 = unbounded);
	// on expiry the pipeline aborts mid-round and the request gets 503.
	JobTimeout time.Duration
	// DrainTimeout bounds graceful shutdown's wait for in-flight jobs
	// (default 30s).
	DrainTimeout time.Duration
	// ProgressInterval is the poll cadence of the SSE job-progress stream
	// (default 250ms).
	ProgressInterval time.Duration
	// Jobs enables the async /v1/jobs API: submissions are spooled to disk
	// by this manager, survive restarts, and resume from their last
	// checkpoint. nil leaves the endpoints unregistered (synchronous
	// /v1/partition is unaffected either way).
	Jobs *jobs.Manager
	// Obs receives every counter and span of the server and the pipeline
	// runs it hosts; nil creates a fresh recorder (the /metrics endpoint
	// needs one to scrape).
	Obs *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.CacheDiskBytes <= 0 {
		c.CacheDiskBytes = 1 << 30
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxWorkersPerJob <= 0 {
		c.MaxWorkersPerJob = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 250 * time.Millisecond
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	return c
}

// Server hosts the partition pipeline behind HTTP. Create with New; the
// zero value is not usable.
type Server struct {
	cfg     Config
	rec     *obs.Recorder
	cache   *resultCache
	disk    *diskStore // nil without Config.CacheDir
	queue   *fairQueue
	tenants *tenantRegistry // nil on an open server
	mux     *http.ServeMux

	reqs         *obs.Counter
	completed    *obs.Counter
	rejected     *obs.Counter
	disconnected *obs.Counter
	timedout     *obs.Counter
	unauthorized *obs.Counter
	badReq       *obs.Counter
}

// New returns a server with the config's defaults applied. The error is
// non-nil only when the persistent cache tier (Config.CacheDir) cannot be
// opened.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		rec:     cfg.Obs,
		cache:   newResultCache(cfg.CacheBytes, cfg.Obs),
		queue:   newFairQueue(cfg.MaxConcurrent, cfg.MaxQueue),
		tenants: newTenantRegistry(cfg.Tenants),

		reqs:         cfg.Obs.Counter("server.requests"),
		completed:    cfg.Obs.Counter("server.jobs.completed"),
		rejected:     cfg.Obs.Counter("server.jobs.rejected"),
		disconnected: cfg.Obs.Counter("server.jobs.disconnected"),
		timedout:     cfg.Obs.Counter("server.jobs.timedout"),
		unauthorized: cfg.Obs.Counter("server.requests.unauthorized"),
		badReq:       cfg.Obs.Counter("server.requests.bad"),
	}
	if cfg.CacheDir != "" {
		disk, err := openDiskStore(cfg.CacheDir, cfg.CacheDiskBytes, cfg.CacheFS, cfg.Obs)
		if err != nil {
			return nil, err
		}
		s.disk = disk
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/partition", s.handlePartition)
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	if cfg.Jobs != nil {
		mux.HandleFunc("POST /v1/flow", s.handleFlowSubmit)
		mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
		mux.HandleFunc("GET /v1/jobs", s.handleJobList)
		mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
		mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
		mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
		mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	}
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler (also usable under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until ctx is canceled, then shuts down
// gracefully: the listener closes immediately while in-flight requests —
// including partition jobs mid-compute — drain for up to
// Config.DrainTimeout before the remaining connections are force-closed.
// Jobs keep their own request contexts during the drain, so draining never
// cancels compute that a live client is still waiting on.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		srv.Close()
		return fmt.Errorf("server: drain: %w", err)
	}
	return nil
}

// ListenAndServe is Serve on a fresh TCP listener.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// authorize resolves the request's tenant, answering 401 itself when the
// server enforces keys and the request carries none it knows. Operational
// endpoints (healthz, metrics, pprof) stay open by not calling this.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	ten, err := s.tenants.resolve(r)
	if err != nil {
		s.unauthorized.Inc()
		w.Header().Set("WWW-Authenticate", `Bearer realm="xhybridd"`)
		s.errorJSON(w, http.StatusUnauthorized, err)
		return nil, false
	}
	return ten, true
}

// tenantCounter resolves one per-tenant counter, e.g.
// server.tenant.acme.completed.
func (s *Server) tenantCounter(ten *Tenant, what string) *obs.Counter {
	return s.rec.Counter("server.tenant." + ten.ID + "." + what)
}

// cacheGet probes the two cache tiers in order: the in-memory LRU, then
// the persistent store (promoting a disk hit back into memory so repeat
// traffic stays off the disk).
func (s *Server) cacheGet(digest string) (*xhybrid.Plan, bool) {
	if plan, ok := s.cache.get(digest); ok {
		return plan, true
	}
	if s.disk == nil {
		return nil, false
	}
	plan, ok := s.disk.get(digest)
	if ok {
		s.cache.put(digest, plan)
	}
	return plan, ok
}

// cachePut stores a fresh plan in both tiers.
func (s *Server) cachePut(digest string, plan *xhybrid.Plan) {
	s.cache.put(digest, plan)
	if s.disk != nil {
		s.disk.put(digest, plan)
	}
}

// requestOptions is the decoded query-string configuration of one request.
type requestOptions struct {
	opt     xhybrid.Options
	verbose bool
	format  string // "json" or "text"
	workers int    // requested budget before clamping
}

// parseOptions decodes and normalizes the plan-shaping query parameters.
// Defaults are normalized to their effective values (m=32, q=7,
// strategy=paper) before digesting, so equivalent requests share one cache
// entry no matter how they spell the defaults.
func parseOptions(q url.Values) (requestOptions, error) {
	ro := requestOptions{format: "json"}
	intParam := func(name string, def int) (int, error) {
		v := q.Get(name)
		if v == "" {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("server: bad %s=%q", name, v)
		}
		return n, nil
	}
	var err error
	if ro.opt.MISRSize, err = intParam("m", 32); err != nil {
		return ro, err
	}
	if ro.opt.Q, err = intParam("q", 7); err != nil {
		return ro, err
	}
	var seed int
	if seed, err = intParam("seed", 0); err != nil {
		return ro, err
	}
	ro.opt.Seed = int64(seed)
	if ro.opt.MaxRounds, err = intParam("rounds", 0); err != nil {
		return ro, err
	}
	if ro.workers, err = intParam("workers", 0); err != nil {
		return ro, err
	}
	ro.opt.Strategy = q.Get("strategy")
	// Normalize through the facade: fills the engine defaults, resolves the
	// strategy to its canonical registry name (""->paper, legacy
	// greedy->greedy-cost) so spellings share one cache entry, and rejects
	// unknown names here with the registry's enumerating error instead of
	// deep in the compute path.
	if ro.opt, err = ro.opt.Normalized(); err != nil {
		return ro, fmt.Errorf("server: %w", err)
	}
	switch q.Get("format") {
	case "", "json":
		ro.format = "json"
	case "text":
		ro.format = "text"
	default:
		return ro, fmt.Errorf("server: bad format=%q (want json or text)", q.Get("format"))
	}
	switch q.Get("verbose") {
	case "", "0", "false":
	case "1", "true":
		ro.verbose = true
	default:
		return ro, fmt.Errorf("server: bad verbose=%q", q.Get("verbose"))
	}
	return ro, nil
}

// clampWorkers resolves a requested per-job worker budget against the
// server's ceiling: 0 (or anything above the ceiling) means the ceiling,
// anything else is taken as asked.
func (s *Server) clampWorkers(requested int) int {
	if requested <= 0 || requested > s.cfg.MaxWorkersPerJob {
		return s.cfg.MaxWorkersPerJob
	}
	return requested
}

// Body-read sentinels with their own HTTP statuses (see bodyErrStatus).
var (
	errUnsupportedEncoding = errors.New("server: unsupported Content-Encoding (use gzip or identity)")
	errDecompressedTooBig  = errors.New("server: decompressed body exceeds the size limit")
)

// inflateLimit bounds a decompressed stream: MaxBytesReader only sees the
// wire bytes, and gzip expands up to ~1000x, so the same MaxBodyBytes limit
// is re-applied to what comes out of the decompressor.
type inflateLimit struct {
	r io.Reader
	n int64 // bytes still allowed; 1 spare so an exactly-at-limit stream can EOF
}

func (l *inflateLimit) Read(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, errDecompressedTooBig
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// readXMap parses the request body as an X-location map in any of the three
// wire formats, optionally gzip-compressed (Content-Encoding: gzip). The
// format comes from the input= parameter (json, text or binary) when given;
// otherwise a text/* Content-Type selects the text parser and
// application/octet-stream the binary one (RFC 9110 matching: media type
// case-insensitive, parameters ignored); otherwise the body is sniffed — a
// leading "XMAPB" magic means binary, anything else JSON.
func readXMap(r *http.Request, maxBody int64) (*xhybrid.XLocations, error) {
	body := io.Reader(r.Body)
	switch enc := strings.ToLower(strings.TrimSpace(r.Header.Get("Content-Encoding"))); enc {
	case "", "identity":
	case "gzip", "x-gzip":
		zr, err := gzip.NewReader(body)
		if err != nil {
			return nil, fmt.Errorf("server: gzip body: %w", err)
		}
		defer zr.Close()
		body = &inflateLimit{r: zr, n: maxBody + 1}
	default:
		return nil, fmt.Errorf("%w: %q", errUnsupportedEncoding, enc)
	}
	br := bufio.NewReader(body)
	format := r.URL.Query().Get("input")
	if format == "" {
		if ct := r.Header.Get("Content-Type"); ct != "" {
			if mt, _, err := mime.ParseMediaType(ct); err == nil {
				switch {
				case strings.HasPrefix(mt, "text/"):
					format = "text"
				case mt == "application/octet-stream":
					format = "binary"
				}
			}
		}
	}
	if format == "" {
		if peek, err := br.Peek(len(binaryMagic)); err == nil && string(peek) == binaryMagic {
			format = "binary"
		}
	}
	switch format {
	case "text":
		return xhybrid.ReadXLocationsText(br)
	case "binary", "bin":
		return xhybrid.ReadXLocationsBinary(br)
	case "", "json":
		return xhybrid.ReadXLocations(br)
	default:
		return nil, fmt.Errorf("server: bad input=%q (want json, text or binary)", format)
	}
}

// binaryMagic mirrors the binary wire format's leading magic (binio.go);
// only the sniffer needs it.
const binaryMagic = "XMAPB"

// bodyErrStatus classifies an X-map read failure: a body over the
// MaxBytesReader limit — before or after decompression — is 413 (the input
// was never seen whole), an unsupported Content-Encoding is 415, anything
// else is a 400 parse error. Every body-reading endpoint must route read
// errors through this — /v1/analyze once skipped the MaxBytesError check
// and mislabeled oversized bodies as 400 parse failures.
func bodyErrStatus(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig), errors.Is(err, errDecompressedTooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, errUnsupportedEncoding):
		return http.StatusUnsupportedMediaType
	}
	return http.StatusBadRequest
}

// designInfo summarizes the parsed input in responses.
type designInfo struct {
	Chains   int `json:"chains"`
	ChainLen int `json:"chainLen"`
	Patterns int `json:"patterns"`
	TotalX   int `json:"totalX"`
}

func describe(x *xhybrid.XLocations) designInfo {
	return designInfo{Chains: x.Chains(), ChainLen: x.ChainLen(), Patterns: x.Patterns(), TotalX: x.TotalX()}
}

// partitionResponse is the JSON envelope of /v1/partition.
type partitionResponse struct {
	Digest    string        `json:"digest"`
	Cached    bool          `json:"cached"`
	ElapsedMs float64       `json:"elapsedMs"`
	Design    designInfo    `json:"design"`
	Plan      *xhybrid.Plan `json:"plan"`
}

// analyzeResponse is the JSON envelope of /v1/analyze.
type analyzeResponse struct {
	Design   designInfo        `json:"design"`
	Analysis *xhybrid.Analysis `json:"analysis"`
}

func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, errors.New("server: POST required"))
		return
	}
	ten, ok := s.authorize(w, r)
	if !ok {
		return
	}
	s.tenantCounter(ten, "requests").Inc()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ro, err := parseOptions(r.URL.Query())
	if err != nil {
		s.badReq.Inc()
		s.errorJSON(w, http.StatusBadRequest, err)
		return
	}
	x, err := readXMap(r, s.cfg.MaxBodyBytes)
	if err != nil {
		s.badReq.Inc()
		s.errorJSON(w, bodyErrStatus(err), err)
		return
	}
	digest, err := planDigest(x, ro.opt)
	if err != nil {
		s.errorJSON(w, http.StatusInternalServerError, err)
		return
	}

	start := time.Now()
	if plan, ok := s.cacheGet(digest); ok {
		s.tenantCounter(ten, "completed").Inc()
		s.writePlan(w, r, ro, x, digest, plan, true, start)
		return
	}

	// Admission: one bounded, weighted-fair wait for a job slot under the
	// request context.
	if err := s.queue.acquire(r.Context(), ten); err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			s.rejected.Inc()
			s.tenantCounter(ten, "rejected").Inc()
			w.Header().Set("Retry-After", "1")
			s.errorJSON(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, errTenantBusy):
			s.rejected.Inc()
			s.tenantCounter(ten, "rejected").Inc()
			w.Header().Set("Retry-After", "1")
			s.errorJSON(w, http.StatusTooManyRequests, err)
		default:
			// The wait ended with the request context: the client hung up
			// (or its own deadline passed). Nobody reads the body, so skip
			// the doomed write.
			s.disconnected.Inc()
		}
		return
	}
	defer s.queue.release(ten)

	ctx := r.Context()
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	opt := ro.opt
	opt.Workers = s.clampWorkers(ro.workers)
	opt.Stats = s.rec
	end := s.rec.Span("server.partition")
	plan, err := xhybrid.PartitionCtx(ctx, x, opt)
	end()
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			// The client is gone — it can never read a response, so do not
			// write one. This used to be lumped with server-side aborts
			// under one `canceled` counter and answered with a 503 nobody
			// would see.
			s.disconnected.Inc()
		case ctx.Err() != nil:
			// Server-side abort: the JobTimeout deadline expired while the
			// client still listens. 503 tells retrying proxies the server
			// gave up, not that the input was bad.
			s.timedout.Inc()
			s.errorJSON(w, http.StatusServiceUnavailable, err)
		default:
			s.badReq.Inc()
			s.errorJSON(w, http.StatusBadRequest, err)
		}
		return
	}
	s.cachePut(digest, plan)
	s.completed.Inc()
	s.tenantCounter(ten, "completed").Inc()
	s.writePlan(w, r, ro, x, digest, plan, false, start)
}

// writePlan renders one partition result in the requested format. The text
// format goes through the same Plan.WriteText as cmd/xhybrid partition, so
// the body is byte-identical to the CLI's stdout for equal inputs.
func (s *Server) writePlan(w http.ResponseWriter, _ *http.Request, ro requestOptions, x *xhybrid.XLocations, digest string, plan *xhybrid.Plan, cached bool, start time.Time) {
	hit := "miss"
	if cached {
		hit = "hit"
	}
	w.Header().Set("X-Cache", hit)
	w.Header().Set("X-Plan-Digest", digest)
	if ro.format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := plan.WriteText(w, x, ro.verbose); err != nil {
			// Headers are gone; nothing to do beyond dropping the stream.
			return
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(partitionResponse{
		Digest:    digest,
		Cached:    cached,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
		Design:    describe(x),
		Plan:      plan,
	})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, errors.New("server: POST required"))
		return
	}
	ten, ok := s.authorize(w, r)
	if !ok {
		return
	}
	s.tenantCounter(ten, "requests").Inc()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	x, err := readXMap(r, s.cfg.MaxBodyBytes)
	if err != nil {
		s.badReq.Inc()
		s.errorJSON(w, bodyErrStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(analyzeResponse{Design: describe(x), Analysis: xhybrid.Analyze(x)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Queue depth and cache size are sampled at scrape time; everything
	// else accumulates in the shared recorder as requests run.
	running, waiting := s.queue.depth()
	s.rec.Set("server.queue.running", running)
	s.rec.Set("server.queue.waiting", waiting)
	s.rec.Set("server.cache.entries", int64(s.cache.len()))
	s.rec.Set("server.cache.bytes", s.cache.size())
	if s.disk != nil {
		n, bytes := s.disk.stats()
		s.rec.Set("server.cache.disk.entries", int64(n))
		s.rec.Set("server.cache.disk.bytes", bytes)
	}
	for _, ten := range s.cfg.Tenants {
		tr, tw := s.queue.tenantDepth(ten.ID)
		s.rec.Set("server.tenant."+ten.ID+".running", tr)
		s.rec.Set("server.tenant."+ten.ID+".waiting", tw)
	}
	if s.cfg.Jobs != nil {
		jr, jw := s.cfg.Jobs.Depth()
		s.rec.Set("jobs.queue.running", jr)
		s.rec.Set("jobs.queue.waiting", jw)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = writeMetrics(w, s.rec.Snapshot())
}

// errorJSON writes one {"error": ...} body with the given status.
func (s *Server) errorJSON(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
