package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"xhybrid"
)

const fixturePath = "../../testdata/paperexample.json"

func fixtureBody(t *testing.T) []byte {
	t.Helper()
	b, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	return b
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func post(t *testing.T, s *Server, target string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, target, bytes.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// TestPartitionTextByteIdentical locks the serving layer's headline
// guarantee: a format=text response is byte-for-byte the output of
// `xhybrid partition -in testdata/paperexample.json -m 10 -q 2` (the CI
// smoke job diffs the real binaries; this test pins the shared renderer
// path inside the process).
func TestPartitionTextByteIdentical(t *testing.T) {
	body := fixtureBody(t)
	x, err := xhybrid.ReadXLocations(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	plan, err := xhybrid.Partition(x, xhybrid.Options{MISRSize: 10, Q: 2})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	var want bytes.Buffer
	if err := plan.WriteText(&want, x, false); err != nil {
		t.Fatalf("render: %v", err)
	}

	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/partition?m=10&q=2&format=text", body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Body.String(); got != want.String() {
		t.Fatalf("served text differs from CLI rendering:\n--- want ---\n%s--- got ---\n%s", want.String(), got)
	}
}

// TestPartitionCacheHit proves the memoization contract: the second
// identical request is answered from the LRU (X-Cache: hit, cached:true,
// hit counter incremented) with an identical plan.
func TestPartitionCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	body := fixtureBody(t)

	first := post(t, s, "/v1/partition?m=10&q=2", body, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("first status %d: %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	second := post(t, s, "/v1/partition?m=10&q=2", body, nil)
	if second.Code != http.StatusOK {
		t.Fatalf("second status %d: %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", got)
	}

	var r1, r2 partitionResponse
	if err := json.Unmarshal(first.Body.Bytes(), &r1); err != nil {
		t.Fatalf("decode first: %v", err)
	}
	if err := json.Unmarshal(second.Body.Bytes(), &r2); err != nil {
		t.Fatalf("decode second: %v", err)
	}
	if r1.Cached || !r2.Cached {
		t.Fatalf("cached flags = %v/%v, want false/true", r1.Cached, r2.Cached)
	}
	if r1.Digest != r2.Digest {
		t.Fatalf("digests differ: %s vs %s", r1.Digest, r2.Digest)
	}
	p1, _ := json.Marshal(r1.Plan)
	p2, _ := json.Marshal(r2.Plan)
	if !bytes.Equal(p1, p2) {
		t.Fatal("cached plan differs from computed plan")
	}

	snap := s.rec.Snapshot()
	if hits := snap.CounterValue("server.cache.hits"); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	if misses := snap.CounterValue("server.cache.misses"); misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}
}

// TestCacheSharedAcrossFormats locks the canonical digest: the same X-map
// posted as text hits the entry a JSON request populated, and a different
// option set misses it.
func TestCacheSharedAcrossFormats(t *testing.T) {
	s := newTestServer(t, Config{})
	jsonBody := fixtureBody(t)
	x, err := xhybrid.ReadXLocations(bytes.NewReader(jsonBody))
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if err := x.WriteText(&text); err != nil {
		t.Fatal(err)
	}

	if w := post(t, s, "/v1/partition?m=10&q=2", jsonBody, nil); w.Code != http.StatusOK {
		t.Fatalf("json post: %d %s", w.Code, w.Body.String())
	}
	w := post(t, s, "/v1/partition?m=10&q=2", text.Bytes(), map[string]string{"Content-Type": "text/plain"})
	if w.Code != http.StatusOK {
		t.Fatalf("text post: %d %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("text-format request X-Cache = %q, want hit (digest should be input-format independent)", got)
	}
	// Different q → different plan key → miss.
	if w := post(t, s, "/v1/partition?m=10&q=1", jsonBody, nil); w.Header().Get("X-Cache") != "miss" {
		t.Fatal("distinct options unexpectedly shared a cache entry")
	}
	// Worker budget is excluded from the key by design.
	if w := post(t, s, "/v1/partition?m=10&q=2&workers=1", jsonBody, nil); w.Header().Get("X-Cache") != "hit" {
		t.Fatal("workers parameter leaked into the cache key")
	}
}

// TestJobQueueBounds unit-tests the admission controller: concurrency and
// wait bounds, rejection, and context-aware waiting.
func TestJobQueueBounds(t *testing.T) {
	q := newFairQueue(1, 0)
	if err := q.acquire(context.Background(), anonTenant); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := q.acquire(context.Background(), anonTenant); err != errQueueFull {
		t.Fatalf("overflow acquire = %v, want errQueueFull", err)
	}
	q.release(anonTenant)
	if err := q.acquire(context.Background(), anonTenant); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	q.release(anonTenant)

	// With wait capacity, a canceled context aborts the wait.
	q = newFairQueue(1, 1)
	if err := q.acquire(context.Background(), anonTenant); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := q.acquire(ctx, anonTenant); err != context.Canceled {
		t.Fatalf("canceled wait = %v, want context.Canceled", err)
	}
	if _, waiting := q.depth(); waiting != 0 {
		t.Fatalf("canceled waiter still counted: waiting = %d", waiting)
	}
	q.release(anonTenant)
}

// TestQueueFullHTTP drives the rejection path end to end: with one slot
// held and no wait capacity, a request gets 503 + Retry-After and the
// rejection counter moves.
func TestQueueFullHTTP(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1})
	if err := s.queue.acquire(context.Background(), anonTenant); err != nil {
		t.Fatal(err)
	}
	defer s.queue.release(anonTenant)
	w := post(t, s, "/v1/partition?m=10&q=2", fixtureBody(t), nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if got := s.rec.Snapshot().CounterValue("server.jobs.rejected"); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

// TestCanceledRequestStopsCompute threads a dead context through the full
// handler: the pipeline must abort without computing for a client that is
// gone, the disconnect must land on its own counter (not the server-side
// timeout one it used to share), and — since nobody can read it — no
// response body may be written.
func TestCanceledRequestStopsCompute(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/partition?m=10&q=2", bytes.NewReader(fixtureBody(t))).WithContext(ctx)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Body.Len() != 0 {
		t.Fatalf("wrote %d body bytes for a disconnected client: %s", w.Body.Len(), w.Body.String())
	}
	snap := s.rec.Snapshot()
	if got := snap.CounterValue("server.jobs.disconnected"); got != 1 {
		t.Fatalf("disconnected counter = %d, want 1", got)
	}
	if got := snap.CounterValue("server.jobs.timedout"); got != 0 {
		t.Fatalf("timedout counter = %d, want 0 (client disconnects must not count as server timeouts)", got)
	}
	if s.cache.len() != 0 {
		t.Fatal("aborted job left a cache entry")
	}
}

// TestJobTimeoutIsNotADisconnect locks the other half of the split: when
// the server's own JobTimeout expires while the client still listens, the
// request gets a real 503 and the timeout counter — not the disconnect one.
func TestJobTimeoutIsNotADisconnect(t *testing.T) {
	s := newTestServer(t, Config{JobTimeout: time.Nanosecond})
	w := post(t, s, "/v1/partition?m=10&q=2", fixtureBody(t), nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body.String())
	}
	snap := s.rec.Snapshot()
	if got := snap.CounterValue("server.jobs.timedout"); got != 1 {
		t.Fatalf("timedout counter = %d, want 1", got)
	}
	if got := snap.CounterValue("server.jobs.disconnected"); got != 0 {
		t.Fatalf("disconnected counter = %d, want 0", got)
	}
}

// TestBadRequests covers the 4xx surface.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name   string
		method string
		target string
		body   string
		want   int
	}{
		{"get method", http.MethodGet, "/v1/partition", "", http.StatusMethodNotAllowed},
		{"bad json", http.MethodPost, "/v1/partition", "{nope", http.StatusBadRequest},
		{"bad m", http.MethodPost, "/v1/partition?m=banana", "{}", http.StatusBadRequest},
		{"bad format", http.MethodPost, "/v1/partition?format=xml", "{}", http.StatusBadRequest},
		{"bad strategy", http.MethodPost, "/v1/partition?strategy=magic", string(fixtureBody(t)), http.StatusBadRequest},
		{"analyze get", http.MethodGet, "/v1/analyze", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.target, strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)
			if w.Code != tc.want {
				t.Fatalf("status %d, want %d (body %s)", w.Code, tc.want, w.Body.String())
			}
		})
	}
}

// TestAnalyzeEndpoint sanity-checks the Section 3 analysis surface.
func TestAnalyzeEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/analyze", fixtureBody(t), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp analyzeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Design.TotalX != 28 || resp.Analysis == nil || resp.Analysis.TotalX != 28 {
		t.Fatalf("unexpected analysis payload: %+v", resp)
	}
}

// TestHealthzAndMetrics exercises the operational endpoints: liveness, the
// Prometheus rendering, and the scrape-time gauges.
func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q", w.Code, w.Body.String())
	}

	if w := post(t, s, "/v1/partition?m=10&q=2", fixtureBody(t), nil); w.Code != http.StatusOK {
		t.Fatal(w.Body.String())
	}
	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	body := w.Body.String()
	for _, want := range []string{
		"xhybridd_server_requests 1",
		"xhybridd_server_cache_misses 1",
		"xhybridd_server_queue_running 0",
		"xhybridd_core_rounds",
		"xhybridd_server_partition_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestIncrementalCountersInMetrics checks the incremental scoring engine's
// cache and delta counters flow through the server's shared recorder into
// /metrics, and that a real run actually engages them — the state cache must
// record misses (fresh partitions were interned) and splits must be priced
// by delta, not full recomputation.
func TestIncrementalCountersInMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := post(t, s, "/v1/partition?m=10&q=2&strategy=greedy", fixtureBody(t), nil); w.Code != http.StatusOK {
		t.Fatal(w.Body.String())
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	body := w.Body.String()
	metric := func(name string) int64 {
		t.Helper()
		for _, line := range strings.Split(body, "\n") {
			var v int64
			if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
				return v
			}
		}
		t.Fatalf("metrics missing %q:\n%s", name, body)
		return 0
	}
	// Exported at all, and zero is a legal value for the hit counters on a
	// tiny fixture.
	for _, name := range []string{
		"xhybridd_core_state_cache_hits",
		"xhybridd_core_groups_cache_hits",
		"xhybridd_core_groups_cache_misses",
		"xhybridd_core_cellindex_cells_scanned",
	} {
		metric(name)
	}
	if v := metric("xhybridd_core_state_cache_misses"); v == 0 {
		t.Error("state cache recorded no misses; a run must intern fresh partitions")
	}
	if v := metric("xhybridd_core_score_delta"); v == 0 {
		t.Error("no delta-priced scores; splits should not be fully recomputed")
	}
	if v := metric("xhybridd_core_score_full"); v == 0 {
		t.Error("initial cost should be priced by one full summation")
	}
	if v := metric("xhybridd_core_cellindex_builds"); v == 0 {
		t.Error("no partition-local cell indexes were built")
	}
}

// TestGracefulShutdownDrains starts a real listener, opens a request whose
// body is still streaming when shutdown begins, and checks that the drain
// lets it finish with a full 200 instead of resetting the connection.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t, Config{DrainTimeout: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	body := fixtureBody(t)
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost,
		fmt.Sprintf("http://%s/v1/partition?m=10&q=2&format=text", ln.Addr()), pr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		pw.Write(body[:len(body)/2])
		time.Sleep(50 * time.Millisecond) // shutdown fires while we stream
		pw.Write(body[len(body)/2:])
		pw.Close()
	}()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read drained response: %v", err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), "partitions:") {
		t.Fatalf("drained response: %d %q", resp.StatusCode, out)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
}

// TestLRUEviction checks byte accounting and LRU order at the cache layer
// directly.
func TestLRUEviction(t *testing.T) {
	p := &xhybrid.Plan{}
	c := newResultCache(2*planCost(p), nil) // room for exactly two empty plans
	c.put("a", p)
	c.put("b", p)
	if _, ok := c.get("a"); !ok { // promote a; b is now LRU
		t.Fatal("a missing")
	}
	c.put("c", p) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// TestLRUByteWeighting locks the bugfix boundary: the budget is enforced
// in plan bytes, not plan count — one big plan displaces as many small
// entries as its weight demands, and a plan bigger than the whole budget
// is never cached. The old plan-counted LRU weighed a 100k-cell plan the
// same as a toy one, so N huge entries could pin ~unbounded memory.
func TestLRUByteWeighting(t *testing.T) {
	small := &xhybrid.Plan{}
	big := &xhybrid.Plan{Partitions: []xhybrid.PartitionInfo{{Patterns: make([]int, 1000)}}}
	budget := 10*planCost(small) + planCost(big) - 1 // one small short of everything
	c := newResultCache(budget, nil)
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("s%d", i), small)
	}
	if c.len() != 10 {
		t.Fatalf("len = %d, want 10 before the big insert", c.len())
	}
	c.put("big", big)
	if c.size() > budget {
		t.Fatalf("cache over budget: %d > %d", c.size(), budget)
	}
	if _, ok := c.get("big"); !ok {
		t.Fatal("big plan not cached")
	}
	if _, ok := c.get("s0"); ok {
		t.Fatal("oldest small entry survived; big insert must evict by bytes")
	}
	if _, ok := c.get("s9"); !ok {
		t.Fatal("newest small entry evicted; only the cold tail should go")
	}

	// A plan heavier than the whole budget must not wipe the cache to
	// store itself.
	before := c.len()
	c.put("whale", &xhybrid.Plan{Partitions: []xhybrid.PartitionInfo{{Patterns: make([]int, 1<<20)}}})
	if _, ok := c.get("whale"); ok {
		t.Fatal("over-budget plan was cached")
	}
	if c.len() != before {
		t.Fatalf("over-budget put changed the cache: len %d -> %d", before, c.len())
	}
}
