package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"xhybrid"
	"xhybrid/internal/jobs"
)

// flowSpecBody is a small deterministic end-to-end flow spec, JSON-encoded
// the way a client would post it.
func flowSpecBody(t *testing.T) []byte {
	t.Helper()
	body, err := json.Marshal(xhybrid.FlowSpec{
		Cells:       256,
		Chains:      16,
		XClusters:   8,
		CircuitSeed: 5,
		StimSeed:    9,
		Patterns:    96,
		MISRSize:    8,
		Q:           2,
		Strategy:    "greedy",
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestFlowAPILifecycle drives POST /v1/flow → poll → result through the
// HTTP layer and holds the async report's deterministic legs to a direct
// in-process run of the same spec.
func TestFlowAPILifecycle(t *testing.T) {
	s, _ := newJobsServer(t, jobs.Config{})

	var spec xhybrid.FlowSpec
	if err := json.Unmarshal(flowSpecBody(t), &spec); err != nil {
		t.Fatal(err)
	}
	want, err := xhybrid.RunFlow(spec)
	if err != nil {
		t.Fatal(err)
	}

	w := do(t, s, http.MethodPost, "/v1/flow", flowSpecBody(t))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", w.Code, w.Body.String())
	}
	env := decodeJob(t, w)
	if env.ID == "" || env.State != jobs.StateSubmitted {
		t.Fatalf("submit envelope: %+v", env)
	}
	if env.Kind != jobs.KindFlow {
		t.Fatalf("submitted kind %q, want %q", env.Kind, jobs.KindFlow)
	}
	if got := w.Header().Get("Location"); got != "/v1/jobs/"+env.ID {
		t.Errorf("Location = %q", got)
	}

	final := pollDone(t, s, env.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("flow job = %s (error %q), want done", final.State, final.Error)
	}

	res := do(t, s, http.MethodGet, "/v1/jobs/"+env.ID+"/result", nil)
	if res.Code != http.StatusOK {
		t.Fatalf("result status %d: %s", res.Code, res.Body.String())
	}
	var rep xhybrid.FlowReport
	if err := json.Unmarshal(res.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.XMapDigest != want.XMapDigest {
		t.Errorf("served digest %s, want %s", rep.XMapDigest, want.XMapDigest)
	}
	if rep.TotalBits != want.TotalBits || rep.Partitions != want.Partitions {
		t.Errorf("served plan (%d bits, %d partitions), want (%d, %d)",
			rep.TotalBits, rep.Partitions, want.TotalBits, want.Partitions)
	}
	if !rep.Preserved {
		t.Error("served report's preservation verdict is false")
	}

	// Flow reports have no text rendering.
	if text := do(t, s, http.MethodGet, "/v1/jobs/"+env.ID+"/result?format=text", nil); text.Code != http.StatusBadRequest {
		t.Errorf("format=text on a flow result = %d, want 400", text.Code)
	}
}

func TestFlowAPIErrors(t *testing.T) {
	s, _ := newJobsServer(t, jobs.Config{})

	if w := do(t, s, http.MethodPost, "/v1/flow", []byte("not json")); w.Code != http.StatusBadRequest {
		t.Errorf("bad body = %d, want 400", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/flow", []byte(`{"cells":256,"chains":16,"surprise":1}`)); w.Code != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/flow", []byte(`{"cells":256,"chains":7,"xclusters":4}`)); w.Code != http.StatusBadRequest {
		t.Errorf("invalid spec = %d, want 400", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/flow?workers=frogs", flowSpecBody(t)); w.Code != http.StatusBadRequest {
		t.Errorf("bad workers = %d, want 400", w.Code)
	}

	// Without a job manager the route is absent.
	bare := newTestServer(t, Config{})
	if w := do(t, bare, http.MethodPost, "/v1/flow", flowSpecBody(t)); w.Code != http.StatusNotFound {
		t.Errorf("POST /v1/flow without spool = %d, want 404", w.Code)
	}
}
