package server

// Regression tests for the body-handling bug sweep: oversized bodies must
// be 413 on every body-reading endpoint (analyze used to mislabel them
// 400), and Content-Type text detection must follow RFC 9110
// case-insensitivity and ignore parameters (it used to be a raw
// case-sensitive prefix match).

import (
	"bytes"
	"net/http"
	"testing"

	"xhybrid"
)

// TestOversizedBody413 holds every body-reading endpoint to the same
// contract: a body past MaxBodyBytes is 413 Request Entity Too Large, not
// a 400 parse error. /v1/analyze used to fall into the 400 branch because
// it skipped the MaxBytesError check /v1/partition had.
func TestOversizedBody413(t *testing.T) {
	body := fixtureBody(t)
	cfg := Config{MaxBodyBytes: 16} // far below the fixture's size
	endpoints := []string{"/v1/partition", "/v1/analyze"}
	for _, ep := range endpoints {
		t.Run(ep, func(t *testing.T) {
			s := newTestServer(t, cfg)
			w := post(t, s, ep, body, nil)
			if w.Code != http.StatusRequestEntityTooLarge {
				t.Fatalf("%s with oversized body = %d, want 413 (body %s)", ep, w.Code, w.Body.String())
			}
		})
	}
	// Small bodies still parse (the limit, not the helper, decides).
	for _, ep := range endpoints {
		s := newTestServer(t, Config{})
		if w := post(t, s, ep+"?m=10&q=2", body, nil); w.Code != http.StatusOK {
			t.Fatalf("%s under the limit = %d: %s", ep, w.Code, w.Body.String())
		}
	}
}

// TestReadXMapContentTypeVariants locks the Content-Type dispatch to RFC
// 9110 semantics with a table over casing and parameter spellings. Before
// the mime.ParseMediaType fix, "Text/Plain; charset=utf-8" fell through
// to the JSON parser.
func TestReadXMapContentTypeVariants(t *testing.T) {
	x := xhybrid.PaperExample()
	var textBody bytes.Buffer
	if err := x.WriteText(&textBody); err != nil {
		t.Fatal(err)
	}
	jsonBody := fixtureBody(t)

	cases := []struct {
		name        string
		contentType string
		text        bool // which body format the server must expect
	}{
		{"lowercase text", "text/plain", true},
		{"mixed case text", "Text/Plain", true},
		{"upper case text", "TEXT/PLAIN", true},
		{"text with charset", "text/plain; charset=utf-8", true},
		{"mixed case with charset", "Text/Plain; Charset=UTF-8", true},
		{"text csv subtype", "text/csv", true},
		{"json", "application/json", false},
		{"json mixed case with charset", "Application/JSON; charset=utf-8", false},
		{"empty", "", false},
		{"unparsable media type", ";;;", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := jsonBody
			if tc.text {
				body = textBody.Bytes()
			}
			hdr := map[string]string{}
			if tc.contentType != "" {
				hdr["Content-Type"] = tc.contentType
			}
			s := newTestServer(t, Config{})
			w := post(t, s, "/v1/analyze", body, hdr)
			if w.Code != http.StatusOK {
				t.Fatalf("Content-Type %q with matching body = %d: %s", tc.contentType, w.Code, w.Body.String())
			}
		})
	}

	// The query parameter still forces text regardless of header.
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/analyze?input=text", textBody.Bytes(), map[string]string{"Content-Type": "application/octet-stream"})
	if w.Code != http.StatusOK {
		t.Fatalf("input=text override = %d: %s", w.Code, w.Body.String())
	}
}
