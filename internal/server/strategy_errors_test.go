package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"xhybrid"
	"xhybrid/internal/core"
	"xhybrid/internal/jobs"
)

// TestUnknownStrategy400Bodies locks the API contract for strategy typos:
// every submitting endpoint — synchronous /v1/partition, async /v1/jobs,
// and /v1/flow — answers 400 with a JSON error body that enumerates the
// full registry vocabulary, so a client can correct itself from the
// response alone.
func TestUnknownStrategy400Bodies(t *testing.T) {
	s, _ := newJobsServer(t, jobs.Config{})

	badFlow, err := json.Marshal(xhybrid.FlowSpec{
		Cells: 256, Chains: 16, Patterns: 64, MISRSize: 8, Q: 2,
		Strategy: "simulated-annealing",
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		target string
		body   []byte
	}{
		{"partition", "/v1/partition?m=10&q=2&strategy=simulated-annealing", fixtureBody(t)},
		{"jobs", "/v1/jobs?m=10&q=2&strategy=simulated-annealing", fixtureBody(t)},
		{"flow", "/v1/flow", badFlow},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, http.MethodPost, tc.target, tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", w.Code, w.Body.String())
			}
			var body struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
				t.Fatalf("400 body is not the JSON error envelope: %v (%s)", err, w.Body.String())
			}
			if !strings.Contains(body.Error, "unknown strategy") {
				t.Errorf("error %q does not say unknown strategy", body.Error)
			}
			for _, name := range core.StrategyVocabulary() {
				if !strings.Contains(body.Error, name) {
					t.Errorf("error %q does not enumerate %q", body.Error, name)
				}
			}
		})
	}
}

// TestStrategyAliasAccepted pins the compatibility half of the vocabulary
// contract: the legacy "greedy" spelling still submits fine on every
// surface and is canonicalized, not echoed.
func TestStrategyAliasAccepted(t *testing.T) {
	s, _ := newJobsServer(t, jobs.Config{})
	w := do(t, s, http.MethodPost, "/v1/jobs?m=10&q=2&strategy=greedy", fixtureBody(t))
	if w.Code != http.StatusAccepted {
		t.Fatalf("alias submit status %d: %s", w.Code, w.Body.String())
	}
	env := decodeJob(t, w)
	final := pollDone(t, s, env.ID)
	if final.Options.Strategy != "greedy-cost" {
		t.Fatalf("spooled strategy %q, want canonical greedy-cost", final.Options.Strategy)
	}
}
