package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"testing"

	"xhybrid"
)

func gzipped(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryAndGzipCacheHit is the regression test for the cache key: it
// must be a digest of the decoded in-memory map, so one entry serves the
// same design no matter which wire format — JSON, binary, gzipped either —
// the request arrived in.
func TestBinaryAndGzipCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	jsonBody := fixtureBody(t)
	x, err := xhybrid.ReadXLocations(bytes.NewReader(jsonBody))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := x.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}

	first := post(t, s, "/v1/partition?m=10&q=2", jsonBody, nil)
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("json post: %d, X-Cache %q", first.Code, first.Header().Get("X-Cache"))
	}
	cases := []struct {
		name string
		body []byte
		hdr  map[string]string
	}{
		{"binary sniffed", bin.Bytes(), nil},
		{"binary content-type", bin.Bytes(), map[string]string{"Content-Type": "application/octet-stream"}},
		{"binary gzip", gzipped(t, bin.Bytes()), map[string]string{"Content-Encoding": "gzip"}},
		{"json gzip", gzipped(t, jsonBody), map[string]string{"Content-Encoding": "gzip"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, "/v1/partition?m=10&q=2", tc.body, tc.hdr)
			if w.Code != http.StatusOK {
				t.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
			if got := w.Header().Get("X-Cache"); got != "hit" {
				t.Fatalf("X-Cache = %q, want hit (cache key must not depend on the wire format)", got)
			}
			var resp partitionResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			var firstResp partitionResponse
			if err := json.Unmarshal(first.Body.Bytes(), &firstResp); err != nil {
				t.Fatal(err)
			}
			if resp.Digest != firstResp.Digest {
				t.Fatalf("digest %s differs from JSON request's %s", resp.Digest, firstResp.Digest)
			}
		})
	}
	snap := s.rec.Snapshot()
	if misses := snap.CounterValue("server.cache.misses"); misses != 1 {
		t.Fatalf("cache misses = %d, want 1 (only the first request should compute)", misses)
	}
}

// The input= parameter forces a format regardless of sniffing, and the
// binary format works through /v1/analyze too.
func TestBinaryInputParam(t *testing.T) {
	s := newTestServer(t, Config{})
	x, err := xhybrid.ReadXLocations(bytes.NewReader(fixtureBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := x.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if w := post(t, s, "/v1/analyze?input=binary", bin.Bytes(), nil); w.Code != http.StatusOK {
		t.Fatalf("analyze binary: %d %s", w.Code, w.Body.String())
	}
	// Forcing input=json on a binary body must fail cleanly, not sniff.
	if w := post(t, s, "/v1/analyze?input=json", bin.Bytes(), nil); w.Code != http.StatusBadRequest {
		t.Fatalf("binary body as input=json: %d, want 400", w.Code)
	}
	if w := post(t, s, "/v1/analyze?input=nonsense", bin.Bytes(), nil); w.Code != http.StatusBadRequest {
		t.Fatalf("input=nonsense: %d, want 400", w.Code)
	}
}

func TestBodyEncodingErrors(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 2048})
	body := fixtureBody(t)
	if w := post(t, s, "/v1/analyze", body, map[string]string{"Content-Encoding": "br"}); w.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("unsupported encoding: %d, want 415", w.Code)
	}
	if w := post(t, s, "/v1/analyze", []byte("not gzip at all"), map[string]string{"Content-Encoding": "gzip"}); w.Code != http.StatusBadRequest {
		t.Fatalf("corrupt gzip: %d, want 400", w.Code)
	}
	// A small compressed body that inflates past MaxBodyBytes is 413, same
	// as an oversized plain body: the limit bounds the decoded input.
	bomb := gzipped(t, bytes.Repeat([]byte{' '}, 1<<20))
	if len(bomb) > 2048 {
		t.Fatalf("bomb is %d wire bytes, want under the limit", len(bomb))
	}
	if w := post(t, s, "/v1/analyze", bomb, map[string]string{"Content-Encoding": "gzip"}); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("decompression past limit: %d, want 413", w.Code)
	}
}
