// Package xcode implements weight-3 X-codes: linear spatial compactors
// whose input-to-output wiring tolerates unknown (X) inputs by
// construction, following the combinatorial X-code line of Fujiwara and
// Colbourn (arXiv:1508.00481; weight-3 instances per arXiv:1903.09788).
//
// Each of n compactor inputs is assigned a codeword — a 3-subset of the j
// output channels it fans out to — such that any two codewords share at
// most one channel. Under that packing condition a single X-carrying input
// corrupts exactly its own 3 channels, and any other input still drives at
// least 2 uncorrupted channels, so single errors stay observable next to a
// single X source (the (1,1) tolerance of the weight-3 construction).
// Overlapping two codewords in 2+ channels would instead let one X shadow
// another input entirely.
//
// The constructor realizes the packing as a transversal design: channels
// come in three groups of p (a prime with p² ≥ n), and input i = a·p + b
// gets the triple {a, p+b, 2p+((a+b) mod p)}. Two distinct triples agree in
// a group-0 point iff a=a', in group 1 iff b=b', in group 2 iff
// a+b ≡ a'+b' (mod p); any two of those equalities force the third, so
// distinct codewords intersect in at most one channel — the X-code
// condition, checked exhaustively by Verify. Channel count grows as
// 3·ceil(sqrt(n)), the asymptotic order of the optimal weight-3 codes.
//
// The package is pure combinatorics plus counting helpers; the partitioner
// consumes it through core's xcode-hybrid strategy, which scores candidate
// splits by how few channels of this compactor the plan's residual X's
// corrupt.
package xcode

import (
	"fmt"
	"math/bits"

	"xhybrid/internal/gf2"
	"xhybrid/internal/scan"
	"xhybrid/internal/xmap"
)

// Code is a weight-3 X-code over Channels output channels: a codeword
// (3-subset of channels) per input, any two codewords sharing at most one
// channel.
type Code struct {
	// Channels is the output channel count j = 3p.
	Channels int
	p        int
	words    [][3]int32
}

// Build constructs the weight-3 X-code for n inputs: the transversal-design
// triples over three groups of p channels, p the smallest prime with
// p² ≥ n. n must be positive.
func Build(n int) (*Code, error) {
	if n <= 0 {
		return nil, fmt.Errorf("xcode: non-positive input count %d", n)
	}
	p := 2
	for p*p < n || !isPrime(p) {
		p++
	}
	c := &Code{Channels: 3 * p, p: p, words: make([][3]int32, n)}
	for i := 0; i < n; i++ {
		a, b := i/p, i%p
		c.words[i] = [3]int32{int32(a), int32(p + b), int32(2*p + (a+b)%p)}
	}
	return c, nil
}

func isPrime(n int) bool {
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return n >= 2
}

// Inputs returns the number of inputs the code covers.
func (c *Code) Inputs() int { return len(c.words) }

// Word returns input i's codeword: the 3 output channels it drives.
func (c *Code) Word(i int) [3]int32 { return c.words[i] }

// Verify checks the X-code conditions exhaustively: every codeword has
// three distinct in-range channels, codewords are pairwise distinct, and —
// the packing condition — no channel pair appears in two codewords (which
// is equivalent to every pairwise codeword intersection being at most one
// channel).
func (c *Code) Verify() error {
	type pair struct{ a, b int32 }
	seen := make(map[pair]int, 3*len(c.words))
	for i, w := range c.words {
		if w[0] == w[1] || w[0] == w[2] || w[1] == w[2] {
			return fmt.Errorf("xcode: input %d has repeated channels %v", i, w)
		}
		for _, ch := range w {
			if ch < 0 || int(ch) >= c.Channels {
				return fmt.Errorf("xcode: input %d channel %d outside [0,%d)", i, ch, c.Channels)
			}
		}
		for _, pr := range [3]pair{{w[0], w[1]}, {w[0], w[2]}, {w[1], w[2]}} {
			if prev, dup := seen[pr]; dup {
				return fmt.Errorf("xcode: inputs %d and %d share channel pair (%d,%d)", prev, i, pr.a, pr.b)
			}
			seen[pr] = i
		}
	}
	return nil
}

// Residual counts the corrupted channel captures a partition feeds the
// X-canceling MISR when this code compacts scan chains onto channels:
// for every pattern in part, the number of channels driven by at least one
// chain holding an unmasked X. A cell is masked exactly when the
// partition's shared mask covers it — it is X under every member pattern —
// matching the engine's masking rule. The code must have been built for
// geom.Chains inputs.
func Residual(c *Code, m *xmap.XMap, geom scan.Geometry, part gf2.Vec) int {
	size := part.PopCount()
	if size == 0 {
		return 0
	}
	// The mask set: cells X under every pattern of the partition.
	masked := make([]bool, m.Cells())
	for _, cx := range m.XCells() {
		if cx.Patterns.PopCountAnd(part) == size {
			masked[cx.Cell] = true
		}
	}
	chanWords := make([]uint64, (c.Channels+63)/64)
	total := 0
	part.ForEach(func(p int) {
		touched := false
		for _, cell := range m.PatternCells(p) {
			if masked[cell] {
				continue
			}
			chain, _ := geom.CellCoord(cell)
			for _, ch := range c.words[chain] {
				chanWords[ch>>6] |= 1 << (uint(ch) & 63)
			}
			touched = true
		}
		if !touched {
			return
		}
		for i, w := range chanWords {
			total += bits.OnesCount64(w)
			chanWords[i] = 0
		}
	})
	return total
}

// PlanResidual sums Residual over a plan's partitions: the total corrupted
// channel captures entering the canceler under the X-code compactor.
func PlanResidual(c *Code, m *xmap.XMap, geom scan.Geometry, parts []gf2.Vec) int {
	total := 0
	for _, part := range parts {
		total += Residual(c, m, geom, part)
	}
	return total
}
