package xcode

import (
	"testing"

	"xhybrid/internal/gf2"
	"xhybrid/internal/scan"
	"xhybrid/internal/xmap"
)

// TestBuildProperties checks the transversal-design construction across a
// range of input counts: channel count 3p for the smallest prime p with
// p² ≥ n, one codeword per input, and Verify's packing conditions (three
// distinct channels, pairwise intersection ≤ 1) all hold.
func TestBuildProperties(t *testing.T) {
	wantP := map[int]int{1: 2, 4: 2, 5: 3, 9: 3, 10: 5, 25: 5, 26: 7, 49: 7, 50: 11, 121: 11, 122: 13, 512: 23}
	for n, p := range wantP {
		c, err := Build(n)
		if err != nil {
			t.Fatalf("Build(%d): %v", n, err)
		}
		if c.Channels != 3*p {
			t.Errorf("Build(%d).Channels = %d, want %d", n, c.Channels, 3*p)
		}
		if c.Inputs() != n {
			t.Errorf("Build(%d).Inputs() = %d", n, c.Inputs())
		}
		if err := c.Verify(); err != nil {
			t.Errorf("Build(%d): %v", n, err)
		}
	}
	for _, n := range []int{0, -3} {
		if _, err := Build(n); err == nil {
			t.Errorf("Build(%d) accepted", n)
		}
	}
}

// TestPairwiseIntersection brute-forces the defining X-code property on a
// full p² design, independently of Verify's pair-map shortcut.
func TestPairwiseIntersection(t *testing.T) {
	c, err := Build(49)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Inputs(); i++ {
		for j := i + 1; j < c.Inputs(); j++ {
			wi, wj := c.Word(i), c.Word(j)
			shared := 0
			for _, a := range wi {
				for _, b := range wj {
					if a == b {
						shared++
					}
				}
			}
			if shared > 1 {
				t.Fatalf("codewords %d=%v and %d=%v share %d channels", i, wi, j, wj, shared)
			}
		}
	}
}

// bruteResidual recomputes Residual from the definition: per member
// pattern, collect the distinct channels of chains holding an unmasked X
// (masked = X under every member pattern).
func bruteResidual(c *Code, m *xmap.XMap, geom scan.Geometry, part gf2.Vec) int {
	size := part.PopCount()
	total := 0
	part.ForEach(func(p int) {
		channels := map[int32]bool{}
		for _, cell := range m.PatternCells(p) {
			pats, _ := m.CellPatterns(cell)
			if pats.PopCountAnd(part) == size {
				continue // shared-masked cell
			}
			chain, _ := geom.CellCoord(cell)
			for _, ch := range c.Word(chain) {
				channels[ch] = true
			}
		}
		total += len(channels)
	})
	return total
}

// TestResidualAgainstBruteForce cross-checks the bitset-based Residual
// against the set-based definition on a randomized workload, including the
// masking rule (cells X under the whole partition don't corrupt channels).
func TestResidualAgainstBruteForce(t *testing.T) {
	const patterns, chains, cellsPerChain = 24, 10, 6
	geom := scan.MustGeometry(chains, cellsPerChain)
	m := xmap.New(patterns, geom.Cells())
	// Deterministic scatter plus one cell that is X everywhere (so any
	// partition masks it).
	for i := 0; i < 120; i++ {
		m.Add((i*7)%patterns, (i*13)%geom.Cells())
	}
	for p := 0; p < patterns; p++ {
		m.Add(p, 17)
	}
	c, err := Build(chains)
	if err != nil {
		t.Fatal(err)
	}
	parts := []gf2.Vec{
		gf2.NewVec(patterns), // empty
		gf2.NewVec(patterns),
		gf2.NewVec(patterns),
		gf2.NewVec(patterns),
	}
	parts[1].Set(3)
	for p := 0; p < patterns; p += 2 {
		parts[2].Set(p)
	}
	for p := 0; p < patterns; p++ {
		parts[3].Set(p)
	}
	planTotal := 0
	for i, part := range parts {
		want := bruteResidual(c, m, geom, part)
		if got := Residual(c, m, geom, part); got != want {
			t.Errorf("partition %d: Residual = %d, brute force = %d", i, got, want)
		}
		planTotal += want
	}
	if got := PlanResidual(c, m, geom, parts); got != planTotal {
		t.Errorf("PlanResidual = %d, want %d", got, planTotal)
	}
	if Residual(c, m, geom, parts[0]) != 0 {
		t.Error("empty partition has nonzero residual")
	}
}

// TestResidualBounds sanity-checks the counting range: a pattern with k
// X-chains corrupts between 3 (all triples overlapping is impossible past
// one chain, but one chain gives exactly 3) and min(3k, Channels) channels.
func TestResidualBounds(t *testing.T) {
	geom := scan.MustGeometry(8, 4)
	m := xmap.New(4, geom.Cells())
	m.Add(0, 0) // chain 0
	// Two member patterns, the X only under one of them — a one-pattern
	// partition would trivially shared-mask the cell and count nothing.
	part := gf2.NewVec(4)
	part.Set(0)
	part.Set(1)
	c, err := Build(8)
	if err != nil {
		t.Fatal(err)
	}
	if got := Residual(c, m, geom, part); got != 3 {
		t.Errorf("single X cell corrupts %d channels, want 3", got)
	}
	// Two X's on distinct chains in one pattern: 3+3 minus at most 1 overlap.
	m.Add(0, geom.Cells()-1) // last chain
	got := Residual(c, m, geom, part)
	if got < 5 || got > 6 {
		t.Errorf("two X chains corrupt %d channels, want 5 or 6", got)
	}
}
