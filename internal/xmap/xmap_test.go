package xmap

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"xhybrid/internal/gf2"
	"xhybrid/internal/logic"
	"xhybrid/internal/scan"
)

func TestAddHasTotal(t *testing.T) {
	m := New(8, 15)
	m.Add(0, 3)
	m.Add(4, 3)
	m.Add(1, 12)
	m.Add(1, 12) // duplicate adds are idempotent
	if !m.Has(0, 3) || !m.Has(4, 3) || !m.Has(1, 12) {
		t.Fatal("Has missing added entries")
	}
	if m.Has(2, 3) || m.Has(0, 0) {
		t.Fatal("Has reports spurious X")
	}
	if m.TotalX() != 3 {
		t.Fatalf("TotalX = %d, want 3", m.TotalX())
	}
	if m.NumXCells() != 2 {
		t.Fatalf("NumXCells = %d, want 2", m.NumXCells())
	}
}

func TestXCellsSortedAndCounts(t *testing.T) {
	m := New(4, 20)
	for _, c := range []int{19, 2, 7, 2} {
		m.Add(0, c)
	}
	m.Add(3, 7)
	cells := m.XCells()
	if len(cells) != 3 || cells[0].Cell != 2 || cells[1].Cell != 7 || cells[2].Cell != 19 {
		t.Fatalf("XCells order wrong: %+v", cells)
	}
	if cells[1].Count() != 2 {
		t.Fatalf("cell 7 count = %d, want 2", cells[1].Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, f := range []func(){
		func() { m.Add(2, 0) },
		func() { m.Add(-1, 0) },
		func() { m.Add(0, 2) },
		func() { m.Add(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPatternViews(t *testing.T) {
	m := New(3, 10)
	m.Add(0, 1)
	m.Add(0, 5)
	m.Add(2, 5)
	counts := m.PatternXCounts()
	if counts[0] != 2 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("PatternXCounts = %v", counts)
	}
	cells := m.PatternCells(0)
	if len(cells) != 2 || cells[0] != 1 || cells[1] != 5 {
		t.Fatalf("PatternCells(0) = %v", cells)
	}
	if m.PatternCells(1) != nil {
		t.Fatal("PatternCells(1) should be empty")
	}
}

func TestCellPatterns(t *testing.T) {
	m := New(5, 5)
	m.Add(1, 2)
	m.Add(4, 2)
	bits, ok := m.CellPatterns(2)
	if !ok || bits.PopCount() != 2 || !bits.Get(1) || !bits.Get(4) {
		t.Fatalf("CellPatterns wrong: %v %v", bits, ok)
	}
	if _, ok := m.CellPatterns(0); ok {
		t.Fatal("CellPatterns reported non-X cell")
	}
}

func TestCountIn(t *testing.T) {
	m := New(6, 4)
	for _, p := range []int{0, 2, 4} {
		m.Add(p, 1)
	}
	part := gf2.FromIndices(6, 0, 1, 2)
	if got := m.CountIn(1, part); got != 2 {
		t.Fatalf("CountIn = %d, want 2", got)
	}
	if got := m.CountIn(3, part); got != 0 {
		t.Fatalf("CountIn(non-X cell) = %d, want 0", got)
	}
}

func TestDensity(t *testing.T) {
	m := New(4, 5)
	m.Add(0, 0)
	m.Add(1, 1)
	if d := m.Density(); d != 2.0/20.0 {
		t.Fatalf("Density = %f", d)
	}
	if New(0, 0).Density() != 0 {
		t.Fatal("empty density must be 0")
	}
}

func TestFromResponses(t *testing.T) {
	g := scan.MustGeometry(2, 3)
	s := scan.NewResponseSet(g)
	r := scan.NewResponse(g) // all-X
	for c := 0; c < 2; c++ {
		for p := 0; p < 3; p++ {
			r.Set(c, p, logic.Zero)
		}
	}
	r.Set(0, 1, logic.X)
	r.Set(1, 2, logic.X)
	if err := s.Append(r); err != nil {
		t.Fatal(err)
	}
	m := FromResponses(s)
	if m.Patterns() != 1 || m.Cells() != 6 {
		t.Fatalf("dims %dx%d", m.Patterns(), m.Cells())
	}
	if m.TotalX() != 2 {
		t.Fatalf("TotalX = %d", m.TotalX())
	}
	if !m.Has(0, g.CellIndex(0, 1)) || !m.Has(0, g.CellIndex(1, 2)) {
		t.Fatal("X locations wrong")
	}
}

func TestCloneEqual(t *testing.T) {
	m := New(3, 3)
	m.Add(0, 0)
	m.Add(2, 1)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Add(1, 1)
	if m.Equal(c) {
		t.Fatal("clone shares storage or Equal broken")
	}
	if m.Equal(New(3, 4)) || m.Equal(New(4, 3)) {
		t.Fatal("Equal ignores dimensions")
	}
}

// Property: TotalX equals the sum of per-pattern counts, and per-cell counts.
func TestCountConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		np, nc := 1+r.Intn(20), 1+r.Intn(30)
		m := New(np, nc)
		n := r.Intn(100)
		for i := 0; i < n; i++ {
			m.Add(r.Intn(np), r.Intn(nc))
		}
		total := m.TotalX()
		sumP := 0
		for _, c := range m.PatternXCounts() {
			sumP += c
		}
		sumC := 0
		for _, c := range m.XCells() {
			sumC += c.Count()
		}
		return total == sumP && total == sumC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestLazySortInterleaved hammers the lazy reindex: sorted reads
// interleaved with out-of-order Adds must always see ascending order and
// a valid slot map, including resorting again after a read already
// restored order once.
func TestLazySortInterleaved(t *testing.T) {
	m := New(4, 100)
	checkSorted := func() {
		t.Helper()
		cells := m.XCells()
		for i := 1; i < len(cells); i++ {
			if cells[i-1].Cell >= cells[i].Cell {
				t.Fatalf("XCells not strictly ascending at %d: %+v", i, cells)
			}
		}
		for _, c := range cells {
			if !m.Has(0, c.Cell) {
				t.Fatalf("slot map stale for cell %d", c.Cell)
			}
		}
	}
	for round, batch := range [][]int{{90, 50, 10}, {5, 95, 45}, {44, 46, 4}} {
		for _, c := range batch {
			m.Add(0, c)
		}
		checkSorted()
		if got := m.PatternCells(0); len(got) != 3*(round+1) {
			t.Fatalf("round %d: PatternCells = %v", round, got)
		}
	}
	if m.NumXCells() != 9 || m.TotalX() != 9 {
		t.Fatalf("NumXCells = %d TotalX = %d, want 9, 9", m.NumXCells(), m.TotalX())
	}
}

// Property: insertion order does not matter.
func TestInsertionOrderIrrelevant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		np, nc := 1+r.Intn(10), 1+r.Intn(20)
		type pc struct{ p, c int }
		var adds []pc
		n := r.Intn(60)
		for i := 0; i < n; i++ {
			adds = append(adds, pc{r.Intn(np), r.Intn(nc)})
		}
		a := New(np, nc)
		for _, e := range adds {
			a.Add(e.p, e.c)
		}
		b := New(np, nc)
		perm := r.Perm(len(adds))
		for _, i := range perm {
			b.Add(adds[i].p, adds[i].c)
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// benchmarkAddCells loads n distinct cells through Add in the order given
// by cellAt and forces the one deferred sort with an XCells read.
func benchmarkAddCells(b *testing.B, n int, cellAt func(c int) int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New(1, n)
		for c := 0; c < n; c++ {
			m.Add(0, cellAt(c))
		}
		if cells := m.XCells(); cells[0].Cell != 0 || cells[n-1].Cell != n-1 {
			b.Fatal("map not sorted after load")
		}
	}
}

// BenchmarkAddDescending is the regression benchmark for the insertCell
// O(n^2): loading cells in descending order made every insert shift the
// whole suffix and rebuild its slot entries, so 10x the cells cost ~100x
// the time. With the lazy sort the load is O(n) plus one O(n log n) sort,
// and ns/op grows near-linearly with n across the sub-benchmarks.
func BenchmarkAddDescending(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchmarkAddCells(b, n, func(c int) int { return n - 1 - c })
		})
	}
}

// BenchmarkAddAscending is the already-sorted baseline (never triggers a
// sort); descending should track it to within the cost of one sort.
func BenchmarkAddAscending(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchmarkAddCells(b, n, func(c int) int { return c })
		})
	}
}

func TestIntersectingSlots(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := New(40, 200)
	for i := 0; i < 300; i++ {
		m.Add(r.Intn(40), r.Intn(200))
	}
	part := gf2.NewVec(40)
	for i := 0; i < 40; i++ {
		if r.Intn(3) == 0 {
			part.Set(i)
		}
	}
	// Reference: every slot whose cell has an in-partition X count > 0.
	var want []int32
	for s, c := range m.XCells() {
		if c.Patterns.PopCountAnd(part) > 0 {
			want = append(want, int32(s))
		}
	}
	got := m.IntersectingSlots(part, nil)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("IntersectingSlots(nil) = %v, want %v", got, want)
	}
	// Restricting to a superset candidate list must give the same answer, and
	// splitting the partition must keep children within the parent's slots.
	if again := m.IntersectingSlots(part, got); fmt.Sprint(again) != fmt.Sprint(want) {
		t.Fatalf("IntersectingSlots(within) = %v, want %v", again, want)
	}
	side := part.Clone()
	for i := 0; i < 40; i += 2 {
		side.Clear(i)
	}
	rest := part.Clone()
	rest.AndNot(side)
	sideSlots := m.IntersectingSlots(side, got)
	restSlots := m.IntersectingSlots(rest, got)
	if fmt.Sprint(sideSlots) != fmt.Sprint(m.IntersectingSlots(side, nil)) ||
		fmt.Sprint(restSlots) != fmt.Sprint(m.IntersectingSlots(rest, nil)) {
		t.Fatal("child slot lists derived from parent differ from full scans")
	}
	if empty := m.IntersectingSlots(gf2.NewVec(40), nil); empty != nil {
		t.Fatalf("empty partition intersects %v", empty)
	}
}

// SetCellPatterns must be indistinguishable from per-X Add accumulation,
// keep the slot map valid, and reject misuse.
func TestSetCellPatterns(t *testing.T) {
	byAdd := New(8, 12)
	byBulk := New(8, 12)
	install := map[int][]int{3: {1, 5, 7}, 0: {0}, 11: {2, 3, 4}}
	for cell, ps := range install {
		v := gf2.NewVec(8)
		for _, p := range ps {
			byAdd.Add(p, cell)
			v.Set(p)
		}
		byBulk.SetCellPatterns(cell, v)
	}
	if !byAdd.Equal(byBulk) {
		t.Fatal("bulk install diverged from per-X Add")
	}
	for cell, ps := range install {
		for _, p := range ps {
			if !byBulk.Has(p, cell) {
				t.Fatalf("missing X at p=%d cell=%d", p, cell)
			}
		}
	}
	for name, fn := range map[string]func(){
		"cell out of range":  func() { byBulk.SetCellPatterns(12, gf2.NewVec(8)) },
		"width mismatch":     func() { byBulk.SetCellPatterns(5, gf2.NewVec(9)) },
		"cell already there": func() { byBulk.SetCellPatterns(3, gf2.NewVec(8)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
