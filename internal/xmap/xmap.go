// Package xmap implements the sparse X-location map: for every scan cell
// that ever captures an unknown value, the set of test patterns under which
// it does. This is the only view of the output responses that the paper's
// correlation analysis, partitioning algorithm, and control-bit accounting
// need, and it stays small even for industrial designs because X-densities
// are low (fractions of a percent to a few percent).
//
// This package implements DESIGN.md §5.1: per-cell pattern bitsets plus
// per-pattern X-cell lists, with cells indexed chain-major
// (cell = chain*chainLen + position).
package xmap

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"xhybrid/internal/gf2"
	"xhybrid/internal/logic"
	"xhybrid/internal/scan"
)

// CellX records one X-capturing scan cell and the patterns under which it
// captures an X.
type CellX struct {
	// Cell is the flat chain-major cell index.
	Cell int
	// Patterns has bit p set iff the cell captures X under pattern p.
	Patterns gf2.Vec
}

// Count returns the number of patterns under which the cell captures an X.
func (c CellX) Count() int { return c.Patterns.PopCount() }

// XMap is the sparse pattern-by-cell X-location matrix.
type XMap struct {
	numPatterns int
	numCells    int
	// cells holds the X-capturing cells; ascending cell-index order is
	// restored lazily (see ensureSorted), so unsorted tracks whether an
	// out-of-order Add has happened since the last sort. unsorted is
	// atomic and the sort itself is mutex-guarded so that the first
	// concurrent readers after a build race neither the sort nor each
	// other; once sorted, every read path is lock-free again.
	cells    []CellX
	unsorted atomic.Bool
	sortMu   sync.Mutex
	// slot maps a cell index to its position in cells. It is maintained
	// eagerly and stays valid whether or not cells is currently sorted.
	slot map[int]int
}

// New returns an empty XMap for the given dimensions.
func New(numPatterns, numCells int) *XMap {
	if numPatterns < 0 || numCells < 0 {
		panic("xmap: negative dimension")
	}
	return &XMap{
		numPatterns: numPatterns,
		numCells:    numCells,
		slot:        make(map[int]int),
	}
}

// FromResponses builds an XMap from a captured response set.
func FromResponses(s *scan.ResponseSet) *XMap {
	m := New(s.Patterns(), s.Geom.Cells())
	for p, r := range s.Responses {
		for cell, v := range r.Values {
			if v == logic.X {
				m.Add(p, cell)
			}
		}
	}
	return m
}

// Patterns returns the number of test patterns.
func (m *XMap) Patterns() int { return m.numPatterns }

// Cells returns the total number of scan cells (X-capturing or not).
func (m *XMap) Cells() int { return m.numCells }

// Add marks cell as X under pattern p.
func (m *XMap) Add(p, cell int) {
	if p < 0 || p >= m.numPatterns {
		panic(fmt.Sprintf("xmap: pattern %d out of range [0,%d)", p, m.numPatterns))
	}
	if cell < 0 || cell >= m.numCells {
		panic(fmt.Sprintf("xmap: cell %d out of range [0,%d)", cell, m.numCells))
	}
	i, ok := m.slot[cell]
	if !ok {
		i = m.appendCell(cell)
	}
	m.cells[i].Patterns.Set(p)
}

// appendCell adds a fresh CellX entry at the end of cells. Keeping the
// slice sorted on every insert (the previous design) rebuilt the slot map
// for the whole suffix per new cell — O(n) per insert, O(n^2) to load a
// map in descending cell order, which dominated large FromResponses
// builds. Instead the entry is appended in O(1) and the ascending order
// that XCells and friends promise is restored once, on the next sorted
// read (ensureSorted). In-order builds never mark the map unsorted and
// never pay for a sort.
func (m *XMap) appendCell(cell int) int {
	i := len(m.cells)
	m.cells = append(m.cells, CellX{Cell: cell, Patterns: gf2.NewVec(m.numPatterns)})
	m.slot[cell] = i
	if i > 0 && m.cells[i-1].Cell > cell {
		m.unsorted.Store(true)
	}
	return i
}

// SetCellPatterns installs the complete pattern bitset of one cell in a
// single step, taking ownership of v (the caller must not mutate it
// afterwards). This is the bulk-load path of the binary wire decoder: one
// append per cell instead of one slot-map probe per X, and an
// ascending-cell caller (the decoder enforces ascending records) never
// marks the map unsorted, so no sort is ever paid. The cell must not
// already be present — per-X accumulation belongs to Add.
func (m *XMap) SetCellPatterns(cell int, v gf2.Vec) {
	if cell < 0 || cell >= m.numCells {
		panic(fmt.Sprintf("xmap: cell %d out of range [0,%d)", cell, m.numCells))
	}
	if v.Len() != m.numPatterns {
		panic(fmt.Sprintf("xmap: bitset width %d, want %d patterns", v.Len(), m.numPatterns))
	}
	if _, ok := m.slot[cell]; ok {
		panic(fmt.Sprintf("xmap: cell %d already present", cell))
	}
	i := len(m.cells)
	m.cells = append(m.cells, CellX{Cell: cell, Patterns: v})
	m.slot[cell] = i
	if i > 0 && m.cells[i-1].Cell > cell {
		m.unsorted.Store(true)
	}
}

// ensureSorted restores ascending cell order after out-of-order Adds. It
// mutates cells and slot, so it is double-check locked: readers that
// arrive while the map is still unsorted serialize on sortMu (the first
// one sorts, the rest see the done flag and fall through), and once the
// atomic flag is clear every read path is lock-free. Builds (Add) are
// still single-writer — only the read side is safe to fan out across
// goroutines, which is exactly how core's worker pool and the server's
// concurrent analyze handlers use a finished map.
func (m *XMap) ensureSorted() {
	if !m.unsorted.Load() {
		return
	}
	m.sortMu.Lock()
	defer m.sortMu.Unlock()
	if !m.unsorted.Load() {
		return
	}
	sort.Slice(m.cells, func(a, b int) bool { return m.cells[a].Cell < m.cells[b].Cell })
	for i, c := range m.cells {
		m.slot[c.Cell] = i
	}
	m.unsorted.Store(false)
}

// Has reports whether cell captures X under pattern p.
func (m *XMap) Has(p, cell int) bool {
	m.ensureSorted()
	i, ok := m.slot[cell]
	if !ok {
		return false
	}
	return m.cells[i].Patterns.Get(p)
}

// XCells returns the X-capturing cells in ascending cell-index order.
// The returned slice and its bitsets are shared; treat as read-only.
func (m *XMap) XCells() []CellX {
	m.ensureSorted()
	return m.cells
}

// NumXCells returns the number of cells that capture at least one X.
func (m *XMap) NumXCells() int { return len(m.cells) }

// CellPatterns returns the pattern bitset for a cell, or ok=false if the
// cell never captures an X. The bitset is shared; treat as read-only.
func (m *XMap) CellPatterns(cell int) (gf2.Vec, bool) {
	m.ensureSorted()
	i, ok := m.slot[cell]
	if !ok {
		return gf2.Vec{}, false
	}
	return m.cells[i].Patterns, true
}

// TotalX returns the total number of X values across all patterns.
func (m *XMap) TotalX() int {
	m.ensureSorted()
	n := 0
	for _, c := range m.cells {
		n += c.Patterns.PopCount()
	}
	return n
}

// PatternXCounts returns, for each pattern, the number of X's it captures.
func (m *XMap) PatternXCounts() []int {
	m.ensureSorted()
	counts := make([]int, m.numPatterns)
	for _, c := range m.cells {
		c.Patterns.ForEach(func(p int) { counts[p]++ })
	}
	return counts
}

// PatternCells returns the X-capturing cell indices of pattern p, ascending.
func (m *XMap) PatternCells(p int) []int {
	m.ensureSorted()
	var out []int
	for _, c := range m.cells {
		if c.Patterns.Get(p) {
			out = append(out, c.Cell)
		}
	}
	return out
}

// Density returns the fraction of all response bits that are X.
func (m *XMap) Density() float64 {
	total := m.numPatterns * m.numCells
	if total == 0 {
		return 0
	}
	return float64(m.TotalX()) / float64(total)
}

// Clone returns a deep copy (in sorted order, whatever the source's state).
func (m *XMap) Clone() *XMap {
	m.ensureSorted()
	c := New(m.numPatterns, m.numCells)
	c.cells = make([]CellX, len(m.cells))
	for i, ce := range m.cells {
		c.cells[i] = CellX{Cell: ce.Cell, Patterns: ce.Patterns.Clone()}
		c.slot[ce.Cell] = i
	}
	return c
}

// CountIn returns the number of patterns in the partition bitset under which
// cell captures an X. Returns 0 for cells that never capture X.
func (m *XMap) CountIn(cell int, partition gf2.Vec) int {
	m.ensureSorted()
	i, ok := m.slot[cell]
	if !ok {
		return 0
	}
	return m.cells[i].Patterns.PopCountAnd(partition)
}

// IntersectingSlots returns the slots (indices into XCells) of cells that
// capture an X under at least one pattern of the partition bitset, in
// ascending slot order. within restricts the scan to the given candidate
// slots (already ascending); nil means scan every X-capturing cell. Since a
// sub-partition can only intersect cells its parent partition intersects,
// callers can derive a child's slot list from its parent's, shrinking every
// later scan of the child to cells that actually matter.
func (m *XMap) IntersectingSlots(part gf2.Vec, within []int32) []int32 {
	m.ensureSorted()
	var out []int32
	if within == nil {
		for i := range m.cells {
			if m.cells[i].Patterns.PopCountAnd(part) > 0 {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, s := range within {
		if m.cells[s].Patterns.PopCountAnd(part) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// IntersectingSlotCounts is IntersectingSlots also returning each kept
// slot's in-partition X count — the popcount the filter spends anyway, which
// callers can bank: a cell is fully X in the partition exactly when its
// count equals the partition size, and any sub-partition's count is bounded
// by it.
func (m *XMap) IntersectingSlotCounts(part gf2.Vec, within []int32) (slots, counts []int32) {
	m.ensureSorted()
	add := func(s int32) {
		if n := m.cells[s].Patterns.PopCountAnd(part); n > 0 {
			slots = append(slots, s)
			counts = append(counts, int32(n))
		}
	}
	if within == nil {
		for i := range m.cells {
			add(int32(i))
		}
		return slots, counts
	}
	for _, s := range within {
		add(s)
	}
	return slots, counts
}

// Equal reports whether two maps have identical dimensions and X locations.
func (m *XMap) Equal(o *XMap) bool {
	if m.numPatterns != o.numPatterns || m.numCells != o.numCells || len(m.cells) != len(o.cells) {
		return false
	}
	m.ensureSorted()
	o.ensureSorted()
	for i, c := range m.cells {
		if c.Cell != o.cells[i].Cell || !c.Patterns.Equal(o.cells[i].Patterns) {
			return false
		}
	}
	return true
}
