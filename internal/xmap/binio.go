package xmap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary X-location wire format ("XMAPB", version 1). The encoder lives
// here, next to the map it serializes, so both the public facade
// (xhybrid.XLocations.WriteBinary) and the in-repo circuit flow
// (internal/flow, which digests extracted maps) share one canonical byte
// stream; the streaming decoder stays in the root package where the
// XLocations type it builds is defined. See binio.go at the repo root for
// the full format grammar.
const (
	// BinMagic is the 5-byte stream prefix.
	BinMagic = "XMAPB"
	// BinVersion is the current format version byte.
	BinVersion = 1
)

// WriteBinary serializes the map in the compact binary wire format for a
// design with the given scan geometry (chains × chainLen must equal
// m.Cells()). The encoding is canonical: equal maps produce byte-identical
// output regardless of build order — XCells is always ascending and gaps
// are derived from it — which is what lets the serving layer use the bytes
// as a cache key and the flow tests assert worker-count independence.
func WriteBinary(w io.Writer, m *XMap, chains, chainLen int) error {
	if chains*chainLen != m.Cells() {
		return fmt.Errorf("xmap: geometry %dx%d does not cover %d cells", chains, chainLen, m.Cells())
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(BinMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(BinVersion); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUv := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	cells := m.XCells()
	for _, v := range [...]uint64{
		uint64(chains), uint64(chainLen),
		uint64(m.Patterns()), uint64(len(cells)),
	} {
		if err := writeUv(v); err != nil {
			return err
		}
	}
	prevCell := -1
	for _, c := range cells {
		gap := c.Cell // first record: absolute
		if prevCell >= 0 {
			gap = c.Cell - prevCell
		}
		if err := writeUv(uint64(gap)); err != nil {
			return err
		}
		prevCell = c.Cell
		ps := c.Patterns.Indices()
		if err := writeUv(uint64(len(ps))); err != nil {
			return err
		}
		prevP := -1
		for _, p := range ps {
			gap := p
			if prevP >= 0 {
				gap = p - prevP
			}
			if err := writeUv(uint64(gap)); err != nil {
				return err
			}
			prevP = p
		}
	}
	return bw.Flush()
}
