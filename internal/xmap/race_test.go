package xmap

// Regression for the lazy-sort data race: ensureSorted used to mutate
// cells and slot unguarded on first sorted read, so two goroutines
// reading a freshly built out-of-order map raced (caught by -race, and
// capable of serving a reader a half-sorted view). The sort is now
// double-check locked behind an atomic flag. This test only proves its
// point under `go test -race` (CI's race job runs it); without the
// detector it still exercises the first-read stampede.

import (
	"sync"
	"testing"

	"xhybrid/internal/gf2"
)

// descendingMap builds a map whose Adds arrive in descending cell order,
// leaving it unsorted until the first sorted read.
func descendingMap(patterns, cells int) *XMap {
	m := New(patterns, cells)
	for cell := cells - 1; cell >= 0; cell-- {
		for p := 0; p < patterns; p += cell%3 + 1 {
			m.Add(p, cell)
		}
	}
	return m
}

func TestConcurrentReadersAfterUnsortedBuild(t *testing.T) {
	const patterns, cells = 64, 48
	part := gf2.NewVec(patterns)
	for p := 0; p < patterns; p += 2 {
		part.Set(p)
	}

	// Every reader combination races the sort and each other. Multiple
	// iterations restart from a fresh unsorted map so each run hits the
	// first-read stampede again.
	for iter := 0; iter < 20; iter++ {
		m := descendingMap(patterns, cells)
		var wg sync.WaitGroup
		readers := []func(){
			func() {
				xs := m.XCells()
				for i := 1; i < len(xs); i++ {
					if xs[i-1].Cell >= xs[i].Cell {
						t.Errorf("XCells out of order at %d: %d >= %d", i, xs[i-1].Cell, xs[i].Cell)
						return
					}
				}
			},
			func() {
				for cell := 0; cell < cells; cell++ {
					m.Has(0, cell)
				}
			},
			func() {
				for cell := 0; cell < cells; cell++ {
					if ps, ok := m.CellPatterns(cell); ok && ps.PopCount() == 0 {
						t.Errorf("cell %d has an empty pattern set", cell)
						return
					}
				}
			},
			func() { m.PatternCells(1) },
			func() { m.TotalX() },
			func() { m.PatternXCounts() },
			func() {
				for cell := 0; cell < cells; cell++ {
					m.CountIn(cell, part)
				}
			},
			func() { m.IntersectingSlots(part, nil) },
			func() { m.IntersectingSlotCounts(part, nil) },
		}
		for _, r := range readers {
			for k := 0; k < 2; k++ {
				wg.Add(1)
				go func(f func()) {
					defer wg.Done()
					f()
				}(r)
			}
		}
		wg.Wait()
	}
}

// TestConcurrentReadersSeeConsistentAnswers: the answers under the
// stampede must equal the answers from a map sorted serially.
func TestConcurrentReadersSeeConsistentAnswers(t *testing.T) {
	const patterns, cells = 32, 24
	want := descendingMap(patterns, cells)
	want.ensureSorted()

	m := descendingMap(patterns, cells)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cell := 0; cell < cells; cell++ {
				wp, wok := want.CellPatterns(cell)
				gp, gok := m.CellPatterns(cell)
				if wok != gok || (wok && !wp.Equal(gp)) {
					t.Errorf("cell %d: concurrent CellPatterns diverged", cell)
					return
				}
			}
			if m.TotalX() != want.TotalX() {
				t.Error("concurrent TotalX diverged")
			}
		}()
	}
	wg.Wait()
	if !m.Equal(want) {
		t.Error("map diverged after concurrent reads")
	}
}
