package xmap

import (
	"fmt"

	"xhybrid/internal/gf2"
)

// Union returns a new map with the X locations of both inputs, which must
// share dimensions. Useful for merging per-block analysis results or for
// superset-style reasoning.
func Union(a, b *XMap) (*XMap, error) {
	if a.numPatterns != b.numPatterns || a.numCells != b.numCells {
		return nil, fmt.Errorf("xmap: dimension mismatch %dx%d vs %dx%d",
			a.numPatterns, a.numCells, b.numPatterns, b.numCells)
	}
	out := a.Clone()
	for _, c := range b.cells {
		i, ok := out.slot[c.Cell]
		if !ok {
			i = out.appendCell(c.Cell)
		}
		out.cells[i].Patterns.Or(c.Patterns)
	}
	return out, nil
}

// Subtract returns a's X locations with b's removed (a \ b).
func Subtract(a, b *XMap) (*XMap, error) {
	if a.numPatterns != b.numPatterns || a.numCells != b.numCells {
		return nil, fmt.Errorf("xmap: dimension mismatch %dx%d vs %dx%d",
			a.numPatterns, a.numCells, b.numPatterns, b.numCells)
	}
	out := New(a.numPatterns, a.numCells)
	for _, c := range a.cells {
		bits := c.Patterns.Clone()
		if j, ok := b.slot[c.Cell]; ok {
			bits.AndNot(b.cells[j].Patterns)
		}
		if bits.IsZero() {
			continue
		}
		i := out.appendCell(c.Cell)
		out.cells[i].Patterns.Or(bits)
	}
	return out, nil
}

// SelectPatterns keeps only the X's of the patterns selected by part
// (same pattern numbering; deselected patterns become X-free).
func SelectPatterns(m *XMap, part gf2.Vec) (*XMap, error) {
	if part.Len() != m.numPatterns {
		return nil, fmt.Errorf("xmap: selector width %d, want %d", part.Len(), m.numPatterns)
	}
	out := New(m.numPatterns, m.numCells)
	for _, c := range m.cells {
		bits := c.Patterns.Clone()
		bits.And(part)
		if bits.IsZero() {
			continue
		}
		i := out.appendCell(c.Cell)
		out.cells[i].Patterns.Or(bits)
	}
	return out, nil
}
