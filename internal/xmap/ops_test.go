package xmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xhybrid/internal/gf2"
)

func randXMap(r *rand.Rand, np, nc, n int) *XMap {
	m := New(np, nc)
	for i := 0; i < n; i++ {
		m.Add(r.Intn(np), r.Intn(nc))
	}
	return m
}

func TestUnionSubtractProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		np, nc := 1+r.Intn(12), 1+r.Intn(20)
		a := randXMap(r, np, nc, r.Intn(60))
		b := randXMap(r, np, nc, r.Intn(60))
		u, err := Union(a, b)
		if err != nil {
			return false
		}
		// Union contains both.
		for _, m := range []*XMap{a, b} {
			for _, c := range m.XCells() {
				ok := true
				c.Patterns.ForEach(func(p int) {
					if !u.Has(p, c.Cell) {
						ok = false
					}
				})
				if !ok {
					return false
				}
			}
		}
		// |A ∪ B| = |A| + |B \ A|.
		bMinusA, err := Subtract(b, a)
		if err != nil {
			return false
		}
		if u.TotalX() != a.TotalX()+bMinusA.TotalX() {
			return false
		}
		// (A ∪ B) \ B == A \ B.
		l, err := Subtract(u, b)
		if err != nil {
			return false
		}
		rhs, err := Subtract(a, b)
		if err != nil {
			return false
		}
		return l.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectPatterns(t *testing.T) {
	m := New(4, 5)
	m.Add(0, 1)
	m.Add(1, 1)
	m.Add(3, 2)
	sel := gf2.FromIndices(4, 1, 3)
	out, err := SelectPatterns(m, sel)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalX() != 2 || !out.Has(1, 1) || !out.Has(3, 2) || out.Has(0, 1) {
		t.Fatalf("selection wrong: %d X's", out.TotalX())
	}
	// Selecting everything is identity; nothing empties the map.
	all := gf2.NewVec(4)
	all.SetAll()
	id, err := SelectPatterns(m, all)
	if err != nil {
		t.Fatal(err)
	}
	if !id.Equal(m) {
		t.Fatal("full selection not identity")
	}
	none, err := SelectPatterns(m, gf2.NewVec(4))
	if err != nil {
		t.Fatal(err)
	}
	if none.TotalX() != 0 {
		t.Fatal("empty selection kept X's")
	}
}

func TestOpsDimensionErrors(t *testing.T) {
	a := New(2, 2)
	b := New(3, 2)
	if _, err := Union(a, b); err == nil {
		t.Fatal("union accepted mismatch")
	}
	if _, err := Subtract(a, b); err == nil {
		t.Fatal("subtract accepted mismatch")
	}
	if _, err := SelectPatterns(a, gf2.NewVec(3)); err == nil {
		t.Fatal("select accepted bad width")
	}
}
