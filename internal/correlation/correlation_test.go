package correlation

import (
	"context"
	"math/rand"
	"testing"

	"xhybrid/internal/gf2"
	"xhybrid/internal/xmap"
)

// paperFigure4 builds the exact Figure 4 X-map: 8 patterns, 5 chains x 3
// cells. Cell indices are chain-major with chain length 3:
// SCc[p] (1-based in the paper) = (c-1)*3 + (p-1).
func paperFigure4() *xmap.XMap {
	m := xmap.New(8, 15)
	add := func(chain, pos int, patterns ...int) {
		cell := (chain-1)*3 + (pos - 1)
		for _, p := range patterns {
			m.Add(p-1, cell)
		}
	}
	add(1, 1, 1, 4, 5, 6)
	add(2, 1, 1, 4, 5, 6)
	add(3, 1, 1, 4, 5, 6)
	add(2, 3, 2, 3)
	add(4, 3, 1, 2, 3, 4, 5, 7, 8)
	add(5, 2, 1, 2, 4, 5, 7, 8)
	add(5, 3, 6)
	return m
}

func TestFigure4Analysis(t *testing.T) {
	m := paperFigure4()
	if m.TotalX() != 28 {
		t.Fatalf("TotalX = %d, want 28 (paper: 28 X's)", m.TotalX())
	}
	a := Analyze(m)
	if a.XCells != 7 {
		t.Fatalf("XCells = %d, want 7", a.XCells)
	}
	// "the most number of X's captured in one scan cell is 7"
	if a.MaxCellCount() != 7 {
		t.Fatalf("MaxCellCount = %d, want 7", a.MaxCellCount())
	}
	// "the largest number of scan cells having the same number of X's is 3
	// (3 scan cells capturing 4 X's)"
	lg, ok := a.LargestGroup()
	if !ok || lg.Count != 4 || lg.Size() != 3 {
		t.Fatalf("LargestGroup = %+v, want count 4 size 3", lg)
	}
	wantCells := []int{0, 3, 6} // first cells of SC1, SC2, SC3
	for i, c := range wantCells {
		if lg.Cells[i] != c {
			t.Fatalf("group cells = %v, want %v", lg.Cells, wantCells)
		}
	}
	// Those three cells are perfectly inter-correlated (same 4 patterns).
	if ic := a.InterCorrelation(lg); ic != 1.0 {
		t.Fatalf("InterCorrelation = %f, want 1.0", ic)
	}
}

func TestGroupsSortedBySizeThenCount(t *testing.T) {
	a := Analyze(paperFigure4())
	for i := 1; i < len(a.Groups); i++ {
		pr, cu := a.Groups[i-1], a.Groups[i]
		if cu.Size() > pr.Size() {
			t.Fatalf("groups not sorted by size: %v before %v", pr, cu)
		}
		if cu.Size() == pr.Size() && cu.Count > pr.Count {
			t.Fatalf("ties not broken by count: %v before %v", pr, cu)
		}
	}
	// Figure 4 groups: {4:3 cells}, then singles with counts 7, 6, 2, 1.
	if len(a.Groups) != 5 {
		t.Fatalf("got %d groups, want 5", len(a.Groups))
	}
	if a.Groups[1].Count != 7 || a.Groups[2].Count != 6 {
		t.Fatalf("singleton order wrong: %+v", a.Groups)
	}
}

func TestGroupsWithinPartition(t *testing.T) {
	m := paperFigure4()
	// Partition 1 = patterns {1,4,5,6} (0-based {0,3,4,5}).
	part := gf2.FromIndices(8, 0, 3, 4, 5)
	groups := GroupsWithin(m, part)
	// In-partition counts: SC1-3[1]: 4; SC4[3]: 3; SC5[2]: 3; SC5[3]: 1.
	var g3 *Group
	for i := range groups {
		if groups[i].Count == 3 {
			g3 = &groups[i]
		}
	}
	if g3 == nil || g3.Size() != 2 {
		t.Fatalf("count-3 group wrong: %+v", groups)
	}
	// SC4[3] = cell 11, SC5[2] = cell 13.
	if g3.Cells[0] != 11 || g3.Cells[1] != 13 {
		t.Fatalf("count-3 cells = %v, want [11 13]", g3.Cells)
	}
	// SC2[3] (cell 5) has zero X's in this partition and must be absent.
	for _, g := range groups {
		for _, c := range g.Cells {
			if c == 5 {
				t.Fatal("cell with zero in-partition X's included")
			}
		}
	}
}

func TestConcentration(t *testing.T) {
	// 10 cells, 100 patterns: one hot cell with 90 X's, 9 cells with 1 X.
	m := xmap.New(100, 10)
	for p := 0; p < 90; p++ {
		m.Add(p, 0)
	}
	for c := 1; c <= 9; c++ {
		m.Add(c, c)
	}
	a := Analyze(m)
	// 90% of X's (89.1 of 99) needs just the hot cell -> 1/10 of cells.
	if f := a.ConcentrationCellFraction(0.90); f != 0.1 {
		t.Fatalf("ConcentrationCellFraction(0.90) = %f, want 0.1", f)
	}
	// 100% needs all 10 X cells.
	if f := a.ConcentrationCellFraction(1.0); f != 1.0 {
		t.Fatalf("ConcentrationCellFraction(1.0) = %f, want 1.0", f)
	}
}

func TestConcentrationEmpty(t *testing.T) {
	a := Analyze(xmap.New(5, 5))
	if a.ConcentrationCellFraction(0.9) != 0 {
		t.Fatal("empty map concentration must be 0")
	}
	if _, ok := a.LargestGroup(); ok {
		t.Fatal("LargestGroup on empty map must report !ok")
	}
}

func TestSignatureClusters(t *testing.T) {
	// Mimic Section 3: a group of 5 cells with the same count; 3 share one
	// signature, 2 share another.
	m := xmap.New(10, 5)
	for _, c := range []int{0, 1, 2} {
		for _, p := range []int{1, 3, 5} {
			m.Add(p, c)
		}
	}
	for _, c := range []int{3, 4} {
		for _, p := range []int{2, 4, 6} {
			m.Add(p, c)
		}
	}
	a := Analyze(m)
	lg, _ := a.LargestGroup()
	if lg.Count != 3 || lg.Size() != 5 {
		t.Fatalf("group = %+v", lg)
	}
	clusters := a.SignatureClusters(lg)
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters, want 2", len(clusters))
	}
	if len(clusters[0].Cells) != 3 || len(clusters[1].Cells) != 2 {
		t.Fatalf("cluster sizes %d,%d want 3,2", len(clusters[0].Cells), len(clusters[1].Cells))
	}
	if got := a.InterCorrelation(lg); got != 3.0/5.0 {
		t.Fatalf("InterCorrelation = %f, want 0.6", got)
	}
}

// Property-ish check: group membership is a partition of X-capturing cells.
func TestGroupsPartitionXCells(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := xmap.New(30, 50)
	for i := 0; i < 300; i++ {
		m.Add(r.Intn(30), r.Intn(50))
	}
	a := Analyze(m)
	seen := make(map[int]bool)
	total := 0
	for _, g := range a.Groups {
		for _, c := range g.Cells {
			if seen[c] {
				t.Fatalf("cell %d in two groups", c)
			}
			seen[c] = true
			total++
			// Every member's count must equal the group count.
			bits, ok := m.CellPatterns(c)
			if !ok || bits.PopCount() != g.Count {
				t.Fatalf("cell %d count mismatch in group %d", c, g.Count)
			}
		}
	}
	if total != m.NumXCells() {
		t.Fatalf("groups cover %d cells, want %d", total, m.NumXCells())
	}
}

// GroupsWithinCells with any superset slot list must reproduce the full-scan
// grouping exactly, for random maps and random sub-partitions.
func TestGroupsWithinCellsMatchesFullScan(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		m := xmap.New(30, 120)
		for i := 0; i < 250; i++ {
			m.Add(r.Intn(30), r.Intn(120))
		}
		parent := gf2.NewVec(30)
		for i := 0; i < 30; i++ {
			if r.Intn(2) == 0 {
				parent.Set(i)
			}
		}
		child := parent.Clone()
		for i := 0; i < 30; i += 3 {
			child.Clear(i)
		}
		parentSlots := m.IntersectingSlots(parent, nil)
		for _, part := range []gf2.Vec{parent, child} {
			want := GroupsWithin(m, part)
			got := GroupsWithinCells(context.Background(), m, part, parentSlots, nil, nil)
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d groups via slots, want %d", trial, len(got), len(want))
			}
			for i := range want {
				if got[i].Count != want[i].Count || len(got[i].Cells) != len(want[i].Cells) {
					t.Fatalf("trial %d group %d: got %+v want %+v", trial, i, got[i], want[i])
				}
				for j := range want[i].Cells {
					if got[i].Cells[j] != want[i].Cells[j] {
						t.Fatalf("trial %d group %d cell %d differs", trial, i, j)
					}
				}
			}
		}
	}
}
