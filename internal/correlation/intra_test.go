package correlation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xhybrid/internal/scan"
	"xhybrid/internal/xmap"
)

func TestIntraRuns(t *testing.T) {
	g := scan.MustGeometry(2, 5) // cells 0-4 chain 0, 5-9 chain 1
	m := xmap.New(2, 10)
	// Pattern 0: run {1,2,3} in chain 0, isolated {7}.
	for _, c := range []int{1, 2, 3, 7} {
		m.Add(0, c)
	}
	// Pattern 1: {4} and {5} are adjacent ids but DIFFERENT chains — two runs.
	m.Add(1, 4)
	m.Add(1, 5)
	st := AnalyzeIntra(m, g)
	if st.TotalX != 6 {
		t.Fatalf("TotalX = %d", st.TotalX)
	}
	if st.Runs != 4 {
		t.Fatalf("Runs = %d, want 4 ({1,2,3}, {7}, {4}, {5})", st.Runs)
	}
	if st.MaxRunLength != 3 {
		t.Fatalf("MaxRunLength = %d, want 3", st.MaxRunLength)
	}
	// 3 of 6 X's sit in a multi-X run.
	if st.AdjacentFraction != 0.5 {
		t.Fatalf("AdjacentFraction = %f, want 0.5", st.AdjacentFraction)
	}
	if st.MeanRunLength() != 1.5 {
		t.Fatalf("MeanRunLength = %f, want 1.5", st.MeanRunLength())
	}
}

func TestIntraEmpty(t *testing.T) {
	st := AnalyzeIntra(xmap.New(3, 10), scan.MustGeometry(2, 5))
	if st.TotalX != 0 || st.Runs != 0 || st.AdjacentFraction != 0 || st.MeanRunLength() != 0 {
		t.Fatalf("empty stats wrong: %+v", st)
	}
}

// Property: runs <= TotalX, MaxRunLength <= ChainLen, fraction in [0,1],
// and sum of run contributions is consistent.
func TestIntraInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := scan.MustGeometry(1+r.Intn(6), 1+r.Intn(12))
		np := 1 + r.Intn(8)
		m := xmap.New(np, g.Cells())
		for i := 0; i < r.Intn(80); i++ {
			m.Add(r.Intn(np), r.Intn(g.Cells()))
		}
		st := AnalyzeIntra(m, g)
		if st.TotalX != m.TotalX() {
			return false
		}
		if st.Runs > st.TotalX || (st.TotalX > 0 && st.Runs == 0) {
			return false
		}
		if st.MaxRunLength > g.ChainLen {
			return false
		}
		return st.AdjacentFraction >= 0 && st.AdjacentFraction <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// A fully contiguous chain of X's is one run with AdjacentFraction 1.
func TestIntraFullChain(t *testing.T) {
	g := scan.MustGeometry(1, 8)
	m := xmap.New(1, 8)
	for c := 0; c < 8; c++ {
		m.Add(0, c)
	}
	st := AnalyzeIntra(m, g)
	if st.Runs != 1 || st.MaxRunLength != 8 || st.AdjacentFraction != 1.0 {
		t.Fatalf("stats = %+v", st)
	}
}
