package correlation

import (
	"xhybrid/internal/scan"
	"xhybrid/internal/xmap"
)

// IntraStats summarizes the *intra* (spatial) correlation of X values —
// [13]'s observation that X's "have identical or similar patterns occurring
// in contiguous and adjacent areas of scan chains": within a single
// pattern, X captures cluster into contiguous runs along the chains.
type IntraStats struct {
	// TotalX is the number of X values analyzed.
	TotalX int
	// Runs is the number of maximal contiguous X runs within chains,
	// summed over patterns.
	Runs int
	// MaxRunLength is the longest contiguous X run observed.
	MaxRunLength int
	// AdjacentFraction is the fraction of X's with at least one X neighbor
	// at an adjacent position of the same chain in the same pattern
	// (0 = fully scattered, approaching 1 = strongly spatially clustered).
	AdjacentFraction float64
}

// MeanRunLength returns TotalX / Runs.
func (s IntraStats) MeanRunLength() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.TotalX) / float64(s.Runs)
}

// AnalyzeIntra computes the spatial-correlation statistics of an X-map laid
// out on the given scan geometry (cells are chain-major, so consecutive
// cell indices within a chain are physically adjacent scan positions).
func AnalyzeIntra(m *xmap.XMap, g scan.Geometry) IntraStats {
	var st IntraStats
	adjacent := 0
	for p := 0; p < m.Patterns(); p++ {
		cells := m.PatternCells(p)
		st.TotalX += len(cells)
		runLen := 0
		var prev int
		for i, c := range cells {
			newRun := true
			if i > 0 && c == prev+1 && c/g.ChainLen == prev/g.ChainLen {
				newRun = false
			}
			if newRun {
				if runLen > st.MaxRunLength {
					st.MaxRunLength = runLen
				}
				if runLen > 1 {
					adjacent += runLen
				}
				st.Runs++
				runLen = 1
			} else {
				runLen++
			}
			prev = c
		}
		if runLen > st.MaxRunLength {
			st.MaxRunLength = runLen
		}
		if runLen > 1 {
			adjacent += runLen
		}
	}
	if st.TotalX > 0 {
		st.AdjacentFraction = float64(adjacent) / float64(st.TotalX)
	}
	return st
}
