// Package correlation implements the X-value correlation analysis of the
// paper's Section 3: per-scan-cell X counts, groups of cells sharing the
// same X count, concentration profiles ("90% of X's are captured in 4.9% of
// the scan cells"), and inter-correlation statistics (how many cells of an
// equal-count group capture their X's under the *same* set of test
// patterns). The partitioning algorithm in internal/core is driven by the
// grouping primitives defined here.
//
// This package implements step 1 of DESIGN.md §5.2: grouping a partition's
// X-capturing cells by in-partition X count, the candidate source for every
// split the partitioner considers.
package correlation

import (
	"context"
	"sort"

	"xhybrid/internal/gf2"
	"xhybrid/internal/obs"
	"xhybrid/internal/pool"
	"xhybrid/internal/xmap"
)

// Group is a set of scan cells that capture the same number of X's.
type Group struct {
	// Count is the shared per-cell X count.
	Count int
	// Cells are the member cell indices, ascending.
	Cells []int
}

// Size returns the number of cells in the group.
func (g Group) Size() int { return len(g.Cells) }

// Analysis is the result of X-value correlation analysis over a full X-map.
type Analysis struct {
	// Map is the analyzed X-map.
	Map *xmap.XMap
	// TotalX is the total number of X values.
	TotalX int
	// XCells is the number of cells capturing at least one X.
	XCells int
	// Groups are the equal-count groups, largest group first
	// (ties broken by higher count).
	Groups []Group
}

// Analyze performs the full-pattern-set correlation analysis.
func Analyze(m *xmap.XMap) *Analysis {
	all := gf2.NewVec(m.Patterns())
	all.SetAll()
	return &Analysis{
		Map:    m,
		TotalX: m.TotalX(),
		XCells: m.NumXCells(),
		Groups: GroupsWithin(m, all),
	}
}

// GroupsWithin groups the X-capturing cells by their X count restricted to
// the patterns selected by part. Cells with zero in-partition X's are
// omitted. Groups are sorted by size descending, ties by count descending;
// member cells ascend.
func GroupsWithin(m *xmap.XMap, part gf2.Vec) []Group {
	return GroupsWithinPool(m, part, nil)
}

// GroupsWithinPool is GroupsWithin with the per-cell X counting — the
// dominant cost at industrial scale — fanned out over pl (nil runs
// serially). Counts land in a cell-indexed slice and the grouping pass is
// serial, so the result is identical for any worker count.
func GroupsWithinPool(m *xmap.XMap, part gf2.Vec, pl *pool.Pool) []Group {
	return GroupsWithinObs(m, part, pl, nil)
}

// GroupsWithinObs is GroupsWithinPool recording the grouping work on rec:
// counter correlation.groupings counts invocations and
// correlation.cells.counted the per-cell X-count evaluations (the hot
// multiply of the partitioner). A nil rec disables recording.
func GroupsWithinObs(m *xmap.XMap, part gf2.Vec, pl *pool.Pool, rec *obs.Recorder) []Group {
	return GroupsWithinCtx(context.Background(), m, part, pl, rec)
}

// GroupsWithinCtx is GroupsWithinObs under a context: the per-cell counting
// loop — the partitioner's hot multiply — polls ctx every 64 cells and
// stops counting once it is done. A canceled call returns whatever partial
// grouping fell out; the caller (core.RunCtx) observes the cancellation
// itself and discards the round, so the partial result never escapes.
func GroupsWithinCtx(ctx context.Context, m *xmap.XMap, part gf2.Vec, pl *pool.Pool, rec *obs.Recorder) []Group {
	return GroupsWithinCells(ctx, m, part, nil, pl, rec)
}

// GroupsWithinCells is GroupsWithinCtx restricted to a candidate slot list
// (indices into m.XCells, ascending). Cells outside slots are treated as
// having zero in-partition X's — exactly the grouping GroupsWithinCtx
// produces when every omitted cell genuinely has none, which holds whenever
// slots is a superset of the cells intersecting part (e.g. the slot index of
// any ancestor partition). A nil slots scans every X-capturing cell. The
// caller is responsible for the superset property; the partitioner maintains
// it by deriving each child's slot list from its parent's.
func GroupsWithinCells(ctx context.Context, m *xmap.XMap, part gf2.Vec, slots []int32, pl *pool.Pool, rec *obs.Recorder) []Group {
	rec.Add("correlation.groupings", 1)
	cells := m.XCells()
	n := len(cells)
	if slots != nil {
		n = len(slots)
	}
	rec.Add("correlation.cells.counted", int64(n))
	done := ctx.Done()
	counts := make([]int, n)
	count := func(i int) {
		if i&63 == 0 && done != nil {
			select {
			case <-done:
				return
			default:
			}
		}
		slot := i
		if slots != nil {
			slot = int(slots[i])
		}
		counts[i] = cells[slot].Patterns.PopCountAnd(part)
	}
	if pl != nil {
		pl.ForEach(n, count)
	} else {
		for i := 0; i < n; i++ {
			count(i)
		}
	}
	byCount := make(map[int][]int)
	for i := 0; i < n; i++ {
		if counts[i] > 0 {
			slot := i
			if slots != nil {
				slot = int(slots[i])
			}
			byCount[counts[i]] = append(byCount[counts[i]], cells[slot].Cell)
		}
	}
	groups := make([]Group, 0, len(byCount))
	for count, cells := range byCount {
		sort.Ints(cells)
		groups = append(groups, Group{Count: count, Cells: cells})
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i].Cells) != len(groups[j].Cells) {
			return len(groups[i].Cells) > len(groups[j].Cells)
		}
		return groups[i].Count > groups[j].Count
	})
	return groups
}

// LargestGroup returns the group with the most member cells, or ok=false if
// there are no X-capturing cells.
func (a *Analysis) LargestGroup() (Group, bool) {
	if len(a.Groups) == 0 {
		return Group{}, false
	}
	return a.Groups[0], true
}

// MaxCellCount returns the largest per-cell X count, or 0 with no X's.
func (a *Analysis) MaxCellCount() int {
	max := 0
	for _, g := range a.Groups {
		if g.Count > max {
			max = g.Count
		}
	}
	return max
}

// ConcentrationCellFraction returns the smallest fraction of *all* scan
// cells (sorted by descending X count) that together capture at least
// xFraction of all X values. This reproduces statements like "90% of X's
// are captured in 4.9% of the scan cells".
func (a *Analysis) ConcentrationCellFraction(xFraction float64) float64 {
	if a.TotalX == 0 || a.Map.Cells() == 0 {
		return 0
	}
	counts := make([]int, 0, a.XCells)
	for _, c := range a.Map.XCells() {
		counts = append(counts, c.Count())
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	target := xFraction * float64(a.TotalX)
	acc := 0.0
	for i, n := range counts {
		acc += float64(n)
		if acc >= target {
			return float64(i+1) / float64(a.Map.Cells())
		}
	}
	return float64(len(counts)) / float64(a.Map.Cells())
}

// Cluster is a maximal set of cells with identical pattern signatures:
// every member captures its X's under exactly the same test patterns.
type Cluster struct {
	// Cells are the member cell indices, ascending.
	Cells []int
	// Patterns is the shared pattern signature.
	Patterns gf2.Vec
}

// SignatureClusters partitions the cells of an equal-count group by exact
// pattern signature, largest cluster first. This measures the paper's
// inter-correlation: in its industrial example, 172 of the 177 cells with
// 406 X's capture them under the same 406 patterns.
func (a *Analysis) SignatureClusters(g Group) []Cluster {
	bySig := make(map[string][]int)
	sigs := make(map[string]gf2.Vec)
	for _, cell := range g.Cells {
		bits, ok := a.Map.CellPatterns(cell)
		if !ok {
			continue
		}
		key := bits.String()
		bySig[key] = append(bySig[key], cell)
		if _, seen := sigs[key]; !seen {
			sigs[key] = bits
		}
	}
	clusters := make([]Cluster, 0, len(bySig))
	for key, cells := range bySig {
		sort.Ints(cells)
		clusters = append(clusters, Cluster{Cells: cells, Patterns: sigs[key]})
	}
	sort.Slice(clusters, func(i, j int) bool {
		if len(clusters[i].Cells) != len(clusters[j].Cells) {
			return len(clusters[i].Cells) > len(clusters[j].Cells)
		}
		return clusters[i].Cells[0] < clusters[j].Cells[0]
	})
	return clusters
}

// InterCorrelation summarizes how strongly an equal-count group is
// inter-correlated: the fraction of its cells belonging to the largest
// identical-signature cluster (1.0 = perfectly correlated).
func (a *Analysis) InterCorrelation(g Group) float64 {
	if g.Size() == 0 {
		return 0
	}
	clusters := a.SignatureClusters(g)
	if len(clusters) == 0 {
		return 0
	}
	return float64(len(clusters[0].Cells)) / float64(g.Size())
}
