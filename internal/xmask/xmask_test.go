package xmask

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xhybrid/internal/gf2"
	"xhybrid/internal/logic"
	"xhybrid/internal/scan"
	"xhybrid/internal/xmap"
)

// fig4 builds the paper's Figure 4 X-map (8 patterns, 5 chains x 3 cells).
func fig4() *xmap.XMap {
	m := xmap.New(8, 15)
	add := func(chain, pos int, patterns ...int) {
		cell := (chain-1)*3 + (pos - 1)
		for _, p := range patterns {
			m.Add(p-1, cell)
		}
	}
	add(1, 1, 1, 4, 5, 6)
	add(2, 1, 1, 4, 5, 6)
	add(3, 1, 1, 4, 5, 6)
	add(2, 3, 2, 3)
	add(4, 3, 1, 2, 3, 4, 5, 7, 8)
	add(5, 2, 1, 2, 4, 5, 7, 8)
	add(5, 3, 6)
	return m
}

func part(patterns ...int) gf2.Vec {
	v := gf2.NewVec(8)
	for _, p := range patterns {
		v.Set(p - 1)
	}
	return v
}

// Figure 6: Partition 2 = {2,3,7,8} masks only SC4[3] (4 X's); SC5[2] must
// NOT be masked (it has a non-X value under P3).
func TestFigure6Partition2Mask(t *testing.T) {
	m := fig4()
	mask, maskedX := PartitionMask(m, part(2, 3, 7, 8))
	sc4c3 := 3*3 + 2 // chain 4, pos 3, 0-based
	sc5c2 := 4*3 + 1
	if !mask.Masks(sc4c3) {
		t.Fatal("SC4[3] not masked in Partition 2")
	}
	if mask.Masks(sc5c2) {
		t.Fatal("SC5[2] masked in Partition 2 — would lose a non-X value from P3")
	}
	if maskedX != 4 {
		t.Fatalf("maskedX = %d, want 4", maskedX)
	}
	if mask.Cells.PopCount() != 1 {
		t.Fatalf("mask covers %d cells, want 1", mask.Cells.PopCount())
	}
	if err := VerifySafe(m, part(2, 3, 7, 8), mask); err != nil {
		t.Fatal(err)
	}
}

// Figure 6 full plan: partitions {2,3,7,8}, {1,4,5}, {6} mask 23 of 28 X's
// with 45 control bits versus 120 conventional.
func TestFigure6FullPlan(t *testing.T) {
	m := fig4()
	parts := []gf2.Vec{part(2, 3, 7, 8), part(1, 4, 5), part(6)}
	totalMasked, totalBits := 0, 0
	for _, p := range parts {
		mask, mx := PartitionMask(m, p)
		totalMasked += mx
		totalBits += mask.ControlBits()
		if err := VerifySafe(m, p, mask); err != nil {
			t.Fatal(err)
		}
	}
	if totalMasked != 23 {
		t.Fatalf("masked %d X's, want 23 (paper)", totalMasked)
	}
	if residual := m.TotalX() - totalMasked; residual != 5 {
		t.Fatalf("residual %d X's, want 5 (paper)", residual)
	}
	if totalBits != 45 {
		t.Fatalf("mask control bits = %d, want 45 (paper)", totalBits)
	}
	g := scan.MustGeometry(5, 3)
	if conv := ControlBitsPerPattern(g, 8); conv != 120 {
		t.Fatalf("conventional control bits = %d, want 120 (paper)", conv)
	}
}

func TestVerifySafeRejectsLossyMask(t *testing.T) {
	m := fig4()
	p := part(2, 3, 7, 8)
	mask := NewMask(15)
	mask.Cells.Set(4*3 + 1) // SC5[2]: X under {2,7,8} but non-X under 3
	if err := VerifySafe(m, p, mask); err == nil {
		t.Fatal("VerifySafe accepted a mask that loses observability")
	}
}

func TestThresholdMaskLossAccounting(t *testing.T) {
	m := fig4()
	p := part(2, 3, 7, 8)
	// Mask anything with >= 3/4 in-partition X's: catches SC4[3] (4) and
	// SC5[2] (3, losing one observable value).
	mask, maskedX, lost := ThresholdMask(m, p, 0.75)
	if !mask.Masks(3*3+2) || !mask.Masks(4*3+1) {
		t.Fatal("threshold mask missed expected cells")
	}
	if maskedX != 7 || lost != 1 {
		t.Fatalf("maskedX=%d lost=%d, want 7,1", maskedX, lost)
	}
	// With frac=1.0 the threshold mask degenerates to the safe mask.
	tm, tx, tl := ThresholdMask(m, p, 1.0)
	sm, sx := PartitionMask(m, p)
	if !tm.Cells.Equal(sm.Cells) || tx != sx || tl != 0 {
		t.Fatal("frac=1.0 threshold mask differs from safe partition mask")
	}
}

func TestApply(t *testing.T) {
	g := scan.MustGeometry(2, 2)
	r := scan.NewResponse(g)
	r.Set(0, 0, logic.One)
	r.Set(0, 1, logic.X)
	r.Set(1, 0, logic.Zero)
	r.Set(1, 1, logic.X)
	mask := NewMask(4)
	mask.Cells.Set(g.CellIndex(0, 1))
	out := mask.Apply(r)
	if out.At(0, 1) != logic.Zero {
		t.Fatal("masked cell not forced to 0")
	}
	if out.At(0, 0) != logic.One || out.At(1, 1) != logic.X {
		t.Fatal("unmasked cells altered")
	}
	if r.At(0, 1) != logic.X {
		t.Fatal("Apply mutated its input")
	}
}

func TestApplyWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMask(3).Apply(scan.NewResponse(scan.MustGeometry(2, 2)))
}

func TestConventionalPerPattern(t *testing.T) {
	m := fig4()
	plan := ConventionalPerPattern(m)
	if plan.ControlBits != 120 {
		t.Fatalf("ControlBits = %d, want 120", plan.ControlBits)
	}
	if plan.MaskedX != 28 {
		t.Fatalf("MaskedX = %d, want 28 (all X's)", plan.MaskedX)
	}
	// Pattern 1 (0-based 0) has X's at SC1[1], SC2[1], SC3[1], SC4[3], SC5[2].
	p0 := plan.Masks[0]
	if p0.Cells.PopCount() != 5 {
		t.Fatalf("pattern 1 mask covers %d cells, want 5", p0.Cells.PopCount())
	}
	for _, cell := range []int{0, 3, 6, 11, 13} {
		if !p0.Masks(cell) {
			t.Fatalf("pattern 1 mask missing cell %d", cell)
		}
	}
}

// Property: PartitionMask never loses observability and removes exactly
// maskedCells * |partition| X's.
func TestPartitionMaskSafetyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		np, nc := 1+r.Intn(16), 1+r.Intn(30)
		m := xmap.New(np, nc)
		for i := 0; i < r.Intn(150); i++ {
			m.Add(r.Intn(np), r.Intn(nc))
		}
		p := gf2.NewVec(np)
		for i := 0; i < np; i++ {
			if r.Intn(2) == 1 {
				p.Set(i)
			}
		}
		mask, maskedX := PartitionMask(m, p)
		if VerifySafe(m, p, mask) != nil {
			return false
		}
		return maskedX == mask.Cells.PopCount()*p.PopCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestChainMask(t *testing.T) {
	// 2 chains x 2 cells, 3 patterns; chain 0 fully X everywhere, chain 1
	// only partially.
	m := xmap.New(3, 4)
	for p := 0; p < 3; p++ {
		m.Add(p, 0)
		m.Add(p, 1)
	}
	m.Add(0, 2)
	g := scan.MustGeometry(2, 2)
	part := gf2.NewVec(3)
	part.SetAll()
	chains, maskedX, bits := ChainMask(m, g, part)
	if len(chains) != 1 || chains[0] != 0 {
		t.Fatalf("masked chains = %v, want [0]", chains)
	}
	if maskedX != 6 {
		t.Fatalf("maskedX = %d, want 6", maskedX)
	}
	if bits != 2 {
		t.Fatalf("controlBits = %d, want 2 (one per chain)", bits)
	}
	// Per-cell masking on the same partition removes at least as many X's.
	_, cellMaskedX := PartitionMask(m, part)
	if cellMaskedX < maskedX {
		t.Fatalf("cell masking removed fewer X's (%d) than chain masking (%d)", cellMaskedX, maskedX)
	}
	// Empty partition masks nothing but still costs the control word.
	none, mx, bits2 := ChainMask(m, g, gf2.NewVec(3))
	if none != nil || mx != 0 || bits2 != 2 {
		t.Fatal("empty partition chain mask wrong")
	}
}

func TestPartitionMaskEmptyPartition(t *testing.T) {
	m := fig4()
	mask, mx := PartitionMask(m, gf2.NewVec(8))
	if mx != 0 || mask.Cells.PopCount() != 0 {
		t.Fatal("empty partition must mask nothing")
	}
}
