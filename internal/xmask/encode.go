package xmask

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Mask-image compression (an extension beyond the paper): partition masks
// are extremely sparse — a handful of set bits out of tens of thousands of
// cells — so the raw chainLen*chains image the paper's accounting charges
// per partition is compressible by orders of magnitude if the design adds
// an on-chip decompressor in front of the mask registers. Two schemes are
// modeled: delta-gap varint coding and a plain sparse index list.

// EncodeGapVarint encodes a mask as the varint-coded gaps between
// consecutive set cells (first gap from -1), preceded by a varint count.
func EncodeGapVarint(m Mask) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	idx := m.Cells.Indices()
	n := binary.PutUvarint(tmp[:], uint64(len(idx)))
	buf = append(buf, tmp[:n]...)
	prev := -1
	for _, c := range idx {
		n := binary.PutUvarint(tmp[:], uint64(c-prev))
		buf = append(buf, tmp[:n]...)
		prev = c
	}
	return buf
}

// DecodeGapVarint reverses EncodeGapVarint for a mask over numCells cells.
func DecodeGapVarint(data []byte, numCells int) (Mask, error) {
	m := NewMask(numCells)
	count, k := binary.Uvarint(data)
	if k <= 0 {
		return Mask{}, fmt.Errorf("xmask: truncated mask header")
	}
	data = data[k:]
	prev := -1
	for i := uint64(0); i < count; i++ {
		gap, k := binary.Uvarint(data)
		if k <= 0 {
			return Mask{}, fmt.Errorf("xmask: truncated mask body at index %d", i)
		}
		data = data[k:]
		cell := prev + int(gap)
		if cell < 0 || cell >= numCells {
			return Mask{}, fmt.Errorf("xmask: decoded cell %d out of range", cell)
		}
		m.Cells.Set(cell)
		prev = cell
	}
	return m, nil
}

// SparseIndexBits returns the control-bit volume of a plain sparse list:
// a cell-count header plus ceil(log2(numCells)) bits per masked cell.
func SparseIndexBits(m Mask, numCells int) int {
	w := bits.Len(uint(numCells - 1))
	if numCells <= 1 {
		w = 1
	}
	return w + w*m.Cells.PopCount()
}

// EncodingComparison reports the raw vs compressed volume of a mask set.
type EncodingComparison struct {
	// RawBits is the paper's accounting: numCells per mask.
	RawBits int
	// GapVarintBits is 8 * len(EncodeGapVarint(...)) summed over masks.
	GapVarintBits int
	// SparseIndexBits is the sparse-list volume summed over masks.
	SparseIndexBits int
}

// CompareEncodings sizes a set of partition masks under each encoding.
func CompareEncodings(masks []Mask, numCells int) EncodingComparison {
	var c EncodingComparison
	for _, m := range masks {
		c.RawBits += numCells
		c.GapVarintBits += 8 * len(EncodeGapVarint(m))
		c.SparseIndexBits += SparseIndexBits(m, numCells)
	}
	return c
}
