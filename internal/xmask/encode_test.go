package xmask

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGapVarintRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5000)
		m := NewMask(n)
		for i := 0; i < r.Intn(40); i++ {
			m.Cells.Set(r.Intn(n))
		}
		enc := EncodeGapVarint(m)
		dec, err := DecodeGapVarint(enc, n)
		if err != nil {
			return false
		}
		return dec.Cells.Equal(m.Cells)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGapVarintEmptyMask(t *testing.T) {
	m := NewMask(100)
	enc := EncodeGapVarint(m)
	if len(enc) != 1 {
		t.Fatalf("empty mask encodes to %d bytes, want 1", len(enc))
	}
	dec, err := DecodeGapVarint(enc, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Cells.PopCount() != 0 {
		t.Fatal("decoded bits from empty mask")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeGapVarint(nil, 10); err == nil {
		t.Fatal("accepted empty input")
	}
	// Header says 3 entries but body is empty.
	if _, err := DecodeGapVarint([]byte{3}, 10); err == nil {
		t.Fatal("accepted truncated body")
	}
	// Gap walks past numCells.
	if _, err := DecodeGapVarint([]byte{1, 200}, 10); err == nil {
		t.Fatal("accepted out-of-range cell")
	}
}

func TestSparseIndexBits(t *testing.T) {
	m := NewMask(1024) // 10-bit indices
	m.Cells.Set(5)
	m.Cells.Set(900)
	if got := SparseIndexBits(m, 1024); got != 10+2*10 {
		t.Fatalf("SparseIndexBits = %d, want 30", got)
	}
	if got := SparseIndexBits(NewMask(1), 1); got != 1 {
		t.Fatalf("degenerate = %d", got)
	}
}

func TestCompareEncodingsSparseMasksCompressWell(t *testing.T) {
	n := 36075 // CKT-B cell count
	masks := make([]Mask, 7)
	r := rand.New(rand.NewSource(3))
	for i := range masks {
		masks[i] = NewMask(n)
		for j := 0; j < 700; j++ { // cluster-sized masks
			masks[i].Cells.Set(r.Intn(n))
		}
	}
	c := CompareEncodings(masks, n)
	if c.RawBits != 7*n {
		t.Fatalf("RawBits = %d", c.RawBits)
	}
	if c.GapVarintBits >= c.RawBits/4 {
		t.Fatalf("gap varint %d not <4x smaller than raw %d", c.GapVarintBits, c.RawBits)
	}
	if c.SparseIndexBits >= c.RawBits {
		t.Fatalf("sparse index %d not smaller than raw %d", c.SparseIndexBits, c.RawBits)
	}
}
