// Package xmask implements the X-masking architecture of the paper's
// Figure 1: AND gates placed at the inputs of the output response compactor,
// driven by control bits, force selected scan-cell values to a constant
// before they reach the MISR.
//
// Two mask-synthesis styles are provided:
//
//   - Conventional per-pattern masking [5]: one control bit per scan cell
//     per pattern (chainLen * chains * patterns total), masking exactly the
//     X cells of every pattern.
//   - Per-partition shared masking (the paper's proposal): one control bit
//     per scan cell per *partition*; a cell is masked only if it captures an
//     X under every pattern of the partition, so no observable value is
//     ever lost and fault coverage is preserved by construction.
//
// This package implements the masking rule of DESIGN.md §5.2 (a cell is
// masked iff its in-partition X count equals the partition size) and the
// fault-coverage guarantee of §5.4 (VerifySafe refuses to cover any
// observable bit).
package xmask

import (
	"fmt"

	"xhybrid/internal/gf2"
	"xhybrid/internal/logic"
	"xhybrid/internal/scan"
	"xhybrid/internal/xmap"
)

// Mask is one mask word: a bit per scan cell, set = masked (AND gate forces
// the cell's value to 0 on its way into the compactor).
type Mask struct {
	// Cells has bit c set iff cell c is masked.
	Cells gf2.Vec
}

// NewMask returns an all-pass mask over numCells cells.
func NewMask(numCells int) Mask { return Mask{Cells: gf2.NewVec(numCells)} }

// ControlBits returns the tester data volume of this mask: one bit per cell.
func (m Mask) ControlBits() int { return m.Cells.Len() }

// Masks reports whether cell is masked.
func (m Mask) Masks(cell int) bool { return m.Cells.Get(cell) }

// Apply returns a copy of the response with every masked cell forced to 0
// (the AND-gate output for a mask bit of 0 in Figure 1).
func (m Mask) Apply(r scan.Response) scan.Response {
	if r.Geom.Cells() != m.Cells.Len() {
		panic(fmt.Sprintf("xmask: mask width %d vs %d cells", m.Cells.Len(), r.Geom.Cells()))
	}
	out := r.Clone()
	m.Cells.ForEach(func(c int) { out.Values[c] = logic.Zero })
	return out
}

// PartitionMask synthesizes the shared mask for the patterns selected by
// part: a cell is masked iff it captures X under *every* pattern in the
// partition. It returns the mask and the number of X values it removes
// (maskedCells * |part|).
func PartitionMask(m *xmap.XMap, part gf2.Vec) (Mask, int) {
	if part.Len() != m.Patterns() {
		panic(fmt.Sprintf("xmask: partition width %d vs %d patterns", part.Len(), m.Patterns()))
	}
	size := part.PopCount()
	mask := NewMask(m.Cells())
	maskedX := 0
	if size == 0 {
		return mask, 0
	}
	for _, c := range m.XCells() {
		if c.Patterns.PopCountAnd(part) == size {
			mask.Cells.Set(c.Cell)
			maskedX += size
		}
	}
	return mask, maskedX
}

// VerifySafe checks the paper's fault-coverage guarantee for a mask used
// with a partition: no masked cell may have a known (non-X) value under any
// pattern of the partition. PartitionMask output always satisfies this;
// VerifySafe guards externally supplied masks.
func VerifySafe(m *xmap.XMap, part gf2.Vec, mask Mask) error {
	size := part.PopCount()
	var err error
	mask.Cells.ForEach(func(cell int) {
		if err != nil {
			return
		}
		if m.CountIn(cell, part) != size {
			err = fmt.Errorf("xmask: cell %d is masked but has a non-X value in the partition (would lose observability)", cell)
		}
	})
	return err
}

// ThresholdMask is the deliberately lossy variant used for ablation: it
// masks any cell whose in-partition X fraction is at least frac, even if
// that destroys observable values. It returns the mask, the X values
// removed, and the number of observable (non-X) values lost.
func ThresholdMask(m *xmap.XMap, part gf2.Vec, frac float64) (Mask, int, int) {
	size := part.PopCount()
	mask := NewMask(m.Cells())
	maskedX, lost := 0, 0
	if size == 0 {
		return mask, 0, 0
	}
	for _, c := range m.XCells() {
		n := c.Patterns.PopCountAnd(part)
		if float64(n) >= frac*float64(size) && n > 0 {
			mask.Cells.Set(c.Cell)
			maskedX += n
			lost += size - n
		}
	}
	return mask, maskedX, lost
}

// ChainMask is the coarse-granularity ablation variant: one control bit per
// scan *chain* per partition (instead of per cell). A chain may be masked
// only if every one of its cells captures X under every pattern of the
// partition, so the no-observability-loss guarantee still holds — but far
// fewer X's qualify. Returns the set of masked chains, the X's removed, and
// the control bits (= number of chains).
func ChainMask(m *xmap.XMap, g scan.Geometry, part gf2.Vec) (maskedChains []int, maskedX, controlBits int) {
	size := part.PopCount()
	controlBits = g.Chains
	if size == 0 {
		return nil, 0, controlBits
	}
	fullCells := make(map[int]bool)
	for _, c := range m.XCells() {
		if c.Patterns.PopCountAnd(part) == size {
			fullCells[c.Cell] = true
		}
	}
	for chain := 0; chain < g.Chains; chain++ {
		all := true
		for pos := 0; pos < g.ChainLen; pos++ {
			if !fullCells[g.CellIndex(chain, pos)] {
				all = false
				break
			}
		}
		if all {
			maskedChains = append(maskedChains, chain)
			maskedX += g.ChainLen * size
		}
	}
	return maskedChains, maskedX, controlBits
}

// PerPatternPlan is the conventional X-masking scheme [5]: an exact mask
// for every pattern.
type PerPatternPlan struct {
	// Masks holds one exact mask per pattern.
	Masks []Mask
	// ControlBits is chainLen * chains * patterns.
	ControlBits int
	// MaskedX is the number of X's removed (all of them).
	MaskedX int
}

// ConventionalPerPattern builds the per-pattern plan from an X-map.
func ConventionalPerPattern(m *xmap.XMap) PerPatternPlan {
	plan := PerPatternPlan{Masks: make([]Mask, m.Patterns())}
	for p := 0; p < m.Patterns(); p++ {
		plan.Masks[p] = NewMask(m.Cells())
	}
	for _, c := range m.XCells() {
		c.Patterns.ForEach(func(p int) {
			plan.Masks[p].Cells.Set(c.Cell)
			plan.MaskedX++
		})
	}
	plan.ControlBits = m.Cells() * m.Patterns()
	return plan
}

// ControlBitsPerPattern returns the paper's X-masking-only control-bit
// volume: longest chain length * number of chains * number of patterns.
func ControlBitsPerPattern(g scan.Geometry, patterns int) int {
	return g.Cells() * patterns
}
