package flow

import (
	"context"
	"strings"
	"sync"
	"testing"

	"xhybrid/internal/atpg"
	"xhybrid/internal/core"
	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
	"xhybrid/internal/scan"
	"xhybrid/internal/sim"
	"xhybrid/internal/xmap"
)

// testSpec is the small deterministic pipeline spec the tests share: big
// enough for real X structure and more than one 64-pattern simulation
// block, small enough to run in well under a second.
func testSpec() Spec {
	return Spec{
		Cells:       256,
		Chains:      16,
		XClusters:   8,
		CircuitSeed: 5,
		StimSeed:    9,
		Patterns:    96,
		MISRSize:    8,
		Q:           2,
		Strategy:    "greedy",
	}
}

// goldenXMapDigest is the sha256 of testSpec's canonical XMAPB encoding.
// It pins the whole front half of the pipeline — circuit generation, ATPG,
// three-valued simulation and X-map extraction — to an exact artifact: any
// unintended change to any of those stages moves this digest.
const goldenXMapDigest = "6a4532c11fbf20a726c587792122598afc28a331f8f9fd1b44d8cdf907c6870f"

func TestRunSpecEndToEnd(t *testing.T) {
	spec := testSpec()
	spec.FaultSample = 60
	spec.FaultSeed = 3
	var mu sync.Mutex
	var stages []string
	rep, err := RunSpec(context.Background(), spec, RunConfig{OnStage: func(name string) {
		mu.Lock()
		stages = append(stages, name)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	progress := 0
	for _, s := range stages {
		if strings.HasPrefix(s, "faultsim ") && strings.HasSuffix(s, "/60") {
			progress++
		}
	}
	if progress == 0 {
		t.Fatalf("no per-batch faultsim progress on OnStage; saw %v", stages)
	}
	if rep.TotalX == 0 || rep.XCells == 0 {
		t.Fatal("pipeline extracted no X's; the spec should produce X structure")
	}
	if !rep.Preserved {
		t.Fatalf("end-to-end preservation verdict false: replay %+v coverage %+v", rep.Replay, rep.Coverage)
	}
	if rep.Replay.ObservableMasked != 0 {
		t.Fatalf("masks destroyed %d observable captures", rep.Replay.ObservableMasked)
	}
	if rep.Replay.MaskedX != rep.MaskedX {
		t.Fatalf("replayed MaskedX %d != accounting %d", rep.Replay.MaskedX, rep.MaskedX)
	}
	if rep.Replay.Halts > rep.PlannedHalts {
		t.Fatalf("replayed %d halts exceed planned budget %d", rep.Replay.Halts, rep.PlannedHalts)
	}
	if rep.Coverage == nil {
		t.Fatal("FaultSample > 0 but no coverage leg in the report")
	}
	if !rep.Coverage.Preserved || rep.Coverage.HybridDetected != rep.Coverage.BaselineDetected {
		t.Fatalf("coverage not preserved: baseline %d, hybrid %d",
			rep.Coverage.BaselineDetected, rep.Coverage.HybridDetected)
	}
	if rep.Coverage.BaselineDetected == 0 {
		t.Fatal("fault simulation detected nothing; the coverage check is vacuous")
	}
	if rep.Coverage.AllFaults == 0 || rep.Coverage.Classes == 0 {
		t.Fatalf("collapse accounting missing: %+v", rep.Coverage)
	}
	if rep.Coverage.Classes >= rep.Coverage.AllFaults {
		t.Fatalf("collapsing removed nothing: %d classes of %d faults",
			rep.Coverage.Classes, rep.Coverage.AllFaults)
	}
	if rep.Coverage.Faults != spec.FaultSample {
		t.Fatalf("simulated %d faults, want the %d-fault sample", rep.Coverage.Faults, spec.FaultSample)
	}
	wantStages := []string{"generate", "atpg", "simulate", "extract", "partition", "replay", "faultsim"}
	if len(rep.Stages) != len(wantStages) {
		t.Fatalf("stages = %v, want %v", rep.Stages, wantStages)
	}
	for i, st := range rep.Stages {
		if st.Name != wantStages[i] {
			t.Fatalf("stage %d = %q, want %q", i, st.Name, wantStages[i])
		}
	}
}

// TestRunSpecGoldenAcrossWorkers is the determinism contract: the same spec
// run at workers 1, 2 and 4 must extract the byte-identical XMAPB artifact
// (same sha256 digest) and land on the identical plan and replay.
func TestRunSpecGoldenAcrossWorkers(t *testing.T) {
	var first *Report
	for _, w := range []int{1, 2, 4} {
		spec := testSpec()
		spec.Workers = w
		rep, err := RunSpec(context.Background(), spec, RunConfig{})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if rep.XMapDigest != goldenXMapDigest {
			t.Errorf("workers=%d X-map digest = %s, want golden %s", w, rep.XMapDigest, goldenXMapDigest)
		}
		if first == nil {
			first = rep
			continue
		}
		if rep.TotalBits != first.TotalBits || rep.Partitions != first.Partitions || rep.Rounds != first.Rounds {
			t.Errorf("workers=%d plan (%d bits, %d partitions, %d rounds) diverged from workers=1 (%d, %d, %d)",
				w, rep.TotalBits, rep.Partitions, rep.Rounds,
				first.TotalBits, first.Partitions, first.Rounds)
		}
		if rep.Replay != first.Replay {
			t.Errorf("workers=%d replay %+v diverged from workers=1 %+v", w, rep.Replay, first.Replay)
		}
	}
}

// TestCoverageGoldenAcrossFaultWorkers extends the determinism contract to
// the faultsim stage: the Coverage leg must be byte-identical at any
// fault-worker count.
func TestCoverageGoldenAcrossFaultWorkers(t *testing.T) {
	var first *Coverage
	for _, w := range []int{1, 2, 4, 8} {
		spec := testSpec()
		spec.FaultSample = 80
		spec.FaultSeed = 11
		spec.FaultWorkers = w
		rep, err := RunSpec(context.Background(), spec, RunConfig{})
		if err != nil {
			t.Fatalf("fault workers=%d: %v", w, err)
		}
		if rep.Coverage == nil {
			t.Fatal("no coverage leg")
		}
		if first == nil {
			first = rep.Coverage
			continue
		}
		if *rep.Coverage != *first {
			t.Errorf("fault workers=%d coverage %+v diverged from workers=1 %+v", w, *rep.Coverage, *first)
		}
	}
}

// TestRunSpecFaultFull runs the exhaustive coverage check: every collapsed
// fault class simulated, FaultSample ignored.
func TestRunSpecFaultFull(t *testing.T) {
	spec := testSpec()
	spec.FaultFull = true
	rep, err := RunSpec(context.Background(), spec, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cov := rep.Coverage
	if cov == nil {
		t.Fatal("FaultFull set but no coverage leg in the report")
	}
	if cov.Faults != cov.Classes {
		t.Fatalf("full run simulated %d faults, want all %d classes", cov.Faults, cov.Classes)
	}
	if !cov.Preserved || !rep.Preserved {
		t.Fatalf("full-fault-list coverage not preserved: %+v", cov)
	}
}

// TestXMapMatchesSerialSim is the property check on the extraction stage:
// the X-map the parallel pipeline records must agree exactly, per (pattern,
// cell), with a from-scratch scalar three-valued simulation — every
// recorded X re-simulates as X, and no captured X goes unrecorded.
func TestXMapMatchesSerialSim(t *testing.T) {
	spec := testSpec()
	spec.Normalize()
	ckt, err := netlist.Generate(netlist.GenConfig{
		Name: spec.Name, ScanCells: spec.Cells, PIs: spec.PIs,
		XClusters: spec.XClusters, Seed: spec.CircuitSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	geom := scan.MustGeometry(spec.Chains, spec.Cells/spec.Chains)
	st := atpg.GenerateStimuli(spec.Patterns, len(ckt.ScanCells), len(ckt.PIs), spec.StimSeed)
	set, err := simulateParallel(context.Background(), ckt, geom, st, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := xmap.FromResponses(set)
	if m.TotalX() == 0 {
		t.Fatal("no X's extracted; the property check is vacuous")
	}
	ser := sim.New(ckt)
	for p := 0; p < spec.Patterns; p++ {
		capture, _, err := ser.Capture(st.Loads[p], st.PIs[p], sim.NoFault)
		if err != nil {
			t.Fatal(err)
		}
		for cell := 0; cell < spec.Cells; cell++ {
			serialX := capture[cell] == logic.X
			if m.Has(p, cell) != serialX {
				t.Fatalf("pattern %d cell %d: xmap says X=%v, scalar simulation says X=%v",
					p, cell, m.Has(p, cell), serialX)
			}
		}
	}
}

// TestRunSpecResume interrupts nothing but replays the checkpoint path: a
// run with a checkpoint sink captures the engine's mid-flight state, and a
// second run resumed from the first captured checkpoint must reach the
// identical deterministic report (digest, plan, replay — never wall times).
func TestRunSpecResume(t *testing.T) {
	spec := testSpec()
	var cps []*core.Checkpoint
	full, err := RunSpec(context.Background(), spec, RunConfig{
		CheckpointEvery: 1,
		CheckpointSink: func(cp *core.Checkpoint) error {
			cps = append(cps, cp)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints captured; testSpec should drive a multi-round run")
	}
	resumed, err := RunSpec(context.Background(), spec, RunConfig{Resume: cps[0]})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.XMapDigest != full.XMapDigest {
		t.Errorf("resumed digest %s != full run %s", resumed.XMapDigest, full.XMapDigest)
	}
	if resumed.TotalBits != full.TotalBits || resumed.Partitions != full.Partitions || resumed.Rounds != full.Rounds {
		t.Errorf("resumed plan (%d bits, %d partitions, %d rounds) != full run (%d, %d, %d)",
			resumed.TotalBits, resumed.Partitions, resumed.Rounds,
			full.TotalBits, full.Partitions, full.Rounds)
	}
	if resumed.Replay != full.Replay {
		t.Errorf("resumed replay %+v != full run %+v", resumed.Replay, full.Replay)
	}
}

func TestRunSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"too few cells", func(s *Spec) { s.Cells = 1 }},
		{"chains do not divide cells", func(s *Spec) { s.Chains = 7 }},
		{"misr wider than chains", func(s *Spec) { s.MISRSize = 64 }},
		{"unknown strategy", func(s *Spec) { s.Strategy = "divine" }},
		{"negative fault sample", func(s *Spec) { s.FaultSample = -1 }},
		{"negative fault workers", func(s *Spec) { s.FaultWorkers = -2 }},
	}
	for _, tc := range cases {
		spec := testSpec()
		tc.mutate(&spec)
		if _, err := RunSpec(context.Background(), spec, RunConfig{}); err == nil {
			t.Errorf("%s: RunSpec accepted the spec", tc.name)
		} else if !strings.HasPrefix(err.Error(), "flow:") {
			t.Errorf("%s: error %q does not carry the flow: prefix", tc.name, err)
		}
	}
}

func TestRunSpecCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSpec(ctx, testSpec(), RunConfig{}); err == nil {
		t.Fatal("RunSpec ignored a canceled context")
	}
}
