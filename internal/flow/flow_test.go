package flow

import (
	"testing"

	"xhybrid/internal/core"
	"xhybrid/internal/misr"
	"xhybrid/internal/netlist"
	"xhybrid/internal/scan"
	"xhybrid/internal/tester"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// buildSetup simulates a generated circuit and returns everything the flow
// needs: geometry, responses and the derived X-map.
func buildSetup(t *testing.T) (scan.Geometry, *scan.ResponseSet, *xmap.XMap) {
	t.Helper()
	ckt, err := netlist.Generate(netlist.GenConfig{
		Name: "flowtest", ScanCells: 128, PIs: 8, XClusters: 4, XFanout: 5, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	geom := scan.MustGeometry(16, 8)
	set, m, err := workload.FromCircuit(ckt, geom, 80, 17)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalX() == 0 {
		t.Fatal("setup produced no X's")
	}
	return geom, set, m
}

func params(geom scan.Geometry) core.Params {
	return core.Params{
		Geom:   geom,
		Cancel: xcancel.Config{MISR: misr.MustStandard(8), Q: 2},
	}
}

func TestBuildProgram(t *testing.T) {
	geom, _, m := buildSetup(t)
	prog, err := Build(m, params(geom), tester.Config{Channels: 8, OverlapMaskLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.PatternOrder) != m.Patterns() {
		t.Fatalf("order covers %d of %d patterns", len(prog.PatternOrder), m.Patterns())
	}
	// Every pattern exactly once.
	seen := make(map[int]bool)
	for _, p := range prog.PatternOrder {
		if seen[p] {
			t.Fatalf("pattern %d applied twice", p)
		}
		seen[p] = true
	}
	// Partition-major order: one mask load per partition.
	if prog.Schedule.MaskLoads != len(prog.Partitions) {
		t.Fatalf("MaskLoads = %d, want %d (one per partition)", prog.Schedule.MaskLoads, len(prog.Partitions))
	}
	if prog.Schedule.Normalized() < 1 {
		t.Fatal("normalized time below 1")
	}
}

func TestVerifyResponses(t *testing.T) {
	geom, set, m := buildSetup(t)
	prog, err := Build(m, params(geom), tester.Config{Channels: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyResponses(prog, set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PatternsApplied != set.Patterns() {
		t.Fatalf("applied %d of %d patterns", rep.PatternsApplied, set.Patterns())
	}
	// The fault-coverage guarantee measured on hardware models: no
	// observable capture masked.
	if rep.ObservableMasked != 0 {
		t.Fatalf("masks destroyed %d observable captures", rep.ObservableMasked)
	}
	// Mask-stage effect matches the planning accounting exactly.
	if rep.MaskedX != prog.Accounting.MaskedX {
		t.Fatalf("MaskedX = %d, accounting says %d", rep.MaskedX, prog.Accounting.MaskedX)
	}
	// Compaction can only fold X's together, never create them.
	if rep.ResidualX > prog.Accounting.ResidualX {
		t.Fatalf("residual %d exceeds accounting %d", rep.ResidualX, prog.Accounting.ResidualX)
	}
	if rep.Halts == 0 || rep.Signatures == 0 {
		t.Fatal("no canceling activity despite residual X's")
	}
	if rep.ControlBits != rep.Halts*8*2 {
		t.Fatalf("ControlBits = %d, want halts*m*q", rep.ControlBits)
	}
	if rep.NormalizedTime < 1 {
		t.Fatal("normalized time below 1")
	}
	// Halt count bounded by the closed form on the measured residual.
	if rep.Halts > xcancel.Halts(rep.ResidualX, 8, 2) {
		t.Fatalf("halts %d exceed bound %d", rep.Halts, xcancel.Halts(rep.ResidualX, 8, 2))
	}
}

func TestVerifyValidation(t *testing.T) {
	geom, set, m := buildSetup(t)
	prog, err := Build(m, params(geom), tester.Config{Channels: 8})
	if err != nil {
		t.Fatal(err)
	}
	other := scan.NewResponseSet(scan.MustGeometry(8, 16))
	if _, err := VerifyResponses(prog, other); err == nil {
		t.Fatal("accepted mismatched geometry")
	}
	short := scan.NewResponseSet(geom)
	if err := short.Append(set.Responses[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyResponses(prog, short); err == nil {
		t.Fatal("accepted wrong pattern count")
	}
}

func TestBuildPropagatesErrors(t *testing.T) {
	geom, _, m := buildSetup(t)
	bad := params(geom)
	bad.Cancel.Q = 0
	if _, err := Build(m, bad, tester.Config{Channels: 8}); err == nil {
		t.Fatal("accepted invalid cancel config")
	}
	if _, err := Build(m, params(geom), tester.Config{Channels: 0}); err == nil {
		t.Fatal("accepted invalid tester config")
	}
}
