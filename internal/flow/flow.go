// Package flow orchestrates the complete hybrid X-handling deployment: from
// an X-location map it builds the tester "program" — partition masks,
// pattern application order, canceling configuration, and the cycle-level
// schedule — and it can replay a full response set through the hardware
// models (mask stage → spatial compactor → symbolic X-canceling MISR) to
// verify that the program behaves as accounted: every extracted signature
// is X-free and no observable capture was masked.
//
// This package implements the ATE scheduling extension of DESIGN.md §7 and
// the end-to-end replay leg of the verification strategy in §8 (signatures
// checked against symbolic prediction, observable captures never masked).
package flow

import (
	"context"
	"fmt"

	"xhybrid/internal/compactor"
	"xhybrid/internal/core"
	"xhybrid/internal/logic"
	"xhybrid/internal/obs"
	"xhybrid/internal/scan"
	"xhybrid/internal/tester"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// Program is everything the tester needs to apply the hybrid test.
type Program struct {
	// Geom is the scan geometry.
	Geom scan.Geometry
	// Cancel is the X-canceling MISR configuration.
	Cancel xcancel.Config
	// Partitions are the pattern partitions with their masks.
	Partitions []core.Partition
	// PatternOrder applies partitions contiguously (one mask load each).
	PatternOrder []int
	// PartitionOf[i] is the partition id of PatternOrder[i].
	PartitionOf []int
	// Accounting mirrors core.Result for the plan.
	Accounting *core.Result
	// Schedule is the cycle-level tester schedule.
	Schedule tester.Schedule
	// Obs carries params.Obs into the replay stage; nil disables
	// observation.
	Obs *obs.Recorder
}

// Build partitions the X-map and assembles the program. The partitioning,
// ordering and scheduling stages are recorded on params.Obs when set. It is
// BuildCtx with a background context.
func Build(m *xmap.XMap, params core.Params, tcfg tester.Config) (*Program, error) {
	return BuildCtx(context.Background(), m, params, tcfg)
}

// BuildCtx is Build under a context: canceling ctx stops the partitioner
// mid-round, which is how the serving layer's /v1/flow jobs abort promptly.
func BuildCtx(ctx context.Context, m *xmap.XMap, params core.Params, tcfg tester.Config) (*Program, error) {
	defer params.Obs.Span("flow.build")()
	res, err := core.RunCtx(ctx, m, params)
	if err != nil {
		return nil, err
	}
	return Assemble(res, params.Geom, params.Cancel, tcfg, params.Obs)
}

// Assemble builds the tester program around an already-computed
// partitioning result: pattern ordering, halt budget and the cycle-level
// schedule. BuildCtx is Assemble after core.RunCtx; callers that produced
// the result some other way — RunClustered plans, or stratbench racing many
// strategies over one X-map — assemble directly and verify through the same
// replay path. rec may be nil.
func Assemble(res *core.Result, geom scan.Geometry, cancel xcancel.Config, tcfg tester.Config, rec *obs.Recorder) (*Program, error) {
	prog := &Program{
		Geom:       geom,
		Cancel:     cancel,
		Partitions: res.Partitions,
		Accounting: res,
		Obs:        rec,
	}
	sizes := make([]int, len(res.Partitions))
	for i, p := range res.Partitions {
		sizes[i] = p.Size()
		for _, pat := range p.Patterns.Indices() {
			prog.PatternOrder = append(prog.PatternOrder, pat)
		}
	}
	prog.PartitionOf = tester.OrderedByPartition(sizes)
	halts := xcancel.Halts(res.ResidualX, cancel.MISR.Size, cancel.Q)
	sched, err := tester.Compute(tester.Plan{
		Geom:             geom,
		PartitionOf:      prog.PartitionOf,
		MaskBitsPerImage: geom.Cells(),
		Halts:            halts,
		MISRSize:         cancel.MISR.Size,
		Q:                cancel.Q,
	}, tcfg)
	if err != nil {
		return nil, err
	}
	prog.Schedule = sched
	return prog, nil
}

// partitionIndex returns the partition id containing pattern p, or -1.
func (prog *Program) partitionIndex(p int) int {
	for i, part := range prog.Partitions {
		if part.Patterns.Get(p) {
			return i
		}
	}
	return -1
}

// VerifyReport summarizes a hardware-model replay of the program.
type VerifyReport struct {
	// PatternsApplied is the number of responses replayed.
	PatternsApplied int
	// MaskedX is the number of X captures removed by the mask stage.
	MaskedX int
	// ObservableMasked counts known captures destroyed by masks — the
	// fault-coverage guarantee demands zero.
	ObservableMasked int
	// ResidualX is the number of X's that reached the MISR after masking
	// and compaction (compaction can fold several into one).
	ResidualX int
	// Halts and Signatures summarize the canceling sessions.
	Halts      int
	Signatures int
	// Deficits counts halts that could not extract the full q combinations.
	Deficits int
	// ControlBits is the canceling control data actually transferred.
	ControlBits int
	// NormalizedTime is the measured shift+halt time over shift time.
	NormalizedTime float64
	// SignatureParities flattens the halt signatures' parities in order —
	// the values compared against the golden run.
	SignatureParities []int
	// FinalSignature is the end-of-test MISR signature.
	FinalSignature uint64
}

// VerifyResponses replays the full response set through the program's
// hardware models. The responses' geometry must match the program; the
// compactor folds the chains onto the MISR inputs. Per-stage wall time and
// the cycle/pattern counters land on prog.Obs when set.
func VerifyResponses(prog *Program, set *scan.ResponseSet) (*VerifyReport, error) {
	if set.Geom != prog.Geom {
		return nil, fmt.Errorf("flow: response geometry %v does not match program %v", set.Geom, prog.Geom)
	}
	if set.Patterns() != len(prog.PatternOrder) {
		return nil, fmt.Errorf("flow: %d responses for %d planned patterns", set.Patterns(), len(prog.PatternOrder))
	}
	defer prog.Obs.Span("flow.replay")()
	obsPatterns := prog.Obs.Counter("flow.patterns.replayed")
	obsCycles := prog.Obs.Counter("flow.cycles.replayed")
	tree, err := compactor.NewModulo(prog.Geom.Chains, prog.Cancel.MISR.Size)
	if err != nil {
		return nil, err
	}
	canc, err := xcancel.NewCanceler(prog.Cancel)
	if err != nil {
		return nil, err
	}
	canc.Observe(prog.Obs)
	rep := &VerifyReport{}
	for _, p := range prog.PatternOrder {
		r := set.Responses[p]
		pi := prog.partitionIndex(p)
		if pi < 0 {
			return nil, fmt.Errorf("flow: pattern %d in no partition", p)
		}
		mask := prog.Partitions[pi].Mask
		// Count the mask stage's effect before applying it.
		var maskedHere, observableHere int
		mask.Cells.ForEach(func(cell int) {
			if r.Values[cell] == logic.X {
				maskedHere++
			} else {
				observableHere++
			}
		})
		rep.MaskedX += maskedHere
		rep.ObservableMasked += observableHere
		masked := mask.Apply(r)
		slices, err := tree.CompactResponse(masked)
		if err != nil {
			return nil, err
		}
		for _, s := range slices {
			rep.ResidualX += s.CountX()
			if err := canc.Shift(s); err != nil {
				return nil, err
			}
		}
		rep.PatternsApplied++
		obsPatterns.Inc()
		obsCycles.Add(int64(len(slices)))
	}
	res := canc.Finish()
	rep.Halts = len(res.Halts)
	rep.ControlBits = res.ControlBits
	rep.NormalizedTime = res.NormalizedTime()
	rep.FinalSignature = res.FinalSignature
	for _, h := range res.Halts {
		rep.Signatures += len(h.Signatures)
		rep.Deficits += h.Deficit
		for _, sig := range h.Signatures {
			rep.SignatureParities = append(rep.SignatureParities, sig.Parity)
		}
	}
	return rep, nil
}
