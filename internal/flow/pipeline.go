package flow

// The front-to-back circuit pipeline: generate a gate-level circuit, run
// LFSR ATPG, simulate the three-valued responses, extract the real
// X-location map, partition it, and replay the plan through the hardware
// models — asserting on the way that the fault-coverage-preservation
// property holds by construction. This is the construction-grade input path
// the synthetic workload profiles approximate; docs/FLOW.md walks through
// every stage, cmd/flowbench drives it from the command line, and the
// serving layer runs it as the /v1/flow job type.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"xhybrid/internal/atpg"
	"xhybrid/internal/core"
	"xhybrid/internal/fault"
	"xhybrid/internal/logic"
	"xhybrid/internal/misr"
	"xhybrid/internal/netlist"
	"xhybrid/internal/obs"
	"xhybrid/internal/pool"
	"xhybrid/internal/scan"
	"xhybrid/internal/sim"
	"xhybrid/internal/tester"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// Spec is the serializable description of one end-to-end flow run: the
// circuit to generate, the stimuli to apply, and the partitioning options.
// Equal specs produce byte-identical reports modulo stage wall times — every
// stage is seeded and the simulation fan-out is position-indexed.
type Spec struct {
	// Name labels the generated circuit (default "flow").
	Name string `json:"name,omitempty"`
	// Cells is the scan-cell count; Chains must divide it (chainLen =
	// Cells/Chains).
	Cells  int `json:"cells"`
	Chains int `json:"chains"`
	// PIs is the primary-input count (default 8).
	PIs int `json:"pis,omitempty"`
	// GatesPerCell scales the combinational cloud (generator default 3.0).
	GatesPerCell float64 `json:"gatesPerCell,omitempty"`
	// XClusters / XFanout / EnableTaps / DropoutPerMille shape the X
	// structure (see netlist.GenConfig).
	XClusters       int `json:"xclusters"`
	XFanout         int `json:"xfanout,omitempty"`
	EnableTaps      int `json:"enableTaps,omitempty"`
	DropoutPerMille int `json:"dropoutPerMille,omitempty"`
	// CircuitSeed drives circuit generation; StimSeed drives the ATPG LFSR.
	CircuitSeed int64  `json:"circuitSeed,omitempty"`
	StimSeed    uint64 `json:"stimSeed,omitempty"`
	// Patterns is the test-pattern count (default 256).
	Patterns int `json:"patterns,omitempty"`

	// MISRSize / Q / Strategy / Seed / MaxRounds mirror the partitioning
	// options (defaults m=32, q=7, strategy paper). MISRSize must not exceed
	// Chains — the spatial compactor folds chains onto the MISR inputs.
	MISRSize  int    `json:"m,omitempty"`
	Q         int    `json:"q,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	MaxRounds int    `json:"maxRounds,omitempty"`
	// Workers bounds the simulation and partitioning fan-out (0 = all CPUs).
	// Reports are identical for any worker count.
	Workers int `json:"workers,omitempty"`

	// FaultSample, when positive, runs PPSFP stuck-at fault simulation over
	// that many faults sampled from the collapsed (equivalence-class
	// representative) fault list, evaluating full observability and the
	// plan's masks in one pass and asserting the coverages are equal.
	// 0 skips the fault stage unless FaultFull is set.
	FaultSample int   `json:"faultSample,omitempty"`
	FaultSeed   int64 `json:"faultSeed,omitempty"`
	// FaultFull simulates the entire collapsed fault list, ignoring
	// FaultSample — the exhaustive coverage check.
	FaultFull bool `json:"faultFull,omitempty"`
	// FaultWorkers bounds the fault-parallel fan-out of the faultsim stage
	// (0 = inherit Workers). Coverage is byte-identical at any worker count.
	FaultWorkers int `json:"faultWorkers,omitempty"`
}

// Normalize fills defaults in place.
func (s *Spec) Normalize() {
	if s.Name == "" {
		s.Name = "flow"
	}
	if s.PIs == 0 {
		s.PIs = 8
	}
	if s.Patterns == 0 {
		s.Patterns = 256
	}
	if s.MISRSize == 0 {
		s.MISRSize = 32
	}
	if s.Q == 0 {
		s.Q = 7
	}
	if strat, err := core.LookupStrategy(s.Strategy); err == nil {
		// Canonicalize (""->paper, legacy greedy->greedy-cost) so equal
		// specs spool and report equally; unknown names are left for
		// Validate to reject.
		s.Strategy = strat.Name()
	}
}

// Validate rejects specs the pipeline cannot run. Call Normalize first.
func (s *Spec) Validate() error {
	if s.Cells < 2 {
		return fmt.Errorf("flow: need at least 2 scan cells, got %d", s.Cells)
	}
	if s.Chains < 1 {
		return fmt.Errorf("flow: need at least 1 chain, got %d", s.Chains)
	}
	if s.Cells%s.Chains != 0 {
		return fmt.Errorf("flow: %d chains do not divide %d cells", s.Chains, s.Cells)
	}
	if s.PIs < 1 {
		return fmt.Errorf("flow: need at least 1 primary input, got %d", s.PIs)
	}
	if s.Patterns < 1 {
		return fmt.Errorf("flow: need at least 1 pattern, got %d", s.Patterns)
	}
	if s.MISRSize > s.Chains {
		return fmt.Errorf("flow: %d-bit MISR wider than %d chains; pick m <= chains", s.MISRSize, s.Chains)
	}
	if s.FaultSample < 0 {
		return fmt.Errorf("flow: negative fault sample %d", s.FaultSample)
	}
	if s.FaultWorkers < 0 {
		return fmt.Errorf("flow: negative fault workers %d", s.FaultWorkers)
	}
	if _, err := s.strategy(); err != nil {
		return err
	}
	return nil
}

// strategy resolves the wire name through the core registry (the same
// vocabulary as every other surface).
func (s *Spec) strategy() (core.Strategy, error) {
	strat, err := core.LookupStrategy(s.Strategy)
	if err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	return strat, nil
}

// RunConfig carries the per-run (non-serialized) knobs of RunSpec.
type RunConfig struct {
	// Obs receives per-stage spans and the engine's counters; nil disables.
	Obs *obs.Recorder
	// CheckpointEvery / CheckpointSink / Resume thread the partitioning
	// engine's durable-checkpoint machinery through the partition stage,
	// exactly as for a plain partition job (see core.Params).
	CheckpointEvery int
	CheckpointSink  func(*core.Checkpoint) error
	Resume          *core.Checkpoint
	// OnStage, when set, is called with each stage's name as it starts —
	// the /v1/flow SSE progress hook. During the faultsim stage it is also
	// called with per-batch "faultsim done/total" progress strings, possibly
	// concurrently from several fault workers; implementations must be safe
	// for that (the jobs layer's atomic stage store is).
	OnStage func(name string)
}

// StageTime records one pipeline stage's wall time.
type StageTime struct {
	Name   string  `json:"name"`
	Millis float64 `json:"millis"`
}

// ReplaySummary is the hardware-model replay leg of a Report.
type ReplaySummary struct {
	// ObservableMasked counts known captures destroyed by masks; coverage
	// preservation demands zero.
	ObservableMasked int `json:"observableMasked"`
	// MaskedX is the mask stage's measured effect (must equal the plan's
	// accounting).
	MaskedX int `json:"maskedX"`
	// ResidualX is what reached the MISR after masking and compaction
	// (compaction can fold X's, so <= the accounting residual).
	ResidualX int `json:"residualX"`
	// Halts / Signatures / Deficits / ControlBits summarize the canceling
	// sessions actually run.
	Halts       int `json:"halts"`
	Signatures  int `json:"signatures"`
	Deficits    int `json:"deficits"`
	ControlBits int `json:"controlBits"`
	// NormalizedTime is the measured shift+halt time over shift time.
	NormalizedTime float64 `json:"normalizedTime"`
	// FinalSignature is the end-of-test MISR signature.
	FinalSignature uint64 `json:"finalSignature"`
}

// Coverage is the optional fault-simulation leg of a Report: one PPSFP pass
// over a (collapsed) fault list, scoring full observability and the plan's
// masks from the same faulty captures.
type Coverage struct {
	// AllFaults is the uncollapsed circuit-wide fault count; Classes is the
	// number of equivalence classes after collapsing buffer/inverter
	// chains. Faults is what was actually simulated: min(FaultSample,
	// Classes) class representatives, or all of them under FaultFull.
	AllFaults        int     `json:"allFaults"`
	Classes          int     `json:"classes"`
	Faults           int     `json:"faults"`
	BaselineDetected int     `json:"baselineDetected"`
	HybridDetected   int     `json:"hybridDetected"`
	Baseline         float64 `json:"baseline"`
	Hybrid           float64 `json:"hybrid"`
	// Preserved is BaselineDetected == HybridDetected — the paper's claim,
	// measured.
	Preserved bool `json:"preserved"`
}

// Report is the JSON outcome of one RunSpec: circuit and X-map statistics,
// the plan's control-bit accounting, the replay measurements, optional
// fault coverage, and per-stage timing. BENCH_flow.json rows are Reports.
type Report struct {
	Spec Spec `json:"spec"`

	// Gates counts every node of the generated circuit (inputs, logic,
	// storage); ChainLen is Cells/Chains.
	Gates    int `json:"gates"`
	ChainLen int `json:"chainLen"`

	// XCells / TotalX / Density describe the extracted X-map; XMapDigest is
	// the sha256 of its canonical XMAPB encoding (byte-identical for any
	// worker count).
	XCells     int     `json:"xCells"`
	TotalX     int     `json:"totalX"`
	Density    float64 `json:"density"`
	XMapDigest string  `json:"xmapDigest"`

	// Plan accounting (core.Result).
	Partitions int `json:"partitions"`
	Rounds     int `json:"rounds"`
	MaskedX    int `json:"maskedX"`
	ResidualX  int `json:"residualX"`
	MaskBits   int `json:"maskBits"`
	CancelBits int `json:"cancelBits"`
	TotalBits  int `json:"totalBits"`
	// PlannedHalts is the closed-form halt budget the schedule reserves for
	// the accounting residual; the replayed halts must fit in it.
	PlannedHalts int `json:"plannedHalts"`

	Replay   ReplaySummary `json:"replay"`
	Coverage *Coverage     `json:"coverage,omitempty"`

	// Preserved is the composite end-to-end verdict: no observable capture
	// masked, mask effect exactly as accounted, residual and halts within
	// the planned schedule, and (when fault simulation ran) identical
	// coverage with and without the masks.
	Preserved bool `json:"preserved"`

	Stages []StageTime `json:"stages"`
}

// XMapBuild is the product of the pipeline's front half (stages 1-4): the
// generated circuit, its scan geometry, the simulated three-valued
// responses, and the X-map extracted from them with its canonical XMAPB
// digest. Everything downstream — partitioning, replay, fault simulation —
// consumes only these.
type XMapBuild struct {
	Circuit   *netlist.Circuit
	Geom      scan.Geometry
	Stimuli   atpg.Stimuli
	Responses *scan.ResponseSet
	XMap      *xmap.XMap
	Digest    string
}

// BuildXMap runs the deterministic front half of the pipeline — generate,
// ATPG, simulate, extract — for a spec and returns the X-map with its
// provenance. It is the entry point for tools that want real X-maps
// without committing to one partitioning strategy (stratbench races many
// strategies over a single build). The spec is normalized and validated
// first; equal specs produce byte-identical X-maps at any worker count.
func BuildXMap(ctx context.Context, spec Spec) (*XMapBuild, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return BuildXMapStaged(ctx, spec, nil)
}

// BuildXMapStaged is BuildXMap with a per-stage timing hook: stage(name) is
// called as each stage starts and the returned func at its end. A nil stage
// skips instrumentation. The spec must already be normalized and valid.
func BuildXMapStaged(ctx context.Context, spec Spec, stage func(name string) func()) (*XMapBuild, error) {
	if stage == nil {
		stage = func(string) func() { return func() {} }
	}

	// Stage 1: generate the circuit.
	end := stage("generate")
	ckt, err := netlist.Generate(netlist.GenConfig{
		Name:            spec.Name,
		ScanCells:       spec.Cells,
		PIs:             spec.PIs,
		GatesPerCell:    spec.GatesPerCell,
		XClusters:       spec.XClusters,
		XFanout:         spec.XFanout,
		EnableTaps:      spec.EnableTaps,
		DropoutPerMille: spec.DropoutPerMille,
		Seed:            spec.CircuitSeed,
	})
	end()
	if err != nil {
		return nil, err
	}
	chainLen := spec.Cells / spec.Chains
	geom := scan.MustGeometry(spec.Chains, chainLen)

	// Stage 2: LFSR ATPG.
	end = stage("atpg")
	st := atpg.GenerateStimuli(spec.Patterns, len(ckt.ScanCells), len(ckt.PIs), spec.StimSeed)
	end()

	// Stage 3: three-valued simulation, fanned out over 64-pattern blocks.
	end = stage("simulate")
	set, err := simulateParallel(ctx, ckt, geom, st, spec.Workers)
	end()
	if err != nil {
		return nil, err
	}

	// Stage 4: extract the X-map and its canonical digest.
	end = stage("extract")
	m := xmap.FromResponses(set)
	digest := sha256.New()
	err = xmap.WriteBinary(digest, m, spec.Chains, chainLen)
	end()
	if err != nil {
		return nil, err
	}
	return &XMapBuild{
		Circuit:   ckt,
		Geom:      geom,
		Stimuli:   st,
		Responses: set,
		XMap:      m,
		Digest:    hex.EncodeToString(digest.Sum(nil)),
	}, nil
}

// RunSpec executes the full pipeline for the spec. The returned report is
// deterministic apart from Stages wall times; a non-nil error means a stage
// failed or a preservation assertion did not hold structurally (geometry or
// pattern-count mismatches) — soft preservation verdicts land in
// Report.Preserved instead.
func RunSpec(ctx context.Context, spec Spec, cfg RunConfig) (*Report, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	strat, err := spec.strategy()
	if err != nil {
		return nil, err
	}
	rep := &Report{Spec: spec, ChainLen: spec.Cells / spec.Chains}
	stage := func(name string) func() {
		if cfg.OnStage != nil {
			cfg.OnStage(name)
		}
		endSpan := cfg.Obs.Span("flow." + name)
		t0 := time.Now()
		return func() {
			endSpan()
			rep.Stages = append(rep.Stages, StageTime{
				Name:   name,
				Millis: float64(time.Since(t0)) / float64(time.Millisecond),
			})
		}
	}

	// Stages 1-4: circuit, stimuli, simulation, X-map.
	xb, err := BuildXMapStaged(ctx, spec, stage)
	if err != nil {
		return nil, err
	}
	ckt, geom, st, set, m := xb.Circuit, xb.Geom, xb.Stimuli, xb.Responses, xb.XMap
	rep.Gates = len(ckt.Gates)
	rep.XCells = m.NumXCells()
	rep.TotalX = m.TotalX()
	rep.Density = m.Density()
	rep.XMapDigest = xb.Digest

	// Stage 5: partition and assemble the tester program.
	end := stage("partition")
	mcfg, err := misr.Standard(spec.MISRSize)
	if err != nil {
		end()
		return nil, err
	}
	prog, err := BuildCtx(ctx, m, core.Params{
		Geom:            geom,
		Cancel:          xcancel.Config{MISR: mcfg, Q: spec.Q},
		Strategy:        strat,
		Seed:            spec.Seed,
		MaxRounds:       spec.MaxRounds,
		Workers:         spec.Workers,
		Obs:             cfg.Obs,
		CheckpointEvery: cfg.CheckpointEvery,
		CheckpointSink:  cfg.CheckpointSink,
		Resume:          cfg.Resume,
	}, tester.Config{Channels: spec.MISRSize, OverlapMaskLoad: true})
	end()
	if err != nil {
		return nil, err
	}
	acct := prog.Accounting
	rep.Partitions = len(acct.Partitions)
	rep.Rounds = len(acct.Rounds)
	rep.MaskedX = acct.MaskedX
	rep.ResidualX = acct.ResidualX
	rep.MaskBits = acct.MaskBits
	rep.CancelBits = acct.CancelBits
	rep.TotalBits = acct.TotalBits
	rep.PlannedHalts = xcancel.Halts(acct.ResidualX, spec.MISRSize, spec.Q)

	// Stage 6: replay the captured responses through the hardware models.
	end = stage("replay")
	vr, err := VerifyResponses(prog, set)
	end()
	if err != nil {
		return nil, err
	}
	rep.Replay = ReplaySummary{
		ObservableMasked: vr.ObservableMasked,
		MaskedX:          vr.MaskedX,
		ResidualX:        vr.ResidualX,
		Halts:            vr.Halts,
		Signatures:       vr.Signatures,
		Deficits:         vr.Deficits,
		ControlBits:      vr.ControlBits,
		NormalizedTime:   vr.NormalizedTime,
		FinalSignature:   vr.FinalSignature,
	}
	rep.Preserved = vr.ObservableMasked == 0 &&
		vr.MaskedX == acct.MaskedX &&
		vr.ResidualX <= acct.ResidualX &&
		vr.Halts <= rep.PlannedHalts

	// Stage 7 (optional): fault simulation with and without the masks.
	if spec.FaultSample > 0 || spec.FaultFull {
		end = stage("faultsim")
		cov, err := measureCoverage(ctx, ckt, st, prog, spec, cfg)
		end()
		if err != nil {
			return nil, err
		}
		rep.Coverage = cov
		rep.Preserved = rep.Preserved && cov.Preserved
	}
	return rep, nil
}

// simulateParallel captures every pattern's response, fanning 64-pattern
// blocks over a worker pool. Each chunk owns a private parallel simulator
// (the simulators carry per-instance scratch state) and writes into
// position-indexed slots, so the assembled response set — and everything
// derived from it — is byte-identical for any worker count.
func simulateParallel(ctx context.Context, ckt *netlist.Circuit, geom scan.Geometry, st atpg.Stimuli, workers int) (*scan.ResponseSet, error) {
	patterns := len(st.Loads)
	blocks := (patterns + 63) / 64
	blockCaps := make([][]logic.Vector, blocks)
	p := pool.New(workers)
	defer p.Close()
	errs := make([]error, p.Workers())
	p.Chunks(blocks, func(c, lo, hi int) {
		ps := sim.NewParallel(ckt)
		for b := lo; b < hi; b++ {
			if ctx.Err() != nil {
				errs[c] = ctx.Err()
				return
			}
			base := b * 64
			top := base + 64
			if top > patterns {
				top = patterns
			}
			caps, err := ps.Capture(st.Loads[base:top], st.PIs[base:top])
			if err != nil {
				errs[c] = err
				return
			}
			blockCaps[b] = caps
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	set := scan.NewResponseSet(geom)
	for _, caps := range blockCaps {
		for _, cap := range caps {
			if err := set.Append(scan.Response{Geom: geom, Values: cap}); err != nil {
				return nil, err
			}
		}
	}
	return set, nil
}

// measureCoverage runs one PPSFP pass over the collapsed fault list and
// scores two observability predicates from the same faulty captures: full
// observability, and the plan's masks (a cell is unobservable for a pattern
// exactly when the mask of that pattern's partition covers it). The masks
// only ever cover cells that capture X under every pattern of their
// partition, and X captures never contribute to detection, so the two
// coverages must be equal — that equality is the paper's coverage claim,
// measured on the construction-grade input. Collapsing first means the
// sample budget is spent on structurally distinct faults, not
// buffer/inverter-chain equivalents.
func measureCoverage(ctx context.Context, ckt *netlist.Circuit, st atpg.Stimuli, prog *Program, spec Spec, cfg RunConfig) (*Coverage, error) {
	all := fault.AllFaults(ckt)
	classes := fault.Collapse(ckt, all)
	faults := fault.Representatives(classes)
	if !spec.FaultFull {
		faults = fault.Sample(faults, spec.FaultSample, spec.FaultSeed)
	}
	partOf := make([]int, len(prog.PatternOrder))
	for i, part := range prog.Partitions {
		part.Patterns.ForEach(func(p int) { partOf[p] = i })
	}
	observe := func(pattern, cell int) bool {
		return !prog.Partitions[partOf[pattern]].Mask.Cells.Get(cell)
	}
	opt := fault.PPSFPOptions{
		Workers: spec.FaultWorkers,
		Obs:     cfg.Obs,
	}
	if opt.Workers == 0 {
		opt.Workers = spec.Workers
	}
	if cfg.OnStage != nil {
		opt.OnProgress = func(done, total int) {
			cfg.OnStage(fmt.Sprintf("faultsim %d/%d", done, total))
		}
	}
	res, err := fault.SimulatePPSFP(ctx, ckt, st.Loads, st.PIs, faults, []fault.Observe{nil, observe}, opt)
	if err != nil {
		return nil, err
	}
	baseline, hybrid := res[0], res[1]
	return &Coverage{
		AllFaults:        len(all),
		Classes:          len(classes),
		Faults:           baseline.Total,
		BaselineDetected: baseline.Detected,
		HybridDetected:   hybrid.Detected,
		Baseline:         baseline.Coverage(),
		Hybrid:           hybrid.Coverage(),
		Preserved:        hybrid.Detected == baseline.Detected,
	}, nil
}
