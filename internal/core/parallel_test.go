package core

import (
	"errors"
	"reflect"
	"testing"

	"xhybrid/internal/misr"
	"xhybrid/internal/scan"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// The load-bearing guarantee of the parallel execution layer: Run produces
// byte-identical results (rounds, costs, partitions, masks, accounting) for
// workers=1 and workers=8, across every strategy and several seeds.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	strategies := []Strategy{StrategyPaper, StrategyPaperRandom, StrategyGreedyCost, StrategyPaperRetry}
	for seed := int64(1); seed <= 4; seed++ {
		m, geom := randMap(seed)
		for _, s := range strategies {
			p := Params{
				Geom:     geom,
				Cancel:   xcancel.Config{MISR: misr.MustStandard(12), Q: 3},
				Strategy: s,
				Seed:     seed,
			}
			p.Workers = 1
			serial, err := Run(m, p)
			if err != nil {
				t.Fatalf("seed %d %v workers=1: %v", seed, s, err)
			}
			for _, workers := range []int{2, 8} {
				p.Workers = workers
				parallel, err := Run(m, p)
				if err != nil {
					t.Fatalf("seed %d %v workers=%d: %v", seed, s, workers, err)
				}
				if !reflect.DeepEqual(serial, parallel) {
					t.Fatalf("seed %d strategy %v: workers=%d result differs from workers=1\nserial:   %+v\nparallel: %+v",
						seed, s, workers, serial, parallel)
				}
			}
		}
	}
}

// Same guarantee on a real synthetic workload (1/8-scale CKT-B) for the
// paper strategy — the configuration the Table 1 pipeline runs.
func TestRunDeterministicOnWorkload(t *testing.T) {
	prof := workload.Scaled(workload.CKTB(), 8)
	m, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Geom: prof.Geometry(), Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7}}
	p.Workers = 1
	serial, err := Run(m, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 8
	parallel, err := Run(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("CKT-B/8 workers=8 result differs from workers=1")
	}
}

// RunClustered shares the evaluator, so it gets the same guarantee.
func TestRunClusteredDeterministicAcrossWorkers(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		m, geom := randMap(seed)
		p := Params{Geom: geom, Cancel: xcancel.Config{MISR: misr.MustStandard(12), Q: 3}}
		p.Workers = 1
		serial, err := RunClustered(m, p)
		if err != nil {
			t.Fatal(err)
		}
		p.Workers = 8
		parallel, err := RunClustered(m, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("seed %d: clustered workers=8 differs from workers=1", seed)
		}
	}
}

func TestSentinelErrors(t *testing.T) {
	m := fig4()
	p := fig4Params(2)
	p.Geom = scan.MustGeometry(4, 3) // 12 cells != 15
	if _, err := Run(m, p); !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("Run geometry error = %v, want ErrGeometryMismatch", err)
	}
	if _, err := RunClustered(m, p); !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("RunClustered geometry error = %v, want ErrGeometryMismatch", err)
	}
	if _, err := Evaluate(m, p); !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("Evaluate geometry error = %v, want ErrGeometryMismatch", err)
	}
	p = fig4Params(2)
	if _, err := Run(xmap.New(0, 15), p); !errors.Is(err, ErrEmptyPatterns) {
		t.Fatalf("Run empty error = %v, want ErrEmptyPatterns", err)
	}
	if _, err := RunClustered(xmap.New(0, 15), p); !errors.Is(err, ErrEmptyPatterns) {
		t.Fatalf("RunClustered empty error = %v, want ErrEmptyPatterns", err)
	}
	// A healthy run reports neither sentinel.
	if _, err := Run(m, p); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	p := fig4Params(2)
	p.Workers = -1
	if _, err := Run(fig4(), p); err == nil {
		t.Fatal("accepted negative Workers")
	}
}
