package core

import (
	"fmt"
	"math/rand"

	"xhybrid/internal/correlation"
	"xhybrid/internal/gf2"
	"xhybrid/internal/scan"
	"xhybrid/internal/xmap"
)

// Strategy is the pluggable split-selection rule of the partitioner. The
// engine owns everything else — delta pricing, the accept gate (a split
// commits only when it strictly lowers the standard mask+cancel cost),
// state interning, checkpointing and the final accounting — so a Strategy
// only decides which splits to try, in which order, each round.
//
// Implementations must be safe for concurrent use by independent runs: a
// registered Strategy is a shared singleton and Select receives all per-run
// state through the Selection. Select is called once per round; the engine
// tries the returned candidates in order and commits the first one the cost
// function accepts. Returning no candidates ends the run.
//
// Checkpoint/resume needs no cooperation from a Strategy: the engine
// replays the recorded attempt trace, which captures selection outcomes,
// not selection logic. The one exception is a strategy that consumes
// Params.Seed rng draws — implement RoundReplayer to restore the stream
// position on resume.
type Strategy interface {
	// Name is the canonical registry name — the wire vocabulary of the
	// facade, flow specs, jobs and the HTTP API, and the string checkpoints
	// record.
	Name() string
	// Select returns the round's candidate splits in preference order.
	Select(sc *Selection) []Split
}

// RoundReplayer is implemented by strategies whose Select consumes
// Params.Seed rng draws (one per attempted round). On resume the engine
// calls ReplayRound once per recorded round so the continuation sees the
// rng stream exactly where the uninterrupted run would have left it. An
// error marks the checkpoint as not replayable under this strategy.
type RoundReplayer interface {
	ReplayRound(rng *rand.Rand, r Round) error
}

// Split is one candidate partitioning step: cut partition Partition (an
// index into the current live list) on scan cell Cell. GroupSize and
// GroupCount describe the equal-count group the cell came from for the
// paper-family heuristics; both are 0 for strategies that do not select via
// groups.
type Split struct {
	Partition  int
	Cell       int
	GroupSize  int
	GroupCount int
}

// Selection is the engine's per-round view handed to Strategy.Select: the
// live partitions, the running cost totals, and query methods backed by the
// incremental engine's memoized state (candidate groups, gain-ranked
// candidate cells, delta-priced split costs). All methods are safe to call
// from Select; the engine never mutates the Selection while a Select call
// is in flight.
type Selection struct {
	e        *evaluator
	live     []*partState
	masked   int
	maskBits int
	cost     int
	rng      *rand.Rand
}

// set points the Selection at the round's state (one allocation per run,
// refreshed per round).
func (sc *Selection) set(live []*partState, masked, maskBits, cost int) {
	sc.live, sc.masked, sc.maskBits, sc.cost = live, masked, maskBits, cost
}

// Partitions returns the number of live partitions.
func (sc *Selection) Partitions() int { return len(sc.live) }

// Size returns partition i's pattern count.
func (sc *Selection) Size(i int) int { return sc.live[i].size }

// Patterns returns partition i's pattern bitset. The vector is the engine's
// interned storage: callers must treat it as read-only.
func (sc *Selection) Patterns(i int) gf2.Vec { return sc.live[i].part }

// Cost returns the current total control-bit cost (masks + canceling); a
// split commits only if its priced cost is strictly below this.
func (sc *Selection) Cost() int { return sc.cost }

// MaskBits returns the current mask control-bit total.
func (sc *Selection) MaskBits() int { return sc.maskBits }

// MaskedX returns the number of X's the current partitions' masks remove.
func (sc *Selection) MaskedX() int { return sc.masked }

// Rand returns the run's seeded rng. Strategies that draw from it must
// implement RoundReplayer or resumed runs will diverge.
func (sc *Selection) Rand() *rand.Rand { return sc.rng }

// XMap returns the run's X-map (read-only).
func (sc *Selection) XMap() *xmap.XMap { return sc.e.m }

// Geometry returns the run's scan geometry.
func (sc *Selection) Geometry() scan.Geometry { return sc.e.params.Geom }

// Config returns the run's parameters (a copy).
func (sc *Selection) Config() Params { return sc.e.params }

// Groups returns partition i's equal-count candidate groups (Algorithm 1's
// raw material), memoized on the partition's content.
func (sc *Selection) Groups(i int) []correlation.Group {
	if sc.live[i].size < 2 {
		return nil
	}
	return sc.live[i].ensureGroups(sc.e)
}

// Candidates returns up to limit distinct candidate split cells for
// partition i, gain-ranked (one representative per in-partition X
// signature, highest total in-partition X count first). The list is
// memoized on the partition's content with the first limit used, so a
// strategy should query with a consistent limit for the whole run.
func (sc *Selection) Candidates(i, limit int) []int {
	st := sc.live[i]
	if st.size < 2 {
		return nil
	}
	st.ensureCands(sc.e, limit)
	if !st.candsReady.Load() {
		return nil
	}
	return st.cands
}

// PriceSplit returns the total control-bit cost after splitting partition i
// on cell, computed by the engine's delta pricing (contribution swap over
// interned side states — cache hits when the candidate was priced before).
// cell must capture at least one X (any cell from Candidates or Groups
// does).
func (sc *Selection) PriceSplit(i, cell int) int {
	parent := sc.live[i]
	xs, rs := sc.e.splitStates(parent, cell)
	sc.e.obsDelta.Inc()
	return sc.maskBits - sc.e.contrib(parent) + sc.e.contrib(xs) + sc.e.contrib(rs) +
		sc.e.cancelBits(sc.masked-parent.maskedX+xs.maskedX+rs.maskedX)
}

// strategy resolves Params.Strategy, defaulting to StrategyPaper so the
// zero Params keeps selecting the paper's deterministic heuristic.
func (p Params) strategy() Strategy {
	if p.Strategy == nil {
		return StrategyPaper
	}
	return p.Strategy
}

// strategyName names the resolved strategy (checkpoints record it).
func (p Params) strategyName() string { return p.strategy().Name() }

// The built-in strategies. The three paper-family selectors and the greedy
// selector call straight into the evaluator's private machinery — they are
// the same code paths the pre-registry engine dispatched to, so plans and
// cost accounting are byte-identical to the enum era (locked by the golden
// fixtures). The X-code hybrid (strategy_xcode.go) uses only the exported
// Selection surface, as an external strategy would.
var (
	// StrategyPaper follows Algorithm 1: among all current partitions, take
	// the largest group of cells sharing an in-partition X count (at least
	// two cells), and split on its lowest-indexed member. Deterministic.
	StrategyPaper Strategy = paperStrategy{}
	// StrategyPaperRandom is StrategyPaper but picks a random member of the
	// winning group, as the paper's example does ("we randomly select one
	// of 3 scan cells"). Seeded via Params.Seed.
	StrategyPaperRandom Strategy = paperRandomStrategy{}
	// StrategyGreedyCost ignores the group heuristic and evaluates the
	// actual cost delta of every distinct candidate split, applying the
	// best one. More expensive per round; used for the ablation study.
	StrategyGreedyCost Strategy = greedyStrategy{}
	// StrategyPaperRetry extends Algorithm 1: when the best group's split
	// is rejected by the cost function, the next candidate groups (up to
	// RetryBudget) are tried before giving up — the paper stops at the
	// first rejection.
	StrategyPaperRetry Strategy = paperRetryStrategy{}
	// StrategyXCodeHybrid re-ranks the cost-improving splits by how few
	// output channels of a weight-3 X-code compactor the plan's residual
	// X's would corrupt — see strategy_xcode.go.
	StrategyXCodeHybrid Strategy = xcodeStrategy{}
)

type paperStrategy struct{}

func (paperStrategy) Name() string   { return "paper" }
func (paperStrategy) String() string { return "paper" }
func (s paperStrategy) Select(sc *Selection) []Split {
	if cand := sc.e.selectPaper(sc.live, false, sc.rng); cand != nil {
		return []Split{*cand}
	}
	return nil
}

type paperRandomStrategy struct{}

func (paperRandomStrategy) Name() string   { return "paper-random" }
func (paperRandomStrategy) String() string { return "paper-random" }
func (s paperRandomStrategy) Select(sc *Selection) []Split {
	if cand := sc.e.selectPaper(sc.live, true, sc.rng); cand != nil {
		return []Split{*cand}
	}
	return nil
}

// ReplayRound consumes the one draw selectPaper spent on the recorded
// attempt — Intn(len(group.Cells)), with Round.GroupSize recording the
// group size — restoring the rng stream for the continuation.
func (paperRandomStrategy) ReplayRound(rng *rand.Rand, r Round) error {
	if r.GroupSize < 1 {
		return fmt.Errorf("round %d records group size %d under paper-random", r.Round, r.GroupSize)
	}
	rng.Intn(r.GroupSize)
	return nil
}

type paperRetryStrategy struct{}

func (paperRetryStrategy) Name() string   { return "paper-retry" }
func (paperRetryStrategy) String() string { return "paper-retry" }
func (s paperRetryStrategy) Select(sc *Selection) []Split {
	return sc.e.selectPaperList(sc.live, sc.e.params.retryBudget())
}

type greedyStrategy struct{}

func (greedyStrategy) Name() string   { return "greedy-cost" }
func (greedyStrategy) String() string { return "greedy-cost" }
func (s greedyStrategy) Select(sc *Selection) []Split {
	if cand := sc.e.selectGreedy(sc.live, sc.masked, sc.maskBits, sc.cost); cand != nil {
		return []Split{*cand}
	}
	return nil
}
