package core

import (
	"testing"
	"testing/quick"

	"xhybrid/internal/gf2"
	"xhybrid/internal/misr"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
)

func TestClusteredInvariants(t *testing.T) {
	f := func(seed int64) bool {
		m, geom := randMap(seed)
		res, err := RunClustered(m, Params{
			Geom:   geom,
			Cancel: xcancel.Config{MISR: misr.MustStandard(12), Q: 3},
		})
		if err != nil {
			return false
		}
		cover := gf2.NewVec(m.Patterns())
		total := 0
		for _, part := range res.Partitions {
			if part.Patterns.PopCountAnd(cover) != 0 {
				return false
			}
			cover.Or(part.Patterns)
			total += part.Size()
			if part.MaskedX != part.Mask.Cells.PopCount()*part.Size() {
				return false
			}
		}
		if total != m.Patterns() {
			return false
		}
		if res.MaskedX+res.ResidualX != res.TotalX || res.TotalX != m.TotalX() {
			return false
		}
		return ResidualMap(m, res.Partitions).TotalX() == res.ResidualX
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// On the calibrated CKT-B workload — whose clusters have disjoint pattern
// sets — direct clustering must find essentially the same structure as the
// paper's Algorithm 1.
func TestClusteredMatchesPaperOnCleanWorkload(t *testing.T) {
	prof := workload.Scaled(workload.CKTB(), 8)
	m, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Geom: prof.Geometry(), Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7}}
	paper, err := Run(m, params)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := RunClustered(m, params)
	if err != nil {
		t.Fatal(err)
	}
	// Within 25% on total control bits (the one-pass greedy gives up a
	// little on the noisy background).
	if clustered.TotalBits > paper.TotalBits*5/4 {
		t.Fatalf("clustered %d much worse than paper %d", clustered.TotalBits, paper.TotalBits)
	}
	if clustered.MaskedX == 0 {
		t.Fatal("clustering masked nothing")
	}
}

func TestClusteredPaperExample(t *testing.T) {
	res, err := RunClustered(fig4(), fig4Params(2))
	if err != nil {
		t.Fatal(err)
	}
	// The greedy clustering must at least beat the no-partitioning cost of
	// 85 on the worked example.
	if res.TotalBits >= 85 {
		t.Fatalf("clustered total %d not below the 1-partition cost 85", res.TotalBits)
	}
	if res.MaskedX < 16 {
		t.Fatalf("clustered masked only %d X's", res.MaskedX)
	}
}

func TestClusteredValidation(t *testing.T) {
	m := fig4()
	p := fig4Params(2)
	p.Geom.Chains = 4
	if _, err := RunClustered(m, p); err == nil {
		t.Fatal("accepted geometry mismatch")
	}
	p = fig4Params(2)
	p.Cancel.Q = 0
	if _, err := RunClustered(m, p); err == nil {
		t.Fatal("accepted bad cancel config")
	}
}
