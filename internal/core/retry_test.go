package core

import (
	"fmt"
	"testing"

	"xhybrid/internal/misr"
	"xhybrid/internal/scan"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// retryMap builds a workload where Algorithm 1 stops prematurely: the
// *largest* equal-count group (6 cells, 50 X's each, mutually different
// pattern sets) yields a rejected split, while a smaller group (4 cells
// with one identical 40-pattern signature) yields an accepted one. The
// paper's procedure tries only the largest group and gives up; the retry
// extension walks on to the smaller group.
func retryMap() *xmap.XMap {
	m := xmap.New(100, 100)
	// Group A: cells 0..5, pattern windows [7i, 7i+50) — same count (50),
	// all distinct sets, heavy overlap, and no window is another's
	// complement, so a split on one masks only that one cell's X's.
	for i := 0; i < 6; i++ {
		for k := 0; k < 50; k++ {
			m.Add(7*i+k, i)
		}
	}
	// Group B: cells 20..23 share the exact signature {0..19} ∪ {55..74},
	// which straddles every group-A window.
	for _, c := range []int{20, 21, 22, 23} {
		for p := 0; p < 20; p++ {
			m.Add(p, c)
		}
		for p := 55; p < 75; p++ {
			m.Add(p, c)
		}
	}
	return m
}

func retryParams(s Strategy) Params {
	return Params{
		Geom:     scan.MustGeometry(10, 10),
		Cancel:   xcancel.Config{MISR: misr.MustStandard(10), Q: 1},
		Strategy: s,
	}
}

func TestPaperStopsWhereRetryContinues(t *testing.T) {
	m := retryMap()

	paper, err := Run(m, retryParams(StrategyPaper))
	if err != nil {
		t.Fatal(err)
	}
	// The paper heuristic tries the 6-cell group, the cost rises, it stops
	// with a single partition.
	if len(paper.Partitions) != 1 {
		t.Fatalf("paper partitions = %d, want 1", len(paper.Partitions))
	}
	if len(paper.Rounds) != 1 || paper.Rounds[0].Accepted {
		t.Fatalf("paper rounds = %+v, want one rejected attempt", paper.Rounds)
	}
	if paper.Rounds[0].GroupSize != 6 {
		t.Fatalf("paper tried group of %d, want 6", paper.Rounds[0].GroupSize)
	}

	retry, err := Run(m, retryParams(StrategyPaperRetry))
	if err != nil {
		t.Fatal(err)
	}
	if len(retry.Partitions) < 2 {
		t.Fatalf("retry partitions = %d, want >= 2", len(retry.Partitions))
	}
	if retry.TotalBits >= paper.TotalBits {
		t.Fatalf("retry total %d not below paper %d", retry.TotalBits, paper.TotalBits)
	}
	// The accepted split must come from the 4-cell group.
	foundB := false
	for _, r := range retry.Rounds {
		if r.Accepted && r.GroupSize == 4 {
			foundB = true
		}
	}
	if !foundB {
		t.Fatalf("retry never accepted the 4-cell group: %+v", retry.Rounds)
	}
	// The 4 group-B cells must be masked somewhere (their X's removed).
	if retry.MaskedX < 160 {
		t.Fatalf("retry masked %d X's, want >= 160", retry.MaskedX)
	}
}

func TestRetryBudgetValidation(t *testing.T) {
	p := retryParams(StrategyPaperRetry)
	p.RetryBudget = -1
	if _, err := Run(retryMap(), p); err == nil {
		t.Fatal("accepted negative retry budget")
	}
	// A budget of 1 degenerates to the paper behaviour.
	p.RetryBudget = 1
	res, err := Run(retryMap(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partitions) != 1 {
		t.Fatalf("budget-1 retry found %d partitions, want 1", len(res.Partitions))
	}
}

func TestRetryNeverWorseThanPaper(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m, geom := randMap(seed)
		pp := Params{Geom: geom, Cancel: xcancel.Config{MISR: misr.MustStandard(12), Q: 3}}
		paper, err := Run(m, pp)
		if err != nil {
			t.Fatal(err)
		}
		pr := pp
		pr.Strategy = StrategyPaperRetry
		retry, err := Run(m, pr)
		if err != nil {
			t.Fatal(err)
		}
		if retry.TotalBits > paper.TotalBits {
			t.Fatalf("seed %d: retry %d worse than paper %d", seed, retry.TotalBits, paper.TotalBits)
		}
	}
}

func TestRetryStrategyString(t *testing.T) {
	if StrategyPaperRetry.Name() != "paper-retry" {
		t.Fatal("name wrong")
	}
	if fmt.Sprintf("%s", StrategyPaperRetry) != "paper-retry" {
		t.Fatal("String wrong")
	}
}
