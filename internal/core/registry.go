package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The strategy registry is the single source of the strategy-name
// vocabulary. Every surface that turns a wire name into a Strategy — the
// xhybrid facade, flow specs, the jobs spool, the HTTP API, partbench,
// stratbench — resolves through LookupStrategy, so a strategy registered
// here is accepted everywhere and an unknown name fails everywhere with the
// same enumerating error. (Before the registry the vocabulary lived in four
// independent string switches, and partbench had already drifted: it spelled
// greedy-cost where the other surfaces spelled greedy.)
var (
	registryMu sync.RWMutex
	registry   = map[string]Strategy{}
	// aliases maps accepted alternate spellings onto canonical names.
	// "greedy" predates the registry as the facade/flow/jobs wire spelling
	// of greedy-cost; old spooled jobs still carry it.
	aliases = map[string]string{}
)

// ErrUnknownStrategy reports a strategy name no registered strategy or
// alias matches; match with errors.Is. The message enumerates the valid
// names so every surface's error (including HTTP 400 bodies) tells the
// caller what would have been accepted.
var ErrUnknownStrategy = errors.New("unknown strategy")

// RegisterStrategy adds s to the registry under s.Name(). It panics on an
// empty or duplicate name — registration is an init-time, programmer-error
// surface.
func RegisterStrategy(s Strategy) {
	name := s.Name()
	if name == "" {
		panic("core: RegisterStrategy with empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: RegisterStrategy duplicate name %q", name))
	}
	if _, dup := aliases[name]; dup {
		panic(fmt.Sprintf("core: RegisterStrategy name %q shadows an alias", name))
	}
	registry[name] = s
}

// RegisterStrategyAlias makes alias resolve to the already-registered
// canonical name. Aliases are accepted by LookupStrategy but never appear
// as Strategy.Name(): checkpoints, spool records and reports always carry
// the canonical spelling.
func RegisterStrategyAlias(alias, canonical string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if alias == "" {
		panic("core: RegisterStrategyAlias with empty alias")
	}
	if _, dup := registry[alias]; dup {
		panic(fmt.Sprintf("core: alias %q shadows a registered strategy", alias))
	}
	if _, ok := registry[canonical]; !ok {
		panic(fmt.Sprintf("core: alias %q targets unregistered strategy %q", alias, canonical))
	}
	aliases[alias] = canonical
}

// LookupStrategy resolves a wire name to a registered Strategy. The empty
// name selects the default ("paper", matching the zero Params); aliases
// resolve to their canonical strategy. Unknown names return an error
// wrapping ErrUnknownStrategy that enumerates the accepted vocabulary.
func LookupStrategy(name string) (Strategy, error) {
	if name == "" {
		name = "paper"
	}
	registryMu.RLock()
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	s, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (valid: %s)", ErrUnknownStrategy, name, strings.Join(StrategyVocabulary(), ", "))
	}
	return s, nil
}

// StrategyNames returns the sorted canonical names of every registered
// strategy.
func StrategyNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// StrategyAliases returns the accepted alternate spellings mapped to their
// canonical names.
func StrategyAliases() map[string]string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make(map[string]string, len(aliases))
	for a, c := range aliases {
		out[a] = c
	}
	return out
}

// StrategyVocabulary returns every accepted spelling — canonical names and
// aliases — sorted. This is the exact set LookupStrategy accepts (plus the
// empty default).
func StrategyVocabulary() []string {
	registryMu.RLock()
	vocab := make([]string, 0, len(registry)+len(aliases))
	for name := range registry {
		vocab = append(vocab, name)
	}
	for a := range aliases {
		vocab = append(vocab, a)
	}
	registryMu.RUnlock()
	sort.Strings(vocab)
	return vocab
}

func init() {
	RegisterStrategy(StrategyPaper)
	RegisterStrategy(StrategyPaperRandom)
	RegisterStrategy(StrategyGreedyCost)
	RegisterStrategy(StrategyPaperRetry)
	RegisterStrategy(StrategyXCodeHybrid)
	// The pre-registry facade, flow and jobs surfaces spelled greedy-cost
	// "greedy"; spooled jobs and client scripts still do.
	RegisterStrategyAlias("greedy", "greedy-cost")
}
