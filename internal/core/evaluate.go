package core

import (
	"context"

	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
	"xhybrid/internal/xmask"
)

// Comparison is a Table 1 row: the proposed hybrid versus the X-masking-only
// [5] and X-canceling-MISR-only [12] baselines for one design.
type Comparison struct {
	// Patterns is the number of test patterns applied.
	Patterns int
	// Cells is the total scan-cell count.
	Cells int
	// TotalX and XDensity characterize the responses.
	TotalX   int
	XDensity float64

	// MaskOnlyBits is the conventional per-pattern X-masking volume [5].
	MaskOnlyBits int
	// CancelOnlyBits is the X-canceling-MISR-only volume [12].
	CancelOnlyBits int
	// HybridBits is the proposed method's total (masks + canceling).
	HybridBits int

	// ImprovementOverMask = MaskOnlyBits / HybridBits.
	ImprovementOverMask float64
	// ImprovementOverCancel = CancelOnlyBits / HybridBits.
	ImprovementOverCancel float64

	// TestTimeCancelOnly is the normalized time-multiplexed X-canceling
	// test time with all X's entering the MISR.
	TestTimeCancelOnly float64
	// TestTimeHybrid is the normalized test time with only the residual
	// X's entering the MISR.
	TestTimeHybrid float64
	// TestTimeImprovement = TestTimeCancelOnly / TestTimeHybrid.
	TestTimeImprovement float64

	// Result carries the partitioning details.
	Result *Result
}

// Evaluate runs the partitioner and assembles the full baseline comparison.
func Evaluate(m *xmap.XMap, params Params) (*Comparison, error) {
	return EvaluateCtx(context.Background(), m, params)
}

// EvaluateCtx is Evaluate under a context; cancellation propagates into the
// partitioner exactly as in RunCtx.
func EvaluateCtx(ctx context.Context, m *xmap.XMap, params Params) (*Comparison, error) {
	res, err := RunCtx(ctx, m, params)
	if err != nil {
		return nil, err
	}
	c := &Comparison{
		Patterns: m.Patterns(),
		Cells:    m.Cells(),
		TotalX:   res.TotalX,
		XDensity: m.Density(),
		Result:   res,
	}
	mSize, q := params.Cancel.MISR.Size, params.Cancel.Q
	c.MaskOnlyBits = xmask.ControlBitsPerPattern(params.Geom, m.Patterns())
	c.CancelOnlyBits = xcancel.ControlBits(res.TotalX, mSize, q)
	c.HybridBits = res.TotalBits
	if c.HybridBits > 0 {
		c.ImprovementOverMask = float64(c.MaskOnlyBits) / float64(c.HybridBits)
		c.ImprovementOverCancel = float64(c.CancelOnlyBits) / float64(c.HybridBits)
	}

	totalBits := m.Patterns() * m.Cells()
	var fullDensity, residDensity float64
	if totalBits > 0 {
		fullDensity = float64(res.TotalX) / float64(totalBits)
		residDensity = float64(res.ResidualX) / float64(totalBits)
	}
	c.TestTimeCancelOnly = xcancel.NormalizedTestTime(params.Cancel, params.Geom.Chains, fullDensity)
	c.TestTimeHybrid = xcancel.NormalizedTestTime(params.Cancel, params.Geom.Chains, residDensity)
	if c.TestTimeHybrid > 0 {
		c.TestTimeImprovement = c.TestTimeCancelOnly / c.TestTimeHybrid
	}
	return c, nil
}
