package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestRegistryContents pins the shipped vocabulary: five canonical
// strategies plus the legacy "greedy" spelling. Growing this list is fine;
// renaming or dropping a name breaks spooled jobs and checkpoints, so the
// test spells the whole set out.
func TestRegistryContents(t *testing.T) {
	wantNames := []string{"greedy-cost", "paper", "paper-random", "paper-retry", "xcode-hybrid"}
	if got := StrategyNames(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("StrategyNames() = %v, want %v", got, wantNames)
	}
	wantAliases := map[string]string{"greedy": "greedy-cost"}
	if got := StrategyAliases(); !reflect.DeepEqual(got, wantAliases) {
		t.Fatalf("StrategyAliases() = %v, want %v", got, wantAliases)
	}
	wantVocab := []string{"greedy", "greedy-cost", "paper", "paper-random", "paper-retry", "xcode-hybrid"}
	if got := StrategyVocabulary(); !reflect.DeepEqual(got, wantVocab) {
		t.Fatalf("StrategyVocabulary() = %v, want %v", got, wantVocab)
	}
}

func TestLookupStrategy(t *testing.T) {
	// Every canonical name resolves to a strategy reporting that name.
	for _, name := range StrategyNames() {
		s, err := LookupStrategy(name)
		if err != nil {
			t.Fatalf("LookupStrategy(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("LookupStrategy(%q).Name() = %q", name, s.Name())
		}
	}
	// Aliases resolve to their canonical strategy, never echo the alias.
	for alias, canonical := range StrategyAliases() {
		s, err := LookupStrategy(alias)
		if err != nil {
			t.Fatalf("LookupStrategy(%q): %v", alias, err)
		}
		if s.Name() != canonical {
			t.Fatalf("alias %q resolved to %q, want %q", alias, s.Name(), canonical)
		}
	}
	// The empty name is the paper default.
	s, err := LookupStrategy("")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "paper" {
		t.Fatalf(`LookupStrategy("") = %q, want paper`, s.Name())
	}
}

// TestLookupStrategyUnknown locks the error contract: errors.Is matches
// ErrUnknownStrategy and the message enumerates every accepted spelling, so
// surfaces that wrap it (facade, flow, jobs, HTTP 400 bodies) inherit the
// enumeration for free.
func TestLookupStrategyUnknown(t *testing.T) {
	_, err := LookupStrategy("simulated-annealing")
	if err == nil {
		t.Fatal("accepted unknown strategy")
	}
	if !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("error %v does not wrap ErrUnknownStrategy", err)
	}
	for _, name := range StrategyVocabulary() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not enumerate %q", err, name)
		}
	}
}

func TestRegisterStrategyPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate name", func() { RegisterStrategy(StrategyPaper) })
	mustPanic("empty name", func() { RegisterStrategy(namelessStrategy{}) })
	mustPanic("alias shadowing strategy", func() { RegisterStrategyAlias("paper", "greedy-cost") })
	mustPanic("alias to unregistered", func() { RegisterStrategyAlias("anneal", "simulated-annealing") })
	mustPanic("strategy shadowing alias", func() { RegisterStrategy(greedyAliasImpostor{}) })
}

// greedyAliasImpostor claims the "greedy" alias as a canonical name.
type greedyAliasImpostor struct{}

func (greedyAliasImpostor) Name() string                 { return "greedy" }
func (greedyAliasImpostor) Select(sc *Selection) []Split { return nil }
