package core

import (
	"fmt"
	"testing"

	"xhybrid/internal/misr"
	"xhybrid/internal/scan"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// TestResidualAgreement pins the three views of "X's left after masking" to
// each other, for every strategy and the clustered variant:
//
//	Result.ResidualX            — the planner's accounting
//	ResidualMap(...).TotalX()   — the planner's own residual X-map
//	RunPartitioned(...).TotalX  — what the X-canceling MISR actually sees
//	                              after the masks gate real responses
//
// The last one is the end-to-end check: responses are synthesized from the
// X-map, split per partition, passed through each partition's mask, and run
// through the partitioned canceler.
func TestResidualAgreement(t *testing.T) {
	type fixture struct {
		name string
		gen  func(t *testing.T) (*xmap.XMap, Params)
	}
	fixtures := []fixture{
		{name: "fig4", gen: func(*testing.T) (*xmap.XMap, Params) { return fig4(), fig4Params(2) }},
		{name: "cktb8", gen: func(t *testing.T) (*xmap.XMap, Params) {
			prof := workload.Scaled(workload.CKTB(), 8)
			m, err := prof.Generate()
			if err != nil {
				t.Fatal(err)
			}
			return m, Params{
				Geom:   prof.Geometry(),
				Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
			}
		}},
	}
	type runner struct {
		name string
		run  func(m *xmap.XMap, p Params) (*Result, error)
	}
	var runners []runner
	for _, s := range []Strategy{StrategyPaper, StrategyPaperRandom, StrategyGreedyCost, StrategyPaperRetry, StrategyXCodeHybrid} {
		s := s
		runners = append(runners, runner{name: s.Name(), run: func(m *xmap.XMap, p Params) (*Result, error) {
			p.Strategy = s
			return Run(m, p)
		}})
	}
	runners = append(runners, runner{name: "clustered", run: RunClustered})
	for _, fx := range fixtures {
		for _, rn := range runners {
			fx, rn := fx, rn
			t.Run(fmt.Sprintf("%s_%s", fx.name, rn.name), func(t *testing.T) {
				m, params := fx.gen(t)
				params.Seed = 1
				res, err := rn.run(m, params)
				if err != nil {
					t.Fatal(err)
				}
				rm := ResidualMap(m, res.Partitions)
				if rm.TotalX() != res.ResidualX {
					t.Fatalf("ResidualMap has %d X's, accounting says ResidualX = %d", rm.TotalX(), res.ResidualX)
				}
				// End to end: real responses, real masks, real canceler.
				set, err := workload.ResponsesFromXMap(m, params.Geom, 7)
				if err != nil {
					t.Fatal(err)
				}
				sets := make([]xcancel.PatternSet, len(res.Partitions))
				for i, p := range res.Partitions {
					sets[i] = p.Patterns
				}
				subs, err := xcancel.SplitByPartition(set, sets)
				if err != nil {
					t.Fatal(err)
				}
				for i, sub := range subs {
					masked := scan.NewResponseSet(set.Geom)
					for _, r := range sub.Responses {
						if err := masked.Append(res.Partitions[i].Mask.Apply(r)); err != nil {
							t.Fatal(err)
						}
					}
					subs[i] = masked
				}
				// The planner's accounting MISR can be any width, but the
				// response-level canceler needs one input per scan chain.
				// The X count it observes is independent of the MISR width,
				// which is all this test pins.
				runCfg := xcancel.Config{
					MISR: misr.MustStandard(params.Geom.Chains),
					Q:    min(params.Cancel.Q, params.Geom.Chains-1),
				}
				pr, err := xcancel.RunPartitioned(runCfg, subs, 2)
				if err != nil {
					t.Fatal(err)
				}
				if pr.TotalX != res.ResidualX {
					t.Fatalf("partitioned canceler saw %d X's, plan accounts ResidualX = %d", pr.TotalX, res.ResidualX)
				}
			})
		}
	}
}
