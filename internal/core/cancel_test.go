package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"xhybrid/internal/misr"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
)

// TestRunCtxCancelMidRunNoLeaks cancels a paper-scale run (CKT-B: 3000
// patterns, 36k cells; the greedy strategy makes the run take seconds) 50ms
// in and checks the three cancellation guarantees: the error surfaces as
// context.Canceled, the return is prompt (the scoring loops poll the
// context every few microseconds of work, not per round), and the
// evaluator's pool goroutines are all released — the goroutine count
// returns to its pre-run level.
func TestRunCtxCancelMidRunNoLeaks(t *testing.T) {
	prof := workload.CKTB()
	m, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	params := Params{
		Geom:     prof.Geometry(),
		Cancel:   xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		Strategy: StrategyGreedyCost,
		Workers:  8,
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunCtx(ctx, m, params)
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("run completed despite mid-run cancel (uncancelable path?)")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	if res != nil {
		t.Fatal("canceled run returned a partial result")
	}
	// The uncanceled greedy run takes seconds; a prompt abort returns well
	// inside this budget even under -race.
	if elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	waitForGoroutines(t, before)
}

// TestRunCtxDeadline covers the deadline flavor on the same workload.
func TestRunCtxDeadline(t *testing.T) {
	prof := workload.CKTB()
	m, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = RunCtx(ctx, m, Params{
		Geom:     prof.Geometry(),
		Cancel:   xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		Strategy: StrategyGreedyCost,
		Workers:  4,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunCtxPreCanceled: a dead context aborts before any compute.
func TestRunCtxPreCanceled(t *testing.T) {
	m := fig4()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	if _, err := RunCtx(ctx, m, fig4Params(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx err = %v, want context.Canceled", err)
	}
	if _, err := RunClusteredCtx(ctx, m, fig4Params(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunClusteredCtx err = %v, want context.Canceled", err)
	}
	if _, err := EvaluateCtx(ctx, m, fig4Params(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateCtx err = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, before)
}

// TestRunCtxBackgroundMatchesRun: threading a live context changes nothing
// about the plan (Run is RunCtx(Background)).
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	m := fig4()
	p := fig4Params(2)
	want, err := Run(m, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCtx(context.Background(), m, p)
	if err != nil {
		t.Fatal(err)
	}
	if want.TotalBits != got.TotalBits || len(want.Partitions) != len(got.Partitions) || len(want.Rounds) != len(got.Rounds) {
		t.Fatalf("RunCtx(Background) diverged: %+v vs %+v", want, got)
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// pre-run baseline (the canceling helper and pool workers unwind
// asynchronously after RunCtx returns).
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancel: before=%d now=%d", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
