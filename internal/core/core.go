// Package core implements the paper's contribution: reducing the control-bit
// overhead of a hybrid X-masking / X-canceling-MISR architecture by
// partitioning the test-pattern set.
//
// The partitioner (Algorithm 1) exploits the inter-correlation of X
// locations: it repeatedly picks a scan cell from the largest group of cells
// sharing the same X count and splits the pattern set into the patterns
// where that cell captures an X and the rest. Every partition shares one
// X-mask (a cell is masked only if it is X under every pattern of the
// partition, so no observable value is lost), and the X's that no mask
// removes are retired by the X-canceling MISR. A cost function — the total
// control bits of masks plus canceling — decides when another round of
// partitioning stops paying for itself.
//
// This package implements DESIGN.md §5.2 (Algorithm 1: candidate grouping,
// split selection, cost check, and the strategy variants) and §5.4 (the
// hybrid pipeline from X-map to ControlBitReport).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"xhybrid/internal/gf2"
	"xhybrid/internal/obs"
	"xhybrid/internal/pool"
	"xhybrid/internal/scan"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
	"xhybrid/internal/xmask"
)

// Sentinel errors returned (wrapped) by Run, RunClustered and Evaluate;
// match with errors.Is.
var (
	// ErrGeometryMismatch reports an X-map whose cell count differs from
	// Params.Geom.
	ErrGeometryMismatch = errors.New("core: X-map geometry mismatch")
	// ErrEmptyPatterns reports an X-map with no test patterns.
	ErrEmptyPatterns = errors.New("core: empty pattern set")
)

// Params configures a hybrid evaluation.
type Params struct {
	// Geom is the scan geometry; mask control bits cost Geom.Cells() per
	// partition ("longest scan chain length * number of scan chains").
	Geom scan.Geometry
	// Cancel is the X-canceling MISR configuration (m, q).
	Cancel xcancel.Config
	// Strategy selects the split-selection rule (see the Strategy interface
	// and the registry in registry.go); nil selects StrategyPaper.
	Strategy Strategy
	// Seed seeds StrategyPaperRandom's cell choice.
	Seed int64
	// MaxRounds caps accepted partitioning rounds; 0 means unlimited.
	MaxRounds int
	// ElideEmptyMasks, when set, excludes partitions whose mask covers no
	// cell from the mask control-bit accounting (the masking hardware's
	// all-pass default). The paper always charges every partition; this is
	// an ablation knob.
	ElideEmptyMasks bool
	// GreedyCandidateCap bounds the distinct splits StrategyGreedyCost
	// evaluates per round (largest groups first); 0 means 256.
	GreedyCandidateCap int
	// RetryBudget bounds the candidate groups StrategyPaperRetry tries
	// after a cost rejection before stopping; 0 means 8.
	RetryBudget int
	// MaskBitsPerPartition overrides the control-bit price of one mask
	// image (0 = the paper's Geom.Cells()). Lower prices model compressed
	// mask delivery (see internal/xmask encoders) and shift the cost
	// optimum toward more partitions.
	MaskBitsPerPartition int
	// Workers bounds the goroutines that score candidate splits and
	// recompute per-partition masked-X counts; 0 means
	// runtime.GOMAXPROCS(0). Every parallel reduction is deterministic, so
	// results are byte-identical for any worker count.
	Workers int
	// CheckpointEvery emits a checkpoint to CheckpointSink after every
	// CheckpointEvery accepted rounds (0 disables checkpointing). Only
	// RunCtx's round loop checkpoints; RunClustered ignores these fields.
	CheckpointEvery int
	// CheckpointSink receives the run's periodic checkpoints. It is called
	// synchronously from the round loop at a commit boundary, so the
	// checkpoint it sees is always resumable; an error from the sink aborts
	// the run (durable callers wrap the sink with their own retry policy).
	CheckpointSink func(*Checkpoint) error
	// Resume, when non-nil, replays the checkpoint through the engine
	// before the first selection round, verifying every recorded cost, and
	// continues from where it left off — the resumed plan is byte-identical
	// to an uninterrupted run. A checkpoint that fails verification aborts
	// with ErrCheckpointMismatch.
	Resume *Checkpoint
	// Obs receives the run's counters and stage spans (rounds, candidate
	// splits scored, masked-X recomputes, pool saturation). nil disables
	// observation at no cost to the hot loops.
	Obs *obs.Recorder
}

// workers resolves the effective worker count.
func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// maskImageBits returns the control-bit price of one partition mask.
func (p Params) maskImageBits() int {
	if p.MaskBitsPerPartition > 0 {
		return p.MaskBitsPerPartition
	}
	return p.Geom.Cells()
}

func (p Params) retryBudget() int {
	if p.RetryBudget <= 0 {
		return 8
	}
	return p.RetryBudget
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if err := p.Geom.Validate(); err != nil {
		return err
	}
	if err := p.Cancel.Validate(); err != nil {
		return err
	}
	if p.Strategy != nil && p.Strategy.Name() == "" {
		return fmt.Errorf("core: strategy with empty name")
	}
	if p.MaxRounds < 0 {
		return fmt.Errorf("core: negative MaxRounds")
	}
	if p.RetryBudget < 0 {
		return fmt.Errorf("core: negative RetryBudget")
	}
	if p.MaskBitsPerPartition < 0 {
		return fmt.Errorf("core: negative MaskBitsPerPartition")
	}
	if p.Workers < 0 {
		return fmt.Errorf("core: negative Workers")
	}
	if p.CheckpointEvery < 0 {
		return fmt.Errorf("core: negative CheckpointEvery")
	}
	return nil
}

// Partition is one group of test patterns sharing a mask.
type Partition struct {
	// Patterns selects the member patterns.
	Patterns gf2.Vec
	// Mask is the shared X-mask (never masks an observable value).
	Mask xmask.Mask
	// MaskedX is the number of X values the mask removes across the
	// partition's patterns.
	MaskedX int
}

// Size returns the number of patterns in the partition.
func (p Partition) Size() int { return p.Patterns.PopCount() }

// Round records one partitioning round for tracing and tests.
type Round struct {
	// Round is the 1-based round number.
	Round int
	// SplitPartition indexes the partition (before the split) that was cut.
	SplitPartition int
	// SplitCell is the selected scan cell.
	SplitCell int
	// GroupSize and GroupCount describe the equal-count group the cell came
	// from (group size = member cells, count = shared X count); both are 0
	// for StrategyGreedyCost.
	GroupSize  int
	GroupCount int
	// CostBefore and CostAfter are the total control bits around the split.
	CostBefore int
	CostAfter  int
	// Accepted reports whether the split was kept (cost decreased).
	Accepted bool
}

// Result is the outcome of partitioning plus the full hybrid accounting.
type Result struct {
	// Partitions are the final pattern partitions with their masks.
	Partitions []Partition
	// Rounds is the trace, including a final rejected round if the cost
	// function terminated the process.
	Rounds []Round

	// TotalX is the number of X's in the responses.
	TotalX int
	// MaskedX is the number of X's removed by the partition masks.
	MaskedX int
	// ResidualX = TotalX - MaskedX flows into the X-canceling MISR.
	ResidualX int

	// MaskBits is the masking control-bit volume (cells * partitions,
	// minus elided empty masks if configured).
	MaskBits int
	// CancelBits is the X-canceling control-bit volume for ResidualX.
	CancelBits int
	// TotalBits = MaskBits + CancelBits.
	TotalBits int
}

// evaluator carries the shared state of one partitioning run. Its pool fans
// the per-cell and per-candidate loops out over Params.Workers goroutines;
// every reduction is deterministic, so the evaluator produces identical
// results for any worker count.
type evaluator struct {
	m      *xmap.XMap
	params Params
	totalX int
	pool   *pool.Pool

	// ctx aborts the run; done caches ctx.Done() so the hot loops can poll
	// with one channel select instead of a ctx.Err() mutex round-trip. A
	// nil done channel (context.Background) never fires.
	ctx  context.Context
	done <-chan struct{}

	// shards is the lock-striped state interner: candidate scoring interns
	// partition states from pool goroutines, and a single mutex would
	// serialize every probe of every worker through one lock. Instead the
	// content hash picks one of stateShardCount stripes, each with its own
	// VecSet and state list, so concurrent probes contend only when they
	// hash to the same stripe. Ids are dense per stripe and assignment
	// order varies with scheduling, but nothing downstream reads them —
	// states are addressed by *partState, unique per content — so
	// concurrent interning cannot leak scheduling into the results.
	shards [stateShardCount]stateShard

	// Cached observability handles (nil when params.Obs is nil, which
	// makes every recording below a single-branch no-op).
	obsRounds      *obs.Counter
	obsAccepted    *obs.Counter
	obsScored      *obs.Counter
	obsRecomputes  *obs.Counter
	obsStateHits   *obs.Counter
	obsStateMisses *obs.Counter
	obsGroupHits   *obs.Counter
	obsGroupMisses *obs.Counter
	obsDelta       *obs.Counter
	obsFull        *obs.Counter
	obsIndexBuilds *obs.Counter
	obsIndexCells  *obs.Counter
	obsCheckpoints *obs.Counter
}

// stateShardBits sizes the interner's lock striping; 2^6 = 64 stripes keep
// the collision probability of two concurrent probes low for any plausible
// worker count while costing one small VecSet each.
const (
	stateShardBits  = 6
	stateShardCount = 1 << stateShardBits
)

// stateShard is one stripe of the interner: a content-keyed VecSet plus the
// partState per dense id, guarded by the stripe's own mutex.
type stateShard struct {
	mu     sync.Mutex
	idx    *gf2.VecSet
	states []*partState
	// Pad each shard out to its own cache line so neighboring stripe locks
	// don't false-share under concurrent scoring.
	_ [64 - (8+8+24)%64]byte
}

// newEvaluator builds the run state; the caller must Close the evaluator's
// pool when done.
func newEvaluator(ctx context.Context, m *xmap.XMap, params Params) *evaluator {
	// Force the X-map's lazy cell reindex at this serial point, before the
	// pool fans XCells readers out over worker goroutines.
	m.XCells()
	e := &evaluator{
		m:      m,
		params: params,
		totalX: m.TotalX(),
		pool:   pool.New(params.workers()),
		ctx:    ctx,
		done:   ctx.Done(),

		obsRounds:      params.Obs.Counter("core.rounds"),
		obsAccepted:    params.Obs.Counter("core.rounds.accepted"),
		obsScored:      params.Obs.Counter("core.splits.scored"),
		obsRecomputes:  params.Obs.Counter("core.maskedx.recomputes"),
		obsStateHits:   params.Obs.Counter("core.state.cache.hits"),
		obsStateMisses: params.Obs.Counter("core.state.cache.misses"),
		obsGroupHits:   params.Obs.Counter("core.groups.cache.hits"),
		obsGroupMisses: params.Obs.Counter("core.groups.cache.misses"),
		obsDelta:       params.Obs.Counter("core.score.delta"),
		obsFull:        params.Obs.Counter("core.score.full"),
		obsIndexBuilds: params.Obs.Counter("core.cellindex.builds"),
		obsIndexCells:  params.Obs.Counter("core.cellindex.cells.scanned"),
		obsCheckpoints: params.Obs.Counter("core.checkpoints.emitted"),
	}
	for i := range e.shards {
		e.shards[i].idx = gf2.NewVecSet()
	}
	return e
}

// close releases the pool and flushes the pool saturation stats.
func (e *evaluator) close() {
	if d, inl := e.pool.Stats(); d+inl > 0 {
		e.params.Obs.Set("core.pool.chunks.dispatched", d)
		e.params.Obs.Set("core.pool.chunks.inline", inl)
	}
	e.params.Obs.Set("core.pool.workers", int64(e.pool.Workers()))
	e.pool.Close()
}

// canceled reports whether the run's context has been canceled. One channel
// poll, so the hot loops can call it at every unit of work; a Background
// context compiles down to a select on a nil channel.
func (e *evaluator) canceled() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// err maps cancellation onto the error Run and RunClustered return: nil
// while the context is live, a wrapped context error (matching
// errors.Is(err, context.Canceled/DeadlineExceeded)) once it is done.
func (e *evaluator) err() error {
	if err := e.ctx.Err(); err != nil {
		return fmt.Errorf("core: run aborted: %w", err)
	}
	return nil
}

// maskedXIn returns how many X's a shared mask removes in the partition,
// always scanning every X-capturing cell — the raw, uncached cost the
// incremental engine avoids (partState.ensureStats computes the same value
// once per distinct partition, over a partition-local cell index).
// Benchmarks keep measuring this scan directly.
// The per-cell membership tests fan out over the pool; the integer sum is
// order-independent. A canceled run short-circuits to 0 — the caller
// discards the round's results once it observes the cancellation.
func (e *evaluator) maskedXIn(part gf2.Vec) int {
	size := part.PopCount()
	if size == 0 {
		return 0
	}
	e.obsRecomputes.Inc()
	cells := e.m.XCells()
	return e.pool.SumInt(len(cells), func(i int) int {
		if i&cancelCheckMask == 0 && e.canceled() {
			return 0
		}
		if cells[i].Patterns.PopCountAnd(part) == size {
			return size
		}
		return 0
	})
}

// cancelCheckMask spaces the cancellation polls of the per-cell loops: one
// channel select every 64 cells keeps the abort latency in the microseconds
// while staying invisible next to the popcount work per cell.
const cancelCheckMask = 63
