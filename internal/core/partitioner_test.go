package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"xhybrid/internal/gf2"
	"xhybrid/internal/misr"
	"xhybrid/internal/scan"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// fig4 builds the paper's Figure 4 X-map (8 patterns, 5 chains x 3 cells).
func fig4() *xmap.XMap {
	m := xmap.New(8, 15)
	add := func(chain, pos int, patterns ...int) {
		cell := (chain-1)*3 + (pos - 1)
		for _, p := range patterns {
			m.Add(p-1, cell)
		}
	}
	add(1, 1, 1, 4, 5, 6)
	add(2, 1, 1, 4, 5, 6)
	add(3, 1, 1, 4, 5, 6)
	add(2, 3, 2, 3)
	add(4, 3, 1, 2, 3, 4, 5, 7, 8)
	add(5, 2, 1, 2, 4, 5, 7, 8)
	add(5, 3, 6)
	return m
}

func fig4Params(q int) Params {
	return Params{
		Geom:   scan.MustGeometry(5, 3),
		Cancel: xcancel.Config{MISR: misr.MustStandard(10), Q: q},
	}
}

func patterns(ps ...int) gf2.Vec {
	v := gf2.NewVec(8)
	for _, p := range ps {
		v.Set(p - 1)
	}
	return v
}

// Figure 5 with the Section 4 cost walk-through at m=10, q=2: two accepted
// rounds, final partitions {1,4,5}, {6}, {2,3,7,8}, costs 60 then 58.
func TestFigure5PartitionTrace(t *testing.T) {
	res, err := Run(fig4(), fig4Params(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2: %+v", len(res.Rounds), res.Rounds)
	}
	r1 := res.Rounds[0]
	// Round 1 splits on SC1[1] (cell 0), from the group of 3 cells with 4 X's.
	if r1.SplitCell != 0 || r1.GroupSize != 3 || r1.GroupCount != 4 {
		t.Fatalf("round 1 = %+v, want split on cell 0 from group size 3 count 4", r1)
	}
	if r1.CostAfter != 60 {
		t.Fatalf("round 1 cost = %d, want 60 (paper: 3*5*2 + 10*2*12/8)", r1.CostAfter)
	}
	if !r1.Accepted {
		t.Fatal("round 1 rejected")
	}
	r2 := res.Rounds[1]
	// Round 2 splits Partition 1 on SC4[3] (cell 11), group of 2 cells, 3 X's.
	if r2.SplitCell != 11 || r2.GroupSize != 2 || r2.GroupCount != 3 {
		t.Fatalf("round 2 = %+v, want split on cell 11 from group size 2 count 3", r2)
	}
	if r2.CostAfter != 58 {
		t.Fatalf("round 2 cost = %d, want 58 (paper: 57.5 -> 58)", r2.CostAfter)
	}
	if !r2.Accepted {
		t.Fatal("round 2 rejected")
	}

	if len(res.Partitions) != 3 {
		t.Fatalf("final partitions = %d, want 3", len(res.Partitions))
	}
	want := []gf2.Vec{patterns(1, 4, 5), patterns(6), patterns(2, 3, 7, 8)}
	for i, w := range want {
		if !res.Partitions[i].Patterns.Equal(w) {
			t.Fatalf("partition %d = %v, want %v", i, res.Partitions[i].Patterns, w)
		}
	}
	if res.MaskedX != 23 || res.ResidualX != 5 {
		t.Fatalf("masked/residual = %d/%d, want 23/5 (paper)", res.MaskedX, res.ResidualX)
	}
	if res.MaskBits != 45 {
		t.Fatalf("mask bits = %d, want 45 (paper: 120 -> 45)", res.MaskBits)
	}
	if res.TotalBits != 58 {
		t.Fatalf("total bits = %d, want 58", res.TotalBits)
	}
}

// Section 4, m=10 q=1: the cost function stops at round 1 (44 bits; round 2
// would cost 51).
func TestCostFunctionStopsAtRoundOne(t *testing.T) {
	res, err := Run(fig4(), fig4Params(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2 (one accepted + one rejected)", len(res.Rounds))
	}
	if !res.Rounds[0].Accepted || res.Rounds[0].CostAfter != 44 {
		t.Fatalf("round 1 = %+v, want accepted at 44 (paper: 43.3 -> 44)", res.Rounds[0])
	}
	if res.Rounds[1].Accepted || res.Rounds[1].CostAfter != 51 {
		t.Fatalf("round 2 = %+v, want rejected at 51 (paper: 50.5 -> 51)", res.Rounds[1])
	}
	if len(res.Partitions) != 2 {
		t.Fatalf("final partitions = %d, want 2", len(res.Partitions))
	}
	want := []gf2.Vec{patterns(1, 4, 5, 6), patterns(2, 3, 7, 8)}
	for i, w := range want {
		if !res.Partitions[i].Patterns.Equal(w) {
			t.Fatalf("partition %d = %v, want %v", i, res.Partitions[i].Patterns, w)
		}
	}
	if res.TotalBits != 44 {
		t.Fatalf("total bits = %d, want 44", res.TotalBits)
	}
	// Round 1 removes 16 X's and leaks 12 (paper).
	if res.MaskedX != 16 || res.ResidualX != 12 {
		t.Fatalf("masked/residual = %d/%d, want 16/12", res.MaskedX, res.ResidualX)
	}
}

// The random-member variant must still find the same partitions for Figure 4
// because all three candidate cells of the winning group share the same
// pattern signature.
func TestPaperRandomStrategySameResult(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p := fig4Params(2)
		p.Strategy = StrategyPaperRandom
		p.Seed = seed
		res, err := Run(fig4(), p)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalBits != 58 || len(res.Partitions) != 3 {
			t.Fatalf("seed %d: total bits %d partitions %d", seed, res.TotalBits, len(res.Partitions))
		}
	}
}

// Greedy-cost must never end with a worse total than the paper heuristic.
func TestGreedyAtLeastAsGood(t *testing.T) {
	f := func(seed int64) bool {
		m, geom := randMap(seed)
		base := Params{Geom: geom, Cancel: xcancel.Config{MISR: misr.MustStandard(10), Q: 2}}
		paper, err := Run(m, base)
		if err != nil {
			return false
		}
		g := base
		g.Strategy = StrategyGreedyCost
		greedy, err := Run(m, g)
		if err != nil {
			return false
		}
		return greedy.TotalBits <= paper.TotalBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func randMap(seed int64) (*xmap.XMap, scan.Geometry) {
	r := rand.New(rand.NewSource(seed))
	chains, chainLen := 2+r.Intn(6), 2+r.Intn(6)
	geom := scan.MustGeometry(chains, chainLen)
	np := 2 + r.Intn(20)
	m := xmap.New(np, geom.Cells())
	// A couple of correlated clusters plus background noise.
	for g := 0; g < 1+r.Intn(3); g++ {
		var cells, pats []int
		for i := 0; i < 1+r.Intn(4); i++ {
			cells = append(cells, r.Intn(geom.Cells()))
		}
		for p := 0; p < 1+r.Intn(np); p++ {
			if r.Intn(2) == 1 {
				pats = append(pats, p)
			}
		}
		for _, c := range cells {
			for _, p := range pats {
				m.Add(p, c)
			}
		}
	}
	for i := 0; i < r.Intn(30); i++ {
		m.Add(r.Intn(np), r.Intn(geom.Cells()))
	}
	return m, geom
}

// Core invariants for any input and strategy.
func TestPartitionInvariants(t *testing.T) {
	strategies := []Strategy{StrategyPaper, StrategyPaperRandom, StrategyGreedyCost}
	f := func(seed int64) bool {
		m, geom := randMap(seed)
		for _, s := range strategies {
			p := Params{
				Geom:     geom,
				Cancel:   xcancel.Config{MISR: misr.MustStandard(12), Q: 3},
				Strategy: s,
				Seed:     seed,
			}
			res, err := Run(m, p)
			if err != nil {
				return false
			}
			// Partitions form a disjoint cover of all patterns.
			cover := gf2.NewVec(m.Patterns())
			total := 0
			for _, part := range res.Partitions {
				if part.Patterns.PopCountAnd(cover) != 0 {
					return false // overlap
				}
				cover.Or(part.Patterns)
				total += part.Size()
				// Mask accounting must match the partition.
				if part.MaskedX != part.Mask.Cells.PopCount()*part.Size() {
					return false
				}
			}
			if total != m.Patterns() || cover.PopCount() != m.Patterns() {
				return false
			}
			// X accounting.
			if res.MaskedX+res.ResidualX != res.TotalX || res.TotalX != m.TotalX() {
				return false
			}
			if res.ResidualX < 0 {
				return false
			}
			// Accepted rounds strictly decrease cost.
			for _, r := range res.Rounds {
				if r.Accepted && r.CostAfter >= r.CostBefore {
					return false
				}
			}
			// Residual map agrees with the accounting.
			if ResidualMap(m, res.Partitions).TotalX() != res.ResidualX {
				return false
			}
			// Final cost never exceeds the no-partitioning upper bound of a
			// single shared mask.
			if len(res.Rounds) > 0 && res.Rounds[0].Accepted && res.TotalBits > res.Rounds[0].CostBefore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	m := fig4()
	p := fig4Params(2)
	p.Geom = scan.MustGeometry(4, 3) // 12 cells != 15
	if _, err := Run(m, p); err == nil {
		t.Fatal("accepted mismatched geometry")
	}
	p = fig4Params(2)
	p.Strategy = namelessStrategy{}
	if _, err := Run(m, p); err == nil {
		t.Fatal("accepted strategy with empty name")
	}
	p = fig4Params(2)
	p.MaxRounds = -1
	if _, err := Run(m, p); err == nil {
		t.Fatal("accepted negative MaxRounds")
	}
	if _, err := Run(xmap.New(0, 15), fig4Params(2)); err == nil {
		t.Fatal("accepted empty pattern set")
	}
}

func TestMaxRounds(t *testing.T) {
	p := fig4Params(2)
	p.MaxRounds = 1
	res, err := Run(fig4(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partitions) != 2 {
		t.Fatalf("partitions = %d, want 2 with MaxRounds=1", len(res.Partitions))
	}
}

func TestNoXMapStillWorks(t *testing.T) {
	m := xmap.New(4, 15) // no X's at all
	res, err := Run(m, fig4Params(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partitions) != 1 || res.TotalX != 0 || res.CancelBits != 0 {
		t.Fatalf("unexpected result on X-free map: %+v", res)
	}
	// One (useless) shared mask is still charged under paper accounting.
	if res.MaskBits != 15 {
		t.Fatalf("MaskBits = %d, want 15", res.MaskBits)
	}
}

func TestElideEmptyMasks(t *testing.T) {
	m := xmap.New(4, 15)
	p := fig4Params(2)
	p.ElideEmptyMasks = true
	res, err := Run(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaskBits != 0 || res.TotalBits != 0 {
		t.Fatalf("elided accounting wrong: %+v", res)
	}
}

// Cheap (compressed) mask delivery shifts the cost optimum toward more
// partitions: the m=10 q=1 configuration that stops at round 1 under the
// paper's raw mask price continues to three partitions when a mask image
// costs one bit.
func TestCompressedMaskPriceChangesOptimum(t *testing.T) {
	raw, err := Run(fig4(), fig4Params(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Partitions) != 2 {
		t.Fatalf("raw partitions = %d, want 2", len(raw.Partitions))
	}
	p := fig4Params(1)
	p.MaskBitsPerPartition = 1
	cheap, err := Run(fig4(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cheap.Partitions) != 3 {
		t.Fatalf("cheap-mask partitions = %d, want 3", len(cheap.Partitions))
	}
	// Round 2: masks 3*1 + canceling ceil(10*5/9) = 3 + 6 = 9.
	if cheap.TotalBits != 9 {
		t.Fatalf("cheap-mask total = %d, want 9", cheap.TotalBits)
	}
	if cheap.MaskedX <= raw.MaskedX {
		t.Fatal("cheaper masks should mask at least as many X's")
	}
	// Validation.
	p.MaskBitsPerPartition = -1
	if _, err := Run(fig4(), p); err == nil {
		t.Fatal("accepted negative mask price")
	}
}

func TestEvaluateComparison(t *testing.T) {
	c, err := Evaluate(fig4(), fig4Params(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.MaskOnlyBits != 120 {
		t.Fatalf("MaskOnlyBits = %d, want 120", c.MaskOnlyBits)
	}
	// Canceling only: ceil(10*2*28/8) = 70.
	if c.CancelOnlyBits != 70 {
		t.Fatalf("CancelOnlyBits = %d, want 70", c.CancelOnlyBits)
	}
	if c.HybridBits != 58 {
		t.Fatalf("HybridBits = %d, want 58", c.HybridBits)
	}
	if c.ImprovementOverMask <= 2.0 || c.ImprovementOverCancel <= 1.0 {
		t.Fatalf("improvements = %f / %f", c.ImprovementOverMask, c.ImprovementOverCancel)
	}
	if c.TestTimeHybrid >= c.TestTimeCancelOnly {
		t.Fatalf("hybrid test time %f not below canceling-only %f", c.TestTimeHybrid, c.TestTimeCancelOnly)
	}
	if c.TestTimeImprovement <= 1.0 {
		t.Fatalf("TestTimeImprovement = %f", c.TestTimeImprovement)
	}
}

// namelessStrategy fails Params.Validate: every strategy must report a name.
type namelessStrategy struct{}

func (namelessStrategy) Name() string                 { return "" }
func (namelessStrategy) Select(sc *Selection) []Split { return nil }

func TestStrategyString(t *testing.T) {
	if StrategyPaper.Name() != "paper" || StrategyPaperRandom.Name() != "paper-random" ||
		StrategyGreedyCost.Name() != "greedy-cost" || StrategyXCodeHybrid.Name() != "xcode-hybrid" {
		t.Fatal("strategy names wrong")
	}
	// fmt's %s keeps working on the concrete built-ins.
	if fmt.Sprintf("%s", StrategyPaper) != "paper" {
		t.Fatal("Stringer wrong")
	}
	// nil Params.Strategy resolves to the paper procedure.
	if (Params{}).strategy().Name() != "paper" {
		t.Fatal("nil strategy default wrong")
	}
}
