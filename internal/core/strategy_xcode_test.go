package core

import (
	"testing"

	"xhybrid/internal/gf2"
	"xhybrid/internal/misr"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xcode"
	"xhybrid/internal/xmap"
)

func xcodeParams(t *testing.T) (*xmap.XMap, Params) {
	t.Helper()
	prof := workload.Scaled(workload.CKTB(), 8)
	m, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return m, Params{
		Geom:     prof.Geometry(),
		Cancel:   xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		Strategy: StrategyXCodeHybrid,
		Seed:     1,
	}
}

// TestXCodeHybridPlan checks the strategy produces a real, improving plan:
// every accepted round lowers the standard mask+cancel cost (the engine's
// accept gate is strategy-independent), the final plan beats the no-split
// baseline, and the X-code residual it optimizes for is computable over the
// resulting partitions.
func TestXCodeHybridPlan(t *testing.T) {
	m, p := xcodeParams(t)
	res, err := Run(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partitions) < 2 {
		t.Fatalf("xcode-hybrid never split: %d partitions", len(res.Partitions))
	}
	accepted := 0
	for _, r := range res.Rounds {
		if r.Accepted {
			accepted++
			if r.CostAfter >= r.CostBefore {
				t.Errorf("round %d accepted without improving: %d -> %d", r.Round, r.CostBefore, r.CostAfter)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no accepted rounds")
	}
	baseline := xcancel.ControlBits(m.TotalX(), 32, 7)
	if res.TotalBits >= baseline {
		t.Errorf("TotalBits %d not below no-split baseline %d", res.TotalBits, baseline)
	}
	// The secondary objective is well-defined on the plan it produced.
	c, err := xcode.Build(p.Geom.Chains)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([]gf2.Vec, len(res.Partitions))
	for i, part := range res.Partitions {
		vecs[i] = part.Patterns
	}
	if got := xcode.PlanResidual(c, m, p.Geom, vecs); got <= 0 {
		t.Errorf("PlanResidual = %d on a plan with residual X", got)
	}
}

// TestXCodeHybridDeterminism locks the plan across worker counts: the
// strategy's two-phase rescoring must order candidates identically no matter
// how the evaluator parallelizes scoring underneath it.
func TestXCodeHybridDeterminism(t *testing.T) {
	m, p := xcodeParams(t)
	var first string
	for _, workers := range []int{1, 4, 8} {
		p.Workers = workers
		res, err := Run(m, p)
		if err != nil {
			t.Fatal(err)
		}
		d := canonicalDigest(res)
		if first == "" {
			first = d
		} else if d != first {
			t.Fatalf("workers=%d plan digest %s differs from workers=1 %s", workers, d, first)
		}
	}
}

// TestXCodeHybridCheckpointRoundTrip proves the strategy composes with the
// engine's checkpoint/replay machinery unchanged: a run resumed from its own
// mid-flight checkpoint lands on the same plan as the uninterrupted run.
// Replay re-executes recorded splits (not selection), so any strategy whose
// accepted rounds carry standard costs — including xcode-hybrid — resumes.
func TestXCodeHybridCheckpointRoundTrip(t *testing.T) {
	m, p := xcodeParams(t)
	var cps []*Checkpoint
	p.CheckpointEvery = 2
	p.CheckpointSink = func(cp *Checkpoint) error {
		cps = append(cps, cp)
		return nil
	}
	straight, err := Run(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints emitted")
	}
	p.CheckpointEvery, p.CheckpointSink = 0, nil
	p.Resume = cps[len(cps)/2]
	resumed, err := Run(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalDigest(resumed) != canonicalDigest(straight) {
		t.Fatal("resumed xcode-hybrid run diverged from the straight run")
	}
}
