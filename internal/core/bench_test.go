package core

import (
	"testing"

	"xhybrid/internal/gf2"
	"xhybrid/internal/misr"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
)

func BenchmarkRunPaperExample(b *testing.B) {
	m := fig4()
	p := fig4Params(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCKTBQuarter(b *testing.B) {
	prof := workload.Scaled(workload.CKTB(), 4)
	m, err := prof.Generate()
	if err != nil {
		b.Fatal(err)
	}
	p := Params{Geom: prof.Geometry(), Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaskedXIn(b *testing.B) {
	prof := workload.Scaled(workload.CKTB(), 4)
	m, err := prof.Generate()
	if err != nil {
		b.Fatal(err)
	}
	e := &evaluator{
		m:      m,
		params: Params{Geom: prof.Geometry(), Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7}},
		totalX: m.TotalX(),
	}
	all := gf2.NewVec(m.Patterns())
	all.SetAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.maskedXIn(all)
	}
}
