package core

import (
	"context"
	"fmt"
	"testing"

	"xhybrid/internal/gf2"
	"xhybrid/internal/misr"
	"xhybrid/internal/obs"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
)

func BenchmarkRunPaperExample(b *testing.B) {
	m := fig4()
	p := fig4Params(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCKTBQuarter(b *testing.B) {
	prof := workload.Scaled(workload.CKTB(), 4)
	m, err := prof.Generate()
	if err != nil {
		b.Fatal(err)
	}
	p := Params{Geom: prof.Geometry(), Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunWorkers sweeps the worker count on the half-scale CKT-B
// workload: the serial (workers=1) vs parallel trajectory of the
// partitioning engine. Results are identical across the sweep; only the
// wall clock moves.
func BenchmarkRunWorkers(b *testing.B) {
	prof := workload.Scaled(workload.CKTB(), 2)
	m, err := prof.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := Params{
				Geom:    prof.Geometry(),
				Cancel:  xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
				Workers: w,
			}
			var bits int
			for i := 0; i < b.N; i++ {
				res, err := Run(m, p)
				if err != nil {
					b.Fatal(err)
				}
				bits = res.TotalBits
			}
			b.ReportMetric(float64(bits), "total-bits")
		})
	}
}

// BenchmarkRunStats pins the cost of the observability layer on the
// quarter-scale CKT-B run. The "off" case (Obs nil, the default) must track
// BenchmarkRunCKTBQuarter to within the noise floor — every counter touch
// behind a nil receiver is a single branch — while "on" shows the real
// price of live recording.
func BenchmarkRunStats(b *testing.B) {
	prof := workload.Scaled(workload.CKTB(), 4)
	m, err := prof.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"off", "on"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			p := Params{Geom: prof.Geometry(), Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7}}
			if mode == "on" {
				p.Obs = obs.New()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(m, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunGreedy is the CI regression gate for the incremental scoring
// engine: the greedy strategy is the one that scores every candidate split
// of every live partition per round, so it is the workload most sensitive
// to the delta pricing, cross-round memoization, and partition-local cell
// indexes. The benchstat job in ci.yml compares this benchmark between the
// PR head and its merge base and fails on a >20% slowdown.
func BenchmarkRunGreedy(b *testing.B) {
	prof := workload.Scaled(workload.CKTB(), 4)
	m, err := prof.Generate()
	if err != nil {
		b.Fatal(err)
	}
	p := Params{
		Geom:     prof.Geometry(),
		Cancel:   xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		Strategy: StrategyGreedyCost,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunGreedyWorkers8 is BenchmarkRunGreedy with the hot loops
// fanned out over 8 workers — the second CI regression gate, covering the
// striped state interner and the once-guarded memos that the serial run
// never contends on. Kept a separate top-level benchmark (not a sub-bench
// of BenchmarkRunGreedy) so the benchstat comparison of either gate never
// mixes samples.
func BenchmarkRunGreedyWorkers8(b *testing.B) {
	prof := workload.Scaled(workload.CKTB(), 4)
	m, err := prof.Generate()
	if err != nil {
		b.Fatal(err)
	}
	p := Params{
		Geom:     prof.Geometry(),
		Cancel:   xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		Strategy: StrategyGreedyCost,
		Workers:  8,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunXCodeHybrid gates the X-code hybrid strategy's selection
// cost: on top of the greedy engine's delta pricing it re-scores its
// finalists with corrupted-channel residual scans over the X-map, so it is
// the benchmark most sensitive to xcode.Residual and to the exported
// Selection surface (Candidates/PriceSplit) the strategy is built on. The
// benchstat job in ci.yml compares it between the PR head and its merge
// base and fails on a >20% slowdown.
func BenchmarkRunXCodeHybrid(b *testing.B) {
	prof := workload.Scaled(workload.CKTB(), 4)
	m, err := prof.Generate()
	if err != nil {
		b.Fatal(err)
	}
	p := Params{
		Geom:     prof.Geometry(),
		Cancel:   xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		Strategy: StrategyXCodeHybrid,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaskedXIn(b *testing.B) {
	prof := workload.Scaled(workload.CKTB(), 4)
	m, err := prof.Generate()
	if err != nil {
		b.Fatal(err)
	}
	// newEvaluator (not a bare literal) so the pool is real: the bare
	// struct used to panic on the nil pool the moment maskedXIn fanned out.
	e := newEvaluator(context.Background(), m, Params{
		Geom: prof.Geometry(), Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7}, Workers: 1,
	})
	defer e.close()
	all := gf2.NewVec(m.Patterns())
	all.SetAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.maskedXIn(all)
	}
}
