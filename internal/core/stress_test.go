package core

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"xhybrid/internal/gf2"
	"xhybrid/internal/misr"
	"xhybrid/internal/obs"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
)

// TestConcurrentInterningConsistency hammers one shared evaluator — the
// striped state interner plus every once-guarded memo — from many
// goroutines at once and then audits the wreckage: every intern call is
// accounted for as exactly one hit or miss, the miss count equals the
// number of states that exist, no content was interned twice across
// stripes, and every filled stat matches a serial recomputation. Run under
// -race (CI does) this is the engine's concurrency-safety proof.
func TestConcurrentInterningConsistency(t *testing.T) {
	prof := workload.Scaled(workload.CKTB(), 16)
	m, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	params := Params{
		Geom:    prof.Geometry(),
		Cancel:  xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		Obs:     rec,
		Workers: 4,
	}
	e := newEvaluator(context.Background(), m, params)
	defer e.close()

	patterns := m.Patterns()
	cells := m.XCells()
	// A shared pool of contents: every goroutine interns its own clone of
	// each, so dedup across goroutines (not pointer identity) is what keeps
	// the state count down.
	r := rand.New(rand.NewSource(42))
	vecs := make([]gf2.Vec, 48)
	for i := range vecs {
		v := gf2.NewVec(patterns)
		for j := 0; j < patterns; j++ {
			if r.Intn(3) != 0 {
				v.Set(j)
			}
		}
		vecs[i] = v
	}
	full := gf2.NewVec(patterns)
	for j := 0; j < patterns; j++ {
		full.Set(j)
	}

	const goroutines = 16
	calls := make([]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var n int64
			parent := e.stateFor(full.Clone())
			n++
			parent.ensureCells(e, nil)
			parent.ensureStats(e, nil)
			for i, v := range vecs {
				st := e.stateFor(v.Clone())
				n++
				st.ensureStats(e, nil)
				if (i+g)%3 == 0 {
					st.ensureCells(e, nil)
					st.ensureGroups(e)
				}
				if (i+g)%4 == 0 {
					st.ensureCands(e, 32)
				}
			}
			// Overlapping split fans: goroutines g and g+9 walk the same
			// cells, so split sides race their pair scans and Onces.
			for i := g; i < len(cells); i += 9 {
				xs, rs := e.splitStates(parent, cells[i].Cell)
				n += 2
				if xs.size+rs.size != parent.size {
					t.Errorf("split of cell %d lost patterns: %d + %d != %d",
						cells[i].Cell, xs.size, rs.size, parent.size)
				}
			}
			calls[g] = n
		}(g)
	}
	wg.Wait()

	var total int64
	for _, c := range calls {
		total += c
	}
	snap := rec.Snapshot()
	hits := snap.CounterValue("core.state.cache.hits")
	misses := snap.CounterValue("core.state.cache.misses")
	if hits+misses != total {
		t.Errorf("state cache hits %d + misses %d != %d intern calls", hits, misses, total)
	}
	states := e.internedStates()
	if int64(len(states)) != misses {
		t.Errorf("%d interned states but %d cache misses (must be 1:1)", len(states), misses)
	}
	uniq := gf2.NewVecSet()
	for _, st := range states {
		if _, existed := uniq.Add(st.part); existed {
			t.Fatal("one content interned twice across stripes")
		}
		if st.size != st.part.PopCount() {
			t.Errorf("state size %d != popcount %d", st.size, st.part.PopCount())
		}
	}
	// Every filled stat must match a from-scratch serial scan: concurrent
	// fills may race, but both racers compute the same integers, so the
	// committed values are exact.
	audited := 0
	for _, st := range states {
		if !st.statsReady.Load() {
			continue
		}
		wantX, wantCells := 0, 0
		if st.size > 0 {
			for _, c := range cells {
				if c.Patterns.PopCountAnd(st.part) == st.size {
					wantX += st.size
					wantCells++
				}
			}
		}
		if st.maskedX != wantX || st.maskCells != wantCells {
			t.Errorf("stats (%d, %d) != serial recompute (%d, %d)",
				st.maskedX, st.maskCells, wantX, wantCells)
		}
		audited++
	}
	if audited == 0 {
		t.Fatal("stress run filled no stats; the test exercised nothing")
	}
}

// TestGreedyPlanIdenticalUnderStress pins the tentpole guarantee at the Run
// level: with the interner striped and the memos once-guarded, a fully
// parallel greedy run produces a byte-identical result to the serial one.
// (TestRunDeterministicAcrossWorkers covers every strategy on small maps;
// this one runs the greedy selector on a scaled industrial profile, where
// candidate scoring actually fans out.)
func TestGreedyPlanIdenticalUnderStress(t *testing.T) {
	prof := workload.Scaled(workload.CKTB(), 16)
	m, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	params := Params{
		Geom:     prof.Geometry(),
		Cancel:   xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		Strategy: StrategyGreedyCost,
	}
	params.Workers = 1
	serial, err := Run(m, params)
	if err != nil {
		t.Fatal(err)
	}
	params.Workers = 8
	parallel, err := Run(m, params)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("workers=8 plan differs from workers=1:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
