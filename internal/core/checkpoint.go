package core

import (
	"errors"
	"fmt"
	"math/rand"
)

// CheckpointVersion is the current checkpoint format version. A checkpoint
// carrying any other version is rejected with ErrCheckpointMismatch, so a
// format change can never be half-read as the wrong fields.
const CheckpointVersion = 1

// ErrCheckpointMismatch reports a checkpoint that cannot be replayed onto
// this run: wrong format version, different strategy/seed/dimensions, a
// trace whose costs do not re-derive under the engine, or a final state
// whose digest disagrees with the recorded one. Callers holding older
// checkpoints (the job spool keeps the previous one) should fall back to
// the next older checkpoint, or to a from-scratch run; match with
// errors.Is.
var ErrCheckpointMismatch = errors.New("core: checkpoint does not match this run")

// Checkpoint captures the committed progress of a partitioning run at a
// round boundary. It is pure data — JSON-serializable, no engine state —
// because resume does not restore memory images: RunCtx replays the
// recorded attempt trace through the interned-state engine (the same
// splitStates/delta-pricing path the live loop uses), verifying every
// recorded cost on the way, and then continues selection exactly where the
// original run left off. Since every later decision depends only on the
// live partition contents, the running totals and the RNG stream position —
// all of which the replay restores bit-for-bit — the resumed run's plan is
// byte-identical to an uninterrupted one.
type Checkpoint struct {
	// Version is CheckpointVersion at write time.
	Version int `json:"version"`
	// Strategy and Seed echo the originating Params; resume refuses a
	// checkpoint taken under different selection rules.
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
	// Patterns and Cells echo the X-map dimensions.
	Patterns int `json:"patterns"`
	Cells    int `json:"cells"`
	// Rounds is the full attempt trace up to the checkpoint — accepted and
	// rejected rounds both, since rejected attempts consume round numbers
	// (and, for paper-retry, precede the accepted one). Checkpoints are
	// only emitted immediately after a commit, so the trace always ends
	// with an accepted round.
	Rounds []Round `json:"rounds"`
	// Masked, MaskBits and Cost are the running totals after the trace;
	// replay re-derives and verifies them.
	Masked   int `json:"masked"`
	MaskBits int `json:"maskBits"`
	Cost     int `json:"cost"`
	// StateDigest is a 64-bit content hash over the live partition bitsets
	// in partition order — the replay's end-state witness.
	StateDigest uint64 `json:"stateDigest"`
}

// liveDigest hashes the live partition list by content and order. Two runs
// holding the same partitions in the same order always digest equal; the
// boost-style combine keeps permutations and near-misses apart in practice
// (and replay additionally verifies every recorded cost, so the digest is a
// second witness, not the only one).
func liveDigest(live []*partState) uint64 {
	h := uint64(len(live)) * 0x9e3779b97f4a7c15
	for _, st := range live {
		h ^= st.part.Hash() + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	return h
}

// checkpoint assembles the current committed state as a Checkpoint. The
// rounds slice is cloned: the caller keeps appending to its own.
func (e *evaluator) checkpoint(live []*partState, rounds []Round, masked, maskBits, cost int) *Checkpoint {
	return &Checkpoint{
		Version:     CheckpointVersion,
		Strategy:    e.params.strategyName(),
		Seed:        e.params.Seed,
		Patterns:    e.m.Patterns(),
		Cells:       e.m.Cells(),
		Rounds:      append([]Round(nil), rounds...),
		Masked:      masked,
		MaskBits:    maskBits,
		Cost:        cost,
		StateDigest: liveDigest(live),
	}
}

// mismatch wraps ErrCheckpointMismatch with a reason.
func mismatch(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCheckpointMismatch, fmt.Sprintf(format, args...))
}

// replay re-applies a checkpoint's attempt trace onto a fresh run. Every
// recorded round is re-priced through the interned-state engine (the same
// delta pricing the live loop uses) and checked against the recorded costs
// and verdict; accepted rounds commit exactly as the live loop commits.
// For StrategyPaperRandom one rng draw per recorded round restores the
// stream to the position the uninterrupted run would have — selectPaper
// draws Intn(len(group.Cells)) once per attempt, and Round.GroupSize
// records that group size. Any disagreement returns ErrCheckpointMismatch
// and the caller falls back rather than continuing from a state the engine
// cannot vouch for.
//
// On success it returns the rebuilt live list, the trace, the running
// totals and the next round number, leaving the evaluator's intern caches
// warm for the continuation.
func (e *evaluator) replay(cp *Checkpoint, root *partState, rng *rand.Rand) (live []*partState, rounds []Round, masked, maskBits, cost, round int, err error) {
	fail := func(ferr error) ([]*partState, []Round, int, int, int, int, error) {
		return nil, nil, 0, 0, 0, 0, ferr
	}
	if cp.Version != CheckpointVersion {
		return fail(mismatch("version %d, want %d", cp.Version, CheckpointVersion))
	}
	if got := e.params.strategyName(); cp.Strategy != got {
		return fail(mismatch("strategy %q, run uses %q", cp.Strategy, got))
	}
	if cp.Seed != e.params.Seed {
		return fail(mismatch("seed %d, run uses %d", cp.Seed, e.params.Seed))
	}
	if cp.Patterns != e.m.Patterns() || cp.Cells != e.m.Cells() {
		return fail(mismatch("X-map %dx%d, run has %dx%d", cp.Patterns, cp.Cells, e.m.Patterns(), e.m.Cells()))
	}
	if n := len(cp.Rounds); n > 0 && !cp.Rounds[n-1].Accepted {
		// Checkpoints are emitted right after a commit; a trailing rejected
		// round means the file does not come from this engine's sink.
		return fail(mismatch("trace ends with a rejected round"))
	}

	live = []*partState{root}
	masked = root.maskedX
	maskBits = e.contrib(root)
	cost = maskBits + e.cancelBits(masked)
	for i, r := range cp.Rounds {
		if err := e.err(); err != nil {
			return fail(err)
		}
		if r.Round != i+1 {
			return fail(mismatch("round %d recorded as %d", i+1, r.Round))
		}
		if r.SplitPartition < 0 || r.SplitPartition >= len(live) {
			return fail(mismatch("round %d splits partition %d of %d", r.Round, r.SplitPartition, len(live)))
		}
		if _, ok := e.m.CellPatterns(r.SplitCell); !ok {
			return fail(mismatch("round %d splits on cell %d, which captures no X", r.Round, r.SplitCell))
		}
		parent := live[r.SplitPartition]
		xs, rs := e.splitStates(parent, r.SplitCell)
		e.obsDelta.Inc()
		newMasked := masked - parent.maskedX + xs.maskedX + rs.maskedX
		newMaskBits := maskBits - e.contrib(parent) + e.contrib(xs) + e.contrib(rs)
		newCost := newMaskBits + e.cancelBits(newMasked)
		if r.CostBefore != cost || r.CostAfter != newCost || r.Accepted != (newCost < cost) {
			return fail(mismatch("round %d re-derives as cost %d->%d (accepted=%v), recorded %d->%d (accepted=%v)",
				r.Round, cost, newCost, newCost < cost, r.CostBefore, r.CostAfter, r.Accepted))
		}
		if rr, ok := e.params.strategy().(RoundReplayer); ok {
			// Consume the draws the original selection spent on this
			// attempt, restoring the stream for the continuation.
			if rerr := rr.ReplayRound(rng, r); rerr != nil {
				return fail(mismatch("%s", rerr))
			}
		}
		if r.Accepted {
			xs.ensureCells(e, parent)
			rs.ensureCells(e, parent)
			live = append(live, nil)
			copy(live[r.SplitPartition+2:], live[r.SplitPartition+1:])
			live[r.SplitPartition] = xs
			live[r.SplitPartition+1] = rs
			masked, maskBits, cost = newMasked, newMaskBits, newCost
		}
	}
	if masked != cp.Masked || maskBits != cp.MaskBits || cost != cp.Cost {
		return fail(mismatch("replayed totals masked=%d maskBits=%d cost=%d, recorded %d/%d/%d",
			masked, maskBits, cost, cp.Masked, cp.MaskBits, cp.Cost))
	}
	if d := liveDigest(live); d != cp.StateDigest {
		return fail(mismatch("replayed state digest %#x, recorded %#x", d, cp.StateDigest))
	}
	rounds = append([]Round(nil), cp.Rounds...)
	return live, rounds, masked, maskBits, cost, len(cp.Rounds), nil
}
