package core

import (
	"sort"

	"xhybrid/internal/gf2"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xcode"
)

// xcodeStrategy is the weight-3 X-code hybrid: it assumes an X-code spatial
// compactor (internal/xcode) folds the scan chains onto the MISR inputs, so
// what the canceler pays for is not the raw residual X count but the number
// of corrupted compactor channels — an X-tolerant wiring can fold many X's
// from one chain into the same 3 channels. Each round it takes the splits
// that improve the standard mask+cancel cost (so the engine's accept gate,
// checkpoints and accounting behave exactly as for every other strategy)
// and orders them by the X-code architecture's canceling price — the
// control bits for the corrupted-channel count under the candidate plan —
// breaking ties by the standard cost. The committed plan is therefore
// valid and verifiable under the standard model while being chosen for the
// X-code one; stratbench reports both totals.
//
// Unlike the four classic strategies, this one is implemented entirely on
// the exported Selection surface (Candidates, PriceSplit, Patterns, XMap),
// exercising the same contract an out-of-package strategy would.
type xcodeStrategy struct{}

func (xcodeStrategy) Name() string   { return "xcode-hybrid" }
func (xcodeStrategy) String() string { return "xcode-hybrid" }

// xcodeCandidateCap bounds the gain-ranked candidates priced per partition
// and xcodeRescoreCap the finalists re-scored under the X-code model (the
// channel-residual scan is the expensive part).
const (
	xcodeCandidateCap = 24
	xcodeRescoreCap   = 8
)

func (s xcodeStrategy) Select(sc *Selection) []Split {
	type scored struct {
		Split
		stdCost int
		xBits   int
	}
	splitsOf := func(cands []scored) []Split {
		out := make([]Split, len(cands))
		for i, c := range cands {
			out[i] = c.Split
		}
		return out
	}
	// Phase 1: enumerate and delta-price candidates, keeping the strictly
	// improving ones — the engine would reject anything else.
	var cands []scored
	for i := 0; i < sc.Partitions(); i++ {
		for _, cell := range sc.Candidates(i, xcodeCandidateCap) {
			if c := sc.PriceSplit(i, cell); c < sc.Cost() {
				cands = append(cands, scored{Split: Split{Partition: i, Cell: cell}, stdCost: c})
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	// Phase 2: keep the cheapest finalists under the standard model (stable,
	// so equal costs keep gain-rank order) and re-score them by the X-code
	// architecture's canceling price. The mask term is identical for every
	// finalist (all add exactly one partition), so the corrupted-channel
	// control bits alone rank the X-code side.
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].stdCost < cands[b].stdCost })
	if len(cands) > xcodeRescoreCap {
		cands = cands[:xcodeRescoreCap]
	}
	m, geom, cfg := sc.XMap(), sc.Geometry(), sc.Config().Cancel
	code, err := xcode.Build(geom.Chains)
	if err != nil {
		// Unreachable for a validated geometry (Chains >= 1); fall back to
		// the standard-cost order.
		return splitsOf(cands)
	}
	base := make([]int, sc.Partitions())
	totalBase := 0
	for i := range base {
		base[i] = xcode.Residual(code, m, geom, sc.Patterns(i))
		totalBase += base[i]
	}
	for k := range cands {
		parent := sc.Patterns(cands[k].Partition)
		cellBits, ok := m.CellPatterns(cands[k].Cell)
		if !ok {
			continue
		}
		xs := gf2.AndOf(parent, cellBits)
		rs := gf2.AndNotOf(parent, cellBits)
		resid := totalBase - base[cands[k].Partition] +
			xcode.Residual(code, m, geom, xs) + xcode.Residual(code, m, geom, rs)
		cands[k].xBits = xcancel.ControlBits(resid, cfg.MISR.Size, cfg.Q)
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].xBits != cands[b].xBits {
			return cands[a].xBits < cands[b].xBits
		}
		return cands[a].stdCost < cands[b].stdCost
	})
	return splitsOf(cands)
}
