package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"xhybrid/internal/correlation"
	"xhybrid/internal/gf2"
	"xhybrid/internal/xcancel"
)

// partState caches everything the partitioner derives from one distinct
// partition bitset. States are interned by partition content in the
// evaluator's VecSet, so a bitset that reappears — a rejected split retried
// in a later round, the X side of one candidate equal to the rest of
// another, a cluster merge re-evaluated across hill-climb rounds — reuses
// the scan results instead of recomputing them. Partition bitsets are
// immutable once interned (splitStates and the cluster merges always build
// fresh vectors), so a cached value never goes stale.
type partState struct {
	// part is the pattern bitset, shared with the evaluator's VecSet
	// storage; read-only.
	part gf2.Vec
	// size is part.PopCount().
	size int

	// statsOnce guards maskedX/maskCells: candidate scoring fans out over
	// the pool and two in-flight candidates may share a side state.
	// statsReady lets scanPair skip sides that are already filled without
	// consuming their Once.
	statsOnce  sync.Once
	statsReady atomic.Bool
	// maskedX is the number of X's the partition's shared mask removes.
	maskedX int
	// maskCells is the number of cells that mask covers.
	maskCells int

	// cells are the slots into the X-map's XCells() whose cells capture at
	// least one in-partition X — the only cells any scan of this partition
	// can care about — and counts holds each one's in-partition X count.
	// Only committed partitions carry the index (candidate sides inherit
	// their parent's as a scan hint instead). Like the stats, the build is
	// once-guarded so concurrent callers are safe: the first builds, the
	// rest block on the Once; cellsReady is the acquire-ordered flag that
	// lets readers skip the Once entirely (and distinguishes a legitimately
	// empty index from an unbuilt one).
	cellsOnce  sync.Once
	cellsReady atomic.Bool
	cells      []int32
	counts     []int32

	// groups memoizes the partition's equal-count candidate groups.
	// Once-guarded like the stats: groupsPerPartition fans distinct states
	// out per index, but nothing stops an external caller (or a future
	// selector) from racing two lookups of one state, so the memo defends
	// itself rather than leaning on the caller's fan-out shape.
	groupsOnce  sync.Once
	groupsReady atomic.Bool
	groups      []correlation.Group

	// cands memoizes the partition's gain-ranked greedy candidate cells
	// (deduplicated by in-partition signature, capped), once-guarded like
	// groups. Partition indexes are assembled by the caller per round, so
	// the cache stays valid as the live list shifts.
	candsOnce  sync.Once
	candsReady atomic.Bool
	cands      []int
}

// shardFor picks the stripe a content hash lives in. The top hash bits
// select, so stripe choice is independent of the low bits VecSet's bucket
// map mixes on.
func (e *evaluator) shardFor(h uint64) *stateShard {
	return &e.shards[h>>(64-stateShardBits)]
}

// stateFor interns v and returns its state. The set keeps v itself; the
// caller must not mutate it afterwards. The content hash is computed once,
// outside the lock, and reused for both the stripe choice and the set probe.
func (e *evaluator) stateFor(v gf2.Vec) *partState {
	h := v.Hash()
	sh := e.shardFor(h)
	sh.mu.Lock()
	id, existed := sh.idx.AddWithHash(h, v)
	return e.internLocked(sh, id, existed)
}

// stateAnd interns (a & b) without materializing it on a cache hit. h must
// be a.HashAnd(b) (or the matching half of a.HashPair(b)).
func (e *evaluator) stateAnd(h uint64, a, b gf2.Vec) *partState {
	sh := e.shardFor(h)
	sh.mu.Lock()
	id, existed := sh.idx.AddAndWithHash(h, a, b)
	return e.internLocked(sh, id, existed)
}

// stateAndNot interns (a &^ b) without materializing it on a cache hit.
// h must be a.HashAndNot(b).
func (e *evaluator) stateAndNot(h uint64, a, b gf2.Vec) *partState {
	sh := e.shardFor(h)
	sh.mu.Lock()
	id, existed := sh.idx.AddAndNotWithHash(h, a, b)
	return e.internLocked(sh, id, existed)
}

// internLocked finishes a state lookup. It must be entered with sh.mu held
// and releases it.
func (e *evaluator) internLocked(sh *stateShard, id int, existed bool) *partState {
	if existed {
		st := sh.states[id]
		sh.mu.Unlock()
		e.obsStateHits.Inc()
		return st
	}
	part := sh.idx.Vec(id)
	st := &partState{part: part, size: part.PopCount()}
	sh.states = append(sh.states, st)
	sh.mu.Unlock()
	e.obsStateMisses.Inc()
	return st
}

// internedStates returns every state across the stripes (unordered) — the
// consistency surface the concurrent-interning stress test audits against
// the core.state.cache.* counters.
func (e *evaluator) internedStates() []*partState {
	var out []*partState
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		out = append(out, sh.states...)
		sh.mu.Unlock()
	}
	return out
}

// ensureStats computes the partition's maskedX and maskCells in a single
// pass over the cells that can matter. A partition carrying its own cell
// index gets the stats for free — a cell is fully X exactly when its stored
// in-partition count equals the partition size, no bitset is touched.
// Otherwise one popcount scan runs over hint (any superset of the
// intersecting slots, typically the parent partition's index) or, failing
// that, every X-capturing cell; the scan chunks over the pool with a
// position-indexed reduction, so the result is identical for any worker
// count. A canceled run leaves partial values; the caller aborts with the
// context error before they can escape.
func (st *partState) ensureStats(e *evaluator, hint []int32) {
	st.statsOnce.Do(func() {
		defer st.statsReady.Store(true)
		if st.size == 0 {
			return
		}
		if st.cellsReady.Load() {
			for _, n := range st.counts {
				if int(n) == st.size {
					st.maskedX += st.size
					st.maskCells++
				}
			}
			return
		}
		e.obsRecomputes.Inc()
		cells := e.m.XCells()
		n := len(cells)
		if hint != nil {
			n = len(hint)
		}
		type partial struct{ maskedX, maskCells int }
		partials := make([]partial, e.pool.Workers())
		e.pool.Chunks(n, func(c, lo, hi int) {
			var p partial
			for i := lo; i < hi; i++ {
				if i&cancelCheckMask == 0 && e.canceled() {
					break
				}
				slot := i
				if hint != nil {
					slot = int(hint[i])
				}
				if cells[slot].Patterns.PopCountAnd(st.part) == st.size {
					p.maskedX += st.size
					p.maskCells++
				}
			}
			partials[c] = p
		})
		for _, p := range partials {
			st.maskedX += p.maskedX
			st.maskCells += p.maskCells
		}
	})
}

// ensureCells builds the partition-local slot index with per-cell counts,
// narrowing the parent's when available (a sub-partition can only intersect
// cells its parent does). Safe for concurrent callers: the first one in
// builds (its parent hint wins; any hint yields the identical index, a hint
// only shrinks the scan), later ones block on the Once until the index is
// ready.
func (st *partState) ensureCells(e *evaluator, parent *partState) {
	if st.cellsReady.Load() {
		return
	}
	st.cellsOnce.Do(func() {
		var within []int32
		if parent != nil && parent.cellsReady.Load() {
			within = parent.cells
		}
		n := len(within)
		if within == nil {
			n = e.m.NumXCells()
		}
		e.obsIndexBuilds.Inc()
		e.obsIndexCells.Add(int64(n))
		st.cells, st.counts = e.m.IntersectingSlotCounts(st.part, within)
		st.cellsReady.Store(true)
	})
}

// ensureGroups memoizes the partition's equal-count groups, scanning only
// its local slot index. Concurrent lookups of one state are safe: the memo
// fills through the Once, and a caller that raced the fill returns the
// finished slice without counting a hit or a miss (the hit/miss counters
// track fast-path lookups and distinct computations; misses always equal
// the number of states that ever computed groups).
func (st *partState) ensureGroups(e *evaluator) []correlation.Group {
	if st.groupsReady.Load() {
		e.obsGroupHits.Inc()
		return st.groups
	}
	st.groupsOnce.Do(func() {
		e.obsGroupMisses.Inc()
		st.ensureCells(e, nil)
		st.groups = correlation.GroupsWithinCells(e.ctx, e.m, st.part, st.cells, e.pool, e.params.Obs)
		st.groupsReady.Store(true)
	})
	return st.groups
}

// ensureCands memoizes the partition's greedy candidate cells: one
// representative cell per distinct in-partition X signature (first in slot
// order, exactly the old full-scan enumeration restricted to cells that can
// intersect), ranked by gain — the total in-partition X's of the cells
// sharing the signature, a lower bound on what the split's X side masks —
// and capped at limit. sort.Slice on an identical input sequence is
// deterministic, so the ranking matches the pre-incremental engine's.
func (st *partState) ensureCands(e *evaluator, limit int) {
	if st.candsReady.Load() {
		return
	}
	st.candsOnce.Do(func() {
		st.ensureCells(e, nil)
		cells := e.m.XCells()
		type cand struct {
			cell int
			gain int
		}
		sigs := gf2.NewVecSet()
		var cands []cand
		for k, slot := range st.cells {
			if k&cancelCheckMask == 0 && e.canceled() {
				// Leave the memo unfilled (candsReady stays false, so the
				// selector skips this state); the run is aborting anyway.
				return
			}
			c := cells[slot]
			n := int(st.counts[k])
			if n >= st.size {
				// Fully-X cells can't split; the index guarantees n > 0.
				continue
			}
			id, existed := sigs.AddAnd(c.Patterns, st.part)
			if existed {
				cands[id].gain += n
				continue
			}
			cands = append(cands, cand{cell: c.Cell, gain: n})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].gain > cands[b].gain })
		if len(cands) > limit {
			cands = cands[:limit]
		}
		st.cands = make([]int, len(cands))
		for i, ca := range cands {
			st.cands[i] = ca.cell
		}
		st.candsReady.Store(true)
	})
}

// splitStates interns the two sides of splitting parent on cell and fills
// their stats. Both sides' content hashes come from one fused word scan
// (gf2.Vec.HashPair), so a cache hit costs a single pass over the parent
// and cell bitsets where two probes used to scan twice. When both sides
// are fresh, one pair scan over the parent's cell index prices them
// together; on a cache hit neither side's bitset is even materialized and
// no scan runs at all.
func (e *evaluator) splitStates(parent *partState, cell int) (xs, rs *partState) {
	cellBits, ok := e.m.CellPatterns(cell)
	if !ok {
		panic(fmt.Sprintf("core: split cell %d captures no X", cell))
	}
	hAnd, hAndNot := parent.part.HashPair(cellBits)
	xs = e.stateAnd(hAnd, parent.part, cellBits)
	rs = e.stateAndNot(hAndNot, parent.part, cellBits)
	if parent.cellsReady.Load() && xs.size > 0 && rs.size > 0 &&
		!xs.statsReady.Load() && !rs.statsReady.Load() {
		e.scanPair(parent, xs, rs)
	}
	var hint []int32
	if parent.cellsReady.Load() {
		hint = parent.cells
	}
	xs.ensureStats(e, hint)
	rs.ensureStats(e, hint)
	return xs, rs
}

// scanPair fills both split sides' stats from a single pass over the
// parent's cell index, spending one popcount per cell: the X side's
// in-partition count is measured directly and the rest side's falls out as
// the parent's stored count minus it. The fallback path would run two
// scans, each of them over a superset of these cells with the same popcount
// per cell — the pair scan is strictly cheaper and counts as one recompute.
// Results are committed through each side's Once, so racing fills (another
// candidate sharing a side) keep the first value; both computations produce
// identical integers, so the race never changes an outcome.
func (e *evaluator) scanPair(parent, xs, rs *partState) {
	e.obsRecomputes.Inc()
	cells := e.m.XCells()
	n := len(parent.cells)
	type partial struct{ mxX, mcX, mxR, mcR int }
	partials := make([]partial, e.pool.Workers())
	e.pool.Chunks(n, func(c, lo, hi int) {
		var p partial
		for i := lo; i < hi; i++ {
			if i&cancelCheckMask == 0 && e.canceled() {
				break
			}
			nXs := cells[parent.cells[i]].Patterns.PopCountAnd(xs.part)
			if nXs == xs.size {
				p.mxX += xs.size
				p.mcX++
			}
			if int(parent.counts[i])-nXs == rs.size {
				p.mxR += rs.size
				p.mcR++
			}
		}
		partials[c] = p
	})
	var total partial
	for _, p := range partials {
		total.mxX += p.mxX
		total.mcX += p.mcX
		total.mxR += p.mxR
		total.mcR += p.mcR
	}
	xs.statsOnce.Do(func() {
		xs.maskedX, xs.maskCells = total.mxX, total.mcX
		xs.statsReady.Store(true)
	})
	rs.statsOnce.Do(func() {
		rs.maskedX, rs.maskCells = total.mxR, total.mcR
		rs.statsReady.Store(true)
	})
}

// contrib returns the partition's mask control-bit contribution. Stats must
// be filled.
func (e *evaluator) contrib(st *partState) int {
	if e.params.ElideEmptyMasks && st.maskCells == 0 {
		return 0
	}
	return e.params.maskImageBits()
}

// cancelBits prices the X-canceling of everything the masks leave behind.
func (e *evaluator) cancelBits(masked int) int {
	return xcancel.ControlBits(e.totalX-masked, e.params.Cancel.MISR.Size, e.params.Cancel.Q)
}

// costOf sums the full cost of a partition list from its cached stats:
// cost = sum of mask contributions + cancel bits of the residual. The
// running-total bookkeeping in RunCtx and the delta scoring are exact
// integer rearrangements of this sum.
func (e *evaluator) costOf(states []*partState) int {
	e.obsFull.Inc()
	masked, maskBits := 0, 0
	for _, st := range states {
		masked += st.maskedX
		maskBits += e.contrib(st)
	}
	return maskBits + e.cancelBits(masked)
}
