package core

import (
	"errors"
	"fmt"
	"testing"

	"xhybrid/internal/misr"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// resumeCase is one (X-map, Params) configuration that partitions over
// enough accepted rounds to give kill points.
func resumeCases(t *testing.T) []goldenCase {
	var cases []goldenCase
	for _, s := range []Strategy{StrategyPaper, StrategyPaperRandom, StrategyGreedyCost, StrategyPaperRetry} {
		s := s
		cases = append(cases, goldenCase{
			name: fmt.Sprintf("fig4_%s", s),
			gen: func(*testing.T) (*xmap.XMap, Params) {
				p := fig4Params(2)
				p.Strategy = s
				p.Seed = 1
				return fig4(), p
			},
		})
		cases = append(cases, goldenCase{
			name: fmt.Sprintf("cktb8_%s", s),
			gen: func(t *testing.T) (*xmap.XMap, Params) {
				prof := workload.Scaled(workload.CKTB(), 8)
				m, err := prof.Generate()
				if err != nil {
					t.Fatal(err)
				}
				return m, Params{
					Geom:     prof.Geometry(),
					Cancel:   xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
					Strategy: s,
					Seed:     1,
				}
			},
		})
	}
	return cases
}

// runCollecting runs to completion with CheckpointEvery=every, returning
// the result and every checkpoint the run emitted.
func runCollecting(t *testing.T, m *xmap.XMap, p Params, every int) (*Result, []*Checkpoint) {
	t.Helper()
	var cps []*Checkpoint
	p.CheckpointEvery = every
	p.CheckpointSink = func(cp *Checkpoint) error {
		cps = append(cps, cp)
		return nil
	}
	res, err := Run(m, p)
	if err != nil {
		t.Fatal(err)
	}
	return res, cps
}

// TestResumeByteIdentical is the resume-correctness gate: a run killed at
// ANY checkpoint boundary and resumed from that checkpoint must produce a
// plan byte-identical (canonical digest over rounds, partition membership,
// mask cells and accounting) to the uninterrupted run — for all four
// strategies.
func TestResumeByteIdentical(t *testing.T) {
	for _, tc := range resumeCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m, p := tc.gen(t)
			ref, cps := runCollecting(t, m, p, 1)
			if len(cps) == 0 {
				t.Fatalf("no checkpoints emitted; fixture accepted no round")
			}
			want := canonicalDigest(ref)
			for i, cp := range cps {
				rp := p
				rp.Resume = cp
				got, err := Run(m, rp)
				if err != nil {
					t.Fatalf("resume from checkpoint %d: %v", i, err)
				}
				if d := canonicalDigest(got); d != want {
					t.Fatalf("resume from checkpoint %d (round %d): digest %s, want %s",
						i, len(cp.Rounds), d, want)
				}
			}
		})
	}
}

// TestResumeAcrossWorkerCounts resumes a serial run's checkpoint under a
// parallel evaluator and vice versa; the plan may not depend on either
// side's worker count.
func TestResumeAcrossWorkerCounts(t *testing.T) {
	prof := workload.Scaled(workload.CKTB(), 8)
	m, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	p := Params{
		Geom:     prof.Geometry(),
		Cancel:   xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		Strategy: StrategyGreedyCost,
		Workers:  1,
	}
	ref, cps := runCollecting(t, m, p, 2)
	if len(cps) < 2 {
		t.Fatalf("want at least 2 checkpoints, got %d", len(cps))
	}
	want := canonicalDigest(ref)
	mid := cps[len(cps)/2]
	for _, workers := range []int{1, 3, 8} {
		rp := p
		rp.Workers = workers
		rp.Resume = mid
		got, err := Run(m, rp)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := canonicalDigest(got); d != want {
			t.Fatalf("workers=%d: digest %s, want %s", workers, d, want)
		}
	}
}

// TestResumeEmitsRemainingCheckpoints locks the emission cadence across a
// resume: a resumed run only re-emits checkpoints for NEW accepted rounds,
// and its final state matches the uninterrupted run's final checkpoint.
func TestResumeEmitsRemainingCheckpoints(t *testing.T) {
	m, p := fig4(), fig4Params(2)
	_, cps := runCollecting(t, m, p, 1)
	if len(cps) < 2 {
		t.Skipf("fixture emitted %d checkpoints; need 2", len(cps))
	}
	rp := p
	rp.Resume = cps[0]
	_, resumed := runCollecting(t, m, rp, 1)
	if want := len(cps) - 1; len(resumed) != want {
		t.Fatalf("resumed run emitted %d checkpoints, want %d", len(resumed), want)
	}
	last, refLast := resumed[len(resumed)-1], cps[len(cps)-1]
	if last.StateDigest != refLast.StateDigest || last.Cost != refLast.Cost || len(last.Rounds) != len(refLast.Rounds) {
		t.Fatalf("final resumed checkpoint diverges: %+v vs %+v", last, refLast)
	}
}

// TestResumeRejectsTampering locks the integrity checks: any tampered or
// mismatched checkpoint must fail with ErrCheckpointMismatch instead of
// silently continuing from a state the engine cannot vouch for.
func TestResumeRejectsTampering(t *testing.T) {
	m, p := fig4(), fig4Params(2)
	_, cps := runCollecting(t, m, p, 1)
	if len(cps) == 0 {
		t.Fatal("no checkpoints emitted")
	}
	base := cps[len(cps)-1]
	clone := func() *Checkpoint {
		c := *base
		c.Rounds = append([]Round(nil), base.Rounds...)
		return &c
	}
	cases := map[string]func(*Checkpoint){
		"version":        func(c *Checkpoint) { c.Version = CheckpointVersion + 1 },
		"strategy":       func(c *Checkpoint) { c.Strategy = "greedy-cost" },
		"seed":           func(c *Checkpoint) { c.Seed++ },
		"dims":           func(c *Checkpoint) { c.Patterns++ },
		"cost":           func(c *Checkpoint) { c.Cost++ },
		"digest":         func(c *Checkpoint) { c.StateDigest ^= 1 },
		"round-cost":     func(c *Checkpoint) { c.Rounds[0].CostAfter++ },
		"round-cell":     func(c *Checkpoint) { c.Rounds[0].SplitCell = -1 },
		"round-part":     func(c *Checkpoint) { c.Rounds[0].SplitPartition = 99 },
		"round-verdict":  func(c *Checkpoint) { c.Rounds[len(c.Rounds)-1].Accepted = false },
		"round-renumber": func(c *Checkpoint) { c.Rounds[0].Round = 7 },
	}
	for name, tamper := range cases {
		name, tamper := name, tamper
		t.Run(name, func(t *testing.T) {
			cp := clone()
			tamper(cp)
			rp := p
			rp.Resume = cp
			_, err := Run(m, rp)
			if !errors.Is(err, ErrCheckpointMismatch) {
				t.Fatalf("tampered checkpoint: err=%v, want ErrCheckpointMismatch", err)
			}
		})
	}
}

// TestCheckpointSinkErrorAborts: a failing sink aborts the run with its
// error (durable callers wrap the sink with retry; the engine must not
// silently continue past a checkpoint it could not persist).
func TestCheckpointSinkErrorAborts(t *testing.T) {
	m, p := fig4(), fig4Params(2)
	sinkErr := errors.New("spool on fire")
	p.CheckpointEvery = 1
	p.CheckpointSink = func(*Checkpoint) error { return sinkErr }
	if _, err := Run(m, p); !errors.Is(err, sinkErr) {
		t.Fatalf("err=%v, want wrapped sink error", err)
	}
}
