package core

import (
	"fmt"
	"testing"

	"xhybrid/internal/gf2"
	"xhybrid/internal/misr"
	"xhybrid/internal/obs"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// naiveCost prices a partition list from first principles, sharing no code
// with the incremental engine: full scans, no caches, no deltas. It is the
// reference the engine's running totals and contribution swaps must agree
// with, integer for integer.
func naiveCost(m *xmap.XMap, params Params, parts []gf2.Vec) int {
	totalX := m.TotalX()
	masked, maskBits := 0, 0
	for _, p := range parts {
		size := p.PopCount()
		cells := 0
		if size > 0 {
			for _, c := range m.XCells() {
				if c.Patterns.PopCountAnd(p) == size {
					cells++
				}
			}
		}
		masked += cells * size
		if params.ElideEmptyMasks && cells == 0 {
			continue
		}
		maskBits += params.maskImageBits()
	}
	return maskBits + xcancel.ControlBits(totalX-masked, params.Cancel.MISR.Size, params.Cancel.Q)
}

// replayRounds re-derives the partition list at every round boundary and
// checks the recorded CostBefore/CostAfter against naiveCost. The commit
// rule mirrors the engine's: the X side replaces the parent in place, the
// complement lands right after it; rejected rounds leave the list alone.
func replayRounds(t *testing.T, m *xmap.XMap, params Params, res *Result) {
	t.Helper()
	all := gf2.NewVec(m.Patterns())
	all.SetAll()
	parts := []gf2.Vec{all}
	for _, r := range res.Rounds {
		if got := naiveCost(m, params, parts); got != r.CostBefore {
			t.Fatalf("round %d: CostBefore = %d, naive recomputation = %d", r.Round, r.CostBefore, got)
		}
		parent := parts[r.SplitPartition]
		cellBits, ok := m.CellPatterns(r.SplitCell)
		if !ok {
			t.Fatalf("round %d: split cell %d has no X patterns", r.Round, r.SplitCell)
		}
		xs := parent.Clone()
		xs.And(cellBits)
		rs := parent.Clone()
		rs.AndNot(cellBits)
		next := make([]gf2.Vec, 0, len(parts)+1)
		next = append(next, parts[:r.SplitPartition]...)
		next = append(next, xs, rs)
		next = append(next, parts[r.SplitPartition+1:]...)
		if got := naiveCost(m, params, next); got != r.CostAfter {
			t.Fatalf("round %d: CostAfter = %d, naive recomputation = %d", r.Round, r.CostAfter, got)
		}
		if r.Accepted != (r.CostAfter < r.CostBefore) {
			t.Fatalf("round %d: Accepted = %t contradicts costs %d -> %d", r.Round, r.Accepted, r.CostBefore, r.CostAfter)
		}
		if r.Accepted {
			parts = next
		}
	}
	// The final partitions must be exactly the replayed state.
	if len(parts) != len(res.Partitions) {
		t.Fatalf("replay ends with %d partitions, result has %d", len(parts), len(res.Partitions))
	}
	for i, p := range parts {
		if !p.Equal(res.Partitions[i].Patterns) {
			t.Fatalf("partition %d differs between replay and result", i)
		}
	}
}

// TestIncrementalCostsMatchNaiveReplay checks, on every strategy and a
// spread of fixtures, that the delta-priced costs the engine records are
// the exact full costs a from-scratch evaluation computes.
func TestIncrementalCostsMatchNaiveReplay(t *testing.T) {
	strategies := []Strategy{StrategyPaper, StrategyPaperRandom, StrategyGreedyCost, StrategyPaperRetry}
	type fixture struct {
		name   string
		gen    func() (*xmap.XMap, Params)
		mutate func(*Params)
	}
	var fixtures []fixture
	fixtures = append(fixtures, fixture{
		name: "fig4_q2",
		gen:  func() (*xmap.XMap, Params) { return fig4(), fig4Params(2) },
	})
	fixtures = append(fixtures, fixture{
		name:   "fig4_q1_elide",
		gen:    func() (*xmap.XMap, Params) { return fig4(), fig4Params(1) },
		mutate: func(p *Params) { p.ElideEmptyMasks = true },
	})
	fixtures = append(fixtures, fixture{
		name:   "fig4_q2_cheapmask",
		gen:    func() (*xmap.XMap, Params) { return fig4(), fig4Params(2) },
		mutate: func(p *Params) { p.MaskBitsPerPartition = 4 },
	})
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		fixtures = append(fixtures, fixture{
			name: fmt.Sprintf("rand%d", seed),
			gen: func() (*xmap.XMap, Params) {
				m, geom := randMap(seed)
				p := fig4Params(2)
				p.Geom = geom
				return m, p
			},
		})
	}
	for _, fx := range fixtures {
		for _, s := range strategies {
			fx, s := fx, s
			t.Run(fmt.Sprintf("%s_%s", fx.name, s), func(t *testing.T) {
				m, params := fx.gen()
				params.Strategy = s
				params.Seed = 1
				if fx.mutate != nil {
					fx.mutate(&params)
				}
				res, err := Run(m, params)
				if err != nil {
					t.Fatal(err)
				}
				replayRounds(t, m, params, res)
			})
		}
	}
}

// TestIncrementalCachesEngage runs the greedy strategy on a fixture large
// enough to take several rounds and checks the memoization actually fires:
// states are shared across candidates and rounds, repriced attempts hit the
// cache, and the recompute count stays below the pre-incremental floor of
// two full scans per scored candidate.
func TestIncrementalCachesEngage(t *testing.T) {
	prof := workload.Scaled(workload.CKTB(), 8)
	m, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	params := Params{
		Geom:     prof.Geometry(),
		Cancel:   xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		Strategy: StrategyGreedyCost,
		Obs:      rec,
	}
	if _, err := Run(m, params); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	scored := snap.CounterValue("core.splits.scored")
	recomputes := snap.CounterValue("core.maskedx.recomputes")
	hits := snap.CounterValue("core.state.cache.hits")
	if scored == 0 {
		t.Fatal("fixture produced no greedy candidates")
	}
	if hits == 0 {
		t.Errorf("state cache never hit across %d scored candidates", scored)
	}
	if recomputes >= 2*scored {
		t.Errorf("recomputes = %d, want < %d (two full scans per candidate was the old floor)", recomputes, 2*scored)
	}
	if snap.CounterValue("core.score.delta") == 0 {
		t.Error("no delta-priced scores recorded")
	}
}

// TestGroupsCacheEngages checks the paper strategy reuses a partition's
// candidate groups across rounds instead of regrouping every live partition
// every round.
func TestGroupsCacheEngages(t *testing.T) {
	m, geom := randMap(1)
	params := fig4Params(2)
	params.Geom = geom
	params.Strategy = StrategyPaper
	rec := obs.New()
	params.Obs = rec
	res, err := Run(m, params)
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	misses := snap.CounterValue("core.groups.cache.misses")
	groupings := snap.CounterValue("correlation.groupings")
	if misses != groupings {
		t.Errorf("groups cache misses = %d but correlation ran %d groupings; every grouping should be a miss", misses, groupings)
	}
	if len(res.Rounds) >= 2 && snap.CounterValue("core.groups.cache.hits") == 0 {
		t.Errorf("multi-round run (%d rounds) never hit the groups cache", len(res.Rounds))
	}
}
