package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"xhybrid/internal/correlation"
	"xhybrid/internal/gf2"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
	"xhybrid/internal/xmask"
)

// Run executes the partitioning algorithm on the X-map of a pattern set and
// returns the full hybrid accounting. The X-map dimensions must match the
// geometry (Cells) — patterns are taken from the map. It is RunCtx with a
// background context (the run cannot be canceled).
func Run(m *xmap.XMap, params Params) (*Result, error) {
	return RunCtx(context.Background(), m, params)
}

// RunCtx is Run under a context: when ctx is canceled or its deadline
// passes, the partitioner stops mid-round — the split-scoring loops, the
// per-cell correlation counting and the masked-X recomputation all poll the
// context — and returns an error matching errors.Is(err, ctx.Err()). The
// evaluator's worker pool is released before returning, so a canceled run
// leaks no goroutines.
//
// The engine is incremental: cost is a sum of per-partition contributions
// plus one residual-canceling term, so a candidate split is priced by
// swapping three contributions in and out of running totals instead of
// re-walking every partition; per-partition scans cover only the cells a
// partition-local index says can matter; and every derived quantity (stats,
// candidate groups, greedy candidate lists) is memoized on the partition's
// content, surviving across rounds. All of it is exact integer
// rearrangement of the full cost sum, so plans are byte-identical to a
// from-scratch evaluation — and byte-identical for any worker count, since
// every parallel reduction stays position-indexed.
func RunCtx(ctx context.Context, m *xmap.XMap, params Params) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if m.Cells() != params.Geom.Cells() {
		return nil, fmt.Errorf("%w: X-map has %d cells, geometry has %d", ErrGeometryMismatch, m.Cells(), params.Geom.Cells())
	}
	if m.Patterns() == 0 {
		return nil, ErrEmptyPatterns
	}
	defer params.Obs.Span("core.run")()
	e := newEvaluator(ctx, m, params)
	defer e.close()
	rng := rand.New(rand.NewSource(params.Seed))

	// Start with a single partition holding every pattern. Its cell index
	// is every X-capturing slot; all later indexes narrow an ancestor's.
	all := gf2.NewVec(m.Patterns())
	all.SetAll()
	root := e.stateFor(all)
	root.ensureCells(e, nil)
	root.ensureStats(e, nil)
	live := []*partState{root}
	masked := root.maskedX
	maskBits := e.contrib(root)
	cost := maskBits + e.cancelBits(masked)
	e.obsFull.Inc()

	var rounds []Round
	round := 0
	if params.Resume != nil {
		end := params.Obs.Span("core.resume")
		var rerr error
		live, rounds, masked, maskBits, cost, round, rerr = e.replay(params.Resume, root, rng)
		end()
		if rerr != nil {
			return nil, rerr
		}
		params.Obs.Set("core.resume.rounds", int64(round))
	}
	strat := params.strategy()
	sel := &Selection{e: e, rng: rng}
	sinceCheckpoint := 0
outer:
	for {
		if err := e.err(); err != nil {
			return nil, err
		}
		sel.set(live, masked, maskBits, cost)
		attempts := strat.Select(sel)
		if len(attempts) == 0 {
			break
		}
		committed := false
		for _, cand := range attempts {
			if err := e.err(); err != nil {
				return nil, err
			}
			// The built-in strategies only emit valid splits; this guards
			// the engine against externally registered ones.
			if cand.Partition < 0 || cand.Partition >= len(live) {
				return nil, fmt.Errorf("core: strategy %s selected partition %d of %d", strat.Name(), cand.Partition, len(live))
			}
			if _, ok := e.m.CellPatterns(cand.Cell); !ok {
				return nil, fmt.Errorf("core: strategy %s selected cell %d, which captures no X", strat.Name(), cand.Cell)
			}
			round++
			if params.MaxRounds > 0 && round > params.MaxRounds {
				break outer
			}
			e.obsRounds.Inc()
			e.obsScored.Inc()
			// Delta pricing: the split replaces the parent's contribution
			// with its two sides'. The greedy selector already interned the
			// winning candidate's sides, so this re-pricing is pure cache
			// hits there.
			parent := live[cand.Partition]
			xs, rs := e.splitStates(parent, cand.Cell)
			e.obsDelta.Inc()
			newMasked := masked - parent.maskedX + xs.maskedX + rs.maskedX
			newMaskBits := maskBits - e.contrib(parent) + e.contrib(xs) + e.contrib(rs)
			newCost := newMaskBits + e.cancelBits(newMasked)
			r := Round{
				Round:          round,
				SplitPartition: cand.Partition,
				SplitCell:      cand.Cell,
				GroupSize:      cand.GroupSize,
				GroupCount:     cand.GroupCount,
				CostBefore:     cost,
				CostAfter:      newCost,
				Accepted:       newCost < cost,
			}
			rounds = append(rounds, r)
			if r.Accepted {
				e.obsAccepted.Inc()
				// Commit: the X side replaces the parent in place and the
				// complement lands right after it. Build the sides' cell
				// indexes now (serial point) by narrowing the parent's.
				xs.ensureCells(e, parent)
				rs.ensureCells(e, parent)
				live = append(live, nil)
				copy(live[cand.Partition+2:], live[cand.Partition+1:])
				live[cand.Partition] = xs
				live[cand.Partition+1] = rs
				masked, maskBits, cost = newMasked, newMaskBits, newCost
				committed = true
				sinceCheckpoint++
				if params.CheckpointSink != nil && params.CheckpointEvery > 0 &&
					sinceCheckpoint >= params.CheckpointEvery {
					sinceCheckpoint = 0
					e.obsCheckpoints.Inc()
					if cerr := params.CheckpointSink(e.checkpoint(live, rounds, masked, maskBits, cost)); cerr != nil {
						return nil, fmt.Errorf("core: checkpoint sink: %w", cerr)
					}
				}
				break
			}
		}
		if !committed {
			break
		}
	}
	// The selectors short-circuit once the context dies; a break out of the
	// loop may therefore reflect an aborted scan rather than convergence.
	if err := e.err(); err != nil {
		return nil, err
	}

	return e.finalize(live, rounds), nil
}

// groupsPerPartition returns each live partition's candidate groups, fanning
// the partitions out over the pool. After the first round this is almost
// entirely cache hits: only the two partitions born from the last commit
// compute anything, and those scan just their local cell index. The result
// is indexed by partition, so the fan-out order cannot leak into the
// selection.
func (e *evaluator) groupsPerPartition(live []*partState) [][]correlation.Group {
	groups := make([][]correlation.Group, len(live))
	e.pool.ForEach(len(live), func(i int) {
		if e.canceled() || live[i].size < 2 {
			return
		}
		groups[i] = live[i].ensureGroups(e)
	})
	return groups
}

// selectPaperList returns up to budget candidates in Algorithm 1 preference
// order (largest group first, ties by count, partition, cell) — the retry
// strategy walks this list past cost rejections.
func (e *evaluator) selectPaperList(live []*partState, budget int) []Split {
	var all []Split
	for i, groups := range e.groupsPerPartition(live) {
		size := live[i].size
		for _, g := range groups {
			if g.Count >= size || g.Size() < 2 {
				continue
			}
			all = append(all, Split{
				Partition:  i,
				Cell:       g.Cells[0],
				GroupSize:  g.Size(),
				GroupCount: g.Count,
			})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].GroupSize != all[b].GroupSize {
			return all[a].GroupSize > all[b].GroupSize
		}
		if all[a].GroupCount != all[b].GroupCount {
			return all[a].GroupCount > all[b].GroupCount
		}
		if all[a].Partition != all[b].Partition {
			return all[a].Partition < all[b].Partition
		}
		return all[a].Cell < all[b].Cell
	})
	if len(all) > budget {
		all = all[:budget]
	}
	return all
}

// selectPaper implements Algorithm 1's choice: the largest in-partition
// equal-count group with at least two member cells, splitting on its first
// (or a random) member. Ties prefer higher X counts, then earlier
// partitions. The per-partition group analysis runs in parallel; the
// cross-partition reduce below walks the partitions in index order, so the
// choice (and the single rng draw for the random variant) is identical to a
// serial scan.
func (e *evaluator) selectPaper(live []*partState, random bool, rng *rand.Rand) *Split {
	var best *Split
	var bestGroup correlation.Group
	for i, groups := range e.groupsPerPartition(live) {
		size := live[i].size
		for _, g := range groups {
			if g.Count >= size || g.Size() < 2 {
				// Fully-X cells can't split; singleton groups are not a
				// "largest number of scan cells having the same number of
				// X's" in the paper's sense.
				continue
			}
			better := false
			switch {
			case best == nil:
				better = true
			case g.Size() != best.GroupSize:
				better = g.Size() > best.GroupSize
			case g.Count != best.GroupCount:
				better = g.Count > best.GroupCount
			}
			if better {
				best = &Split{Partition: i, GroupSize: g.Size(), GroupCount: g.Count}
				bestGroup = g
			}
		}
	}
	if best == nil {
		return nil
	}
	if random {
		best.Cell = bestGroup.Cells[rng.Intn(len(bestGroup.Cells))]
	} else {
		best.Cell = bestGroup.Cells[0]
	}
	return best
}

// selectGreedy evaluates the cost delta of every distinct candidate split
// and returns the best strictly improving one, or nil. Phase 1 assembles
// each partition's deduplicated, gain-ranked candidate cells — memoized on
// the partition, so only freshly split partitions enumerate anything.
// Phase 2 prices every candidate by contribution swap against the running
// totals; side states are interned by content, so a candidate unchanged
// since the last round costs two hash probes instead of two full-map scans.
// The reduce takes the lowest cost at the earliest position in the serial
// enumeration order (partition index, then gain rank), so the pick matches
// a serial scan exactly.
func (e *evaluator) selectGreedy(live []*partState, masked, maskBits, cost int) *Split {
	limit := e.params.GreedyCandidateCap
	if limit <= 0 {
		limit = 256
	}
	e.pool.ForEach(len(live), func(i int) {
		if e.canceled() || live[i].size < 2 {
			return
		}
		live[i].ensureCands(e, limit)
	})
	var all []Split
	for i, st := range live {
		if st.size < 2 || !st.candsReady.Load() {
			continue
		}
		for _, cell := range st.cands {
			all = append(all, Split{Partition: i, Cell: cell})
		}
	}
	if len(all) == 0 {
		return nil
	}
	// Score every candidate concurrently, then reduce by (cost, position).
	e.obsScored.Add(int64(len(all)))
	costs := make([]int, len(all))
	e.pool.ForEach(len(all), func(k int) {
		if e.canceled() {
			return
		}
		parent := live[all[k].Partition]
		xs, rs := e.splitStates(parent, all[k].Cell)
		e.obsDelta.Inc()
		costs[k] = maskBits - e.contrib(parent) + e.contrib(xs) + e.contrib(rs) +
			e.cancelBits(masked-parent.maskedX+xs.maskedX+rs.maskedX)
	})
	bestIdx := 0
	for k := 1; k < len(all); k++ {
		if costs[k] < costs[bestIdx] {
			bestIdx = k
		}
	}
	if costs[bestIdx] >= cost {
		return nil
	}
	return &all[bestIdx]
}

// finalize materializes the masks and the full accounting.
func (e *evaluator) finalize(live []*partState, rounds []Round) *Result {
	res := &Result{Rounds: rounds, TotalX: e.totalX}
	maskBits := 0
	for _, st := range live {
		mask, mx := xmask.PartitionMask(e.m, st.part)
		res.Partitions = append(res.Partitions, Partition{Patterns: st.part, Mask: mask, MaskedX: mx})
		res.MaskedX += mx
		if e.params.ElideEmptyMasks && mask.Cells.PopCount() == 0 {
			continue
		}
		maskBits += e.params.maskImageBits()
	}
	res.ResidualX = res.TotalX - res.MaskedX
	res.MaskBits = maskBits
	res.CancelBits = xcancel.ControlBits(res.ResidualX, e.params.Cancel.MISR.Size, e.params.Cancel.Q)
	res.TotalBits = res.MaskBits + res.CancelBits
	e.params.Obs.Set("core.partitions", int64(len(res.Partitions)))
	e.params.Obs.Set("core.maskedx", int64(res.MaskedX))
	e.params.Obs.Set("xcancel.halts.planned",
		int64(xcancel.Halts(res.ResidualX, e.params.Cancel.MISR.Size, e.params.Cancel.Q)))
	return res
}

// ResidualMap returns a copy of the X-map with every masked X removed: the
// X stream that actually reaches the X-canceling MISR under the plan.
func ResidualMap(m *xmap.XMap, partitions []Partition) *xmap.XMap {
	out := xmap.New(m.Patterns(), m.Cells())
	for _, c := range m.XCells() {
		c.Patterns.ForEach(func(p int) {
			for _, part := range partitions {
				if part.Patterns.Get(p) && part.Mask.Masks(c.Cell) {
					return
				}
			}
			out.Add(p, c.Cell)
		})
	}
	return out
}
