package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"xhybrid/internal/correlation"
	"xhybrid/internal/gf2"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
	"xhybrid/internal/xmask"
)

// split describes a candidate partitioning step.
type split struct {
	partIdx    int
	cell       int
	groupSize  int
	groupCount int
}

// Run executes the partitioning algorithm on the X-map of a pattern set and
// returns the full hybrid accounting. The X-map dimensions must match the
// geometry (Cells) — patterns are taken from the map. It is RunCtx with a
// background context (the run cannot be canceled).
func Run(m *xmap.XMap, params Params) (*Result, error) {
	return RunCtx(context.Background(), m, params)
}

// RunCtx is Run under a context: when ctx is canceled or its deadline
// passes, the partitioner stops mid-round — the split-scoring loops, the
// per-cell correlation counting and the masked-X recomputation all poll the
// context — and returns an error matching errors.Is(err, ctx.Err()). The
// evaluator's worker pool is released before returning, so a canceled run
// leaks no goroutines.
//
// The hot loops (candidate scoring, masked-X recomputation) fan out over
// Params.Workers goroutines with deterministic reductions: the result is
// byte-identical for any worker count.
func RunCtx(ctx context.Context, m *xmap.XMap, params Params) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if m.Cells() != params.Geom.Cells() {
		return nil, fmt.Errorf("%w: X-map has %d cells, geometry has %d", ErrGeometryMismatch, m.Cells(), params.Geom.Cells())
	}
	if m.Patterns() == 0 {
		return nil, ErrEmptyPatterns
	}
	defer params.Obs.Span("core.run")()
	e := newEvaluator(ctx, m, params)
	defer e.close()
	rng := rand.New(rand.NewSource(params.Seed))

	// Start with a single partition holding every pattern.
	all := gf2.NewVec(m.Patterns())
	all.SetAll()
	parts := []gf2.Vec{all}
	maskedX := []int{e.maskedXIn(all)}
	cost := e.cost(parts, maskedX)

	var rounds []Round
	round := 0
outer:
	for {
		if err := e.err(); err != nil {
			return nil, err
		}
		var attempts []split
		switch params.Strategy {
		case StrategyPaper, StrategyPaperRandom:
			if cand := e.selectPaper(parts, params.Strategy == StrategyPaperRandom, rng); cand != nil {
				attempts = []split{*cand}
			}
		case StrategyPaperRetry:
			attempts = e.selectPaperList(parts, params.retryBudget())
		case StrategyGreedyCost:
			if cand := e.selectGreedy(parts, maskedX, cost); cand != nil {
				attempts = []split{*cand}
			}
		}
		if len(attempts) == 0 {
			break
		}
		committed := false
		for _, cand := range attempts {
			if err := e.err(); err != nil {
				return nil, err
			}
			round++
			if params.MaxRounds > 0 && round > params.MaxRounds {
				break outer
			}
			e.obsRounds.Inc()
			e.obsScored.Inc()
			newParts, newMaskedX := e.applySplit(parts, maskedX, cand)
			newCost := e.cost(newParts, newMaskedX)
			r := Round{
				Round:          round,
				SplitPartition: cand.partIdx,
				SplitCell:      cand.cell,
				GroupSize:      cand.groupSize,
				GroupCount:     cand.groupCount,
				CostBefore:     cost,
				CostAfter:      newCost,
				Accepted:       newCost < cost,
			}
			rounds = append(rounds, r)
			if r.Accepted {
				e.obsAccepted.Inc()
				parts, maskedX, cost = newParts, newMaskedX, newCost
				committed = true
				break
			}
		}
		if !committed {
			break
		}
	}
	// The selectors short-circuit once the context dies; a break out of the
	// loop may therefore reflect an aborted scan rather than convergence.
	if err := e.err(); err != nil {
		return nil, err
	}

	return e.finalize(parts, rounds), nil
}

// groupsPerPartition computes each partition's candidate groups, fanning
// the partitions out over the pool (and the per-cell X counting of each
// partition over idle workers). The result is indexed by partition, so the
// fan-out order cannot leak into the selection.
func (e *evaluator) groupsPerPartition(parts []gf2.Vec) [][]correlation.Group {
	groups := make([][]correlation.Group, len(parts))
	e.pool.ForEach(len(parts), func(i int) {
		if e.canceled() || parts[i].PopCount() < 2 {
			return
		}
		groups[i] = correlation.GroupsWithinCtx(e.ctx, e.m, parts[i], e.pool, e.params.Obs)
	})
	return groups
}

// selectPaperList returns up to budget candidates in Algorithm 1 preference
// order (largest group first, ties by count, partition, cell) — the retry
// strategy walks this list past cost rejections.
func (e *evaluator) selectPaperList(parts []gf2.Vec, budget int) []split {
	var all []split
	for i, groups := range e.groupsPerPartition(parts) {
		size := parts[i].PopCount()
		for _, g := range groups {
			if g.Count >= size || g.Size() < 2 {
				continue
			}
			all = append(all, split{
				partIdx:    i,
				cell:       g.Cells[0],
				groupSize:  g.Size(),
				groupCount: g.Count,
			})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].groupSize != all[b].groupSize {
			return all[a].groupSize > all[b].groupSize
		}
		if all[a].groupCount != all[b].groupCount {
			return all[a].groupCount > all[b].groupCount
		}
		if all[a].partIdx != all[b].partIdx {
			return all[a].partIdx < all[b].partIdx
		}
		return all[a].cell < all[b].cell
	})
	if len(all) > budget {
		all = all[:budget]
	}
	return all
}

// selectPaper implements Algorithm 1's choice: the largest in-partition
// equal-count group with at least two member cells, splitting on its first
// (or a random) member. Ties prefer higher X counts, then earlier
// partitions. The per-partition group analysis runs in parallel; the
// cross-partition reduce below walks the partitions in index order, so the
// choice (and the single rng draw for the random variant) is identical to a
// serial scan.
func (e *evaluator) selectPaper(parts []gf2.Vec, random bool, rng *rand.Rand) *split {
	var best *split
	var bestGroup correlation.Group
	for i, groups := range e.groupsPerPartition(parts) {
		size := parts[i].PopCount()
		for _, g := range groups {
			if g.Count >= size || g.Size() < 2 {
				// Fully-X cells can't split; singleton groups are not a
				// "largest number of scan cells having the same number of
				// X's" in the paper's sense.
				continue
			}
			better := false
			switch {
			case best == nil:
				better = true
			case g.Size() != best.groupSize:
				better = g.Size() > best.groupSize
			case g.Count != best.groupCount:
				better = g.Count > best.groupCount
			}
			if better {
				best = &split{partIdx: i, groupSize: g.Size(), groupCount: g.Count}
				bestGroup = g
			}
		}
	}
	if best == nil {
		return nil
	}
	if random {
		best.cell = bestGroup.Cells[rng.Intn(len(bestGroup.Cells))]
	} else {
		best.cell = bestGroup.Cells[0]
	}
	return best
}

// selectGreedy evaluates the cost delta of every distinct candidate split
// and returns the best strictly improving one, or nil. Candidate collection
// fans out per partition and cost scoring per candidate; the reduce takes
// the lowest cost at the earliest position in the serial enumeration order
// (partition index, then gain-sorted candidate rank), so the pick matches a
// serial scan exactly.
func (e *evaluator) selectGreedy(parts []gf2.Vec, maskedX []int, cost int) *split {
	cap := e.params.GreedyCandidateCap
	if cap <= 0 {
		cap = 256
	}
	// Collect each partition's deduplicated candidates in parallel.
	perPart := make([][]split, len(parts))
	e.pool.ForEach(len(parts), func(i int) {
		p := parts[i]
		size := p.PopCount()
		if size < 2 {
			return
		}
		// Deduplicate candidates by in-partition signature: cells with the
		// same X patterns inside p produce identical splits. Track each
		// signature's multiplicity — every cell sharing the signature
		// becomes fully-X on the split's X side, so multiplicity * count
		// is a lower bound on the X's the split masks, which ranks
		// candidates when the cap bites.
		type cand struct {
			s    split
			gain int
		}
		sigIdx := make(map[string]int)
		var cands []cand
		for ci, c := range e.m.XCells() {
			if ci&cancelCheckMask == 0 && e.canceled() {
				return
			}
			n := c.Patterns.PopCountAnd(p)
			if n == 0 || n >= size {
				continue
			}
			inPart := c.Patterns.Clone()
			inPart.And(p)
			key := inPart.String()
			if j, ok := sigIdx[key]; ok {
				cands[j].gain += n
				continue
			}
			sigIdx[key] = len(cands)
			cands = append(cands, cand{s: split{partIdx: i, cell: c.Cell}, gain: n})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].gain > cands[b].gain })
		if len(cands) > cap {
			cands = cands[:cap]
		}
		out := make([]split, len(cands))
		for k, ca := range cands {
			out[k] = ca.s
		}
		perPart[i] = out
	})
	var all []split
	for _, cands := range perPart {
		all = append(all, cands...)
	}
	if len(all) == 0 {
		return nil
	}
	// Score every candidate concurrently, then reduce by (cost, position).
	e.obsScored.Add(int64(len(all)))
	costs := make([]int, len(all))
	e.pool.ForEach(len(all), func(k int) {
		if e.canceled() {
			return
		}
		np, nm := e.applySplit(parts, maskedX, all[k])
		costs[k] = e.cost(np, nm)
	})
	bestIdx := 0
	for k := 1; k < len(all); k++ {
		if costs[k] < costs[bestIdx] {
			bestIdx = k
		}
	}
	if costs[bestIdx] >= cost {
		return nil
	}
	return &all[bestIdx]
}

// applySplit returns the partition list and masked-X cache after splitting
// parts[s.partIdx] on cell s.cell. The X side replaces the parent in place
// and the complement is appended right after it.
func (e *evaluator) applySplit(parts []gf2.Vec, maskedX []int, s split) ([]gf2.Vec, []int) {
	parent := parts[s.partIdx]
	cellBits, ok := e.m.CellPatterns(s.cell)
	if !ok {
		panic(fmt.Sprintf("core: split cell %d captures no X", s.cell))
	}
	xSide := parent.Clone()
	xSide.And(cellBits)
	rest := parent.Clone()
	rest.AndNot(cellBits)

	newParts := make([]gf2.Vec, 0, len(parts)+1)
	newMasked := make([]int, 0, len(parts)+1)
	for i := range parts {
		if i == s.partIdx {
			newParts = append(newParts, xSide, rest)
			newMasked = append(newMasked, e.maskedXIn(xSide), e.maskedXIn(rest))
			continue
		}
		newParts = append(newParts, parts[i])
		newMasked = append(newMasked, maskedX[i])
	}
	return newParts, newMasked
}

// finalize materializes the masks and the full accounting.
func (e *evaluator) finalize(parts []gf2.Vec, rounds []Round) *Result {
	res := &Result{Rounds: rounds, TotalX: e.totalX}
	maskBits := 0
	for _, p := range parts {
		mask, mx := xmask.PartitionMask(e.m, p)
		res.Partitions = append(res.Partitions, Partition{Patterns: p, Mask: mask, MaskedX: mx})
		res.MaskedX += mx
		if e.params.ElideEmptyMasks && mask.Cells.PopCount() == 0 {
			continue
		}
		maskBits += e.params.maskImageBits()
	}
	res.ResidualX = res.TotalX - res.MaskedX
	res.MaskBits = maskBits
	res.CancelBits = xcancel.ControlBits(res.ResidualX, e.params.Cancel.MISR.Size, e.params.Cancel.Q)
	res.TotalBits = res.MaskBits + res.CancelBits
	e.params.Obs.Set("core.partitions", int64(len(res.Partitions)))
	e.params.Obs.Set("core.maskedx", int64(res.MaskedX))
	e.params.Obs.Set("xcancel.halts.planned",
		int64(xcancel.Halts(res.ResidualX, e.params.Cancel.MISR.Size, e.params.Cancel.Q)))
	return res
}

// ResidualMap returns a copy of the X-map with every masked X removed: the
// X stream that actually reaches the X-canceling MISR under the plan.
func ResidualMap(m *xmap.XMap, partitions []Partition) *xmap.XMap {
	out := xmap.New(m.Patterns(), m.Cells())
	for _, c := range m.XCells() {
		c.Patterns.ForEach(func(p int) {
			for _, part := range partitions {
				if part.Patterns.Get(p) && part.Mask.Masks(c.Cell) {
					return
				}
			}
			out.Add(p, c.Cell)
		})
	}
	return out
}
