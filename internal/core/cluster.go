package core

import (
	"context"
	"fmt"
	"sort"

	"xhybrid/internal/gf2"
	"xhybrid/internal/xmap"
)

// RunClustered is an alternative to Algorithm 1's binary recursion: patterns
// are grouped directly by X-signature similarity. Each cluster maintains the
// *core* — the cells that are X under every member so far, exactly the cells
// its shared mask may cover — and each pattern greedily joins wherever the
// cost delta (mask-image price vs canceling bits saved) is best, or opens a
// new cluster. A final pass dissolves clusters whose mask no longer pays for
// itself into a single remainder partition.
//
// The paper's heuristic exploits inter-correlation through equal-count
// groups; this one consumes the signatures directly. On cleanly correlated
// workloads both find the same structure (see the clustering ablation); on
// messy overlap the one-pass greedy can trade slightly worse totals for a
// single pass over the patterns.
func RunClustered(m *xmap.XMap, params Params) (*Result, error) {
	return RunClusteredCtx(context.Background(), m, params)
}

// RunClusteredCtx is RunClustered under a context: the greedy join pass and
// the O(n²) merge hill-climb both poll ctx and abort with a wrapped context
// error, releasing the worker pool before returning.
func RunClusteredCtx(ctx context.Context, m *xmap.XMap, params Params) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if m.Cells() != params.Geom.Cells() {
		return nil, fmt.Errorf("%w: X-map has %d cells, geometry has %d", ErrGeometryMismatch, m.Cells(), params.Geom.Cells())
	}
	if m.Patterns() == 0 {
		return nil, ErrEmptyPatterns
	}
	defer params.Obs.Span("core.cluster")()
	e := newEvaluator(ctx, m, params)
	defer e.close()

	mSize, q := params.Cancel.MISR.Size, params.Cancel.Q
	cancelPerX := float64(mSize*q) / float64(mSize-q)

	type cluster struct {
		members []int
		core    []int // sorted cell ids X under every member
	}
	var clusters []cluster

	// Patterns in descending X count seed clusters with rich signatures.
	order := make([]int, m.Patterns())
	counts := m.PatternXCounts()
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })

	// maxClusters bounds the greedy phase; the merge pass below cleans up.
	const maxClusters = 32
	var rest []int
	for pi, p := range order {
		if pi&cancelCheckMask == 0 {
			if err := e.err(); err != nil {
				return nil, err
			}
		}
		sig := m.PatternCells(p)
		if len(sig) == 0 {
			// X-free patterns need no mask; keep them out of the clusters
			// so they cannot destroy a core.
			rest = append(rest, p)
			continue
		}
		// Join the cluster with the best cost delta, gated on genuine
		// similarity (the intersection must retain at least half the
		// core — otherwise a noisy pattern erodes it to nothing).
		bestDelta := 0.0
		bestIdx := -1
		for ci := range clusters {
			c := &clusters[ci]
			inter := intersectSorted(c.core, sig)
			if len(inter) == 0 || 2*len(inter) < len(c.core) {
				continue
			}
			n := len(c.members)
			delta := -cancelPerX * float64(len(inter)*(n+1)-len(c.core)*n)
			if bestIdx < 0 || delta < bestDelta {
				bestDelta = delta
				bestIdx = ci
			}
		}
		switch {
		case bestIdx >= 0:
			c := &clusters[bestIdx]
			c.core = intersectSorted(c.core, sig)
			c.members = append(c.members, p)
		case len(clusters) < maxClusters:
			clusters = append(clusters, cluster{members: []int{p}, core: append([]int{}, sig...)})
		default:
			rest = append(rest, p)
		}
	}

	// Materialize partitions: one per cluster plus a remainder for X-free
	// patterns, then hill-climb with the exact cost function, merging
	// whole partitions while that reduces the total control bits (an
	// unprofitable cluster's mask image costs more than the X's it saves
	// from canceling). Partitions are interned as states, so a candidate
	// merge re-evaluated across hill-climb rounds reuses its scan.
	var live []*partState
	intern := func(v gf2.Vec) *partState {
		st := e.stateFor(v)
		st.ensureStats(e, nil)
		return st
	}
	for _, c := range clusters {
		v := gf2.NewVec(m.Patterns())
		for _, p := range c.members {
			v.Set(p)
		}
		live = append(live, intern(v))
	}
	if len(rest) > 0 || len(live) == 0 {
		v := gf2.NewVec(m.Patterns())
		for _, p := range rest {
			v.Set(p)
		}
		live = append(live, intern(v))
	}
	// Running totals over the live list; a merge of (i, j) into u reprices
	// as a three-contribution swap against them.
	masked, maskBits := 0, 0
	for _, st := range live {
		masked += st.maskedX
		maskBits += e.contrib(st)
	}
	cost := maskBits + e.cancelBits(masked)
	e.obsFull.Inc()
	union := func(a, b *partState) *partState {
		v := a.part.Clone()
		v.Or(b.part)
		return intern(v)
	}
	mergeCost := func(a, b, u *partState) int {
		e.obsDelta.Inc()
		return maskBits - e.contrib(a) - e.contrib(b) + e.contrib(u) +
			e.cancelBits(masked-a.maskedX-b.maskedX+u.maskedX)
	}
	for len(live) > 1 {
		if err := e.err(); err != nil {
			return nil, err
		}
		bestI, bestJ, bestCost := -1, -1, cost
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				if c := mergeCost(live[i], live[j], union(live[i], live[j])); c < bestCost {
					bestCost, bestI, bestJ = c, i, j
				}
			}
		}
		if bestI < 0 {
			break
		}
		a, b := live[bestI], live[bestJ]
		u := union(a, b)
		masked += u.maskedX - a.maskedX - b.maskedX
		maskBits += e.contrib(u) - e.contrib(a) - e.contrib(b)
		cost = bestCost
		next := make([]*partState, 0, len(live)-1)
		next = append(next, u)
		for k := range live {
			if k != bestI && k != bestJ {
				next = append(next, live[k])
			}
		}
		live = next
	}
	return e.finalize(live, nil), nil
}

// intersectSorted returns the intersection of two ascending int slices.
func intersectSorted(a, b []int) []int {
	out := make([]int, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
