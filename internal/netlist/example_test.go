package netlist_test

import (
	"fmt"

	"xhybrid/internal/netlist"
)

// ExampleGenerate builds a small seeded circuit with clustered X sources —
// the first stage of the end-to-end flow (docs/FLOW.md). Equal GenConfigs
// generate identical circuits, which is what lets a crashed flow job
// re-derive its circuit from the spooled spec instead of spooling gates.
func ExampleGenerate() {
	ckt, err := netlist.Generate(netlist.GenConfig{
		Name:      "example",
		ScanCells: 64,
		PIs:       8,
		XClusters: 4, // 4 uninitialized elements, each reaching 4 scan cells
		Seed:      7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("scan cells: %d\n", len(ckt.ScanCells))
	fmt.Printf("primary inputs: %d\n", len(ckt.PIs))
	fmt.Printf("total nodes: %d\n", len(ckt.Gates))
	// Output:
	// scan cells: 64
	// primary inputs: 8
	// total nodes: 293
}
