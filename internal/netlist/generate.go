package netlist

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterizes random circuit generation. The generator builds a
// sequential design whose captured responses exhibit the paper's X
// structure: clusters of scan cells that capture X's under the same subsets
// of test patterns (inter-correlation), produced by uninitialized storage
// elements whose X values reach the cluster through shared select logic.
type GenConfig struct {
	// Name labels the circuit.
	Name string
	// ScanCells is the number of scan flip-flops.
	ScanCells int
	// PIs is the number of primary inputs.
	PIs int
	// GatesPerCell scales the combinational cloud (default 3.0).
	GatesPerCell float64
	// XClusters is the number of X-source clusters (uninitialized
	// elements); 0 disables X generation.
	XClusters int
	// XFanout is how many scan cells each cluster reaches (default 4).
	XFanout int
	// EnableTaps is how many scan outputs gate each cluster's select; with
	// k taps a random pattern enables the X with probability about 2^-k
	// (default 2).
	EnableTaps int
	// DropoutPerMille adds, per cluster cell, a one-in-N chance of an extra
	// blocking input so that correlation is strong but not perfect
	// (default 0: perfect clusters).
	DropoutPerMille int
	// Seed drives all random choices.
	Seed int64
}

func (c *GenConfig) defaults() {
	if c.GatesPerCell <= 0 {
		c.GatesPerCell = 3
	}
	if c.XFanout <= 0 {
		c.XFanout = 4
	}
	if c.EnableTaps <= 0 {
		c.EnableTaps = 2
	}
}

// Generate builds a random sequential circuit per the configuration.
func Generate(cfg GenConfig) (*Circuit, error) {
	cfg.defaults()
	if cfg.ScanCells < 2 {
		return nil, fmt.Errorf("netlist: need at least 2 scan cells, got %d", cfg.ScanCells)
	}
	if cfg.PIs < 1 {
		return nil, fmt.Errorf("netlist: need at least 1 primary input, got %d", cfg.PIs)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder(cfg.Name)

	// Sources: primary inputs and scan-flop outputs.
	sources := make([]int, 0, cfg.PIs+cfg.ScanCells)
	for i := 0; i < cfg.PIs; i++ {
		sources = append(sources, b.Input(fmt.Sprintf("pi%d", i)))
	}
	flops := make([]int, cfg.ScanCells)
	for i := range flops {
		flops[i] = b.ScanDFFDeferred()
		sources = append(sources, flops[i])
	}

	// Combinational cloud over the sources.
	nodes := append([]int{}, sources...)
	combTypes := []GateType{And, Or, Nand, Nor, Xor, Xnor, Not, Buf}
	nGates := int(float64(cfg.ScanCells) * cfg.GatesPerCell)
	for i := 0; i < nGates; i++ {
		t := combTypes[r.Intn(len(combTypes))]
		var fanin []int
		n := 2
		if t == Not || t == Buf {
			n = 1
		} else if r.Intn(4) == 0 {
			n = 3
		}
		for j := 0; j < n; j++ {
			// Bias toward recent nodes to grow depth.
			k := len(nodes) - 1 - r.Intn(1+len(nodes)/2)
			fanin = append(fanin, nodes[k])
		}
		nodes = append(nodes, b.Gate(t, fanin...))
	}

	// X clusters: an uninitialized element muxed behind shared select logic
	// that fans out to several scan cells.
	type cluster struct {
		muxed int
		cells []int
	}
	clusters := make([]cluster, 0, cfg.XClusters)
	cellDriver := make(map[int]int) // scan index -> driver node
	for g := 0; g < cfg.XClusters; g++ {
		src := b.NonScanDFF(nodes[r.Intn(len(nodes))])
		// Select: AND of EnableTaps scan outputs (possibly inverted).
		sel := flops[r.Intn(len(flops))]
		if r.Intn(2) == 1 {
			sel = b.Gate(Not, sel)
		}
		for t := 1; t < cfg.EnableTaps; t++ {
			tap := flops[r.Intn(len(flops))]
			if r.Intn(2) == 1 {
				tap = b.Gate(Not, tap)
			}
			sel = b.Gate(And, sel, tap)
		}
		// sel==1 routes the X; sel==0 routes known data.
		known := nodes[r.Intn(len(nodes))]
		muxed := b.Named(fmt.Sprintf("xmux%d", g), Mux, sel, known, src)
		cl := cluster{muxed: muxed}
		for f := 0; f < cfg.XFanout; f++ {
			cell := r.Intn(cfg.ScanCells)
			if _, taken := cellDriver[cell]; taken {
				continue
			}
			d := b.Gate(Xor, muxed, nodes[r.Intn(len(nodes))])
			if cfg.DropoutPerMille > 0 && r.Intn(1000) < cfg.DropoutPerMille {
				// An extra OR tap occasionally blocks the X for this cell.
				d = b.Gate(Or, d, flops[r.Intn(len(flops))])
			}
			cellDriver[cell] = d
			cl.cells = append(cl.cells, cell)
		}
		clusters = append(clusters, cl)
	}

	// Remaining scan cells capture plain combinational logic.
	for i, f := range flops {
		d, ok := cellDriver[i]
		if !ok {
			d = nodes[len(nodes)-1-r.Intn(1+len(nodes)/3)]
		}
		b.SetFanin(f, d)
	}

	// A few primary outputs.
	for i := 0; i < 1+cfg.ScanCells/16; i++ {
		b.PO(nodes[r.Intn(len(nodes))])
	}
	return b.Build()
}
