package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// buildToy returns a tiny sequential circuit:
//
//	pi0, pi1 inputs; s0, s1 scan flops;
//	g = AND(pi0, s0); h = XOR(g, s1); s0.d = h, s1.d = g; PO = h.
func buildToy(t *testing.T) *Circuit {
	b := NewBuilder("toy")
	pi0 := b.Input("pi0")
	_ = b.Input("pi1")
	s0 := b.ScanDFFDeferred()
	s1 := b.ScanDFFDeferred()
	g := b.Named("g", And, pi0, s0)
	h := b.Named("h", Xor, g, s1)
	b.SetFanin(s0, h)
	b.SetFanin(s1, g)
	b.PO(h)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuilderAndValidate(t *testing.T) {
	c := buildToy(t)
	if c.NumGates() != 6 {
		t.Fatalf("NumGates = %d, want 6", c.NumGates())
	}
	st := c.Stats()
	if st.PIs != 2 || st.ScanCells != 2 || st.POs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if c.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", c.Depth())
	}
	// Eval order must respect fanin dependencies.
	pos := make(map[int]int)
	for i, id := range c.EvalOrder() {
		pos[id] = i
	}
	for _, id := range c.EvalOrder() {
		for _, f := range c.Gates[id].Fanin {
			if fp, ok := pos[f]; ok && fp > pos[id] {
				t.Fatalf("node %d evaluated before fanin %d", id, f)
			}
		}
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	b := NewBuilder("cyc")
	pi := b.Input("pi")
	g1 := b.Gate(And, pi, pi) // placeholder fanin, patched to a cycle
	g2 := b.Gate(Or, g1, pi)
	b.SetFanin(g1, g2, pi)
	if _, err := b.Build(); err == nil {
		t.Fatal("combinational cycle accepted")
	}
	if !strings.Contains(strings.ToLower(errOf(b)), "cycle") {
		t.Fatalf("error does not mention cycle: %v", errOf(b))
	}
}

func errOf(b *Builder) string {
	_, err := b.Build()
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestSequentialLoopAllowed(t *testing.T) {
	// A flop whose next state depends on its own output is fine.
	b := NewBuilder("loop")
	s := b.ScanDFFDeferred()
	inv := b.Gate(Not, s)
	b.SetFanin(s, inv)
	if _, err := b.Build(); err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
}

func TestArityValidation(t *testing.T) {
	b := NewBuilder("bad")
	pi := b.Input("pi")
	b.Gate(Not, pi, pi) // NOT with 2 fanins
	if _, err := b.Build(); err == nil {
		t.Fatal("bad arity accepted")
	}
	b2 := NewBuilder("bad2")
	b2.Gate(And) // AND with no fanins
	if _, err := b2.Build(); err == nil {
		t.Fatal("empty AND accepted")
	}
	b3 := NewBuilder("bad3")
	b3.Gate(Input) // Input via Gate
	if _, err := b3.Build(); err == nil {
		t.Fatal("Input via Gate accepted")
	}
	b4 := NewBuilder("bad4")
	b4.SetFanin(99)
	if _, err := b4.Build(); err == nil {
		t.Fatal("SetFanin on bogus id accepted")
	}
}

func TestInvalidFaninRange(t *testing.T) {
	c := &Circuit{Gates: []Gate{{Type: Buf, Fanin: []int{5}}}}
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range fanin accepted")
	}
}

func TestGateTypeString(t *testing.T) {
	if And.String() != "AND" || NonScanDFF.String() != "NSDFF" {
		t.Fatal("gate names wrong")
	}
	if GateType(99).String() == "" {
		t.Fatal("unknown type renders empty")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := buildToy(t)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Name != c.Name || c2.NumGates() != c.NumGates() {
		t.Fatal("round trip lost structure")
	}
	for i := range c.Gates {
		if c.Gates[i].Type != c2.Gates[i].Type {
			t.Fatalf("gate %d type changed", i)
		}
	}
	if len(c2.ScanCells) != 2 || len(c2.PIs) != 2 {
		t.Fatal("round trip lost scan/pi lists")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad json")); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","gates":[{"t":"WAT"}]}`)); err == nil {
		t.Fatal("unknown gate type accepted")
	}
}

func TestGenerate(t *testing.T) {
	c, err := Generate(GenConfig{
		Name:      "gen1",
		ScanCells: 64,
		PIs:       8,
		XClusters: 4,
		XFanout:   5,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ScanCells != 64 || st.PIs != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if st.NonScan != 4 {
		t.Fatalf("NonScan = %d, want 4 clusters", st.NonScan)
	}
	if st.XSources < 4 {
		t.Fatalf("XSources = %d", st.XSources)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Name: "g", ScanCells: 32, PIs: 4, XClusters: 2, Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGates() != b.NumGates() {
		t.Fatal("same seed, different circuits")
	}
	for i := range a.Gates {
		if a.Gates[i].Type != b.Gates[i].Type {
			t.Fatal("same seed, different gates")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{ScanCells: 1, PIs: 1}); err == nil {
		t.Fatal("accepted 1 scan cell")
	}
	if _, err := Generate(GenConfig{ScanCells: 8, PIs: 0}); err == nil {
		t.Fatal("accepted 0 PIs")
	}
}
