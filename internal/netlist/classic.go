package netlist

// Classic benchmark circuits, hand-translated from the ISCAS'85/'89
// distributions. They serve as known-good fixtures for the simulator and
// fault machinery, and as familiar anchors for anyone comparing this
// substrate against published DFT results.

// C17 returns the ISCAS'85 c17 benchmark: 5 inputs, 6 NAND gates, and the
// two classic outputs N22 and N23 (exposed both as primary outputs and
// captured into two scan cells so the scan flow can exercise it).
func C17() (*Circuit, error) {
	b := NewBuilder("c17")
	n1 := b.Input("N1")
	n2 := b.Input("N2")
	n3 := b.Input("N3")
	n6 := b.Input("N6")
	n7 := b.Input("N7")
	g10 := b.Named("N10", Nand, n1, n3)
	g11 := b.Named("N11", Nand, n3, n6)
	g16 := b.Named("N16", Nand, n2, g11)
	g19 := b.Named("N19", Nand, g11, n7)
	g22 := b.Named("N22", Nand, g10, g16)
	g23 := b.Named("N23", Nand, g16, g19)
	b.PO(g22)
	b.PO(g23)
	b.ScanDFF(g22)
	b.ScanDFF(g23)
	return b.Build()
}

// S27 returns the ISCAS'89 s27 benchmark: 4 inputs, 1 output, 3 flip-flops
// and 10 gates. The flip-flops are modeled as scan cells (the standard
// full-scan version of the design).
func S27() (*Circuit, error) {
	b := NewBuilder("s27")
	g0 := b.Input("G0")
	g1 := b.Input("G1")
	g2 := b.Input("G2")
	g3 := b.Input("G3")
	// State elements (scan flops); data inputs patched below.
	g5 := b.ScanDFFDeferred() // G5 <- G10
	g6 := b.ScanDFFDeferred() // G6 <- G11
	g7 := b.ScanDFFDeferred() // G7 <- G13
	g14 := b.Named("G14", Not, g0)
	g8 := b.Named("G8", And, g14, g6)
	g12 := b.Named("G12", Nor, g1, g7)
	g15 := b.Named("G15", Or, g12, g8)
	g16 := b.Named("G16", Or, g3, g8)
	g9 := b.Named("G9", Nand, g16, g15)
	g11 := b.Named("G11", Nor, g5, g9)
	g10 := b.Named("G10", Nor, g14, g11)
	g13 := b.Named("G13", Nand, g2, g12)
	g17 := b.Named("G17", Not, g11)
	b.SetFanin(g5, g10)
	b.SetFanin(g6, g11)
	b.SetFanin(g7, g13)
	b.PO(g17)
	return b.Build()
}
