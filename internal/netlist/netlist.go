// Package netlist models gate-level circuits for the scan-test substrate:
// combinational gates, scan and non-scan flip-flops, and the X-value sources
// the paper names (uninitialized memory elements, floating tri-states, bus
// contention). Circuits are built with a Builder, validated, levelized for
// simulation, and can be generated randomly with controllable X structure.
//
// In the end-to-end flow (docs/FLOW.md) Generate is the first stage: it is
// the source of every X the rest of the pipeline masks or cancels.
// GenConfig's knobs shape the X structure the way the paper observes it in
// industrial designs (clustered, inter-correlated): each cluster is one
// non-scan storage element fanned out to XFanout scan cells behind a
// shared enable, so the cluster's cells capture X on the same patterns —
// the correlation Algorithm 1 exploits — while DropoutPerMille adds
// per-cell blocking to keep the overlap imperfect. Generation is a pure
// function of GenConfig (seeded PRNG, no global state), which the flow
// relies on to re-derive a spooled job's circuit on resume. Finalized
// circuits are immutable and levelized; gate IDs are dense and
// levelization-ordered, so simulators evaluate in one forward sweep.
//
// See DESIGN.md §3 for the substitution argument (generated circuits in
// place of the paper's proprietary designs) and §5.1 for the chain-major
// cell indexing the scan geometry imposes on generated scan cells.
package netlist

import (
	"fmt"
)

// GateType enumerates the supported node kinds.
type GateType int

// Node kinds. Input is a primary input; DFF is a scan flip-flop (loadable
// and observable through the scan chain); NonScanDFF is an uninitialized
// storage element (an X source); Tri is a tri-state driver whose output
// floats (X) when its enable input is 0.
const (
	Input GateType = iota
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	Not
	Buf
	Mux // fanin: sel, d0, d1
	Tri // fanin: enable, data; output X when enable != 1
	Tie0
	Tie1
	TieX
	DFF        // fanin: d
	NonScanDFF // fanin: d; powers up X
)

var gateNames = map[GateType]string{
	Input: "INPUT", And: "AND", Or: "OR", Nand: "NAND", Nor: "NOR",
	Xor: "XOR", Xnor: "XNOR", Not: "NOT", Buf: "BUF", Mux: "MUX",
	Tri: "TRI", Tie0: "TIE0", Tie1: "TIE1", TieX: "TIEX",
	DFF: "DFF", NonScanDFF: "NSDFF",
}

// String names the gate type.
func (t GateType) String() string {
	if s, ok := gateNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// arity returns the required fanin count, or -1 for variadic (>= 1).
func (t GateType) arity() int {
	switch t {
	case Input, Tie0, Tie1, TieX:
		return 0
	case Not, Buf, DFF, NonScanDFF:
		return 1
	case Tri:
		return 2
	case Mux:
		return 3
	case And, Or, Nand, Nor, Xor, Xnor:
		return -1
	}
	return -2
}

// IsState reports whether the node is a storage element.
func (t GateType) IsState() bool { return t == DFF || t == NonScanDFF }

// Gate is one netlist node.
type Gate struct {
	// Type is the node kind.
	Type GateType
	// Fanin lists driver node ids (meaning depends on Type).
	Fanin []int
	// Name is an optional human-readable label.
	Name string
}

// Circuit is an immutable gate-level design.
type Circuit struct {
	// Name labels the design.
	Name string
	// Gates are the nodes; a node's id is its index.
	Gates []Gate
	// PIs are the primary-input node ids in declaration order.
	PIs []int
	// POs are observed combinational outputs (optional).
	POs []int
	// ScanCells are the DFF node ids in scan-chain order: cell i of the
	// flat scan index corresponds to ScanCells[i].
	ScanCells []int
	// NonScan are the NonScanDFF node ids.
	NonScan []int

	// order is the combinational evaluation order (state outputs and
	// inputs excluded), computed at Finalize.
	order []int
	// level is the logic level per node (0 for sources).
	level []int
}

// NumGates returns the node count.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// EvalOrder returns the levelized combinational evaluation order.
func (c *Circuit) EvalOrder() []int { return c.order }

// Level returns the logic level of node id.
func (c *Circuit) Level(id int) int { return c.level[id] }

// Depth returns the maximum logic level.
func (c *Circuit) Depth() int {
	max := 0
	for _, l := range c.level {
		if l > max {
			max = l
		}
	}
	return max
}

// Stats summarizes the circuit.
type Stats struct {
	Gates     int
	PIs       int
	POs       int
	ScanCells int
	NonScan   int
	XSources  int
	Depth     int
}

// Stats computes summary statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{
		Gates:     len(c.Gates),
		PIs:       len(c.PIs),
		POs:       len(c.POs),
		ScanCells: len(c.ScanCells),
		NonScan:   len(c.NonScan),
		Depth:     c.Depth(),
	}
	for _, g := range c.Gates {
		if g.Type == TieX || g.Type == Tri || g.Type == NonScanDFF {
			s.XSources++
		}
	}
	return s
}

// Validate checks structural invariants: fanin arities, id ranges, and
// combinational acyclicity (cycles must pass through storage elements).
func (c *Circuit) Validate() error {
	for id, g := range c.Gates {
		want := g.Type.arity()
		if want == -2 {
			return fmt.Errorf("netlist: node %d has invalid type %v", id, g.Type)
		}
		if want == -1 {
			if len(g.Fanin) < 1 {
				return fmt.Errorf("netlist: node %d (%v) needs at least one fanin", id, g.Type)
			}
		} else if len(g.Fanin) != want {
			return fmt.Errorf("netlist: node %d (%v) has %d fanins, want %d", id, g.Type, len(g.Fanin), want)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(c.Gates) {
				return fmt.Errorf("netlist: node %d references invalid fanin %d", id, f)
			}
		}
	}
	for _, id := range c.ScanCells {
		if id < 0 || id >= len(c.Gates) || c.Gates[id].Type != DFF {
			return fmt.Errorf("netlist: scan cell %d is not a DFF", id)
		}
	}
	if _, _, err := levelize(c.Gates); err != nil {
		return err
	}
	return nil
}

// levelize returns the combinational evaluation order and per-node levels.
// Storage-element outputs, inputs, and ties are level-0 sources; a
// combinational cycle is an error.
func levelize(gates []Gate) (order []int, level []int, err error) {
	n := len(gates)
	level = make([]int, n)
	state := make([]byte, n) // 0 = unvisited, 1 = in progress, 2 = done
	order = make([]int, 0, n)
	var visit func(id int) error
	visit = func(id int) error {
		switch state[id] {
		case 1:
			return fmt.Errorf("netlist: combinational cycle through node %d", id)
		case 2:
			return nil
		}
		g := gates[id]
		if g.Type == Input || g.Type.IsState() || g.Type == Tie0 || g.Type == Tie1 || g.Type == TieX {
			state[id] = 2
			level[id] = 0
			return nil
		}
		state[id] = 1
		max := 0
		for _, f := range g.Fanin {
			if err := visit(f); err != nil {
				return err
			}
			if level[f] > max {
				max = level[f]
			}
		}
		level[id] = max + 1
		state[id] = 2
		order = append(order, id)
		return nil
	}
	for id := range gates {
		if err := visit(id); err != nil {
			return nil, nil, err
		}
	}
	return order, level, nil
}

// Finalize validates the circuit and computes the evaluation order.
func (c *Circuit) Finalize() error {
	if err := c.Validate(); err != nil {
		return err
	}
	order, level, err := levelize(c.Gates)
	if err != nil {
		return err
	}
	c.order, c.level = order, level
	return nil
}
