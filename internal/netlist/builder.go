package netlist

import "fmt"

// Builder constructs circuits incrementally. Methods return node ids that
// later gates reference as fanins. Call Build to validate and finalize.
type Builder struct {
	c   Circuit
	err error
}

// NewBuilder starts an empty circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{c: Circuit{Name: name}}
}

// add appends a node and returns its id.
func (b *Builder) add(g Gate) int {
	b.c.Gates = append(b.c.Gates, g)
	return len(b.c.Gates) - 1
}

// Input declares a primary input.
func (b *Builder) Input(name string) int {
	id := b.add(Gate{Type: Input, Name: name})
	b.c.PIs = append(b.c.PIs, id)
	return id
}

// Gate adds a combinational gate.
func (b *Builder) Gate(t GateType, fanin ...int) int {
	switch t {
	case Input, DFF, NonScanDFF:
		if b.err == nil {
			b.err = fmt.Errorf("netlist: use the dedicated Builder method for %v", t)
		}
	}
	return b.add(Gate{Type: t, Fanin: fanin})
}

// Named adds a combinational gate with a label.
func (b *Builder) Named(name string, t GateType, fanin ...int) int {
	id := b.Gate(t, fanin...)
	b.c.Gates[id].Name = name
	return id
}

// ScanDFF adds a scan flip-flop with data input d, appended to the scan
// order; its id is both its output and its scan-cell position source.
func (b *Builder) ScanDFF(d int) int {
	id := b.add(Gate{Type: DFF, Fanin: []int{d}})
	b.c.ScanCells = append(b.c.ScanCells, id)
	return id
}

// NonScanDFF adds an uninitialized (X-source) storage element.
func (b *Builder) NonScanDFF(d int) int {
	id := b.add(Gate{Type: NonScanDFF, Fanin: []int{d}})
	b.c.NonScan = append(b.c.NonScan, id)
	return id
}

// ScanDFFDeferred adds a scan flip-flop whose data input is patched later
// with SetFanin — the usual way to close sequential loops where the flop's
// output feeds the logic cone that computes its next state.
func (b *Builder) ScanDFFDeferred() int {
	id := b.add(Gate{Type: DFF})
	b.c.ScanCells = append(b.c.ScanCells, id)
	return id
}

// SetFanin replaces the fanin list of an existing node.
func (b *Builder) SetFanin(id int, fanin ...int) {
	if id < 0 || id >= len(b.c.Gates) {
		if b.err == nil {
			b.err = fmt.Errorf("netlist: SetFanin on invalid node %d", id)
		}
		return
	}
	b.c.Gates[id].Fanin = fanin
}

// PO marks a node as a primary output.
func (b *Builder) PO(id int) {
	b.c.POs = append(b.c.POs, id)
}

// Build validates, finalizes and returns the circuit.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	c := b.c
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return &c, nil
}

// MustBuild is Build that panics on error; for tests and fixtures.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}
