package netlist

import "testing"

func TestC17Structure(t *testing.T) {
	c, err := C17()
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.PIs != 5 || st.POs != 2 || st.ScanCells != 2 {
		t.Fatalf("c17 stats = %+v", st)
	}
	nands := 0
	for _, g := range c.Gates {
		if g.Type == Nand {
			nands++
		}
	}
	if nands != 6 {
		t.Fatalf("c17 has %d NANDs, want 6", nands)
	}
	if c.Depth() != 3 {
		t.Fatalf("c17 depth = %d, want 3", c.Depth())
	}
}

func TestS27Structure(t *testing.T) {
	c, err := S27()
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.PIs != 4 || st.POs != 1 || st.ScanCells != 3 {
		t.Fatalf("s27 stats = %+v", st)
	}
	// 10 combinational gates + 4 inputs + 3 flops = 17 nodes.
	if c.NumGates() != 17 {
		t.Fatalf("s27 has %d nodes, want 17", c.NumGates())
	}
}
