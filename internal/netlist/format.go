package netlist

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGate is the serialized form of a node.
type jsonGate struct {
	T    string `json:"t"`
	In   []int  `json:"in,omitempty"`
	Name string `json:"name,omitempty"`
}

// jsonCircuit is the serialized form of a circuit.
type jsonCircuit struct {
	Name    string     `json:"name"`
	Gates   []jsonGate `json:"gates"`
	PIs     []int      `json:"pis,omitempty"`
	POs     []int      `json:"pos,omitempty"`
	Scan    []int      `json:"scan,omitempty"`
	NonScan []int      `json:"nonscan,omitempty"`
}

var nameToType = func() map[string]GateType {
	m := make(map[string]GateType, len(gateNames))
	for t, n := range gateNames {
		m[n] = t
	}
	return m
}()

// WriteJSON serializes the circuit.
func (c *Circuit) WriteJSON(w io.Writer) error {
	jc := jsonCircuit{
		Name:    c.Name,
		PIs:     c.PIs,
		POs:     c.POs,
		Scan:    c.ScanCells,
		NonScan: c.NonScan,
	}
	for _, g := range c.Gates {
		jc.Gates = append(jc.Gates, jsonGate{T: g.Type.String(), In: g.Fanin, Name: g.Name})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jc)
}

// ReadJSON parses, validates and finalizes a serialized circuit.
func ReadJSON(r io.Reader) (*Circuit, error) {
	var jc jsonCircuit
	if err := json.NewDecoder(r).Decode(&jc); err != nil {
		return nil, fmt.Errorf("netlist: decode: %w", err)
	}
	c := &Circuit{
		Name:      jc.Name,
		PIs:       jc.PIs,
		POs:       jc.POs,
		ScanCells: jc.Scan,
		NonScan:   jc.NonScan,
	}
	for i, g := range jc.Gates {
		t, ok := nameToType[g.T]
		if !ok {
			return nil, fmt.Errorf("netlist: gate %d has unknown type %q", i, g.T)
		}
		c.Gates = append(c.Gates, Gate{Type: t, Fanin: g.In, Name: g.Name})
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}
