// Package atpg generates test stimuli for the scan substrate: an LFSR-based
// pseudo-random pattern generator (the usual logic-BIST / test-compression
// source) with optional per-bit weighting, producing the scan-load and
// primary-input vectors the simulator consumes.
//
// In the end-to-end flow (docs/FLOW.md) this is the second stage: the
// stimuli it generates for a netlist.Generate circuit are what
// internal/sim evaluates to produce the responses the real X-map is
// extracted from. GenerateStimuli is fully determined by (patterns, scan
// width, PI width, seed) — same arguments, same vectors, on any host —
// which is what lets a flow job resume after a crash by regenerating its
// stimuli instead of spooling them. The LFSR maps the all-zero lockup seed
// to 1, so every seed (including 0) yields a maximal-length sequence.
//
// This package stands in for the commercial ATPG of the paper's setup; see
// DESIGN.md §3 (substitutions) for why pseudo-random stimuli preserve the
// behaviour the paper measures.
package atpg

import (
	"fmt"

	"xhybrid/internal/logic"
	"xhybrid/internal/misr"
)

// LFSR is a Galois-form linear feedback shift register used as a
// pseudo-random bit source.
type LFSR struct {
	cfg   misr.Config
	state uint64
}

// NewLFSR returns an LFSR of the given size seeded with seed (the all-zero
// lockup state is replaced by 1).
func NewLFSR(size int, seed uint64) (*LFSR, error) {
	cfg, err := misr.Standard(size)
	if err != nil {
		return nil, err
	}
	l := &LFSR{cfg: cfg}
	l.Seed(seed)
	return l, nil
}

// MustNewLFSR is NewLFSR that panics on error.
func MustNewLFSR(size int, seed uint64) *LFSR {
	l, err := NewLFSR(size, seed)
	if err != nil {
		panic(err)
	}
	return l
}

// Seed resets the LFSR state, mapping 0 to 1 to avoid lockup.
func (l *LFSR) Seed(seed uint64) {
	seed &= l.mask()
	if seed == 0 {
		seed = 1
	}
	l.state = seed
}

func (l *LFSR) mask() uint64 {
	if l.cfg.Size == 64 {
		return ^uint64(0)
	}
	return (1 << uint(l.cfg.Size)) - 1
}

// State returns the current register contents.
func (l *LFSR) State() uint64 { return l.state }

// NextBit clocks once and returns the new low-order bit.
func (l *LFSR) NextBit() int {
	fb := (l.state >> uint(l.cfg.Size-1)) & 1
	l.state = (l.state << 1) & l.mask()
	if fb == 1 {
		l.state ^= l.cfg.Poly
	}
	return int(l.state & 1)
}

// NextUint64 returns 64 fresh pseudo-random bits.
func (l *LFSR) NextUint64() uint64 {
	var w uint64
	for i := 0; i < 64; i++ {
		w |= uint64(l.NextBit()) << uint(i)
	}
	return w
}

// Generator produces pseudo-random scan-test stimuli.
type Generator struct {
	lfsr *LFSR
	// WeightOneNum/Den set the probability of generating a 1 per bit as a
	// rational WeightOneNum/WeightOneDen (default 1/2).
	weightNum, weightDen int
}

// NewGenerator returns a pattern generator over a 32-bit LFSR.
func NewGenerator(seed uint64) *Generator {
	return &Generator{lfsr: MustNewLFSR(32, seed), weightNum: 1, weightDen: 2}
}

// SetWeight sets the per-bit probability of a 1 to num/den.
func (g *Generator) SetWeight(num, den int) error {
	if den <= 0 || num < 0 || num > den {
		return fmt.Errorf("atpg: invalid weight %d/%d", num, den)
	}
	g.weightNum, g.weightDen = num, den
	return nil
}

// bit draws one weighted bit.
func (g *Generator) bit() logic.V {
	if g.weightDen == 2 && g.weightNum == 1 {
		return logic.FromBit(g.lfsr.NextBit())
	}
	// Draw log2ceil(den) bits and compare; rejection-free approximation via
	// a 16-bit draw.
	var v uint32
	for i := 0; i < 16; i++ {
		v = v<<1 | uint32(g.lfsr.NextBit())
	}
	if int(v%uint32(g.weightDen)) < g.weightNum {
		return logic.One
	}
	return logic.Zero
}

// Pattern returns one fully specified pseudo-random vector of width n.
func (g *Generator) Pattern(n int) logic.Vector {
	v := make(logic.Vector, n)
	for i := range v {
		v[i] = g.bit()
	}
	return v
}

// Patterns returns k vectors of width n.
func (g *Generator) Patterns(k, n int) []logic.Vector {
	out := make([]logic.Vector, k)
	for i := range out {
		out[i] = g.Pattern(n)
	}
	return out
}

// Stimuli bundles the scan loads and primary-input vectors for a test set.
type Stimuli struct {
	Loads []logic.Vector
	PIs   []logic.Vector
}

// GenerateStimuli produces k patterns for a design with the given scan and
// primary-input widths.
func GenerateStimuli(k, scanWidth, piWidth int, seed uint64) Stimuli {
	g := NewGenerator(seed)
	return Stimuli{
		Loads: g.Patterns(k, scanWidth),
		PIs:   g.Patterns(k, piWidth),
	}
}
