package atpg_test

import (
	"fmt"

	"xhybrid/internal/atpg"
)

// ExampleGenerateStimuli produces the seeded pseudo-random patterns the
// flow's simulate stage applies (docs/FLOW.md). The stimuli are a pure
// function of the arguments: the same (patterns, widths, seed) reproduce
// the same vectors on any host, so a resumed flow job regenerates them.
func ExampleGenerateStimuli() {
	st := atpg.GenerateStimuli(4, 16, 8, 0xbeef)
	fmt.Printf("patterns: %d\n", len(st.Loads))
	fmt.Printf("second load: %s\n", st.Loads[1])
	fmt.Printf("second pis:  %s\n", st.PIs[1])
	// Output:
	// patterns: 4
	// second load: 1011111011101111
	// second pis:  01011110
}
