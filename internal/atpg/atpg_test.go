package atpg

import (
	"testing"

	"xhybrid/internal/logic"
)

func TestLFSRPeriodSmall(t *testing.T) {
	l := MustNewLFSR(8, 1)
	seen := map[uint64]bool{}
	start := l.State()
	period := 0
	for {
		l.NextBit()
		period++
		if l.State() == start {
			break
		}
		if seen[l.State()] {
			t.Fatal("entered a sub-cycle not containing the start state")
		}
		seen[l.State()] = true
		if period > 1<<9 {
			t.Fatal("period too long")
		}
	}
	if period != 255 {
		t.Fatalf("period = %d, want 255 (primitive degree-8 polynomial)", period)
	}
}

func TestSeedZeroMapsToOne(t *testing.T) {
	l := MustNewLFSR(8, 0)
	if l.State() == 0 {
		t.Fatal("LFSR locked up at zero")
	}
}

func TestMustNewLFSRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewLFSR(0, 1)
}

func TestBitBalance(t *testing.T) {
	l := MustNewLFSR(32, 0xDEADBEEF)
	ones := 0
	n := 20000
	for i := 0; i < n; i++ {
		ones += l.NextBit()
	}
	if ones < n*45/100 || ones > n*55/100 {
		t.Fatalf("ones = %d of %d; LFSR badly biased", ones, n)
	}
}

func TestNextUint64(t *testing.T) {
	l := MustNewLFSR(32, 7)
	a, b := l.NextUint64(), l.NextUint64()
	if a == b {
		t.Fatal("consecutive words identical")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(5).Patterns(4, 16)
	b := NewGenerator(5).Patterns(4, 16)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed, different patterns")
		}
	}
	c := NewGenerator(6).Patterns(4, 16)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds, identical patterns")
	}
}

func TestPatternsFullySpecified(t *testing.T) {
	for _, v := range NewGenerator(1).Patterns(8, 33) {
		if len(v) != 33 {
			t.Fatalf("width %d", len(v))
		}
		if v.CountX() != 0 {
			t.Fatal("pattern contains X")
		}
	}
}

func TestWeighted(t *testing.T) {
	g := NewGenerator(9)
	if err := g.SetWeight(1, 8); err != nil {
		t.Fatal(err)
	}
	ones := 0
	n := 4000
	for _, v := range g.Pattern(n) {
		if v == logic.One {
			ones++
		}
	}
	frac := float64(ones) / float64(n)
	if frac < 0.07 || frac > 0.19 {
		t.Fatalf("weighted ones fraction = %f, want ~0.125", frac)
	}
	if err := g.SetWeight(3, 2); err == nil {
		t.Fatal("accepted weight > 1")
	}
	if err := g.SetWeight(-1, 2); err == nil {
		t.Fatal("accepted negative weight")
	}
}

func TestGenerateStimuli(t *testing.T) {
	s := GenerateStimuli(10, 20, 4, 3)
	if len(s.Loads) != 10 || len(s.PIs) != 10 {
		t.Fatal("wrong counts")
	}
	if len(s.Loads[0]) != 20 || len(s.PIs[0]) != 4 {
		t.Fatal("wrong widths")
	}
}
