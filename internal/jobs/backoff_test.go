package jobs

import (
	"context"
	"errors"
	"io/fs"
	"testing"
	"time"
)

// stubPolicy returns a policy with instrumented sleep and zeroed jitter so
// delays are exact.
func stubPolicy(attempts int) (RetryPolicy, *[]time.Duration) {
	slept := new([]time.Duration)
	return RetryPolicy{
		Attempts: attempts,
		Base:     10 * time.Millisecond,
		Max:      40 * time.Millisecond,
		Jitter:   -1, // withDefaults clamps negative to 0: no jitter
		sleep:    func(d time.Duration) { *slept = append(*slept, d) },
		rng:      func() float64 { return 1 },
	}, slept
}

func TestRetryTransientThenSuccess(t *testing.T) {
	p, slept := stubPolicy(5)
	calls, retries := 0, 0
	err := p.retry(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}, func(error) { retries++ })
	if err != nil {
		t.Fatalf("retry = %v, want nil", err)
	}
	if calls != 3 || retries != 2 {
		t.Errorf("calls = %d, retries = %d, want 3 and 2", calls, retries)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Errorf("delay[%d] = %v, want %v (exponential doubling)", i, (*slept)[i], d)
		}
	}
}

func TestRetryDelayCap(t *testing.T) {
	p, slept := stubPolicy(6)
	_ = p.retry(context.Background(), func() error { return errors.New("always") }, nil)
	// 10, 20, 40, then capped at 40, 40.
	if n := len(*slept); n != 5 {
		t.Fatalf("slept %d times, want 5", n)
	}
	if last := (*slept)[4]; last != 40*time.Millisecond {
		t.Errorf("final delay = %v, want capped 40ms", last)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	p, slept := stubPolicy(5)
	calls := 0
	err := p.retry(context.Background(), func() error {
		calls++
		return fs.ErrNotExist
	}, nil)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("retry = %v, want ErrNotExist", err)
	}
	if calls != 1 || len(*slept) != 0 {
		t.Errorf("calls = %d, sleeps = %d, want 1 and 0 (permanent error)", calls, len(*slept))
	}
}

func TestRetryExhausted(t *testing.T) {
	p, _ := stubPolicy(3)
	calls := 0
	sentinel := errors.New("disk on fire")
	err := p.retry(context.Background(), func() error {
		calls++
		return sentinel
	}, nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("retry = %v, want wrapped sentinel", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (the attempt budget)", calls)
	}
}

func TestRetryStopsOnCanceledContext(t *testing.T) {
	p, slept := stubPolicy(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := p.retry(ctx, func() error {
		calls++
		return errors.New("transient")
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("retry = %v, want context.Canceled", err)
	}
	if calls != 1 || len(*slept) != 0 {
		t.Errorf("calls = %d, sleeps = %d, want 1 and 0 (dead context)", calls, len(*slept))
	}
}

func TestRetryJitterBounds(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		Attempts: 2,
		Base:     100 * time.Millisecond,
		Jitter:   0.5,
		sleep:    func(d time.Duration) { slept = append(slept, d) },
		rng:      func() float64 { return 1 }, // max jitter draw
	}
	_ = p.retry(context.Background(), func() error { return errors.New("x") }, nil)
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1", len(slept))
	}
	if slept[0] != 150*time.Millisecond {
		t.Errorf("delay = %v, want 150ms (base + full 50%% jitter)", slept[0])
	}
}
