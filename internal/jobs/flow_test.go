package jobs

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xhybrid"
	"xhybrid/internal/obs"
)

// testFlowSpec is a small deterministic end-to-end flow: multi-round under
// greedy so checkpoints accumulate, sub-second on one CPU.
func testFlowSpec() xhybrid.FlowSpec {
	return xhybrid.FlowSpec{
		Cells:       256,
		Chains:      16,
		XClusters:   8,
		CircuitSeed: 5,
		StimSeed:    9,
		Patterns:    96,
		MISRSize:    8,
		Q:           2,
		Strategy:    "greedy",
		Workers:     2,
	}
}

// assertFlowReportsMatch compares the deterministic legs of two flow
// reports — the X-map digest, the plan accounting and the replay — and
// never the stage wall times.
func assertFlowReportsMatch(t *testing.T, got, want *xhybrid.FlowReport) {
	t.Helper()
	if got.XMapDigest != want.XMapDigest {
		t.Errorf("X-map digest %s, want %s", got.XMapDigest, want.XMapDigest)
	}
	if got.TotalBits != want.TotalBits || got.Partitions != want.Partitions || got.Rounds != want.Rounds {
		t.Errorf("plan (%d bits, %d partitions, %d rounds), want (%d, %d, %d)",
			got.TotalBits, got.Partitions, got.Rounds,
			want.TotalBits, want.Partitions, want.Rounds)
	}
	if got.Replay != want.Replay {
		t.Errorf("replay %+v, want %+v", got.Replay, want.Replay)
	}
	if !got.Preserved {
		t.Error("flow report's preservation verdict is false")
	}
}

func TestFlowJobLifecycle(t *testing.T) {
	rec := obs.New()
	m, err := Open(t.TempDir(), Config{CheckpointEvery: 1, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	want, err := xhybrid.RunFlow(testFlowSpec())
	if err != nil {
		t.Fatal(err)
	}

	meta, err := m.SubmitFlow(context.Background(), testFlowSpec(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Kind != KindFlow {
		t.Fatalf("submitted kind %q, want %q", meta.Kind, KindFlow)
	}
	if meta.Tenant != "acme" {
		t.Fatalf("submitted tenant %q, want acme", meta.Tenant)
	}
	st := waitTerminal(t, m, meta.ID)
	if st.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", st.State, st.Error)
	}

	rep, err := m.FlowResult(context.Background(), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertFlowReportsMatch(t, rep, want)

	// The kind gate: a flow job has no partition plan, and vice versa.
	if _, err := m.Result(context.Background(), meta.ID); !errors.Is(err, ErrNotDone) {
		t.Errorf("Result(flow job) = %v, want ErrNotDone", err)
	}
	pmeta, err := m.Submit(context.Background(), testInput(t), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, pmeta.ID)
	if _, err := m.FlowResult(context.Background(), pmeta.ID); !errors.Is(err, ErrNotDone) {
		t.Errorf("FlowResult(partition job) = %v, want ErrNotDone", err)
	}

	if got := rec.Snapshot().CounterValue("jobs.completed"); got != 2 {
		t.Errorf("jobs.completed = %d, want 2", got)
	}
}

func TestSubmitFlowRejectsBadSpec(t *testing.T) {
	m, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	bad := testFlowSpec()
	bad.Chains = 7 // does not divide 256
	if _, err := m.SubmitFlow(context.Background(), bad, ""); err == nil {
		t.Fatal("SubmitFlow accepted an invalid spec")
	}
}

// TestFlowJobStopResumes is the flow edition of the crash drill: the
// manager stops mid-partition right as the first checkpoint lands, the
// spooled record stays resumable, and a fresh manager over the same spool
// finishes the job to the same deterministic report as an uninterrupted
// run.
func TestFlowJobStopResumes(t *testing.T) {
	dir := t.TempDir()
	want, err := xhybrid.RunFlow(testFlowSpec())
	if err != nil {
		t.Fatal(err)
	}

	hit := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	fsys := &hookFS{FS: OSFS{}, beforeWrite: func(name string) {
		if filepath.Base(name) == checkpointFile+tmpSuffix {
			once.Do(func() { close(hit) })
			<-gate
		}
	}}

	mA, err := Open(dir, Config{FS: fsys, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := mA.SubmitFlow(context.Background(), testFlowSpec(), "")
	if err != nil {
		t.Fatal(err)
	}
	<-hit
	stopped := make(chan struct{})
	go func() { mA.Stop(); close(stopped) }()
	time.Sleep(20 * time.Millisecond) // let Stop cancel the base context
	close(gate)
	<-stopped

	store, err := NewStore(dir, nil, RetryPolicy{}, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := store.ReadMeta(context.Background(), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State.Terminal() {
		t.Fatalf("interrupted flow job spooled as %s, want a resumable state", onDisk.State)
	}
	if onDisk.Kind != KindFlow {
		t.Fatalf("spooled kind %q, want %q", onDisk.Kind, KindFlow)
	}

	rec := obs.New()
	mB, err := Open(dir, Config{CheckpointEvery: 1, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer mB.Stop()
	st := waitTerminal(t, mB, meta.ID)
	if st.State != StateDone {
		t.Fatalf("recovered flow job = %s (error %q), want done", st.State, st.Error)
	}
	if st.Resumes != 1 {
		t.Errorf("Resumes = %d, want 1", st.Resumes)
	}
	rep, err := mB.FlowResult(context.Background(), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertFlowReportsMatch(t, rep, want)
	if got := rec.Snapshot().CounterValue("jobs.recovered"); got != 1 {
		t.Errorf("jobs.recovered = %d, want 1", got)
	}
}
