// Package jobs implements crash-durable asynchronous partition jobs: a
// disk spool that persists each job's input X-map, normalized options,
// periodic engine checkpoints and final plan, plus a manager that runs
// jobs on a bounded worker pool and — after a crash, SIGKILL or restart —
// resumes every unfinished job from its last good checkpoint. Resume is
// exact: the engine replays the checkpoint's committed trace and the
// finished plan is byte-identical to an uninterrupted run (see
// internal/core's Checkpoint and the resume tests).
//
// Durability model: every spool mutation is write-to-temp + atomic rename,
// and the checkpoint file rotates through a current/previous pair, so a
// crash at any instant leaves at least one complete, resumable state on
// disk. Transient spool I/O errors are retried with exponential backoff
// and jitter (RetryPolicy); torn or corrupted checkpoints are detected at
// decode or replay time and recovery falls back to the previous
// checkpoint, then to a from-scratch run — never a crash.
//
// This package implements the jobs/spool extension of DESIGN.md §7;
// internal/chaos injects its failure modes.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"xhybrid"
	"xhybrid/internal/obs"
)

// State is a job's lifecycle state.
type State string

const (
	// StateSubmitted: spooled, waiting for a run slot.
	StateSubmitted State = "submitted"
	// StateRunning: computing (or interrupted mid-compute by a crash — a
	// spooled "running" job found at startup is resumed).
	StateRunning State = "running"
	// StateDone: finished; the result is spooled.
	StateDone State = "done"
	// StateFailed: finished unsuccessfully (bad input, cancellation, or an
	// exhausted retry budget); Error holds the cause.
	StateFailed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Job kinds (Meta.Kind).
const (
	// KindPartition is the classic job: partition a spooled X-map into a
	// plan. The zero value, so every pre-existing spool record decodes to
	// it.
	KindPartition = ""
	// KindFlow runs the full circuit pipeline (generate → ATPG → simulate →
	// extract → partition → replay) from a spooled FlowSpec. The partition
	// stage checkpoints and resumes exactly like a KindPartition job; the
	// earlier stages are re-derived from the spec's seeds on resume.
	KindFlow = "flow"
)

// Sentinel errors; match with errors.Is.
var (
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("jobs: not found")
	// ErrQueueFull reports a submission beyond the waiting-job cap.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrNotDone reports a result request for an unfinished job.
	ErrNotDone = errors.New("jobs: not done")
)

// Options is the normalized, serializable subset of xhybrid.Options a job
// runs with. Zero values mean the engine defaults (m=32, q=7, strategy
// paper); Strategy is stored normalized so equal submissions spool
// equally.
type Options struct {
	MISRSize        int    `json:"m,omitempty"`
	Q               int    `json:"q,omitempty"`
	Strategy        string `json:"strategy,omitempty"`
	Seed            int64  `json:"seed,omitempty"`
	MaxRounds       int    `json:"maxRounds,omitempty"`
	Workers         int    `json:"workers,omitempty"`
	CheckpointEvery int    `json:"checkpointEvery,omitempty"`
}

// Normalized fills defaults and validates the strategy (the one name a bad
// submission should fail fast on instead of failing asynchronously). The
// engine defaults and the strategy canonicalization are the facade's own
// xhybrid.Options.Normalized — one source of truth, so a spooled job's
// options always equal what the facade would have derived — plus the
// manager's checkpoint cadence for jobs that did not choose their own.
func (o Options) Normalized(defaultCheckpointEvery int) (Options, error) {
	x, err := o.xhybrid().Normalized()
	if err != nil {
		return o, fmt.Errorf("jobs: %w", err)
	}
	o.MISRSize, o.Q, o.Strategy = x.MISRSize, x.Q, x.Strategy
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = defaultCheckpointEvery
	}
	return o, nil
}

func (o Options) xhybrid() xhybrid.Options {
	return xhybrid.Options{
		MISRSize:  o.MISRSize,
		Q:         o.Q,
		Strategy:  o.Strategy,
		Seed:      o.Seed,
		MaxRounds: o.MaxRounds,
		Workers:   o.Workers,
	}
}

// Progress is a running job's live progress, sampled from its per-job
// recorder. For a resumed job the counters restart at the resume point;
// Rounds always reports the durable attempt-trace length from the last
// checkpoint.
type Progress struct {
	// Stage names the pipeline stage a flow job is currently in (generate,
	// atpg, simulate, extract, partition, replay, faultsim); empty for
	// partition jobs and idle flow jobs.
	Stage string `json:"stage,omitempty"`
	// Rounds is the attempt-trace length at the last checkpoint.
	Rounds int64 `json:"rounds"`
	// LiveRounds / LiveAccepted count rounds attempted/accepted since this
	// process started the job (from the obs counters).
	LiveRounds   int64 `json:"liveRounds"`
	LiveAccepted int64 `json:"liveAccepted"`
	// Checkpoints counts checkpoints written since this process started
	// the job.
	Checkpoints int64 `json:"checkpoints"`
}

// Status is one job's metadata plus live progress.
type Status struct {
	Meta
	Progress Progress `json:"progress"`
}

// Config parameterizes a Manager. The zero value works: spool retries use
// the default policy and concurrency defaults to 1.
type Config struct {
	// MaxConcurrent caps jobs computing at once (default 1).
	MaxConcurrent int
	// MaxQueue caps jobs waiting for a slot (default 64); Submit beyond it
	// returns ErrQueueFull. Recovered jobs bypass the cap — they are
	// already durable.
	MaxQueue int
	// CheckpointEvery is the default checkpoint cadence in accepted rounds
	// for jobs that do not choose their own (default 8).
	CheckpointEvery int
	// Retry is the spool I/O retry policy.
	Retry RetryPolicy
	// FS overrides the spool filesystem (nil = the real one); the chaos
	// harness injects faults here.
	FS FS
	// Obs receives the manager's counters and each job's pipeline stats;
	// nil creates a fresh recorder.
	Obs *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 1
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 8
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	return c
}

// jobHandle is the in-process state of an enqueued or running job.
type jobHandle struct {
	cancel       context.CancelFunc
	rec          *obs.Recorder
	rounds       atomic.Int64 // durable trace length at last checkpoint
	checkpoints  atomic.Int64
	userCanceled atomic.Bool
	stage        atomic.Value // string: current flow stage name
}

func (h *jobHandle) setStage(name string) { h.stage.Store(name) }

func (h *jobHandle) currentStage() string {
	s, _ := h.stage.Load().(string)
	return s
}

// Manager runs spooled jobs on a bounded pool. Open recovers unfinished
// jobs from the spool; Stop interrupts running jobs in a resumable way
// (their spooled state stays "running" and the next Open picks them up).
type Manager struct {
	cfg   Config
	store *Store
	rec   *obs.Recorder

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	sem        chan struct{}
	waiting    atomic.Int64

	mu     sync.Mutex
	active map[string]*jobHandle

	submitted   *obs.Counter
	completed   *obs.Counter
	failed      *obs.Counter
	canceled    *obs.Counter
	recovered   *obs.Counter
	interrupted *obs.Counter
	cpWritten   *obs.Counter
	cpRejected  *obs.Counter
}

// Open creates a manager over the spool at dir and re-enqueues every
// unfinished job it finds there (counted in jobs.recovered).
func Open(dir string, cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	store, err := NewStore(dir, cfg.FS, cfg.Retry, cfg.Obs)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		store:      store,
		rec:        cfg.Obs,
		baseCtx:    ctx,
		baseCancel: cancel,
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		active:     make(map[string]*jobHandle),

		submitted:   cfg.Obs.Counter("jobs.submitted"),
		completed:   cfg.Obs.Counter("jobs.completed"),
		failed:      cfg.Obs.Counter("jobs.failed"),
		canceled:    cfg.Obs.Counter("jobs.canceled"),
		recovered:   cfg.Obs.Counter("jobs.recovered"),
		interrupted: cfg.Obs.Counter("jobs.interrupted"),
		cpWritten:   cfg.Obs.Counter("jobs.checkpoints.written"),
		cpRejected:  cfg.Obs.Counter("jobs.checkpoints.rejected"),
	}
	metas, err := store.List(ctx)
	if err != nil {
		cancel()
		return nil, err
	}
	for _, meta := range metas {
		if meta.State.Terminal() {
			continue
		}
		meta.Resumes++
		m.recovered.Inc()
		m.enqueue(meta, true)
	}
	return m, nil
}

// Store exposes the spool (read paths are used by the serving layer).
func (m *Manager) Store() *Store { return m.store }

// Submit spools a new job and enqueues it, returning its metadata.
func (m *Manager) Submit(ctx context.Context, x *xhybrid.XLocations, opts Options) (Meta, error) {
	return m.SubmitTenant(ctx, x, opts, "")
}

// SubmitTenant is Submit with tenant attribution: the id is recorded on
// the durable job record (and reported in every status) so operators can
// tell whose job a spool entry is after a restart.
func (m *Manager) SubmitTenant(ctx context.Context, x *xhybrid.XLocations, opts Options, tenant string) (Meta, error) {
	norm, err := opts.Normalized(m.cfg.CheckpointEvery)
	if err != nil {
		return Meta{}, err
	}
	meta := Meta{
		ID:      newID(),
		State:   StateSubmitted,
		Options: norm,
		Created: time.Now().UTC(),
		Tenant:  tenant,
	}
	if err := m.store.CreateJob(ctx, meta, x); err != nil {
		return Meta{}, err
	}
	if !m.enqueue(meta, false) {
		// Leave the spooled record behind, marked failed, so the client
		// can still GET an explanation.
		meta.State = StateFailed
		meta.Error = ErrQueueFull.Error()
		meta.Finished = time.Now().UTC()
		_ = m.store.WriteMeta(context.Background(), meta)
		return Meta{}, ErrQueueFull
	}
	m.submitted.Inc()
	return meta, nil
}

// SubmitFlow spools a new end-to-end flow job (KindFlow) and enqueues it.
// The spec is normalized and validated before anything touches disk, so a
// bad spec fails synchronously (the serving layer clamps spec.Workers
// before calling here).
func (m *Manager) SubmitFlow(ctx context.Context, spec xhybrid.FlowSpec, tenant string) (Meta, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return Meta{}, err
	}
	meta := Meta{
		ID:      newID(),
		Kind:    KindFlow,
		State:   StateSubmitted,
		Options: Options{Workers: spec.Workers, CheckpointEvery: m.cfg.CheckpointEvery},
		Created: time.Now().UTC(),
		Tenant:  tenant,
	}
	if err := m.store.CreateFlowJob(ctx, meta, &spec); err != nil {
		return Meta{}, err
	}
	if !m.enqueue(meta, false) {
		meta.State = StateFailed
		meta.Error = ErrQueueFull.Error()
		meta.Finished = time.Now().UTC()
		_ = m.store.WriteMeta(context.Background(), meta)
		return Meta{}, ErrQueueFull
	}
	m.submitted.Inc()
	return meta, nil
}

// enqueue registers the job and starts its goroutine. force bypasses the
// waiting cap (recovery).
func (m *Manager) enqueue(meta Meta, force bool) bool {
	if m.waiting.Add(1) > int64(m.cfg.MaxQueue) && !force {
		m.waiting.Add(-1)
		return false
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	h := &jobHandle{cancel: cancel, rec: obs.New()}
	h.rounds.Store(int64(meta.Rounds))
	m.mu.Lock()
	m.active[meta.ID] = h
	m.mu.Unlock()
	m.wg.Add(1)
	go m.run(ctx, meta, h)
	return true
}

// run drives one job from slot acquisition to a terminal (or resumable)
// state.
func (m *Manager) run(ctx context.Context, meta Meta, h *jobHandle) {
	defer m.wg.Done()
	defer h.cancel()
	select {
	case m.sem <- struct{}{}:
	case <-ctx.Done():
		m.waiting.Add(-1)
		m.finishInterrupted(meta, h)
		return
	}
	m.waiting.Add(-1)
	defer func() { <-m.sem }()

	meta.State = StateRunning
	if meta.Started.IsZero() {
		meta.Started = time.Now().UTC()
	}
	if err := m.store.WriteMeta(ctx, meta); err != nil {
		m.finish(meta, h, nil, err)
		return
	}
	if meta.Kind == KindFlow {
		m.runFlow(ctx, meta, h)
		return
	}
	x, err := m.store.ReadInput(ctx, meta.ID)
	if err != nil {
		m.finish(meta, h, nil, err)
		return
	}

	// Resume ladder: current checkpoint, previous checkpoint, scratch. A
	// checkpoint that fails decode never appears here; one that fails
	// replay verification is rejected by the engine and the next rung is
	// tried.
	var plan *xhybrid.Plan
	for _, cp := range m.resumeLadder(ctx, meta.ID) {
		opt := meta.Options.xhybrid()
		opt.Stats = h.rec
		opt.CheckpointEvery = meta.Options.CheckpointEvery
		opt.Resume = cp
		opt.CheckpointSink = m.checkpointSink(ctx, meta.ID, h)
		plan, err = xhybrid.PartitionCtx(ctx, x, opt)
		if errors.Is(err, xhybrid.ErrCheckpointMismatch) {
			m.cpRejected.Inc()
			continue
		}
		break
	}
	m.finish(meta, h, func() error {
		return m.store.WriteResult(context.Background(), meta.ID, plan)
	}, err)
}

// runFlow drives a KindFlow job: the spooled spec is re-run front to back,
// with the partition stage checkpointing through the same spool machinery
// as a plain partition job. On resume the deterministic pre-partition
// stages (generate/ATPG/simulate/extract) are re-derived from the spec's
// seeds — they are pure functions of it — and the partitioner continues
// from the checkpointed trace, falling down the same cur → prev → scratch
// ladder on mismatch.
func (m *Manager) runFlow(ctx context.Context, meta Meta, h *jobHandle) {
	spec, err := m.store.ReadFlowSpec(ctx, meta.ID)
	if err != nil {
		m.finish(meta, h, nil, err)
		return
	}
	var rep *xhybrid.FlowReport
	for _, cp := range m.resumeLadder(ctx, meta.ID) {
		rep, err = xhybrid.RunFlowCtx(ctx, *spec, xhybrid.FlowRunConfig{
			Obs:             h.rec,
			CheckpointEvery: meta.Options.CheckpointEvery,
			CheckpointSink:  m.checkpointSink(ctx, meta.ID, h),
			Resume:          cp,
			OnStage:         h.setStage,
		})
		if errors.Is(err, xhybrid.ErrCheckpointMismatch) {
			m.cpRejected.Inc()
			continue
		}
		break
	}
	m.finish(meta, h, func() error {
		return m.store.WriteFlowResult(context.Background(), meta.ID, rep)
	}, err)
}

// resumeLadder returns the resume attempts for a job, newest checkpoint
// first and a from-scratch nil last.
func (m *Manager) resumeLadder(ctx context.Context, id string) []*xhybrid.Checkpoint {
	resumes := m.store.ReadCheckpoints(ctx, id)
	attempts := make([]*xhybrid.Checkpoint, 0, len(resumes)+1)
	attempts = append(attempts, resumes...)
	return append(attempts, nil)
}

// checkpointSink returns the engine sink that spools each checkpoint and
// advances the handle's durable progress counters.
func (m *Manager) checkpointSink(ctx context.Context, id string, h *jobHandle) func(*xhybrid.Checkpoint) error {
	return func(c *xhybrid.Checkpoint) error {
		if err := m.store.WriteCheckpoint(ctx, id, c); err != nil {
			return err
		}
		h.rounds.Store(int64(len(c.Rounds)))
		h.checkpoints.Add(1)
		m.cpWritten.Inc()
		return nil
	}
}

// finish writes the job's terminal state — or, when the whole manager is
// shutting down, leaves the spooled "running" record alone so the next
// Open resumes the job. persist spools the kind-specific result (only
// called when the job succeeded). Terminal writes use a background
// context: the job's own context is typically already dead here.
func (m *Manager) finish(meta Meta, h *jobHandle, persist func() error, err error) {
	defer m.release(meta.ID)
	meta.Rounds = int(h.rounds.Load())
	switch {
	case err == nil:
		if werr := persist(); werr != nil {
			err = werr
			break
		}
		meta.State = StateDone
		meta.Finished = time.Now().UTC()
		// Count before the meta write: a watcher that polls the state to
		// "done" must already see the counter.
		m.completed.Inc()
		_ = m.store.WriteMeta(context.Background(), meta)
		return
	case m.baseCtx.Err() != nil && !h.userCanceled.Load():
		m.finishInterrupted(meta, h)
		return
	}
	meta.State = StateFailed
	meta.Finished = time.Now().UTC()
	if h.userCanceled.Load() {
		meta.Error = "job canceled"
		m.canceled.Inc()
	} else {
		meta.Error = err.Error()
		m.failed.Inc()
	}
	_ = m.store.WriteMeta(context.Background(), meta)
}

// finishInterrupted handles manager shutdown: the spooled state stays
// submitted/running so the next Open recovers the job from its last
// checkpoint.
func (m *Manager) finishInterrupted(meta Meta, h *jobHandle) {
	if h.userCanceled.Load() {
		meta.State = StateFailed
		meta.Error = "job canceled"
		meta.Finished = time.Now().UTC()
		meta.Rounds = int(h.rounds.Load())
		_ = m.store.WriteMeta(context.Background(), meta)
		m.canceled.Inc()
	} else {
		m.interrupted.Inc()
	}
	m.release(meta.ID)
}

func (m *Manager) release(id string) {
	m.mu.Lock()
	delete(m.active, id)
	m.mu.Unlock()
}

func (m *Manager) handle(id string) *jobHandle {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active[id]
}

// Get returns the job's status: spooled metadata overlaid with live
// progress when the job is running in this process.
func (m *Manager) Get(ctx context.Context, id string) (Status, error) {
	meta, err := m.store.ReadMeta(ctx, id)
	if err != nil {
		return Status{}, err
	}
	st := Status{Meta: meta, Progress: Progress{Rounds: int64(meta.Rounds)}}
	if h := m.handle(id); h != nil {
		snap := h.rec.Snapshot()
		st.Progress.Stage = h.currentStage()
		st.Progress.Rounds = h.rounds.Load()
		st.Progress.LiveRounds = snap.CounterValue("core.rounds")
		st.Progress.LiveAccepted = snap.CounterValue("core.rounds.accepted")
		st.Progress.Checkpoints = h.checkpoints.Load()
	}
	return st, nil
}

// List returns every spooled job's status.
func (m *Manager) List(ctx context.Context) ([]Status, error) {
	metas, err := m.store.List(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]Status, 0, len(metas))
	for _, meta := range metas {
		st, err := m.Get(ctx, meta.ID)
		if err != nil {
			continue
		}
		out = append(out, st)
	}
	return out, nil
}

// Result returns a partition job's finished plan, or ErrNotDone with the
// job's current state while it is still in flight (and the failure cause
// for failed jobs). Flow jobs answer through FlowResult.
func (m *Manager) Result(ctx context.Context, id string) (*xhybrid.Plan, error) {
	if _, err := m.resultMeta(ctx, id, KindPartition); err != nil {
		return nil, err
	}
	return m.store.ReadResult(ctx, id)
}

// FlowResult returns a flow job's finished report (the KindFlow analogue
// of Result).
func (m *Manager) FlowResult(ctx context.Context, id string) (*xhybrid.FlowReport, error) {
	if _, err := m.resultMeta(ctx, id, KindFlow); err != nil {
		return nil, err
	}
	return m.store.ReadFlowResult(ctx, id)
}

// resultMeta loads the job record and checks it is done and of the wanted
// kind.
func (m *Manager) resultMeta(ctx context.Context, id, kind string) (Meta, error) {
	meta, err := m.store.ReadMeta(ctx, id)
	if err != nil {
		return meta, err
	}
	if meta.Kind != kind {
		return meta, fmt.Errorf("%w: job kind %q", ErrNotDone, meta.Kind)
	}
	switch meta.State {
	case StateDone:
		return meta, nil
	case StateFailed:
		return meta, fmt.Errorf("%w: job failed: %s", ErrNotDone, meta.Error)
	default:
		return meta, fmt.Errorf("%w: job is %s", ErrNotDone, meta.State)
	}
}

// Input returns the job's spooled X-map (the serving layer renders text
// results against it).
func (m *Manager) Input(ctx context.Context, id string) (*xhybrid.XLocations, error) {
	if _, err := m.store.ReadMeta(ctx, id); err != nil {
		return nil, err
	}
	return m.store.ReadInput(ctx, id)
}

// Cancel stops the job. A queued or running job is canceled in-process; a
// job already in a terminal state is left alone (not an error — DELETE is
// idempotent).
func (m *Manager) Cancel(ctx context.Context, id string) error {
	if h := m.handle(id); h != nil {
		h.userCanceled.Store(true)
		h.cancel()
		return nil
	}
	meta, err := m.store.ReadMeta(ctx, id)
	if err != nil {
		return err
	}
	if meta.State.Terminal() {
		return nil
	}
	// Spooled but not active in this process (e.g. the manager is
	// stopping): mark it failed so it is not resumed at the next Open.
	meta.State = StateFailed
	meta.Error = "job canceled"
	meta.Finished = time.Now().UTC()
	m.canceled.Inc()
	return m.store.WriteMeta(ctx, meta)
}

// Depth reports the running and waiting job counts (scrape-time gauges).
func (m *Manager) Depth() (running, waiting int64) {
	return int64(len(m.sem)), m.waiting.Load()
}

// Stop interrupts every queued and running job resumably (spooled state
// stays non-terminal; the next Open recovers it) and waits for the
// goroutines to exit. The manager must not be used afterwards.
func (m *Manager) Stop() {
	m.baseCancel()
	m.wg.Wait()
}

// idSeq feeds the fallback id path so two ids minted in the same
// nanosecond still differ.
var idSeq atomic.Uint64

// newID returns a 16-hex-digit random job id. The fallback (crypto/rand
// failing means a badly broken platform, but ids must still work) mixes the
// clock with the pid and a process-local counter and formats to the same
// fixed 16-hex-char width as the random path — an earlier version emitted
// 17 chars ("t" + %015x) and collided for same-nanosecond submissions
// (TestNewIDWidthAndUniqueness).
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fallbackID()
	}
	return hex.EncodeToString(b[:])
}

// fallbackID mints ids without entropy: low clock bits, a pid byte, a
// 16-bit counter. Split out of newID so the width and same-nanosecond
// uniqueness invariants are testable without breaking crypto/rand.
func fallbackID() string {
	v := uint64(time.Now().UnixNano())<<24 |
		uint64(os.Getpid()&0xff)<<16 |
		(idSeq.Add(1) & 0xffff)
	return fmt.Sprintf("%016x", v)
}
