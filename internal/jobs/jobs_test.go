package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xhybrid"
	"xhybrid/internal/obs"
)

// testInput builds a deterministic pseudo-random X-map big enough for a
// multi-round greedy run (so checkpoints actually accumulate).
func testInput(t *testing.T) *xhybrid.XLocations {
	t.Helper()
	x, err := xhybrid.NewXLocations(8, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(0x2545f4914f6cdd1d)
	for p := 0; p < 64; p++ {
		for c := 0; c < 8; c++ {
			for pos := 0; pos < 4; pos++ {
				s = s*6364136223846793005 + 1442695040888963407
				if (s>>33)%10 < 3 {
					if err := x.AddX(p, c, pos); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	return x
}

func testOptions() Options {
	return Options{MISRSize: 16, Q: 4, Strategy: "greedy", Seed: 3, CheckpointEvery: 1}
}

// referencePlan runs the same normalized options synchronously — the
// byte-identical yardstick every async/resumed run is held to.
func referencePlan(t *testing.T, x *xhybrid.XLocations, opts Options) (*xhybrid.Plan, []byte, []byte) {
	t.Helper()
	norm, err := opts.Normalized(8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := xhybrid.PartitionCtx(context.Background(), x, norm.xhybrid())
	if err != nil {
		t.Fatal(err)
	}
	return plan, planJSON(t, plan), planText(t, plan, x)
}

func planJSON(t *testing.T, plan *xhybrid.Plan) []byte {
	t.Helper()
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func planText(t *testing.T, plan *xhybrid.Plan, x *xhybrid.XLocations) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := plan.WriteText(&buf, x, true); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	var st Status
	waitFor(t, "job "+id+" to finish", func() bool {
		var err error
		st, err = m.Get(context.Background(), id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		return st.State.Terminal()
	})
	return st
}

// hookFS wraps an FS with before-read/before-write hooks keyed on the
// file's base name — the blocking gates the lifecycle tests use.
type hookFS struct {
	FS
	mu          sync.Mutex
	beforeRead  func(name string)
	beforeWrite func(name string)
}

func (h *hookFS) hooks() (r, w func(string)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.beforeRead, h.beforeWrite
}

func (h *hookFS) ReadFile(name string) ([]byte, error) {
	if r, _ := h.hooks(); r != nil {
		r(name)
	}
	return h.FS.ReadFile(name)
}

func (h *hookFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if _, w := h.hooks(); w != nil {
		w(name)
	}
	return h.FS.WriteFile(name, data, perm)
}

// gatedInputFS blocks every input.json read until the gate closes.
func gatedInputFS(gate <-chan struct{}) *hookFS {
	return &hookFS{FS: OSFS{}, beforeRead: func(name string) {
		if filepath.Base(name) == inputFile {
			<-gate
		}
	}}
}

func TestJobLifecycle(t *testing.T) {
	rec := obs.New()
	m, err := Open(t.TempDir(), Config{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	x := testInput(t)
	_, wantJSON, wantText := referencePlan(t, x, testOptions())

	meta, err := m.Submit(context.Background(), x, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if meta.State != StateSubmitted || meta.ID == "" || meta.Created.IsZero() {
		t.Fatalf("unexpected submit meta: %+v", meta)
	}
	st := waitTerminal(t, m, meta.ID)
	if st.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", st.State, st.Error)
	}
	if st.Finished.IsZero() || st.Started.IsZero() {
		t.Fatalf("done job missing timestamps: %+v", st.Meta)
	}
	if st.Rounds == 0 {
		t.Fatalf("done job recorded 0 checkpointed rounds; expected a multi-round run")
	}

	plan, err := m.Result(context.Background(), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := planJSON(t, plan); !bytes.Equal(got, wantJSON) {
		t.Errorf("async result JSON differs from synchronous run")
	}
	in, err := m.Input(context.Background(), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := planText(t, plan, in); !bytes.Equal(got, wantText) {
		t.Errorf("async result text rendering differs from synchronous run")
	}

	list, err := m.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != meta.ID {
		t.Fatalf("List = %+v, want the one job", list)
	}

	snap := rec.Snapshot()
	if got := snap.CounterValue("jobs.submitted"); got != 1 {
		t.Errorf("jobs.submitted = %d, want 1", got)
	}
	if got := snap.CounterValue("jobs.completed"); got != 1 {
		t.Errorf("jobs.completed = %d, want 1", got)
	}
	if got := snap.CounterValue("jobs.checkpoints.written"); got < 2 {
		t.Errorf("jobs.checkpoints.written = %d, want >= 2 (checkpointEvery=1 on a multi-round run)", got)
	}
}

func TestJobNotFoundAndNotDone(t *testing.T) {
	m, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	if _, err := m.Get(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := m.Result(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Result(unknown) = %v, want ErrNotFound", err)
	}
	if err := m.Cancel(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel(unknown) = %v, want ErrNotFound", err)
	}

	// A job failed by bad engine options reports ErrNotDone with the cause.
	bad := Options{MISRSize: 16, Q: 40, Strategy: "greedy"} // q too large
	meta, err := m.Submit(context.Background(), xhybrid.PaperExample(), bad)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, meta.ID)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("state = %s (error %q), want failed with a cause", st.State, st.Error)
	}
	if _, err := m.Result(context.Background(), meta.ID); !errors.Is(err, ErrNotDone) {
		t.Errorf("Result(failed) = %v, want ErrNotDone", err)
	}
}

func TestSubmitRejectsUnknownStrategy(t *testing.T) {
	m, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if _, err := m.Submit(context.Background(), xhybrid.PaperExample(), Options{Strategy: "divine"}); err == nil {
		t.Fatal("Submit with unknown strategy succeeded, want error")
	}
}

func TestQueueFull(t *testing.T) {
	gate := make(chan struct{})
	m, err := Open(t.TempDir(), Config{MaxConcurrent: 1, MaxQueue: 1, FS: gatedInputFS(gate)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	x := xhybrid.PaperExample()
	opts := Options{MISRSize: 16, Q: 2}
	j1, err := m.Submit(context.Background(), x, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until j1 holds the run slot (blocked reading its input) so j2
	// deterministically occupies the one queue seat.
	waitFor(t, "job 1 to take the run slot", func() bool {
		running, _ := m.Depth()
		return running == 1
	})
	j2, err := m.Submit(context.Background(), x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), x, opts); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}

	close(gate)
	for _, id := range []string{j1.ID, j2.ID} {
		if st := waitTerminal(t, m, id); st.State != StateDone {
			t.Errorf("job %s = %s (error %q), want done", id, st.State, st.Error)
		}
	}
}

func TestCancel(t *testing.T) {
	gate := make(chan struct{})
	rec := obs.New()
	m, err := Open(t.TempDir(), Config{FS: gatedInputFS(gate), Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	meta, err := m.Submit(context.Background(), testInput(t), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to start", func() bool {
		st, err := m.Get(context.Background(), meta.ID)
		return err == nil && st.State == StateRunning
	})
	if err := m.Cancel(context.Background(), meta.ID); err != nil {
		t.Fatal(err)
	}
	close(gate)

	st := waitTerminal(t, m, meta.ID)
	if st.State != StateFailed || st.Error != "job canceled" {
		t.Fatalf("state = %s (error %q), want failed/job canceled", st.State, st.Error)
	}
	if _, err := m.Result(context.Background(), meta.ID); !errors.Is(err, ErrNotDone) {
		t.Errorf("Result(canceled) = %v, want ErrNotDone", err)
	}
	// Cancel is idempotent on terminal jobs.
	if err := m.Cancel(context.Background(), meta.ID); err != nil {
		t.Errorf("second Cancel = %v, want nil", err)
	}
	if got := rec.Snapshot().CounterValue("jobs.canceled"); got != 1 {
		t.Errorf("jobs.canceled = %d, want 1", got)
	}
}

// TestStopInterruptsResumably is the in-process crash drill: the manager
// is stopped right after the first checkpoint lands, the spooled state
// stays "running", and a fresh manager over the same spool resumes the
// job to a plan byte-identical to an uninterrupted run.
func TestStopInterruptsResumably(t *testing.T) {
	dir := t.TempDir()
	x := testInput(t)
	_, wantJSON, wantText := referencePlan(t, x, testOptions())

	// Gate: the first checkpoint temp-file write signals and then blocks,
	// freezing the engine at a known boundary while Stop fires.
	hit := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	fsys := &hookFS{FS: OSFS{}, beforeWrite: func(name string) {
		if filepath.Base(name) == checkpointFile+tmpSuffix {
			once.Do(func() { close(hit) })
			<-gate
		}
	}}

	recA := obs.New()
	mA, err := Open(dir, Config{FS: fsys, Obs: recA})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := mA.Submit(context.Background(), x, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	<-hit
	stopped := make(chan struct{})
	go func() { mA.Stop(); close(stopped) }()
	time.Sleep(20 * time.Millisecond) // let Stop cancel the base context
	close(gate)
	<-stopped

	// The spooled record must still be non-terminal — that is what makes
	// the job recoverable.
	store, err := NewStore(dir, nil, RetryPolicy{}, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := store.ReadMeta(context.Background(), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State.Terminal() {
		t.Fatalf("interrupted job spooled as %s, want a resumable state", onDisk.State)
	}
	if got := recA.Snapshot().CounterValue("jobs.interrupted"); got != 1 {
		t.Errorf("jobs.interrupted = %d, want 1", got)
	}

	// Second manager: recovery must finish the job with the exact plan.
	recB := obs.New()
	mB, err := Open(dir, Config{Obs: recB})
	if err != nil {
		t.Fatal(err)
	}
	defer mB.Stop()
	st := waitTerminal(t, mB, meta.ID)
	if st.State != StateDone {
		t.Fatalf("recovered job = %s (error %q), want done", st.State, st.Error)
	}
	if st.Resumes != 1 {
		t.Errorf("Resumes = %d, want 1", st.Resumes)
	}
	plan, err := mB.Result(context.Background(), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(planJSON(t, plan), wantJSON) {
		t.Errorf("resumed plan JSON differs from uninterrupted run")
	}
	if !bytes.Equal(planText(t, plan, x), wantText) {
		t.Errorf("resumed plan text differs from uninterrupted run")
	}
	snap := recB.Snapshot()
	if got := snap.CounterValue("jobs.recovered"); got != 1 {
		t.Errorf("jobs.recovered = %d, want 1", got)
	}
	if got := snap.CounterValue("jobs.completed"); got != 1 {
		t.Errorf("jobs.completed = %d, want 1", got)
	}
}

func TestOptionsNormalize(t *testing.T) {
	norm, err := Options{}.Normalized(8)
	if err != nil {
		t.Fatal(err)
	}
	want := Options{MISRSize: 32, Q: 7, Strategy: "paper", CheckpointEvery: 8}
	if norm != want {
		t.Errorf("normalize(zero) = %+v, want %+v", norm, want)
	}
	norm, err = Options{MISRSize: 16, Q: 3, Strategy: "greedy", CheckpointEvery: 2}.Normalized(8)
	if err != nil {
		t.Fatal(err)
	}
	if norm.CheckpointEvery != 2 || norm.MISRSize != 16 {
		t.Errorf("normalize kept values wrong: %+v", norm)
	}
	if _, err := (Options{Strategy: "nope"}).Normalized(8); err == nil {
		t.Error("normalize accepted unknown strategy")
	}
	// Legacy alias canonicalizes at the spool boundary: records never carry
	// the "greedy" spelling again.
	norm, err = Options{Strategy: "greedy"}.Normalized(8)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Strategy != "greedy-cost" {
		t.Errorf(`normalize("greedy") strategy = %q, want greedy-cost`, norm.Strategy)
	}
}

// TestOptionsNormalizeRoundTrip pins the spool's defaults to the facade's:
// jobs.Options.Normalized delegates to xhybrid.Options.Normalized, so
// normalizing on either side of the jobs/facade boundary must land on the
// same engine options. Before the delegation the MISRSize=32 / Q=7 defaults
// were hardcoded twice and could drift apart.
func TestOptionsNormalizeRoundTrip(t *testing.T) {
	for _, o := range []Options{
		{},
		{Strategy: "greedy", Seed: 3},
		{MISRSize: 16, Q: 4, Strategy: "paper-retry", MaxRounds: 5, Workers: 2},
		{Q: 1, Strategy: "xcode-hybrid"},
	} {
		norm, err := o.Normalized(8)
		if err != nil {
			t.Fatalf("Normalized(%+v): %v", o, err)
		}
		viaFacade, err := o.xhybrid().Normalized()
		if err != nil {
			t.Fatalf("xhybrid().Normalized() of %+v: %v", o, err)
		}
		got := norm.xhybrid()
		// Compare the comparable wire fields (the func-valued checkpoint
		// hooks are zero on both sides of the spool boundary).
		if got.MISRSize != viaFacade.MISRSize || got.Q != viaFacade.Q ||
			got.Strategy != viaFacade.Strategy || got.Seed != viaFacade.Seed ||
			got.MaxRounds != viaFacade.MaxRounds || got.Workers != viaFacade.Workers {
			t.Errorf("options %+v: jobs-normalized %+v != facade-normalized %+v", o, got, viaFacade)
		}
	}
}
