package jobs

import (
	"io/fs"
	"os"
)

// FS is the filesystem seam of the job spool. The Store performs every
// disk operation through it, so a fault-injecting implementation (see
// internal/chaos) can exercise torn writes, transient failures and slow
// reads without touching the production code paths. OSFS is the real
// thing.
type FS interface {
	ReadFile(name string) ([]byte, error)
	// WriteFile must create or truncate name; the Store only ever calls it
	// on temporary paths that are renamed into place afterwards.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath (POSIX semantics) —
	// the one primitive spool durability leans on.
	Rename(oldpath, newpath string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Remove(name string) error
}

// OSFS is the passthrough FS backed by package os.
type OSFS struct{}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OSFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OSFS) Remove(name string) error                   { return os.Remove(name) }
