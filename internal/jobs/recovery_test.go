package jobs

// Spool recovery under corruption: every test fabricates the on-disk
// aftermath of a crash (a job spooled as "running" with damaged
// checkpoint files) and asserts that a fresh manager still finishes the
// job with a plan byte-identical to an uninterrupted run — falling back
// from the current checkpoint to the previous one to a from-scratch
// restart as the damage deepens.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"xhybrid"
	"xhybrid/internal/obs"
)

// spoolCompletedJob runs a job to completion and then rewrites its spool
// to look crash-interrupted: result removed, state forced back to
// running. The checkpoint pair is left exactly as the run produced it.
func spoolCompletedJob(t *testing.T, dir string) (id string, x *xhybrid.XLocations, wantJSON, wantText []byte) {
	t.Helper()
	x = testInput(t)
	_, wantJSON, wantText = referencePlan(t, x, testOptions())

	m, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := m.Submit(context.Background(), x, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, meta.ID); st.State != StateDone {
		t.Fatalf("setup job = %s (error %q), want done", st.State, st.Error)
	}
	m.Stop()

	// Both checkpoint slots must exist for the fallback tests to mean
	// anything (checkpointEvery=1 on a multi-round run guarantees it).
	for _, f := range []string{checkpointFile, checkpointPrevFile} {
		if _, err := os.Stat(filepath.Join(dir, meta.ID, f)); err != nil {
			t.Fatalf("setup did not leave %s: %v", f, err)
		}
	}

	if err := os.Remove(filepath.Join(dir, meta.ID, resultFile)); err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(dir, nil, RetryPolicy{}, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := store.ReadMeta(context.Background(), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	onDisk.State = StateRunning
	if err := store.WriteMeta(context.Background(), onDisk); err != nil {
		t.Fatal(err)
	}
	return meta.ID, x, wantJSON, wantText
}

// recoverAndCheck opens a manager over the damaged spool and asserts the
// job finishes with the exact reference plan.
func recoverAndCheck(t *testing.T, dir, id string, x *xhybrid.XLocations, wantJSON, wantText []byte) *obs.Recorder {
	t.Helper()
	rec := obs.New()
	m, err := Open(dir, Config{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if st := waitTerminal(t, m, id); st.State != StateDone {
		t.Fatalf("recovered job = %s (error %q), want done", st.State, st.Error)
	}
	plan, err := m.Result(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(planJSON(t, plan), wantJSON) {
		t.Errorf("recovered plan JSON differs from uninterrupted run")
	}
	if !bytes.Equal(planText(t, plan, x), wantText) {
		t.Errorf("recovered plan text differs from uninterrupted run")
	}
	if got := rec.Snapshot().CounterValue("jobs.recovered"); got != 1 {
		t.Errorf("jobs.recovered = %d, want 1", got)
	}
	return rec
}

// TestRecoverIntactCheckpoint: the clean crash — both checkpoints whole.
func TestRecoverIntactCheckpoint(t *testing.T) {
	dir := t.TempDir()
	id, x, wantJSON, wantText := spoolCompletedJob(t, dir)
	recoverAndCheck(t, dir, id, x, wantJSON, wantText)
}

// TestRecoverTruncatedCheckpoint: the current checkpoint is torn in half
// (a crash mid-write on a filesystem without atomic rename, or disk
// corruption); recovery must detect it at decode time and resume from the
// previous checkpoint.
func TestRecoverTruncatedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	id, x, wantJSON, wantText := spoolCompletedJob(t, dir)

	cur := filepath.Join(dir, id, checkpointFile)
	data, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	recoverAndCheck(t, dir, id, x, wantJSON, wantText)
}

// TestRecoverTamperedCheckpoint: the current checkpoint decodes fine but
// its recorded state is wrong (bit rot that kept JSON valid). The engine
// rejects it during replay verification and recovery falls back to the
// previous checkpoint.
func TestRecoverTamperedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	id, x, wantJSON, wantText := spoolCompletedJob(t, dir)

	cur := filepath.Join(dir, id, checkpointFile)
	data, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["stateDigest"] = json.RawMessage("12345")
	tampered, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := recoverAndCheck(t, dir, id, x, wantJSON, wantText)
	if got := rec.Snapshot().CounterValue("jobs.checkpoints.rejected"); got != 1 {
		t.Errorf("jobs.checkpoints.rejected = %d, want 1 (tampered current checkpoint)", got)
	}
}

// TestRecoverAllCheckpointsCorrupt: both slots are garbage; recovery
// restarts from scratch and — the engine being deterministic — still
// lands on the byte-identical plan.
func TestRecoverAllCheckpointsCorrupt(t *testing.T) {
	dir := t.TempDir()
	id, x, wantJSON, wantText := spoolCompletedJob(t, dir)

	for _, f := range []string{checkpointFile, checkpointPrevFile} {
		if err := os.WriteFile(filepath.Join(dir, id, f), []byte("not json{"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	recoverAndCheck(t, dir, id, x, wantJSON, wantText)
}

// TestListSkipsHalfCreatedJob: a job directory with no job.json (crash
// between MkdirAll and the first meta write) must not break recovery or
// listing.
func TestListSkipsHalfCreatedJob(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "torn-job"), 0o755); err != nil {
		t.Fatal(err)
	}
	m, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	list, err := m.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("List = %+v, want empty", list)
	}
	if _, err := m.Get(context.Background(), "torn-job"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(torn-job) = %v, want ErrNotFound", err)
	}
}
