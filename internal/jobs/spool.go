package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"xhybrid"
	"xhybrid/internal/obs"
)

// Spool file names inside one job directory. Every mutation lands via
// write-to-temp + atomic rename, so a crash at any instant leaves either
// the old file or the new one — never a half-written current file. The
// only torn artifacts a crash can leave are *.tmp files, which readers
// never open.
const (
	metaFile       = "job.json"
	inputFile      = "input.json"
	checkpointFile = "checkpoint.json"
	// checkpointPrevFile keeps the previous checkpoint: WriteCheckpoint
	// rotates current→prev before renaming the new file in, so even a
	// crash between those two renames (or a corrupted current file) leaves
	// one good checkpoint to resume from.
	checkpointPrevFile = "checkpoint.prev.json"
	resultFile         = "result.json"
	tmpSuffix          = ".tmp"
)

// Meta is the durable record of one job (spooled as job.json).
type Meta struct {
	ID string `json:"id"`
	// Kind discriminates the job type: "" (KindPartition) runs the plain
	// partitioner over a spooled X-map; KindFlow runs the full circuit
	// pipeline over a spooled FlowSpec. The spool layout is identical —
	// input.json and result.json just hold kind-specific payloads.
	Kind    string  `json:"kind,omitempty"`
	State   State   `json:"state"`
	Options Options `json:"options"`

	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`

	// Error holds the failure cause for StateFailed.
	Error string `json:"error,omitempty"`
	// Rounds is the attempt-trace length at the last checkpoint — coarse
	// durable progress (live progress comes from the manager's per-job
	// recorder).
	Rounds int `json:"rounds,omitempty"`
	// Resumes counts how many times the job was restarted from the spool.
	Resumes int `json:"resumes,omitempty"`
	// Tenant records which tenant submitted the job (empty for the
	// anonymous tenant of an open server). Attribution only — admission is
	// enforced at submit time by the serving layer.
	Tenant string `json:"tenant,omitempty"`
}

// Store is the crash-durable job spool: one directory per job holding the
// input X-map, the normalized options and state (job.json), the rotating
// checkpoint pair and, eventually, the result. Every write goes through
// the retry policy — transient I/O errors back off and try again — and
// every visible file is complete, courtesy of atomic renames.
type Store struct {
	dir     string
	fs      FS
	policy  RetryPolicy
	retries *obs.Counter
}

// NewStore opens (creating if needed) a spool rooted at dir. fsys nil means
// the real filesystem.
func NewStore(dir string, fsys FS, policy RetryPolicy, rec *obs.Recorder) (*Store, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	s := &Store{dir: dir, fs: fsys, policy: policy, retries: rec.Counter("jobs.spool.retries")}
	if err := s.retry(context.Background(), func() error { return s.fs.MkdirAll(dir, 0o755) }); err != nil {
		return nil, fmt.Errorf("jobs: spool dir: %w", err)
	}
	return s, nil
}

// Dir returns the spool root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(id, file string) string { return filepath.Join(s.dir, id, file) }

func (s *Store) retry(ctx context.Context, op func() error) error {
	return s.policy.retry(ctx, op, func(error) { s.retries.Inc() })
}

// writeAtomic writes data to path via temp file + rename, retrying
// transient failures as one unit.
func (s *Store) writeAtomic(ctx context.Context, path string, data []byte) error {
	tmp := path + tmpSuffix
	return s.retry(ctx, func() error {
		if err := s.fs.WriteFile(tmp, data, 0o644); err != nil {
			return err
		}
		return s.fs.Rename(tmp, path)
	})
}

// CreateJob spools a fresh job: its directory, input X-map and metadata.
func (s *Store) CreateJob(ctx context.Context, meta Meta, x *xhybrid.XLocations) error {
	if err := s.retry(ctx, func() error { return s.fs.MkdirAll(filepath.Join(s.dir, meta.ID), 0o755) }); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := x.WriteJSON(&buf); err != nil {
		return err
	}
	if err := s.writeAtomic(ctx, s.path(meta.ID, inputFile), buf.Bytes()); err != nil {
		return err
	}
	return s.WriteMeta(ctx, meta)
}

// WriteMeta persists the job record.
func (s *Store) WriteMeta(ctx context.Context, meta Meta) error {
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return s.writeAtomic(ctx, s.path(meta.ID, metaFile), data)
}

// ReadMeta loads the job record.
func (s *Store) ReadMeta(ctx context.Context, id string) (Meta, error) {
	var meta Meta
	err := s.retry(ctx, func() error {
		data, err := s.fs.ReadFile(s.path(id, metaFile))
		if err != nil {
			return err
		}
		return json.Unmarshal(data, &meta)
	})
	if errors.Is(err, fs.ErrNotExist) {
		return meta, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return meta, err
}

// ReadInput loads the job's X-map.
func (s *Store) ReadInput(ctx context.Context, id string) (*xhybrid.XLocations, error) {
	var x *xhybrid.XLocations
	err := s.retry(ctx, func() error {
		data, err := s.fs.ReadFile(s.path(id, inputFile))
		if err != nil {
			return err
		}
		x, err = xhybrid.ReadXLocations(bytes.NewReader(data))
		return err
	})
	return x, err
}

// CreateFlowJob spools a fresh flow job: its directory, the flow spec (as
// input.json) and metadata.
func (s *Store) CreateFlowJob(ctx context.Context, meta Meta, spec *xhybrid.FlowSpec) error {
	if err := s.retry(ctx, func() error { return s.fs.MkdirAll(filepath.Join(s.dir, meta.ID), 0o755) }); err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	if err := s.writeAtomic(ctx, s.path(meta.ID, inputFile), data); err != nil {
		return err
	}
	return s.WriteMeta(ctx, meta)
}

// ReadFlowSpec loads a flow job's spooled spec.
func (s *Store) ReadFlowSpec(ctx context.Context, id string) (*xhybrid.FlowSpec, error) {
	spec := new(xhybrid.FlowSpec)
	err := s.retry(ctx, func() error {
		data, err := s.fs.ReadFile(s.path(id, inputFile))
		if err != nil {
			return err
		}
		return json.Unmarshal(data, spec)
	})
	if err != nil {
		return nil, err
	}
	return spec, nil
}

// WriteFlowResult persists a finished flow report.
func (s *Store) WriteFlowResult(ctx context.Context, id string, rep *xhybrid.FlowReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return s.writeAtomic(ctx, s.path(id, resultFile), data)
}

// ReadFlowResult loads a finished flow report.
func (s *Store) ReadFlowResult(ctx context.Context, id string) (*xhybrid.FlowReport, error) {
	rep := new(xhybrid.FlowReport)
	err := s.retry(ctx, func() error {
		data, err := s.fs.ReadFile(s.path(id, resultFile))
		if err != nil {
			return err
		}
		return json.Unmarshal(data, rep)
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteCheckpoint rotates the current checkpoint to the .prev slot and
// atomically installs cp as the new current one. The rotation order means
// a crash at any point leaves at least one complete checkpoint on disk.
func (s *Store) WriteCheckpoint(ctx context.Context, id string, cp *xhybrid.Checkpoint) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	cur, prev := s.path(id, checkpointFile), s.path(id, checkpointPrevFile)
	if err := s.retry(ctx, func() error {
		err := s.fs.Rename(cur, prev)
		if errors.Is(err, fs.ErrNotExist) {
			return nil // first checkpoint: nothing to rotate
		}
		return err
	}); err != nil {
		return err
	}
	return s.writeAtomic(ctx, cur, data)
}

// ReadCheckpoints returns the resumable checkpoints newest-first: the
// current one, then the rotated previous one. Unreadable or undecodable
// files (truncated by a torn write, corrupted on disk) are skipped, not
// fatal — recovery falls back down this list and, when it is empty,
// restarts from scratch.
func (s *Store) ReadCheckpoints(ctx context.Context, id string) []*xhybrid.Checkpoint {
	var out []*xhybrid.Checkpoint
	for _, file := range []string{checkpointFile, checkpointPrevFile} {
		var data []byte
		err := s.retry(ctx, func() error {
			var rerr error
			data, rerr = s.fs.ReadFile(s.path(id, file))
			return rerr
		})
		if err != nil {
			continue
		}
		cp := new(xhybrid.Checkpoint)
		if err := json.Unmarshal(data, cp); err != nil {
			continue // torn or corrupted: fall back to the next candidate
		}
		out = append(out, cp)
	}
	return out
}

// WriteResult persists the finished plan.
func (s *Store) WriteResult(ctx context.Context, id string, plan *xhybrid.Plan) error {
	data, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		return err
	}
	return s.writeAtomic(ctx, s.path(id, resultFile), data)
}

// ReadResult loads the finished plan.
func (s *Store) ReadResult(ctx context.Context, id string) (*xhybrid.Plan, error) {
	plan := new(xhybrid.Plan)
	err := s.retry(ctx, func() error {
		data, err := s.fs.ReadFile(s.path(id, resultFile))
		if err != nil {
			return err
		}
		return json.Unmarshal(data, plan)
	})
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// List returns every job record in the spool, skipping entries whose
// metadata is unreadable (a job directory mid-creation at crash time).
func (s *Store) List(ctx context.Context) ([]Meta, error) {
	var entries []fs.DirEntry
	err := s.retry(ctx, func() error {
		var rerr error
		entries, rerr = s.fs.ReadDir(s.dir)
		return rerr
	})
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out []Meta
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		meta, err := s.ReadMeta(ctx, e.Name())
		if err != nil {
			continue
		}
		out = append(out, meta)
	}
	return out, nil
}
