package jobs

import (
	"testing"
)

// TestNewIDWidthAndUniqueness pins the job-id contract on both paths: the
// documented width is exactly 16 lowercase hex digits, and ids never
// repeat. The fallback path (crypto/rand dead) used to violate both — it
// emitted 17 chars ("t" + %015x of the nanosecond clock) and collided
// whenever two submissions landed in the same nanosecond, which a tight
// submit loop on a coarse-clock platform does reliably.
func TestNewIDWidthAndUniqueness(t *testing.T) {
	isHex16 := func(id string) bool {
		if len(id) != 16 {
			return false
		}
		for _, c := range id {
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				return false
			}
		}
		return true
	}

	seen := make(map[string]bool)
	for i := 0; i < 4096; i++ {
		id := newID()
		if !isHex16(id) {
			t.Fatalf("newID() = %q, want 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("newID() repeated %q", id)
		}
		seen[id] = true
	}

	// The fallback must honor the same contract even when every call lands
	// in the same nanosecond (the counter, not the clock, provides the
	// uniqueness). 4096 stays well under the 16-bit counter wrap.
	seen = make(map[string]bool)
	for i := 0; i < 4096; i++ {
		id := fallbackID()
		if !isHex16(id) {
			t.Fatalf("fallbackID() = %q, want 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("fallbackID() repeated %q", id)
		}
		seen[id] = true
	}
}
