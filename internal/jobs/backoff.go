package jobs

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy bounds the retry-with-exponential-backoff-and-jitter loop the
// Store wraps around every spool I/O operation. Spool writes hit the same
// failure modes any disk path does — NFS hiccups, ENOSPC races with log
// rotation, container volume remounts — and a job that has been computing
// for minutes must not die to one transient EIO.
type RetryPolicy struct {
	// Attempts is the total number of tries (default 5; 1 disables
	// retrying).
	Attempts int
	// Base is the first backoff delay (default 10ms); each retry doubles
	// it up to Max (default 1s).
	Base time.Duration
	Max  time.Duration
	// Jitter is the fraction of each delay drawn uniformly at random and
	// added on top (default 0.5), decorrelating retry storms across jobs.
	Jitter float64

	// sleep and rng are test seams; nil means real time and a shared
	// process-wide source.
	sleep func(time.Duration)
	rng   func() float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	if p.Base <= 0 {
		p.Base = 10 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = time.Second
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.sleep == nil {
		p.sleep = func(d time.Duration) { time.Sleep(d) }
	}
	if p.rng == nil {
		p.rng = jitterFloat
	}
	return p
}

// jitterRng is the process-wide jitter source (math/rand's global source is
// fine here — jitter needs decorrelation, not reproducibility).
var (
	jitterMu  sync.Mutex
	jitterSrc = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func jitterFloat() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterSrc.Float64()
}

// permanent marks errors no retry can fix: a missing file stays missing,
// and a canceled context must stop the loop immediately.
func permanent(err error) bool {
	return errors.Is(err, fs.ErrNotExist) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// retry runs op under the policy: transient errors back off exponentially
// (with jitter) and try again, permanent ones and exhausted budgets return
// the last error. onRetry (may be nil) observes each scheduled retry.
func (p RetryPolicy) retry(ctx context.Context, op func() error, onRetry func(err error)) error {
	p = p.withDefaults()
	delay := p.Base
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil || permanent(err) {
			return err
		}
		if attempt >= p.Attempts {
			return fmt.Errorf("jobs: %d attempts exhausted: %w", p.Attempts, err)
		}
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		if onRetry != nil {
			onRetry(err)
		}
		d := delay + time.Duration(p.rng()*p.Jitter*float64(delay))
		p.sleep(d)
		if delay *= 2; delay > p.Max {
			delay = p.Max
		}
	}
}
