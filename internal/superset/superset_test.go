package superset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

func cfg() Config {
	return Config{MISRSize: 32, Q: 7, MinJaccard: 0.5}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{MISRSize: 1, Q: 1},
		{MISRSize: 8, Q: 0},
		{MISRSize: 8, Q: 8},
		{MISRSize: 8, Q: 2, MinJaccard: 2},
		{MISRSize: 8, Q: 2, MaxLossPerPattern: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, c)
		}
	}
	if _, err := Run(xmap.New(1, 1), Config{}); err == nil {
		t.Fatal("Run accepted zero config")
	}
}

func TestIdenticalSignaturesShareOneGroup(t *testing.T) {
	// 6 patterns with identical X signatures must collapse into one group
	// with zero loss and 1/6 the control bits.
	m := xmap.New(6, 100)
	for p := 0; p < 6; p++ {
		for _, c := range []int{3, 17, 42, 77} {
			m.Add(p, c)
		}
	}
	res, err := Run(m, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(res.Groups))
	}
	if res.LostObservable != 0 {
		t.Fatalf("lost = %d, want 0 for identical signatures", res.LostObservable)
	}
	want := xcancel.ControlBits(4, 32, 7)
	if res.ControlBits != want {
		t.Fatalf("ControlBits = %d, want %d", res.ControlBits, want)
	}
	if res.PerPatternBits != xcancel.ControlBits(24, 32, 7) {
		t.Fatalf("PerPatternBits = %d", res.PerPatternBits)
	}
}

func TestDisjointSignaturesStaySeparate(t *testing.T) {
	m := xmap.New(2, 100)
	m.Add(0, 1)
	m.Add(0, 2)
	m.Add(1, 50)
	m.Add(1, 51)
	res, err := Run(m, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 for disjoint signatures", len(res.Groups))
	}
	if res.LostObservable != 0 {
		t.Fatal("disjoint groups must lose nothing")
	}
}

func TestPartialOverlapLosesObservability(t *testing.T) {
	// Two patterns sharing 3 of 4 X cells (Jaccard 3/5 >= 0.5): merged,
	// each sacrifices the other's private cell.
	m := xmap.New(2, 100)
	for _, c := range []int{1, 2, 3, 10} {
		m.Add(0, c)
	}
	for _, c := range []int{1, 2, 3, 20} {
		m.Add(1, c)
	}
	res, err := Run(m, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(res.Groups))
	}
	if len(res.Groups[0].Union) != 5 {
		t.Fatalf("union = %v", res.Groups[0].Union)
	}
	if res.LostObservable != 2 {
		t.Fatalf("lost = %d, want 2", res.LostObservable)
	}
}

func TestMaxLossCapPreventsMerge(t *testing.T) {
	m := xmap.New(2, 100)
	for _, c := range []int{1, 2, 3, 10} {
		m.Add(0, c)
	}
	for _, c := range []int{1, 2, 3, 20} {
		m.Add(1, c)
	}
	c := cfg()
	c.MaxLossPerPattern = 0 // unlimited
	res, _ := Run(m, c)
	if len(res.Groups) != 1 {
		t.Fatal("expected merge with unlimited loss")
	}
	// Note: MaxLossPerPattern 0 means unlimited; 1-cell private sets lose
	// exactly 1, so a cap below... the joining pattern would lose 1 cell
	// at join time; cap it out with a tighter MinJaccard instead.
	c.MinJaccard = 0.9
	res, _ = Run(m, c)
	if len(res.Groups) != 2 {
		t.Fatal("expected no merge at Jaccard 0.9")
	}
}

// Property: reuse never costs more control bits than per-pattern canceling
// would for the same union X volume, and the accounting is internally
// consistent.
func TestAccountingConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		np, nc := 2+r.Intn(12), 10+r.Intn(60)
		m := xmap.New(np, nc)
		for i := 0; i < r.Intn(160); i++ {
			m.Add(r.Intn(np), r.Intn(nc))
		}
		res, err := Run(m, Config{MISRSize: 16, Q: 3, MinJaccard: 0.4})
		if err != nil {
			return false
		}
		// Every pattern in exactly one group.
		seen := make(map[int]bool)
		lost := 0
		for _, g := range res.Groups {
			for _, p := range g.Patterns {
				if seen[p] {
					return false
				}
				seen[p] = true
				lost += len(g.Union) - len(m.PatternCells(p))
			}
		}
		if len(seen) != np || lost != res.LostObservable {
			return false
		}
		return res.LostObservable >= 0 && res.ControlBits >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// On a correlated workload, superset reuse must beat per-pattern canceling
// on control bits (that is its whole point) — at an observability price.
func TestBeatsPerPatternOnCorrelatedWorkload(t *testing.T) {
	prof := workload.Scaled(workload.CKTB(), 20)
	m, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, Config{MISRSize: 32, Q: 7, MinJaccard: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ControlBits >= res.PerPatternBits {
		t.Fatalf("superset %d did not beat per-pattern %d", res.ControlBits, res.PerPatternBits)
	}
	if res.LostObservable == 0 {
		t.Fatal("expected some observability loss on noisy workload")
	}
}
