// Package superset implements a simplified form of superset X-canceling
// [Chung & Touba, VTS'12; Yang & Touba, TCAD'15], the prior control-bit
// reduction technique the paper positions itself against. Instead of
// masking, it reuses one set of X-canceling selection data across a group
// of output responses by computing the controls for the *union* (superset)
// of the group's X locations. Reuse shrinks the control data, but every
// non-X bit that falls inside the group's union is canceled away as if it
// were an X — observability is lost, which is why the original method needs
// iterative fault simulation, and why the paper's partitioning (which never
// gives up an observable bit) is attractive.
//
// The model here captures the accounting essence: greedy grouping of
// patterns by X-signature similarity, per-group control bits priced on the
// union, and an explicit count of the observable captures sacrificed.
package superset

import (
	"fmt"
	"sort"

	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// Config parameterizes the grouping.
type Config struct {
	// MISRSize and Q price the canceling control data.
	MISRSize int
	Q        int
	// MinJaccard is the minimum X-signature similarity (|A∩B| / |A∪B|)
	// for a pattern to join an existing group; below it a new group opens.
	MinJaccard float64
	// MaxLossPerPattern caps the observable bits a member may sacrifice to
	// its group's union (0 = unlimited).
	MaxLossPerPattern int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MISRSize < 2 || c.Q < 1 || c.Q >= c.MISRSize {
		return fmt.Errorf("superset: invalid MISR config m=%d q=%d", c.MISRSize, c.Q)
	}
	if c.MinJaccard < 0 || c.MinJaccard > 1 {
		return fmt.Errorf("superset: MinJaccard %f out of [0,1]", c.MinJaccard)
	}
	if c.MaxLossPerPattern < 0 {
		return fmt.Errorf("superset: negative MaxLossPerPattern")
	}
	return nil
}

// Group is one set of patterns sharing canceling controls.
type Group struct {
	// Patterns are the member pattern indices in join order.
	Patterns []int
	// Union is the sorted union of the members' X cell indices.
	Union []int
	// Lost is the total observable captures sacrificed by members.
	Lost int
}

// Result is the accounting of a superset X-canceling run.
type Result struct {
	Groups []Group
	// ControlBits is the reused canceling volume: per group, the cost of
	// canceling its union once.
	ControlBits int
	// PerPatternBits is the plain X-canceling baseline (controls computed
	// for every pattern separately).
	PerPatternBits int
	// LostObservable is the total observable captures treated as X.
	LostObservable int
}

// Run groups the patterns of an X-map greedily and returns the accounting.
func Run(m *xmap.XMap, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	totalX := m.TotalX()
	res.PerPatternBits = xcancel.ControlBits(totalX, cfg.MISRSize, cfg.Q)

	// Patterns in descending X-count order seed the largest groups first.
	type pat struct {
		id    int
		cells []int
	}
	pats := make([]pat, 0, m.Patterns())
	for p := 0; p < m.Patterns(); p++ {
		pats = append(pats, pat{id: p, cells: m.PatternCells(p)})
	}
	sort.SliceStable(pats, func(i, j int) bool { return len(pats[i].cells) > len(pats[j].cells) })

	var groups []Group
	for _, p := range pats {
		best, bestJac := -1, cfg.MinJaccard
		for gi := range groups {
			inter, union := interUnion(p.cells, groups[gi].Union)
			if union == 0 {
				continue
			}
			jac := float64(inter) / float64(union)
			loss := len(groups[gi].Union) - inter // new member's sacrifice before growth
			if cfg.MaxLossPerPattern > 0 && loss > cfg.MaxLossPerPattern {
				continue
			}
			if jac >= bestJac {
				best, bestJac = gi, jac
			}
		}
		if best < 0 {
			groups = append(groups, Group{Patterns: []int{p.id}, Union: append([]int{}, p.cells...)})
			continue
		}
		groups[best].Union = mergeSorted(groups[best].Union, p.cells)
		groups[best].Patterns = append(groups[best].Patterns, p.id)
	}

	// Price each group on its union and charge the members' sacrifices.
	for gi := range groups {
		g := &groups[gi]
		res.ControlBits += xcancel.ControlBits(len(g.Union), cfg.MISRSize, cfg.Q)
		for _, pid := range g.Patterns {
			g.Lost += len(g.Union) - len(m.PatternCells(pid))
		}
		res.LostObservable += g.Lost
	}
	res.Groups = groups
	return res, nil
}

// interUnion returns |a ∩ b| and |a ∪ b| for sorted slices.
func interUnion(a, b []int) (inter, union int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			union++
			i++
			j++
		case a[i] < b[j]:
			union++
			i++
		default:
			union++
			j++
		}
	}
	union += len(a) - i + len(b) - j
	return inter, union
}

// mergeSorted returns the sorted union of two sorted slices.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
