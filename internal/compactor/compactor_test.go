package compactor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xhybrid/internal/logic"
	"xhybrid/internal/scan"
)

func TestConstructorValidation(t *testing.T) {
	if _, err := NewModulo(0, 1); err == nil {
		t.Fatal("accepted zero chains")
	}
	if _, err := NewModulo(4, 0); err == nil {
		t.Fatal("accepted zero outputs")
	}
	if _, err := NewModulo(4, 8); err == nil {
		t.Fatal("accepted outputs > chains")
	}
	if _, err := NewBlock(8, 0); err == nil {
		t.Fatal("block accepted zero outputs")
	}
}

func TestMustModuloPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustModulo(0, 0)
}

func TestModuloGrouping(t *testing.T) {
	tr := MustModulo(10, 4)
	if tr.Chains() != 10 || tr.Outputs() != 4 {
		t.Fatal("dims wrong")
	}
	for c := 0; c < 10; c++ {
		if tr.Group(c) != c%4 {
			t.Fatalf("Group(%d) = %d", c, tr.Group(c))
		}
	}
}

func TestBlockGroupingCoversAllOutputs(t *testing.T) {
	tr, err := NewBlock(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for c := 0; c < 10; c++ {
		g := tr.Group(c)
		if g < 0 || g >= 4 {
			t.Fatalf("Group(%d) = %d out of range", c, g)
		}
		seen[g] = true
	}
	if len(seen) != 4 {
		t.Fatalf("block tree uses %d of 4 outputs", len(seen))
	}
	// Blocks are contiguous.
	for c := 1; c < 10; c++ {
		if tr.Group(c) < tr.Group(c-1) {
			t.Fatal("block groups not monotone")
		}
	}
}

func TestApplyKnownXor(t *testing.T) {
	tr := MustModulo(4, 2)
	out, err := tr.Apply(logic.MustParseVector("1101"))
	if err != nil {
		t.Fatal(err)
	}
	// output 0 = chains 0,2 -> 1^0 = 1; output 1 = chains 1,3 -> 1^1 = 0.
	want := logic.MustParseVector("10")
	if !out.Equal(want) {
		t.Fatalf("Apply = %v, want %v", out, want)
	}
}

func TestApplyXDominates(t *testing.T) {
	tr := MustModulo(4, 2)
	out, err := tr.Apply(logic.MustParseVector("1x01"))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != logic.One || out[1] != logic.X {
		t.Fatalf("Apply = %v", out)
	}
	if _, err := tr.Apply(logic.MustParseVector("111")); err == nil {
		t.Fatal("accepted wrong width")
	}
}

// Property: with no X's, compaction equals the per-group Boolean XOR for
// any random assignment, and the identity tree is a no-op.
func TestApplyMatchesBooleanXor(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		chains := 1 + r.Intn(24)
		outputs := 1 + r.Intn(chains)
		tr := MustModulo(chains, outputs)
		slice := make(logic.Vector, chains)
		want := make([]int, outputs)
		for c := range slice {
			b := r.Intn(2)
			slice[c] = logic.FromBit(b)
			want[tr.Group(c)] ^= b
		}
		out, err := tr.Apply(slice)
		if err != nil {
			return false
		}
		for g, b := range want {
			if out[g] != logic.FromBit(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityTree(t *testing.T) {
	tr := MustModulo(5, 5)
	in := logic.MustParseVector("10x01")
	out, err := tr.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in) {
		t.Fatalf("identity tree altered slice: %v", out)
	}
}

func TestCompactResponseAndXCount(t *testing.T) {
	g := scan.MustGeometry(4, 3)
	r := scan.NewResponse(g)
	for c := 0; c < 4; c++ {
		for p := 0; p < 3; p++ {
			r.Set(c, p, logic.Zero)
		}
	}
	r.Set(0, 0, logic.X) // cycle 0, output 0
	r.Set(2, 0, logic.X) // cycle 0, output 0 too: folds into ONE X
	r.Set(1, 2, logic.X) // cycle 2, output 1
	tr := MustModulo(4, 2)
	slices, err := tr.CompactResponse(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) != 3 || len(slices[0]) != 2 {
		t.Fatal("slice dims wrong")
	}
	n, err := tr.XCount(r)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("XCount = %d, want 2 (two X's fold into one output)", n)
	}
	// Geometry mismatch errors.
	if _, err := tr.CompactResponse(scan.NewResponse(scan.MustGeometry(3, 3))); err != nil {
		// expected
	} else {
		t.Fatal("accepted mismatched response")
	}
}
