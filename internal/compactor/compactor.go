// Package compactor implements the spatial XOR compaction network that sits
// between many scan chains and the MISR's m inputs (industrial designs have
// hundreds of chains feeding a 32-bit MISR; the paper's architecture diagram
// places the masking AND gates in front of exactly such a compactor).
//
// Each chain feeds exactly one XOR group, so unknowns never become
// correlated across MISR inputs: the XOR of any set containing an unknown
// is a single fresh unknown, which the symbolic X-canceling machinery
// tracks as one symbol.
package compactor

import (
	"fmt"

	"xhybrid/internal/logic"
	"xhybrid/internal/scan"
)

// XORTree maps chains onto a smaller number of outputs by disjoint XOR
// groups.
type XORTree struct {
	// group[c] is the output index chain c feeds.
	group []int
	// outputs is the number of compactor outputs (MISR inputs).
	outputs int
}

// NewModulo builds the canonical interleaved tree: chain c feeds output
// c mod outputs.
func NewModulo(chains, outputs int) (*XORTree, error) {
	if chains < 1 || outputs < 1 {
		return nil, fmt.Errorf("compactor: need positive chains (%d) and outputs (%d)", chains, outputs)
	}
	if outputs > chains {
		return nil, fmt.Errorf("compactor: %d outputs exceed %d chains", outputs, chains)
	}
	t := &XORTree{group: make([]int, chains), outputs: outputs}
	for c := range t.group {
		t.group[c] = c % outputs
	}
	return t, nil
}

// NewBlock builds a blocked tree: contiguous runs of chains share an output.
func NewBlock(chains, outputs int) (*XORTree, error) {
	t, err := NewModulo(chains, outputs)
	if err != nil {
		return nil, err
	}
	per := (chains + outputs - 1) / outputs
	for c := range t.group {
		t.group[c] = c / per
	}
	return t, nil
}

// MustModulo is NewModulo that panics on error.
func MustModulo(chains, outputs int) *XORTree {
	t, err := NewModulo(chains, outputs)
	if err != nil {
		panic(err)
	}
	return t
}

// Chains returns the number of compactor inputs.
func (t *XORTree) Chains() int { return len(t.group) }

// Outputs returns the number of compactor outputs.
func (t *XORTree) Outputs() int { return t.outputs }

// Group returns the output index chain c feeds.
func (t *XORTree) Group(c int) int { return t.group[c] }

// Apply compacts one shift slice (one value per chain) into one value per
// output. An output with any X input is X (the XOR of a set containing an
// unknown is unknown); otherwise it is the XOR of its known inputs.
func (t *XORTree) Apply(slice logic.Vector) (logic.Vector, error) {
	if len(slice) != len(t.group) {
		return nil, fmt.Errorf("compactor: slice width %d, want %d", len(slice), len(t.group))
	}
	out := make(logic.Vector, t.outputs)
	for c, v := range slice {
		out[t.group[c]] = logic.Xor(out[t.group[c]], v)
	}
	return out, nil
}

// CompactResponse compacts a full response into the per-cycle MISR input
// slices (ChainLen slices of width Outputs).
func (t *XORTree) CompactResponse(r scan.Response) ([]logic.Vector, error) {
	if r.Geom.Chains != len(t.group) {
		return nil, fmt.Errorf("compactor: response has %d chains, tree has %d", r.Geom.Chains, len(t.group))
	}
	out := make([]logic.Vector, r.Geom.ChainLen)
	for cyc := 0; cyc < r.Geom.ChainLen; cyc++ {
		v, err := t.Apply(r.Slice(cyc))
		if err != nil {
			return nil, err
		}
		out[cyc] = v
	}
	return out, nil
}

// XCount returns how many X's a response presents to the MISR after
// compaction (several X's folding into one output in one cycle count once).
func (t *XORTree) XCount(r scan.Response) (int, error) {
	slices, err := t.CompactResponse(r)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, s := range slices {
		n += s.CountX()
	}
	return n, nil
}
