package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewVecEmpty(t *testing.T) {
	v := NewVec(0)
	if v.Len() != 0 || !v.IsZero() || v.PopCount() != 0 {
		t.Fatalf("empty vec misbehaves: %+v", v)
	}
}

func TestSetGetClearFlip(t *testing.T) {
	v := NewVec(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
		v.Flip(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Flip", i)
		}
		v.Flip(i)
		if v.Get(i) {
			t.Fatalf("bit %d set after double Flip", i)
		}
	}
}

func TestSetBool(t *testing.T) {
	v := NewVec(10)
	v.SetBool(3, true)
	if !v.Get(3) {
		t.Fatal("SetBool(true) did not set")
	}
	v.SetBool(3, false)
	if v.Get(3) {
		t.Fatal("SetBool(false) did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Get")
		}
	}()
	v := NewVec(5)
	v.Get(5)
}

func TestFromBitsAndIndices(t *testing.T) {
	a := FromBits([]int{1, 0, 0, 1, 1})
	b := FromIndices(5, 0, 3, 4)
	if !a.Equal(b) {
		t.Fatalf("FromBits %v != FromIndices %v", a, b)
	}
	if got := a.Indices(); len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("Indices = %v", got)
	}
}

func TestParseVec(t *testing.T) {
	v := ParseVec("10_1 1")
	if v.Len() != 4 || !v.Get(0) || v.Get(1) || !v.Get(2) || !v.Get(3) {
		t.Fatalf("ParseVec wrong: %v", v)
	}
	if v.String() != "1011" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestXorAndOrAndNot(t *testing.T) {
	a := ParseVec("110010")
	b := ParseVec("011011")
	x := a.Clone()
	x.Xor(b)
	if x.String() != "101001" {
		t.Fatalf("Xor = %v", x)
	}
	x = a.Clone()
	x.And(b)
	if x.String() != "010010" {
		t.Fatalf("And = %v", x)
	}
	x = a.Clone()
	x.Or(b)
	if x.String() != "111011" {
		t.Fatalf("Or = %v", x)
	}
	x = a.Clone()
	x.AndNot(b)
	if x.String() != "100000" {
		t.Fatalf("AndNot = %v", x)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	a := NewVec(3)
	b := NewVec(4)
	a.Xor(b)
}

func TestPopCountAnd(t *testing.T) {
	a := FromIndices(200, 0, 64, 128, 199)
	b := FromIndices(200, 0, 65, 128, 150)
	if got := a.PopCountAnd(b); got != 2 {
		t.Fatalf("PopCountAnd = %d, want 2", got)
	}
}

func TestSetAllAndReset(t *testing.T) {
	v := NewVec(70)
	v.SetAll()
	if v.PopCount() != 70 {
		t.Fatalf("SetAll popcount = %d, want 70", v.PopCount())
	}
	v.Reset()
	if !v.IsZero() {
		t.Fatal("Reset left bits set")
	}
}

func TestNextSet(t *testing.T) {
	v := FromIndices(150, 3, 64, 149)
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 149}, {149, 149}, {150, -1}, {-5, 3},
	}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Fatalf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if NewVec(80).NextSet(0) != -1 {
		t.Fatal("NextSet on zero vector should be -1")
	}
}

func TestForEachOrder(t *testing.T) {
	v := FromIndices(130, 129, 5, 64)
	var got []int
	v.ForEach(func(i int) { got = append(got, i) })
	want := []int{5, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

func TestParityAndDot(t *testing.T) {
	a := ParseVec("1101")
	if a.Parity() != 1 {
		t.Fatalf("Parity = %d", a.Parity())
	}
	b := ParseVec("1011")
	// common set bits at 0 and 3 -> dot = 0
	if a.Dot(b) != 0 {
		t.Fatalf("Dot = %d, want 0", a.Dot(b))
	}
	c := ParseVec("0100")
	if a.Dot(c) != 1 {
		t.Fatalf("Dot = %d, want 1", a.Dot(c))
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(10, 2)
	b := a.Clone()
	b.Set(5)
	if a.Get(5) {
		t.Fatal("Clone shares storage")
	}
	a.CopyFrom(b)
	if !a.Get(5) {
		t.Fatal("CopyFrom did not copy")
	}
}

func randVec(r *rand.Rand, n int) Vec {
	v := NewVec(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

// Property: Xor is an involution and commutative via popcount symmetry.
func TestXorProperties(t *testing.T) {
	f := func(seed int64, ln uint8) bool {
		n := int(ln)%257 + 1
		r := rand.New(rand.NewSource(seed))
		a := randVec(r, n)
		b := randVec(r, n)
		orig := a.Clone()
		a.Xor(b)
		a.Xor(b)
		return a.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: popcount(a^b) = popcount(a) + popcount(b) - 2*popcount(a&b).
func TestPopCountXorIdentity(t *testing.T) {
	f := func(seed int64, ln uint8) bool {
		n := int(ln)%300 + 1
		r := rand.New(rand.NewSource(seed))
		a := randVec(r, n)
		b := randVec(r, n)
		x := a.Clone()
		x.Xor(b)
		return x.PopCount() == a.PopCount()+b.PopCount()-2*a.PopCountAnd(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
