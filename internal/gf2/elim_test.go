package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEliminateTransformIdentity(t *testing.T) {
	// T * A == R must hold for random matrices.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMat(r, 1+r.Intn(15), 1+r.Intn(15))
		e := Eliminate(a)
		return e.T.Mul(a).Equal(e.R)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRankBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(20), 1+r.Intn(20)
		a := randMat(r, rows, cols)
		rk := Rank(a)
		if rk < 0 || rk > rows || rk > cols {
			return false
		}
		// Rank is invariant under transposition.
		return Rank(a.Transpose()) == rk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRankKnownCases(t *testing.T) {
	if got := Rank(Identity(6)); got != 6 {
		t.Fatalf("Rank(I6) = %d", got)
	}
	if got := Rank(NewMat(4, 4)); got != 0 {
		t.Fatalf("Rank(0) = %d", got)
	}
	m := ParseMat("110", "011", "101") // row3 = row1 ^ row2
	if got := Rank(m); got != 2 {
		t.Fatalf("Rank = %d, want 2", got)
	}
}

func TestNullCombinationsKillAllColumns(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 2+r.Intn(15), 1+r.Intn(10)
		a := randMat(r, rows, cols)
		sels := NullCombinations(a)
		if len(sels) != rows-Rank(a) {
			return false
		}
		for _, s := range sels {
			if s.IsZero() {
				return false // must be a nontrivial combination
			}
			if !a.VecMul(s).IsZero() {
				return false // combination must cancel every column
			}
		}
		// Selections must be linearly independent.
		if len(sels) > 0 && Rank(MatFromRows(cloneAll(sels)...)) != len(sels) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func cloneAll(vs []Vec) []Vec {
	out := make([]Vec, len(vs))
	for i, v := range vs {
		out[i] = v.Clone()
	}
	return out
}

func TestSolve(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(12), 1+r.Intn(12)
		a := randMat(r, rows, cols)
		want := randVec(r, cols)
		b := a.MulVec(want)
		x, ok := Solve(a, b)
		if !ok {
			return false // b is in the column space by construction
		}
		return a.MulVec(x).Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveInconsistent(t *testing.T) {
	a := ParseMat("10", "10") // rows identical
	b := ParseVec("10")       // demands different results for identical rows
	if _, ok := Solve(a, b); ok {
		t.Fatal("Solve accepted inconsistent system")
	}
}

func TestNullSpaceBasis(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(12), 1+r.Intn(12)
		a := randMat(r, rows, cols)
		basis := NullSpaceBasis(a)
		if len(basis) != cols-Rank(a) {
			return false
		}
		for _, x := range basis {
			if x.IsZero() || !a.MulVec(x).IsZero() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestInvert(t *testing.T) {
	// Build a random invertible matrix as a product of elementary ops on I.
	r := rand.New(rand.NewSource(42))
	n := 8
	for trial := 0; trial < 20; trial++ {
		a := Identity(n)
		for k := 0; k < 40; k++ {
			i, j := r.Intn(n), r.Intn(n)
			if i != j {
				a.Row(i).Xor(a.Row(j))
			}
		}
		inv, ok := Invert(a)
		if !ok {
			t.Fatal("product of elementary ops reported singular")
		}
		if !inv.Mul(a).Equal(Identity(n)) {
			t.Fatal("inv * a != I")
		}
		if !a.Mul(inv).Equal(Identity(n)) {
			t.Fatal("a * inv != I")
		}
	}
	if _, ok := Invert(NewMat(3, 3)); ok {
		t.Fatal("zero matrix reported invertible")
	}
}

// The Figure 3 fixture from the paper: a 6-bit MISR with 4 X symbols has the
// X-dependence rows below (reconstructed from the printed M1..M6 equations);
// Gaussian elimination must find exactly two X-free combinations, and
// {M1,M3,M5} and {M1,M4} must both be in their span.
func TestFigure3XFreeRows(t *testing.T) {
	// Columns are X1..X4. Rows M1..M6.
	a := ParseMat(
		"1000", // M1 = X1 ^ ...
		"1110", // M2 = X1 ^ X2 ^ X3 ^ ...
		"0010", // M3 = X3 ^ ...
		"1000", // M4 = X1 ^ ...
		"1010", // M5 = X1 ^ X3 ^ ...
		"0011", // M6 = X3 ^ X4
	)
	if got := Rank(a); got != 4 {
		t.Fatalf("rank = %d, want 4", got)
	}
	sels := NullCombinations(a)
	if len(sels) != 2 {
		t.Fatalf("got %d X-free combinations, want 2", len(sels))
	}
	// The paper's combinations.
	m135 := FromIndices(6, 0, 2, 4)
	m14 := FromIndices(6, 0, 3)
	for _, want := range []Vec{m135, m14} {
		if !a.VecMul(want).IsZero() {
			t.Fatalf("paper combination %v is not X-free under our rows", want)
		}
		if !inSpan(sels, want) {
			t.Fatalf("paper combination %v not in span of found combinations", want)
		}
	}
}

// inSpan reports whether target is a GF(2) combination of basis vectors.
func inSpan(basis []Vec, target Vec) bool {
	if len(basis) == 0 {
		return target.IsZero()
	}
	rows := make([]Vec, len(basis))
	for i, b := range basis {
		rows[i] = b.Clone()
	}
	withTarget := append(append([]Vec{}, rows...), target.Clone())
	return Rank(MatFromRows(rows...)) == Rank(MatFromRows(withTarget...))
}
