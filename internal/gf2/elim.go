package gf2

// Elimination holds the result of tracked Gaussian elimination of a matrix A:
// a row-echelon form R and a transform T such that T * A = R, where T is a
// product of elementary row operations (hence invertible).
//
// Rows of R that are identically zero correspond to rows of T that select a
// GF(2) combination of A's original rows summing to zero — exactly the
// "X-free" row combinations used by the X-canceling MISR.
type Elimination struct {
	// R is the row-echelon form of the input.
	R Mat
	// T is the accumulated row-operation transform: T * A == R.
	T Mat
	// Rank is the number of nonzero rows of R.
	Rank int
	// PivotCols[i] is the pivot column of nonzero row i of R.
	PivotCols []int
}

// Eliminate performs Gaussian elimination on a copy of a, tracking row
// operations. The input is not modified.
func Eliminate(a Mat) Elimination {
	r := a.Clone()
	t := Identity(a.Rows())
	rank := 0
	var pivots []int
	for col := 0; col < r.cols && rank < len(r.rows); col++ {
		// Find a pivot at or below row `rank`.
		pivot := -1
		for i := rank; i < len(r.rows); i++ {
			if r.rows[i].Get(col) {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		r.rows[rank], r.rows[pivot] = r.rows[pivot], r.rows[rank]
		t.rows[rank], t.rows[pivot] = t.rows[pivot], t.rows[rank]
		// Clear the column in every other row (reduced row-echelon form).
		for i := 0; i < len(r.rows); i++ {
			if i != rank && r.rows[i].Get(col) {
				r.rows[i].Xor(r.rows[rank])
				t.rows[i].Xor(t.rows[rank])
			}
		}
		pivots = append(pivots, col)
		rank++
	}
	return Elimination{R: r, T: t, Rank: rank, PivotCols: pivots}
}

// Rank returns the rank of a over GF(2).
func Rank(a Mat) int { return Eliminate(a).Rank }

// NullCombinations returns selection vectors s (one per zero row of the
// echelon form) such that s * A = 0: each selects a subset of A's rows whose
// GF(2) sum has no dependence on any column. These are the X-free
// combinations of an X-dependence matrix. The returned vectors are linearly
// independent and there are exactly Rows(a) - Rank(a) of them.
func NullCombinations(a Mat) []Vec {
	e := Eliminate(a)
	out := make([]Vec, 0, a.Rows()-e.Rank)
	for i := e.Rank; i < a.Rows(); i++ {
		out = append(out, e.T.rows[i].Clone())
	}
	return out
}

// Solve finds one solution x with a*x = b, or ok=false if none exists.
// a has shape m x n, b has length m, and x has length n.
func Solve(a Mat, b Vec) (x Vec, ok bool) {
	if b.Len() != a.Rows() {
		panic("gf2: Solve dimension mismatch")
	}
	e := Eliminate(a)
	// Transform b the same way: b' = T * b.
	bp := e.T.MulVec(b)
	x = NewVec(a.Cols())
	for i := 0; i < e.Rank; i++ {
		if bp.Get(i) {
			x.Set(e.PivotCols[i])
		}
	}
	// Zero rows of R must have zero b' entries for consistency.
	for i := e.Rank; i < a.Rows(); i++ {
		if bp.Get(i) {
			return Vec{}, false
		}
	}
	return x, true
}

// NullSpaceBasis returns a basis of {x : a*x = 0} (the kernel acting on
// columns). There are Cols(a) - Rank(a) basis vectors.
func NullSpaceBasis(a Mat) []Vec {
	e := Eliminate(a)
	isPivot := make([]bool, a.Cols())
	pivotRow := make([]int, a.Cols())
	for i, c := range e.PivotCols {
		isPivot[c] = true
		pivotRow[c] = i
	}
	var basis []Vec
	for free := 0; free < a.Cols(); free++ {
		if isPivot[free] {
			continue
		}
		v := NewVec(a.Cols())
		v.Set(free)
		for c := 0; c < a.Cols(); c++ {
			if isPivot[c] && e.R.rows[pivotRow[c]].Get(free) {
				v.Set(c)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// Invert returns the inverse of a square matrix, or ok=false if singular.
func Invert(a Mat) (inv Mat, ok bool) {
	if a.Rows() != a.Cols() {
		panic("gf2: Invert of non-square matrix")
	}
	e := Eliminate(a)
	if e.Rank != a.Rows() {
		return Mat{}, false
	}
	// R is a row-permuted identity for full-rank reduced echelon form of a
	// square matrix; reorder T's rows so that inv * a == I.
	inv = NewMat(a.Rows(), a.Rows())
	for i, c := range e.PivotCols {
		inv.rows[c] = e.T.rows[i].Clone()
	}
	return inv, true
}
