package gf2

import (
	"fmt"
	"strings"
)

// Mat is a dense matrix over GF(2), stored as one Vec per row.
type Mat struct {
	rows []Vec
	cols int
}

// NewMat returns a zero matrix with r rows and c columns.
func NewMat(r, c int) Mat {
	if r < 0 || c < 0 {
		panic("gf2: negative matrix dimension")
	}
	m := Mat{rows: make([]Vec, r), cols: c}
	for i := range m.rows {
		m.rows[i] = NewVec(c)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.rows[i].Set(i)
	}
	return m
}

// MatFromRows builds a matrix from row vectors, which must share a length.
// The rows are used directly (not copied).
func MatFromRows(rows ...Vec) Mat {
	if len(rows) == 0 {
		return Mat{}
	}
	c := rows[0].Len()
	for _, r := range rows {
		if r.Len() != c {
			panic("gf2: ragged rows")
		}
	}
	return Mat{rows: rows, cols: c}
}

// ParseMat parses a matrix from rows of '0'/'1' strings.
func ParseMat(rows ...string) Mat {
	vs := make([]Vec, len(rows))
	for i, s := range rows {
		vs[i] = ParseVec(s)
	}
	return MatFromRows(vs...)
}

// Rows returns the number of rows.
func (m Mat) Rows() int { return len(m.rows) }

// Cols returns the number of columns.
func (m Mat) Cols() int { return m.cols }

// Row returns row i (shared storage, not a copy).
func (m Mat) Row(i int) Vec { return m.rows[i] }

// Get reports the bit at (r, c).
func (m Mat) Get(r, c int) bool { return m.rows[r].Get(c) }

// Set sets the bit at (r, c) to 1.
func (m Mat) Set(r, c int) { m.rows[r].Set(c) }

// SetBool sets the bit at (r, c) to b.
func (m Mat) SetBool(r, c int, b bool) { m.rows[r].SetBool(c, b) }

// Clone returns a deep copy of m.
func (m Mat) Clone() Mat {
	c := Mat{rows: make([]Vec, len(m.rows)), cols: m.cols}
	for i, r := range m.rows {
		c.rows[i] = r.Clone()
	}
	return c
}

// Equal reports whether m and o have identical shape and entries.
func (m Mat) Equal(o Mat) bool {
	if len(m.rows) != len(o.rows) || m.cols != o.cols {
		return false
	}
	for i, r := range m.rows {
		if !r.Equal(o.rows[i]) {
			return false
		}
	}
	return true
}

// MulVec returns m * v (treating v as a column vector of length Cols).
func (m Mat) MulVec(v Vec) Vec {
	if v.Len() != m.cols {
		panic(fmt.Sprintf("gf2: MulVec dimension mismatch %d vs %d", v.Len(), m.cols))
	}
	out := NewVec(len(m.rows))
	for i, r := range m.rows {
		if r.Dot(v) == 1 {
			out.Set(i)
		}
	}
	return out
}

// VecMul returns v * m (treating v as a row vector of length Rows),
// i.e. the GF(2) combination of m's rows selected by v.
func (m Mat) VecMul(v Vec) Vec {
	if v.Len() != len(m.rows) {
		panic(fmt.Sprintf("gf2: VecMul dimension mismatch %d vs %d", v.Len(), len(m.rows)))
	}
	out := NewVec(m.cols)
	v.ForEach(func(i int) { out.Xor(m.rows[i]) })
	return out
}

// Mul returns m * o.
func (m Mat) Mul(o Mat) Mat {
	if m.cols != len(o.rows) {
		panic(fmt.Sprintf("gf2: Mul dimension mismatch %d vs %d", m.cols, len(o.rows)))
	}
	out := NewMat(len(m.rows), o.cols)
	for i, r := range m.rows {
		acc := out.rows[i]
		r.ForEach(func(k int) { acc.Xor(o.rows[k]) })
	}
	return out
}

// Transpose returns the transpose of m.
func (m Mat) Transpose() Mat {
	t := NewMat(m.cols, len(m.rows))
	for i, r := range m.rows {
		r.ForEach(func(j int) { t.rows[j].Set(i) })
	}
	return t
}

// String renders the matrix, one row per line.
func (m Mat) String() string {
	var sb strings.Builder
	for i, r := range m.rows {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(r.String())
	}
	return sb.String()
}
