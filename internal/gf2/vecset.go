package gf2

// VecSet deduplicates bit vectors by content, assigning each distinct
// vector a dense id (0, 1, 2, ... in first-insertion order). It replaces
// the Vec.String()-keyed maps of earlier designs: keys are 64-bit content
// hashes (Vec.Hash) verified with word-level equality on bucket collisions,
// so no per-insert string is ever allocated. The AddAnd/AddAndNot variants
// probe for a derived vector (a&b, a&^b) without materializing it unless it
// turns out to be new.
//
// The zero value is not usable; call NewVecSet. VecSet is not safe for
// concurrent use; callers that share one across goroutines must serialize
// access (internal/core's evaluator wraps it in a mutex).
type VecSet struct {
	// hash and hashAnd/hashAndNot are the probing functions; tests inject
	// degenerate hashes here to exercise the collision path.
	hash       func(Vec) uint64
	hashAnd    func(a, b Vec) uint64
	hashAndNot func(a, b Vec) uint64

	buckets map[uint64][]int
	vecs    []Vec
}

// NewVecSet returns an empty set.
func NewVecSet() *VecSet {
	return &VecSet{
		hash:       Vec.Hash,
		hashAnd:    Vec.HashAnd,
		hashAndNot: Vec.HashAndNot,
		buckets:    make(map[uint64][]int),
	}
}

// Len returns the number of distinct vectors in the set.
func (s *VecSet) Len() int { return len(s.vecs) }

// Vec returns the stored vector with the given id. The vector is shared
// with the set; treat it as read-only.
func (s *VecSet) Vec(id int) Vec { return s.vecs[id] }

// Add inserts v and returns its dense id, with existed reporting whether an
// equal vector was already present. The set stores v itself (no clone); the
// caller must not mutate it afterwards.
func (s *VecSet) Add(v Vec) (id int, existed bool) {
	return s.AddWithHash(s.hash(v), v)
}

// AddWithHash is Add with the content hash already in hand — callers that
// also use the hash to pick a lock stripe (internal/core's sharded state
// interner) pay for one hash pass instead of two. h must equal what the
// set's hash function would return for v; a mismatched hash silently
// duplicates entries.
func (s *VecSet) AddWithHash(h uint64, v Vec) (id int, existed bool) {
	for _, j := range s.buckets[h] {
		if s.vecs[j].Equal(v) {
			return j, true
		}
	}
	return s.insert(h, v), false
}

// AddAnd inserts (a & b), materializing the intersection only when it is
// not already present, and returns its dense id.
func (s *VecSet) AddAnd(a, b Vec) (id int, existed bool) {
	return s.AddAndWithHash(s.hashAnd(a, b), a, b)
}

// AddAndWithHash is AddAnd with the derived vector's hash precomputed
// (e.g. one side of Vec.HashPair). Same contract as AddWithHash.
func (s *VecSet) AddAndWithHash(h uint64, a, b Vec) (id int, existed bool) {
	for _, j := range s.buckets[h] {
		if s.vecs[j].EqualAnd(a, b) {
			return j, true
		}
	}
	return s.insert(h, AndOf(a, b)), false
}

// AddAndNot inserts (a &^ b), materializing the difference only when it is
// not already present, and returns its dense id.
func (s *VecSet) AddAndNot(a, b Vec) (id int, existed bool) {
	return s.AddAndNotWithHash(s.hashAndNot(a, b), a, b)
}

// AddAndNotWithHash is AddAndNot with the derived vector's hash
// precomputed. Same contract as AddWithHash.
func (s *VecSet) AddAndNotWithHash(h uint64, a, b Vec) (id int, existed bool) {
	for _, j := range s.buckets[h] {
		if s.vecs[j].EqualAndNot(a, b) {
			return j, true
		}
	}
	return s.insert(h, AndNotOf(a, b)), false
}

func (s *VecSet) insert(h uint64, v Vec) int {
	id := len(s.vecs)
	s.vecs = append(s.vecs, v)
	s.buckets[h] = append(s.buckets[h], id)
	return id
}
