package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityMul(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randMat(r, 5, 7)
	i5 := Identity(5)
	if !i5.Mul(a).Equal(a) {
		t.Fatal("I * A != A")
	}
	i7 := Identity(7)
	if !a.Mul(i7).Equal(a) {
		t.Fatal("A * I != A")
	}
}

func TestParseMatAndString(t *testing.T) {
	m := ParseMat("101", "010")
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if m.String() != "101\n010" {
		t.Fatalf("String = %q", m.String())
	}
	if !m.Get(0, 0) || m.Get(0, 1) || !m.Get(1, 1) {
		t.Fatal("entries wrong")
	}
}

func TestMatFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	MatFromRows(NewVec(3), NewVec(4))
}

func TestMulVecAndVecMul(t *testing.T) {
	m := ParseMat(
		"110",
		"011",
	)
	v := ParseVec("101")
	// m * v: row0 . v = 1, row1 . v = 1
	got := m.MulVec(v)
	if got.String() != "11" {
		t.Fatalf("MulVec = %v", got)
	}
	sel := ParseVec("11")
	// sel * m = row0 ^ row1 = 101
	comb := m.VecMul(sel)
	if comb.String() != "101" {
		t.Fatalf("VecMul = %v", comb)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMat(r, 1+r.Intn(12), 1+r.Intn(12))
		return a.Transpose().Transpose().Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMat(r, 1+r.Intn(8), 1+r.Intn(8))
		b := randMat(r, a.Cols(), 1+r.Intn(8))
		c := randMat(r, b.Cols(), 1+r.Intn(8))
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneDeep(t *testing.T) {
	a := ParseMat("10", "01")
	b := a.Clone()
	b.Set(0, 1)
	if a.Get(0, 1) {
		t.Fatal("Clone shares row storage")
	}
}

func randMat(r *rand.Rand, rows, cols int) Mat {
	m := NewMat(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Intn(2) == 1 {
				m.Set(i, j)
			}
		}
	}
	return m
}
