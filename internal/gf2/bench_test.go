package gf2

import (
	"math/rand"
	"testing"
)

func benchMat(rows, cols int, seed int64) Mat {
	r := rand.New(rand.NewSource(seed))
	m := NewMat(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Intn(2) == 1 {
				m.Set(i, j)
			}
		}
	}
	return m
}

func BenchmarkEliminate32x25(b *testing.B) {
	m := benchMat(32, 25, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Eliminate(m)
	}
}

func BenchmarkEliminate256x256(b *testing.B) {
	m := benchMat(256, 256, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Eliminate(m)
	}
}

func BenchmarkNullCombinations(b *testing.B) {
	m := benchMat(64, 40, 3)
	for i := 0; i < b.N; i++ {
		NullCombinations(m)
	}
}

func BenchmarkSolve(b *testing.B) {
	m := benchMat(128, 160, 4)
	r := rand.New(rand.NewSource(5))
	x := randVec(r, 160)
	rhs := m.MulVec(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Solve(m, rhs); !ok {
			b.Fatal("unsolvable")
		}
	}
}

func BenchmarkPopCountAnd(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	x := randVec(r, 3000)
	y := randVec(r, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.PopCountAnd(y)
	}
}

func BenchmarkVecXor(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	x := randVec(r, 3000)
	y := randVec(r, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Xor(y)
	}
}
