package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The fused kernels must agree exactly with the compose-then-measure path
// they replace, over random vectors of every word-boundary shape.
func TestFusedKernelsMatchMaterialized(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%300
		a, b := randVec(r, n), randVec(r, n)

		and := a.Clone()
		and.And(b)
		andNot := a.Clone()
		andNot.AndNot(b)

		if !AndOf(a, b).Equal(and) || !AndNotOf(a, b).Equal(andNot) {
			return false
		}
		if a.PopCountAndNot(b) != andNot.PopCount() {
			return false
		}
		pAnd, pAndNot := a.PopCountPair(b)
		if pAnd != and.PopCount() || pAndNot != andNot.PopCount() {
			return false
		}
		hAnd, hAndNot := a.HashPair(b)
		return hAnd == and.Hash() && hAndNot == andNot.Hash() &&
			hAnd == a.HashAnd(b) && hAndNot == a.HashAndNot(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The fused constructors allocate fresh storage: mutating the result must
// not reach back into either operand.
func TestAndOfIndependence(t *testing.T) {
	a := FromIndices(130, 0, 64, 129)
	b := FromIndices(130, 0, 129)
	v := AndOf(a, b)
	v.Flip(1)
	if a.Get(1) || b.Get(1) {
		t.Fatal("AndOf shares storage with an operand")
	}
	w := AndNotOf(a, b)
	w.Flip(2)
	if a.Get(2) || b.Get(2) {
		t.Fatal("AndNotOf shares storage with an operand")
	}
}

func TestFusedLengthMismatchPanics(t *testing.T) {
	a, b := NewVec(10), NewVec(11)
	for name, fn := range map[string]func(){
		"AndOf":          func() { AndOf(a, b) },
		"AndNotOf":       func() { AndNotOf(a, b) },
		"PopCountAndNot": func() { a.PopCountAndNot(b) },
		"PopCountPair":   func() { a.PopCountPair(b) },
		"HashPair":       func() { a.HashPair(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

// The WithHash probe variants must behave exactly like their hashing
// counterparts when handed the canonical hash — same ids, same dedup.
func TestVecSetWithHashVariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := NewVecSet()
	ref := NewVecSet()
	for i := 0; i < 200; i++ {
		a, b := randVec(r, 193), randVec(r, 193)
		hAnd, hAndNot := a.HashPair(b)
		idA, exA := s.AddAndWithHash(hAnd, a, b)
		idRA, exRA := ref.AddAnd(a, b)
		if idA != idRA || exA != exRA {
			t.Fatalf("AddAndWithHash diverged at %d: (%d,%v) vs (%d,%v)", i, idA, exA, idRA, exRA)
		}
		idN, exN := s.AddAndNotWithHash(hAndNot, a, b)
		idRN, exRN := ref.AddAndNot(a, b)
		if idN != idRN || exN != exRN {
			t.Fatalf("AddAndNotWithHash diverged at %d", i)
		}
		v := randVec(r, 193)
		idV, exV := s.AddWithHash(v.Hash(), v)
		idRV, exRV := ref.Add(v)
		if idV != idRV || exV != exRV {
			t.Fatalf("AddWithHash diverged at %d", i)
		}
	}
	if s.Len() != ref.Len() {
		t.Fatalf("set sizes diverged: %d vs %d", s.Len(), ref.Len())
	}
}
