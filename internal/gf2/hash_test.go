package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Equal vectors must hash equal, however they were built.
func TestHashEqualVectorsAgree(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%300
		a := randVec(r, n)
		b := NewVec(n)
		b.CopyFrom(a)
		c := a.Clone()
		return a.Hash() == b.Hash() && a.Hash() == c.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Differing vectors must rarely collide: over many random pairs and
// single-bit flips, demand zero collisions (a 64-bit mixed hash colliding
// in a few thousand draws would indicate a broken mixer, not bad luck).
func TestHashRarelyCollides(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	seen := make(map[uint64]Vec)
	collisions := 0
	for i := 0; i < 4000; i++ {
		n := 1 + r.Intn(257)
		v := randVec(r, n)
		h := v.Hash()
		if prev, ok := seen[h]; ok && !prev.Equal(v) {
			collisions++
		}
		seen[h] = v
	}
	// Single-bit flips are the adversarial case for weak mixers.
	base := randVec(r, 192)
	h0 := base.Hash()
	for i := 0; i < 192; i++ {
		base.Flip(i)
		if base.Hash() == h0 {
			collisions++
		}
		base.Flip(i)
	}
	if collisions != 0 {
		t.Fatalf("%d hash collisions across random and bit-flip probes", collisions)
	}
}

// Length participates in the hash: a short vector and its zero-extended
// sibling are different vectors and should not collide systematically.
func TestHashLengthSensitive(t *testing.T) {
	a := NewVec(64)
	b := NewVec(128)
	if a.Hash() == b.Hash() {
		t.Fatal("zero vectors of different lengths hash equal")
	}
}

// HashAnd/HashAndNot must equal Hash of the materialized result, and the
// EqualAnd/EqualAndNot probes must agree with materialized Equal.
func TestHashAndVariantsMatchMaterialized(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%300
		a, b := randVec(r, n), randVec(r, n)
		and := a.Clone()
		and.And(b)
		andNot := a.Clone()
		andNot.AndNot(b)
		if a.HashAnd(b) != and.Hash() || a.HashAndNot(b) != andNot.Hash() {
			return false
		}
		probe := randVec(r, n)
		return probe.EqualAnd(a, b) == probe.Equal(and) &&
			probe.EqualAndNot(a, b) == probe.Equal(andNot) &&
			and.EqualAnd(a, b) && andNot.EqualAndNot(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVecSetDedup(t *testing.T) {
	s := NewVecSet()
	a := ParseVec("1010")
	b := ParseVec("0110")
	id0, existed := s.Add(a)
	if id0 != 0 || existed {
		t.Fatalf("first Add = (%d,%t), want (0,false)", id0, existed)
	}
	if id, existed := s.Add(a.Clone()); id != 0 || !existed {
		t.Fatalf("repeat Add = (%d,%t), want (0,true)", id, existed)
	}
	if id, existed := s.Add(b); id != 1 || existed {
		t.Fatalf("second Add = (%d,%t), want (1,false)", id, existed)
	}
	// a & b = 0010; a &^ b = 1000.
	if id, existed := s.AddAnd(a, b); id != 2 || existed {
		t.Fatalf("AddAnd = (%d,%t), want (2,false)", id, existed)
	}
	if id, existed := s.AddAnd(a, b); id != 2 || !existed {
		t.Fatalf("repeat AddAnd = (%d,%t), want (2,true)", id, existed)
	}
	if id, existed := s.AddAndNot(a, b); id != 3 || existed {
		t.Fatalf("AddAndNot = (%d,%t), want (3,false)", id, existed)
	}
	if got := s.Vec(2); !got.Equal(ParseVec("0010")) {
		t.Fatalf("Vec(2) = %v, want 0010", got)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
}

// With a constant hash every vector lands in one bucket: the set must still
// deduplicate purely via the equality verification.
func TestVecSetCollisionPathStillDedups(t *testing.T) {
	s := NewVecSetWithHash(func(Vec) uint64 { return 42 })
	r := rand.New(rand.NewSource(7))
	var vecs []Vec
	for i := 0; i < 50; i++ {
		vecs = append(vecs, randVec(r, 96))
	}
	ids := make(map[int]Vec)
	for _, v := range vecs {
		id, _ := s.Add(v)
		if prev, ok := ids[id]; ok && !prev.Equal(v) {
			t.Fatalf("id %d assigned to unequal vectors under forced collisions", id)
		}
		ids[id] = v
	}
	for _, v := range vecs {
		id, existed := s.Add(v.Clone())
		if !existed || !s.Vec(id).Equal(v) {
			t.Fatalf("forced-collision set lost vector %v", v)
		}
	}
	// Derived inserts share the same single bucket and must still dedup.
	a, b := vecs[0], vecs[1]
	idAnd, _ := s.AddAnd(a, b)
	if id, existed := s.AddAnd(a, b); id != idAnd || !existed {
		t.Fatal("AddAnd not idempotent under forced collisions")
	}
	idNot, _ := s.AddAndNot(a, b)
	if id, existed := s.AddAndNot(a, b); id != idNot || !existed {
		t.Fatal("AddAndNot not idempotent under forced collisions")
	}
}

func BenchmarkVecHash(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	v := randVec(r, 3000) // one CKT-scale pattern bitset: 47 words
	u := randVec(r, 3000)
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink ^= v.Hash()
		}
		_ = sink
	})
	b.Run("hashand", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink ^= v.HashAnd(u)
		}
		_ = sink
	})
	b.Run("string-key", func(b *testing.B) {
		// The allocation the hash replaces: the old dedup built this string
		// per probed candidate.
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			and := v.Clone()
			and.And(u)
			sink += len(and.String())
		}
		_ = sink
	})
}
