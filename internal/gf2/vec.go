// Package gf2 implements linear algebra over GF(2): bit vectors, bit
// matrices, Gaussian elimination with row-operation tracking, rank and
// null-space computations.
//
// It is the numeric core of the X-canceling MISR machinery: MISR signature
// bits are linear combinations of scan-cell symbols over GF(2), and X-free
// signature combinations are found by eliminating the X-dependence matrix.
package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is a fixed-length bit vector over GF(2). The zero value is an empty
// vector; use NewVec to create one with a given length.
type Vec struct {
	words []uint64
	n     int
}

// NewVec returns a zero vector of n bits.
func NewVec(n int) Vec {
	if n < 0 {
		panic("gf2: negative vector length")
	}
	return Vec{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromBits builds a vector from a slice of 0/1 values (any nonzero is 1).
func FromBits(bits []int) Vec {
	v := NewVec(len(bits))
	for i, b := range bits {
		if b != 0 {
			v.Set(i)
		}
	}
	return v
}

// FromIndices builds an n-bit vector with the given bit positions set.
func FromIndices(n int, idx ...int) Vec {
	v := NewVec(n)
	for _, i := range idx {
		v.Set(i)
	}
	return v
}

// ParseVec parses a string of '0'/'1' runes (other runes are ignored,
// allowing separators) into a vector, most significant bit first position 0.
func ParseVec(s string) Vec {
	var b []int
	for _, r := range s {
		switch r {
		case '0':
			b = append(b, 0)
		case '1':
			b = append(b, 1)
		}
	}
	return FromBits(b)
}

// Len returns the number of bits in the vector.
func (v Vec) Len() int { return v.n }

// Get reports whether bit i is set.
func (v Vec) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Set sets bit i to 1.
func (v Vec) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (v Vec) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Flip toggles bit i.
func (v Vec) Flip(i int) {
	v.check(i)
	v.words[i/wordBits] ^= 1 << uint(i%wordBits)
}

// SetBool sets bit i to b.
func (v Vec) SetBool(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

func (v Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: bit index %d out of range [0,%d)", i, v.n))
	}
}

// Xor sets v ^= u in place. The vectors must have equal length.
func (v Vec) Xor(u Vec) {
	v.checkLen(u)
	for i, w := range u.words {
		v.words[i] ^= w
	}
}

// And sets v &= u in place. The vectors must have equal length.
func (v Vec) And(u Vec) {
	v.checkLen(u)
	for i, w := range u.words {
		v.words[i] &= w
	}
}

// AndNot sets v &^= u in place. The vectors must have equal length.
func (v Vec) AndNot(u Vec) {
	v.checkLen(u)
	for i, w := range u.words {
		v.words[i] &^= w
	}
}

// Or sets v |= u in place. The vectors must have equal length.
func (v Vec) Or(u Vec) {
	v.checkLen(u)
	for i, w := range u.words {
		v.words[i] |= w
	}
}

func (v Vec) checkLen(u Vec) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: length mismatch %d vs %d", v.n, u.n))
	}
}

// PopCount returns the number of set bits.
func (v Vec) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// PopCountAnd returns popcount(v & u) without allocating.
// The vectors must have equal length.
func (v Vec) PopCountAnd(u Vec) int {
	v.checkLen(u)
	c := 0
	for i, w := range u.words {
		c += bits.OnesCount64(v.words[i] & w)
	}
	return c
}

// PopCountAndNot returns popcount(v &^ u) without allocating.
// The vectors must have equal length.
func (v Vec) PopCountAndNot(u Vec) int {
	v.checkLen(u)
	c := 0
	for i, w := range u.words {
		c += bits.OnesCount64(v.words[i] &^ w)
	}
	return c
}

// PopCountPair returns popcount(v & u) and popcount(v &^ u) in one pass
// over the words — both sides of a split costed with one memory touch per
// word instead of two scans. The vectors must have equal length.
func (v Vec) PopCountPair(u Vec) (and, andNot int) {
	v.checkLen(u)
	for i, w := range u.words {
		vw := v.words[i]
		and += bits.OnesCount64(vw & w)
		andNot += bits.OnesCount64(vw &^ w)
	}
	return and, andNot
}

// IsZero reports whether every bit is 0.
func (v Vec) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and u have the same length and bits.
func (v Vec) Equal(u Vec) bool {
	if v.n != u.n {
		return false
	}
	for i, w := range u.words {
		if v.words[i] != w {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	c := Vec{words: make([]uint64, len(v.words)), n: v.n}
	copy(c.words, v.words)
	return c
}

// AndOf materializes (a & b) in a single pass — no Clone-then-And double
// walk over the words. The vectors must have equal length.
func AndOf(a, b Vec) Vec {
	a.checkLen(b)
	v := Vec{words: make([]uint64, len(a.words)), n: a.n}
	for i, w := range b.words {
		v.words[i] = a.words[i] & w
	}
	return v
}

// AndNotOf materializes (a &^ b) in a single pass. The vectors must have
// equal length.
func AndNotOf(a, b Vec) Vec {
	a.checkLen(b)
	v := Vec{words: make([]uint64, len(a.words)), n: a.n}
	for i, w := range b.words {
		v.words[i] = a.words[i] &^ w
	}
	return v
}

// CopyFrom copies u's bits into v. The vectors must have equal length.
func (v Vec) CopyFrom(u Vec) {
	v.checkLen(u)
	copy(v.words, u.words)
}

// Reset clears every bit.
func (v Vec) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// SetAll sets every bit to 1.
func (v Vec) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// trim clears bits past the logical length.
func (v Vec) trim() {
	if v.n%wordBits != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(v.n%wordBits)) - 1
	}
}

// NextSet returns the index of the first set bit at or after i,
// or -1 if there is none.
func (v Vec) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i / wordBits
	w := v.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// ForEach calls fn for every set bit index in ascending order.
func (v Vec) ForEach(fn func(i int)) {
	for wi, w := range v.words {
		for w != 0 {
			fn(wi*wordBits + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Indices returns the set bit positions in ascending order.
func (v Vec) Indices() []int {
	out := make([]int, 0, v.PopCount())
	v.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Parity returns the XOR of all bits (0 or 1).
func (v Vec) Parity() int {
	var acc uint64
	for _, w := range v.words {
		acc ^= w
	}
	return bits.OnesCount64(acc) & 1
}

// Dot returns the GF(2) inner product of v and u (0 or 1).
// The vectors must have equal length.
func (v Vec) Dot(u Vec) int {
	v.checkLen(u)
	var acc uint64
	for i, w := range u.words {
		acc ^= v.words[i] & w
	}
	return bits.OnesCount64(acc) & 1
}

// Hash returns a 64-bit content hash of the vector (length and bits).
// Equal vectors always hash equal; the per-word splitmix64-style mixing
// keeps unequal vectors from colliding in practice, but callers that use
// the hash as a map key must still verify with Equal on bucket collisions
// (VecSet packages that pattern). The hash is deterministic across runs.
func (v Vec) Hash() uint64 {
	h := hashMix(uint64(v.n) ^ hashSeed)
	for _, w := range v.words {
		h = hashMix(h ^ w)
	}
	return h
}

// HashAnd returns Hash of (v & u) without materializing the intersection.
// The vectors must have equal length.
func (v Vec) HashAnd(u Vec) uint64 {
	v.checkLen(u)
	h := hashMix(uint64(v.n) ^ hashSeed)
	for i, w := range u.words {
		h = hashMix(h ^ (v.words[i] & w))
	}
	return h
}

// HashAndNot returns Hash of (v &^ u) without materializing the difference.
// The vectors must have equal length.
func (v Vec) HashAndNot(u Vec) uint64 {
	v.checkLen(u)
	h := hashMix(uint64(v.n) ^ hashSeed)
	for i, w := range u.words {
		h = hashMix(h ^ (v.words[i] &^ w))
	}
	return h
}

// HashPair returns HashAnd(v, u) and HashAndNot(v, u) from one fused pass:
// both derived words come from the same two source words, so computing the
// two hashes together touches memory once instead of twice. Used by the
// split-state interner, which always probes for both sides of a split.
func (v Vec) HashPair(u Vec) (hAnd, hAndNot uint64) {
	v.checkLen(u)
	hAnd = hashMix(uint64(v.n) ^ hashSeed)
	hAndNot = hAnd
	for i, w := range u.words {
		vw := v.words[i]
		hAnd = hashMix(hAnd ^ (vw & w))
		hAndNot = hashMix(hAndNot ^ (vw &^ w))
	}
	return hAnd, hAndNot
}

// EqualAnd reports whether v == (a & b) without materializing the
// intersection. All three vectors must have equal length.
func (v Vec) EqualAnd(a, b Vec) bool {
	v.checkLen(a)
	v.checkLen(b)
	for i, w := range v.words {
		if w != a.words[i]&b.words[i] {
			return false
		}
	}
	return true
}

// EqualAndNot reports whether v == (a &^ b) without materializing the
// difference. All three vectors must have equal length.
func (v Vec) EqualAndNot(a, b Vec) bool {
	v.checkLen(a)
	v.checkLen(b)
	for i, w := range v.words {
		if w != a.words[i]&^b.words[i] {
			return false
		}
	}
	return true
}

// hashSeed domain-separates Vec hashes from plain splitmix64 streams.
const hashSeed = 0x9e3779b97f4a7c15

// hashMix is the splitmix64 finalizer: a cheap full-avalanche mix so that
// single-bit differences in any word spread across the whole hash.
func hashMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// String renders the vector as '0'/'1' runes, bit 0 first.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
