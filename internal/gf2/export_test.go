package gf2

// NewVecSetWithHash returns a VecSet whose probing hashes are replaced by h
// applied to the materialized vector. Tests pass a constant h to force every
// insert into one bucket and exercise the collision-verification path.
func NewVecSetWithHash(h func(Vec) uint64) *VecSet {
	s := NewVecSet()
	s.hash = h
	s.hashAnd = func(a, b Vec) uint64 {
		v := a.Clone()
		v.And(b)
		return h(v)
	}
	s.hashAndNot = func(a, b Vec) uint64 {
		v := a.Clone()
		v.AndNot(b)
		return h(v)
	}
	return s
}
