// Package decompress implements an EDT-style continuous-flow test-stimulus
// decompressor: a ring generator (LFSR) fed by a few tester channels drives
// many scan chains through a phase shifter. Deterministic test cubes (mostly
// don't-care patterns with a few care bits) are encoded as a seed plus
// per-cycle channel injections by solving a GF(2) linear system — the
// stimulus-compression half of the compression story whose response half
// the paper addresses.
package decompress

import (
	"fmt"
	"math/rand"

	"xhybrid/internal/gf2"
	"xhybrid/internal/logic"
	"xhybrid/internal/misr"
)

// Config describes the decompressor hardware.
type Config struct {
	// LFSR is the ring generator (size and feedback polynomial).
	LFSR misr.Config
	// Channels is the number of tester channels injecting into the ring.
	Channels int
	// Chains is the number of scan chains driven by the phase shifter.
	Chains int
	// TapsPerChain is the number of ring stages XORed per chain output
	// (default 3).
	TapsPerChain int
	// Seed determinizes the phase-shifter and injector wiring.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.LFSR.Validate(); err != nil {
		return err
	}
	if c.Channels < 1 || c.Channels > c.LFSR.Size {
		return fmt.Errorf("decompress: channels %d out of [1,%d]", c.Channels, c.LFSR.Size)
	}
	if c.Chains < 1 {
		return fmt.Errorf("decompress: need at least one chain")
	}
	if c.TapsPerChain < 0 {
		return fmt.Errorf("decompress: negative taps")
	}
	return nil
}

// Decompressor expands compressed seed data into scan-load patterns.
type Decompressor struct {
	cfg Config
	// inject[k] is the ring stage channel k XORs into.
	inject []int
	// taps[w] are the ring stages XORed to drive chain w.
	taps [][]int
}

// New builds a decompressor with deterministic pseudo-random wiring.
func New(cfg Config) (*Decompressor, error) {
	if cfg.TapsPerChain == 0 {
		cfg.TapsPerChain = 3
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	d := &Decompressor{cfg: cfg}
	d.inject = make([]int, cfg.Channels)
	perm := r.Perm(cfg.LFSR.Size)
	for k := range d.inject {
		d.inject[k] = perm[k]
	}
	d.taps = make([][]int, cfg.Chains)
	for w := range d.taps {
		seen := map[int]bool{}
		for len(d.taps[w]) < cfg.TapsPerChain {
			t := r.Intn(cfg.LFSR.Size)
			if !seen[t] {
				seen[t] = true
				d.taps[w] = append(d.taps[w], t)
			}
		}
	}
	return d, nil
}

// Config returns the decompressor configuration.
func (d *Decompressor) Config() Config { return d.cfg }

// Variables returns the number of free GF(2) variables available to encode
// a T-cycle load: the seed bits plus all channel injections.
func (d *Decompressor) Variables(cycles int) int {
	return d.cfg.LFSR.Size + d.cfg.Channels*cycles
}

// step advances a symbolic ring state (one dependence vector per stage) one
// cycle and XORs in the injection variables of cycle t.
func (d *Decompressor) step(state []gf2.Vec, t, vars int) {
	m := d.cfg.LFSR.Size
	carry := state[m-1]
	next := make([]gf2.Vec, m)
	next[0] = gf2.NewVec(vars)
	if d.cfg.LFSR.Poly&1 != 0 {
		next[0].Xor(carry)
	}
	for i := 1; i < m; i++ {
		nv := state[i-1].Clone()
		if d.cfg.LFSR.Poly>>uint(i)&1 != 0 {
			nv.Xor(carry)
		}
		next[i] = nv
	}
	for k, stage := range d.inject {
		next[stage].Flip(m + t*d.cfg.Channels + k)
	}
	copy(state, next)
}

// equations returns, for every (cycle, chain) output bit of a T-cycle
// expansion, its GF(2) dependence on the variables (seed bits first, then
// injections in cycle-major channel order).
func (d *Decompressor) equations(cycles int) [][]gf2.Vec {
	vars := d.Variables(cycles)
	m := d.cfg.LFSR.Size
	state := make([]gf2.Vec, m)
	for i := range state {
		state[i] = gf2.FromIndices(vars, i) // seed bit i
	}
	out := make([][]gf2.Vec, cycles)
	for t := 0; t < cycles; t++ {
		d.step(state, t, vars)
		out[t] = make([]gf2.Vec, d.cfg.Chains)
		for w := 0; w < d.cfg.Chains; w++ {
			eq := gf2.NewVec(vars)
			for _, tap := range d.taps[w] {
				eq.Xor(state[tap])
			}
			out[t][w] = eq
		}
	}
	return out
}

// Expand concretely decompresses an assignment of the variables into the
// scan loads: one logic.Vector per chain of length cycles, with position p
// receiving the bit produced at cycle cycles-1-p (first bit shifts deepest).
func (d *Decompressor) Expand(assign gf2.Vec, cycles int) ([]logic.Vector, error) {
	if assign.Len() != d.Variables(cycles) {
		return nil, fmt.Errorf("decompress: assignment has %d vars, want %d", assign.Len(), d.Variables(cycles))
	}
	eqs := d.equations(cycles)
	loads := make([]logic.Vector, d.cfg.Chains)
	for w := range loads {
		loads[w] = make(logic.Vector, cycles)
	}
	for t := 0; t < cycles; t++ {
		for w := 0; w < d.cfg.Chains; w++ {
			bit := eqs[t][w].Dot(assign)
			loads[w][cycles-1-t] = logic.FromBit(bit)
		}
	}
	return loads, nil
}

// CareBit is one specified stimulus bit of a test cube.
type CareBit struct {
	// Chain and Pos locate the bit in the scan load.
	Chain, Pos int
	// Value is the required value (logic.Zero or logic.One).
	Value logic.V
}

// Encode solves for a variable assignment reproducing every care bit of a
// T-cycle load, or ok=false if the cube exceeds the decompressor's capacity
// (the linear system is inconsistent).
func (d *Decompressor) Encode(care []CareBit, cycles int) (assign gf2.Vec, ok bool, err error) {
	for _, cb := range care {
		if cb.Chain < 0 || cb.Chain >= d.cfg.Chains || cb.Pos < 0 || cb.Pos >= cycles {
			return gf2.Vec{}, false, fmt.Errorf("decompress: care bit (%d,%d) out of range", cb.Chain, cb.Pos)
		}
		if cb.Value != logic.Zero && cb.Value != logic.One {
			return gf2.Vec{}, false, fmt.Errorf("decompress: care bit value must be known")
		}
	}
	eqs := d.equations(cycles)
	rows := make([]gf2.Vec, len(care))
	rhs := gf2.NewVec(len(care))
	for i, cb := range care {
		t := cycles - 1 - cb.Pos
		rows[i] = eqs[t][cb.Chain]
		if cb.Value == logic.One {
			rhs.Set(i)
		}
	}
	if len(rows) == 0 {
		return gf2.NewVec(d.Variables(cycles)), true, nil
	}
	sol, solved := gf2.Solve(gf2.MatFromRows(rows...), rhs)
	if !solved {
		return gf2.Vec{}, false, nil
	}
	return sol, true, nil
}

// EncodeCube converts a three-valued load cube (one vector per chain, X =
// don't care) into care bits and encodes it.
func (d *Decompressor) EncodeCube(cube []logic.Vector) (assign gf2.Vec, ok bool, err error) {
	if len(cube) != d.cfg.Chains {
		return gf2.Vec{}, false, fmt.Errorf("decompress: cube has %d chains, want %d", len(cube), d.cfg.Chains)
	}
	cycles := 0
	var care []CareBit
	for w, v := range cube {
		if cycles == 0 {
			cycles = len(v)
		}
		if len(v) != cycles {
			return gf2.Vec{}, false, fmt.Errorf("decompress: ragged cube")
		}
		for p, val := range v {
			if val != logic.X {
				care = append(care, CareBit{Chain: w, Pos: p, Value: val})
			}
		}
	}
	if cycles == 0 {
		return gf2.Vec{}, false, fmt.Errorf("decompress: empty cube")
	}
	return d.Encode(care, cycles)
}

// CompressionRatio returns delivered-bit volume over raw stimulus volume
// for a T-cycle load: (seed + channel data) / (chains * T).
func (d *Decompressor) CompressionRatio(cycles int) float64 {
	raw := d.cfg.Chains * cycles
	if raw == 0 {
		return 0
	}
	return float64(d.Variables(cycles)) / float64(raw)
}
