package decompress

import (
	"math/rand"
	"testing"

	"xhybrid/internal/logic"
	"xhybrid/internal/misr"
)

func benchDecompressor(b *testing.B) *Decompressor {
	b.Helper()
	d, err := New(Config{LFSR: misr.MustStandard(64), Channels: 8, Chains: 128, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkEncode128Chains(b *testing.B) {
	d := benchDecompressor(b)
	r := rand.New(rand.NewSource(2))
	cycles := 64
	var care []CareBit
	for len(care) < 200 {
		care = append(care, CareBit{
			Chain: r.Intn(128), Pos: r.Intn(cycles), Value: logic.FromBit(r.Intn(2)),
		})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Encode(care, cycles); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpand128Chains(b *testing.B) {
	d := benchDecompressor(b)
	cycles := 64
	av, _, err := d.Encode(nil, cycles)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Expand(av, cycles); err != nil {
			b.Fatal(err)
		}
	}
}
