package decompress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xhybrid/internal/gf2"
	"xhybrid/internal/logic"
	"xhybrid/internal/misr"
)

func cfg(chains int) Config {
	return Config{LFSR: misr.MustStandard(32), Channels: 4, Chains: chains, Seed: 5}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{LFSR: misr.Config{Size: 8, Poly: 0x2}, Channels: 1, Chains: 1},
		{LFSR: misr.MustStandard(8), Channels: 0, Chains: 1},
		{LFSR: misr.MustStandard(8), Channels: 9, Chains: 1},
		{LFSR: misr.MustStandard(8), Channels: 1, Chains: 0},
		{LFSR: misr.MustStandard(8), Channels: 1, Chains: 1, TapsPerChain: -1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Fatalf("case %d accepted: %+v", i, c)
		}
	}
	if _, err := New(cfg(16)); err != nil {
		t.Fatal(err)
	}
}

func TestExpandDeterministic(t *testing.T) {
	d, err := New(cfg(8))
	if err != nil {
		t.Fatal(err)
	}
	assign := gf2.NewVec(d.Variables(10))
	assign.Set(0)
	assign.Set(33)
	a, err := d.Expand(assign, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Expand(assign, 10)
	if err != nil {
		t.Fatal(err)
	}
	for w := range a {
		if !a[w].Equal(b[w]) {
			t.Fatal("expansion not deterministic")
		}
		if len(a[w]) != 10 || a[w].CountX() != 0 {
			t.Fatal("expansion shape wrong")
		}
	}
	if _, err := d.Expand(gf2.NewVec(3), 10); err == nil {
		t.Fatal("accepted wrong assignment width")
	}
}

func TestExpandIsLinear(t *testing.T) {
	d, err := New(cfg(6))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cycles := 4 + r.Intn(12)
		n := d.Variables(cycles)
		a, b := gf2.NewVec(n), gf2.NewVec(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 1 {
				a.Set(i)
			}
			if r.Intn(2) == 1 {
				b.Set(i)
			}
		}
		ab := a.Clone()
		ab.Xor(b)
		ea, _ := d.Expand(a, cycles)
		eb, _ := d.Expand(b, cycles)
		eab, _ := d.Expand(ab, cycles)
		for w := range ea {
			for p := range ea[w] {
				want := logic.Xor(ea[w][p], eb[w][p])
				if eab[w][p] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The central property: Encode followed by Expand reproduces every care bit.
func TestEncodeExpandRoundTrip(t *testing.T) {
	d, err := New(cfg(16))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cycles := 8 + r.Intn(24)
		// Stay safely under capacity (seed 32 + 4*cycles variables).
		nCare := 1 + r.Intn(d.Variables(cycles)/2)
		seen := map[[2]int]bool{}
		var care []CareBit
		for len(care) < nCare {
			w, p := r.Intn(16), r.Intn(cycles)
			if seen[[2]int{w, p}] {
				continue
			}
			seen[[2]int{w, p}] = true
			care = append(care, CareBit{Chain: w, Pos: p, Value: logic.FromBit(r.Intn(2))})
		}
		assign, ok, err := d.Encode(care, cycles)
		if err != nil {
			return false
		}
		if !ok {
			// Rare unlucky rank deficiency; treat as vacuous success.
			return true
		}
		loads, err := d.Expand(assign, cycles)
		if err != nil {
			return false
		}
		for _, cb := range care {
			if loads[cb.Chain][cb.Pos] != cb.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeCube(t *testing.T) {
	d, err := New(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	cube := []logic.Vector{
		logic.MustParseVector("1xxxxxx0"),
		logic.MustParseVector("xxxx1xxx"),
		logic.MustParseVector("xxxxxxxx"),
		logic.MustParseVector("0x1xxxxx"),
	}
	assign, ok, err := d.EncodeCube(cube)
	if err != nil || !ok {
		t.Fatalf("encode failed: %v ok=%v", err, ok)
	}
	loads, err := d.Expand(assign, 8)
	if err != nil {
		t.Fatal(err)
	}
	for w, v := range cube {
		for p, val := range v {
			if val != logic.X && loads[w][p] != val {
				t.Fatalf("care bit (%d,%d) = %v, want %v", w, p, loads[w][p], val)
			}
		}
	}
	// Errors.
	if _, _, err := d.EncodeCube(cube[:2]); err == nil {
		t.Fatal("accepted wrong chain count")
	}
	ragged := []logic.Vector{cube[0], cube[1][:4], cube[2], cube[3]}
	if _, _, err := d.EncodeCube(ragged); err == nil {
		t.Fatal("accepted ragged cube")
	}
	empty := []logic.Vector{{}, {}, {}, {}}
	if _, _, err := d.EncodeCube(empty); err == nil {
		t.Fatal("accepted empty cube")
	}
}

func TestEncodeValidation(t *testing.T) {
	d, err := New(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Encode([]CareBit{{Chain: 9, Pos: 0, Value: logic.One}}, 4); err == nil {
		t.Fatal("accepted bad chain")
	}
	if _, _, err := d.Encode([]CareBit{{Chain: 0, Pos: 9, Value: logic.One}}, 4); err == nil {
		t.Fatal("accepted bad pos")
	}
	if _, _, err := d.Encode([]CareBit{{Chain: 0, Pos: 0, Value: logic.X}}, 4); err == nil {
		t.Fatal("accepted X care bit")
	}
	// Empty care list encodes trivially.
	assign, ok, err := d.Encode(nil, 4)
	if err != nil || !ok || assign.Len() != d.Variables(4) {
		t.Fatal("empty cube must encode trivially")
	}
}

func TestOverconstrainedCubeFails(t *testing.T) {
	// 2 chains driven by identical tap sets would conflict; instead force a
	// direct contradiction: same output bit demanded 0 and 1.
	d, err := New(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	care := []CareBit{
		{Chain: 0, Pos: 0, Value: logic.One},
		{Chain: 0, Pos: 0, Value: logic.Zero},
	}
	_, ok, err := d.Encode(care, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("contradictory cube encoded")
	}
}

func TestCompressionRatio(t *testing.T) {
	d, err := New(Config{LFSR: misr.MustStandard(32), Channels: 4, Chains: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 128 chains x 100 cycles raw = 12800; delivered = 32 + 400 = 432.
	ratio := d.CompressionRatio(100)
	if ratio < 0.03 || ratio > 0.04 {
		t.Fatalf("ratio = %f, want ~0.034 (30x compression)", ratio)
	}
	if d.CompressionRatio(0) != 0 {
		t.Fatal("zero-cycle ratio must be 0")
	}
}
