package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"xhybrid"
	"xhybrid/internal/jobs"
	"xhybrid/internal/obs"
)

// fastRetry keeps backoff delays microscopic so fault scenarios run in
// milliseconds.
func fastRetry() jobs.RetryPolicy {
	return jobs.RetryPolicy{Attempts: 4, Base: time.Millisecond, Max: 2 * time.Millisecond}
}

// chaosInput is a deterministic pseudo-random X-map big enough for a
// multi-round, multi-checkpoint run.
func chaosInput(t *testing.T) *xhybrid.XLocations {
	t.Helper()
	x, err := xhybrid.NewXLocations(8, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(0x9e3779b97f4a7c15)
	for p := 0; p < 64; p++ {
		for c := 0; c < 8; c++ {
			for pos := 0; pos < 4; pos++ {
				s = s*6364136223846793005 + 1442695040888963407
				if (s>>33)%10 < 3 {
					if err := x.AddX(p, c, pos); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	return x
}

// chaosOptions is fully specified so no default-filling is involved.
func chaosOptions() jobs.Options {
	return jobs.Options{MISRSize: 16, Q: 4, Strategy: "greedy", Seed: 5, CheckpointEvery: 1}
}

// reference runs the identical engine configuration synchronously.
func reference(t *testing.T, x *xhybrid.XLocations) []byte {
	t.Helper()
	o := chaosOptions()
	plan, err := xhybrid.PartitionCtx(context.Background(), x, xhybrid.Options{
		MISRSize: o.MISRSize, Q: o.Q, Strategy: o.Strategy, Seed: o.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func waitTerminal(t *testing.T, m *jobs.Manager, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := m.Get(context.Background(), id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for job %s (state %s)", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func resultJSON(t *testing.T, m *jobs.Manager, id string) []byte {
	t.Helper()
	plan, err := m.Result(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTransientFaultsAbsorbedByRetry: scattered one-off I/O failures on
// metadata renames, input reads and checkpoint writes must be retried
// away — the job completes with the exact reference plan.
func TestTransientFaultsAbsorbedByRetry(t *testing.T) {
	x := chaosInput(t)
	want := reference(t, x)

	fsys := Wrap(nil,
		&Fault{Op: OpRename, Base: "job.json", Fail: 2},
		&Fault{Op: OpRead, Base: "input.json", Fail: 1},
		&Fault{Op: OpWrite, Base: "checkpoint.json.tmp", Skip: 1, Fail: 1},
	)
	rec := obs.New()
	m, err := jobs.Open(t.TempDir(), jobs.Config{FS: fsys, Retry: fastRetry(), Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	meta, err := m.Submit(context.Background(), x, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, meta.ID)
	if st.State != jobs.StateDone {
		t.Fatalf("job = %s (error %q), want done despite transient faults", st.State, st.Error)
	}
	if got := resultJSON(t, m, meta.ID); !bytes.Equal(got, want) {
		t.Errorf("plan under transient faults differs from reference")
	}
	if got := fsys.Injected(); got != 4 {
		t.Errorf("injected faults = %d, want 4", got)
	}
	if got := rec.Snapshot().CounterValue("jobs.spool.retries"); got < 4 {
		t.Errorf("jobs.spool.retries = %d, want >= 4", got)
	}
}

// TestSlowReadersStillComplete: latency injection on every read path must
// only slow the job down, never change its result.
func TestSlowReadersStillComplete(t *testing.T) {
	x := chaosInput(t)
	want := reference(t, x)

	fsys := Wrap(nil, &Fault{Op: OpRead, Delay: 3 * time.Millisecond})
	m, err := jobs.Open(t.TempDir(), jobs.Config{FS: fsys, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	meta, err := m.Submit(context.Background(), x, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, meta.ID); st.State != jobs.StateDone {
		t.Fatalf("job = %s (error %q), want done", st.State, st.Error)
	}
	if got := resultJSON(t, m, meta.ID); !bytes.Equal(got, want) {
		t.Errorf("plan under slow readers differs from reference")
	}
}

// TestTornCheckpointFallsBackToPrevious is the torn-write drill: the
// second checkpoint is half-written (a filesystem that lied about
// atomicity), the third can never land because its rotation rename is
// dead, so the run aborts with a good previous checkpoint and a torn
// current one on disk. Recovery must decode-reject the torn file, resume
// from the previous checkpoint and land on the byte-identical plan.
func TestTornCheckpointFallsBackToPrevious(t *testing.T) {
	dir := t.TempDir()
	x := chaosInput(t)
	want := reference(t, x)

	fsys := Wrap(nil,
		// Second checkpoint body is torn in half (rename still succeeds).
		&Fault{Op: OpWrite, Base: "checkpoint.json.tmp", Skip: 1, Tear: true},
		// Third checkpoint's rotation rename fails forever: the sink
		// errors out and the run dies mid-flight, like a crash.
		&Fault{Op: OpRename, Base: "checkpoint.prev.json", Skip: 2, Fail: 1 << 20},
	)
	mA, err := jobs.Open(dir, jobs.Config{FS: fsys, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := mA.Submit(context.Background(), x, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, mA, meta.ID)
	if st.State != jobs.StateFailed {
		t.Fatalf("job under dead checkpoint rotation = %s, want failed", st.State)
	}
	mA.Stop()

	// The torn current checkpoint must really be on disk and undecodable.
	torn, err := os.ReadFile(filepath.Join(dir, meta.ID, "checkpoint.json"))
	if err != nil {
		t.Fatal(err)
	}
	if json.Valid(torn) {
		t.Fatalf("expected a torn (invalid JSON) current checkpoint, got %d valid bytes", len(torn))
	}

	// Model the crash: the process died before it could mark the job
	// failed, so the durable record says running.
	store, err := jobs.NewStore(dir, nil, jobs.RetryPolicy{}, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := store.ReadMeta(context.Background(), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	onDisk.State = jobs.StateRunning
	onDisk.Error = ""
	if err := store.WriteMeta(context.Background(), onDisk); err != nil {
		t.Fatal(err)
	}

	rec := obs.New()
	mB, err := jobs.Open(dir, jobs.Config{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer mB.Stop()
	if st := waitTerminal(t, mB, meta.ID); st.State != jobs.StateDone {
		t.Fatalf("recovered job = %s (error %q), want done", st.State, st.Error)
	}
	if got := resultJSON(t, mB, meta.ID); !bytes.Equal(got, want) {
		t.Errorf("plan recovered from torn checkpoint differs from reference")
	}
	if got := rec.Snapshot().CounterValue("jobs.recovered"); got != 1 {
		t.Errorf("jobs.recovered = %d, want 1", got)
	}
}

// TestDeadVolumeFailsSubmitCleanly: when every spool operation fails, a
// submission must come back with an error after the retry budget — no
// hang, no panic, no half-registered job.
func TestDeadVolumeFailsSubmitCleanly(t *testing.T) {
	fsys := Wrap(nil)
	m, err := jobs.Open(t.TempDir(), jobs.Config{FS: fsys, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	fsys.Kill(errors.New("volume detached"))
	if _, err := m.Submit(context.Background(), xhybrid.PaperExample(), chaosOptions()); err == nil {
		t.Fatal("Submit on a dead volume succeeded, want error")
	}
	list, err := m.List(context.Background())
	if err == nil && len(list) != 0 {
		t.Errorf("dead-volume submit left %d jobs registered", len(list))
	}
}

// TestQueueExhaustionUnderSlowIO: slow input reads hold the one run slot,
// the queue seat fills, and the next submission is refused with
// ErrQueueFull instead of piling up.
func TestQueueExhaustionUnderSlowIO(t *testing.T) {
	fsys := Wrap(nil, &Fault{Op: OpRead, Base: "input.json", Delay: 300 * time.Millisecond})
	m, err := jobs.Open(t.TempDir(), jobs.Config{MaxConcurrent: 1, MaxQueue: 1, FS: fsys, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	x := xhybrid.PaperExample()
	opts := jobs.Options{MISRSize: 16, Q: 2, Strategy: "paper", CheckpointEvery: 1}
	j1, err := m.Submit(context.Background(), x, opts)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if running, _ := m.Depth(); running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 1 never took the run slot")
		}
		time.Sleep(time.Millisecond)
	}
	j2, err := m.Submit(context.Background(), x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), x, opts); !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	for _, id := range []string{j1.ID, j2.ID} {
		if st := waitTerminal(t, m, id); st.State != jobs.StateDone {
			t.Errorf("job %s = %s (error %q), want done", id, st.State, st.Error)
		}
	}
}

// TestFaultMatching pins the rule engine itself: op/base filters, skip
// arming, fail counts, one-shot tears and the kill switch.
func TestFaultMatching(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")

	fsys := Wrap(nil, &Fault{Op: OpWrite, Base: "f.txt", Skip: 1, Fail: 2})
	if err := fsys.WriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatalf("skipped call failed: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := fsys.WriteFile(path, []byte("x"), 0o644); !errors.Is(err, ErrInjected) {
			t.Fatalf("armed call %d = %v, want ErrInjected", i, err)
		}
	}
	if err := fsys.WriteFile(path, []byte("after"), 0o644); err != nil {
		t.Fatalf("exhausted fault still fired: %v", err)
	}
	if got := fsys.Injected(); got != 2 {
		t.Errorf("Injected = %d, want 2", got)
	}
	// Other ops and other files are untouched.
	if _, err := fsys.ReadFile(path); err != nil {
		t.Errorf("read hit a write fault: %v", err)
	}

	// Tear fires once and halves the payload.
	tearPath := filepath.Join(dir, "torn.bin")
	fsys = Wrap(nil, &Fault{Op: OpWrite, Base: "torn.bin", Tear: true})
	if err := fsys.WriteFile(tearPath, []byte("12345678"), 0o644); err != nil {
		t.Fatal(err)
	}
	half, err := os.ReadFile(tearPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(half) != "1234" {
		t.Errorf("torn write left %q, want half the payload", half)
	}
	if err := fsys.WriteFile(tearPath, []byte("12345678"), 0o644); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(tearPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(full) != "12345678" {
		t.Errorf("second write also torn: %q (tear must be one-shot)", full)
	}

	// Kill is global and sticky.
	boom := errors.New("boom")
	fsys.Kill(boom)
	if _, err := fsys.ReadFile(path); !errors.Is(err, boom) {
		t.Errorf("read after Kill = %v, want boom", err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "d"), 0o755); !errors.Is(err, boom) {
		t.Errorf("mkdir after Kill = %v, want boom", err)
	}
}
