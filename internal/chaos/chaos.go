// Package chaos is the fault-injection harness for the job spool. It
// wraps the jobs.FS seam with deterministic, rule-driven failures —
// transient I/O errors, torn (half-written) files, slow reads, dead
// volumes — so tests can prove the durability claims the spool makes:
// retries absorb transient faults, atomic-rename discipline plus the
// checkpoint rotation survive torn writes, and recovery always lands on a
// byte-identical plan.
//
// Faults are matched by operation and file base name and armed with a
// trigger count, so a scenario reads like a script: "the second rename of
// checkpoint.json fails twice, then works". Everything is mutex-guarded
// and counts are deterministic — no randomness, chaos you can replay.
package chaos

import (
	"errors"
	"io/fs"
	"os"
	"sync"
	"time"

	"xhybrid/internal/jobs"
)

// ErrInjected is the default error faults return; it is transient (the
// retry loop does not treat it as permanent).
var ErrInjected = errors.New("chaos: injected fault")

// Op names a filesystem operation a Fault can match.
type Op string

const (
	OpRead    Op = "read"
	OpWrite   Op = "write"
	OpRename  Op = "rename"
	OpMkdir   Op = "mkdir"
	OpReadDir Op = "readdir"
	OpRemove  Op = "remove"
)

// Fault is one injection rule. Zero fields match everything, so the empty
// Fault with Fail=1 fails the very next operation of any kind.
type Fault struct {
	// Op restricts the rule to one operation ("" matches all).
	Op Op
	// Base restricts the rule to files with this base name ("" matches
	// all). Rename matches on the destination.
	Base string
	// Skip arms the rule only after that many matching calls have passed
	// untouched (0 = immediately).
	Skip int
	// Fail makes the next Fail matching calls return Err without touching
	// the filesystem. 0 means the rule only delays/tears.
	Fail int
	// Err is the error failed calls return (nil = ErrInjected).
	Err error
	// Delay sleeps before the operation proceeds — slow-reader injection.
	Delay time.Duration
	// Tear applies to writes: the first matching call writes only the
	// first half of the data and reports success — the classic torn write
	// on a filesystem that lied about atomicity. One-shot.
	Tear bool

	skipped, failed int
	torn            bool
}

// FS wraps an inner jobs.FS with fault injection. The zero value is not
// usable; call Wrap.
type FS struct {
	inner jobs.FS

	mu     sync.Mutex
	faults []*Fault
	dead   error
	// Injected counts faults actually fired (fails + tears), for test
	// assertions.
	injected int
}

// Wrap returns a fault-injecting view of inner (nil means the real
// filesystem).
func Wrap(inner jobs.FS, faults ...*Fault) *FS {
	if inner == nil {
		inner = jobs.OSFS{}
	}
	return &FS{inner: inner, faults: faults}
}

// Add arms another fault at runtime.
func (c *FS) Add(f *Fault) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults = append(c.faults, f)
}

// Kill makes every subsequent operation fail with err (nil = ErrInjected)
// — the volume yanked out from under the process. It never recovers;
// tests reopen the spool with a fresh FS to model the restart.
func (c *FS) Kill(err error) {
	if err == nil {
		err = ErrInjected
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead = err
}

// Injected reports how many faults fired so far.
func (c *FS) Injected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// decide matches op/name against the armed faults and returns the action:
// a non-nil error to fail with, a delay to sleep, and whether to tear the
// write. Counting happens under the lock; sleeping never does.
func (c *FS) decide(op Op, name string) (fail error, delay time.Duration, tear bool) {
	base := ""
	if name != "" {
		base = filepathBase(name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		c.injected++
		return c.dead, 0, false
	}
	for _, f := range c.faults {
		if f.Op != "" && f.Op != op {
			continue
		}
		if f.Base != "" && f.Base != base {
			continue
		}
		if f.skipped < f.Skip {
			f.skipped++
			continue
		}
		delay += f.Delay
		if f.failed < f.Fail {
			f.failed++
			c.injected++
			err := f.Err
			if err == nil {
				err = ErrInjected
			}
			return err, delay, false
		}
		if f.Tear && !f.torn && op == OpWrite {
			f.torn = true
			c.injected++
			tear = true
		}
	}
	return nil, delay, tear
}

// filepathBase is path.Base for both separators without importing two
// path packages.
func filepathBase(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' || name[i] == '\\' {
			return name[i+1:]
		}
	}
	return name
}

func (c *FS) ReadFile(name string) ([]byte, error) {
	fail, delay, _ := c.decide(OpRead, name)
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail != nil {
		return nil, fail
	}
	return c.inner.ReadFile(name)
}

func (c *FS) WriteFile(name string, data []byte, perm os.FileMode) error {
	fail, delay, tear := c.decide(OpWrite, name)
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail != nil {
		return fail
	}
	if tear {
		return c.inner.WriteFile(name, data[:len(data)/2], perm)
	}
	return c.inner.WriteFile(name, data, perm)
}

func (c *FS) Rename(oldpath, newpath string) error {
	fail, delay, _ := c.decide(OpRename, newpath)
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail != nil {
		return fail
	}
	return c.inner.Rename(oldpath, newpath)
}

func (c *FS) MkdirAll(path string, perm os.FileMode) error {
	fail, delay, _ := c.decide(OpMkdir, path)
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail != nil {
		return fail
	}
	return c.inner.MkdirAll(path, perm)
}

func (c *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	fail, delay, _ := c.decide(OpReadDir, name)
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail != nil {
		return nil, fail
	}
	return c.inner.ReadDir(name)
}

func (c *FS) Remove(name string) error {
	fail, delay, _ := c.decide(OpRemove, name)
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail != nil {
		return fail
	}
	return c.inner.Remove(name)
}
