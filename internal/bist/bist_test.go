package bist

import (
	"testing"

	"xhybrid/internal/fault"
	"xhybrid/internal/flow"
	"xhybrid/internal/misr"
	"xhybrid/internal/netlist"
	"xhybrid/internal/scan"
	"xhybrid/internal/xcancel"
)

// sessionReportStub backs the pure-comparison tests.
var sessionReportStub = flow.VerifyReport{Halts: 2}

func setup(t *testing.T) (*netlist.Circuit, scan.Geometry, Config) {
	t.Helper()
	ckt, err := netlist.Generate(netlist.GenConfig{
		Name: "bist", ScanCells: 128, PIs: 6, XClusters: 4, XFanout: 4, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	geom := scan.MustGeometry(16, 8)
	cfg := Config{
		PRPGSize: 24, PRPGSeed: 7, Patterns: 48,
		Cancel: xcancel.Config{MISR: misr.MustStandard(16), Q: 3},
	}
	return ckt, geom, cfg
}

func TestValidate(t *testing.T) {
	ckt, geom, cfg := setup(t)
	bad := cfg
	bad.PRPGSize = 2
	if _, err := New(ckt, geom, bad); err == nil {
		t.Fatal("accepted tiny PRPG")
	}
	bad = cfg
	bad.Patterns = 0
	if _, err := New(ckt, geom, bad); err == nil {
		t.Fatal("accepted zero patterns")
	}
	bad = cfg
	bad.Cancel.Q = 0
	if _, err := New(ckt, geom, bad); err == nil {
		t.Fatal("accepted bad cancel config")
	}
	bad = cfg
	bad.Cancel.MISR = misr.MustStandard(32) // wider than 16 chains
	if _, err := New(ckt, geom, bad); err == nil {
		t.Fatal("accepted MISR wider than chains")
	}
	if _, err := New(ckt, scan.MustGeometry(8, 8), cfg); err == nil {
		t.Fatal("accepted mismatched geometry")
	}
}

func TestGoldenSessionReproducible(t *testing.T) {
	ckt, geom, cfg := setup(t)
	ct, err := New(ckt, geom, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ct.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ct.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if Detects(a, b) {
		t.Fatal("golden session not reproducible")
	}
	if a.Report.ObservableMasked != 0 {
		t.Fatal("golden session masked observable captures")
	}
	if a.Report.Halts == 0 || len(a.Parities) == 0 {
		t.Fatal("no canceling activity in golden session")
	}
	if prog := ct.Program(); prog == nil || len(prog.Partitions) == 0 {
		t.Fatal("no programmed partitions")
	}
}

func TestFaultDetection(t *testing.T) {
	ckt, geom, cfg := setup(t)
	ct, err := New(ckt, geom, cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := ct.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Sample(fault.AllFaults(ckt), 24, 9)
	detected := 0
	for _, f := range faults {
		f := f
		s, err := ct.Run(&f)
		if err != nil {
			t.Fatal(err)
		}
		if Detects(golden, s) {
			detected++
		}
	}
	// PRPG patterns plus signature comparison must catch a solid majority
	// of random stuck-at faults on this small design.
	if detected < len(faults)*6/10 {
		t.Fatalf("BIST detected only %d of %d faults", detected, len(faults))
	}
}

func TestDetectsComparisons(t *testing.T) {
	a := &Session{Parities: []int{0, 1}, Final: 5}
	a.Report = &sessionReportStub
	b := &Session{Parities: []int{0, 1}, Final: 5}
	b.Report = &sessionReportStub
	if Detects(a, b) {
		t.Fatal("identical sessions differ")
	}
	c := &Session{Parities: []int{1, 1}, Final: 5, Report: &sessionReportStub}
	if !Detects(a, c) {
		t.Fatal("parity difference missed")
	}
	d := &Session{Parities: []int{0, 1}, Final: 6, Report: &sessionReportStub}
	if !Detects(a, d) {
		t.Fatal("final signature difference missed")
	}
	e := &Session{Parities: []int{0}, Final: 5, Report: &sessionReportStub}
	if !Detects(a, e) {
		t.Fatal("parity count difference missed")
	}
}
