// Package bist wires the substrate into a STUMPS-style logic-BIST session:
// an on-chip PRPG (LFSR plus per-chain phase shifter) generates the scan
// loads, the circuit is simulated, and the responses run through the hybrid
// X-handling pipeline (partition masks, spatial compaction, X-canceling
// MISR). A faulty machine replays the *same* programmed session; the test
// fails when any programmed signature — or the halt schedule itself, which
// a shifted X profile disturbs — deviates from the golden run.
package bist

import (
	"fmt"

	"xhybrid/internal/atpg"
	"xhybrid/internal/core"
	"xhybrid/internal/fault"
	"xhybrid/internal/flow"
	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
	"xhybrid/internal/scan"
	"xhybrid/internal/sim"
	"xhybrid/internal/tester"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// Config parameterizes the self-test session.
type Config struct {
	// PRPGSize is the pattern-generator LFSR size.
	PRPGSize int
	// PRPGSeed seeds the LFSR (0 maps to 1).
	PRPGSeed uint64
	// TapsPerChain is the phase-shifter tap count per chain (default 3).
	TapsPerChain int
	// Patterns is the number of self-test patterns.
	Patterns int
	// Cancel is the X-canceling MISR configuration.
	Cancel xcancel.Config
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PRPGSize < 4 || c.PRPGSize > 64 {
		return fmt.Errorf("bist: PRPG size %d out of [4,64]", c.PRPGSize)
	}
	if c.Patterns < 1 {
		return fmt.Errorf("bist: need at least one pattern")
	}
	if c.TapsPerChain < 0 {
		return fmt.Errorf("bist: negative taps")
	}
	return c.Cancel.Validate()
}

// Controller drives self-test sessions for one circuit.
type Controller struct {
	cfg  Config
	ckt  *netlist.Circuit
	geom scan.Geometry
	// taps[w] are the LFSR stages XORed to feed chain w.
	taps  [][]int
	loads []logic.Vector
	pis   []logic.Vector
	prog  *flow.Program
}

// New builds a controller, generating the PRPG wiring and the session's
// stimuli, and programs the hybrid X-handling from a golden simulation.
func New(ckt *netlist.Circuit, geom scan.Geometry, cfg Config) (*Controller, error) {
	if cfg.TapsPerChain == 0 {
		cfg.TapsPerChain = 3
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ckt.ScanCells) != geom.Cells() {
		return nil, fmt.Errorf("bist: circuit has %d scan cells, geometry needs %d", len(ckt.ScanCells), geom.Cells())
	}
	if cfg.Cancel.MISR.Size > geom.Chains {
		return nil, fmt.Errorf("bist: %d-bit MISR wider than %d chains", cfg.Cancel.MISR.Size, geom.Chains)
	}
	ct := &Controller{cfg: cfg, ckt: ckt, geom: geom}

	// PRPG wiring: deterministic taps derived from the LFSR stream itself.
	lfsr, err := atpg.NewLFSR(cfg.PRPGSize, cfg.PRPGSeed)
	if err != nil {
		return nil, err
	}
	ct.taps = make([][]int, geom.Chains)
	for w := range ct.taps {
		seen := map[int]bool{}
		for len(ct.taps[w]) < cfg.TapsPerChain {
			t := int(lfsr.NextUint64() % uint64(cfg.PRPGSize))
			if !seen[t] {
				seen[t] = true
				ct.taps[w] = append(ct.taps[w], t)
			}
		}
	}

	// Generate the session stimuli: one PRPG cycle per shift position.
	piGen := atpg.NewGenerator(cfg.PRPGSeed ^ 0x5a5a)
	for p := 0; p < cfg.Patterns; p++ {
		load := make(logic.Vector, geom.Cells())
		for pos := 0; pos < geom.ChainLen; pos++ {
			lfsr.NextBit()
			state := lfsr.State()
			for w := 0; w < geom.Chains; w++ {
				bit := 0
				for _, t := range ct.taps[w] {
					bit ^= int(state >> uint(t) & 1)
				}
				load[geom.CellIndex(w, pos)] = logic.FromBit(bit)
			}
		}
		ct.loads = append(ct.loads, load)
		ct.pis = append(ct.pis, piGen.Pattern(len(ckt.PIs)))
	}

	// Golden simulation programs the hybrid session.
	set, err := ct.capture(sim.NoFault)
	if err != nil {
		return nil, err
	}
	m := xmap.FromResponses(set)
	prog, err := flow.Build(m, core.Params{Geom: geom, Cancel: cfg.Cancel},
		tester.Config{Channels: cfg.Cancel.MISR.Size, OverlapMaskLoad: true})
	if err != nil {
		return nil, err
	}
	ct.prog = prog
	return ct, nil
}

// Program returns the programmed hybrid session.
func (ct *Controller) Program() *flow.Program { return ct.prog }

// capture simulates the whole session under an optional fault.
func (ct *Controller) capture(f sim.Fault) (*scan.ResponseSet, error) {
	s := sim.New(ct.ckt)
	set := scan.NewResponseSet(ct.geom)
	for p := range ct.loads {
		cap, _, err := s.Capture(ct.loads[p], ct.pis[p], f)
		if err != nil {
			return nil, err
		}
		if err := set.Append(scan.Response{Geom: ct.geom, Values: cap}); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// Session is the observable outcome of one self-test run.
type Session struct {
	// Report is the hardware-model replay summary.
	Report *flow.VerifyReport
	// Parities flattens the halt signatures' parities in order.
	Parities []int
	// Final is the end-of-test MISR signature.
	Final uint64
}

// Run executes the golden (or fault-injected) session.
func (ct *Controller) Run(f *fault.Def) (*Session, error) {
	sf := sim.NoFault
	if f != nil {
		sf = sim.Fault{Node: f.Node, StuckAt: f.SA}
	}
	set, err := ct.capture(sf)
	if err != nil {
		return nil, err
	}
	rep, parities, final, err := replay(ct.prog, set)
	if err != nil {
		return nil, err
	}
	return &Session{Report: rep, Parities: parities, Final: final}, nil
}

// replay is flow.VerifyResponses plus signature extraction.
func replay(prog *flow.Program, set *scan.ResponseSet) (*flow.VerifyReport, []int, uint64, error) {
	rep, err := flow.VerifyResponses(prog, set)
	if err != nil {
		return nil, nil, 0, err
	}
	return rep, rep.SignatureParities, rep.FinalSignature, nil
}

// Detects compares a faulty session against the golden one. A fault is
// caught when a programmed signature differs, the end-of-test signature
// differs, or the halt schedule itself shifted (a disturbed X profile
// invalidates the programmed canceling sequence, which hardware flags).
func Detects(golden, faulty *Session) bool {
	if golden.Report.Halts != faulty.Report.Halts {
		return true
	}
	if len(golden.Parities) != len(faulty.Parities) {
		return true
	}
	for i := range golden.Parities {
		if golden.Parities[i] != faulty.Parities[i] {
			return true
		}
	}
	return golden.Final != faulty.Final
}
