// Package tester models the automatic test equipment (ATE) side of the
// hybrid architecture at cycle granularity: scan shifting, loading the
// shared mask image at partition boundaries over a limited number of tester
// channels, and the scan halts of the time-multiplexed X-canceling MISR.
//
// The paper's normalized test-time equation (1 + n*x*q/(m-q)) corresponds
// to this model with 32 channels and a 32-bit MISR — each halt's m*q
// selection bits take exactly q channel cycles — plus free (overlapped)
// mask loading. The package exposes the knobs the paper holds fixed so
// their effect can be measured.
package tester

import (
	"fmt"

	"xhybrid/internal/scan"
)

// Config describes the tester resources.
type Config struct {
	// Channels is the number of tester channels delivering control data
	// (the paper uses 32).
	Channels int
	// OverlapMaskLoad lets the next partition's mask image stream in while
	// the previous pattern is still shifting (standard double-buffered
	// mask registers). When false every mask load stalls the test.
	OverlapMaskLoad bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels < 1 {
		return fmt.Errorf("tester: need at least one channel, got %d", c.Channels)
	}
	return nil
}

// Plan is the abstract workload the ATE must apply.
type Plan struct {
	// Geom is the scan geometry (shift cycles per pattern = ChainLen).
	Geom scan.Geometry
	// PartitionOf maps each applied pattern, in application order, to its
	// partition id; a mask image is (re)loaded whenever the id changes.
	PartitionOf []int
	// MaskBitsPerImage is the size of one mask image (Geom.Cells() for
	// per-cell masks).
	MaskBitsPerImage int
	// Halts is the number of X-canceling scan halts.
	Halts int
	// MISRSize and Q configure the canceling MISR (each halt extracts Q
	// combinations of MISRSize selection bits).
	MISRSize int
	Q        int
}

// Validate checks the plan.
func (p Plan) Validate() error {
	if err := p.Geom.Validate(); err != nil {
		return err
	}
	if len(p.PartitionOf) == 0 {
		return fmt.Errorf("tester: empty pattern order")
	}
	if p.MaskBitsPerImage < 0 || p.Halts < 0 {
		return fmt.Errorf("tester: negative plan component")
	}
	if p.MISRSize < 1 || p.Q < 1 || p.Q >= p.MISRSize {
		return fmt.Errorf("tester: invalid MISR config m=%d q=%d", p.MISRSize, p.Q)
	}
	return nil
}

// Schedule is the cycle-accurate accounting of one test application.
type Schedule struct {
	// ShiftCycles is patterns * ChainLen.
	ShiftCycles int
	// MaskLoads is the number of mask-image (re)loads.
	MaskLoads int
	// MaskLoadCycles is the stall caused by mask loading (0 when loads
	// fully overlap shifting).
	MaskLoadCycles int
	// HaltCycles is the scan-halt time of the canceling MISR, including
	// selection-data delivery when it exceeds the extraction time.
	HaltCycles int
	// TotalCycles is the sum of the above.
	TotalCycles int
}

// Normalized returns TotalCycles / ShiftCycles (1.0 = pure shifting, the
// paper's X-masking-only reference).
func (s Schedule) Normalized() float64 {
	if s.ShiftCycles == 0 {
		return 1
	}
	return float64(s.TotalCycles) / float64(s.ShiftCycles)
}

// Compute derives the schedule for a plan on a tester configuration.
func Compute(p Plan, cfg Config) (Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return Schedule{}, err
	}
	if err := p.Validate(); err != nil {
		return Schedule{}, err
	}
	var s Schedule
	s.ShiftCycles = len(p.PartitionOf) * p.Geom.ChainLen

	// Mask loads at every partition-id change (and one initial load).
	loadCycles := ceilDiv(p.MaskBitsPerImage, cfg.Channels)
	prev := -1
	for i, part := range p.PartitionOf {
		if part == prev {
			continue
		}
		prev = part
		s.MaskLoads++
		switch {
		case i == 0:
			// Nothing to overlap with; the first image always stalls.
			s.MaskLoadCycles += loadCycles
		case cfg.OverlapMaskLoad:
			// Streaming during the previous pattern's ChainLen shift
			// cycles; only the excess stalls.
			if loadCycles > p.Geom.ChainLen {
				s.MaskLoadCycles += loadCycles - p.Geom.ChainLen
			}
		default:
			s.MaskLoadCycles += loadCycles
		}
	}

	// Each halt spends q extraction cycles; its m*q selection bits need
	// ceil(m*q/channels) delivery cycles, which dominate when channels are
	// scarce. With channels = m the two are equal — the paper's model.
	perHalt := p.Q
	if d := ceilDiv(p.MISRSize*p.Q, cfg.Channels); d > perHalt {
		perHalt = d
	}
	s.HaltCycles = p.Halts * perHalt

	s.TotalCycles = s.ShiftCycles + s.MaskLoadCycles + s.HaltCycles
	return s, nil
}

// OrderedByPartition returns a PartitionOf sequence with each partition's
// patterns applied contiguously (minimum mask reloads: one per partition).
func OrderedByPartition(partitionSizes []int) []int {
	var out []int
	for id, n := range partitionSizes {
		for i := 0; i < n; i++ {
			out = append(out, id)
		}
	}
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
