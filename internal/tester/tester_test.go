package tester

import (
	"strings"
	"testing"
	"testing/quick"

	"xhybrid/internal/scan"
)

func basePlan() Plan {
	return Plan{
		Geom:             scan.MustGeometry(32, 100),
		PartitionOf:      OrderedByPartition([]int{3, 2}),
		MaskBitsPerImage: 3200,
		Halts:            10,
		MISRSize:         32,
		Q:                7,
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{Channels: 0}).Validate(); err == nil {
		t.Fatal("accepted zero channels")
	}
	p := basePlan()
	p.PartitionOf = nil
	if err := p.Validate(); err == nil {
		t.Fatal("accepted empty order")
	}
	p = basePlan()
	p.Q = 32
	if err := p.Validate(); err == nil {
		t.Fatal("accepted q = m")
	}
	p = basePlan()
	p.Halts = -1
	if err := p.Validate(); err == nil {
		t.Fatal("accepted negative halts")
	}
	if _, err := Compute(basePlan(), Config{Channels: 0}); err == nil {
		t.Fatal("Compute accepted bad config")
	}
	if _, err := Compute(Plan{}, Config{Channels: 1}); err == nil {
		t.Fatal("Compute accepted bad plan")
	}
}

// TestPlanValidateTable walks every rejection branch of Plan.Validate with
// the specific field that breaks it, plus the messages errors must carry so
// callers can tell which plan component to fix.
func TestPlanValidateTable(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Plan)
		wantErr string // "" means the plan must validate
	}{
		{"base plan valid", func(p *Plan) {}, ""},
		{"zero chains", func(p *Plan) { p.Geom.Chains = 0 }, "chain count"},
		{"negative chains", func(p *Plan) { p.Geom.Chains = -4 }, "chain count"},
		{"zero chain length", func(p *Plan) { p.Geom.ChainLen = 0 }, "chain length"},
		{"empty pattern order", func(p *Plan) { p.PartitionOf = nil }, "empty pattern order"},
		{"negative mask image", func(p *Plan) { p.MaskBitsPerImage = -1 }, "negative plan component"},
		{"negative halts", func(p *Plan) { p.Halts = -1 }, "negative plan component"},
		{"zero MISR size", func(p *Plan) { p.MISRSize = 0 }, "invalid MISR config"},
		{"zero q", func(p *Plan) { p.Q = 0 }, "invalid MISR config"},
		{"q equals m", func(p *Plan) { p.Q = 32 }, "invalid MISR config"},
		{"q above m", func(p *Plan) { p.Q = 33 }, "invalid MISR config"},
		{"q=m-1 boundary valid", func(p *Plan) { p.Q = 31 }, ""},
		{"zero mask image valid", func(p *Plan) { p.MaskBitsPerImage = 0 }, ""},
		{"zero halts valid", func(p *Plan) { p.Halts = 0 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := basePlan()
			tc.mutate(&p)
			err := p.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected valid plan: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("accepted invalid plan")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q, want it to mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestOrderedByPartition(t *testing.T) {
	order := OrderedByPartition([]int{2, 1, 3})
	want := []int{0, 0, 1, 2, 2, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// With channels = MISR size, each halt costs exactly q cycles — the
// paper's normalized test-time model.
func TestHaltCostMatchesPaperModel(t *testing.T) {
	p := basePlan()
	p.MaskBitsPerImage = 0 // isolate halting
	s, err := Compute(p, Config{Channels: 32})
	if err != nil {
		t.Fatal(err)
	}
	if s.HaltCycles != 10*7 {
		t.Fatalf("HaltCycles = %d, want 70", s.HaltCycles)
	}
	if s.ShiftCycles != 5*100 {
		t.Fatalf("ShiftCycles = %d", s.ShiftCycles)
	}
	want := 1 + float64(70)/float64(500)
	if got := s.Normalized(); got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("Normalized = %v, want %v", got, want)
	}
}

func TestScarceChannelsInflateHalts(t *testing.T) {
	p := basePlan()
	p.MaskBitsPerImage = 0
	s8, err := Compute(p, Config{Channels: 8})
	if err != nil {
		t.Fatal(err)
	}
	// 32*7 = 224 bits over 8 channels = 28 cycles per halt > q = 7.
	if s8.HaltCycles != 10*28 {
		t.Fatalf("HaltCycles = %d, want 280", s8.HaltCycles)
	}
}

func TestMaskLoadAccounting(t *testing.T) {
	p := basePlan() // partitions: 3 then 2 patterns -> 2 loads
	// 3200 bits over 32 channels = 100 cycles per load.
	serial, err := Compute(p, Config{Channels: 32})
	if err != nil {
		t.Fatal(err)
	}
	if serial.MaskLoads != 2 || serial.MaskLoadCycles != 200 {
		t.Fatalf("serial loads=%d cycles=%d, want 2/200", serial.MaskLoads, serial.MaskLoadCycles)
	}
	// Overlapped: second load hides behind the 100 shift cycles entirely;
	// the first still stalls.
	over, err := Compute(p, Config{Channels: 32, OverlapMaskLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	if over.MaskLoadCycles != 100 {
		t.Fatalf("overlapped MaskLoadCycles = %d, want 100", over.MaskLoadCycles)
	}
	// With fewer channels the image no longer fits behind one pattern.
	slow, err := Compute(p, Config{Channels: 16, OverlapMaskLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	// load = 200 cycles; first stalls 200, second stalls 200-100.
	if slow.MaskLoadCycles != 300 {
		t.Fatalf("MaskLoadCycles = %d, want 300", slow.MaskLoadCycles)
	}
}

func TestInterleavedOrderCostsMoreLoads(t *testing.T) {
	p := basePlan()
	p.PartitionOf = []int{0, 1, 0, 1, 0} // worst case: reload every pattern
	s, err := Compute(p, Config{Channels: 32})
	if err != nil {
		t.Fatal(err)
	}
	if s.MaskLoads != 5 {
		t.Fatalf("MaskLoads = %d, want 5", s.MaskLoads)
	}
	sorted := basePlan()
	ss, err := Compute(sorted, Config{Channels: 32})
	if err != nil {
		t.Fatal(err)
	}
	if ss.TotalCycles >= s.TotalCycles {
		t.Fatal("partition-sorted order not cheaper than interleaved")
	}
}

// Property: total = shift + masks + halts, and normalization is >= 1.
func TestScheduleConsistency(t *testing.T) {
	f := func(np, halts, channels uint8) bool {
		p := Plan{
			Geom:             scan.MustGeometry(8, 16),
			PartitionOf:      OrderedByPartition([]int{int(np%5) + 1, 2}),
			MaskBitsPerImage: 128,
			Halts:            int(halts % 40),
			MISRSize:         16,
			Q:                3,
		}
		cfg := Config{Channels: int(channels%64) + 1}
		s, err := Compute(p, cfg)
		if err != nil {
			return false
		}
		return s.TotalCycles == s.ShiftCycles+s.MaskLoadCycles+s.HaltCycles &&
			s.Normalized() >= 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedEmptySchedule(t *testing.T) {
	if (Schedule{}).Normalized() != 1 {
		t.Fatal("empty schedule should normalize to 1")
	}
}
