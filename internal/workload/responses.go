package workload

import (
	"fmt"
	"math/rand"

	"xhybrid/internal/logic"
	"xhybrid/internal/scan"
	"xhybrid/internal/xmap"
)

// ResponsesFromXMap synthesizes a fully specified response set consistent
// with an X-map: every mapped location captures X, every other cell a
// pseudo-random known value. This lets the cycle-level machinery (masking
// stage, compactor, X-canceling sessions) run on the statistical workloads,
// whose generator only decides where the X's are.
func ResponsesFromXMap(m *xmap.XMap, g scan.Geometry, seed int64) (*scan.ResponseSet, error) {
	if m.Cells() != g.Cells() {
		return nil, fmt.Errorf("workload: X-map has %d cells, geometry %d", m.Cells(), g.Cells())
	}
	r := rand.New(rand.NewSource(seed))
	set := scan.NewResponseSet(g)
	for p := 0; p < m.Patterns(); p++ {
		resp := scan.Response{Geom: g, Values: make(logic.Vector, g.Cells())}
		for c := range resp.Values {
			resp.Values[c] = logic.V(r.Intn(2))
		}
		for _, c := range m.PatternCells(p) {
			resp.Values[c] = logic.X
		}
		if err := set.Append(resp); err != nil {
			return nil, err
		}
	}
	return set, nil
}
