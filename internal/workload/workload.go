// Package workload synthesizes output-response X-maps with the statistical
// structure the paper reports for its industrial designs: a small fraction
// of X-prone scan cells capturing most of the X's, and strongly
// inter-correlated clusters — groups of cells that capture X's under the
// same subset of test patterns (the signature of a shared X source such as
// an uninitialized memory block behind common select logic).
//
// The paper's designs (CKT-A/B/C) are proprietary; these profiles are the
// documented substitution (see DESIGN.md): every algorithm under test
// consumes only the X-location map and the scan geometry, both of which the
// generator reproduces with the published densities and correlation
// structure.
package workload

import (
	"fmt"
	"math/rand"

	"xhybrid/internal/scan"
	"xhybrid/internal/xmap"
)

// Profile parameterizes one synthetic design.
type Profile struct {
	// Name labels the design.
	Name string
	// Chains and ChainLen define the scan geometry.
	Chains   int
	ChainLen int
	// Patterns is the number of test patterns.
	Patterns int
	// XDensity is the target fraction of response bits that are X.
	XDensity float64
	// StructuredFraction is the share of X's that belong to correlated
	// clusters; the rest is background noise on X-prone cells.
	StructuredFraction float64
	// Clusters is the number of correlated X clusters.
	Clusters int
	// ClusterPatterns is the base number of patterns a cluster fires on
	// (cluster i uses ClusterPatterns + i to keep equal-count groups
	// distinct).
	ClusterPatterns int
	// BackgroundCellFraction is the share of all cells eligible for
	// background X's (the X-prone set outside the clusters).
	BackgroundCellFraction float64
	// DropoutCellsPerCluster perturbs this many cells per cluster by one
	// pattern, mirroring the paper's "172 of 177 cells share the same 406
	// patterns" observation.
	DropoutCellsPerCluster int
	// OverlapFraction makes each cluster reuse this share of the previous
	// cluster's pattern set (0 = disjoint cluster pattern sets, the
	// realistic default; >0 is an ablation knob that blows up the
	// partition count).
	OverlapFraction float64
	// SpatialClusters places cluster cells at contiguous scan positions
	// (adjacent cells of a chain, as captured RAM outputs are), giving the
	// workload intra- as well as inter-correlation.
	SpatialClusters bool
	// Seed drives all sampling.
	Seed int64
}

// Geometry returns the scan geometry of the profile.
func (p Profile) Geometry() scan.Geometry {
	return scan.Geometry{Chains: p.Chains, ChainLen: p.ChainLen}
}

// Validate checks that the profile is generable.
func (p Profile) Validate() error {
	if err := p.Geometry().Validate(); err != nil {
		return err
	}
	if p.Patterns <= 0 {
		return fmt.Errorf("workload: non-positive pattern count")
	}
	if p.XDensity < 0 || p.XDensity > 1 {
		return fmt.Errorf("workload: X density %f out of [0,1]", p.XDensity)
	}
	if p.StructuredFraction < 0 || p.StructuredFraction > 1 {
		return fmt.Errorf("workload: structured fraction %f out of [0,1]", p.StructuredFraction)
	}
	if p.OverlapFraction < 0 || p.OverlapFraction > 1 {
		return fmt.Errorf("workload: overlap fraction %f out of [0,1]", p.OverlapFraction)
	}
	if p.Clusters < 0 || (p.Clusters > 0 && p.ClusterPatterns <= 0) {
		return fmt.Errorf("workload: invalid cluster configuration")
	}
	if p.BackgroundCellFraction < 0 || p.BackgroundCellFraction > 1 {
		return fmt.Errorf("workload: background cell fraction out of [0,1]")
	}
	return nil
}

// Generate synthesizes the X-map.
func (p Profile) Generate() (*xmap.XMap, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(p.Seed))
	cells := p.Chains * p.ChainLen
	m := xmap.New(p.Patterns, cells)

	totalX := int(p.XDensity * float64(cells) * float64(p.Patterns))
	structuredX := int(p.StructuredFraction * float64(totalX))
	if p.Clusters == 0 {
		structuredX = 0
	}

	cellPerm := r.Perm(cells)
	if p.SpatialClusters {
		// Identity order with a random rotation: takeCells then hands out
		// contiguous (chain-adjacent) cell ranges.
		offset := r.Intn(cells)
		for i := range cellPerm {
			cellPerm[i] = (offset + i) % cells
		}
	}
	nextCell := 0
	takeCells := func(n int) ([]int, error) {
		if nextCell+n > len(cellPerm) {
			return nil, fmt.Errorf("workload: cell pool exhausted (need %d more of %d)", n, cells)
		}
		out := cellPerm[nextCell : nextCell+n]
		nextCell += n
		return out, nil
	}

	patPerm := r.Perm(p.Patterns)
	nextPat := 0
	var prevSet []int
	takePatterns := func(n int) ([]int, error) {
		reuse := 0
		if p.OverlapFraction > 0 && prevSet != nil {
			reuse = int(p.OverlapFraction * float64(n))
			if reuse > len(prevSet) {
				reuse = len(prevSet)
			}
		}
		fresh := n - reuse
		if nextPat+fresh > len(patPerm) {
			return nil, fmt.Errorf("workload: pattern pool exhausted; reduce clusters or ClusterPatterns")
		}
		set := append([]int{}, prevSet[:reuse]...)
		set = append(set, patPerm[nextPat:nextPat+fresh]...)
		nextPat += fresh
		prevSet = set
		return set, nil
	}

	// Structured clusters.
	placed := 0
	for g := 0; g < p.Clusters && structuredX > 0; g++ {
		t := p.ClusterPatterns + g
		if t > p.Patterns {
			t = p.Patterns
		}
		quota := structuredX / p.Clusters
		nCells := quota / t
		if nCells < 1 {
			nCells = 1
		}
		clusterCells, err := takeCells(nCells)
		if err != nil {
			return nil, err
		}
		pats, err := takePatterns(t)
		if err != nil {
			return nil, err
		}
		for ci, c := range clusterCells {
			set := pats
			if ci < p.DropoutCellsPerCluster {
				// Swap one member for a random outside pattern.
				set = append([]int{}, pats...)
				set[r.Intn(len(set))] = r.Intn(p.Patterns)
			}
			for _, pat := range set {
				if !m.Has(pat, c) {
					m.Add(pat, c)
					placed++
				}
			}
		}
	}

	// Background noise on a dedicated X-prone cell set.
	need := totalX - placed
	if need > 0 {
		bgCount := int(p.BackgroundCellFraction * float64(cells))
		if bgCount < 1 {
			bgCount = 1
		}
		bgCells, err := takeCells(bgCount)
		if err != nil {
			return nil, err
		}
		capacity := bgCount * p.Patterns
		if need > capacity {
			return nil, fmt.Errorf("workload: background needs %d X's but only %d slots; raise BackgroundCellFraction", need, capacity)
		}
		attempts := 0
		for need > 0 {
			pat := r.Intn(p.Patterns)
			c := bgCells[r.Intn(bgCount)]
			if !m.Has(pat, c) {
				m.Add(pat, c)
				need--
			}
			attempts++
			if attempts > 50*capacity {
				return nil, fmt.Errorf("workload: background sampling stalled")
			}
		}
	}
	return m, nil
}

// The paper's three industrial designs, with geometry derived from Table 1
// (505,050 / 36,075 / 97,643 cells share a 481-cell chain length consistent
// with the published normalized test times at m=32, q=7), 3000 patterns, and
// cluster structure calibrated so the proposed method's accounting lands in
// the published range. See DESIGN.md for the derivation.

// CKTA is the 505,050-cell, 0.05%-X-density profile.
func CKTA() Profile {
	return Profile{
		Name: "CKT-A", Chains: 1050, ChainLen: 481, Patterns: 3000,
		XDensity:           0.0005,
		StructuredFraction: 0.36,
		Clusters:           1, ClusterPatterns: 450,
		BackgroundCellFraction: 0.01,
		DropoutCellsPerCluster: 3,
		Seed:                   0xA,
	}
}

// CKTB is the 36,075-cell, 2.75%-X-density profile.
func CKTB() Profile {
	return Profile{
		Name: "CKT-B", Chains: 75, ChainLen: 481, Patterns: 3000,
		XDensity:           0.0275,
		StructuredFraction: 0.55,
		Clusters:           6, ClusterPatterns: 400,
		BackgroundCellFraction: 0.05,
		DropoutCellsPerCluster: 5,
		Seed:                   0xB,
	}
}

// CKTC is the 97,643-cell, 2.38%-X-density profile.
func CKTC() Profile {
	return Profile{
		Name: "CKT-C", Chains: 203, ChainLen: 481, Patterns: 3000,
		XDensity:           0.0238,
		StructuredFraction: 0.35,
		Clusters:           5, ClusterPatterns: 500,
		BackgroundCellFraction: 0.05,
		DropoutCellsPerCluster: 5,
		Seed:                   0xC,
	}
}

// Profiles returns the three paper designs in Table 1 order.
func Profiles() []Profile { return []Profile{CKTA(), CKTB(), CKTC()} }

// Scaled returns a proportionally shrunken copy of a profile (1/factor of
// the chains and patterns), for fast tests and examples.
func Scaled(p Profile, factor int) Profile {
	if factor < 1 {
		factor = 1
	}
	p.Name = fmt.Sprintf("%s/%d", p.Name, factor)
	p.Chains = max(1, p.Chains/factor)
	p.Patterns = max(8, p.Patterns/factor)
	p.ClusterPatterns = max(2, p.ClusterPatterns/factor)
	if (p.ClusterPatterns+p.Clusters)*p.Clusters > p.Patterns {
		p.ClusterPatterns = max(2, p.Patterns/(2*max(1, p.Clusters)))
	}
	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
