package workload

import (
	"fmt"

	"xhybrid/internal/atpg"
	"xhybrid/internal/netlist"
	"xhybrid/internal/scan"
	"xhybrid/internal/sim"
	"xhybrid/internal/xmap"
)

// FromCircuit produces a workload by actually simulating a gate-level
// circuit: pseudo-random LFSR stimuli are applied, captured responses are
// collected (in scan-cell order, mapped onto the geometry), and the X-map
// is derived from them. The scan-cell count of the circuit must equal
// geom.Cells().
func FromCircuit(c *netlist.Circuit, geom scan.Geometry, patterns int, seed uint64) (*scan.ResponseSet, *xmap.XMap, error) {
	if len(c.ScanCells) != geom.Cells() {
		return nil, nil, fmt.Errorf("workload: circuit has %d scan cells, geometry needs %d", len(c.ScanCells), geom.Cells())
	}
	if patterns <= 0 {
		return nil, nil, fmt.Errorf("workload: non-positive pattern count")
	}
	st := atpg.GenerateStimuli(patterns, len(c.ScanCells), len(c.PIs), seed)
	ps := sim.NewParallel(c)
	set := scan.NewResponseSet(geom)
	for base := 0; base < patterns; base += 64 {
		end := base + 64
		if end > patterns {
			end = patterns
		}
		caps, err := ps.Capture(st.Loads[base:end], st.PIs[base:end])
		if err != nil {
			return nil, nil, err
		}
		for _, cap := range caps {
			resp := scan.Response{Geom: geom, Values: cap}
			if err := set.Append(resp); err != nil {
				return nil, nil, err
			}
		}
	}
	return set, xmap.FromResponses(set), nil
}
