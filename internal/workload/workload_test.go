package workload

import (
	"testing"

	"xhybrid/internal/correlation"
	"xhybrid/internal/netlist"
	"xhybrid/internal/scan"
	"xhybrid/internal/xmap"
)

func TestValidate(t *testing.T) {
	bad := []Profile{
		{Chains: 0, ChainLen: 1, Patterns: 1},
		{Chains: 1, ChainLen: 1, Patterns: 0},
		{Chains: 1, ChainLen: 1, Patterns: 1, XDensity: 2},
		{Chains: 1, ChainLen: 1, Patterns: 1, StructuredFraction: -1},
		{Chains: 1, ChainLen: 1, Patterns: 1, OverlapFraction: 2},
		{Chains: 1, ChainLen: 1, Patterns: 1, Clusters: 1, ClusterPatterns: 0},
		{Chains: 1, ChainLen: 1, Patterns: 1, BackgroundCellFraction: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, p)
		}
	}
	if err := CKTB().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaledGenerateDensity(t *testing.T) {
	p := Scaled(CKTB(), 10) // 7 chains x 481, 300 patterns
	m, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if m.Patterns() != 300 || m.Cells() != p.Chains*p.ChainLen {
		t.Fatalf("dims %dx%d", m.Patterns(), m.Cells())
	}
	// Density must land near the target (exact up to rounding).
	want := p.XDensity
	got := m.Density()
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("density = %f, want ~%f", got, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Scaled(CKTB(), 20)
	a, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same profile, different X-maps")
	}
	p2 := p
	p2.Seed++
	c, err := p2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("different seeds, identical X-maps")
	}
}

// The generator must produce the paper's correlation structure: large
// equal-count groups of cells sharing identical pattern signatures.
func TestClusterStructure(t *testing.T) {
	p := Scaled(CKTB(), 10)
	m, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	a := correlation.Analyze(m)
	lg, ok := a.LargestGroup()
	if !ok {
		t.Fatal("no groups")
	}
	// The largest group must be a cluster (dozens of cells), not noise.
	if lg.Size() < 20 {
		t.Fatalf("largest group has %d cells; cluster structure missing", lg.Size())
	}
	// Most of its cells share the exact same pattern signature.
	if ic := a.InterCorrelation(lg); ic < 0.8 {
		t.Fatalf("inter-correlation = %f, want >= 0.8", ic)
	}
	// X's are concentrated: 90% of X's in a small fraction of cells.
	if frac := a.ConcentrationCellFraction(0.90); frac > 0.2 {
		t.Fatalf("90%% of X's in %f of cells; want concentration", frac)
	}
}

func TestProfilesList(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 || ps[0].Name != "CKT-A" || ps[1].Name != "CKT-B" || ps[2].Name != "CKT-C" {
		t.Fatalf("Profiles = %+v", ps)
	}
	// Geometry products match the paper's scan-cell counts.
	wantCells := []int{505050, 36075, 97643}
	for i, p := range ps {
		if got := p.Chains * p.ChainLen; got != wantCells[i] {
			t.Fatalf("%s cells = %d, want %d", p.Name, got, wantCells[i])
		}
	}
}

func TestBackgroundCapacityError(t *testing.T) {
	p := Profile{
		Name: "tiny", Chains: 2, ChainLen: 2, Patterns: 4,
		XDensity: 0.9, BackgroundCellFraction: 0.1, // 1 bg cell * 4 patterns < 14 X's
	}
	if _, err := p.Generate(); err == nil {
		t.Fatal("accepted impossible background demand")
	}
}

func TestOverlapFractionSharesPatterns(t *testing.T) {
	p := Scaled(CKTB(), 10)
	p.OverlapFraction = 0.5
	if _, err := p.Generate(); err != nil {
		t.Fatal(err)
	}
}

func xmapFrom(set *scan.ResponseSet) *xmap.XMap { return xmap.FromResponses(set) }

func TestResponsesFromXMap(t *testing.T) {
	p := Scaled(CKTB(), 20)
	m, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	set, err := ResponsesFromXMap(m, p.Geometry(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if set.Patterns() != m.Patterns() {
		t.Fatal("pattern count mismatch")
	}
	if set.TotalX() != m.TotalX() {
		t.Fatalf("responses carry %d X's, map has %d", set.TotalX(), m.TotalX())
	}
	// Round trip: deriving the X-map back gives the original.
	if !xmapFrom(set).Equal(m) {
		t.Fatal("X locations not preserved")
	}
	// Geometry mismatch errors.
	if _, err := ResponsesFromXMap(m, scan.MustGeometry(1, 1), 3); err == nil {
		t.Fatal("accepted mismatched geometry")
	}
}

func TestSpatialClustersIntraCorrelation(t *testing.T) {
	p := Scaled(CKTB(), 10)
	p.SpatialClusters = true
	m, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	intra := correlation.AnalyzeIntra(m, p.Geometry())
	if intra.AdjacentFraction < 0.3 {
		t.Fatalf("spatial clusters give adjacent fraction %f, want substantial", intra.AdjacentFraction)
	}
	// The scattered default has far weaker spatial correlation.
	p2 := Scaled(CKTB(), 10)
	m2, err := p2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	scattered := correlation.AnalyzeIntra(m2, p2.Geometry())
	if scattered.AdjacentFraction >= intra.AdjacentFraction {
		t.Fatalf("scattered %f not below spatial %f", scattered.AdjacentFraction, intra.AdjacentFraction)
	}
	// Density target still met.
	if d := m.Density(); d < p.XDensity*0.95 || d > p.XDensity*1.05 {
		t.Fatalf("spatial density = %f, want ~%f", d, p.XDensity)
	}
}

func TestFromCircuit(t *testing.T) {
	c, err := netlist.Generate(netlist.GenConfig{
		Name: "wl", ScanCells: 48, PIs: 6, XClusters: 3, XFanout: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	geom := scan.MustGeometry(8, 6)
	set, m, err := FromCircuit(c, geom, 100, 13)
	if err != nil {
		t.Fatal(err)
	}
	if set.Patterns() != 100 || m.Patterns() != 100 {
		t.Fatal("pattern count wrong")
	}
	if m.TotalX() != set.TotalX() {
		t.Fatal("X-map inconsistent with responses")
	}
	if m.TotalX() == 0 {
		t.Fatal("circuit workload produced no X's")
	}
	// Geometry mismatch must error.
	if _, _, err := FromCircuit(c, scan.MustGeometry(7, 6), 10, 1); err == nil {
		t.Fatal("accepted mismatched geometry")
	}
	if _, _, err := FromCircuit(c, geom, 0, 1); err == nil {
		t.Fatal("accepted zero patterns")
	}
}
