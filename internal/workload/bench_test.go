package workload

import (
	"testing"

	"xhybrid/internal/netlist"
	"xhybrid/internal/scan"
)

func benchCircuit() (*netlist.Circuit, error) {
	return netlist.Generate(netlist.GenConfig{
		Name: "wlbench", ScanCells: 256, PIs: 16, XClusters: 8, XFanout: 5, Seed: 2,
	})
}

func BenchmarkGenerateCKTBQuarter(b *testing.B) {
	p := Scaled(CKTB(), 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateCustomDense(b *testing.B) {
	p := Profile{
		Name: "dense", Chains: 32, ChainLen: 128, Patterns: 512,
		XDensity: 0.05, StructuredFraction: 0.5,
		Clusters: 4, ClusterPatterns: 64,
		BackgroundCellFraction: 0.1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFromCircuit(b *testing.B) {
	c, err := benchCircuit()
	if err != nil {
		b.Fatal(err)
	}
	geom := scan.MustGeometry(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FromCircuit(c, geom, 128, 7); err != nil {
			b.Fatal(err)
		}
	}
}
