package fault

import (
	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// Class is one equivalence class of collapsed faults.
type Class struct {
	// Rep is the representative fault (the root of the inverter/buffer
	// chain).
	Rep Def
	// Members are all faults in the class, including Rep.
	Members []Def
}

// Collapse merges structurally equivalent stuck-at faults: a fault on a
// buffer's output is equivalent to the same fault on its input, and a fault
// on an inverter's output to the opposite fault on its input — provided the
// input node has no other fanout (with fanout, the stem fault affects more
// logic and is not equivalent). Classes are returned in order of their
// representative's first appearance.
func Collapse(c *netlist.Circuit, faults []Def) []Class {
	fanout := make([]int, c.NumGates())
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			fanout[f]++
		}
	}
	for _, id := range c.POs {
		fanout[id]++ // observed directly; treat as extra fanout
	}

	root := func(d Def) Def {
		for {
			g := c.Gates[d.Node]
			var next int
			flip := false
			switch g.Type {
			case netlist.Buf:
				next = g.Fanin[0]
			case netlist.Not:
				next = g.Fanin[0]
				flip = true
			default:
				return d
			}
			if fanout[next] != 1 {
				return d
			}
			// Never collapse across state or tie boundaries.
			switch c.Gates[next].Type {
			case netlist.DFF, netlist.NonScanDFF, netlist.Tie0, netlist.Tie1, netlist.TieX:
				return d
			}
			d.Node = next
			if flip {
				d.SA = logic.Not(d.SA)
			}
		}
	}

	index := make(map[Def]int)
	var classes []Class
	for _, f := range faults {
		r := root(f)
		i, ok := index[r]
		if !ok {
			i = len(classes)
			index[r] = i
			classes = append(classes, Class{Rep: r})
		}
		classes[i].Members = append(classes[i].Members, f)
	}
	return classes
}

// Representatives extracts one fault per class.
func Representatives(classes []Class) []Def {
	out := make([]Def, len(classes))
	for i, cl := range classes {
		out[i] = cl.Rep
	}
	return out
}
