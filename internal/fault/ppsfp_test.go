package fault

import (
	"context"
	"sync"
	"testing"

	"xhybrid/internal/atpg"
	"xhybrid/internal/logic"
	"xhybrid/internal/obs"
)

// ppsfpPreds is the predicate matrix the equivalence property runs over:
// full observability, a cell-restricted mask, and a pattern×cell mix — the
// shapes measureCoverage's baseline/hybrid pair takes.
var ppsfpPreds = []struct {
	name string
	obs  Observe
}{
	{"full", nil},
	{"even-cells", func(p, cell int) bool { return cell%2 == 0 }},
	{"mixed", func(p, cell int) bool { return p%3 != 0 || cell%5 == 1 }},
}

// TestPPSFPMatchesSerial is the engine's correctness property: for every
// seeded circuit × observability predicate × worker count, the PPSFP Result
// — Detected and per-fault first detecting pattern — equals the serial
// reference simulator's, with every predicate evaluated in one PPSFP pass.
func TestPPSFPMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		c := mkCircuit(t, seed)
		// 90 patterns: two blocks, the second partial, so lane masking and
		// cross-block first-detection ordering are both exercised.
		st := atpg.GenerateStimuli(90, len(c.ScanCells), len(c.PIs), uint64(seed+100))
		faults := Sample(AllFaults(c), 80, seed)
		preds := make([]Observe, len(ppsfpPreds))
		serial := make([]*Result, len(ppsfpPreds))
		for j, p := range ppsfpPreds {
			preds[j] = p.obs
			ref, err := Simulate(c, st.Loads, st.PIs, faults, p.obs)
			if err != nil {
				t.Fatal(err)
			}
			serial[j] = ref
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := SimulatePPSFP(context.Background(), c, st.Loads, st.PIs, faults, preds,
				PPSFPOptions{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			for j, p := range ppsfpPreds {
				if got[j].Total != serial[j].Total || got[j].Detected != serial[j].Detected {
					t.Fatalf("seed %d workers %d pred %s: got %d/%d, serial %d/%d",
						seed, workers, p.name, got[j].Detected, got[j].Total, serial[j].Detected, serial[j].Total)
				}
				for fi := range faults {
					if got[j].DetectedBy[fi] != serial[j].DetectedBy[fi] {
						t.Fatalf("seed %d workers %d pred %s fault %v: first detection %d, serial %d",
							seed, workers, p.name, faults[fi], got[j].DetectedBy[fi], serial[j].DetectedBy[fi])
					}
				}
			}
		}
	}
}

func TestPPSFPValidation(t *testing.T) {
	c := mkCircuit(t, 6)
	ctx := context.Background()
	if _, err := SimulatePPSFP(ctx, c, make([]logic.Vector, 2), make([]logic.Vector, 3), nil, []Observe{nil}, PPSFPOptions{}); err == nil {
		t.Fatal("accepted mismatched stimuli")
	}
	st := atpg.GenerateStimuli(4, len(c.ScanCells), len(c.PIs), 1)
	if _, err := SimulatePPSFP(ctx, c, st.Loads, st.PIs, nil, nil, PPSFPOptions{}); err == nil {
		t.Fatal("accepted empty predicate list")
	}
	bad := []Def{{Node: c.NumGates(), SA: logic.One}}
	if _, err := SimulatePPSFP(ctx, c, st.Loads, st.PIs, bad, []Observe{nil}, PPSFPOptions{}); err == nil {
		t.Fatal("accepted out-of-range fault node")
	}
}

func TestPPSFPEmpty(t *testing.T) {
	c := mkCircuit(t, 7)
	res, err := SimulatePPSFP(context.Background(), c, nil, nil, Sample(AllFaults(c), 5, 1), []Observe{nil, nil}, PPSFPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Total != 5 || res[0].Detected != 0 {
		t.Fatalf("zero-pattern result: %+v", res[0])
	}
	for _, by := range res[0].DetectedBy {
		if by != -1 {
			t.Fatal("detection with no patterns")
		}
	}
}

func TestPPSFPCancel(t *testing.T) {
	c := mkCircuit(t, 8)
	st := atpg.GenerateStimuli(64, len(c.ScanCells), len(c.PIs), 3)
	faults := Sample(AllFaults(c), 40, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulatePPSFP(ctx, c, st.Loads, st.PIs, faults, []Observe{nil}, PPSFPOptions{}); err == nil {
		t.Fatal("canceled context not reported")
	}
}

func TestPPSFPProgressAndCounters(t *testing.T) {
	c := mkCircuit(t, 9)
	st := atpg.GenerateStimuli(64, len(c.ScanCells), len(c.PIs), 5)
	faults := Sample(AllFaults(c), 32, 5)
	rec := obs.New()
	var mu sync.Mutex
	var last int
	calls := 0
	_, err := SimulatePPSFP(context.Background(), c, st.Loads, st.PIs, faults, []Observe{nil},
		PPSFPOptions{Workers: 2, Obs: rec, ProgressEvery: 4, OnProgress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if total != len(faults) || done < 1 || done > total {
				t.Errorf("progress out of range: %d/%d", done, total)
			}
			if done > last {
				last = done
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if last != len(faults) || calls == 0 {
		t.Fatalf("progress never reached total: last %d after %d calls", last, calls)
	}
	snap := rec.Snapshot()
	if got := snap.CounterValue("fault.ppsfp.cones.built"); got != int64(len(faults)) {
		t.Fatalf("cones.built = %d, want %d", got, len(faults))
	}
	if snap.CounterValue("fault.ppsfp.blocks") != 1 {
		t.Fatal("expected one 64-pattern block")
	}
	if snap.CounterValue("fault.ppsfp.gates.evaluated") <= 0 {
		t.Fatal("no gate evaluations counted")
	}
}

// The obs counters, like the results, must not depend on the worker count.
func TestPPSFPCountersDeterministic(t *testing.T) {
	c := mkCircuit(t, 10)
	st := atpg.GenerateStimuli(96, len(c.ScanCells), len(c.PIs), 9)
	faults := Sample(AllFaults(c), 48, 9)
	var want obs.Snapshot
	for i, workers := range []int{1, 4} {
		rec := obs.New()
		if _, err := SimulatePPSFP(context.Background(), c, st.Loads, st.PIs, faults, []Observe{nil, ppsfpPreds[1].obs},
			PPSFPOptions{Workers: workers, Obs: rec}); err != nil {
			t.Fatal(err)
		}
		snap := rec.Snapshot()
		if i == 0 {
			want = snap
			continue
		}
		for _, cs := range want.Counters {
			if got := snap.CounterValue(cs.Name); got != cs.Value {
				t.Fatalf("counter %s: %d at workers=4, %d at workers=1", cs.Name, got, cs.Value)
			}
		}
	}
}
