package fault

import (
	"testing"

	"xhybrid/internal/atpg"
	"xhybrid/internal/logic"
)

// The parallel fault simulator must agree with the serial one exactly:
// same detected set and same first detecting pattern per fault.
func TestParallelMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		c := mkCircuit(t, seed)
		st := atpg.GenerateStimuli(100, len(c.ScanCells), len(c.PIs), uint64(seed))
		faults := Sample(AllFaults(c), 32, seed)
		serial, err := Simulate(c, st.Loads, st.PIs, faults, nil)
		if err != nil {
			t.Fatal(err)
		}
		par, err := SimulateParallel(c, st.Loads, st.PIs, faults, nil)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Detected != par.Detected {
			t.Fatalf("seed %d: detected %d vs %d", seed, serial.Detected, par.Detected)
		}
		for i := range faults {
			if serial.DetectedBy[i] != par.DetectedBy[i] {
				t.Fatalf("seed %d fault %d: DetectedBy %d vs %d",
					seed, i, serial.DetectedBy[i], par.DetectedBy[i])
			}
		}
	}
}

// The incremental engine must also agree with the serial one exactly.
func TestIncrementalMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c := mkCircuit(t, seed)
		st := atpg.GenerateStimuli(80, len(c.ScanCells), len(c.PIs), uint64(seed))
		faults := Sample(AllFaults(c), 28, seed)
		serial, err := Simulate(c, st.Loads, st.PIs, faults, nil)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := SimulateIncremental(c, st.Loads, st.PIs, faults, nil)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Detected != inc.Detected {
			t.Fatalf("seed %d: detected %d vs %d", seed, serial.Detected, inc.Detected)
		}
		for i := range faults {
			if serial.DetectedBy[i] != inc.DetectedBy[i] {
				t.Fatalf("seed %d fault %d: DetectedBy %d vs %d",
					seed, i, serial.DetectedBy[i], inc.DetectedBy[i])
			}
		}
	}
}

func TestIncrementalValidationError(t *testing.T) {
	c := mkCircuit(t, 9)
	if _, err := SimulateIncremental(c, make([]logic.Vector, 1), make([]logic.Vector, 2), nil, nil); err == nil {
		t.Fatal("accepted mismatched stimuli")
	}
}

func TestParallelWithObservability(t *testing.T) {
	c := mkCircuit(t, 7)
	st := atpg.GenerateStimuli(64, len(c.ScanCells), len(c.PIs), 3)
	faults := Sample(AllFaults(c), 20, 3)
	obs := func(p, cell int) bool { return cell%3 != 0 }
	serial, err := Simulate(c, st.Loads, st.PIs, faults, obs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SimulateParallel(c, st.Loads, st.PIs, faults, obs)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Detected != par.Detected {
		t.Fatalf("detected %d vs %d under observability filter", serial.Detected, par.Detected)
	}
}

func TestParallelValidation(t *testing.T) {
	c := mkCircuit(t, 8)
	if _, err := SimulateParallel(c, make([]logic.Vector, 2), make([]logic.Vector, 3), nil, nil); err == nil {
		t.Fatal("accepted mismatched stimuli")
	}
}
