// Package fault implements the single-stuck-at fault model and a serial
// fault simulator with fault dropping over the three-valued scan-test flow.
// It exists to demonstrate, with measurements rather than argument, the
// paper's fault-coverage claims: the proposed partition masks never reduce
// coverage (they only remove X's), while lossy masking variants do.
//
// In the end-to-end flow (docs/FLOW.md) this is the optional faultsim
// stage: the same sampled fault list is simulated twice — once fully
// observable, once under the plan's masks via the Observe predicate — and
// the two detection counts must be equal. The equality is guaranteed by
// construction (a mask only covers cells that capture X under every
// pattern of its partition, and a detection requires a known fault-free
// value), so the stage is a measurement of the invariant, not a filter.
// Detection semantics are strict: a fault is detected only where the
// fault-free capture is a known value that the faulty capture flips —
// X's never count, in either direction.
//
// This package implements the demonstrative half of the DESIGN.md §3
// substitution (real small-scale fault simulation in place of a commercial
// one); §5.4 states the coverage guarantee it measures.
package fault

import (
	"fmt"
	"math/rand"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
	"xhybrid/internal/sim"
)

// Def is a single stuck-at fault definition.
type Def struct {
	// Node is the faulty node id.
	Node int
	// SA is the stuck value (logic.Zero or logic.One).
	SA logic.V
}

// String renders the fault like "n17/SA0".
func (d Def) String() string { return fmt.Sprintf("n%d/SA%d", d.Node, d.SA.Bit()) }

// AllFaults enumerates stuck-at-0/1 faults on every primary input and
// combinational gate output. Storage elements and tie cells are excluded:
// flop-output faults need a shift-path model and tie faults are untestable
// or equivalent to a fanout fault.
func AllFaults(c *netlist.Circuit) []Def {
	var out []Def
	for id, g := range c.Gates {
		switch g.Type {
		case netlist.DFF, netlist.NonScanDFF, netlist.Tie0, netlist.Tie1, netlist.TieX:
			continue
		}
		out = append(out, Def{Node: id, SA: logic.Zero}, Def{Node: id, SA: logic.One})
	}
	return out
}

// Sample returns up to n faults drawn without replacement.
func Sample(faults []Def, n int, seed int64) []Def {
	if n >= len(faults) {
		out := make([]Def, len(faults))
		copy(out, faults)
		return out
	}
	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(len(faults))
	out := make([]Def, n)
	for i := 0; i < n; i++ {
		out[i] = faults[perm[i]]
	}
	return out
}

// Observe decides whether a scan cell's captured value is observable for
// pattern p under the deployed compaction scheme. Cells masked by an X-mask
// are unobservable; everything else reaches the (X-canceling) MISR and is
// observed. A nil Observe means full observability.
type Observe func(pattern, cell int) bool

// Result summarizes a fault-simulation run.
type Result struct {
	// Total is the number of simulated faults.
	Total int
	// Detected is the number of detected faults.
	Detected int
	// DetectedBy[i] is the first detecting pattern of fault i, or -1.
	DetectedBy []int
}

// Coverage returns Detected / Total (0 with no faults).
func (r *Result) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// Simulate runs serial fault simulation with fault dropping. A fault is
// detected by pattern p when some scan cell captures a known value in both
// the fault-free and faulty machines, the values differ, and the cell is
// observable under obs. X values never contribute to detection
// (pessimistic, as in production flows).
func Simulate(c *netlist.Circuit, loads, pis []logic.Vector, faults []Def, obs Observe) (*Result, error) {
	if len(loads) != len(pis) {
		return nil, fmt.Errorf("fault: %d loads but %d pi vectors", len(loads), len(pis))
	}
	goodSim := sim.New(c)
	badSim := sim.New(c)
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	remaining := make([]int, len(faults))
	for i := range remaining {
		remaining[i] = i
	}
	for p := 0; p < len(loads) && len(remaining) > 0; p++ {
		good, _, err := goodSim.Capture(loads[p], pis[p], sim.NoFault)
		if err != nil {
			return nil, err
		}
		keep := remaining[:0]
		for _, fi := range remaining {
			f := faults[fi]
			bad, _, err := badSim.Capture(loads[p], pis[p], sim.Fault{Node: f.Node, StuckAt: f.SA})
			if err != nil {
				return nil, err
			}
			if detects(good, bad, p, obs) {
				res.DetectedBy[fi] = p
				res.Detected++
				continue
			}
			keep = append(keep, fi)
		}
		remaining = keep
	}
	return res, nil
}

// detects reports whether the faulty response differs observably.
func detects(good, bad logic.Vector, pattern int, obs Observe) bool {
	for cell := range good {
		if good[cell] == logic.X || bad[cell] == logic.X || good[cell] == bad[cell] {
			continue
		}
		if obs == nil || obs(pattern, cell) {
			return true
		}
	}
	return false
}
