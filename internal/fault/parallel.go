package fault

import (
	"fmt"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
	"xhybrid/internal/sim"
)

// SimulateIncremental is Simulate built on the event-driven simulator: the
// fault-free machine is evaluated once per pattern, and each remaining
// fault re-evaluates only its fanout cone. Results match Simulate exactly.
func SimulateIncremental(c *netlist.Circuit, loads, pis []logic.Vector, faults []Def, obs Observe) (*Result, error) {
	if len(loads) != len(pis) {
		return nil, fmt.Errorf("fault: %d loads but %d pi vectors", len(loads), len(pis))
	}
	inc := sim.NewIncremental(c)
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	remaining := make([]int, len(faults))
	for i := range remaining {
		remaining[i] = i
	}
	for p := 0; p < len(loads) && len(remaining) > 0; p++ {
		if err := inc.Load(loads[p], pis[p]); err != nil {
			return nil, err
		}
		good, _, err := inc.Capture()
		if err != nil {
			return nil, err
		}
		keep := remaining[:0]
		for _, fi := range remaining {
			f := faults[fi]
			bad, _, err := inc.WithFault(sim.Fault{Node: f.Node, StuckAt: f.SA})
			if err != nil {
				return nil, err
			}
			if detects(good, bad, p, obs) {
				res.DetectedBy[fi] = p
				res.Detected++
				continue
			}
			keep = append(keep, fi)
		}
		remaining = keep
	}
	return res, nil
}

// SimulateParallel is Simulate built on the 64-way parallel-pattern
// simulator: each fault is evaluated against up to 64 patterns per pass,
// with fault dropping between batches. It produces the same Result as the
// serial simulator (first detecting pattern per fault) at a fraction of the
// simulation passes.
func SimulateParallel(c *netlist.Circuit, loads, pis []logic.Vector, faults []Def, obs Observe) (*Result, error) {
	if len(loads) != len(pis) {
		return nil, fmt.Errorf("fault: %d loads but %d pi vectors", len(loads), len(pis))
	}
	goodSim := sim.NewParallel(c)
	badSim := sim.NewParallel(c)
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	remaining := make([]int, len(faults))
	for i := range remaining {
		remaining[i] = i
	}
	for base := 0; base < len(loads) && len(remaining) > 0; base += 64 {
		end := base + 64
		if end > len(loads) {
			end = len(loads)
		}
		good, err := goodSim.Capture(loads[base:end], pis[base:end])
		if err != nil {
			return nil, err
		}
		keep := remaining[:0]
		for _, fi := range remaining {
			f := faults[fi]
			bad, err := badSim.CaptureWithFault(loads[base:end], pis[base:end], sim.Fault{Node: f.Node, StuckAt: f.SA})
			if err != nil {
				return nil, err
			}
			found := -1
			for k := 0; k < end-base && found < 0; k++ {
				if detects(good[k], bad[k], base+k, obs) {
					found = base + k
				}
			}
			if found >= 0 {
				res.DetectedBy[fi] = found
				res.Detected++
				continue
			}
			keep = append(keep, fi)
		}
		remaining = keep
	}
	return res, nil
}
