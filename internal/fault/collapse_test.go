package fault

import (
	"testing"

	"xhybrid/internal/atpg"
	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// chainCircuit: pi -> NOT(a) -> BUF(b) -> NOT(c) -> scan cell, all
// fanout-free, so faults along the chain collapse onto pi.
func chainCircuit(t *testing.T) (*netlist.Circuit, []int) {
	b := netlist.NewBuilder("chain")
	pi := b.Input("pi")
	a := b.Gate(netlist.Not, pi)
	bb := b.Gate(netlist.Buf, a)
	cc := b.Gate(netlist.Not, bb)
	b.ScanDFF(cc)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, []int{pi, a, bb, cc}
}

func TestCollapseChain(t *testing.T) {
	c, nodes := chainCircuit(t)
	var faults []Def
	for _, n := range nodes {
		faults = append(faults, Def{Node: n, SA: logic.Zero}, Def{Node: n, SA: logic.One})
	}
	classes := Collapse(c, faults)
	// The whole chain collapses to pi/SA0 and pi/SA1.
	if len(classes) != 2 {
		t.Fatalf("classes = %d, want 2: %+v", len(classes), classes)
	}
	for _, cl := range classes {
		if cl.Rep.Node != nodes[0] {
			t.Fatalf("representative %v not on the chain root", cl.Rep)
		}
		if len(cl.Members) != 4 {
			t.Fatalf("class has %d members, want 4", len(cl.Members))
		}
	}
	// Polarity: SA0 on cc (after NOT-BUF-NOT = 2 inversions from pi... pi
	// -> NOT a (1) -> BUF b (1) -> NOT c (0 inversions net). cc/SA0 should
	// collapse to pi/SA0.
	for _, cl := range classes {
		want := cl.Rep.SA
		for _, m := range cl.Members {
			inv := 0
			switch m.Node {
			case nodes[1], nodes[2]: // after first NOT (a, b)
				inv = 1
			case nodes[3]: // after second NOT
				inv = 0
			}
			got := m.SA
			if inv == 1 {
				got = logic.Not(got)
			}
			if got != want {
				t.Fatalf("member %v polarity wrong for rep %v", m, cl.Rep)
			}
		}
	}
}

// With fanout on the chain, collapsing must stop.
func TestCollapseStopsAtFanout(t *testing.T) {
	b := netlist.NewBuilder("fan")
	pi := b.Input("pi")
	buf := b.Gate(netlist.Buf, pi)
	other := b.Gate(netlist.Not, pi) // pi fans out twice
	b.ScanDFF(buf)
	b.ScanDFF(other)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	faults := []Def{{Node: buf, SA: logic.Zero}, {Node: pi, SA: logic.Zero}}
	classes := Collapse(c, faults)
	if len(classes) != 2 {
		t.Fatalf("fanout stem collapsed anyway: %+v", classes)
	}
}

// Collapsed members must have identical detection behavior.
func TestCollapsedMembersEquivalent(t *testing.T) {
	c, err := netlist.Generate(netlist.GenConfig{
		Name: "col", ScanCells: 48, PIs: 5, XClusters: 1, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := atpg.GenerateStimuli(48, len(c.ScanCells), len(c.PIs), 9)
	all := AllFaults(c)
	classes := Collapse(c, all)
	if len(classes) >= len(all) {
		t.Fatalf("no collapsing happened: %d classes for %d faults", len(classes), len(all))
	}
	checked := 0
	for _, cl := range classes {
		if len(cl.Members) < 2 || checked > 6 {
			continue
		}
		checked++
		res, err := Simulate(c, st.Loads, st.PIs, cl.Members, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(cl.Members); i++ {
			if res.DetectedBy[i] != res.DetectedBy[0] {
				t.Fatalf("class %v members diverge: detected by %v", cl.Rep, res.DetectedBy)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no multi-member classes to check")
	}
	// Representatives cover every class.
	if len(Representatives(classes)) != len(classes) {
		t.Fatal("Representatives wrong length")
	}
}
