package fault

// The PPSFP (parallel-pattern single-fault propagation) engine: the
// production fault-simulation path of the flow. Three stacked wins over the
// serial simulator:
//
//  1. Word-parallel good machine. Patterns are cut into 64-lane blocks and
//     the fault-free machine is evaluated exactly once per block
//     (sim.PSim.CaptureBlock), retaining every node's word.
//  2. Cone-limited fault evaluation. Each fault re-evaluates only its
//     fanout cone (sim.ConeSim), reading good-machine words at the cone
//     frontier — the per-fault cost is proportional to the cone, not the
//     circuit.
//  3. Fault-parallel fan-out with single-pass multi-observability. The
//     (typically collapsed) fault list is sharded across an internal/pool
//     worker set with position-indexed results; each fault's faulty
//     captures are computed once and every Observe predicate is evaluated
//     against the same difference words, so "baseline vs hybrid" coverage
//     costs one simulation, not two. A fault is dropped — its remaining
//     pattern blocks skipped — as soon as every predicate has detected it.
//
// The contract is exact equivalence with the reference simulator: for every
// predicate j, the returned Result j (Detected and per-fault first
// detecting pattern) is byte-identical to Simulate(c, loads, pis, faults,
// preds[j]), at any worker count. TestPPSFPMatchesSerial locks this across
// circuits × predicates × worker counts under -race.

import (
	"context"
	"fmt"
	"math/bits"
	"sync/atomic"

	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
	"xhybrid/internal/obs"
	"xhybrid/internal/pool"
	"xhybrid/internal/sim"
)

// PPSFPOptions carries the engine's run knobs. The zero value runs on all
// CPUs with no observation or progress reporting.
type PPSFPOptions struct {
	// Workers bounds the fault-parallel fan-out (0 = all CPUs). Results
	// are byte-identical for any worker count.
	Workers int
	// Obs receives the engine's counters (fault.ppsfp.*): cones built,
	// cone and evaluated gate totals, and per-block fault-drop counts.
	Obs *obs.Recorder
	// OnProgress, when set, is called as faults complete simulation —
	// roughly every ProgressEvery completions and once at the end with
	// done == total. It may be called concurrently from several workers
	// and must be safe for that; done values are monotonic per call site
	// but may arrive out of order.
	OnProgress func(done, total int)
	// ProgressEvery is the completion granularity of OnProgress
	// (default: total/32, at least 1).
	ProgressEvery int
}

// SimulatePPSFP runs parallel-pattern single-fault propagation over the
// fault list and returns one Result per observability predicate, each
// exactly equal — Detected count and per-fault first detecting pattern — to
// a serial Simulate run under that predicate alone. A nil predicate means
// full observability. Canceling ctx aborts between faults with the
// context's error.
func SimulatePPSFP(ctx context.Context, c *netlist.Circuit, loads, pis []logic.Vector, faults []Def, preds []Observe, opt PPSFPOptions) ([]*Result, error) {
	if len(loads) != len(pis) {
		return nil, fmt.Errorf("fault: %d loads but %d pi vectors", len(loads), len(pis))
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("fault: no observability predicates")
	}
	for _, f := range faults {
		if f.Node < 0 || f.Node >= c.NumGates() {
			return nil, fmt.Errorf("fault: node %d out of range [0, %d)", f.Node, c.NumGates())
		}
	}
	np := len(preds)
	results := make([]*Result, np)
	for j := range results {
		results[j] = &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
		for i := range results[j].DetectedBy {
			results[j].DetectedBy[i] = -1
		}
	}
	nb := (len(loads) + 63) / 64
	if nb == 0 || len(faults) == 0 {
		return results, ctx.Err()
	}

	p := pool.New(opt.Workers)
	defer p.Close()

	// Phase 1: the good machine, once per 64-pattern block, fanned out
	// position-indexed so the retained words are worker-count independent.
	blocks := make([]*sim.Block, nb)
	errs := make([]error, p.Workers())
	p.Chunks(nb, func(ci, lo, hi int) {
		ps := sim.NewParallel(c)
		for b := lo; b < hi; b++ {
			if err := ctx.Err(); err != nil {
				errs[ci] = err
				return
			}
			base := b * 64
			top := base + 64
			if top > len(loads) {
				top = len(loads)
			}
			blk, err := ps.CaptureBlock(loads[base:top], pis[base:top])
			if err != nil {
				errs[ci] = err
				return
			}
			blocks[b] = blk
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: shard the fault list across the workers. Every fault's
	// lifecycle — cone, per-block evaluation, per-predicate first
	// detection, drop decision — is independent of every other fault's,
	// and all writes are position-indexed by fault, so the assembled
	// results are byte-identical at any worker count.
	ix := sim.NewConeIndex(c)
	type workerStats struct {
		cones, coneGates, gateEvals int64
		droppedAt                   []int64
	}
	stats := make([]workerStats, p.Workers())
	var done atomic.Int64
	every := opt.ProgressEvery
	if every <= 0 {
		every = len(faults) / 32
		if every < 1 {
			every = 1
		}
	}
	total := len(faults)
	p.Chunks(len(faults), func(ci, lo, hi int) {
		cs := ix.NewSim()
		st := &stats[ci]
		st.droppedAt = make([]int64, nb)
		best := make([]int, np)
		pending := make([]bool, np)
		for fi := lo; fi < hi; fi++ {
			if err := ctx.Err(); err != nil {
				errs[ci] = err
				return
			}
			f := faults[fi]
			gates, cells := cs.BuildCone(f.Node)
			st.cones++
			st.coneGates += int64(len(gates))
			npending := np
			for j := range pending {
				pending[j] = true
			}
			for b, blk := range blocks {
				base := b * 64
				for j := range best {
					best[j] = 64
				}
				st.gateEvals += int64(cs.FaultDiff(blk, sim.Fault{Node: f.Node, StuckAt: f.SA}, gates, cells,
					func(cell int, lanes uint64) {
						for j := 0; j < np; j++ {
							if !pending[j] {
								continue
							}
							// Only lanes earlier than the best detection so
							// far can improve it; a nil predicate takes the
							// lowest lane outright.
							m := lanes
							if best[j] < 64 {
								m &= 1<<uint(best[j]) - 1
							}
							if m == 0 {
								continue
							}
							if preds[j] == nil {
								best[j] = bits.TrailingZeros64(m)
								continue
							}
							for ; m != 0; m &= m - 1 {
								k := bits.TrailingZeros64(m)
								if preds[j](base+k, cell) {
									best[j] = k
									break
								}
							}
						}
					}))
				for j := 0; j < np; j++ {
					if pending[j] && best[j] < 64 {
						results[j].DetectedBy[fi] = base + best[j]
						pending[j] = false
						npending--
					}
				}
				if npending == 0 {
					st.droppedAt[b]++
					break
				}
			}
			if d := int(done.Add(1)); opt.OnProgress != nil && (d%every == 0 || d == total) {
				opt.OnProgress(d, total)
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	for j := range results {
		det := 0
		for _, by := range results[j].DetectedBy {
			if by >= 0 {
				det++
			}
		}
		results[j].Detected = det
	}

	// Counters reduce position-independently (integer sums of per-fault
	// quantities), so the observability stream is as deterministic as the
	// results.
	rec := opt.Obs
	var cones, coneGates, gateEvals int64
	droppedAt := make([]int64, nb)
	for i := range stats {
		cones += stats[i].cones
		coneGates += stats[i].coneGates
		gateEvals += stats[i].gateEvals
		for b, n := range stats[i].droppedAt {
			droppedAt[b] += n
		}
	}
	rec.Add("fault.ppsfp.faults", int64(len(faults)))
	rec.Add("fault.ppsfp.blocks", int64(nb))
	rec.Add("fault.ppsfp.cones.built", cones)
	rec.Add("fault.ppsfp.cone.gates", coneGates)
	rec.Add("fault.ppsfp.gates.evaluated", gateEvals)
	for b, n := range droppedAt {
		if n > 0 {
			rec.Add(fmt.Sprintf("fault.ppsfp.dropped.block%03d", b), n)
		}
	}
	return results, nil
}
