package fault

import (
	"testing"

	"xhybrid/internal/atpg"
	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

// mkCircuit builds a small generated circuit with X clusters.
func mkCircuit(t *testing.T, seed int64) *netlist.Circuit {
	c, err := netlist.Generate(netlist.GenConfig{
		Name:      "fsim",
		ScanCells: 24,
		PIs:       4,
		XClusters: 2,
		XFanout:   3,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAllFaultsExcludesState(t *testing.T) {
	c := mkCircuit(t, 1)
	faults := AllFaults(c)
	if len(faults) == 0 {
		t.Fatal("no faults enumerated")
	}
	for _, f := range faults {
		switch c.Gates[f.Node].Type {
		case netlist.DFF, netlist.NonScanDFF, netlist.Tie0, netlist.Tie1, netlist.TieX:
			t.Fatalf("fault on excluded node type %v", c.Gates[f.Node].Type)
		}
	}
	// Two faults per eligible node.
	if len(faults)%2 != 0 {
		t.Fatal("odd fault count")
	}
	if faults[0].String() == "" {
		t.Fatal("empty fault name")
	}
}

func TestSample(t *testing.T) {
	c := mkCircuit(t, 2)
	faults := AllFaults(c)
	s := Sample(faults, 10, 1)
	if len(s) != 10 {
		t.Fatalf("sample = %d", len(s))
	}
	seen := map[Def]bool{}
	for _, f := range s {
		if seen[f] {
			t.Fatal("duplicate in sample")
		}
		seen[f] = true
	}
	all := Sample(faults, len(faults)+5, 1)
	if len(all) != len(faults) {
		t.Fatal("oversample did not return all")
	}
}

func TestSimulateDetectsFaults(t *testing.T) {
	c := mkCircuit(t, 3)
	st := atpg.GenerateStimuli(64, len(c.ScanCells), len(c.PIs), 11)
	faults := Sample(AllFaults(c), 40, 2)
	res, err := Simulate(c, st.Loads, st.PIs, faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 40 {
		t.Fatalf("Total = %d", res.Total)
	}
	if res.Detected == 0 {
		t.Fatal("no faults detected by 64 random patterns")
	}
	if res.Coverage() <= 0 || res.Coverage() > 1 {
		t.Fatalf("Coverage = %f", res.Coverage())
	}
	// DetectedBy consistency.
	det := 0
	for _, p := range res.DetectedBy {
		if p >= 0 {
			det++
			if p >= 64 {
				t.Fatalf("DetectedBy out of range: %d", p)
			}
		}
	}
	if det != res.Detected {
		t.Fatalf("DetectedBy count %d != Detected %d", det, res.Detected)
	}
}

// Restricting observability can only lose detections, never gain them.
func TestObservabilityMonotonic(t *testing.T) {
	c := mkCircuit(t, 4)
	st := atpg.GenerateStimuli(48, len(c.ScanCells), len(c.PIs), 7)
	faults := Sample(AllFaults(c), 30, 5)
	full, err := Simulate(c, st.Loads, st.PIs, faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Block half of the scan cells.
	blocked, err := Simulate(c, st.Loads, st.PIs, faults, func(p, cell int) bool { return cell%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if blocked.Detected > full.Detected {
		t.Fatalf("blocking observability increased coverage: %d > %d", blocked.Detected, full.Detected)
	}
	none, err := Simulate(c, st.Loads, st.PIs, faults, func(p, cell int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if none.Detected != 0 {
		t.Fatal("detected faults with zero observability")
	}
}

func TestSimulateValidation(t *testing.T) {
	c := mkCircuit(t, 5)
	if _, err := Simulate(c, make([]logic.Vector, 2), make([]logic.Vector, 3), nil, nil); err == nil {
		t.Fatal("accepted mismatched stimuli")
	}
}

func TestCoverageEmpty(t *testing.T) {
	r := &Result{}
	if r.Coverage() != 0 {
		t.Fatal("empty coverage must be 0")
	}
}
