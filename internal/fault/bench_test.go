package fault

import (
	"context"
	"testing"

	"xhybrid/internal/atpg"
	"xhybrid/internal/netlist"
)

// BenchmarkFaultSim is the CI-gated PPSFP benchmark: a flow-shaped workload
// (1024-cell circuit, 128 patterns, collapsed 200-fault sample, dual
// observability) pinned to one worker so the number is a kernel measurement,
// not a scheduling one. The bench-regress CI job fails a >20% median
// regression against the merge base.
func BenchmarkFaultSim(b *testing.B) {
	c, err := netlist.Generate(netlist.GenConfig{
		Name:      "bench",
		ScanCells: 1024,
		PIs:       16,
		XClusters: 20,
		XFanout:   16,
		Seed:      42,
	})
	if err != nil {
		b.Fatal(err)
	}
	st := atpg.GenerateStimuli(128, len(c.ScanCells), len(c.PIs), 7)
	reps := Representatives(Collapse(c, AllFaults(c)))
	faults := Sample(reps, 200, 1)
	preds := []Observe{nil, func(p, cell int) bool { return cell%2 == 0 }}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SimulatePPSFP(ctx, c, st.Loads, st.PIs, faults, preds, PPSFPOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res[0].Detected == 0 {
			b.Fatal("no detections")
		}
	}
}
