// Package cubes derives deterministic test cubes — scan-load stimuli with a
// small set of care bits and everything else don't-care — for stuck-at
// faults. Cubes are found by pseudo-random search and then relaxed by bit
// stripping: every load bit that can be X'ed without losing the detection
// (checked with the three-valued simulator) is X'ed. The resulting
// low-care-density cubes are what the stimulus decompressor encodes.
package cubes

import (
	"fmt"

	"xhybrid/internal/atpg"
	"xhybrid/internal/fault"
	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
	"xhybrid/internal/sim"
)

// Cube is a deterministic test for one fault.
type Cube struct {
	// Fault is the targeted stuck-at fault.
	Fault fault.Def
	// Load is the scan stimulus with X's at don't-care positions.
	Load logic.Vector
	// PIs are the primary-input values (fully specified).
	PIs logic.Vector
}

// CareBits returns the number of specified load bits.
func (c Cube) CareBits() int { return len(c.Load) - c.Load.CountX() }

// CareDensity returns specified load bits over total load bits.
func (c Cube) CareDensity() float64 {
	if len(c.Load) == 0 {
		return 0
	}
	return float64(c.CareBits()) / float64(len(c.Load))
}

// Options tunes the generator.
type Options struct {
	// MaxRandomTries bounds the pseudo-random detection search per fault
	// (default 256).
	MaxRandomTries int
	// Seed drives the random search.
	Seed uint64
	// SkipStripping keeps the fully specified detecting pattern (for the
	// stripping-effect ablation).
	SkipStripping bool
}

// Result is the outcome of cube generation.
type Result struct {
	// Cubes holds one cube per detected fault.
	Cubes []Cube
	// Undetected counts faults the random search could not detect.
	Undetected int
}

// detects reports whether the load/pis stimulus definitely detects the
// fault: some scan cell captures differing known values.
func detects(goodSim, badSim *sim.Simulator, load, pis logic.Vector, f fault.Def) (bool, error) {
	good, _, err := goodSim.Capture(load, pis, sim.NoFault)
	if err != nil {
		return false, err
	}
	bad, _, err := badSim.Capture(load, pis, sim.Fault{Node: f.Node, StuckAt: f.SA})
	if err != nil {
		return false, err
	}
	for i := range good {
		if good[i] != logic.X && bad[i] != logic.X && good[i] != bad[i] {
			return true, nil
		}
	}
	return false, nil
}

// Generate builds cubes for the given faults.
func Generate(c *netlist.Circuit, faults []fault.Def, opt Options) (*Result, error) {
	if opt.MaxRandomTries <= 0 {
		opt.MaxRandomTries = 256
	}
	goodSim := sim.New(c)
	badSim := sim.New(c)
	gen := atpg.NewGenerator(opt.Seed)
	res := &Result{}
	for _, f := range faults {
		cube, found, err := findCube(c, goodSim, badSim, gen, f, opt)
		if err != nil {
			return nil, err
		}
		if !found {
			res.Undetected++
			continue
		}
		res.Cubes = append(res.Cubes, cube)
	}
	return res, nil
}

func findCube(c *netlist.Circuit, goodSim, badSim *sim.Simulator, gen *atpg.Generator, f fault.Def, opt Options) (Cube, bool, error) {
	for try := 0; try < opt.MaxRandomTries; try++ {
		load := gen.Pattern(len(c.ScanCells))
		pis := gen.Pattern(len(c.PIs))
		hit, err := detects(goodSim, badSim, load, pis, f)
		if err != nil {
			return Cube{}, false, err
		}
		if !hit {
			continue
		}
		cube := Cube{Fault: f, Load: load.Clone(), PIs: pis}
		if !opt.SkipStripping {
			if err := strip(goodSim, badSim, &cube); err != nil {
				return Cube{}, false, err
			}
		}
		return cube, true, nil
	}
	return Cube{}, false, nil
}

// strip X's every load bit whose value is not needed for detection.
func strip(goodSim, badSim *sim.Simulator, cube *Cube) error {
	for i := range cube.Load {
		saved := cube.Load[i]
		if saved == logic.X {
			continue
		}
		cube.Load[i] = logic.X
		still, err := detects(goodSim, badSim, cube.Load, cube.PIs, cube.Fault)
		if err != nil {
			return err
		}
		if !still {
			cube.Load[i] = saved
		}
	}
	return nil
}

// MeanCareDensity averages the care density over a cube set.
func MeanCareDensity(cubes []Cube) float64 {
	if len(cubes) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range cubes {
		sum += c.CareDensity()
	}
	return sum / float64(len(cubes))
}

// Validate checks that every cube still detects its fault (a regression
// guard for the stripper).
func Validate(c *netlist.Circuit, cubes []Cube) error {
	goodSim := sim.New(c)
	badSim := sim.New(c)
	for i, cube := range cubes {
		ok, err := detects(goodSim, badSim, cube.Load, cube.PIs, cube.Fault)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("cubes: cube %d no longer detects %v", i, cube.Fault)
		}
	}
	return nil
}
