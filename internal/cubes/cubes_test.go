package cubes

import (
	"testing"

	"xhybrid/internal/fault"
	"xhybrid/internal/logic"
	"xhybrid/internal/netlist"
)

func mkCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := netlist.Generate(netlist.GenConfig{
		Name: "cubes", ScanCells: 64, PIs: 6, XClusters: 0, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateAndValidate(t *testing.T) {
	c := mkCircuit(t)
	faults := fault.Sample(fault.AllFaults(c), 24, 1)
	res, err := Generate(c, faults, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cubes)+res.Undetected != len(faults) {
		t.Fatalf("cubes %d + undetected %d != faults %d", len(res.Cubes), res.Undetected, len(faults))
	}
	if len(res.Cubes) == 0 {
		t.Fatal("no cubes found by random search")
	}
	if err := Validate(c, res.Cubes); err != nil {
		t.Fatal(err)
	}
}

func TestStrippingReducesCareBits(t *testing.T) {
	c := mkCircuit(t)
	faults := fault.Sample(fault.AllFaults(c), 16, 2)
	full, err := Generate(c, faults, Options{Seed: 7, SkipStripping: true})
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := Generate(c, faults, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Cubes) != len(stripped.Cubes) {
		t.Fatalf("cube counts differ: %d vs %d", len(full.Cubes), len(stripped.Cubes))
	}
	fd := MeanCareDensity(full.Cubes)
	sd := MeanCareDensity(stripped.Cubes)
	if fd != 1.0 {
		t.Fatalf("unstripped care density = %f, want 1.0", fd)
	}
	// Stripping must remove a substantial share of care bits — the whole
	// point of stimulus compression.
	if sd > 0.6*fd {
		t.Fatalf("stripped density %f not well below %f", sd, fd)
	}
	// Stripped cubes still detect.
	if err := Validate(c, stripped.Cubes); err != nil {
		t.Fatal(err)
	}
}

func TestCareDensityHelpers(t *testing.T) {
	cube := Cube{Load: logic.MustParseVector("1xx0")}
	if cube.CareBits() != 2 || cube.CareDensity() != 0.5 {
		t.Fatalf("care accounting wrong: %d %f", cube.CareBits(), cube.CareDensity())
	}
	if (Cube{}).CareDensity() != 0 {
		t.Fatal("empty cube density must be 0")
	}
	if MeanCareDensity(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
}

func TestUndetectableFaultCounted(t *testing.T) {
	// A redundant structure: OR(x, NOT(x)) is constant 1, so SA1 on its
	// output is undetectable.
	b := netlist.NewBuilder("redundant")
	pi := b.Input("pi")
	inv := b.Gate(netlist.Not, pi)
	or := b.Gate(netlist.Or, pi, inv)
	b.ScanDFF(or)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(c, []fault.Def{{Node: or, SA: logic.One}}, Options{Seed: 1, MaxRandomTries: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Undetected != 1 || len(res.Cubes) != 0 {
		t.Fatalf("redundant fault not reported undetected: %+v", res)
	}
}
