package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Add("a", 1)
	r.Set("b", 2)
	r.Time("c", func() {})
	end := r.Span("d")
	end()
	if c := r.Counter("a"); c != nil {
		t.Fatal("nil recorder handed out a live counter")
	}
	var nc *Counter
	nc.Add(5)
	nc.Inc()
	nc.Set(9)
	if nc.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatal("nil recorder produced a non-empty snapshot")
	}
}

func TestCountersAndSpans(t *testing.T) {
	r := New()
	c := r.Counter("core.rounds")
	c.Add(3)
	c.Inc()
	r.Add("core.rounds", 1)
	r.Set("core.workers", 8)
	r.Time("stage.a", func() { time.Sleep(time.Millisecond) })
	r.Time("stage.a", func() {})
	snap := r.Snapshot()
	if got := snap.CounterValue("core.rounds"); got != 5 {
		t.Fatalf("core.rounds = %d, want 5", got)
	}
	if got := snap.CounterValue("core.workers"); got != 8 {
		t.Fatalf("core.workers = %d, want 8", got)
	}
	if got := snap.CounterValue("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
	sp, ok := snap.SpanByName("stage.a")
	if !ok {
		t.Fatal("span stage.a missing")
	}
	if sp.Count != 2 {
		t.Fatalf("span count = %d, want 2", sp.Count)
	}
	if sp.Total < time.Millisecond {
		t.Fatalf("span total = %v, want >= 1ms", sp.Total)
	}
	if _, ok := snap.SpanByName("missing"); ok {
		t.Fatal("found a span that never ran")
	}
}

// Counter handles must be stable: two lookups of the same name share state.
func TestCounterHandleStable(t *testing.T) {
	r := New()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("same name produced distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles do not share state")
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := New()
	r.Add("zeta", 1)
	r.Add("alpha", 1)
	r.Add("mid", 1)
	r.Span("z.stage")()
	r.Span("a.stage")()
	snap := r.Snapshot()
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Name > snap.Counters[i].Name {
			t.Fatal("counters not sorted")
		}
	}
	for i := 1; i < len(snap.Spans); i++ {
		if snap.Spans[i-1].Name > snap.Spans[i].Name {
			t.Fatal("spans not sorted")
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				r.Add("m", 1)
				r.Span("s")()
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.CounterValue("n"); got != 8000 {
		t.Fatalf("n = %d, want 8000", got)
	}
	if got := snap.CounterValue("m"); got != 8000 {
		t.Fatalf("m = %d, want 8000", got)
	}
	if sp, _ := snap.SpanByName("s"); sp.Count != 8000 {
		t.Fatalf("span count = %d, want 8000", sp.Count)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := New()
	r.Add("halts", 4)
	r.Time("replay", func() {})
	snap := r.Snapshot()

	var text bytes.Buffer
	if err := snap.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"stage breakdown", "halts", "replay"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}

	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if back.CounterValue("halts") != 4 {
		t.Fatal("JSON round trip lost the counter")
	}
}

// The disabled path must be branch-cheap: this is the guarantee the hot
// loops rely on when stats are off.
func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkLiveCounterAdd(b *testing.B) {
	c := New().Counter("n")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
