// Package obs is the observability layer of the hybrid pipeline: cheap
// named counters and per-stage wall-time spans that the partitioner, the
// X-canceling paths and the replay flow record as they run. Every recording
// method is safe on a nil *Recorder (and a nil *Counter / nil span closure),
// compiling down to a single predictable branch, so instrumented code pays
// essentially nothing when observation is disabled — the hot paths keep
// their handles unconditionally and never test a flag themselves.
//
// All recording operations are safe for concurrent use: counters and span
// accumulators are atomics, so pool workers can record without
// serialization. Snapshot gives a consistent-enough view for reporting (it
// does not stop concurrent writers).
//
// This package implements the observability layer of DESIGN.md §7 (an
// infrastructure extension beyond the paper); the stages it instruments are
// the §5.2-§5.4 pipeline.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is one named monotonic counter. The zero value is ready to use;
// a nil *Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; no-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one; no-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter (for gauge-style values such as worker
// counts); no-op on a nil receiver.
func (c *Counter) Set(n int64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// spanStat accumulates the invocations of one named stage.
type spanStat struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Recorder collects the counters and spans of one pipeline run. The zero
// value is not usable; call New. A nil *Recorder is the disabled state:
// every method is a no-op and every handle it returns is the discarding
// nil handle.
type Recorder struct {
	mu       sync.Mutex
	counters map[string]*Counter
	spans    map[string]*spanStat
	start    time.Time
}

// New returns an empty enabled recorder.
func New() *Recorder {
	return &Recorder{
		counters: make(map[string]*Counter),
		spans:    make(map[string]*spanStat),
		start:    time.Now(),
	}
}

// Counter returns the named counter handle, creating it at zero on first
// use. The handle is stable and safe to cache in hot loops. Returns nil on
// a nil receiver (nil handles discard updates).
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add increments the named counter by n; no-op on a nil receiver.
func (r *Recorder) Add(name string, n int64) { r.Counter(name).Add(n) }

// Set overwrites the named counter; no-op on a nil receiver.
func (r *Recorder) Set(name string, n int64) { r.Counter(name).Set(n) }

// noopEnd is the shared end-closure handed out by a nil recorder.
var noopEnd = func() {}

// Span starts timing one invocation of the named stage and returns the
// closure that ends it:
//
//	defer rec.Span("core.run")()
//
// Repeated invocations of the same name accumulate (count and total wall
// time). On a nil receiver the returned closure does nothing.
func (r *Recorder) Span(name string) func() {
	if r == nil {
		return noopEnd
	}
	r.mu.Lock()
	s, ok := r.spans[name]
	if !ok {
		s = &spanStat{}
		r.spans[name] = s
	}
	r.mu.Unlock()
	t0 := time.Now()
	return func() {
		s.count.Add(1)
		s.nanos.Add(int64(time.Since(t0)))
	}
}

// Time runs fn under a span of the given name.
func (r *Recorder) Time(name string, fn func()) {
	end := r.Span(name)
	fn()
	end()
}

// CounterStat is one counter in a snapshot.
type CounterStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// SpanStat is one stage in a snapshot.
type SpanStat struct {
	Name  string        `json:"name"`
	Count int64         `json:"count"`
	Total time.Duration `json:"totalNs"`
}

// Snapshot is a point-in-time copy of a recorder's state, sorted by name.
type Snapshot struct {
	// Elapsed is the wall time since the recorder was created.
	Elapsed  time.Duration `json:"elapsedNs"`
	Counters []CounterStat `json:"counters"`
	Spans    []SpanStat    `json:"spans"`
}

// Snapshot copies the current state. Returns the zero Snapshot on a nil
// receiver.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{Elapsed: time.Since(r.start)}
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterStat{Name: name, Value: c.Value()})
	}
	for name, s := range r.spans {
		snap.Spans = append(snap.Spans, SpanStat{
			Name:  name,
			Count: s.count.Load(),
			Total: time.Duration(s.nanos.Load()),
		})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Spans, func(i, j int) bool { return snap.Spans[i].Name < snap.Spans[j].Name })
	return snap
}

// WriteText prints the snapshot as an aligned two-section breakdown.
func (s Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "--- stage breakdown (%.3fs elapsed) ---\n", s.Elapsed.Seconds()); err != nil {
		return err
	}
	width := 0
	for _, sp := range s.Spans {
		if len(sp.Name) > width {
			width = len(sp.Name)
		}
	}
	for _, c := range s.Counters {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, sp := range s.Spans {
		avg := time.Duration(0)
		if sp.Count > 0 {
			avg = sp.Total / time.Duration(sp.Count)
		}
		if _, err := fmt.Fprintf(w, "span    %-*s  %10.3fms  x%-6d avg %s\n",
			width, sp.Name, float64(sp.Total)/float64(time.Millisecond), sp.Count, avg.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %-*s  %12d\n", width, c.Name, c.Value); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints the snapshot as one JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// CounterValue returns the named counter's value in the snapshot (0 when
// absent).
func (s Snapshot) CounterValue(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// SpanByName returns the named span and whether it exists.
func (s Snapshot) SpanByName(name string) (SpanStat, bool) {
	for _, sp := range s.Spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return SpanStat{}, false
}
