package obs

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles wires up the standard Go profiling endpoints for a run:
// cpuFile starts a CPU profile, memFile arranges a heap profile at stop,
// and pprofAddr serves net/http/pprof (e.g. "localhost:6060") for live
// inspection of long replay runs. Empty strings disable each. The returned
// stop must be called once at the end of the run; it stops the CPU profile
// and writes the heap profile (the pprof server, if any, keeps serving
// until the process exits).
func StartProfiles(cpuFile, memFile, pprofAddr string) (stop func() error, err error) {
	var cpuOut *os.File
	if cpuFile != "" {
		cpuOut, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if pprofAddr != "" {
		ln := pprofAddr
		go func() {
			// The server runs for the life of the process; a bind failure
			// only loses the live endpoint, never the run itself.
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "obs: pprof server: %v\n", err)
			}
		}()
	}
	return func() error {
		if cpuOut != nil {
			pprof.StopCPUProfile()
			if err := cpuOut.Close(); err != nil {
				return err
			}
		}
		if memFile != "" {
			out, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
			defer out.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(out); err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
