package diag

import (
	"testing"

	"xhybrid/internal/bist"
	"xhybrid/internal/fault"
	"xhybrid/internal/misr"
	"xhybrid/internal/netlist"
	"xhybrid/internal/scan"
	"xhybrid/internal/xcancel"
)

func controller(t *testing.T) (*bist.Controller, *netlist.Circuit) {
	t.Helper()
	ckt, err := netlist.Generate(netlist.GenConfig{
		Name: "diag", ScanCells: 96, PIs: 6, XClusters: 3, XFanout: 4, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := bist.New(ckt, scan.MustGeometry(16, 6), bist.Config{
		PRPGSize: 20, PRPGSeed: 3, Patterns: 40,
		Cancel: xcancel.Config{MISR: misr.MustStandard(16), Q: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ct, ckt
}

func TestDictionaryDiagnosis(t *testing.T) {
	ct, ckt := controller(t)
	faults := fault.Sample(fault.AllFaults(ckt), 20, 2)
	d, err := Build(ct, faults)
	if err != nil {
		t.Fatal(err)
	}
	if d.Detected() == 0 {
		t.Fatal("dictionary detected nothing")
	}
	if d.Classes() < 2 {
		t.Fatalf("only %d syndrome classes; no diagnostic power", d.Classes())
	}
	if d.Resolution() < 1 {
		t.Fatalf("resolution %f below 1", d.Resolution())
	}
	// Every detected fault must be among its own diagnosis candidates.
	for _, f := range faults {
		f := f
		sess, err := ct.Run(&f)
		if err != nil {
			t.Fatal(err)
		}
		golden, err := ct.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !Compare(golden, sess).Failing() {
			continue // undetected fault
		}
		cands, err := d.Diagnose(sess)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, c := range cands {
			if c == f {
				found = true
			}
		}
		if !found {
			t.Fatalf("fault %v not among its own candidates %v", f, cands)
		}
	}
}

func TestDiagnosePassingSessionErrors(t *testing.T) {
	ct, ckt := controller(t)
	faults := fault.Sample(fault.AllFaults(ckt), 6, 3)
	d, err := Build(ct, faults)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := ct.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Diagnose(golden); err == nil {
		t.Fatal("diagnosed a passing session")
	}
}

func TestSyndromeKeyAndFailing(t *testing.T) {
	s := Syndrome{}
	if s.Failing() {
		t.Fatal("empty syndrome failing")
	}
	s.ParityFails = []bool{false, true}
	if !s.Failing() {
		t.Fatal("parity failure missed")
	}
	if s.Key() != ":01" {
		t.Fatalf("Key = %q", s.Key())
	}
	s2 := Syndrome{ScheduleShift: true, FinalFails: true}
	if !s2.Failing() || s2.Key() != "SF:" {
		t.Fatalf("Key = %q", s2.Key())
	}
	// Distinct syndromes must have distinct keys.
	if s.Key() == s2.Key() {
		t.Fatal("key collision")
	}
}

func TestUndetectedBucketing(t *testing.T) {
	ct, ckt := controller(t)
	faults := fault.Sample(fault.AllFaults(ckt), 30, 5)
	d, err := Build(ct, faults)
	if err != nil {
		t.Fatal(err)
	}
	if d.Detected()+len(d.Undetected) != len(faults) {
		t.Fatalf("detected %d + undetected %d != %d", d.Detected(), len(d.Undetected), len(faults))
	}
}
