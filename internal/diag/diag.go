// Package diag implements dictionary-based fault diagnosis over the hybrid
// X-handling session: every modeled fault's *syndrome* — which programmed
// X-free signatures fail, whether the end-of-test signature fails, and
// whether the halt schedule itself shifted — is precomputed into a fault
// dictionary, and an observed failing session is diagnosed by syndrome
// lookup. This is the classic signature-dictionary flow adapted to the
// paper's architecture: the X-free combinations are the only observation
// points, so diagnostic resolution directly measures how much observability
// the hybrid scheme retains.
package diag

import (
	"fmt"
	"strings"

	"xhybrid/internal/bist"
	"xhybrid/internal/fault"
)

// Syndrome is the observable failure fingerprint of one session relative to
// the golden session.
type Syndrome struct {
	// ScheduleShift marks a halt-schedule mismatch (X profile disturbed).
	ScheduleShift bool
	// ParityFails has one entry per golden parity; true = that signature
	// failed. Empty when ScheduleShift (parities not comparable).
	ParityFails []bool
	// FinalFails marks an end-of-test signature mismatch.
	FinalFails bool
}

// Failing reports whether the syndrome shows any failure.
func (s Syndrome) Failing() bool {
	if s.ScheduleShift || s.FinalFails {
		return true
	}
	for _, f := range s.ParityFails {
		if f {
			return true
		}
	}
	return false
}

// Key returns a canonical string form for dictionary lookup.
func (s Syndrome) Key() string {
	var sb strings.Builder
	if s.ScheduleShift {
		sb.WriteString("S")
	}
	if s.FinalFails {
		sb.WriteString("F")
	}
	sb.WriteByte(':')
	for _, f := range s.ParityFails {
		if f {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Compare derives the syndrome of a session against the golden run.
func Compare(golden, observed *bist.Session) Syndrome {
	var s Syndrome
	if golden.Report.Halts != observed.Report.Halts || len(golden.Parities) != len(observed.Parities) {
		s.ScheduleShift = true
		s.FinalFails = golden.Final != observed.Final
		return s
	}
	s.ParityFails = make([]bool, len(golden.Parities))
	for i := range golden.Parities {
		s.ParityFails[i] = golden.Parities[i] != observed.Parities[i]
	}
	s.FinalFails = golden.Final != observed.Final
	return s
}

// Dictionary maps syndromes to the faults that produce them.
type Dictionary struct {
	golden *bist.Session
	// buckets groups fault indices by syndrome key.
	buckets map[string][]int
	faults  []fault.Def
	// Undetected lists faults with a passing (empty) syndrome.
	Undetected []fault.Def
}

// Build runs every fault through the programmed session and indexes the
// syndromes.
func Build(ct *bist.Controller, faults []fault.Def) (*Dictionary, error) {
	golden, err := ct.Run(nil)
	if err != nil {
		return nil, err
	}
	d := &Dictionary{golden: golden, buckets: make(map[string][]int), faults: faults}
	for i, f := range faults {
		f := f
		sess, err := ct.Run(&f)
		if err != nil {
			return nil, err
		}
		syn := Compare(golden, sess)
		if !syn.Failing() {
			d.Undetected = append(d.Undetected, f)
			continue
		}
		key := syn.Key()
		d.buckets[key] = append(d.buckets[key], i)
	}
	return d, nil
}

// Classes returns the number of distinct failing syndromes.
func (d *Dictionary) Classes() int { return len(d.buckets) }

// Detected returns the number of faults with a failing syndrome.
func (d *Dictionary) Detected() int { return len(d.faults) - len(d.Undetected) }

// Diagnose returns the candidate faults whose stored syndrome matches the
// observed session exactly, or an error if the session passes.
func (d *Dictionary) Diagnose(observed *bist.Session) ([]fault.Def, error) {
	syn := Compare(d.golden, observed)
	if !syn.Failing() {
		return nil, fmt.Errorf("diag: session passes; nothing to diagnose")
	}
	idx := d.buckets[syn.Key()]
	out := make([]fault.Def, len(idx))
	for i, k := range idx {
		out[i] = d.faults[k]
	}
	return out, nil
}

// Resolution summarizes diagnostic quality: the average number of candidate
// faults sharing a syndrome class (1.0 = perfect resolution).
func (d *Dictionary) Resolution() float64 {
	if len(d.buckets) == 0 {
		return 0
	}
	return float64(d.Detected()) / float64(len(d.buckets))
}
