// Package report renders plain-text tables for the experiment harness,
// mirroring the layout of the paper's Table 1.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	// Title is printed above the table.
	Title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; missing cells render empty, extra cells are dropped.
func (t *Table) Row(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Fprint writes the rendered table.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	line(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Fprint(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}

// Mega formats a bit count in millions like the paper ("12.22M").
func Mega(bits int) string {
	return fmt.Sprintf("%.2fM", float64(bits)/1e6)
}

// Ratio formats an improvement factor ("2.17").
func Ratio(f float64) string { return fmt.Sprintf("%.2f", f) }

// Percent formats a fraction as a percentage ("2.75%").
func Percent(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }
