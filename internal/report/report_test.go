package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := New("Title", "A", "BBBB", "C")
	tab.Row("1", "2")
	tab.Row("longer", "x", "y", "dropped")
	out := tab.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: header A at same offset as "1" and "longer"... verify
	// header line and row line have the BBBB column starting at the same
	// index.
	hdr := lines[1]
	row := lines[4]
	hIdx := strings.Index(hdr, "BBBB")
	rIdx := strings.Index(row, "x")
	if hIdx != rIdx {
		t.Fatalf("columns misaligned: %d vs %d\n%s", hIdx, rIdx, out)
	}
	if strings.Contains(out, "dropped") {
		t.Fatal("extra cell not dropped")
	}
}

func TestEmptyTitle(t *testing.T) {
	tab := New("", "X")
	tab.Row("1")
	if strings.HasPrefix(tab.String(), "\n") {
		t.Fatal("leading blank line with empty title")
	}
}

func TestFormatters(t *testing.T) {
	if Mega(12220000) != "12.22M" {
		t.Fatalf("Mega = %q", Mega(12220000))
	}
	if Ratio(2.168) != "2.17" {
		t.Fatalf("Ratio = %q", Ratio(2.168))
	}
	if Percent(0.0275) != "2.75%" {
		t.Fatalf("Percent = %q", Percent(0.0275))
	}
}
