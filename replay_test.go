package xhybrid

import "testing"

func TestReplayCheckPaperExample(t *testing.T) {
	x := PaperExample()
	// 5 chains, so the MISR must be at most 5 wide.
	rep, err := ReplayCheck(x, Options{MISRSize: 5, Q: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ObservableMasked != 0 {
		t.Fatalf("masks destroyed %d observable captures", rep.ObservableMasked)
	}
	if rep.MaskedX == 0 {
		t.Fatal("masks removed nothing")
	}
	if rep.MaskedX+rep.ResidualX > x.TotalX() {
		t.Fatalf("masked %d + residual %d exceed total %d (compaction can only fold)",
			rep.MaskedX, rep.ResidualX, x.TotalX())
	}
	if rep.NormalizedTime < 1 || rep.ScheduleCycles <= 0 {
		t.Fatalf("schedule wrong: %+v", rep)
	}
}

func TestReplayCheckScaledWorkload(t *testing.T) {
	// A small synthetic map through the whole hardware stack (the
	// full-scale replay is minutes of work).
	rows := make([]string, 24)
	for i := range rows {
		r := make([]byte, 64)
		for j := range r {
			r[j] = '0'
		}
		if i%3 == 0 {
			r[7], r[19], r[33] = 'x', 'x', 'x'
		}
		if i%3 == 1 {
			r[40], r[41] = 'x', 'x'
		}
		rows[i] = string(r)
	}
	small, err := FromPatternRows(8, 8, rows)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayCheck(small, Options{MISRSize: 8, Q: 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ObservableMasked != 0 {
		t.Fatal("observable captures masked")
	}
	if rep.Halts == 0 && rep.ResidualX > 0 {
		t.Fatal("residual X's but no canceling halts")
	}
}

func TestReplayCheckRejectsWideMISR(t *testing.T) {
	x := PaperExample() // 5 chains
	if _, err := ReplayCheck(x, Options{}, 1); err == nil {
		t.Fatal("accepted 32-bit MISR on 5 chains")
	}
	if _, err := ReplayCheck(x, Options{MISRSize: 5, Q: 9}, 1); err == nil {
		t.Fatal("accepted q >= m")
	}
}
