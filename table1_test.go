package xhybrid

import (
	"bytes"
	"strings"
	"testing"
)

// The public Table 1 runner must reproduce the paper's shape at full scale.
func TestTable1PublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale Table 1 in -short mode")
	}
	rows, err := Table1(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper reference values (see EXPERIMENTS.md) with generous bands.
	want := []struct {
		circuit          string
		proposedLo, hi   float64 // millions
		impvCancelLo, up float64
	}{
		{"ckt-a", 4.5, 6.5, 1.1, 1.5},
		{"ckt-b", 10.5, 14.5, 1.8, 2.5},
		{"ckt-c", 36, 47, 1.3, 1.7},
	}
	for i, w := range want {
		r := rows[i]
		if r.Circuit != w.circuit {
			t.Fatalf("row %d circuit %s", i, r.Circuit)
		}
		prop := float64(r.ProposedBits) / 1e6
		if prop < w.proposedLo || prop > w.hi {
			t.Fatalf("%s proposed %.2fM outside [%v,%v]", r.Circuit, prop, w.proposedLo, w.hi)
		}
		if r.ImprovementOverCancelOnly < w.impvCancelLo || r.ImprovementOverCancelOnly > w.up {
			t.Fatalf("%s impv/cancel %.2f outside [%v,%v]", r.Circuit, r.ImprovementOverCancelOnly, w.impvCancelLo, w.up)
		}
		// The ordering claims of the paper.
		if !(r.MaskOnlyBits > r.CancelOnlyBits && r.CancelOnlyBits > r.ProposedBits) {
			t.Fatalf("%s ordering broken: %d / %d / %d", r.Circuit, r.MaskOnlyBits, r.CancelOnlyBits, r.ProposedBits)
		}
		if r.TestTimeProposed >= r.TestTimeCancelOnly {
			t.Fatalf("%s test time not reduced", r.Circuit)
		}
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ckt-b") {
		t.Fatal("rendered table missing rows")
	}
}

// Resampled workloads (different seeds) keep the Table 1 shape — the result
// is a property of the correlation structure, not one lucky draw.
func TestTable1SeedRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale Table 1 in -short mode")
	}
	for _, seed := range []int64{7, 99} {
		rows, err := Table1(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if !(r.MaskOnlyBits > r.CancelOnlyBits && r.CancelOnlyBits > r.ProposedBits) {
				t.Fatalf("seed %d %s: ordering broken", seed, r.Circuit)
			}
			if r.ImprovementOverCancelOnly < 1.05 {
				t.Fatalf("seed %d %s: improvement %.2f collapsed", seed, r.Circuit, r.ImprovementOverCancelOnly)
			}
		}
	}
}
