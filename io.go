package xhybrid

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonXLoc is the on-disk form of an X-location map: per X-capturing cell,
// the list of patterns producing an X there.
type jsonXLoc struct {
	Chains   int         `json:"chains"`
	ChainLen int         `json:"chainLen"`
	Patterns int         `json:"patterns"`
	Cells    []jsonXCell `json:"cells"`
}

type jsonXCell struct {
	Cell     int   `json:"cell"`
	Patterns []int `json:"p"`
}

// WriteJSON serializes the X locations.
func (x *XLocations) WriteJSON(w io.Writer) error {
	out := jsonXLoc{
		Chains:   x.geom.Chains,
		ChainLen: x.geom.ChainLen,
		Patterns: x.m.Patterns(),
	}
	for _, c := range x.m.XCells() {
		out.Cells = append(out.Cells, jsonXCell{Cell: c.Cell, Patterns: c.Patterns.Indices()})
	}
	return json.NewEncoder(w).Encode(out)
}

// ReadXLocations parses a serialized X-location map. Duplicate cell
// records and duplicate pattern indices are rejected rather than silently
// merged: the writer never emits them, so their presence means the file was
// hand-edited or corrupted, and merging would mask the real total-X count
// the accounting depends on.
func ReadXLocations(r io.Reader) (*XLocations, error) {
	var in jsonXLoc
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("xhybrid: decode: %w", err)
	}
	x, err := NewXLocations(in.Chains, in.ChainLen, in.Patterns)
	if err != nil {
		return nil, err
	}
	seenCell := make(map[int]bool, len(in.Cells))
	for _, c := range in.Cells {
		if c.Cell < 0 || c.Cell >= x.Cells() {
			return nil, fmt.Errorf("xhybrid: cell %d out of range", c.Cell)
		}
		if seenCell[c.Cell] {
			return nil, fmt.Errorf("xhybrid: duplicate record for cell %d", c.Cell)
		}
		seenCell[c.Cell] = true
		chain, pos := c.Cell/in.ChainLen, c.Cell%in.ChainLen
		seenP := make(map[int]bool, len(c.Patterns))
		for _, p := range c.Patterns {
			if seenP[p] {
				return nil, fmt.Errorf("xhybrid: cell %d: duplicate pattern %d", c.Cell, p)
			}
			seenP[p] = true
			if err := x.AddX(p, chain, pos); err != nil {
				return nil, err
			}
		}
	}
	return x, nil
}
