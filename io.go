package xhybrid

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonXLoc is the on-disk form of an X-location map: per X-capturing cell,
// the list of patterns producing an X there.
type jsonXLoc struct {
	Chains   int         `json:"chains"`
	ChainLen int         `json:"chainLen"`
	Patterns int         `json:"patterns"`
	Cells    []jsonXCell `json:"cells"`
}

type jsonXCell struct {
	Cell     int   `json:"cell"`
	Patterns []int `json:"p"`
}

// WriteJSON serializes the X locations.
func (x *XLocations) WriteJSON(w io.Writer) error {
	out := jsonXLoc{
		Chains:   x.geom.Chains,
		ChainLen: x.geom.ChainLen,
		Patterns: x.m.Patterns(),
	}
	for _, c := range x.m.XCells() {
		out.Cells = append(out.Cells, jsonXCell{Cell: c.Cell, Patterns: c.Patterns.Indices()})
	}
	return json.NewEncoder(w).Encode(out)
}

// ReadXLocations parses a serialized X-location map.
func ReadXLocations(r io.Reader) (*XLocations, error) {
	var in jsonXLoc
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("xhybrid: decode: %w", err)
	}
	x, err := NewXLocations(in.Chains, in.ChainLen, in.Patterns)
	if err != nil {
		return nil, err
	}
	for _, c := range in.Cells {
		if c.Cell < 0 || c.Cell >= x.Cells() {
			return nil, fmt.Errorf("xhybrid: cell %d out of range", c.Cell)
		}
		chain, pos := c.Cell/in.ChainLen, c.Cell%in.ChainLen
		for _, p := range c.Patterns {
			if err := x.AddX(p, chain, pos); err != nil {
				return nil, err
			}
		}
	}
	return x, nil
}
