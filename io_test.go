package xhybrid

import (
	"bytes"
	"strings"
	"testing"
)

func TestXLocationsJSONRoundTrip(t *testing.T) {
	x := PaperExample()
	var buf bytes.Buffer
	if err := x.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadXLocations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.TotalX() != x.TotalX() || y.Patterns() != x.Patterns() || y.Cells() != x.Cells() {
		t.Fatal("round trip lost data")
	}
	for p := 0; p < 8; p++ {
		for c := 0; c < 5; c++ {
			for pos := 0; pos < 3; pos++ {
				if x.HasX(p, c, pos) != y.HasX(p, c, pos) {
					t.Fatalf("X mismatch at p=%d cell=(%d,%d)", p, c, pos)
				}
			}
		}
	}
}

func TestReadXLocationsErrors(t *testing.T) {
	if _, err := ReadXLocations(strings.NewReader("{bad")); err == nil {
		t.Fatal("accepted bad json")
	}
	if _, err := ReadXLocations(strings.NewReader(`{"chains":0,"chainLen":1,"patterns":1}`)); err == nil {
		t.Fatal("accepted bad geometry")
	}
	if _, err := ReadXLocations(strings.NewReader(`{"chains":1,"chainLen":1,"patterns":1,"cells":[{"cell":5,"p":[0]}]}`)); err == nil {
		t.Fatal("accepted out-of-range cell")
	}
	if _, err := ReadXLocations(strings.NewReader(`{"chains":1,"chainLen":1,"patterns":1,"cells":[{"cell":0,"p":[9]}]}`)); err == nil {
		t.Fatal("accepted out-of-range pattern")
	}
}
