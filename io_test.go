package xhybrid

import (
	"bytes"
	"strings"
	"testing"
)

func TestXLocationsJSONRoundTrip(t *testing.T) {
	x := PaperExample()
	var buf bytes.Buffer
	if err := x.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadXLocations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.TotalX() != x.TotalX() || y.Patterns() != x.Patterns() || y.Cells() != x.Cells() {
		t.Fatal("round trip lost data")
	}
	for p := 0; p < 8; p++ {
		for c := 0; c < 5; c++ {
			for pos := 0; pos < 3; pos++ {
				if x.HasX(p, c, pos) != y.HasX(p, c, pos) {
					t.Fatalf("X mismatch at p=%d cell=(%d,%d)", p, c, pos)
				}
			}
		}
	}
}

func TestReadXLocationsErrors(t *testing.T) {
	if _, err := ReadXLocations(strings.NewReader("{bad")); err == nil {
		t.Fatal("accepted bad json")
	}
	if _, err := ReadXLocations(strings.NewReader(`{"chains":0,"chainLen":1,"patterns":1}`)); err == nil {
		t.Fatal("accepted bad geometry")
	}
	if _, err := ReadXLocations(strings.NewReader(`{"chains":1,"chainLen":1,"patterns":1,"cells":[{"cell":5,"p":[0]}]}`)); err == nil {
		t.Fatal("accepted out-of-range cell")
	}
	if _, err := ReadXLocations(strings.NewReader(`{"chains":1,"chainLen":1,"patterns":1,"cells":[{"cell":0,"p":[9]}]}`)); err == nil {
		t.Fatal("accepted out-of-range pattern")
	}
}

// TestReadXLocationsDuplicates pins the duplicate-rejection rule. The old
// reader silently merged duplicate cell records and repeated pattern
// indices into one X, so a corrupted file loaded with a lower TotalX than
// its record count implied.
func TestReadXLocationsDuplicates(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{
			"duplicate cell record",
			`{"chains":2,"chainLen":2,"patterns":4,"cells":[{"cell":1,"p":[0]},{"cell":1,"p":[2]}]}`,
			"duplicate record for cell 1",
		},
		{
			"duplicate pattern index",
			`{"chains":2,"chainLen":2,"patterns":4,"cells":[{"cell":0,"p":[3,1,3]}]}`,
			"duplicate pattern 3",
		},
		{
			"duplicate cell with empty pattern list",
			`{"chains":2,"chainLen":2,"patterns":4,"cells":[{"cell":2,"p":[]},{"cell":2,"p":[]}]}`,
			"duplicate record for cell 2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadXLocations(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted: %s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q, want it to mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestJSONTextCrossFormat checks the two serializations agree cell for
// cell: writing the paper example through either format and reading it
// back through the other must yield byte-identical X maps.
func TestJSONTextCrossFormat(t *testing.T) {
	x := PaperExample()

	var js, txt bytes.Buffer
	if err := x.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := x.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadXLocations(&js)
	if err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadXLocationsText(&txt)
	if err != nil {
		t.Fatal(err)
	}
	if !fromJSON.m.Equal(fromText.m) {
		t.Fatal("JSON and text round trips disagree")
	}
	if !fromJSON.m.Equal(x.m) {
		t.Fatal("JSON round trip changed the map")
	}
	if fromJSON.geom != x.geom || fromText.geom != x.geom {
		t.Fatal("round trip changed the geometry")
	}
}
