package xhybrid

import (
	"fmt"

	"xhybrid/internal/flow"
	"xhybrid/internal/tester"
	"xhybrid/internal/workload"
)

// ReplayReport summarizes an end-to-end hardware-model check of a plan: the
// partition masks, spatial compactor and X-canceling MISR are actually run
// over synthesized responses consistent with the X locations.
type ReplayReport struct {
	// MaskedX is the number of X captures the mask stage removed.
	MaskedX int
	// ObservableMasked counts destroyed known captures; the fault-coverage
	// guarantee demands zero.
	ObservableMasked int
	// ResidualX reached the MISR after masking and compaction.
	ResidualX int
	// Halts and Signatures summarize the canceling sessions.
	Halts      int
	Signatures int
	// NormalizedTime is the measured shift+halt time over shift time.
	NormalizedTime float64
	// ScheduleCycles is the full ATE schedule including mask loads.
	ScheduleCycles int
}

// ReplayCheck builds the tester program for the X locations and replays
// synthesized responses (known values pseudo-random from seed, X's exactly
// as mapped) through the hardware models. It is meant for scaled designs —
// the cycle-level replay of a full 3000-pattern industrial workload takes
// minutes, not milliseconds.
func ReplayCheck(x *XLocations, opt Options, seed int64) (*ReplayReport, error) {
	params, err := opt.params(x.geom)
	if err != nil {
		return nil, err
	}
	if params.Cancel.MISR.Size > x.geom.Chains {
		return nil, fmt.Errorf("xhybrid: %d-bit MISR wider than %d chains; pick MISRSize <= chains",
			params.Cancel.MISR.Size, x.geom.Chains)
	}
	prog, err := flow.Build(x.m, params, tester.Config{
		Channels:        params.Cancel.MISR.Size,
		OverlapMaskLoad: true,
	})
	if err != nil {
		return nil, err
	}
	endSynth := opt.Stats.Span("replay.synthesize")
	set, err := workload.ResponsesFromXMap(x.m, x.geom, seed)
	endSynth()
	if err != nil {
		return nil, err
	}
	rep, err := flow.VerifyResponses(prog, set)
	if err != nil {
		return nil, err
	}
	return &ReplayReport{
		MaskedX:          rep.MaskedX,
		ObservableMasked: rep.ObservableMasked,
		ResidualX:        rep.ResidualX,
		Halts:            rep.Halts,
		Signatures:       rep.Signatures,
		NormalizedTime:   rep.NormalizedTime,
		ScheduleCycles:   prog.Schedule.TotalCycles,
	}, nil
}
