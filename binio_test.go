package xhybrid

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// binStream assembles a binary X-location stream by hand for the error
// tests: the standard header followed by arbitrary uvarint fields.
func binStream(fields ...uint64) []byte {
	out := append([]byte(binMagic), binVersion)
	for _, f := range fields {
		out = binary.AppendUvarint(out, f)
	}
	return out
}

func randomXLocations(t *testing.T, seed int64, chains, chainLen, patterns int, density float64) *XLocations {
	t.Helper()
	x, err := NewXLocations(chains, chainLen, patterns)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	for c := 0; c < chains; c++ {
		for pos := 0; pos < chainLen; pos++ {
			for p := 0; p < patterns; p++ {
				if r.Float64() < density {
					if err := x.AddX(p, c, pos); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	return x
}

func TestBinaryRoundTrip(t *testing.T) {
	for name, x := range map[string]*XLocations{
		"paper":  PaperExample(),
		"random": randomXLocations(t, 11, 7, 23, 190, 0.04),
		"dense":  randomXLocations(t, 5, 2, 3, 70, 0.6),
		"empty": func() *XLocations {
			x, err := NewXLocations(3, 4, 9)
			if err != nil {
				t.Fatal(err)
			}
			return x
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := x.WriteBinary(&buf); err != nil {
				t.Fatal(err)
			}
			y, err := ReadXLocationsBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !y.m.Equal(x.m) {
				t.Fatal("binary round trip changed the map")
			}
			if y.geom != x.geom {
				t.Fatal("binary round trip changed the geometry")
			}
		})
	}
}

// The binary encoding is canonical: the same logical map serializes to
// byte-identical output whatever order it was built in. The serving layer's
// cache key depends on this.
func TestBinaryCanonical(t *testing.T) {
	a, err := NewXLocations(4, 5, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewXLocations(4, 5, 16)
	if err != nil {
		t.Fatal(err)
	}
	type loc struct{ p, chain, pos int }
	locs := []loc{{3, 1, 2}, {0, 0, 0}, {15, 3, 4}, {7, 1, 2}, {2, 2, 0}, {9, 0, 4}}
	for _, l := range locs {
		if err := a.AddX(l.p, l.chain, l.pos); err != nil {
			t.Fatal(err)
		}
	}
	for i := len(locs) - 1; i >= 0; i-- {
		if err := b.AddX(locs[i].p, locs[i].chain, locs[i].pos); err != nil {
			t.Fatal(err)
		}
	}
	var ba, bb bytes.Buffer
	if err := a.WriteBinary(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteBinary(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("build order leaked into the binary encoding")
	}
}

// Binary and JSON must describe the same map; the binary form exists to be
// cheaper, not different.
func TestBinaryJSONCrossFormat(t *testing.T) {
	x := randomXLocations(t, 3, 5, 17, 120, 0.05)
	var js, bin bytes.Buffer
	if err := x.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := x.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= js.Len() {
		t.Fatalf("binary (%d bytes) not smaller than JSON (%d bytes)", bin.Len(), js.Len())
	}
	fromJSON, err := ReadXLocations(&js)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadXLocationsBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if !fromJSON.m.Equal(fromBin.m) {
		t.Fatal("JSON and binary round trips disagree")
	}
}

func TestReadXLocationsBinaryErrors(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := PaperExample().WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	overflow := append([]byte(binMagic), binVersion)
	overflow = append(overflow, bytes.Repeat([]byte{0xff}, 10)...)
	cases := []struct {
		name    string
		in      []byte
		wantErr string
	}{
		{"empty", nil, "unexpected EOF"},
		{"magic only", []byte(binMagic), "unexpected EOF"},
		{"bad magic", []byte("XMAPQ\x01"), "bad magic"},
		{"bad version", []byte(binMagic + "\x07"), "unsupported binary version"},
		{"header truncated", binStream(5, 3), "unexpected EOF"},
		{"record truncated", valid[:len(valid)-2], "unexpected EOF"},
		{"varint overflow", overflow, "overflow"},
		{"oversized dimension", binStream(1 << 40), "exceeds limit"},
		{"zero geometry", binStream(0, 1, 1, 0), "chain"},
		{"zero patterns", binStream(1, 1, 0, 0), "pattern count"},
		{"too many cell records", binStream(2, 2, 4, 5), "5 X cells for 4-cell design"},
		// 2x2 cells, 4 patterns, 2 records: cell 1 then gap 0 = duplicate.
		{"duplicate cell", binStream(2, 2, 4, 2, 1, 1, 0, 0, 1, 0), "duplicate record for cell 1"},
		// one record, cell 0, count 2, pattern 3 then gap 0 = duplicate.
		{"duplicate pattern", binStream(2, 2, 4, 1, 0, 2, 3, 0), "duplicate pattern 3"},
		{"cell out of range", binStream(2, 2, 4, 1, 9, 1, 0), "cell 9 out of range"},
		{"pattern out of range", binStream(2, 2, 4, 1, 0, 1, 6), "pattern 6 out of range"},
		{"zero pattern count", binStream(2, 2, 4, 1, 0, 0), "pattern count 0 out of range"},
		{"excess pattern count", binStream(2, 2, 4, 1, 0, 5), "pattern count 5 out of range"},
		{"trailing data", append(append([]byte{}, valid...), 0x00), "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadXLocationsBinary(bytes.NewReader(tc.in))
			if err == nil {
				t.Fatal("accepted malformed stream")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q, want it to mention %q", err, tc.wantErr)
			}
		})
	}
	if _, err := ReadXLocationsBinary(bytes.NewReader(nil)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation error %v does not match io.ErrUnexpectedEOF", err)
	}
}
