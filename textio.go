package xhybrid

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text interchange format is a line-based record of X locations, easy
// to produce from ATPG log post-processing:
//
//	# comments and blank lines are ignored
//	design <chains> <chainLen> <patterns>
//	x <pattern> <chain> <pos>
//	xr <pattern> <chain> <posFrom> <posTo>   # inclusive run
//
// All indices are 0-based. The design line must come first.

// WriteText serializes the X locations in the text format.
func (x *XLocations) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# xhybrid X-location map\n")
	fmt.Fprintf(bw, "design %d %d %d\n", x.geom.Chains, x.geom.ChainLen, x.m.Patterns())
	for _, c := range x.m.XCells() {
		chain, pos := x.geom.CellCoord(c.Cell)
		c.Patterns.ForEach(func(p int) {
			fmt.Fprintf(bw, "x %d %d %d\n", p, chain, pos)
		})
	}
	return bw.Flush()
}

// intFields parses fields[1:] as exactly want integers. Unlike fmt.Sscanf,
// it rejects trailing garbage ("x 1 2 3 junk") and non-integer fields
// outright — a record line is valid iff its field count and every field
// parse exactly.
func intFields(fields []string, want int, lineNo int) ([]int, error) {
	if len(fields)-1 != want {
		return nil, fmt.Errorf("xhybrid: line %d: %s record wants %d integer fields, got %d",
			lineNo, fields[0], want, len(fields)-1)
	}
	out := make([]int, want)
	for i, f := range fields[1:] {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("xhybrid: line %d: %s record field %d: %q is not an integer",
				lineNo, fields[0], i+1, f)
		}
		out[i] = v
	}
	return out, nil
}

// ReadXLocationsText parses the text format. Parsing is strict: every
// record must carry exactly its field count (no trailing garbage) and all
// fields must be integers; errors name the offending line.
func ReadXLocationsText(r io.Reader) (*XLocations, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var x *XLocations
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "design":
			if x != nil {
				return nil, fmt.Errorf("xhybrid: line %d: duplicate design line", lineNo)
			}
			v, err := intFields(fields, 3, lineNo)
			if err != nil {
				return nil, err
			}
			x, err = NewXLocations(v[0], v[1], v[2])
			if err != nil {
				return nil, fmt.Errorf("xhybrid: line %d: %w", lineNo, err)
			}
		case "x":
			if x == nil {
				return nil, fmt.Errorf("xhybrid: line %d: x before design", lineNo)
			}
			v, err := intFields(fields, 3, lineNo)
			if err != nil {
				return nil, err
			}
			if err := x.AddX(v[0], v[1], v[2]); err != nil {
				return nil, fmt.Errorf("xhybrid: line %d: %w", lineNo, err)
			}
		case "xr":
			if x == nil {
				return nil, fmt.Errorf("xhybrid: line %d: xr before design", lineNo)
			}
			v, err := intFields(fields, 4, lineNo)
			if err != nil {
				return nil, err
			}
			p, chain, from, to := v[0], v[1], v[2], v[3]
			if to < from {
				return nil, fmt.Errorf("xhybrid: line %d: xr run reversed", lineNo)
			}
			for pos := from; pos <= to; pos++ {
				if err := x.AddX(p, chain, pos); err != nil {
					return nil, fmt.Errorf("xhybrid: line %d: %w", lineNo, err)
				}
			}
		default:
			return nil, fmt.Errorf("xhybrid: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("xhybrid: no design line found")
	}
	return x, nil
}
