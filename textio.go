package xhybrid

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text interchange format is a line-based record of X locations, easy
// to produce from ATPG log post-processing:
//
//	# comments and blank lines are ignored
//	design <chains> <chainLen> <patterns>
//	x <pattern> <chain> <pos>
//	xr <pattern> <chain> <posFrom> <posTo>   # inclusive run
//
// All indices are 0-based. The design line must come first.

// WriteText serializes the X locations in the text format.
func (x *XLocations) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# xhybrid X-location map\n")
	fmt.Fprintf(bw, "design %d %d %d\n", x.geom.Chains, x.geom.ChainLen, x.m.Patterns())
	for _, c := range x.m.XCells() {
		chain, pos := x.geom.CellCoord(c.Cell)
		c.Patterns.ForEach(func(p int) {
			fmt.Fprintf(bw, "x %d %d %d\n", p, chain, pos)
		})
	}
	return bw.Flush()
}

// ReadXLocationsText parses the text format.
func ReadXLocationsText(r io.Reader) (*XLocations, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var x *XLocations
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "design":
			if x != nil {
				return nil, fmt.Errorf("xhybrid: line %d: duplicate design line", lineNo)
			}
			var chains, chainLen, patterns int
			if _, err := fmt.Sscanf(line, "design %d %d %d", &chains, &chainLen, &patterns); err != nil {
				return nil, fmt.Errorf("xhybrid: line %d: bad design line: %w", lineNo, err)
			}
			var err error
			x, err = NewXLocations(chains, chainLen, patterns)
			if err != nil {
				return nil, fmt.Errorf("xhybrid: line %d: %w", lineNo, err)
			}
		case "x":
			if x == nil {
				return nil, fmt.Errorf("xhybrid: line %d: x before design", lineNo)
			}
			var p, chain, pos int
			if _, err := fmt.Sscanf(line, "x %d %d %d", &p, &chain, &pos); err != nil {
				return nil, fmt.Errorf("xhybrid: line %d: bad x line: %w", lineNo, err)
			}
			if err := x.AddX(p, chain, pos); err != nil {
				return nil, fmt.Errorf("xhybrid: line %d: %w", lineNo, err)
			}
		case "xr":
			if x == nil {
				return nil, fmt.Errorf("xhybrid: line %d: xr before design", lineNo)
			}
			var p, chain, from, to int
			if _, err := fmt.Sscanf(line, "xr %d %d %d %d", &p, &chain, &from, &to); err != nil {
				return nil, fmt.Errorf("xhybrid: line %d: bad xr line: %w", lineNo, err)
			}
			if to < from {
				return nil, fmt.Errorf("xhybrid: line %d: xr run reversed", lineNo)
			}
			for pos := from; pos <= to; pos++ {
				if err := x.AddX(p, chain, pos); err != nil {
					return nil, fmt.Errorf("xhybrid: line %d: %w", lineNo, err)
				}
			}
		default:
			return nil, fmt.Errorf("xhybrid: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("xhybrid: no design line found")
	}
	return x, nil
}
