// Package xhybrid reproduces "Reducing Control Bit Overhead for
// X-Masking/X-Canceling Hybrid Architecture via Pattern Partitioning"
// (Kang, Touba, Yang — DAC 2016).
//
// Scan-test output responses are compacted in a MISR; unknown (X) values
// corrupt signatures and must be handled. X-masking blocks X's before the
// compactor but needs control bits for every scan cell of every pattern;
// an X-canceling MISR lets X's in and removes them algebraically, paying
// control bits per X. This package implements the paper's hybrid: test
// patterns are partitioned by the inter-correlation of their X locations so
// that one X-mask (which never covers an observable value — fault coverage
// is preserved by construction) is shared by a whole partition, and the few
// remaining X's are retired by the X-canceling MISR. A cost function stops
// partitioning when another round of masks would cost more control bits
// than it saves in canceling.
//
// The facade in this package offers the end-to-end flow on plain Go types:
//
//	x, _ := xhybrid.Workload("ckt-b", 0)      // or build XLocations by hand
//	plan, _ := xhybrid.Partition(x, xhybrid.Options{})
//	fmt.Println(plan.TotalBits, plan.ImprovementOverCancelOnly)
//
// The full substrate — three-valued logic simulation, gate-level netlists,
// LFSR pattern generation, stuck-at fault simulation, GF(2) elimination,
// symbolic MISRs, and the masking/canceling baselines — lives under
// internal/ and is exercised by the cmd/ tools, examples/ programs, and the
// benchmark harness.
package xhybrid
