package xhybrid

import (
	"context"

	"xhybrid/internal/flow"
)

// FlowSpec describes one end-to-end circuit-flow run: generate a seeded
// circuit, apply LFSR ATPG, simulate the three-valued responses, extract
// the real X-location map, partition it, replay the plan through the
// hardware models and (with FaultSample or FaultFull set) measure stuck-at
// coverage with the PPSFP fault-simulation engine over the collapsed fault
// list. Zero values select the documented defaults (8 PIs, 256 patterns,
// m=32, q=7, strategy paper; faultsim workers inherit Workers). See
// docs/FLOW.md for the stage walkthrough.
type FlowSpec = flow.Spec

// FlowReport is the outcome of one flow run: circuit and X-map statistics,
// plan accounting, replay measurements, optional fault coverage and
// per-stage timing. Report.Preserved is the end-to-end coverage verdict.
type FlowReport = flow.Report

// FlowRunConfig carries the non-serialized knobs of a flow run: the stats
// recorder, the checkpoint/resume machinery (same Checkpoint type as plain
// partition jobs) and the per-stage progress hook (which the faultsim stage
// also drives with per-batch "faultsim done/total" strings).
type FlowRunConfig = flow.RunConfig

// RunFlow executes the full circuit pipeline for the spec. It is RunFlowCtx
// with a background context.
func RunFlow(spec FlowSpec) (*FlowReport, error) {
	return RunFlowCtx(context.Background(), spec, FlowRunConfig{})
}

// RunFlowCtx is RunFlow under a context and run configuration: canceling
// ctx aborts the simulation between pattern blocks, the partitioner
// mid-round and the fault simulator between faults. The report is
// deterministic apart from stage wall times —
// equal specs give equal X-map digests, plans and replay measurements at
// any worker count.
func RunFlowCtx(ctx context.Context, spec FlowSpec, cfg FlowRunConfig) (*FlowReport, error) {
	return flow.RunSpec(ctx, spec, cfg)
}
