package xhybrid

import (
	"context"
	"fmt"
	"strings"

	"xhybrid/internal/core"
	"xhybrid/internal/correlation"
	"xhybrid/internal/misr"
	"xhybrid/internal/obs"
	"xhybrid/internal/scan"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// Stats is the observability recorder of the hybrid pipeline: set one on
// Options.Stats and the partitioner, canceling paths and replay record
// per-stage wall time and counters (rounds, splits scored, halts, cycles
// replayed) into it. A nil *Stats disables observation with no overhead.
// Obtain a report with Snapshot.
type Stats = obs.Recorder

// NewStats returns an empty enabled recorder.
func NewStats() *Stats { return obs.New() }

// Checkpoint is a crash-durable snapshot of a partitioning run's committed
// progress at a round boundary: the attempt trace, the running cost totals
// and a content digest of the live partitions. Emitted via
// Options.CheckpointSink and replayed via Options.Resume, it makes a
// resumed run byte-identical to an uninterrupted one (the engine replays
// the trace through the same incremental scorer and verifies every
// recorded cost on the way). The JSON encoding is the spool format of
// internal/jobs.
type Checkpoint = core.Checkpoint

// ErrCheckpointMismatch reports an Options.Resume checkpoint that does not
// replay onto this run (different input, options, or a corrupted trace);
// match with errors.Is and fall back to an older checkpoint or a fresh run.
var ErrCheckpointMismatch = core.ErrCheckpointMismatch

// ErrUnknownStrategy reports an Options.Strategy no registered strategy or
// alias matches; match with errors.Is. The error text enumerates the valid
// names.
var ErrUnknownStrategy = core.ErrUnknownStrategy

// Strategies returns the canonical names of every registered partitioning
// strategy, sorted — the exact vocabulary Options.Strategy, flow specs,
// jobs and the HTTP API accept (plus the aliases).
func Strategies() []string { return core.StrategyNames() }

// StrategyAliases returns the accepted alternate strategy spellings mapped
// to their canonical names (the legacy "greedy" resolves to "greedy-cost").
func StrategyAliases() map[string]string { return core.StrategyAliases() }

// XLocations records which scan cells capture unknown (X) values under
// which test patterns — the only view of the output responses the paper's
// algorithms need.
type XLocations struct {
	geom scan.Geometry
	m    *xmap.XMap
}

// NewXLocations returns an empty X-location map for a design with the given
// scan geometry and pattern count.
func NewXLocations(chains, chainLen, patterns int) (*XLocations, error) {
	g, err := scan.NewGeometry(chains, chainLen)
	if err != nil {
		return nil, err
	}
	if patterns <= 0 {
		return nil, fmt.Errorf("xhybrid: non-positive pattern count %d", patterns)
	}
	return &XLocations{geom: g, m: xmap.New(patterns, g.Cells())}, nil
}

// AddX marks the scan cell at (chain, pos) as capturing an X under pattern p
// (all indices 0-based).
func (x *XLocations) AddX(p, chain, pos int) error {
	if p < 0 || p >= x.m.Patterns() {
		return fmt.Errorf("xhybrid: pattern %d out of range [0,%d)", p, x.m.Patterns())
	}
	if chain < 0 || chain >= x.geom.Chains || pos < 0 || pos >= x.geom.ChainLen {
		return fmt.Errorf("xhybrid: cell (%d,%d) outside %v", chain, pos, x.geom)
	}
	x.m.Add(p, x.geom.CellIndex(chain, pos))
	return nil
}

// FromPatternRows builds an XLocations from one response string per pattern:
// each string has one rune per scan cell in chain-major order, with 'x'/'X'
// marking unknown captures ('0', '1' and '-' mark known values).
func FromPatternRows(chains, chainLen int, rows []string) (*XLocations, error) {
	x, err := NewXLocations(chains, chainLen, len(rows))
	if err != nil {
		return nil, err
	}
	for p, row := range rows {
		clean := strings.Map(func(r rune) rune {
			if r == ' ' || r == '_' {
				return -1
			}
			return r
		}, row)
		if len(clean) != x.geom.Cells() {
			return nil, fmt.Errorf("xhybrid: pattern %d has %d cells, want %d", p, len(clean), x.geom.Cells())
		}
		for cell, r := range clean {
			switch r {
			case 'x', 'X':
				x.m.Add(p, cell)
			case '0', '1', '-':
			default:
				return nil, fmt.Errorf("xhybrid: pattern %d has invalid rune %q", p, r)
			}
		}
	}
	return x, nil
}

// FromResponses derives the X locations from fully simulated responses.
func FromResponses(s *scan.ResponseSet) *XLocations {
	return &XLocations{geom: s.Geom, m: xmap.FromResponses(s)}
}

// Chains returns the scan-chain count.
func (x *XLocations) Chains() int { return x.geom.Chains }

// ChainLen returns the scan-chain length.
func (x *XLocations) ChainLen() int { return x.geom.ChainLen }

// Patterns returns the test-pattern count.
func (x *XLocations) Patterns() int { return x.m.Patterns() }

// Cells returns the total scan-cell count.
func (x *XLocations) Cells() int { return x.m.Cells() }

// TotalX returns the total number of X captures.
func (x *XLocations) TotalX() int { return x.m.TotalX() }

// Density returns the fraction of response bits that are X.
func (x *XLocations) Density() float64 { return x.m.Density() }

// HasX reports whether pattern p captures an X at (chain, pos).
func (x *XLocations) HasX(p, chain, pos int) bool {
	return x.m.Has(p, x.geom.CellIndex(chain, pos))
}

// Options configures Partition. The zero value selects the paper's
// configuration: a 32-bit MISR with q=7 and the deterministic Algorithm 1
// heuristic.
type Options struct {
	// MISRSize is the X-canceling MISR width m (default 32).
	MISRSize int
	// Q is the number of X-free combinations per halt (default 7).
	Q int
	// Strategy selects the split rule by its registry name: "paper"
	// (default), "paper-random", "paper-retry", "greedy-cost" (accepted
	// alias "greedy") or "xcode-hybrid". Strategies enumerates the full
	// vocabulary; an unknown name returns an error wrapping
	// ErrUnknownStrategy that lists it.
	Strategy string
	// Seed drives "paper-random".
	Seed int64
	// MaxRounds caps accepted partitioning rounds (0 = unlimited).
	MaxRounds int
	// Workers bounds the goroutines used by the partitioning hot loops
	// (0 = all CPUs). The plan is identical for any worker count.
	Workers int
	// Stats, when non-nil, receives the pipeline's counters and per-stage
	// spans (see Stats). The hot paths pay nothing when it is nil.
	Stats *Stats
	// CheckpointEvery emits a Checkpoint to CheckpointSink after every
	// CheckpointEvery accepted partitioning rounds (0 disables). Checkpoints
	// never change the plan; they only record progress.
	CheckpointEvery int
	// CheckpointSink receives the run's periodic checkpoints, synchronously
	// at commit boundaries; an error aborts the run.
	CheckpointSink func(*Checkpoint) error
	// Resume, when non-nil, replays the checkpoint before the first fresh
	// round and continues where it left off. The resumed plan is
	// byte-identical to an uninterrupted run with the same input and
	// options; a checkpoint that fails verification returns
	// ErrCheckpointMismatch.
	Resume *Checkpoint
}

// Normalized returns the options with the engine defaults filled in
// (MISRSize 32, Q 7) and Strategy resolved to its canonical registry name
// ("" becomes "paper", the legacy "greedy" becomes "greedy-cost"). This is
// the one source of truth for option normalization: params derives the
// engine configuration from it, and the jobs spool and the serving layer
// normalize through it so equal submissions spool and cache equally. An
// unknown strategy returns an error wrapping ErrUnknownStrategy that
// enumerates the registry vocabulary.
func (o Options) Normalized() (Options, error) {
	if o.MISRSize == 0 {
		o.MISRSize = 32
	}
	if o.Q == 0 {
		o.Q = 7
	}
	strat, err := core.LookupStrategy(o.Strategy)
	if err != nil {
		return o, err
	}
	o.Strategy = strat.Name()
	return o, nil
}

func (o Options) params(geom scan.Geometry) (core.Params, error) {
	o, err := o.Normalized()
	if err != nil {
		return core.Params{}, fmt.Errorf("xhybrid: %w", err)
	}
	cfg, err := misr.Standard(o.MISRSize)
	if err != nil {
		return core.Params{}, err
	}
	strat, err := core.LookupStrategy(o.Strategy)
	if err != nil {
		return core.Params{}, fmt.Errorf("xhybrid: %w", err)
	}
	return core.Params{
		Geom:            geom,
		Cancel:          xcancel.Config{MISR: cfg, Q: o.Q},
		Strategy:        strat,
		Seed:            o.Seed,
		MaxRounds:       o.MaxRounds,
		Workers:         o.Workers,
		Obs:             o.Stats,
		CheckpointEvery: o.CheckpointEvery,
		CheckpointSink:  o.CheckpointSink,
		Resume:          o.Resume,
	}, nil
}

// PartitionInfo describes one final pattern partition.
type PartitionInfo struct {
	// Patterns lists the member pattern indices, ascending.
	Patterns []int
	// MaskedCells lists the cells the shared mask covers, ascending.
	MaskedCells []int
	// MaskedX is the number of X's the mask removes.
	MaskedX int
}

// RoundInfo traces one partitioning round.
type RoundInfo struct {
	Round      int
	SplitCell  int
	CostBefore int
	CostAfter  int
	Accepted   bool
}

// Plan is the outcome of the hybrid flow with full accounting and the
// baseline comparison (the paper's Table 1 columns).
type Plan struct {
	Partitions []PartitionInfo
	Rounds     []RoundInfo

	TotalX    int
	MaskedX   int
	ResidualX int

	MaskBits   int
	CancelBits int
	TotalBits  int

	MaskOnlyBits   int
	CancelOnlyBits int

	ImprovementOverMaskOnly   float64
	ImprovementOverCancelOnly float64

	TestTimeCancelOnly  float64
	TestTimeHybrid      float64
	TestTimeImprovement float64
}

// Partition runs the paper's partitioning algorithm and returns the plan.
// It is PartitionCtx with a background context.
func Partition(x *XLocations, opt Options) (*Plan, error) {
	return PartitionCtx(context.Background(), x, opt)
}

// PartitionCtx is Partition under a context: canceling ctx (or passing a
// context whose deadline expires) stops the partitioner mid-round and
// returns an error matching errors.Is(err, context.Canceled) or
// context.DeadlineExceeded. The serving layer threads every request's
// context through here so a dropped connection stops compute.
func PartitionCtx(ctx context.Context, x *XLocations, opt Options) (*Plan, error) {
	params, err := opt.params(x.geom)
	if err != nil {
		return nil, err
	}
	cmp, err := core.EvaluateCtx(ctx, x.m, params)
	if err != nil {
		return nil, err
	}
	plan := &Plan{
		TotalX:                    cmp.TotalX,
		MaskedX:                   cmp.Result.MaskedX,
		ResidualX:                 cmp.Result.ResidualX,
		MaskBits:                  cmp.Result.MaskBits,
		CancelBits:                cmp.Result.CancelBits,
		TotalBits:                 cmp.Result.TotalBits,
		MaskOnlyBits:              cmp.MaskOnlyBits,
		CancelOnlyBits:            cmp.CancelOnlyBits,
		ImprovementOverMaskOnly:   cmp.ImprovementOverMask,
		ImprovementOverCancelOnly: cmp.ImprovementOverCancel,
		TestTimeCancelOnly:        cmp.TestTimeCancelOnly,
		TestTimeHybrid:            cmp.TestTimeHybrid,
		TestTimeImprovement:       cmp.TestTimeImprovement,
	}
	for _, p := range cmp.Result.Partitions {
		plan.Partitions = append(plan.Partitions, PartitionInfo{
			Patterns:    p.Patterns.Indices(),
			MaskedCells: p.Mask.Cells.Indices(),
			MaskedX:     p.MaskedX,
		})
	}
	for _, r := range cmp.Result.Rounds {
		plan.Rounds = append(plan.Rounds, RoundInfo{
			Round: r.Round, SplitCell: r.SplitCell,
			CostBefore: r.CostBefore, CostAfter: r.CostAfter, Accepted: r.Accepted,
		})
	}
	return plan, nil
}

// Analysis summarizes the X-value correlation structure (the paper's
// Section 3 statistics).
type Analysis struct {
	// XCells is the number of cells capturing at least one X.
	XCells int
	// TotalX is the total X count.
	TotalX int
	// MaxCellCount is the largest per-cell X count.
	MaxCellCount int
	// LargestGroupSize and LargestGroupCount describe the biggest group of
	// cells sharing the same X count.
	LargestGroupSize  int
	LargestGroupCount int
	// LargestGroupCorrelation is the fraction of that group sharing one
	// exact pattern signature (1.0 = perfect inter-correlation).
	LargestGroupCorrelation float64
	// CellFractionFor90PctX is the fraction of all cells holding 90% of
	// the X's ("90% of X's are captured in 4.9% of the scan cells").
	CellFractionFor90PctX float64
	// IntraAdjacentFraction is the share of X's with an X neighbor at an
	// adjacent position of the same chain in the same pattern — the
	// spatial (intra) correlation of [13].
	IntraAdjacentFraction float64
}

// Analyze runs the X-value correlation analysis.
func Analyze(x *XLocations) *Analysis {
	a := correlation.Analyze(x.m)
	out := &Analysis{
		XCells:                a.XCells,
		TotalX:                a.TotalX,
		MaxCellCount:          a.MaxCellCount(),
		CellFractionFor90PctX: a.ConcentrationCellFraction(0.90),
		IntraAdjacentFraction: correlation.AnalyzeIntra(x.m, x.geom).AdjacentFraction,
	}
	if g, ok := a.LargestGroup(); ok {
		out.LargestGroupSize = g.Size()
		out.LargestGroupCount = g.Count
		out.LargestGroupCorrelation = a.InterCorrelation(g)
	}
	return out
}

// Workload synthesizes one of the paper's industrial-design profiles:
// "ckt-a", "ckt-b" or "ckt-c" (seed 0 uses the profile default).
func Workload(name string, seed int64) (*XLocations, error) {
	var p workload.Profile
	switch strings.ToLower(name) {
	case "ckt-a", "ckta", "a":
		p = workload.CKTA()
	case "ckt-b", "cktb", "b":
		p = workload.CKTB()
	case "ckt-c", "cktc", "c":
		p = workload.CKTC()
	default:
		return nil, fmt.Errorf("xhybrid: unknown workload %q (want ckt-a, ckt-b or ckt-c)", name)
	}
	if seed != 0 {
		p.Seed = seed
	}
	m, err := p.Generate()
	if err != nil {
		return nil, err
	}
	return &XLocations{geom: p.Geometry(), m: m}, nil
}

// PaperExample returns the Figure 4 fixture: 8 patterns, 5 chains of 3
// cells, 28 X's.
func PaperExample() *XLocations {
	x, err := NewXLocations(5, 3, 8)
	if err != nil {
		panic(err)
	}
	add := func(chain, pos int, patterns ...int) {
		for _, p := range patterns {
			if err := x.AddX(p-1, chain-1, pos-1); err != nil {
				panic(err)
			}
		}
	}
	add(1, 1, 1, 4, 5, 6)
	add(2, 1, 1, 4, 5, 6)
	add(3, 1, 1, 4, 5, 6)
	add(2, 3, 2, 3)
	add(4, 3, 1, 2, 3, 4, 5, 7, 8)
	add(5, 2, 1, 2, 4, 5, 7, 8)
	add(5, 3, 6)
	return x
}
