package xhybrid_test

import (
	"errors"
	"strings"
	"testing"

	"xhybrid"
	"xhybrid/internal/core"
	"xhybrid/internal/flow"
	"xhybrid/internal/jobs"
)

// vocabSpec builds a flow spec that is valid except (possibly) for its
// strategy name.
func vocabSpec(strategy string) flow.Spec {
	return flow.Spec{Cells: 64, Chains: 8, MISRSize: 8, Q: 3, Strategy: strategy}
}

// surfaces are every layer that turns a wire strategy name into a runnable
// strategy. Each returns the canonical name it resolved to, or an error.
// partbench and stratbench call core.LookupStrategy directly, so the core
// row covers the CLIs.
var surfaces = []struct {
	name    string
	resolve func(strategy string) (string, error)
}{
	{"core", func(s string) (string, error) {
		strat, err := core.LookupStrategy(s)
		if err != nil {
			return "", err
		}
		return strat.Name(), nil
	}},
	{"facade", func(s string) (string, error) {
		norm, err := xhybrid.Options{Strategy: s}.Normalized()
		if err != nil {
			return "", err
		}
		return norm.Strategy, nil
	}},
	{"flow", func(s string) (string, error) {
		spec := vocabSpec(s)
		spec.Normalize()
		if err := spec.Validate(); err != nil {
			return "", err
		}
		return spec.Strategy, nil
	}},
	{"jobs", func(s string) (string, error) {
		norm, err := jobs.Options{Strategy: s}.Normalized(8)
		if err != nil {
			return "", err
		}
		return norm.Strategy, nil
	}},
}

// TestStrategyVocabularyAcrossSurfaces is the drift lock: the facade, the
// flow pipeline, the jobs spool and the CLI path (core.LookupStrategy) must
// accept exactly the registry vocabulary — canonical names, aliases, and
// the empty default — and canonicalize every accepted spelling identically.
// Before the registry, four independent string switches answered this
// question four different ways ("greedy" vs "greedy-cost").
func TestStrategyVocabularyAcrossSurfaces(t *testing.T) {
	type want struct{ in, canonical string }
	cases := []want{{"", "paper"}}
	for _, name := range core.StrategyNames() {
		cases = append(cases, want{name, name})
	}
	for alias, canonical := range core.StrategyAliases() {
		cases = append(cases, want{alias, canonical})
	}
	for _, sf := range surfaces {
		for _, c := range cases {
			got, err := sf.resolve(c.in)
			if err != nil {
				t.Errorf("%s rejected %q: %v", sf.name, c.in, err)
				continue
			}
			if got != c.canonical {
				t.Errorf("%s resolved %q to %q, want %q", sf.name, c.in, got, c.canonical)
			}
		}
	}
}

// TestStrategyVocabularyRejection asserts every surface rejects an unknown
// name with an error that wraps core.ErrUnknownStrategy and enumerates the
// full accepted vocabulary — the contract that makes a typo on any surface
// self-documenting.
func TestStrategyVocabularyRejection(t *testing.T) {
	for _, sf := range surfaces {
		_, err := sf.resolve("simulated-annealing")
		if err == nil {
			t.Errorf("%s accepted an unknown strategy", sf.name)
			continue
		}
		if !errors.Is(err, core.ErrUnknownStrategy) {
			t.Errorf("%s error %v does not wrap ErrUnknownStrategy", sf.name, err)
		}
		for _, name := range core.StrategyVocabulary() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("%s error %q does not enumerate %q", sf.name, err, name)
			}
		}
	}
}

// TestFacadeVocabularyExports pins the facade's re-exports to the registry,
// so client code can enumerate strategies without importing internal/core.
func TestFacadeVocabularyExports(t *testing.T) {
	names := xhybrid.Strategies()
	if len(names) != len(core.StrategyNames()) {
		t.Fatalf("facade exports %v, registry has %v", names, core.StrategyNames())
	}
	for i, n := range core.StrategyNames() {
		if names[i] != n {
			t.Fatalf("facade exports %v, registry has %v", names, core.StrategyNames())
		}
	}
	if !errors.Is(xhybrid.ErrUnknownStrategy, core.ErrUnknownStrategy) {
		t.Fatal("facade ErrUnknownStrategy is not core's")
	}
	if got := xhybrid.StrategyAliases()["greedy"]; got != "greedy-cost" {
		t.Fatalf(`facade alias "greedy" = %q`, got)
	}
}
