package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFigure23Output(t *testing.T) {
	var buf bytes.Buffer
	if err := runFigure23(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"M1 = X1 + O3 + O8 + O13",
		"M6 = O2 + X3 + X4",
		"rank 4, 2 X-free combinations",
		"M1 ^ M3 ^ M5",
		"M1 ^ M4",
		"M1^M3^M5 X-free: true; M1^M4 X-free: true",
		"12 bits",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure 2/3 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigures456Output(t *testing.T) {
	var buf bytes.Buffer
	if err := runFigures456(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"28 X's in 7 cells",
		"cost 85 -> 60",
		"cost 60 -> 58",
		"23/28 X's masked",
		"masks 45 + canceling 13 = 58",
		"cost 47 -> 44",
		"cost 44 -> 51",
		"stop (cost would rise)",
		"masks 30 + canceling 14 = 44",
		"conventional X-masking: 120",
		"Partition 3: patterns [2 3 7 8], mask [SC4[3]]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("figures 4-6 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSection3Output(t *testing.T) {
	var buf bytes.Buffer
	if err := runSection3(&buf, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"X-capturing cells",
		"90% of X's are captured in",
		"Largest equal-count group",
		"share the exact same pattern set",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("section 3 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable1Scaled(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable1(&buf, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CKT-A", "CKT-B", "CKT-C", "Impv/[12]", "Normalized test time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAblations(t *testing.T) {
	for _, name := range []string{"strategies", "rounding", "granularity", "shadow", "qsweep", "correlation", "superset", "encoding", "ordering", "aliasing", "compressedcost"} {
		var buf bytes.Buffer
		if err := runAblation(&buf, name, 10); err != nil {
			t.Fatalf("ablation %s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("ablation %s produced no output", name)
		}
	}
	if err := runAblation(&bytes.Buffer{}, "nope", 10); err == nil {
		t.Fatal("accepted unknown ablation")
	}
}

func TestFig4MapMatchesPaper(t *testing.T) {
	m := fig4Map()
	if m.TotalX() != 28 || m.NumXCells() != 7 {
		t.Fatalf("fig4 map: %d X's in %d cells", m.TotalX(), m.NumXCells())
	}
}

func TestRunTable1Seeds(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable1Seeds(&buf, 20, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "robustness") {
		t.Fatal("seeds sweep output wrong")
	}
}
