package main

import (
	"fmt"
	"io"

	"xhybrid/internal/core"
	"xhybrid/internal/correlation"
	"xhybrid/internal/gf2"
	"xhybrid/internal/logic"
	"xhybrid/internal/misr"
	"xhybrid/internal/report"
	"xhybrid/internal/scan"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// fig4Map builds the Figure 4 X-map (8 patterns, 5 chains x 3 cells).
func fig4Map() *xmap.XMap {
	m := xmap.New(8, 15)
	add := func(chain, pos int, patterns ...int) {
		cell := (chain-1)*3 + (pos - 1)
		for _, p := range patterns {
			m.Add(p-1, cell)
		}
	}
	add(1, 1, 1, 4, 5, 6)
	add(2, 1, 1, 4, 5, 6)
	add(3, 1, 1, 4, 5, 6)
	add(2, 3, 2, 3)
	add(4, 3, 1, 2, 3, 4, 5, 7, 8)
	add(5, 2, 1, 2, 4, 5, 7, 8)
	add(5, 3, 6)
	return m
}

// runFigure23 reproduces the symbolic-simulation example: first the exact
// Figure 2 equations and their Figure 3 Gaussian elimination, then a live
// symbolic MISR run showing the same machinery end to end.
func runFigure23(w io.Writer) error {
	fmt.Fprintln(w, "=== Figure 2/3: Symbolic MISR simulation and X-canceling ===")
	fmt.Fprintln(w, "\nPaper fixture: 6-bit MISR, 14 deterministic (O) and 4 unknown (X) values.")
	equations := []string{
		"M1 = X1 + O3 + O8 + O13",
		"M2 = X1 + O2 + X2 + X3 + O9 + O14",
		"M3 = O2 + O5 + X3 + O10 + O15",
		"M4 = X1 + O6 + O11 + O16",
		"M5 = X1 + O2 + X3 + O12 + O17",
		"M6 = O2 + X3 + X4",
	}
	for _, eq := range equations {
		fmt.Fprintln(w, " ", eq)
	}
	// X-dependence matrix (columns X1..X4) from the equations above.
	dep := gf2.ParseMat("1000", "1110", "0010", "1000", "1010", "0011")
	sels := gf2.NullCombinations(dep)
	fmt.Fprintf(w, "\nGaussian elimination: rank %d, %d X-free combinations:\n", gf2.Rank(dep), len(sels))
	names := []string{"M1", "M2", "M3", "M4", "M5", "M6"}
	for _, sel := range sels {
		terms := ""
		sel.ForEach(func(i int) {
			if terms != "" {
				terms += " ^ "
			}
			terms += names[i]
		})
		fmt.Fprintf(w, "  %s  (X-free)\n", terms)
	}
	m135 := gf2.FromIndices(6, 0, 2, 4)
	m14 := gf2.FromIndices(6, 0, 3)
	fmt.Fprintf(w, "Paper's combinations M1^M3^M5 X-free: %v; M1^M4 X-free: %v\n",
		dep.VecMul(m135).IsZero(), dep.VecMul(m14).IsZero())

	// Live run: 3 shift cycles into a 6-bit MISR with 4 X's among 18 cells.
	fmt.Fprintln(w, "\nLive symbolic run (6-bit MISR, x^6+x+1, 18 cells, X at cells 1, 7, 12, 18):")
	cfg := misr.MustStandard(6)
	sym := misr.MustNewSymbolic(cfg, 8)
	xCells := map[int]bool{1: true, 7: true, 12: true, 18: true}
	cell := 0
	nextO, nextX := 1, 1
	for cycle := 0; cycle < 3; cycle++ {
		in := make(logic.Vector, 6)
		labels := make([]string, 6)
		for stage := 0; stage < 6; stage++ {
			cell++
			if xCells[cell] {
				in[stage] = logic.X
				labels[stage] = fmt.Sprintf("X%d", nextX)
				nextX++
			} else {
				in[stage] = logic.V(cell % 2) // arbitrary known values
				labels[stage] = fmt.Sprintf("O%d", nextO)
				nextO++
			}
		}
		ls := labels
		sym.ClockVector(in, func(stage int) string { return ls[stage] })
	}
	for i := 0; i < 6; i++ {
		fmt.Fprintln(w, " ", sym.Equation(i))
	}
	live := sym.Matrix()
	liveSels := gf2.NullCombinations(live)
	fmt.Fprintf(w, "Rank %d -> %d X-free combinations; control data = %d halts x m*q = %d bits\n\n",
		gf2.Rank(live), len(liveSels),
		xcancel.Halts(4, 6, 2), xcancel.ControlBitsPerHaltCeil(4, 6, 2))
	return nil
}

// runFigures456 reproduces the worked example: correlation analysis
// (Figure 4), the partitioning trace (Figure 5), mask generation (Figure 6),
// and the Section 4 cost-function walk-through for both MISR configurations.
func runFigures456(w io.Writer) error {
	fmt.Fprintln(w, "=== Figures 4-6 & Section 4: Worked example (8 patterns, 5x3 scan) ===")
	m := fig4Map()
	a := correlation.Analyze(m)
	fmt.Fprintf(w, "\nFigure 4 analysis: %d X's in %d cells; max per-cell count %d\n",
		a.TotalX, a.XCells, a.MaxCellCount())
	lg, _ := a.LargestGroup()
	fmt.Fprintf(w, "Largest equal-count group: %d cells with %d X's each (inter-correlation %.2f)\n",
		lg.Size(), lg.Count, a.InterCorrelation(lg))

	geom := scan.MustGeometry(5, 3)
	for _, q := range []int{2, 1} {
		fmt.Fprintf(w, "\n--- MISR m=10, q=%d ---\n", q)
		res, err := core.Run(m, core.Params{
			Geom:   geom,
			Cancel: xcancel.Config{MISR: misr.MustStandard(10), Q: q},
		})
		if err != nil {
			return err
		}
		for _, r := range res.Rounds {
			verdict := "continue"
			if !r.Accepted {
				verdict = "stop (cost would rise)"
			}
			fmt.Fprintf(w, "Round %d: split on cell %d (group of %d cells with %d X's): cost %d -> %d  [%s]\n",
				r.Round, r.SplitCell, r.GroupSize, r.GroupCount, r.CostBefore, r.CostAfter, verdict)
		}
		fmt.Fprintf(w, "Final: %d partitions, %d/%d X's masked, %d leak to X-canceling MISR\n",
			len(res.Partitions), res.MaskedX, res.TotalX, res.ResidualX)
		for i, p := range res.Partitions {
			pats := make([]int, 0, p.Size())
			for _, idx := range p.Patterns.Indices() {
				pats = append(pats, idx+1) // paper numbers patterns from 1
			}
			cells := make([]string, 0)
			p.Mask.Cells.ForEach(func(c int) {
				cells = append(cells, fmt.Sprintf("SC%d[%d]", c/3+1, c%3+1))
			})
			fmt.Fprintf(w, "  Partition %d: patterns %v, mask %v (%d X's removed)\n", i+1, pats, cells, p.MaskedX)
		}
		fmt.Fprintf(w, "Control bits: masks %d + canceling %d = %d (conventional X-masking: %d)\n",
			res.MaskBits, res.CancelBits, res.TotalBits, geom.Cells()*m.Patterns())
	}
	fmt.Fprintln(w)
	return nil
}

// runSection3 reproduces the X-value correlation analysis narrative on the
// CKT-B-class synthetic workload.
func runSection3(w io.Writer, scale int) error {
	fmt.Fprintln(w, "=== Section 3: X-value correlation analysis (CKT-B class) ===")
	prof := workload.CKTB()
	if scale > 1 {
		prof = workload.Scaled(prof, scale)
	}
	m, err := prof.Generate()
	if err != nil {
		return err
	}
	a := correlation.Analyze(m)
	fmt.Fprintf(w, "\nScan cells: %d; X-capturing cells: %d (paper: 36,075 cells, 3,903 X-capturing)\n",
		m.Cells(), a.XCells)
	fmt.Fprintf(w, "90%% of X's are captured in %s of the scan cells (paper: 4.9%%)\n",
		report.Percent(a.ConcentrationCellFraction(0.90)))
	lg, ok := a.LargestGroup()
	if !ok {
		return fmt.Errorf("no X groups in workload")
	}
	clusters := a.SignatureClusters(lg)
	fmt.Fprintf(w, "Largest equal-count group: %d cells each with %d X's (paper: 177 cells with 406 X's)\n",
		lg.Size(), lg.Count)
	fmt.Fprintf(w, "Of those, %d share the exact same pattern set (paper: 172 of 177)\n",
		len(clusters[0].Cells))
	fmt.Fprintf(w, "Inter-correlation of the group: %.3f\n", a.InterCorrelation(lg))
	intra := correlation.AnalyzeIntra(m, prof.Geometry())
	fmt.Fprintf(w, "Intra (spatial) correlation: %d X's in %d runs (mean %.2f, max %d); %.1f%% adjacent\n\n",
		intra.TotalX, intra.Runs, intra.MeanRunLength(), intra.MaxRunLength, 100*intra.AdjacentFraction)
	return nil
}
