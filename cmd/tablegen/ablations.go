package main

import (
	"fmt"
	"io"
	"math/rand"

	"xhybrid/internal/core"
	"xhybrid/internal/logic"
	"xhybrid/internal/misr"
	"xhybrid/internal/report"
	"xhybrid/internal/scan"
	"xhybrid/internal/superset"
	"xhybrid/internal/tester"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmask"
)

func runAblation(w io.Writer, name string, scale int) error {
	if scale < 4 {
		// Ablations sweep many configurations; keep them quick by default.
		scale = 4
	}
	switch name {
	case "strategies":
		return ablStrategies(w, scale)
	case "rounding":
		return ablRounding(w)
	case "granularity":
		return ablGranularity(w, scale)
	case "shadow":
		return ablShadow(w, scale)
	case "qsweep":
		return ablQSweep(w, scale)
	case "correlation":
		return ablCorrelation(w, scale)
	case "superset":
		return ablSuperset(w, scale)
	case "encoding":
		return ablEncoding(w, scale)
	case "ordering":
		return ablOrdering(w, scale)
	case "aliasing":
		return ablAliasing(w, scale)
	case "compressedcost":
		return ablCompressedCost(w, scale)
	case "all":
		for _, f := range []func(io.Writer, int) error{
			ablStrategies, ablGranularity, ablShadow, ablQSweep,
			ablCorrelation, ablSuperset, ablEncoding, ablOrdering,
			ablAliasing, ablCompressedCost,
		} {
			if err := f(w, scale); err != nil {
				return err
			}
		}
		return ablRounding(w)
	}
	return fmt.Errorf("unknown ablation %q", name)
}

// ablAliasing measures the error-detection confidence of the X-canceling
// MISR's X-free signatures as a function of q: a random single-bit error is
// injected into a known response position and the run is compared against
// the golden signatures.
func ablAliasing(w io.Writer, scale int) error {
	fmt.Fprintln(w, "=== Extension: X-free signature aliasing vs q ===")
	tab := report.New("16-bit MISR, 12 chains x 24 cells, 6 patterns, 3% X's, 200 error trials",
		"q", "Halts", "Signatures", "Detected", "Escape rate")
	_ = scale
	r := rand.New(rand.NewSource(99))
	geom := scan.MustGeometry(16, 24)
	set := scan.NewResponseSet(geom)
	for p := 0; p < 6; p++ {
		resp := scan.NewResponse(geom)
		for c := 0; c < geom.Chains; c++ {
			for pos := 0; pos < geom.ChainLen; pos++ {
				switch {
				case r.Float64() < 0.03:
					resp.Set(c, pos, logic.X)
				case r.Intn(2) == 1:
					resp.Set(c, pos, logic.One)
				default:
					resp.Set(c, pos, logic.Zero)
				}
			}
		}
		if err := set.Append(resp); err != nil {
			return err
		}
	}
	// Collect known positions once.
	type pos struct{ p, chain, cell int }
	var known []pos
	for p, resp := range set.Responses {
		for c := 0; c < geom.Chains; c++ {
			for t := 0; t < geom.ChainLen; t++ {
				if resp.At(c, t) != logic.X {
					known = append(known, pos{p, c, t})
				}
			}
		}
	}
	for _, q := range []int{1, 2, 3, 5} {
		cfg := xcancel.Config{MISR: misr.MustStandard(16), Q: q}
		golden, err := xcancel.RunResponses(cfg, set)
		if err != nil {
			return err
		}
		detected, trials := 0, 200
		var signatures int
		for _, h := range golden.Halts {
			signatures += len(h.Signatures)
		}
		for trial := 0; trial < trials; trial++ {
			k := known[r.Intn(len(known))]
			faulty := scan.NewResponseSet(geom)
			for p, resp := range set.Responses {
				cp := resp.Clone()
				if p == k.p {
					cp.Set(k.chain, k.cell, logic.Not(cp.At(k.chain, k.cell)))
				}
				if err := faulty.Append(cp); err != nil {
					return err
				}
			}
			res, err := xcancel.RunResponses(cfg, faulty)
			if err != nil {
				return err
			}
			if res.FinalSignature != golden.FinalSignature {
				detected++
				continue
			}
			for i := range golden.Halts {
				for j := range golden.Halts[i].Signatures {
					if golden.Halts[i].Signatures[j].Parity != res.Halts[i].Signatures[j].Parity {
						detected++
						goto next
					}
				}
			}
		next:
		}
		tab.Row(fmt.Sprintf("%d", q),
			fmt.Sprintf("%d", len(golden.Halts)),
			fmt.Sprintf("%d", signatures),
			fmt.Sprintf("%d/%d", detected, trials),
			fmt.Sprintf("%.1f%%", 100*float64(trials-detected)/float64(trials)))
	}
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "Escapes shrink monotonically with q. Single-bit errors are the worst")
	fmt.Fprintln(w, "case: one whose MISR trace falls inside a session's X-row space is")
	fmt.Fprintln(w, "indistinguishable from an X, so rates sit above the 2^-q figure quoted")
	fmt.Fprintln(w, "for random multi-bit errors; real fault effects touch many positions")
	fmt.Fprintln(w, "(see examples/faultcoverage, where coverage matches full observation).")
	fmt.Fprintln(w)
	return nil
}

// ablCompressedCost re-optimizes the partitioning under a compressed
// mask-delivery price: the cost optimum shifts toward more partitions and
// the total delivered volume drops further.
func ablCompressedCost(w io.Writer, scale int) error {
	fmt.Fprintln(w, "=== Extension: partitioning under compressed mask-delivery cost ===")
	tab := report.New(fmt.Sprintf("CKT profiles at 1/%d scale, m=32 q=7; gap-varint mask images", scale),
		"Circuit", "Mask price", "Partitions", "Masked X", "Delivered bits")
	for _, prof := range workload.Profiles() {
		prof = workload.Scaled(prof, scale)
		m, err := prof.Generate()
		if err != nil {
			return err
		}
		base := core.Params{Geom: prof.Geometry(), Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7}, Workers: numWorkers, Obs: obsRec}
		raw, err := core.Run(m, base)
		if err != nil {
			return err
		}
		// Measure the real encoded size of the raw plan's masks and use the
		// mean as the compressed price for a second optimization pass.
		encBits, n := 0, 0
		for _, p := range raw.Partitions {
			encBits += 8 * len(xmask.EncodeGapVarint(p.Mask))
			n++
		}
		price := encBits / max(1, n)
		comp := base
		comp.MaskBitsPerPartition = price
		re, err := core.Run(m, comp)
		if err != nil {
			return err
		}
		// Delivered volume of the re-optimized plan under real encoding.
		delivered := xcancel.ControlBits(re.ResidualX, 32, 7)
		for _, p := range re.Partitions {
			delivered += 8 * len(xmask.EncodeGapVarint(p.Mask))
		}
		tab.Row(prof.Name, fmt.Sprintf("raw (%d)", prof.Geometry().Cells()),
			fmt.Sprintf("%d", len(raw.Partitions)),
			fmt.Sprintf("%d", raw.MaskedX),
			fmt.Sprintf("%d", raw.TotalBits))
		tab.Row("", fmt.Sprintf("varint (~%d)", price),
			fmt.Sprintf("%d", len(re.Partitions)),
			fmt.Sprintf("%d", re.MaskedX),
			fmt.Sprintf("%d", delivered))
	}
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "Cheap compressed mask images make additional partitions pay off sooner,")
	fmt.Fprintln(w, "masking more X's and shrinking the delivered control volume further.")
	fmt.Fprintln(w)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ablSuperset compares the proposed hybrid against simplified superset
// X-canceling [17, 18]: control-bit reuse through union signatures, at an
// observability price the proposed method never pays.
func ablSuperset(w io.Writer, scale int) error {
	fmt.Fprintln(w, "=== Comparison: proposed hybrid vs superset X-canceling [17,18] (simplified) ===")
	tab := report.New(fmt.Sprintf("CKT profiles at 1/%d scale, m=32 q=7", scale),
		"Circuit", "Scheme", "Control bits", "Observable lost", "Needs fault sim")
	for _, prof := range workload.Profiles() {
		prof = workload.Scaled(prof, scale)
		m, err := prof.Generate()
		if err != nil {
			return err
		}
		cmp, err := core.Evaluate(m, core.Params{
			Geom:   prof.Geometry(),
			Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		})
		if err != nil {
			return err
		}
		sup, err := superset.Run(m, superset.Config{MISRSize: 32, Q: 7, MinJaccard: 0.3})
		if err != nil {
			return err
		}
		tab.Row(prof.Name, "per-pattern X-canceling [12]",
			fmt.Sprintf("%d", sup.PerPatternBits), "0", "no")
		tab.Row("", "superset X-canceling [17,18]",
			fmt.Sprintf("%d", sup.ControlBits), fmt.Sprintf("%d", sup.LostObservable), "yes")
		tab.Row("", "proposed hybrid",
			fmt.Sprintf("%d", cmp.HybridBits), "0", "no")
	}
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "Superset reuse also shrinks control data, but sacrifices observable")
	fmt.Fprintln(w, "captures and therefore needs iterative fault simulation; the proposed")
	fmt.Fprintln(w, "partitioning reaches comparable or better volume with zero loss.")
	fmt.Fprintln(w)
	return nil
}

// ablEncoding sizes the partition mask images under compressed encodings
// (extension: requires an on-chip decompressor).
func ablEncoding(w io.Writer, scale int) error {
	fmt.Fprintln(w, "=== Extension: mask-image compression ===")
	tab := report.New(fmt.Sprintf("CKT profiles at 1/%d scale; final paper partitions", scale),
		"Circuit", "Masks", "Raw bits (paper)", "Gap-varint bits", "Sparse-index bits")
	for _, prof := range workload.Profiles() {
		prof = workload.Scaled(prof, scale)
		m, err := prof.Generate()
		if err != nil {
			return err
		}
		res, err := core.Run(m, core.Params{
			Geom:   prof.Geometry(),
			Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		})
		if err != nil {
			return err
		}
		masks := make([]xmask.Mask, len(res.Partitions))
		for i, p := range res.Partitions {
			masks[i] = p.Mask
		}
		c := xmask.CompareEncodings(masks, prof.Geometry().Cells())
		tab.Row(prof.Name, fmt.Sprintf("%d", len(masks)),
			fmt.Sprintf("%d", c.RawBits), fmt.Sprintf("%d", c.GapVarintBits),
			fmt.Sprintf("%d", c.SparseIndexBits))
	}
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "Partition masks are sparse, so compressed delivery shrinks the masking")
	fmt.Fprintln(w, "share of the control data by an order of magnitude — at the cost of an")
	fmt.Fprintln(w, "on-chip decompressor the paper's architecture does not assume.")
	fmt.Fprintln(w)
	return nil
}

// ablOrdering measures the cycle cost of mask reloads under pattern orders.
func ablOrdering(w io.Writer, scale int) error {
	fmt.Fprintln(w, "=== Extension: pattern ordering and mask-reload time ===")
	prof := workload.Scaled(workload.CKTB(), scale)
	m, err := prof.Generate()
	if err != nil {
		return err
	}
	res, err := core.Run(m, core.Params{
		Geom:   prof.Geometry(),
		Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
	})
	if err != nil {
		return err
	}
	halts := xcancel.Halts(res.ResidualX, 32, 7)
	sizes := make([]int, len(res.Partitions))
	for i, p := range res.Partitions {
		sizes[i] = p.Size()
	}
	sorted := tester.OrderedByPartition(sizes)
	// Original ATPG order: walk patterns 0..k-1 and look up each one's
	// partition — maximally interleaved relative to the partition masks.
	interleaved := make([]int, 0, m.Patterns())
	for p := 0; p < m.Patterns(); p++ {
		for i := range res.Partitions {
			if res.Partitions[i].Patterns.Get(p) {
				interleaved = append(interleaved, i)
				break
			}
		}
	}
	tab := report.New(fmt.Sprintf("CKT-B at 1/%d scale, 32 channels", scale),
		"Order", "Mask load", "Loads", "Stall cycles", "Halt cycles", "Normalized time")
	for _, tc := range []struct {
		name  string
		order []int
	}{{"partition-sorted", sorted}, {"original ATPG order", interleaved}} {
		for _, overlap := range []bool{true, false} {
			sched, err := tester.Compute(tester.Plan{
				Geom:             prof.Geometry(),
				PartitionOf:      tc.order,
				MaskBitsPerImage: prof.Geometry().Cells(),
				Halts:            halts,
				MISRSize:         32,
				Q:                7,
			}, tester.Config{Channels: 32, OverlapMaskLoad: overlap})
			if err != nil {
				return err
			}
			mode := "overlapped"
			if !overlap {
				mode = "stalling"
			}
			tab.Row(tc.name, mode, fmt.Sprintf("%d", sched.MaskLoads),
				fmt.Sprintf("%d", sched.MaskLoadCycles), fmt.Sprintf("%d", sched.HaltCycles),
				fmt.Sprintf("%.3f", sched.Normalized()))
		}
	}
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "With double-buffered (overlapped) mask registers the image always hides")
	fmt.Fprintln(w, "behind the previous pattern's shift cycles, so ordering is free. Without")
	fmt.Fprintln(w, "them, the original ATPG order reloads at almost every pattern boundary")
	fmt.Fprintln(w, "and mask stalls dominate; partition-sorted order needs one load each.")
	fmt.Fprintln(w)
	return nil
}

// ablStrategies compares the paper's group-size heuristic against random
// member choice and full greedy cost search.
func ablStrategies(w io.Writer, scale int) error {
	fmt.Fprintln(w, "=== Ablation: split-selection strategy ===")
	tab := report.New(fmt.Sprintf("CKT profiles at 1/%d scale, m=32 q=7", scale),
		"Circuit", "Strategy", "Partitions", "Rounds", "Total bits", "vs cancel-only")
	for _, prof := range workload.Profiles() {
		prof = workload.Scaled(prof, scale)
		m, err := prof.Generate()
		if err != nil {
			return err
		}
		for _, s := range []core.Strategy{core.StrategyPaper, core.StrategyPaperRandom, core.StrategyPaperRetry, core.StrategyGreedyCost} {
			cmp, err := core.Evaluate(m, core.Params{
				Geom:     prof.Geometry(),
				Cancel:   xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
				Strategy: s,
				Seed:     1,
			})
			if err != nil {
				return err
			}
			tab.Row(prof.Name, s.Name(),
				fmt.Sprintf("%d", len(cmp.Result.Partitions)),
				fmt.Sprintf("%d", len(cmp.Result.Rounds)),
				fmt.Sprintf("%d", cmp.HybridBits),
				report.Ratio(cmp.ImprovementOverCancel))
		}
		// The signature-clustering alternative (extension; no round trace).
		cres, err := core.RunClustered(m, core.Params{
			Geom:   prof.Geometry(),
			Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		})
		if err != nil {
			return err
		}
		cancelOnly := xcancel.ControlBits(cres.TotalX, 32, 7)
		ratio := 0.0
		if cres.TotalBits > 0 {
			ratio = float64(cancelOnly) / float64(cres.TotalBits)
		}
		tab.Row(prof.Name, "signature-cluster",
			fmt.Sprintf("%d", len(cres.Partitions)), "-",
			fmt.Sprintf("%d", cres.TotalBits),
			report.Ratio(ratio))
	}
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "All strategies find the same partitions on cleanly correlated workloads;")
	fmt.Fprintln(w, "greedy needs no rejected probe round but costs ~100x more per round.")
	fmt.Fprintln(w, "Note: at reduced scale CKT-A's fixed per-partition mask cost outweighs its")
	fmt.Fprintln(w, "sparse X savings (ratio < 1); the hybrid needs the full X volume to pay off.")
	fmt.Fprintln(w)
	return nil
}

// ablRounding compares the paper's fractional control-bit accounting
// (rounded once) against per-halt ceilings.
func ablRounding(w io.Writer) error {
	fmt.Fprintln(w, "=== Ablation: X-canceling control-bit rounding ===")
	tab := report.New("ceil(m*q*T/(m-q)) vs ceil(T/(m-q))*m*q",
		"T (X's)", "m", "q", "fractional-ceil", "per-halt-ceil", "overhead")
	for _, tc := range []struct{ t, m, q int }{
		{5, 10, 2}, {12, 10, 1}, {757575, 32, 7}, {2976187, 32, 7}, {6971710, 32, 7},
	} {
		a := xcancel.ControlBits(tc.t, tc.m, tc.q)
		b := xcancel.ControlBitsPerHaltCeil(tc.t, tc.m, tc.q)
		tab.Row(fmt.Sprintf("%d", tc.t), fmt.Sprintf("%d", tc.m), fmt.Sprintf("%d", tc.q),
			fmt.Sprintf("%d", a), fmt.Sprintf("%d", b),
			fmt.Sprintf("%+.3f%%", 100*(float64(b)/float64(a)-1)))
	}
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// ablGranularity compares per-cell partition masks against per-chain masks.
func ablGranularity(w io.Writer, scale int) error {
	fmt.Fprintln(w, "=== Ablation: mask granularity (per cell vs per chain) ===")
	tab := report.New(fmt.Sprintf("CKT-B at 1/%d scale; masks applied to the final paper partitions", scale),
		"Granularity", "Mask bits/partition", "Masked X", "Residual X", "Total bits")
	prof := workload.Scaled(workload.CKTB(), scale)
	m, err := prof.Generate()
	if err != nil {
		return err
	}
	params := core.Params{Geom: prof.Geometry(), Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7}, Workers: numWorkers, Obs: obsRec}
	res, err := core.Run(m, params)
	if err != nil {
		return err
	}
	tab.Row("per-cell",
		fmt.Sprintf("%d", prof.Geometry().Cells()),
		fmt.Sprintf("%d", res.MaskedX),
		fmt.Sprintf("%d", res.ResidualX),
		fmt.Sprintf("%d", res.TotalBits))
	// Re-account the same partitions with chain-granularity masks.
	chainMasked := 0
	for _, p := range res.Partitions {
		_, mx, _ := xmask.ChainMask(m, prof.Geometry(), p.Patterns)
		chainMasked += mx
	}
	residual := res.TotalX - chainMasked
	total := len(res.Partitions)*prof.Geometry().Chains +
		xcancel.ControlBits(residual, 32, 7)
	tab.Row("per-chain",
		fmt.Sprintf("%d", prof.Geometry().Chains),
		fmt.Sprintf("%d", chainMasked),
		fmt.Sprintf("%d", residual),
		fmt.Sprintf("%d", total))
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "Per-chain masks are far cheaper per partition but rarely applicable, so")
	fmt.Fprintln(w, "nearly all X's leak to the canceling MISR and the total grows.")
	fmt.Fprintln(w)
	return nil
}

// ablShadow compares the time-multiplexed and shadow-register X-canceling
// variants on the hybrid's residual X stream.
func ablShadow(w io.Writer, scale int) error {
	fmt.Fprintln(w, "=== Ablation: time-multiplexed vs shadow-register X-canceling ===")
	tab := report.New(fmt.Sprintf("CKT profiles at 1/%d scale, m=32 q=7", scale),
		"Circuit", "Variant", "Test time", "Control bits", "Extra channels")
	for _, prof := range workload.Profiles() {
		prof = workload.Scaled(prof, scale)
		m, err := prof.Generate()
		if err != nil {
			return err
		}
		for _, shadow := range []bool{false, true} {
			cfg := xcancel.Config{MISR: misr.MustStandard(32), Q: 7, Shadow: shadow}
			cmp, err := core.Evaluate(m, core.Params{Geom: prof.Geometry(), Cancel: cfg})
			if err != nil {
				return err
			}
			variant, channels := "time-multiplexed", "0"
			if shadow {
				variant, channels = "shadow-register", fmt.Sprintf("%d", 32)
			}
			tab.Row(prof.Name, variant, report.Ratio(cmp.TestTimeHybrid),
				fmt.Sprintf("%d", cmp.HybridBits), channels)
		}
	}
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "The shadow register removes the halt time but needs dedicated tester")
	fmt.Fprintln(w, "channels, which the paper excludes for fairness.")
	fmt.Fprintln(w)
	return nil
}

// ablQSweep sweeps the number of X-free combinations extracted per halt.
func ablQSweep(w io.Writer, scale int) error {
	fmt.Fprintln(w, "=== Ablation: q sweep (X-free combinations per halt) ===")
	prof := workload.Scaled(workload.CKTB(), scale)
	m, err := prof.Generate()
	if err != nil {
		return err
	}
	tab := report.New(fmt.Sprintf("CKT-B at 1/%d scale, m=32", scale),
		"q", "Partitions", "Residual X", "Total bits", "Test time")
	for _, q := range []int{1, 3, 5, 7, 9, 11, 15} {
		cmp, err := core.Evaluate(m, core.Params{
			Geom:   prof.Geometry(),
			Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: q},
		})
		if err != nil {
			return err
		}
		tab.Row(fmt.Sprintf("%d", q),
			fmt.Sprintf("%d", len(cmp.Result.Partitions)),
			fmt.Sprintf("%d", cmp.Result.ResidualX),
			fmt.Sprintf("%d", cmp.HybridBits),
			report.Ratio(cmp.TestTimeHybrid))
	}
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// ablCorrelation sweeps the workload's correlation structure: the share of
// structured X's and the overlap between cluster pattern sets.
func ablCorrelation(w io.Writer, scale int) error {
	fmt.Fprintln(w, "=== Ablation: sensitivity to X inter-correlation ===")
	base := workload.Scaled(workload.CKTB(), scale)
	tab := report.New(fmt.Sprintf("CKT-B at 1/%d scale, m=32 q=7", scale),
		"Structured", "Overlap", "Partitions", "Masked X", "Total bits", "vs cancel-only")
	for _, structured := range []float64{0.0, 0.25, 0.55, 0.8} {
		for _, overlap := range []float64{0, 0.5} {
			prof := base
			prof.StructuredFraction = structured
			prof.OverlapFraction = overlap
			m, err := prof.Generate()
			if err != nil {
				return err
			}
			cmp, err := core.Evaluate(m, core.Params{
				Geom:   prof.Geometry(),
				Cancel: xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
			})
			if err != nil {
				return err
			}
			tab.Row(
				fmt.Sprintf("%.2f", structured),
				fmt.Sprintf("%.2f", overlap),
				fmt.Sprintf("%d", len(cmp.Result.Partitions)),
				fmt.Sprintf("%d", cmp.Result.MaskedX),
				fmt.Sprintf("%d", cmp.HybridBits),
				report.Ratio(cmp.ImprovementOverCancel))
		}
	}
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "With no structured X's the method degenerates to X-canceling (as the")
	fmt.Fprintln(w, "paper notes, the benefit comes from inter-correlation); overlap between")
	fmt.Fprintln(w, "cluster pattern sets fragments partitions and erodes the gain.")
	fmt.Fprintln(w)
	return nil
}
