// Command tablegen regenerates every table and figure of the paper's
// evaluation, printing measured values next to the published ones.
//
// Usage:
//
//	tablegen                  # everything
//	tablegen -table 1         # Table 1 (control bits + test time)
//	tablegen -figure 3        # Figure 2/3 (symbolic MISR + elimination)
//	tablegen -figure 5        # Figures 4-6 (worked example + cost walk)
//	tablegen -section 3       # Section 3 correlation analysis
//	tablegen -ablation all    # design-choice ablations
//	tablegen -scale 10        # shrink workloads 10x (quick runs)
package main

import (
	"flag"
	"fmt"
	"os"

	"xhybrid/internal/obs"
)

func main() {
	table := flag.Int("table", 0, "regenerate a table (1)")
	figure := flag.Int("figure", 0, "regenerate a figure (2, 3, 4, 5 or 6)")
	section := flag.Int("section", 0, "regenerate a section analysis (3 or 4)")
	ablation := flag.String("ablation", "", "run an ablation: strategies, rounding, granularity, shadow, qsweep, correlation, superset, encoding, ordering, aliasing, compressedcost or all")
	scale := flag.Int("scale", 1, "shrink the industrial workloads by this factor")
	seeds := flag.Int("seeds", 0, "with -table 1: also print a robustness sweep over this many workload seeds")
	workers := flag.Int("workers", 0, "worker goroutines for the partitioning hot loops (0 = all CPUs)")
	stats := flag.Bool("stats", false, "print a per-stage observability breakdown after the run")
	trace := flag.String("trace", "", "print the observability snapshot after the run: text or json")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	numWorkers = *workers

	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tablegen:", err)
		os.Exit(1)
	}
	statsFormat := ""
	if *stats {
		statsFormat = "text"
	}
	switch *trace {
	case "":
	case "text", "json":
		statsFormat = *trace
	default:
		fail(fmt.Errorf("unknown -trace format %q (want text or json)", *trace))
	}
	if statsFormat != "" {
		obsRec = obs.New()
	}
	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile, *pprofAddr)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fail(err)
		}
		if obsRec == nil {
			return
		}
		snap := obsRec.Snapshot()
		var werr error
		if statsFormat == "json" {
			werr = snap.WriteJSON(os.Stdout)
		} else {
			werr = snap.WriteText(os.Stdout)
		}
		if werr != nil {
			fail(werr)
		}
	}()
	if *table == 1 {
		ran = true
		if err := runTable1(os.Stdout, *scale); err != nil {
			fail(err)
		}
		if *seeds > 1 {
			if err := runTable1Seeds(os.Stdout, *scale, *seeds); err != nil {
				fail(err)
			}
		}
	}
	switch *figure {
	case 0:
	case 2, 3:
		ran = true
		if err := runFigure23(os.Stdout); err != nil {
			fail(err)
		}
	case 4, 5, 6:
		ran = true
		if err := runFigures456(os.Stdout); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown figure %d", *figure))
	}
	switch *section {
	case 0:
	case 3:
		ran = true
		if err := runSection3(os.Stdout, *scale); err != nil {
			fail(err)
		}
	case 4:
		ran = true
		if err := runFigures456(os.Stdout); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown section %d", *section))
	}
	if *ablation != "" {
		ran = true
		if err := runAblation(os.Stdout, *ablation, *scale); err != nil {
			fail(err)
		}
	}
	if !ran {
		// Default: everything, in paper order.
		for _, step := range []func() error{
			func() error { return runFigure23(os.Stdout) },
			func() error { return runSection3(os.Stdout, *scale) },
			func() error { return runFigures456(os.Stdout) },
			func() error { return runTable1(os.Stdout, *scale) },
			func() error { return runAblation(os.Stdout, "all", *scale) },
		} {
			if err := step(); err != nil {
				fail(err)
			}
		}
	}
}
