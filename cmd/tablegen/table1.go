package main

import (
	"fmt"
	"io"

	"xhybrid/internal/core"
	"xhybrid/internal/misr"
	"xhybrid/internal/obs"
	"xhybrid/internal/report"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
)

// paperTable1 holds the published Table 1 values for side-by-side printing.
var paperTable1 = map[string]struct {
	maskOnlyM, cancelOnlyM, proposedM float64
	impMask, impCancel                float64
	ttCancel, ttProposed, ttImp       float64
}{
	"CKT-A": {1515.15, 6.54, 5.35, 283.21, 1.22, 1.14, 1.09, 1.05},
	"CKT-B": {108.23, 26.57, 12.22, 8.86, 2.17, 1.58, 1.26, 1.26},
	"CKT-C": {292.93, 62.22, 41.13, 7.12, 1.51, 2.35, 1.88, 1.25},
}

// numWorkers is the -workers flag: the goroutine budget for the
// partitioning hot loops (0 = all CPUs). Results are identical either way.
var numWorkers int

// obsRec is the -stats/-trace recorder; nil (the default) disables all
// observation.
var obsRec *obs.Recorder

// table1Params returns the paper's hybrid configuration: 32-bit MISR, q=7.
func table1Params(p workload.Profile) core.Params {
	return core.Params{
		Geom:    p.Geometry(),
		Cancel:  xcancel.Config{MISR: misr.MustStandard(32), Q: 7},
		Workers: numWorkers,
		Obs:     obsRec,
	}
}

func runTable1(w io.Writer, scale int) error {
	fmt.Fprintln(w, "=== Table 1: Control Bit Data Volume and Test Time Comparisons ===")
	fmt.Fprintf(w, "Config: 3000 patterns (scale 1/%d), MISR m=32, q=7, 32 tester channels\n\n", scale)

	bits := report.New("Control bit data volume (measured | paper)",
		"Circuit", "X-dens", "X-Mask only [5]", "X-Cancel only [12]", "Proposed", "Impv/[5]", "Impv/[12]", "Parts")
	times := report.New("Normalized test time (measured | paper)",
		"Circuit", "X-Cancel only [12]", "Proposed", "Impv/[12]")

	for _, prof := range workload.Profiles() {
		name := prof.Name
		if scale > 1 {
			prof = workload.Scaled(prof, scale)
		}
		m, err := prof.Generate()
		if err != nil {
			return err
		}
		cmp, err := core.Evaluate(m, table1Params(prof))
		if err != nil {
			return err
		}
		ref := paperTable1[name]
		bits.Row(
			prof.Name,
			report.Percent(cmp.XDensity),
			fmt.Sprintf("%s | %.2fM", report.Mega(cmp.MaskOnlyBits), ref.maskOnlyM),
			fmt.Sprintf("%s | %.2fM", report.Mega(cmp.CancelOnlyBits), ref.cancelOnlyM),
			fmt.Sprintf("%s | %.2fM", report.Mega(cmp.HybridBits), ref.proposedM),
			fmt.Sprintf("%s | %.2f", report.Ratio(cmp.ImprovementOverMask), ref.impMask),
			fmt.Sprintf("%s | %.2f", report.Ratio(cmp.ImprovementOverCancel), ref.impCancel),
			fmt.Sprintf("%d", len(cmp.Result.Partitions)),
		)
		times.Row(
			prof.Name,
			fmt.Sprintf("%s | %.2f", report.Ratio(cmp.TestTimeCancelOnly), ref.ttCancel),
			fmt.Sprintf("%s | %.2f", report.Ratio(cmp.TestTimeHybrid), ref.ttProposed),
			fmt.Sprintf("%s | %.2f", report.Ratio(cmp.TestTimeImprovement), ref.ttImp),
		)
	}
	if err := bits.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := times.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nNote: paper values measured on proprietary designs; measured values use")
	fmt.Fprintln(w, "the calibrated synthetic workloads of internal/workload (see DESIGN.md).")
	fmt.Fprintln(w)
	return nil
}

// runTable1Seeds resamples each workload seeds times and reports the spread
// of the proposed method's totals — the Table 1 shape must be a property of
// the correlation structure, not one lucky draw.
func runTable1Seeds(w io.Writer, scale, seeds int) error {
	fmt.Fprintf(w, "=== Table 1 robustness: %d workload seeds (scale 1/%d) ===\n\n", seeds, scale)
	tab := report.New("Proposed-method spread over seeds",
		"Circuit", "Proposed min", "mean", "max", "Impv/[12] min", "mean", "max")
	for _, base := range workload.Profiles() {
		if scale > 1 {
			base = workload.Scaled(base, scale)
		}
		var bitsMin, bitsMax, impMin, impMax float64
		var bitsSum, impSum float64
		for s := 0; s < seeds; s++ {
			prof := base
			prof.Seed = base.Seed + int64(s)*1001
			m, err := prof.Generate()
			if err != nil {
				return err
			}
			cmp, err := core.Evaluate(m, table1Params(prof))
			if err != nil {
				return err
			}
			b := float64(cmp.HybridBits)
			imp := cmp.ImprovementOverCancel
			if s == 0 || b < bitsMin {
				bitsMin = b
			}
			if s == 0 || b > bitsMax {
				bitsMax = b
			}
			if s == 0 || imp < impMin {
				impMin = imp
			}
			if s == 0 || imp > impMax {
				impMax = imp
			}
			bitsSum += b
			impSum += imp
		}
		n := float64(seeds)
		tab.Row(base.Name,
			report.Mega(int(bitsMin)), report.Mega(int(bitsSum/n)), report.Mega(int(bitsMax)),
			report.Ratio(impMin), report.Ratio(impSum/n), report.Ratio(impMax))
	}
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}
