// Command loadgen drives sustained, concurrent, multi-tenant load against
// a running xhybridd and reports latency percentiles plus scheduling
// fairness. It is the soak harness behind BENCH_serve.json's serving rows
// and the CI serve-soak job's fairness gate.
//
// Usage:
//
//	loadgen [-url http://127.0.0.1:8471] [-tenants FILE] [-duration 10s]
//	        [-warmup 3s] [-conc 4] [-profile ckt-a] [-scale 10] [-m 32]
//	        [-q 7] [-strategy paper] [-wire binary] [-distinct 0]
//	        [-o report.json]
//
// The workload body is one synthetic X-map (a cktgen profile) generated in
// memory; requests vary the seed query parameter, which is part of the
// server's cache key, so -distinct controls the cache profile: 0 gives
// every request a unique seed (every request computes — the saturating
// soak), N cycles N seeds (a 1/N miss rate once warm).
//
// With -tenants FILE (the same JSON key file xhybridd loads) every tenant
// becomes a closed-loop lane of -conc workers sending its key, and the
// report adds per-tenant throughput shares against the weight-implied
// expectation — max_deviation is the number the CI gate holds under 0.15.
// Without -tenants a single anonymous lane measures plain latency.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xhybrid"
	"xhybrid/internal/scan"
	"xhybrid/internal/server"
	"xhybrid/internal/workload"
	"xhybrid/internal/xmap"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}

// laneStats is one tenant's outcome counters.
type laneStats struct {
	ok       atomic.Int64
	rejected atomic.Int64 // 429 + 503: admission said no
	errors   atomic.Int64 // transport failures and every other non-200
}

// report is the JSON document loadgen emits; BENCH_serve.json rows quote
// its latency and fairness fields.
type report struct {
	Config   reportConfig   `json:"config"`
	Totals   reportTotals   `json:"totals"`
	Latency  reportLatency  `json:"latency_s"`
	Tenants  []tenantReport `json:"tenants,omitempty"`
	Fairness *fairness      `json:"fairness,omitempty"`
}

type reportConfig struct {
	URL       string  `json:"url"`
	Profile   string  `json:"profile"`
	Scale     int     `json:"scale"`
	BodyBytes int     `json:"body_bytes"`
	M         int     `json:"m"`
	Q         int     `json:"q"`
	Strategy  string  `json:"strategy"`
	Distinct  int     `json:"distinct"`
	Conc      int     `json:"conc_per_tenant"`
	Duration  float64 `json:"duration_s"`
	Warmup    float64 `json:"warmup_s"`
}

type reportTotals struct {
	Requests int64   `json:"requests"`
	OK       int64   `json:"ok"`
	Rejected int64   `json:"rejected"`
	Errors   int64   `json:"errors"`
	ReqPerS  float64 `json:"req_per_s"`
}

type reportLatency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

type tenantReport struct {
	ID            string  `json:"id"`
	Weight        int     `json:"weight"`
	OK            int64   `json:"ok"`
	Rejected      int64   `json:"rejected"`
	Errors        int64   `json:"errors"`
	ReqPerS       float64 `json:"req_per_s"`
	Share         float64 `json:"share"`
	ExpectedShare float64 `json:"expected_share"`
	Deviation     float64 `json:"deviation"`
}

// fairness summarizes how far the observed per-tenant throughput split
// strayed from the weight-implied split. max_deviation is relative:
// |share - expected| / expected, worst tenant.
type fairness struct {
	MaxDeviation float64 `json:"max_deviation"`
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8471", "base URL of the daemon")
	tenantsFile := flag.String("tenants", "", "tenant key file; one worker lane per tenant (empty = one anonymous lane)")
	duration := flag.Duration("duration", 10*time.Second, "soak length")
	warmup := flag.Duration("warmup", 3*time.Second, "ramp-up window excluded from the report (lanes filling, connections dialing)")
	conc := flag.Int("conc", 4, "closed-loop workers per tenant")
	profile := flag.String("profile", "ckt-a", "workload profile: ckt-a, ckt-b or ckt-c")
	scale := flag.Int("scale", 10, "shrink the profile by this factor")
	m := flag.Int("m", 32, "MISR size query parameter")
	q := flag.Int("q", 7, "q query parameter")
	strategy := flag.String("strategy", "paper", "strategy query parameter")
	wire := flag.String("wire", "binary", "upload format: binary (XMAPB, cheap to parse) or json")
	distinct := flag.Int("distinct", 0, "distinct request seeds to cycle (0 = unique per request: every request computes)")
	out := flag.String("o", "", "report file (default stdout)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	var tenants []server.Tenant
	if *tenantsFile != "" {
		var err error
		tenants, err = server.LoadTenants(*tenantsFile)
		if err != nil {
			die(err)
		}
	} else {
		tenants = []server.Tenant{{ID: "anonymous", Weight: 1}}
	}

	body, contentType, err := buildBody(*profile, *scale, *wire)
	if err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %s/%d %s body %d bytes, %d tenants x %d workers, %s soak against %s\n",
		*profile, *scale, *wire, len(body), len(tenants), *conc, *duration, *url)

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        len(tenants) * *conc,
		MaxIdleConnsPerHost: len(tenants) * *conc,
	}}

	// Seeds offset by a per-run base: the seed is part of the server's
	// cache key, so without the offset a second soak against a live daemon
	// replays the first one's digests and measures the cache instead of
	// the scheduler.
	seedBase := time.Now().UnixNano() % (1 << 30)
	var (
		seedSeq   atomic.Int64
		latMu     sync.Mutex
		latencies []float64
		stats     = make([]*laneStats, len(tenants))
		wg        sync.WaitGroup
	)
	for i := range stats {
		stats[i] = &laneStats{}
	}
	// The warmup window is excluded from every reported number: while the
	// lanes are still filling and connections dialing, grants follow arrival
	// order rather than the weights, and counting that ramp (or the drain at
	// the end, which is symmetric but much shorter) understates fairness.
	if *warmup >= *duration {
		*warmup = *duration / 4
	}
	start := time.Now()
	warmupEnd := start.Add(*warmup)
	deadline := start.Add(*duration)
	for ti := range tenants {
		ten := tenants[ti]
		st := stats[ti]
		for w := 0; w < *conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					seed := seedSeq.Add(1)
					if *distinct > 0 {
						seed %= int64(*distinct)
					}
					seed += seedBase
					target := fmt.Sprintf("%s/v1/partition?m=%d&q=%d&strategy=%s&seed=%d",
						*url, *m, *q, *strategy, seed)
					req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
					if err != nil {
						st.errors.Add(1)
						continue
					}
					req.Header.Set("Content-Type", contentType)
					if ten.Key != "" {
						req.Header.Set("X-API-Key", ten.Key)
					}
					t0 := time.Now()
					measured := !t0.Before(warmupEnd)
					resp, err := client.Do(req)
					if err != nil {
						if measured {
							st.errors.Add(1)
						}
						continue
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch {
					case resp.StatusCode == http.StatusOK:
						if measured {
							st.ok.Add(1)
							lat := time.Since(t0).Seconds()
							latMu.Lock()
							latencies = append(latencies, lat)
							latMu.Unlock()
						}
					case resp.StatusCode == http.StatusTooManyRequests ||
						resp.StatusCode == http.StatusServiceUnavailable:
						if measured {
							st.rejected.Add(1)
						}
						// Closed-loop backoff: a rejected worker yields
						// briefly instead of spinning on the admission gate.
						time.Sleep(time.Millisecond)
					default:
						if measured {
							st.errors.Add(1)
						}
					}
				}
			}()
		}
	}
	wg.Wait()
	// Rates are over the measured window only (warmup excluded).
	elapsed := time.Since(warmupEnd).Seconds()

	rep := report{
		Config: reportConfig{
			URL: *url, Profile: *profile, Scale: *scale, BodyBytes: len(body),
			M: *m, Q: *q, Strategy: *strategy, Distinct: *distinct,
			Conc: *conc, Duration: time.Since(start).Seconds(), Warmup: warmup.Seconds(),
		},
		Latency: percentiles(latencies),
	}
	weightSum := 0
	for _, t := range tenants {
		weightSum += max(t.Weight, 1)
	}
	var totalOK int64
	for _, st := range stats {
		totalOK += st.ok.Load()
	}
	var worst float64
	for ti, t := range tenants {
		st := stats[ti]
		tr := tenantReport{
			ID: t.ID, Weight: max(t.Weight, 1),
			OK: st.ok.Load(), Rejected: st.rejected.Load(), Errors: st.errors.Load(),
			ReqPerS:       float64(st.ok.Load()) / elapsed,
			ExpectedShare: float64(max(t.Weight, 1)) / float64(weightSum),
		}
		if totalOK > 0 {
			tr.Share = float64(tr.OK) / float64(totalOK)
			tr.Deviation = math.Abs(tr.Share-tr.ExpectedShare) / tr.ExpectedShare
		}
		worst = math.Max(worst, tr.Deviation)
		rep.Tenants = append(rep.Tenants, tr)
		rep.Totals.Requests += tr.OK + tr.Rejected + tr.Errors
		rep.Totals.OK += tr.OK
		rep.Totals.Rejected += tr.Rejected
		rep.Totals.Errors += tr.Errors
	}
	rep.Totals.ReqPerS = float64(rep.Totals.OK) / elapsed
	if len(tenants) > 1 {
		rep.Fairness = &fairness{MaxDeviation: worst}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d ok / %d rejected / %d errors in %.1fs (%.1f req/s); p50 %.4fs p99 %.4fs\n",
		rep.Totals.OK, rep.Totals.Rejected, rep.Totals.Errors, elapsed, rep.Totals.ReqPerS,
		rep.Latency.P50, rep.Latency.P99)
	if rep.Fairness != nil {
		fmt.Fprintf(os.Stderr, "loadgen: fairness max_deviation %.3f\n", rep.Fairness.MaxDeviation)
	}
	if rep.Totals.OK == 0 {
		die(fmt.Errorf("no successful requests — is the daemon up at %s?", *url))
	}
}

// buildBody generates the workload X-map and serializes it once; every
// request re-sends these bytes. The binary format keeps the server's
// per-request parse cost (paid outside the job slot) negligible, so the
// soak measures admission scheduling, not JSON decoding.
func buildBody(profile string, scale int, wire string) (body []byte, contentType string, err error) {
	var p workload.Profile
	switch profile {
	case "ckt-a":
		p = workload.CKTA()
	case "ckt-b":
		p = workload.CKTB()
	case "ckt-c":
		p = workload.CKTC()
	default:
		return nil, "", fmt.Errorf("unknown profile %q", profile)
	}
	if scale > 1 {
		p = workload.Scaled(p, scale)
	}
	m, err := p.Generate()
	if err != nil {
		return nil, "", err
	}
	x, err := toXLocations(p.Geometry(), m)
	if err != nil {
		return nil, "", err
	}
	var buf bytes.Buffer
	switch wire {
	case "binary":
		err = x.WriteBinary(&buf)
		contentType = "application/octet-stream"
	case "json":
		err = x.WriteJSON(&buf)
		contentType = "application/json"
	default:
		return nil, "", fmt.Errorf("unknown wire format %q (want binary or json)", wire)
	}
	if err != nil {
		return nil, "", err
	}
	return buf.Bytes(), contentType, nil
}

// toXLocations converts the internal X-map to the public facade type (the
// same bridge cmd/cktgen uses).
func toXLocations(g scan.Geometry, m *xmap.XMap) (*xhybrid.XLocations, error) {
	x, err := xhybrid.NewXLocations(g.Chains, g.ChainLen, m.Patterns())
	if err != nil {
		return nil, err
	}
	for _, c := range m.XCells() {
		chain, pos := g.CellCoord(c.Cell)
		var addErr error
		c.Patterns.ForEach(func(p int) {
			if addErr == nil {
				addErr = x.AddX(p, chain, pos)
			}
		})
		if addErr != nil {
			return nil, addErr
		}
	}
	return x, nil
}

// percentiles computes the latency summary over the OK requests.
func percentiles(lat []float64) reportLatency {
	if len(lat) == 0 {
		return reportLatency{}
	}
	sort.Float64s(lat)
	at := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	sum := 0.0
	for _, v := range lat {
		sum += v
	}
	return reportLatency{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Mean: sum / float64(len(lat)),
		Max:  lat[len(lat)-1],
	}
}
