// Command stratbench is the strategy tournament: it races every registered
// partitioning strategy (plus the clustered variant) across a matrix of
// workloads — synthetic CKT profiles and real X-maps built by the circuit
// pipeline — and reports the control-bit / wall-clock frontier.
//
// Every lane's plan is verified before it may score: the plan is replayed
// through the real hardware models (mask stage → spatial compactor →
// X-canceling MISR, flow.VerifyResponses), and on narrow geometries
// (chains <= 64, where the response-level canceler can take one input per
// chain) additionally through the partitioned canceler, whose observed X
// count must equal the plan's accounted ResidualX exactly. Unverified lanes
// are reported but excluded from the frontier.
//
// Alongside the standard mask+cancel accounting, each lane reports what the
// same plan would cost under the weight-3 X-code compactor architecture
// (internal/xcode): the corrupted-channel residual and its control bits —
// the objective the xcode-hybrid strategy optimizes for.
//
// Usage:
//
//	stratbench [-workloads ckt-b8,flow-small,...] [-strategies all]
//	           [-workers N] [-out BENCH_strategies.json]
//
// The JSON output is the record format of BENCH_strategies.json; the CI
// strategy-tournament job runs the ckt-b8 workload and asserts every
// registered strategy produced a verified plan.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xhybrid/internal/core"
	"xhybrid/internal/flow"
	"xhybrid/internal/misr"
	"xhybrid/internal/scan"
	"xhybrid/internal/tester"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xcode"
	"xhybrid/internal/xmap"
)

// input is one prepared workload: the X-map, its geometry, the response
// set the verification replays, and the canceling configuration every lane
// runs under.
type input struct {
	name      string
	m         *xmap.XMap
	geom      scan.Geometry
	responses *scan.ResponseSet
	mSize, q  int
}

// lane is one competitor: a registered strategy, or the clustered variant.
type lane struct {
	name string
	run  func(ctx context.Context, m *xmap.XMap, p core.Params) (*core.Result, error)
}

// result is one (workload, lane) cell of the tournament, serialized into
// BENCH_strategies.json.
type result struct {
	Strategy   string  `json:"strategy"`
	Partitions int     `json:"partitions"`
	Rounds     int     `json:"rounds"`
	MaskedX    int     `json:"maskedX"`
	ResidualX  int     `json:"residualX"`
	MaskBits   int     `json:"maskBits"`
	CancelBits int     `json:"cancelBits"`
	TotalBits  int     `json:"totalBits"`
	WallMs     float64 `json:"wallMs"`
	// XCodeChannels / XCodeResidual / XCodeTotalBits price the same plan
	// under the weight-3 X-code compactor: corrupted channel captures
	// instead of raw X's.
	XCodeChannels  int `json:"xcodeChannels"`
	XCodeResidual  int `json:"xcodeResidual"`
	XCodeTotalBits int `json:"xcodeTotalBits"`
	// Verified: the replayed plan masked no observable capture, removed
	// exactly the accounted X's, and stayed within the planned halt budget
	// (plus the exact partitioned-canceler check on narrow geometries).
	Verified bool `json:"verified"`
	// ExactCanceler reports whether the chains<=64 exact check ran.
	ExactCanceler bool `json:"exactCanceler"`
	// Frontier marks the verified Pareto-optimal lanes over
	// (totalBits, wallMs) within the workload.
	Frontier bool   `json:"frontier"`
	Error    string `json:"error,omitempty"`
}

type workloadReport struct {
	Workload string   `json:"workload"`
	Cells    int      `json:"cells"`
	Chains   int      `json:"chains"`
	Patterns int      `json:"patterns"`
	TotalX   int      `json:"totalX"`
	MISRSize int      `json:"m"`
	Q        int      `json:"q"`
	Results  []result `json:"results"`
}

type benchFile struct {
	Description string           `json:"description"`
	Workloads   []workloadReport `json:"workloads"`
}

// flowSpecs are the real-X-map workloads, keyed by tournament name. The
// two 102400-cell specs are the BENCH_flow.json large recipes.
var flowSpecs = map[string]flow.Spec{
	"flow-small": {Cells: 1024, Chains: 32, XClusters: 24, Patterns: 128,
		MISRSize: 16, Q: 7, CircuitSeed: 0, StimSeed: 0},
	"flow-large-sparse": {Cells: 102400, Chains: 512, XClusters: 2000, Patterns: 256,
		MISRSize: 32, Q: 7},
	"flow-large-dense": {Cells: 102400, Chains: 512, XClusters: 400, XFanout: 256,
		EnableTaps: 1, Patterns: 256, MISRSize: 32, Q: 7},
}

const defaultWorkloads = "ckt-a4,ckt-b8,ckt-c8,flow-small,flow-large-sparse,flow-large-dense"

func main() {
	workloads := flag.String("workloads", defaultWorkloads,
		"comma-separated workload names: ckt-{a,b,c}[K] (profile scaled by K) or "+
			strings.Join(flowSpecNames(), ", "))
	strategies := flag.String("strategies", "all",
		"comma-separated lanes: registry names, clustered, or all")
	workers := flag.Int("workers", 0, "worker goroutines per run (0 = all CPUs)")
	out := flag.String("out", "-", "output path (- = stdout)")
	flag.Parse()

	lanes, err := parseLanes(*strategies)
	if err != nil {
		die(err)
	}
	file := benchFile{
		Description: "Strategy tournament: every registered partitioning strategy plus the " +
			"clustered variant raced per workload; plans replay-verified before scoring; " +
			"frontier = verified Pareto set over (totalBits, wallMs). " +
			"Reproduce: go run ./cmd/stratbench",
	}
	for _, name := range strings.Split(*workloads, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		in, err := prepare(name)
		if err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "stratbench: %s: %d cells, %d patterns, %d X's\n",
			in.name, in.m.Cells(), in.m.Patterns(), in.m.TotalX())
		file.Workloads = append(file.Workloads, race(in, lanes, *workers))
	}
	enc := json.NewEncoder(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		die(err)
	}
}

func flowSpecNames() []string {
	names := make([]string, 0, len(flowSpecs))
	for n := range flowSpecs {
		names = append(names, n)
	}
	return names
}

// parseLanes resolves the -strategies flag: every lane name must be a
// registry name (aliases accepted), or "clustered".
func parseLanes(arg string) ([]lane, error) {
	var lanes []lane
	add := func(name string) error {
		if name == "clustered" {
			lanes = append(lanes, lane{name: "clustered", run: core.RunClusteredCtx})
			return nil
		}
		strat, err := core.LookupStrategy(name)
		if err != nil {
			return fmt.Errorf("stratbench: %w (or \"clustered\")", err)
		}
		lanes = append(lanes, lane{name: strat.Name(),
			run: func(ctx context.Context, m *xmap.XMap, p core.Params) (*core.Result, error) {
				p.Strategy = strat
				return core.RunCtx(ctx, m, p)
			}})
		return nil
	}
	if arg == "all" {
		for _, name := range core.StrategyNames() {
			if err := add(name); err != nil {
				return nil, err
			}
		}
		return lanes, add("clustered")
	}
	for _, name := range strings.Split(arg, ",") {
		if err := add(strings.TrimSpace(name)); err != nil {
			return nil, err
		}
	}
	return lanes, nil
}

// prepare materializes a workload by name: synthetic profiles get
// pseudo-responses synthesized from their X-map (seed 7, the residual
// test's convention); flow specs run the real circuit pipeline and race
// over the simulated responses.
func prepare(name string) (*input, error) {
	if spec, ok := flowSpecs[name]; ok {
		xb, err := flow.BuildXMap(context.Background(), spec)
		if err != nil {
			return nil, fmt.Errorf("stratbench: %s: %w", name, err)
		}
		return &input{name: name, m: xb.XMap, geom: xb.Geom,
			responses: xb.Responses, mSize: spec.MISRSize, q: spec.Q}, nil
	}
	var prof workload.Profile
	rest := ""
	switch {
	case strings.HasPrefix(name, "ckt-a"):
		prof, rest = workload.CKTA(), name[len("ckt-a"):]
	case strings.HasPrefix(name, "ckt-b"):
		prof, rest = workload.CKTB(), name[len("ckt-b"):]
	case strings.HasPrefix(name, "ckt-c"):
		prof, rest = workload.CKTC(), name[len("ckt-c"):]
	default:
		return nil, fmt.Errorf("stratbench: unknown workload %q", name)
	}
	if rest != "" {
		scale := 0
		if _, err := fmt.Sscanf(rest, "%d", &scale); err != nil || scale < 1 {
			return nil, fmt.Errorf("stratbench: bad profile scale in %q", name)
		}
		prof = workload.Scaled(prof, scale)
	}
	m, err := prof.Generate()
	if err != nil {
		return nil, fmt.Errorf("stratbench: %s: %w", name, err)
	}
	geom := prof.Geometry()
	set, err := workload.ResponsesFromXMap(m, geom, 7)
	if err != nil {
		return nil, fmt.Errorf("stratbench: %s: %w", name, err)
	}
	return &input{name: name, m: m, geom: geom, responses: set,
		mSize: min(32, geom.Chains), q: 7}, nil
}

// race runs every lane on one workload, verifies each plan, prices it
// under both architectures, and marks the verified Pareto frontier.
func race(in *input, lanes []lane, workers int) workloadReport {
	rep := workloadReport{
		Workload: in.name,
		Cells:    in.m.Cells(), Chains: in.geom.Chains, Patterns: in.m.Patterns(),
		TotalX: in.m.TotalX(), MISRSize: in.mSize, Q: in.q,
	}
	code, err := xcode.Build(in.geom.Chains)
	if err != nil {
		die(err)
	}
	for _, ln := range lanes {
		r := result{Strategy: ln.name}
		p := core.Params{
			Geom:    in.geom,
			Cancel:  xcancel.Config{MISR: misr.MustStandard(in.mSize), Q: in.q},
			Seed:    1,
			Workers: workers,
		}
		t0 := time.Now()
		res, err := ln.run(context.Background(), in.m, p)
		r.WallMs = float64(time.Since(t0)) / float64(time.Millisecond)
		if err != nil {
			r.Error = err.Error()
			rep.Results = append(rep.Results, r)
			continue
		}
		r.Partitions = len(res.Partitions)
		r.Rounds = len(res.Rounds)
		r.MaskedX = res.MaskedX
		r.ResidualX = res.ResidualX
		r.MaskBits = res.MaskBits
		r.CancelBits = res.CancelBits
		r.TotalBits = res.TotalBits

		r.XCodeChannels = code.Channels
		r.XCodeResidual = planXCodeResidual(code, in, res)
		r.XCodeTotalBits = res.MaskBits + xcancel.ControlBits(r.XCodeResidual, in.mSize, in.q)

		r.Verified, r.ExactCanceler, r.Error = verify(in, res)
		rep.Results = append(rep.Results, r)
		fmt.Fprintf(os.Stderr, "stratbench: %s/%s: %d bits (xcode %d) in %.0f ms, verified=%t\n",
			in.name, ln.name, r.TotalBits, r.XCodeTotalBits, r.WallMs, r.Verified)
	}
	markFrontier(rep.Results)
	return rep
}

func planXCodeResidual(code *xcode.Code, in *input, res *core.Result) int {
	total := 0
	for _, part := range res.Partitions {
		total += xcode.Residual(code, in.m, in.geom, part.Patterns)
	}
	return total
}

// verify replays the plan through the hardware models. All geometries get
// the full program replay (mask stage → compactor → canceling MISR, the
// pipeline's stage-6 check); geometries narrow enough for a one-input-per-
// chain MISR additionally run the partitioned canceler and demand its
// observed X count equal the accounted ResidualX exactly.
func verify(in *input, res *core.Result) (verified, exact bool, errMsg string) {
	prog, err := flow.Assemble(res, in.geom,
		xcancel.Config{MISR: misr.MustStandard(in.mSize), Q: in.q},
		tester.Config{Channels: in.mSize, OverlapMaskLoad: true}, nil)
	if err != nil {
		return false, false, "assemble: " + err.Error()
	}
	vr, err := flow.VerifyResponses(prog, in.responses)
	if err != nil {
		return false, false, "replay: " + err.Error()
	}
	planned := xcancel.Halts(res.ResidualX, in.mSize, in.q)
	switch {
	case vr.ObservableMasked != 0:
		return false, false, fmt.Sprintf("replay masked %d observable captures", vr.ObservableMasked)
	case vr.MaskedX != res.MaskedX:
		return false, false, fmt.Sprintf("replay masked %d X's, plan accounts %d", vr.MaskedX, res.MaskedX)
	case vr.ResidualX > res.ResidualX:
		return false, false, fmt.Sprintf("replay residual %d exceeds accounted %d", vr.ResidualX, res.ResidualX)
	case vr.Halts > planned:
		return false, false, fmt.Sprintf("replay ran %d halts, schedule planned %d", vr.Halts, planned)
	}
	if in.geom.Chains > 64 {
		return true, false, ""
	}
	// Narrow geometry: the response-level canceler can observe every chain
	// directly, so its X count must match the accounting bit for bit.
	sets := make([]xcancel.PatternSet, len(res.Partitions))
	for i, p := range res.Partitions {
		sets[i] = p.Patterns
	}
	subs, err := xcancel.SplitByPartition(in.responses, sets)
	if err != nil {
		return false, false, "split: " + err.Error()
	}
	for i, sub := range subs {
		masked := scan.NewResponseSet(in.responses.Geom)
		for _, resp := range sub.Responses {
			if err := masked.Append(res.Partitions[i].Mask.Apply(resp)); err != nil {
				return false, false, "mask: " + err.Error()
			}
		}
		subs[i] = masked
	}
	runCfg := xcancel.Config{
		MISR: misr.MustStandard(in.geom.Chains),
		Q:    min(in.q, in.geom.Chains-1),
	}
	pr, err := xcancel.RunPartitioned(runCfg, subs, 0)
	if err != nil {
		return false, false, "canceler: " + err.Error()
	}
	if pr.TotalX != res.ResidualX {
		return false, true, fmt.Sprintf("partitioned canceler saw %d X's, plan accounts %d", pr.TotalX, res.ResidualX)
	}
	return true, true, ""
}

// markFrontier flags the Pareto-optimal verified results over
// (totalBits, wallMs): a lane is dominated if another verified lane is no
// worse on both axes and strictly better on one.
func markFrontier(results []result) {
	for i := range results {
		if !results[i].Verified {
			continue
		}
		dominated := false
		for j := range results {
			if i == j || !results[j].Verified {
				continue
			}
			a, b := results[j], results[i]
			if a.TotalBits <= b.TotalBits && a.WallMs <= b.WallMs &&
				(a.TotalBits < b.TotalBits || a.WallMs < b.WallMs) {
				dominated = true
				break
			}
		}
		results[i].Frontier = !dominated
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "stratbench:", err)
	os.Exit(1)
}
