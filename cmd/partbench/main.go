// Command partbench measures the partitioning engine on the synthetic CKT
// workloads: wall-clock time plus the engine's own work counters (masked-X
// recomputes, correlation cell counts, cache hits/misses, delta-vs-full
// scoring). Its JSON output is the record format of BENCH_partition.json;
// see EXPERIMENTS.md for the reproduction recipe.
//
// Usage:
//
//	partbench -profile ckt-b -strategy greedy-cost [-scale K] [-runs N]
//	partbench -profile ckt-b -strategy greedy-cost -sweep 1,2,4,8
//
// -sweep measures the same configuration once per listed worker count and
// emits a JSON array of reports, one per count. The sweep refuses to report
// at all if the plans diverge: totalBits, partitions and rounds must be
// byte-identical across every worker count (the engine's determinism
// contract), so the only thing the sweep can show moving is wall time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"xhybrid/internal/core"
	"xhybrid/internal/misr"
	"xhybrid/internal/obs"
	"xhybrid/internal/workload"
	"xhybrid/internal/xcancel"
	"xhybrid/internal/xmap"
)

// report is one measured configuration, serialized as JSON.
type report struct {
	Profile    string           `json:"profile"`
	Scale      int              `json:"scale"`
	Patterns   int              `json:"patterns"`
	Cells      int              `json:"cells"`
	XCells     int              `json:"xCells"`
	TotalX     int              `json:"totalX"`
	Strategy   string           `json:"strategy"`
	Workers    int              `json:"workers"`
	Runs       int              `json:"runs"`
	WallMsBest float64          `json:"wallMsBest"`
	WallMsMean float64          `json:"wallMsMean"`
	TotalBits  int              `json:"totalBits"`
	Partitions int              `json:"partitions"`
	Rounds     int              `json:"rounds"`
	Counters   map[string]int64 `json:"counters"`
}

func main() {
	profile := flag.String("profile", "ckt-b", "workload profile: ckt-a, ckt-b or ckt-c")
	scale := flag.Int("scale", 1, "shrink the profile by this factor")
	strategy := flag.String("strategy", "greedy-cost",
		"strategy registry name: "+strings.Join(core.StrategyNames(), ", "))
	mSize := flag.Int("m", 32, "MISR size")
	q := flag.Int("q", 7, "X-free combinations per halt")
	workers := flag.Int("workers", 0, "worker goroutines (0 = all CPUs)")
	runs := flag.Int("runs", 1, "measured runs (best and mean wall time are reported)")
	sweep := flag.String("sweep", "", "comma-separated worker counts; measure each and emit a JSON array")
	flag.Parse()

	var prof workload.Profile
	switch strings.ToLower(*profile) {
	case "ckt-a":
		prof = workload.CKTA()
	case "ckt-b":
		prof = workload.CKTB()
	case "ckt-c":
		prof = workload.CKTC()
	default:
		die(fmt.Errorf("unknown profile %q", *profile))
	}
	if *scale > 1 {
		prof = workload.Scaled(prof, *scale)
	}
	strat, err := core.LookupStrategy(*strategy)
	if err != nil {
		die(err)
	}

	m, err := prof.Generate()
	if err != nil {
		die(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if *sweep == "" {
		rep := measure(m, prof, strat, *scale, *mSize, *q, *workers, *runs)
		if err := enc.Encode(rep); err != nil {
			die(err)
		}
		return
	}
	var reps []report
	for _, f := range strings.Split(*sweep, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 0 {
			die(fmt.Errorf("bad -sweep entry %q", f))
		}
		rep := measure(m, prof, strat, *scale, *mSize, *q, w, *runs)
		if len(reps) > 0 {
			first := reps[0]
			if rep.TotalBits != first.TotalBits || rep.Partitions != first.Partitions || rep.Rounds != first.Rounds {
				die(fmt.Errorf("workers=%d plan (%d bits, %d partitions, %d rounds) diverged from workers=%d (%d, %d, %d)",
					rep.Workers, rep.TotalBits, rep.Partitions, rep.Rounds,
					first.Workers, first.TotalBits, first.Partitions, first.Rounds))
			}
		}
		reps = append(reps, rep)
	}
	if err := enc.Encode(reps); err != nil {
		die(err)
	}
}

// measure times `runs` complete partitioning runs of one configuration and
// returns the report, with plan metrics and engine counters taken from the
// first run.
func measure(m *xmap.XMap, prof workload.Profile, strat core.Strategy, scale, mSize, q, workers, runs int) report {
	rep := report{
		Profile: prof.Name, Scale: scale,
		Patterns: m.Patterns(), Cells: m.Cells(), XCells: m.NumXCells(), TotalX: m.TotalX(),
		Strategy: strat.Name(), Workers: workers, Runs: runs,
	}
	best := time.Duration(0)
	var total time.Duration
	for i := 0; i < runs; i++ {
		rec := obs.New()
		p := core.Params{
			Geom:     prof.Geometry(),
			Cancel:   xcancel.Config{MISR: misr.MustStandard(mSize), Q: q},
			Strategy: strat,
			Workers:  workers,
			Obs:      rec,
		}
		t0 := time.Now()
		res, err := core.Run(m, p)
		elapsed := time.Since(t0)
		if err != nil {
			die(err)
		}
		total += elapsed
		if best == 0 || elapsed < best {
			best = elapsed
		}
		if i == 0 {
			rep.TotalBits = res.TotalBits
			rep.Partitions = len(res.Partitions)
			rep.Rounds = len(res.Rounds)
			rep.Counters = make(map[string]int64)
			for _, c := range rec.Snapshot().Counters {
				rep.Counters[c.Name] = c.Value
			}
		}
	}
	rep.WallMsBest = float64(best) / float64(time.Millisecond)
	rep.WallMsMean = float64(total) / float64(runs) / float64(time.Millisecond)
	return rep
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "partbench:", err)
	os.Exit(1)
}
