// Command cktgen generates test-case artifacts: synthetic X-location
// workloads (the calibrated CKT profiles or custom parameterizations) and
// random gate-level circuits with correlated X sources.
//
// Usage:
//
//	cktgen workload -profile ckt-b [-seed N] [-scale K] -o xmap.json
//	cktgen workload -chains 75 -chainlen 481 -patterns 3000 -density 0.0275 \
//	       -clusters 6 -structured 0.55 -o xmap.json
//	cktgen circuit -cells 256 -pis 16 -xclusters 8 [-seed N] -o ckt.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xhybrid"
	"xhybrid/internal/netlist"
	"xhybrid/internal/scan"
	"xhybrid/internal/workload"
	"xhybrid/internal/xmap"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "workload":
		genWorkload(os.Args[2:])
	case "circuit":
		genCircuit(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cktgen <workload|circuit> [flags]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "cktgen:", err)
	os.Exit(1)
}

func genWorkload(args []string) {
	fs := flag.NewFlagSet("workload", flag.ExitOnError)
	profile := fs.String("profile", "", "named profile: ckt-a, ckt-b or ckt-c")
	scale := fs.Int("scale", 1, "shrink a named profile by this factor")
	chains := fs.Int("chains", 16, "scan chains (custom profile)")
	chainLen := fs.Int("chainlen", 64, "cells per chain (custom profile)")
	patterns := fs.Int("patterns", 512, "test patterns (custom profile)")
	density := fs.Float64("density", 0.02, "X density (custom profile)")
	clusters := fs.Int("clusters", 4, "correlated clusters (custom profile)")
	clusterPatterns := fs.Int("clusterpatterns", 64, "patterns per cluster (custom profile)")
	structured := fs.Float64("structured", 0.5, "structured X fraction (custom profile)")
	seed := fs.Int64("seed", 0, "generation seed (0 = default)")
	out := fs.String("o", "", "output file (default stdout; .txt selects the text format)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	var p workload.Profile
	if *profile != "" {
		switch *profile {
		case "ckt-a":
			p = workload.CKTA()
		case "ckt-b":
			p = workload.CKTB()
		case "ckt-c":
			p = workload.CKTC()
		default:
			die(fmt.Errorf("unknown profile %q", *profile))
		}
		if *scale > 1 {
			p = workload.Scaled(p, *scale)
		}
	} else {
		p = workload.Profile{
			Name: "custom", Chains: *chains, ChainLen: *chainLen, Patterns: *patterns,
			XDensity: *density, StructuredFraction: *structured,
			Clusters: *clusters, ClusterPatterns: *clusterPatterns,
			BackgroundCellFraction: 0.05,
		}
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	m, err := p.Generate()
	if err != nil {
		die(err)
	}
	x := toXLocations(p.Geometry(), m)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(*out, ".txt") {
		err = x.WriteText(w)
	} else {
		err = x.WriteJSON(w)
	}
	if err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "cktgen: %s: %d cells, %d patterns, %d X's (density %.4f%%)\n",
		p.Name, m.Cells(), m.Patterns(), m.TotalX(), 100*m.Density())
}

// toXLocations converts an internal X-map to the public facade type via the
// JSON-free path (AddX), keeping cmd code on the public API where possible.
func toXLocations(g scan.Geometry, m *xmap.XMap) *xhybrid.XLocations {
	x, err := xhybrid.NewXLocations(g.Chains, g.ChainLen, m.Patterns())
	if err != nil {
		die(err)
	}
	for _, c := range m.XCells() {
		chain, pos := g.CellCoord(c.Cell)
		c.Patterns.ForEach(func(p int) {
			if err := x.AddX(p, chain, pos); err != nil {
				die(err)
			}
		})
	}
	return x
}

func genCircuit(args []string) {
	fs := flag.NewFlagSet("circuit", flag.ExitOnError)
	cells := fs.Int("cells", 256, "scan cells")
	pis := fs.Int("pis", 16, "primary inputs")
	xclusters := fs.Int("xclusters", 8, "X-source clusters")
	xfanout := fs.Int("xfanout", 4, "scan cells per X cluster")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	c, err := netlist.Generate(netlist.GenConfig{
		Name:      fmt.Sprintf("gen-%d", *seed),
		ScanCells: *cells,
		PIs:       *pis,
		XClusters: *xclusters,
		XFanout:   *xfanout,
		Seed:      *seed,
	})
	if err != nil {
		die(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}
	if err := c.WriteJSON(w); err != nil {
		die(err)
	}
	st := c.Stats()
	fmt.Fprintf(os.Stderr, "cktgen: %s: %d gates, %d scan cells, %d PIs, %d X sources, depth %d\n",
		c.Name, st.Gates, st.ScanCells, st.PIs, st.XSources, st.Depth)
}
